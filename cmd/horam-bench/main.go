// Command horam-bench regenerates every table and figure of the
// paper's evaluation section on the simulated machine:
//
//	horam-bench -exp all                 # everything below
//	horam-bench -exp fig5-1              # analytic gain curves
//	horam-bench -exp table5-1            # one-period overhead model
//	horam-bench -exp table5-2            # simulated machine setup
//	horam-bench -exp table5-3            # 64 MB / 25k requests
//	horam-bench -exp table5-4 -scale 1   # 1 GB / 500k requests (paper size)
//	horam-bench -exp seqvsrand           # §5.2 sequential-vs-random
//	horam-bench -exp partial             # §5.3.1 partial shuffle
//	horam-bench -exp multiuser           # §5.3.2 multi-user sharing
//	horam-bench -exp noshuffle           # §5.1 non-shuffle (Figure 5-2) case
//	horam-bench -exp shootout            # all four schemes, one trace
//	horam-bench -exp ablations           # Z sweep + scheduler schedule
//	horam-bench -exp concurrency         # serving throughput vs TCP clients
//	horam-bench -exp shard               # sharded-engine throughput vs shard count
//	horam-bench -exp latency             # per-request tail latency, monolithic vs incremental shuffle
//	horam-bench -exp persist             # file-backed storage vs in-memory simulator
//	horam-bench -exp kv                  # oblivious key-value layer: logical ops/s vs shard count
//	horam-bench -exp obs                 # observability overhead: instrumented vs bare engine
//	horam-bench -exp timing              # constant-time mode: timing-variance distinguishability
//
// Absolute durations come from the calibrated device models (Table
// 5-2); the claims under reproduction are the ratios.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/timing"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig5-1, table5-1, table5-2, table5-3, table5-4, seqvsrand, partial, multiuser, ablations, concurrency, shard, latency, persist, kv, obs, timing")
	scale := flag.Float64("scale", 0.125, "scale factor for table5-4 (1 = paper size: 1 GB, 500k requests)")
	crypto := flag.Bool("crypto", false, "run with real AES-CTR+HMAC sealing instead of the null sealer")
	reqs := flag.Int("reqs", 200, "requests per client for -exp concurrency")
	out := flag.String("out", "", "also write the -exp shard or -exp latency sweep as a JSON baseline to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this path (go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "horam-bench:", err)
			os.Exit(1)
		}
		defer f.Close() //horam:errok the profile is flushed by StopCPUProfile; the process is exiting
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "horam-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err := run(*exp, *scale, *crypto, *reqs, *out)

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr == nil {
			runtime.GC() // settle live-heap numbers before the snapshot
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if merr != nil && err == nil {
			err = merr
		}
	}

	if err != nil {
		pprof.StopCPUProfile() // flush before the hard exit skips defers
		fmt.Fprintln(os.Stderr, "horam-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, crypto bool, reqs int, out string) error {
	all := exp == "all"
	ran := false

	if all || exp == "fig5-1" {
		ran = true
		fmt.Print(bench.FormatFigure51(bench.RunFigure51()))
		fmt.Println()
	}
	if all || exp == "table5-1" {
		ran = true
		fmt.Print(bench.FormatTable51())
		fmt.Println()
	}
	if all || exp == "table5-2" {
		ran = true
		rows, err := bench.RunTable52()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable52(rows))
		fmt.Println()
	}
	if all || exp == "table5-3" {
		ran = true
		p := bench.Table53Params()
		p.Crypto = crypto
		c, err := bench.RunComparison(p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatComparison(c))
		fmt.Println()
	}
	if all || exp == "table5-4" {
		ran = true
		p := bench.Table54Params(scale)
		p.Crypto = crypto
		c, err := bench.RunComparison(p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatComparison(c))
		if scale != 1 {
			fmt.Printf("(scaled by %.3g; pass -scale 1 for the paper's 1 GB / 500k requests)\n", scale)
		}
		fmt.Println()
	}
	if all || exp == "seqvsrand" {
		ran = true
		r, err := bench.RunSeqVsRand()
		if err != nil {
			return err
		}
		fmt.Println("== §5.2: sequential vs random access on the HDD model ==")
		fmt.Printf("sweep of %d x 1 KB slots: sequential %v, random %v -> random is %.1fx slower\n\n",
			r.Slots, r.Sequential, r.Random, r.Ratio)
	}
	if all || exp == "partial" {
		ran = true
		rows, err := bench.RunPartialShuffle([]float64{1, 0.5, 0.25, 0.125})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPartialShuffle(rows))
		fmt.Println()
	}
	if all || exp == "multiuser" {
		ran = true
		rows, err := bench.RunMultiUser([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMultiUser(rows))
		fmt.Println()
	}
	if all || exp == "noshuffle" {
		ran = true
		r, err := bench.RunNoShuffleCase()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatNoShuffle(r))
		fmt.Println()
	}
	if all || exp == "shootout" {
		ran = true
		rows, err := bench.RunShootout()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatShootout(rows))
		fmt.Println()
	}
	if all || exp == "ablations" {
		ran = true
		z, err := bench.RunZSweep([]int{2, 4, 6})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatZSweep(z))
		fmt.Println()
		s, err := bench.RunStageAblation()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatStageAblation(s))
		fmt.Println()
		d, err := bench.RunPrefetchDepth([]int{6, 12, 24, 48})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPrefetchDepth(d))
		fmt.Println()
		algs, err := bench.RunShuffleAlgs()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatShuffleAlgs(algs))
		fmt.Println()
	}
	if all || exp == "concurrency" {
		ran = true
		rows, err := bench.RunConcurrency([]int{1, 2, 4, 8, 16}, reqs)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatConcurrency(rows))
		fmt.Println()
	}
	if all || exp == "shard" {
		ran = true
		p := bench.DefaultShardParams()
		rows, err := bench.RunShard([]int{1, 2, 4, 8}, p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatShard(rows, p))
		fmt.Println()
		if out != "" {
			if err := bench.WriteShardJSON(out, rows, p); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if all || exp == "latency" {
		ran = true
		p := bench.DefaultLatencyParams()
		rows, err := bench.RunLatency(p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatLatency(rows, p))
		fmt.Println()
		if exp == "latency" && out != "" {
			if err := bench.WriteLatencyJSON(out, rows, p); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if all || exp == "persist" {
		ran = true
		p := bench.DefaultPersistParams()
		dev, rows, err := bench.RunPersist(p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPersist(dev, rows, p))
		fmt.Println()
		if exp == "persist" && out != "" {
			if err := bench.WritePersistJSON(out, dev, rows, p); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if all || exp == "kv" {
		ran = true
		p := bench.DefaultKVParams()
		rows, err := bench.RunKV([]int{1, 2, 4}, p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatKV(rows, p))
		fmt.Println()
		if exp == "kv" && out != "" {
			if err := bench.WriteKVJSON(out, rows, p); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if exp == "obs" {
		// Not part of -exp all: like timing, this measures HOST-machine
		// overhead (instrumentation cost), not the simulated device
		// models the paper figures come from.
		ran = true
		p := bench.DefaultObsParams()
		rows, err := bench.RunObs(p)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatObs(rows, p))
		fmt.Println()
		if out != "" {
			if err := bench.WriteObsJSON(out, rows, p); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if exp == "timing" {
		// Deliberately NOT part of -exp all: the experiment measures
		// the HOST machine's timing noise, not the simulated device
		// models the paper figures come from.
		ran = true
		rep, err := bench.RunTiming(timing.Options{}, bench.DefaultTimingThreshold)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTiming(rep))
		fmt.Println()
		if out != "" {
			if err := bench.WriteTimingJSON(out, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
