// Command horam-audit records the adversary's view of an H-ORAM run —
// the sequence of storage slots on the simulated bus — and runs the
// statistical obliviousness checks from internal/trace:
//
//	horam-audit -blocks 4096 -requests 4000
//
// Checks performed:
//
//  1. access-period slot reads are uniformly distributed (chi-square);
//  2. no storage slot is read twice within one access period (the
//     square-root invariant);
//  3. a hot (single-block) workload and a uniform workload produce
//     statistically indistinguishable storage traces (two-sample
//     chi-square) — the cache hit pattern does not leak.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	blocks := flag.Int64("blocks", 4096, "data set size in blocks")
	memBlocks := flag.Int64("mem", 512, "memory-tier capacity in blocks")
	requests := flag.Int("requests", 4000, "requests per recorded run")
	alpha := flag.Float64("alpha", 0.001, "significance level for the chi-square tests")
	flag.Parse()

	if err := run(*blocks, *memBlocks, *requests, *alpha); err != nil {
		fmt.Fprintln(os.Stderr, "horam-audit:", err)
		os.Exit(1)
	}
}

// record runs `requests` reads drawn from gen and returns the
// access-period storage read trace plus per-period slot sequences.
func record(blocks, memBlocks int64, requests int, gen func(*blockcipher.RNG, int64) (workload.Generator, error), seed string) ([]int64, [][]int64, int64, error) {
	rng := blockcipher.NewRNGFromString(seed)
	cfg := horam.Config{
		Blocks:      blocks,
		BlockSize:   256,
		MemoryBytes: memBlocks * 256,
		Sealer:      blockcipher.NullSealer{},
		RNG:         rng.Fork("oram"),
	}
	o, err := horam.New(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	g, err := gen(rng.Fork("wl"), blocks)
	if err != nil {
		return nil, nil, 0, err
	}

	var reads []int64
	periods := [][]int64{nil}
	lastWasShuffle := false
	o.Stor().SetHook(func(_ string, op device.Op, slot int64) {
		if op != device.OpRead {
			return
		}
		if o.InShuffle() {
			lastWasShuffle = true
			return
		}
		if lastWasShuffle {
			periods = append(periods, nil)
			lastWasShuffle = false
		}
		reads = append(reads, slot)
		periods[len(periods)-1] = append(periods[len(periods)-1], slot)
	})
	var reqs []*horam.Request
	for i := 0; i < requests; i++ {
		reqs = append(reqs, &horam.Request{Op: horam.OpRead, Addr: g.Next()})
	}
	if err := o.RunBatch(reqs); err != nil {
		return nil, nil, 0, err
	}
	o.Stor().SetHook(nil)
	return reads, periods, o.Partitions() * o.PartitionSlots(), nil
}

func run(blocks, memBlocks int64, requests int, alpha float64) error {
	hot := func(rng *blockcipher.RNG, n int64) (workload.Generator, error) {
		return workload.NewHotspot(n, 0.95, 0.002, rng)
	}
	uniform := func(rng *blockcipher.RNG, n int64) (workload.Generator, error) {
		return workload.NewUniform(n, rng)
	}

	hotReads, hotPeriods, slots, err := record(blocks, memBlocks, requests, hot, "audit-hot")
	if err != nil {
		return err
	}
	uniReads, _, _, err := record(blocks, memBlocks, requests, uniform, "audit-uniform")
	if err != nil {
		return err
	}

	fmt.Printf("recorded %d (hot) and %d (uniform) access-period storage reads over %d slots\n\n",
		len(hotReads), len(uniReads), slots)

	// Check 1: uniformity of the observed slots.
	bins := 16
	check, err := trace.CheckUniform(hotReads, slots, bins, alpha)
	if err != nil {
		return err
	}
	fmt.Printf("[1] slot uniformity (hot workload):   chi2=%8.2f  dof=%d  critical=%.2f  -> %s\n",
		check.Chi2, check.Dof, check.Critical, verdict(check.Pass))

	// Check 2: square-root invariant per period.
	ok := true
	for i, p := range hotPeriods {
		if at := trace.FirstRepeat(p); at >= 0 {
			fmt.Printf("[2] period %d: slot repeated at read %d\n", i, at)
			ok = false
		}
	}
	fmt.Printf("[2] read-once per period (%d periods): -> %s\n", len(hotPeriods), verdict(ok))

	// Check 3: hot vs uniform indistinguishability.
	chi2, dof, err := trace.TwoSampleChiSquare(hotReads, uniReads, slots, bins)
	if err != nil {
		return err
	}
	crit := trace.ChiSquareCritical(dof, alpha)
	fmt.Printf("[3] hot vs uniform traces:            chi2=%8.2f  dof=%d  critical=%.2f  -> %s\n",
		chi2, dof, crit, verdict(chi2 <= crit))

	if !ok || !check.Pass || chi2 > crit {
		return fmt.Errorf("obliviousness audit FAILED")
	}
	fmt.Println("\nall obliviousness checks passed")
	return nil
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
