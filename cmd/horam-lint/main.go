// Command horam-lint is the multichecker driver for the repository's
// obliviousness analyzers: ctflow (secret-dependent control flow in
// //horam:constant-time code), ctmask (ctops mask-operand provenance)
// and errdrop (dropped errors on snapshot/device/Close/Sync paths).
//
// Usage:
//
//	horam-lint [-c ctflow,ctmask,errdrop] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 1 when any diagnostic is reported, 2 on operational
// failure, so CI can gate on it like any other checker.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/ctflow"
	"repro/internal/lint/ctmask"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/load"
)

var all = []*analysis.Analyzer{ctflow.Analyzer, ctmask.Analyzer, errdrop.Analyzer}

func main() {
	checks := flag.String("c", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: horam-lint [-c names] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	enabled := all
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		enabled = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "horam-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			enabled = append(enabled, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := load.Packages(cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	type diag struct {
		pos  string
		name string
		msg  string
	}
	var diags []diag
	for _, pkg := range pkgs {
		for _, a := range enabled {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diags = append(diags, diag{pkg.Fset.Position(d.Pos).String(), name, d.Message})
			}
			if err := a.Run(pass); err != nil {
				fatal(fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err))
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].name < diags[j].name
	})
	seen := map[diag]bool{}
	bad := false
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		fmt.Printf("%s: [%s] %s\n", d.pos, d.name, d.msg)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horam-lint:", err)
	os.Exit(2)
}
