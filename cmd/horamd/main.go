// Command horamd serves an H-ORAM block store over TCP — the paper's
// Figure 2-3 / 5-2 deployment: the ORAM, its storage backend and the
// shuffle all live on the server, so shuffle traffic never crosses the
// (slow) network, while clients see a plain block API.
//
//	horamd -addr :7312 -blocks 65536 -mem 8388608
//
// Protocol (text, one request per line):
//
//	READ <addr>\n                -> OK <hex>\n | ERR <msg>\n
//	WRITE <addr> <hex>\n         -> OK\n       | ERR <msg>\n
//	STATS\n                      -> OK requests=<n> hits=<n> ...\n
//	QUIT\n                       -> closes the connection
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// server wraps the client with the mutex that serialises connections.
type server struct {
	mu     sync.Mutex
	client *core.Client
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7312", "listen address")
	blocks := flag.Int64("blocks", 65536, "data set size in blocks")
	blockSize := flag.Int("blocksize", 1024, "block size in bytes")
	mem := flag.Int64("mem", 8<<20, "memory-tier budget in bytes")
	keyHex := flag.String("key", strings.Repeat("2a", 32), "hex master key (32 bytes)")
	flag.Parse()

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		log.Fatalf("horamd: bad -key: %v", err)
	}
	client, err := core.Open(core.Options{
		Blocks:      *blocks,
		BlockSize:   *blockSize,
		MemoryBytes: *mem,
		Key:         key,
	})
	if err != nil {
		log.Fatalf("horamd: %v", err)
	}
	srv := &server{client: client}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("horamd: %v", err)
	}
	log.Printf("horamd: serving %d x %d B blocks on %s", *blocks, *blockSize, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("horamd: accept: %v", err)
			continue
		}
		go srv.handle(conn)
	}
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			return
		}
		resp := s.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *server) dispatch(line string) string {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "READ":
		if len(fields) != 2 {
			return "ERR usage: READ <addr>"
		}
		addr, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad address"
		}
		s.mu.Lock()
		data, err := s.client.Read(addr)
		s.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + hex.EncodeToString(data)
	case "WRITE":
		if len(fields) != 3 {
			return "ERR usage: WRITE <addr> <hex>"
		}
		addr, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad address"
		}
		data, err := hex.DecodeString(fields[2])
		if err != nil {
			return "ERR bad hex payload"
		}
		s.mu.Lock()
		err = s.client.Write(addr, data)
		s.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "STATS":
		s.mu.Lock()
		st := s.client.Stats()
		s.mu.Unlock()
		return fmt.Sprintf("OK requests=%d hits=%d misses=%d shuffles=%d simtime=%s",
			st.Requests, st.Hits, st.Misses, st.Shuffles, st.SimulatedTime)
	default:
		return "ERR unknown command " + cmd
	}
}
