// Command horamd serves an H-ORAM block store over TCP — the paper's
// Figure 2-3 / 5-2 deployment: the ORAM, its storage backend and the
// shuffle all live on the server, so shuffle traffic never crosses the
// (slow) network, while clients see a plain block API.
//
// The daemon is built on internal/server and internal/engine:
// concurrent connections are accepted without a global lock, requests
// arriving within the batching window are drained as one batch, and
// the engine PRF-shards the address space across -shards independent
// H-ORAM instances whose schedulers cycle concurrently — multi-client
// traffic gets the paper's §4.2 request-grouping per shard AND
// core-level parallelism across shards.
//
//	horamd -addr :7312 -blocks 65536 -mem 8388608 -shards 4
//
// With -data-dir the store is durable: each shard's storage tier is a
// preallocated file under the directory, control state is checkpointed
// there (-checkpoint interval, plus a final save on SIGINT/SIGTERM),
// and a restart with the same flags and key resumes serving every
// previously written block. A missing or empty data directory starts
// fresh; an existing snapshot is loaded on start.
//
//	horamd -addr :7312 -blocks 65536 -mem 8388608 -shards 4 \
//	       -data-dir /var/lib/horamd -checkpoint 1m -fsync 0
//
// Protocol (text, one request per line; see internal/server):
//
//	READ <addr>\n                -> OK <hex>\n | ERR <msg>\n
//	WRITE <addr> <hex>\n         -> OK\n       | ERR <msg>\n
//	MULTI <n>\n + n lines        -> OK <n>\n + n lines | ERR <msg>\n
//	STATS\n                      -> OK requests=<n> ... shards=<s> s0_depth=<n> s0_cycles=<n> ...\n
//	QUIT\n                       -> closes the connection
//
// With -kv the daemon serves the oblivious key–value layer
// (internal/okv) instead of raw block writes: KGET/KSET/KDEL run a
// fixed-shape block pipeline over the engine, so hit, miss, insert,
// update and delete are indistinguishable on the device bus; raw
// WRITE is refused (the block space backs the table). The table and
// its directory state ride the ordinary snapshot/restore protocol:
//
//	horamd -addr :7312 -blocks 65536 -mem 8388608 -shards 4 -kv \
//	       -kv-max-value 4096 -data-dir /var/lib/horamd
//
// # Observability
//
// -metrics-addr serves the leak-audited Prometheus exposition
// (internal/obs) over HTTP at /metrics; -pprof-addr serves
// net/http/pprof. Both ride the same mux, so giving both flags the
// same address shares one listener. Logs are structured (log/slog);
// -log-format selects text or json. The TRACE verb (see
// internal/server) dumps per-batch spans as chrome://tracing JSON.
//
// # Cluster mode
//
// The shard count can also be spread across processes (and machines):
// each shard runs in its own horamd started with -shard-serve, and one
// horamd started with -gateway scatter/gathers over them through
// internal/cluster. Every process — gateway and nodes — is launched
// with the SAME global geometry flags; a -shard-serve node derives its
// own slice (engine.ShardConfig) from them plus -shard-index, and the
// gateway refuses any node whose PEEK manifest echo has drifted from
// that derivation. The volume-leveling invariant stays global: the
// gateway levels cycle counts over the wire (CYCLES/PAD), so a
// quiescent cluster shows equal per-node cycle counts exactly as a
// single process does. A gateway's /metrics additionally aggregates
// every node's exposition (METRICS verb) relabelled with node="i".
//
//	horamd -shard-serve -shard-index 0 -addr :7401 -blocks 65536 -mem 8388608 -shards 2
//	horamd -shard-serve -shard-index 1 -addr :7402 -blocks 65536 -mem 8388608 -shards 2
//	horamd -gateway -nodes 127.0.0.1:7401,127.0.0.1:7402 -addr :7312 \
//	       -blocks 65536 -mem 8388608 -shards 2
//
// A shard node may take -data-dir (ITS durability is its own concern);
// the gateway must not — and the gateway does not migrate shards or
// fail over: a dead node surfaces as per-task ERRs on the requests
// that touch it. See README "Cluster mode".
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr handlers on DefaultServeMux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/okv"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7312", "listen address")
	blocks := flag.Int64("blocks", 65536, "data set size in blocks")
	blockSize := flag.Int("blocksize", 1024, "block size in bytes")
	mem := flag.Int64("mem", 8<<20, "total memory-tier budget in bytes (split across shards)")
	shards := flag.Int("shards", 1, "H-ORAM shard count (parallel per-shard schedulers)")
	keyHex := flag.String("key", strings.Repeat("2a", 32), "hex master key (32 bytes)")
	window := flag.Duration("batch-window", server.DefaultBatchWindow, "how long to collect concurrent requests into one scheduler batch")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "max logical requests per scheduler batch")
	maxConns := flag.Int("max-conns", server.DefaultMaxConns, "max concurrent connections")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory simulation, nothing survives restart)")
	checkpoint := flag.Duration("checkpoint", time.Minute, "periodic control-state checkpoint interval with -data-dir (0 disables; a final checkpoint always runs on shutdown)")
	fsync := flag.Int("fsync", 0, "storage fsync policy with -data-dir: 0 = at shuffle/checkpoint boundaries only, 1 = every write, n = every n-th write")
	monolithic := flag.Bool("monolithic-shuffle", false, "run each shuffle period as one stop-the-world pass instead of the default deamortized per-cycle quanta (tail latency!)")
	sealWorkers := flag.Int("seal-workers", 0, "worker-pool bound for parallel record sealing (0 = GOMAXPROCS capped at 8, 1 = serial)")
	constantTime := flag.Bool("constant-time", false, "harden trusted-memory data structures (stash, position map, KV selection) against co-located timing adversaries: full fixed-order scans, no secret-dependent branches; device traffic is unchanged, CPU cost rises")
	kv := flag.Bool("kv", false, "serve the oblivious key-value layer (KGET/KSET/KDEL; raw WRITE is disabled — the block space backs the table)")
	kvMaxValue := flag.Int("kv-max-value", 4096, "KV value-length cap in bytes; fixes the per-op extent fan-out at ceil(cap/blocksize)")
	kvSlots := flag.Int("kv-slots", okv.DefaultSlotsPerBucket, "KV slots per hash bucket (two-choice hashing)")
	statsEvery := flag.Duration("stats-every", time.Minute, "periodic serving-stats log interval (0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve the leak-audited Prometheus exposition at /metrics on this address (may equal -pprof-addr to share one listener; empty disables)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	shardServe := flag.Bool("shard-serve", false, "serve ONE shard of a cluster: derive this process's geometry from the global flags plus -shard-index and enable the shard-control verbs (CYCLES/PAD/CHECKPT/PEEK/METRICS) for a gateway")
	shardIndex := flag.Int("shard-index", 0, "which shard of the -shards-wide placement this -shard-serve process is")
	gateway := flag.Bool("gateway", false, "serve as the cluster gateway: scatter/gather over the -nodes shard processes instead of running shards in-process")
	nodes := flag.String("nodes", "", "comma-separated shard node addresses for -gateway, placement order = shard order")
	dialAttempts := flag.Int("dial-attempts", 20, "gateway startup: dial/probe attempts per node before giving up (with doubling backoff)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "horamd: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Flags the operator actually set, so mode-specific defaults only
	// fill the gaps.
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal("bad -key", "err", err)
	}
	opts := engine.Options{
		Blocks:            *blocks,
		BlockSize:         *blockSize,
		MemoryBytes:       *mem,
		Key:               key,
		Shards:            *shards,
		MonolithicShuffle: *monolithic,
		SealWorkers:       *sealWorkers,
		ConstantTime:      *constantTime,
		DataDir:           *dataDir,
		FsyncEvery:        *fsync,
	}

	if *shardServe && *gateway {
		fatal("-shard-serve and -gateway are exclusive; a process is a shard node or the front end, not both")
	}
	if *shardServe {
		if *kv {
			fatal("-kv on a shard node: the key-value layer spans the WHOLE block space, so it belongs on the gateway (or a standalone daemon), not on one shard's slice")
		}
		// The node's slice of the global geometry: ShardConfig derives
		// blocks/memory/key material from the same flags the gateway
		// runs with, then the node-local durability knobs come back
		// from this process's own flags.
		shardOpts, err := engine.ShardConfig(opts, *shardIndex)
		if err != nil {
			fatal("shard config", "err", err)
		}
		shardOpts.DataDir = *dataDir
		shardOpts.FsyncEvery = *fsync
		opts = shardOpts
		if !setFlags["batch-window"] {
			// The gateway already collected the batch; holding its MULTI
			// another 2ms per drain would stack windows.
			*window = 200 * time.Microsecond
		}
	}

	var eng *engine.Engine
	restored := false
	if *gateway {
		if *dataDir != "" {
			fatal("-gateway with -data-dir: shard nodes own their durability; give -data-dir to the -shard-serve processes instead")
		}
		placement, err := cluster.ParsePlacement(*nodes)
		if err != nil {
			fatal("bad -nodes", "err", err)
		}
		if !setFlags["shards"] {
			opts.Shards = len(placement.Nodes)
		}
		eng, err = cluster.Connect(opts, placement, client.DialConfig{Attempts: *dialAttempts})
		if err != nil {
			fatal("cluster connect", "err", err)
		}
		logger.Info("gateway assembled", "nodes", len(placement.Nodes), "placement", *nodes)
	} else {
		// Load-on-start: an existing manifest means a previous instance
		// checkpointed here — resume it. Anything else starts fresh.
		if *dataDir != "" {
			if _, statErr := os.Stat(filepath.Join(*dataDir, engine.ManifestFileName)); statErr == nil {
				eng, err = engine.Restore(opts)
				if err != nil {
					fatal("restore failed (a fresh start needs an empty -data-dir)", "data_dir", *dataDir, "err", err)
				}
				logger.Info("restored durable store", "data_dir", *dataDir, "epoch", eng.Epoch())
			}
		}
		restored = eng != nil
		if eng == nil {
			eng, err = engine.New(opts)
			if err != nil {
				fatal("engine", "err", err)
			}
			if *dataDir != "" {
				logger.Info("initialised fresh durable store", "data_dir", *dataDir)
			}
		}
	}

	// Observability: every mode gets a registry (it also backs the
	// STATS line) and a tracer (armed by the TRACE verb); -metrics-addr
	// decides whether the exposition is reachable over HTTP.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.DefaultTraceSpans)
	eng.Observe(reg, tracer)
	var metricsHandler http.Handler = reg
	if *gateway {
		cluster.Observe(reg, eng)
		metricsHandler = cluster.MetricsHandler(reg, eng)
	}

	// The KV layer lays its table over the engine's whole block space;
	// a restored image resumes the persisted directory state (refusing
	// geometry drift), a fresh engine starts an empty table.
	var store *okv.Store
	if *kv {
		// A value this large could never arrive: KSET frames the value
		// in hex (2 line bytes per value byte) and the server caps one
		// protocol line, so an at-cap KSET must fit under that ceiling
		// or every client legitimately using the cap would tear its
		// connection mid-stream.
		if lineNeed := len("KSET ") + 2*(*blockSize) + 1 + 2*(*kvMaxValue); lineNeed > server.MaxLineBytes {
			fatal("-kv-max-value cannot be served: an at-cap KSET line exceeds the protocol line limit",
				"kv_max_value", *kvMaxValue, "line_need", lineNeed, "line_limit", server.MaxLineBytes,
				"max_usable", (server.MaxLineBytes-len("KSET ")-2*(*blockSize)-1)/2)
		}
		kvOpts := okv.Options{
			Backend:        eng,
			SlotsPerBucket: *kvSlots,
			MaxValueBytes:  *kvMaxValue,
			Key:            key,
			ConstantTime:   *constantTime,
		}
		if restored {
			store, err = okv.Resume(kvOpts, eng.RestoredKVState())
		} else {
			store, err = okv.New(kvOpts)
		}
		if err != nil {
			fatal("kv layer", "err", err)
		}
		logger.Info("kv layer ready",
			"buckets", store.Buckets(), "slots", store.SlotsPerBucket(),
			"capacity", store.Capacity(), "value_cap", store.MaxValueBytes(),
			"live_keys", store.Len())
	} else if restored && eng.RestoredKVState() != nil {
		logger.Warn("restored image carries a KV table but -kv is off; raw WRITE traffic will corrupt it")
	}

	// checkpoint saves the engine image — through the KV layer's
	// operation lock when it is enabled, so the persisted directory
	// state never straddles a half-finished KV op.
	checkpointNow := func() error {
		if store != nil {
			return store.Checkpoint(eng.SaveSnapshotKV)
		}
		return eng.SaveSnapshot()
	}

	if store != nil && *gateway {
		logger.Warn("gateway KV directory state is not durable (the gateway has no -data-dir); nodes persist blocks, but a gateway restart starts an empty table")
	}

	// /metrics rides DefaultServeMux alongside the pprof blank-import
	// handlers, so equal -pprof-addr/-metrics-addr share one listener
	// and distinct addresses each serve the full debug surface.
	if *metricsAddr != "" {
		http.Handle("/metrics", metricsHandler)
	}
	httpAddrs := []string{}
	for _, a := range []string{*pprofAddr, *metricsAddr} {
		if a == "" || (len(httpAddrs) > 0 && httpAddrs[0] == a) {
			continue
		}
		httpAddrs = append(httpAddrs, a)
	}
	for _, a := range httpAddrs {
		a := a
		go func() {
			logger.Info("debug http listener", "addr", a, "pprof", *pprofAddr != "", "metrics", *metricsAddr != "")
			if err := http.ListenAndServe(a, nil); err != nil {
				logger.Warn("debug http listener failed", "addr", a, "err", err)
			}
		}()
	}

	srv, err := server.New(server.Config{
		Engine:       eng,
		BatchWindow:  *window,
		MaxBatch:     *maxBatch,
		MaxConns:     *maxConns,
		KV:           store,
		ShardControl: *shardServe,
		Metrics:      reg,
		Tracer:       tracer,
		Logger:       logger,
	})
	if err != nil {
		fatal("server", "err", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	shuffleMode := "incremental"
	if *monolithic {
		shuffleMode = "monolithic"
	}
	mode := "block store"
	if store != nil {
		mode = "kv store"
	}
	switch {
	case *shardServe:
		mode = fmt.Sprintf("shard node %d/%d", *shardIndex, *shards)
	case *gateway:
		mode = "gateway " + mode
	}
	logger.Info("serving",
		"addr", ln.Addr().String(), "mode", mode,
		"blocks", opts.Blocks, "blocksize", *blockSize,
		"shards", eng.Shards(), "shuffle", shuffleMode,
		"batch_window", *window, "max_batch", *maxBatch, "max_conns", *maxConns)

	// Periodic checkpoints keep the recoverable image fresh; a hard
	// crash loses at most one interval of writes.
	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if *dataDir == "" || *checkpoint <= 0 {
			return
		}
		ticker := time.NewTicker(*checkpoint)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				start := time.Now()
				if err := checkpointNow(); err != nil {
					logger.Error("checkpoint failed", "err", err)
				} else {
					logger.Info("checkpoint saved", "elapsed", time.Since(start).Round(time.Millisecond))
				}
			case <-ckptStop:
				return
			}
		}
	}()

	// Periodic serving-stats log: the observable heartbeat operators
	// watch — one record with stable keys, machine-greppable in either
	// -log-format. KV verbs bypass the block batcher, so in KV mode the
	// kv_* counters are the real traffic and the window counters would
	// read as an idle daemon.
	statsStop := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		if *statsEvery <= 0 {
			return
		}
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				st := srv.Stats()
				if st.KV != nil {
					logger.Info("stats",
						"kv_ops", st.KV.Gets+st.KV.Sets+st.KV.Dels,
						"kv_count", st.KV.Count,
						"kv_gets", st.KV.Gets, "kv_sets", st.KV.Sets,
						"kv_dels", st.KV.Dels, "kv_misses", st.KV.Misses,
						"block_requests", st.Requests,
						"conns", st.Accepted, "active", st.Active)
				} else {
					logger.Info("stats",
						"requests", st.Requests,
						"conns", st.Accepted, "active", st.Active,
						"batches", st.Batches, "mean_batch", st.MeanBatch)
				}
			case <-statsStop:
				return
			}
		}
	}()

	// SIGINT/SIGTERM drain in-flight requests before exiting.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		if err := srv.Close(); err != nil {
			logger.Error("server close", "err", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		fatal("serve", "err", err)
	}
	close(ckptStop)
	<-ckptDone
	close(statsStop)
	<-statsDone

	// Save-on-shutdown: the server is closed (no traffic), so this
	// snapshot captures the final state and a restart loses nothing.
	if *dataDir != "" {
		if err := checkpointNow(); err != nil {
			logger.Error("final checkpoint failed", "err", err)
		} else {
			logger.Info("final checkpoint saved", "data_dir", *dataDir)
		}
	}

	st := srv.Stats()
	sum := eng.Stats()
	if st.KV != nil {
		logger.Info("served",
			"kv_ops", st.KV.Gets+st.KV.Sets+st.KV.Dels,
			"kv_gets", st.KV.Gets, "kv_sets", st.KV.Sets,
			"kv_dels", st.KV.Dels, "kv_misses", st.KV.Misses,
			"kv_count", st.KV.Count, "kv_capacity", st.KV.Capacity,
			"block_requests", st.Requests, "conns", st.Accepted)
	} else {
		logger.Info("served",
			"requests", st.Requests, "conns", st.Accepted,
			"windows", st.Batches, "mean_window", st.MeanBatch,
			"hist", st.HistogramString())
	}
	logger.Info("engine summary",
		"shards", sum.Shards, "hits", sum.Hits, "misses", sum.Misses,
		"shuffles", sum.Shuffles, "cycles", sum.Cycles, "padded", sum.Padded,
		"simtime", sum.SimTime.Round(time.Millisecond))
	for _, sh := range st.PerShard {
		logger.Info("shard summary",
			"shard", sh.Shard, "blocks", sh.Blocks,
			"drains", sh.Batches, "reqs", sh.Requests, "mean", sh.MeanBatch,
			"hist", engine.FormatHist(sh.Hist),
			"cycles", sh.Cycles, "pad", sh.PadCycles, "shuffles", sh.Shuffles)
	}
	if err := eng.Close(); err != nil {
		logger.Error("engine close", "err", err)
	}
}
