// obliviousness shows what the adversary actually sees. It runs the
// same skewed workload against (a) a plain, unprotected block store
// and (b) H-ORAM, records the storage-bus trace of each, and prints
// per-region access histograms. The plain store's histogram screams
// which region is hot; H-ORAM's is statistically flat.
//
//	go run ./examples/obliviousness
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	blocks    = 4096
	blockSize = 256
	requests  = 3000
	bins      = 16
)

func main() {
	gen := func(seed string) workload.Generator {
		g, err := workload.NewHotspot(blocks, 0.9, 0.02, blockcipher.NewRNGFromString(seed))
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	plain := recordPlain(gen("wl"))
	oblivious, slots := recordHORAM(gen("wl"))

	fmt.Println("adversary's view: storage reads per region (16 equal bins)")
	fmt.Println()
	fmt.Println("plain store (no protection):")
	printHistogram(plain, blocks)
	fmt.Println()
	fmt.Println("H-ORAM:")
	printHistogram(oblivious, slots)

	// Quantify the flattening. The plain trace mirrors the workload
	// skew; H-ORAM's is close to uniform, with a small residual from
	// the paper's partition-local shuffle (cold blocks never migrate
	// across partitions — §4.3.3's "half obliviousness for cold data"
	// relaxation), so we report the ratio rather than a pass/fail.
	hc, _, err := trace.ChiSquareUniform(oblivious, slots, bins)
	if err != nil {
		log.Fatal(err)
	}
	pc, _, err := trace.ChiSquareUniform(plain, blocks, bins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nskew statistic (chi2, lower = flatter): plain %.0f vs H-ORAM %.0f (%.0fx flatter)\n",
		pc, hc, pc/hc)

	// The claim that matters: an adversary cannot tell THIS workload
	// from a completely different one by watching storage.
	other := recordHORAMUniform()
	chi2, dof, err := trace.TwoSampleChiSquare(oblivious, other, slots, bins)
	if err != nil {
		log.Fatal(err)
	}
	crit := trace.ChiSquareCritical(dof, 0.001)
	fmt.Printf("hot-vs-uniform workload distinguisher: chi2=%.1f (critical %.1f) -> indistinguishable: %v\n",
		chi2, crit, chi2 <= crit)
}

// recordHORAMUniform records a uniform-workload H-ORAM trace for the
// two-sample comparison.
func recordHORAMUniform() []int64 {
	g, err := workload.NewUniform(blocks, blockcipher.NewRNGFromString("wl-uniform"))
	if err != nil {
		log.Fatal(err)
	}
	reads, _ := recordHORAMWith(g, "horam-uniform")
	return reads
}

// recordPlain simulates an unprotected store: each request reads its
// block directly, so the trace IS the access pattern.
func recordPlain(gen workload.Generator) []int64 {
	clk := simclock.New()
	dev, err := device.New(device.PaperHDD(), blockSize, blocks, clk)
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.NewRecorder()
	dev.SetHook(rec.Hook())
	buf := make([]byte, blockSize)
	for i := 0; i < requests; i++ {
		if err := dev.Read(gen.Next(), buf); err != nil {
			log.Fatal(err)
		}
	}
	return rec.Reads()
}

// recordHORAM runs the same workload through H-ORAM and returns the
// access-period storage trace.
func recordHORAM(gen workload.Generator) ([]int64, int64) {
	return recordHORAMWith(gen, "horam")
}

func recordHORAMWith(gen workload.Generator, seed string) ([]int64, int64) {
	rng := blockcipher.NewRNGFromString(seed)
	o, err := horam.New(horam.Config{
		Blocks:      blocks,
		BlockSize:   blockSize,
		MemoryBytes: 256 * blockSize,
		Sealer:      blockcipher.NullSealer{},
		RNG:         rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	var reads []int64
	o.Stor().SetHook(func(_ string, op device.Op, slot int64) {
		if op == device.OpRead && !o.InShuffle() {
			reads = append(reads, slot)
		}
	})
	var reqs []*horam.Request
	for i := 0; i < requests; i++ {
		reqs = append(reqs, &horam.Request{Op: horam.OpRead, Addr: gen.Next()})
	}
	if err := o.RunBatch(reqs); err != nil {
		log.Fatal(err)
	}
	return reads, o.Partitions() * o.PartitionSlots()
}

func printHistogram(slots []int64, span int64) {
	counts := make([]int, bins)
	for _, s := range slots {
		b := int(s * bins / span)
		if b == bins {
			b--
		}
		counts[b]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for b, c := range counts {
		bar := strings.Repeat("#", c*50/max)
		fmt.Printf("  region %2d |%-50s| %d\n", b, bar, c)
	}
}
