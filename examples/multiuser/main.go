// multiuser demonstrates §5.3.2: several users share one H-ORAM. Their
// request streams interleave in the scheduler's reorder buffer, so one
// storage load plus c in-memory reads per cycle serves whichever users
// have work — the group strategy absorbs multi-tenant traffic without
// extra cost per new user, and no user's access pattern is visible on
// the storage bus.
//
//	go run ./examples/multiuser
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/core"
	"repro/internal/workload"
)

const (
	users      = 4
	perUser    = 1024 // blocks per user region
	reqPerUser = 500
)

func main() {
	client, err := core.Open(core.Options{
		Blocks:      users * perUser,
		BlockSize:   512,
		MemoryBytes: 512 << 10,
		Key:         bytes.Repeat([]byte{9}, 32),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each user gets a private address region and an 80/20 workload
	// over it.
	rng := blockcipher.NewRNGFromString("multiuser-example")
	gens := make([]workload.Generator, users)
	for u := 0; u < users; u++ {
		g, err := workload.NewHotspot(perUser, 0.8, 0.05, rng.Fork(fmt.Sprint("user", u)))
		if err != nil {
			log.Fatal(err)
		}
		gens[u] = g
	}

	// Interleave the streams round-robin into one batch — the shared
	// ROB is exactly how the paper's scheduler absorbs multiple users.
	var reqs []*core.Request
	for i := 0; i < reqPerUser; i++ {
		for u := 0; u < users; u++ {
			addr := int64(u*perUser) + gens[u].Next()
			reqs = append(reqs, &core.Request{Addr: addr, User: u})
		}
	}
	if err := client.Batch(reqs); err != nil {
		log.Fatal(err)
	}

	// Per-user accounting.
	served := make([]int, users)
	for _, r := range reqs {
		served[r.User]++
	}
	st := client.Stats()
	fmt.Printf("%d users sharing one H-ORAM, %d total requests\n", users, len(reqs))
	for u, n := range served {
		fmt.Printf("  user %d: %d requests served\n", u, n)
	}
	fmt.Printf("cycles=%d misses=%d hits=%d dummyIO=%d shuffles=%d\n",
		st.Cycles, st.Misses, st.Hits, st.DummyIO, st.Shuffles)
	fmt.Printf("simulated time %v -> %v per request across all users\n",
		st.SimulatedTime, st.SimulatedTime/time.Duration(len(reqs)))
}
