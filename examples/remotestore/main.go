// remotestore demonstrates the paper's client/server deployment
// (Figures 2-3 and 5-2): the H-ORAM and its shuffle run inside horamd
// on the "server", and this client talks to it over TCP, so the costly
// reshuffle never crosses the network.
//
// The example spawns an in-process horamd-equivalent listener on a
// random port, then drives it with the text protocol — run it with no
// arguments, or point it at a separately launched horamd with -addr.
//
//	go run ./examples/remotestore
//	go run ./cmd/horamd &  then  go run ./examples/remotestore -addr 127.0.0.1:7312
package main

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", "", "address of a running horamd (empty: start one in-process)")
	flag.Parse()

	target := *addr
	if target == "" {
		var err error
		target, err = startInProcessServer()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("started in-process block server on %s\n", target)
	}

	conn, err := net.Dial("tcp", target)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))

	send := func(format string, args ...any) string {
		fmt.Fprintf(rw, format+"\n", args...)
		if err := rw.Flush(); err != nil {
			log.Fatal(err)
		}
		line, err := rw.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	// Store a document split across blocks.
	doc := "the quick brown fox jumps over the lazy dog"
	block := make([]byte, 1024)
	copy(block, doc)
	resp := send("WRITE 7 %s", hex.EncodeToString(block))
	fmt.Println("WRITE 7 ->", resp)

	resp = send("READ 7")
	if !strings.HasPrefix(resp, "OK ") {
		log.Fatalf("read failed: %s", resp)
	}
	data, err := hex.DecodeString(strings.TrimPrefix(resp, "OK "))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("READ 7  -> %q\n", bytes.TrimRight(data, "\x00"))

	// Hammer the same block: the server's ORAM hides the repetition
	// from anyone watching its storage backend.
	for i := 0; i < 10; i++ {
		send("READ 7")
	}
	fmt.Println("STATS   ->", send("STATS"))
	// QUIT closes the connection server-side; no reply is expected.
	fmt.Fprintln(rw, "QUIT")
	rw.Flush()
}

// startInProcessServer runs a minimal horamd-compatible listener and
// returns its address. It reuses the same core.Client API the real
// daemon wraps.
func startInProcessServer() (string, error) {
	client, err := core.Open(core.Options{
		Blocks:      8192,
		BlockSize:   1024,
		MemoryBytes: 1 << 20,
		Key:         bytes.Repeat([]byte{0x2a}, 32),
	})
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(conn, client)
		}
	}()
	return ln.Addr().String(), nil
}

func serve(conn net.Conn, client *core.Client) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 {
			continue
		}
		var resp string
		switch strings.ToUpper(fields[0]) {
		case "QUIT":
			return
		case "READ":
			var addr int64
			fmt.Sscan(fields[1], &addr)
			data, err := client.Read(addr)
			if err != nil {
				resp = "ERR " + err.Error()
			} else {
				resp = "OK " + hex.EncodeToString(data)
			}
		case "WRITE":
			var addr int64
			fmt.Sscan(fields[1], &addr)
			data, err := hex.DecodeString(fields[2])
			if err == nil {
				err = client.Write(addr, data)
			}
			if err != nil {
				resp = "ERR " + err.Error()
			} else {
				resp = "OK"
			}
		case "STATS":
			st := client.Stats()
			resp = fmt.Sprintf("OK requests=%d hits=%d misses=%d shuffles=%d simtime=%s",
				st.Requests, st.Hits, st.Misses, st.Shuffles, st.SimulatedTime)
		default:
			resp = "ERR unknown command"
		}
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}
