// remotestore demonstrates the paper's client/server deployment
// (Figures 2-3 and 5-2): the H-ORAM and its shuffle run inside horamd
// on the "server", and this client talks to it over TCP, so the costly
// reshuffle never crosses the network.
//
// The example spawns an in-process horamd-equivalent listener (the
// same internal/server package the daemon uses) on a random port,
// then drives it with the typed client — run it with no arguments, or
// point it at a separately launched horamd with -addr.
//
//	go run ./examples/remotestore
//	go run ./cmd/horamd &  then  go run ./examples/remotestore -addr 127.0.0.1:7312
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "address of a running horamd (empty: start one in-process)")
	flag.Parse()

	target := *addr
	if target == "" {
		var err error
		target, err = startInProcessServer()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("started in-process block server on %s\n", target)
	}

	c, err := client.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close() //horam:errok example teardown; the demo output is already printed

	// Store a document, read it back.
	doc := "the quick brown fox jumps over the lazy dog"
	block := make([]byte, 1024)
	copy(block, doc)
	if err := c.Write(7, block); err != nil {
		log.Fatal(err)
	}
	fmt.Println("WRITE 7 -> OK")
	data, err := c.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("READ 7  -> %q\n", bytes.TrimRight(data, "\x00"))

	// MULTI: ten reads of the same block run as ONE scheduler batch on
	// the server — the ORAM hides the repetition from anyone watching
	// its storage backend, and the batch amortises the storage loads.
	ops := make([]client.Op, 10)
	for i := range ops {
		ops[i] = client.Op{Addr: 7}
	}
	res, err := c.Batch(ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MULTI %d -> %d results, all equal: %v\n", len(ops), len(res),
		bytes.Equal(res[0].Data, res[len(res)-1].Data))

	kv, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STATS   -> requests=%s hits=%s misses=%s batches=%s mean_batch=%s\n",
		kv["requests"], kv["hits"], kv["misses"], kv["batches"], kv["mean_batch"])
}

// startInProcessServer runs the real serving stack (internal/server
// over internal/core) on a random loopback port.
func startInProcessServer() (string, error) {
	store, err := engine.New(engine.Options{
		Blocks:      8192,
		BlockSize:   1024,
		MemoryBytes: 1 << 20,
		Key:         bytes.Repeat([]byte{0x2a}, 32),
		Shards:      2,
	})
	if err != nil {
		return "", err
	}
	srv, err := server.New(server.Config{Engine: store})
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
