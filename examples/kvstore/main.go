// kvstore builds a small oblivious key-value store on top of the
// H-ORAM block interface — the kind of outsourced-database workload
// the paper's introduction motivates (searchable storage whose access
// pattern must not leak which records are popular).
//
// Keys are hashed to block addresses (open addressing, linear
// probing); every block stores key-length, key, value-length, value.
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
)

const (
	tableBlocks = 2048
	blockSize   = 256
)

// kv is the oblivious hash table.
type kv struct {
	store core.Store
}

// put inserts or updates a key. Linear probing over the (oblivious)
// block store: the adversary sees indistinguishable ORAM accesses
// regardless of which bucket chain is walked.
func (s *kv) put(key, value string) error {
	if 4+len(key)+4+len(value) > blockSize {
		return fmt.Errorf("kv: entry %q too large", key)
	}
	h := addrOf(key)
	for probe := int64(0); probe < tableBlocks; probe++ {
		addr := (h + probe) % tableBlocks
		blk, err := s.store.Read(addr)
		if err != nil {
			return err
		}
		k, _ := decode(blk)
		if k != "" && k != key {
			continue // occupied by another key
		}
		return s.store.Write(addr, encode(key, value))
	}
	return fmt.Errorf("kv: table full")
}

// get looks a key up, returning ok=false when absent.
func (s *kv) get(key string) (string, bool, error) {
	h := addrOf(key)
	for probe := int64(0); probe < tableBlocks; probe++ {
		addr := (h + probe) % tableBlocks
		blk, err := s.store.Read(addr)
		if err != nil {
			return "", false, err
		}
		k, v := decode(blk)
		if k == "" {
			return "", false, nil // hit an empty slot: absent
		}
		if k == key {
			return v, true, nil
		}
	}
	return "", false, nil
}

func addrOf(key string) int64 {
	sum := sha256.Sum256([]byte(key))
	return int64(binary.BigEndian.Uint64(sum[:8]) % uint64(tableBlocks))
}

func encode(key, value string) []byte {
	out := make([]byte, blockSize)
	binary.BigEndian.PutUint32(out[0:], uint32(len(key)))
	copy(out[4:], key)
	off := 4 + len(key)
	binary.BigEndian.PutUint32(out[off:], uint32(len(value)))
	copy(out[off+4:], value)
	return out
}

func decode(blk []byte) (key, value string) {
	kl := binary.BigEndian.Uint32(blk[0:])
	if kl == 0 || int(kl) > blockSize-8 {
		return "", ""
	}
	key = string(blk[4 : 4+kl])
	off := 4 + int(kl)
	vl := binary.BigEndian.Uint32(blk[off:])
	if int(vl) > blockSize-off-4 {
		return "", ""
	}
	value = string(blk[off+4 : off+4+int(vl)])
	return key, value
}

func main() {
	client, err := core.Open(core.Options{
		Blocks:      tableBlocks,
		BlockSize:   blockSize,
		MemoryBytes: 64 << 10,
		Key:         bytes.Repeat([]byte{7}, 32),
	})
	if err != nil {
		log.Fatal(err)
	}
	store := &kv{store: client}

	records := map[string]string{
		"alice":   "patient file #1842",
		"bob":     "patient file #0017",
		"carol":   "patient file #9310",
		"dave":    "patient file #4444",
		"erin":    "patient file #2718",
		"mallory": "flagged for review",
	}
	for k, v := range records {
		if err := store.put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted %d records into the oblivious table\n", len(records))

	// Popular key hammered: the ORAM hides that "alice" is hot.
	for i := 0; i < 20; i++ {
		if _, _, err := store.get("alice"); err != nil {
			log.Fatal(err)
		}
	}
	for _, k := range []string{"alice", "mallory", "nobody"} {
		v, ok, err := store.get(k)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("get(%-7s) = %q\n", k, v)
		} else {
			fmt.Printf("get(%-7s) = <absent>\n", k)
		}
	}

	st := client.Stats()
	fmt.Printf("\nORAM served %d requests (%d hits, %d misses, %d shuffles)\n",
		st.Requests, st.Hits, st.Misses, st.Shuffles)
	fmt.Println("an observer of the storage bus cannot tell alice was read 21 times")
}
