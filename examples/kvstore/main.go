// kvstore demonstrates the oblivious key–value subsystem
// (internal/okv) over the sharded H-ORAM engine — the
// outsourced-database workload the paper's introduction motivates:
// storage whose access pattern must not reveal which records are
// popular.
//
// An earlier version of this example hand-rolled a linear-probing
// hash table over the block store. That leaked: a lookup walked the
// key's collision chain, so the NUMBER of ORAM operations depended on
// the key and the table's occupancy — a full-table insert burned up
// to 2048 sequential reads before failing, and a popular key's chain
// length was visible in the op count even though each individual
// access was hidden. internal/okv closes exactly that channel: every
// GET/SET/DEL issues one identical fixed pipeline of block batches
// (asserted live below), whatever the key, the occupancy, the value
// size, or whether the op hits, misses, inserts, updates or deletes.
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/okv"
)

// countingBackend wraps the engine and tallies the block requests of
// each backend batch, so the demo can PROVE the fixed shape instead
// of asserting it rhetorically.
type countingBackend struct {
	*engine.Engine
	batches []int // request count per batch since the last reset
}

func (c *countingBackend) Batch(reqs []*core.Request) error {
	c.batches = append(c.batches, len(reqs))
	return c.Engine.Batch(reqs)
}

func (c *countingBackend) take() []int {
	out := c.batches
	c.batches = nil
	return out
}

func main() {
	eng, err := engine.New(engine.Options{
		Blocks:      1536,
		BlockSize:   256,
		MemoryBytes: 64 << 10,
		Key:         bytes.Repeat([]byte{7}, 32),
		Shards:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close() //horam:errok example teardown; the demo output is already printed

	be := &countingBackend{Engine: eng}
	store, err := okv.New(okv.Options{
		Backend:       be,
		MaxValueBytes: 512,
		Key:           bytes.Repeat([]byte{7}, 32),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	shape := store.Shape()
	wantBatches := []int{shape.LookupReads, shape.ExtentReads, shape.Writes}
	fmt.Printf("table: capacity %d keys, value cap %d B\n", store.Capacity(), store.MaxValueBytes())
	fmt.Printf("fixed op shape: %d slot reads + %d extent reads + %d writes, every op\n\n",
		shape.LookupReads, shape.ExtentReads, shape.Writes)

	// assertShape verifies an op issued exactly the fixed pipeline.
	assertShape := func(op string) {
		got := be.take()
		if len(got) != len(wantBatches) {
			log.Fatalf("%s issued %d batches %v, want %v — shape leak!", op, len(got), got, wantBatches)
		}
		for i := range got {
			if got[i] != wantBatches[i] {
				log.Fatalf("%s batch %d carried %d requests, want %d — shape leak!", op, i, got[i], wantBatches[i])
			}
		}
	}

	records := map[string]string{
		"alice":   "patient file #1842",
		"bob":     "patient file #0017",
		"carol":   "patient file #9310",
		"dave":    "patient file #4444",
		"erin":    "patient file #2718",
		"mallory": "flagged for review",
	}
	for k, v := range records {
		if err := store.Set([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
		assertShape("SET " + k)
	}
	fmt.Printf("inserted %d records into the oblivious table\n", len(records))

	// Popular key hammered: the op count per access is constant, so
	// the bus cannot tell "alice" is hot.
	for i := 0; i < 20; i++ {
		if _, ok, err := store.Get([]byte("alice")); err != nil || !ok {
			log.Fatalf("hot get %d: ok=%v err=%v", i, ok, err)
		}
		assertShape("GET alice")
	}

	for _, k := range []string{"alice", "mallory", "nobody"} {
		v, ok, err := store.Get([]byte(k))
		if err != nil {
			log.Fatal(err)
		}
		assertShape("GET " + k)
		if ok {
			fmt.Printf("get(%-7s) = %q\n", k, v)
		} else {
			fmt.Printf("get(%-7s) = <absent>\n", k)
		}
	}

	// Delete — present and absent both run the identical pipeline.
	for _, k := range []string{"mallory", "mallory"} {
		existed, err := store.Del([]byte(k))
		if err != nil {
			log.Fatal(err)
		}
		assertShape("DEL " + k)
		fmt.Printf("del(%-7s) existed=%v\n", k, existed)
	}

	st := store.Stats()
	sum := eng.Stats()
	fmt.Printf("\nkv: %d live keys, %d gets, %d sets, %d dels, %d misses\n",
		st.Count, st.Gets, st.Sets, st.Dels, st.Misses)
	fmt.Printf("engine: %d block requests, %d hits, %d misses, %d shuffles across %d shards\n",
		sum.Requests, sum.Hits, sum.Misses, sum.Shuffles, sum.Shards)
	fmt.Println("every op above issued the identical block pipeline: an observer of the")
	fmt.Println("storage bus cannot tell alice was read 21 times, nor a hit from a miss")
}
