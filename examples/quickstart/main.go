// Quickstart: open an H-ORAM client, write some blocks, read them
// back, and print what the scheme did under the hood.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	key := bytes.Repeat([]byte{0x42}, 32)
	client, err := core.Open(core.Options{
		Blocks:      4096,    // 4 Mi data set of 1 KiB blocks
		MemoryBytes: 1 << 20, // 1 MiB trusted-adjacent cache tier
		Key:         key,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Store a few blocks.
	for i := int64(0); i < 8; i++ {
		block := make([]byte, client.BlockSize())
		copy(block, fmt.Sprintf("hello from block %d", i))
		if err := client.Write(i, block); err != nil {
			log.Fatal(err)
		}
	}

	// Read one back.
	data, err := client.Read(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block 3 says: %q\n", bytes.TrimRight(data, "\x00"))

	// Batched access is the intended mode: the secure scheduler groups
	// cache hits with storage loads so every cycle looks identical on
	// the bus.
	var reqs []*core.Request
	for i := int64(0); i < 8; i++ {
		reqs = append(reqs, &core.Request{Addr: i}) // reads
	}
	if err := client.Batch(reqs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d reads completed\n", len(reqs))

	st := client.Stats()
	fmt.Printf("requests=%d hits=%d misses=%d dummyIO=%d shuffles=%d\n",
		st.Requests, st.Hits, st.Misses, st.DummyIO, st.Shuffles)
	fmt.Printf("simulated time: %v (access %v, shuffle %v)\n",
		st.SimulatedTime, st.AccessTime, st.ShuffleTime)
}
