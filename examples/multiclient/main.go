// multiclient demonstrates the batched serving layer under real
// concurrency: N independent TCP clients hammer one horamd-style
// server at once, and the server's batching window groups their
// in-flight requests into shared reorder-buffer batches — one storage
// load amortised across c in-memory hits (§4.2) even though no single
// client ever batches anything itself.
//
//	go run ./examples/multiclient
//	go run ./examples/multiclient -clients 16 -ops 100
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	clients := flag.Int("clients", 8, "number of concurrent TCP clients")
	ops := flag.Int("ops", 50, "requests per client")
	shards := flag.Int("shards", 2, "H-ORAM shard count")
	flag.Parse()

	store, err := engine.New(engine.Options{
		Blocks:      16384,
		BlockSize:   512,
		MemoryBytes: 2 << 20,
		Key:         bytes.Repeat([]byte{0x17}, 32),
		Shards:      *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: store})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("server on %s, %d clients x %d ops\n", addr, *clients, *ops)

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close() //horam:errok example teardown; the demo output is already printed
			region := int64(1024)
			base := int64(id) * region
			payload := bytes.Repeat([]byte{byte(id + 1)}, 512)
			for i := 0; i < *ops; i++ {
				a := base + int64(i)%region
				if i%2 == 0 {
					if err := c.Write(a, payload); err != nil {
						log.Fatalf("client %d: %v", id, err)
					}
				} else if _, err := c.Read(a); err != nil {
					log.Fatalf("client %d: %v", id, err)
				}
			}
		}(id)
	}
	wg.Wait()
	wall := time.Since(start)

	st := srv.Stats()
	total := *clients * *ops
	fmt.Printf("%d requests in %v wall time (%.0f req/s)\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	fmt.Printf("scheduler batches: %d, mean batch size %.2f, histogram %s\n",
		st.Batches, st.MeanBatch, st.HistogramString())
	cs := store.Stats()
	fmt.Printf("engine: shards=%d hits=%d misses=%d shuffles=%d simtime=%v\n",
		cs.Shards, cs.Hits, cs.Misses, cs.Shuffles, cs.SimTime.Round(time.Millisecond))
	for _, sh := range store.ShardStats() {
		fmt.Printf("  shard %d: drains=%d reqs=%d mean=%.2f hist=%s\n",
			sh.Shard, sh.Batches, sh.Requests, sh.MeanBatch, engine.FormatHist(sh.Hist))
	}
	srv.Close()   //horam:errok example teardown; the demo output is already printed
	store.Close() //horam:errok example teardown; the demo output is already printed
}
