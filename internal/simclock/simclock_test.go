package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceIgnoresZero(t *testing.T) {
	c := New()
	c.Advance(0)
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.Advance(10 * time.Millisecond)

	// Past target: no change.
	if got := c.AdvanceTo(5 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("AdvanceTo(past) = %v, want 10ms", got)
	}
	// Future target: jump.
	if got := c.AdvanceTo(25 * time.Millisecond); got != 25*time.Millisecond {
		t.Fatalf("AdvanceTo(future) = %v, want 25ms", got)
	}
	if got := c.Now(); got != 25*time.Millisecond {
		t.Fatalf("Now() = %v, want 25ms", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), workers*perWorker*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(time.Millisecond)
	sw := StartStopwatch(c)
	c.Advance(7 * time.Millisecond)
	if got, want := sw.Elapsed(), 7*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator()
	a.Add("io", time.Second)
	a.Add("io", 2*time.Second)
	a.Add("mem", time.Millisecond)

	if got, want := a.Get("io"), 3*time.Second; got != want {
		t.Fatalf("Get(io) = %v, want %v", got, want)
	}
	if got, want := a.Get("mem"), time.Millisecond; got != want {
		t.Fatalf("Get(mem) = %v, want %v", got, want)
	}
	if got := a.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %v, want 0", got)
	}
	if got, want := a.Total(), 3*time.Second+time.Millisecond; got != want {
		t.Fatalf("Total() = %v, want %v", got, want)
	}

	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() has %d buckets, want 2", len(snap))
	}
	// Mutating the snapshot must not affect the accumulator.
	snap["io"] = 0
	if got, want := a.Get("io"), 3*time.Second; got != want {
		t.Fatalf("Get(io) after snapshot mutation = %v, want %v", got, want)
	}
}

func TestAccumulatorConcurrent(t *testing.T) {
	a := NewAccumulator()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				a.Add("x", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := a.Get("x"), 2000*time.Microsecond; got != want {
		t.Fatalf("Get(x) = %v, want %v", got, want)
	}
}

func TestAccumulatorString(t *testing.T) {
	a := NewAccumulator()
	if got := a.String(); got != "" {
		t.Fatalf("empty String() = %q, want \"\"", got)
	}
	a.Add("io", time.Second)
	if got, want := a.String(), "io=1s"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
