// Package simclock provides a virtual clock for the discrete-event
// device simulation used throughout this repository.
//
// Every simulated component (HDD, DRAM, bus) advances a shared Clock
// instead of sleeping, so experiments that model minutes of real I/O
// complete in milliseconds of wall time and are fully deterministic.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is
// ready to use and starts at time 0. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a Clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start of
// the simulation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are
// ignored: virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to absolute virtual time t if t is
// in the future; otherwise the clock is unchanged. It returns the
// resulting current time. AdvanceTo models the completion of an
// operation scheduled to finish at t on a device that may already have
// been overtaken by other traffic.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Intended for test and benchmark
// harnesses that reuse one Clock across runs.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// Stopwatch measures an interval of virtual time against a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring virtual time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the virtual time accumulated since the stopwatch was
// started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Accumulator tallies named buckets of virtual time, e.g. time spent
// in storage I/O vs memory access vs shuffling. It is safe for
// concurrent use.
type Accumulator struct {
	mu      sync.Mutex
	buckets map[string]time.Duration
}

// NewAccumulator returns an empty Accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{buckets: make(map[string]time.Duration)}
}

// Add credits d to the named bucket.
func (a *Accumulator) Add(name string, d time.Duration) {
	a.mu.Lock()
	a.buckets[name] += d
	a.mu.Unlock()
}

// Get returns the total credited to the named bucket.
func (a *Accumulator) Get(name string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.buckets[name]
}

// Total returns the sum over all buckets.
func (a *Accumulator) Total() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t time.Duration
	for _, d := range a.buckets {
		t += d
	}
	return t
}

// Snapshot returns a copy of the bucket map.
func (a *Accumulator) Snapshot() map[string]time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]time.Duration, len(a.buckets))
	for k, v := range a.buckets {
		out[k] = v
	}
	return out
}

// String renders the accumulator as "name=dur name=dur ..." with keys
// in unspecified order; intended for debug logging only.
func (a *Accumulator) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := ""
	for k, v := range a.buckets {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", k, v)
	}
	return s
}
