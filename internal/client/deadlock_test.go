// Regression test for the Close-vs-stalled-server deadlock: do used to
// send on the bounded pending channel while holding the send mutex, so
// with a hung server and more in-flight calls than the channel
// capacity, the blocked sender held the mutex forever and Close —
// waiting on the same mutex — could never run.
package client

import (
	"net"
	"sync"
	"testing"
	"time"
)

// startStalledServer accepts connections and reads (so client writes
// never block on TCP backpressure) but never responds.
func startStalledServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestCloseAgainstStalledServer(t *testing.T) {
	addr := startStalledServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	// Strictly more in-flight calls than the pending channel holds, so
	// at least one sender is parked on the channel send itself (holding
	// the send mutex) and the rest queue behind the mutex.
	inflight := cap(c.pending)*3/2 + 8
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Read(int64(i))
		}(i)
	}
	// Let the callers pile up: the pipeline must be full and a sender
	// blocked before Close runs, or the regression is not exercised.
	deadline := time.Now().Add(2 * time.Second)
	for len(c.pending) < cap(c.pending) {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never filled: %d/%d", len(c.pending), cap(c.pending))
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked against a stalled server with a full pipeline")
	}

	// Every in-flight call unwinds with an error — none hangs, none
	// pretends to have succeeded.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight calls never unwound after Close")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("call %d reported success against a server that never responded", i)
		}
	}

	// Close is idempotent afterwards, and new calls fail fast.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Read(0); err != ErrClosed {
		t.Fatalf("Read after Close = %v, want ErrClosed", err)
	}
}
