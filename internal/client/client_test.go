package client

import (
	"bytes"
	"testing"
)

func TestParseReadLine(t *testing.T) {
	data, err := parseReadLine("OK 00ff10")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0x00, 0xff, 0x10}) {
		t.Fatalf("parsed %x", data)
	}
	if _, err := parseReadLine("ERR address 9 out of range"); err == nil {
		t.Error("ERR line accepted")
	} else if err.Error() != "client: address 9 out of range" {
		t.Errorf("error = %q", err)
	}
	if _, err := parseReadLine("OK zz"); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestParseOKLine(t *testing.T) {
	if err := parseOKLine("OK"); err != nil {
		t.Error(err)
	}
	if err := parseOKLine("OK 5"); err != nil {
		t.Error(err)
	}
	if err := parseOKLine("ERR boom"); err == nil {
		t.Error("ERR line accepted")
	}
}

func TestStatInt(t *testing.T) {
	kv := map[string]string{"requests": "42", "mean_batch": "3.5"}
	n, err := StatInt(kv, "requests")
	if err != nil || n != 42 {
		t.Errorf("StatInt = %d, %v", n, err)
	}
	if _, err := StatInt(kv, "absent"); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := StatInt(kv, "mean_batch"); err == nil {
		t.Error("non-integer accepted")
	}
}
