package client

import (
	"fmt"
	"strconv"
	"time"
)

// StatsLine is the typed view of a server STATS response — what the
// smoke drivers and operator tooling used to re-parse out of the raw
// k=v map by hand. Parse one with ParseStats(c.Stats()).
type StatsLine struct {
	// Engine aggregates.
	Requests int64
	Hits     int64
	Misses   int64
	Shuffles int64
	Quanta   int64
	MaxCycle time.Duration
	SimTime  time.Duration
	Shards   int

	// Server window counters.
	Conns     int64 // connections accepted
	Active    int64
	Rejected  int64
	Batches   int64
	MeanBatch float64
	Hist      string // window drain-size histogram ("1:12,3-4:2" or "-")
	ShardHist string // aggregated per-shard drain histogram

	// KV is non-nil when the server runs the oblivious key–value
	// layer (horamd -kv).
	KV *KVStats

	// PerShard holds one entry per shard, indexed by shard id.
	PerShard []ShardStats
}

// KVStats is the kv_* key group of a STATS line.
type KVStats struct {
	Count    int64
	Capacity int64
	Gets     int64
	Sets     int64
	Dels     int64
	Misses   int64
}

// ShardStats is one s<i>_* key group of a STATS line.
type ShardStats struct {
	Shard    int
	Depth    int64
	Cycles   int64
	Pad      int64
	Quanta   int64
	MaxCycle time.Duration
	Batches  int64
	Requests int64
	Hist     string
}

// statFields walks required fields of one k=v map, remembering the
// first failure so call sites stay linear.
type statFields struct {
	kv  map[string]string
	err error
}

func (p *statFields) int(key string) int64 {
	if p.err != nil {
		return 0
	}
	v, ok := p.kv[key]
	if !ok {
		p.err = fmt.Errorf("client: stats field %q missing", key)
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		p.err = fmt.Errorf("client: stats field %s=%q: %w", key, v, err)
		return 0
	}
	return n
}

func (p *statFields) float(key string) float64 {
	if p.err != nil {
		return 0
	}
	v, ok := p.kv[key]
	if !ok {
		p.err = fmt.Errorf("client: stats field %q missing", key)
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.err = fmt.Errorf("client: stats field %s=%q: %w", key, v, err)
		return 0
	}
	return f
}

func (p *statFields) duration(key string) time.Duration {
	if p.err != nil {
		return 0
	}
	v, ok := p.kv[key]
	if !ok {
		p.err = fmt.Errorf("client: stats field %q missing", key)
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.err = fmt.Errorf("client: stats field %s=%q: %w", key, v, err)
		return 0
	}
	return d
}

func (p *statFields) str(key string) string {
	if p.err != nil {
		return ""
	}
	v, ok := p.kv[key]
	if !ok {
		p.err = fmt.Errorf("client: stats field %q missing", key)
	}
	return v
}

// ParseStats converts a Stats() k=v map into the typed StatsLine,
// including the optional kv_* group and every s<i>_* shard group (the
// shards field says how many to expect). Every field the server
// renders is required except the kv group; a missing or malformed
// field is an error naming it.
func ParseStats(kv map[string]string) (StatsLine, error) {
	p := &statFields{kv: kv}
	st := StatsLine{
		Requests:  p.int("requests"),
		Hits:      p.int("hits"),
		Misses:    p.int("misses"),
		Shuffles:  p.int("shuffles"),
		Quanta:    p.int("quanta"),
		MaxCycle:  p.duration("max_cycle"),
		SimTime:   p.duration("simtime"),
		Shards:    int(p.int("shards")),
		Conns:     p.int("conns"),
		Active:    p.int("active"),
		Rejected:  p.int("rejected"),
		Batches:   p.int("batches"),
		MeanBatch: p.float("mean_batch"),
		Hist:      p.str("hist"),
		ShardHist: p.str("shard_hist"),
	}
	if _, ok := kv["kv_count"]; ok {
		st.KV = &KVStats{
			Count:    p.int("kv_count"),
			Capacity: p.int("kv_capacity"),
			Gets:     p.int("kv_gets"),
			Sets:     p.int("kv_sets"),
			Dels:     p.int("kv_dels"),
			Misses:   p.int("kv_misses"),
		}
	}
	if p.err != nil {
		return StatsLine{}, p.err
	}
	if st.Shards < 0 || st.Shards > 1<<16 {
		return StatsLine{}, fmt.Errorf("client: stats field shards=%d out of range", st.Shards)
	}
	st.PerShard = make([]ShardStats, st.Shards)
	for i := range st.PerShard {
		pre := "s" + strconv.Itoa(i) + "_"
		st.PerShard[i] = ShardStats{
			Shard:    i,
			Depth:    p.int(pre + "depth"),
			Cycles:   p.int(pre + "cycles"),
			Pad:      p.int(pre + "pad"),
			Quanta:   p.int(pre + "quanta"),
			MaxCycle: p.duration(pre + "maxcycle"),
			Batches:  p.int(pre + "batches"),
			Requests: p.int(pre + "reqs"),
			Hist:     p.str(pre + "hist"),
		}
	}
	if p.err != nil {
		return StatsLine{}, p.err
	}
	return st, nil
}
