package client

import (
	"strings"
	"testing"
	"time"
)

// statsFixture is a plausible 2-shard KV-mode STATS map, shaped like
// internal/server's appendStatsLine output. The live round trip
// against a real server lives in internal/server's obs tests; these
// unit tests pin the parser's own contract.
func statsFixture() map[string]string {
	return map[string]string{
		"requests": "96", "hits": "40", "misses": "56",
		"shuffles": "2", "quanta": "52",
		"max_cycle": "0.000128000s", "simtime": "0.012288000s",
		"shards": "2",
		"conns":  "3", "active": "1", "rejected": "0",
		"batches": "48", "mean_batch": "2.00",
		"hist": "1:12,2:36", "shard_hist": "1:24,2:36",
		"kv_count": "5", "kv_capacity": "64",
		"kv_gets": "10", "kv_sets": "6", "kv_dels": "1", "kv_misses": "2",
		"s0_depth": "256", "s0_cycles": "60", "s0_pad": "10", "s0_quanta": "26",
		"s0_maxcycle": "0.000128000s", "s0_batches": "30", "s0_reqs": "50", "s0_hist": "1:10,2:20",
		"s1_depth": "256", "s1_cycles": "60", "s1_pad": "14", "s1_quanta": "26",
		"s1_maxcycle": "0.000128000s", "s1_batches": "18", "s1_reqs": "46", "s1_hist": "1:14,2:16",
	}
}

func TestParseStatsFixture(t *testing.T) {
	st, err := ParseStats(statsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 96 || st.Shards != 2 || st.MeanBatch != 2.00 {
		t.Fatalf("parsed %+v", st)
	}
	if st.MaxCycle != 128*time.Microsecond {
		t.Fatalf("max_cycle parsed as %v", st.MaxCycle)
	}
	if st.KV == nil || st.KV.Gets != 10 || st.KV.Capacity != 64 {
		t.Fatalf("kv group parsed as %+v", st.KV)
	}
	if len(st.PerShard) != 2 {
		t.Fatalf("per-shard groups: %d", len(st.PerShard))
	}
	if s1 := st.PerShard[1]; s1.Shard != 1 || s1.Pad != 14 || s1.Hist != "1:14,2:16" {
		t.Fatalf("shard 1 parsed as %+v", s1)
	}
}

func TestParseStatsWithoutKVGroup(t *testing.T) {
	kv := statsFixture()
	for k := range kv {
		if strings.HasPrefix(k, "kv_") {
			delete(kv, k)
		}
	}
	st, err := ParseStats(kv)
	if err != nil {
		t.Fatal(err)
	}
	if st.KV != nil {
		t.Fatalf("kv group materialised from nothing: %+v", st.KV)
	}
}

func TestParseStatsErrors(t *testing.T) {
	// Every failure must name the offending field.
	cases := []struct {
		mutate func(map[string]string)
		want   string
	}{
		{func(kv map[string]string) { delete(kv, "requests") }, "requests"},
		{func(kv map[string]string) { kv["batches"] = "many" }, "batches"},
		{func(kv map[string]string) { kv["max_cycle"] = "128" }, "max_cycle"},
		{func(kv map[string]string) { delete(kv, "s1_cycles") }, "s1_cycles"},
		{func(kv map[string]string) { kv["kv_misses"] = "-" }, "kv_misses"},
		{func(kv map[string]string) { kv["shards"] = "70000" }, "shards"},
	}
	for _, tc := range cases {
		kv := statsFixture()
		tc.mutate(kv)
		_, err := ParseStats(kv)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("mutation of %s: err = %v, want mention of it", tc.want, err)
		}
	}
}
