// Package client is the TCP client for the horamd block protocol
// (see internal/server for the wire format). It supports pipelining —
// many goroutines may issue requests on one connection and each
// in-flight request only holds the send mutex while its bytes are
// written, so requests from concurrent callers interleave on the wire
// and land in the server's batching window together — and the MULTI
// verb, which runs a whole slice of operations as one scheduler batch
// on the server.
package client

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned for calls after Close.
var ErrClosed = errors.New("client: closed")

// MaxBatchOps is the protocol's cap on one MULTI command; it mirrors
// server.MaxMultiRequests (asserted equal in the server tests).
const MaxBatchOps = 1024

// call is one in-flight request awaiting its response lines.
type call struct {
	multi int // sub-responses expected after an OK header; 0 = single line
	ch    chan result
}

type result struct {
	lines []string
	err   error
}

// Client is a connection to a horamd-protocol server. Safe for
// concurrent use.
type Client struct {
	conn       net.Conn
	w          *bufio.Writer
	pending    chan *call
	readerDone chan struct{}

	// quit is closed by Close BEFORE it takes mu, so a sender blocked
	// on the bounded pending channel (stalled server, >cap in-flight
	// calls) wakes up and releases the mutex instead of deadlocking
	// Close against it.
	quit      chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex // serialises writes and pending-queue order
	closed bool
}

// DialConfig bounds connection establishment. A plain net.Dial against
// a node that is down-but-routed (firewalled, mid-reboot, black-holed)
// blocks for the kernel's TCP handshake timeout — minutes — which a
// gateway assembling a cluster cannot afford. The zero value of each
// field selects the default.
type DialConfig struct {
	// Timeout bounds ONE connection attempt (DefaultDialTimeout if 0).
	Timeout time.Duration
	// Attempts is the total number of attempts, 1 meaning no retry
	// (default 1). A node that refuses fast (nothing listening yet)
	// burns attempts quickly, so pair Attempts > 1 with a Backoff.
	Attempts int
	// Backoff is the sleep after a failed attempt, doubling each retry
	// (DefaultDialBackoff if 0 and Attempts > 1).
	Backoff time.Duration
}

// Dial defaults.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultDialBackoff = 100 * time.Millisecond
)

// Dial connects to a horamd-protocol server with the default dial
// bounds (one attempt, DefaultDialTimeout).
func Dial(addr string) (*Client, error) {
	return DialWithConfig(addr, DialConfig{})
}

// DialWithConfig connects with explicit timeout/retry bounds. It
// returns the last attempt's error after the attempt budget is spent;
// it never blocks longer than Attempts × (Timeout + total backoff).
func DialWithConfig(addr string, cfg DialConfig) (*Client, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultDialTimeout
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultDialBackoff
	}
	var conn net.Conn
	var err error
	backoff := cfg.Backoff
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err = net.DialTimeout("tcp", addr, cfg.Timeout)
		if err == nil {
			return newClient(conn), nil
		}
	}
	return nil, fmt.Errorf("client: dial %s (%d attempts): %w", addr, cfg.Attempts, err)
}

func newClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		w:          bufio.NewWriter(conn),
		pending:    make(chan *call, 128),
		readerDone: make(chan struct{}),
		quit:       make(chan struct{}),
	}
	go c.reader(bufio.NewReaderSize(conn, 64<<10))
	return c
}

// reader matches response lines to in-flight calls in send order.
func (c *Client) reader(r *bufio.Reader) {
	defer close(c.readerDone)
	for pc := range c.pending {
		res := result{}
		line, err := readLine(r)
		if err != nil {
			pc.ch <- result{err: err}
			c.drain(err)
			return
		}
		res.lines = append(res.lines, line)
		if pc.multi > 0 && strings.HasPrefix(line, "OK") {
			for i := 0; i < pc.multi; i++ {
				sub, err := readLine(r)
				if err != nil {
					res.err = err
					break
				}
				res.lines = append(res.lines, sub)
			}
		}
		pc.ch <- res
		if res.err != nil {
			c.drain(res.err)
			return
		}
	}
}

// drain fails every remaining in-flight call after a transport error.
// Close closes the pending channel once no sender can hold it, so the
// range terminates.
func (c *Client) drain(err error) {
	for pc := range c.pending {
		pc.ch <- result{err: err}
	}
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// do writes the request lines and waits for the response. multi is
// the number of sub-responses expected after an "OK n" header, 0 for
// single-line responses. The send mutex is released before waiting,
// so concurrent callers pipeline.
//
// The enqueue onto the bounded pending channel can block when the
// server has stalled with a full pipeline; selecting on quit keeps
// Close able to interrupt the blocked sender (which holds the send
// mutex Close needs). An interrupted call may leave its bytes on the
// wire without a matching pending entry — which is only safe because
// nothing can be written AFTER it: once quit is closed, every later
// do aborts at the entry check below, before touching the wire, so
// the reader can never mis-attribute a buffered response to a
// subsequent request.
func (c *Client) do(multi int, lines ...string) ([]string, error) {
	pc := &call{multi: multi, ch: make(chan result, 1)}
	c.mu.Lock()
	select {
	case <-c.quit:
		// Closing or closed (quit is closed strictly before c.closed
		// is set): refuse before writing anything.
		c.mu.Unlock()
		return nil, ErrClosed
	default:
	}
	for _, l := range lines {
		c.w.WriteString(l)
		c.w.WriteByte('\n')
	}
	if err := c.w.Flush(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	select {
	case c.pending <- pc:
	case <-c.quit:
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	res := <-pc.ch
	if res.err != nil {
		return nil, res.err
	}
	return res.lines, nil
}

// Close sends QUIT (best effort), closes the connection and waits for
// the reader to unwind. In-flight calls fail with a transport error.
// Close always makes progress, even against a stalled server with a
// full pipeline: it first closes quit — without holding the send
// mutex — which unblocks any sender parked on the pending channel.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.quit) })
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.readerDone
		return nil
	}
	c.closed = true
	fmt.Fprintln(c.w, "QUIT")
	c.w.Flush()
	close(c.pending)
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Read fetches one block.
func (c *Client) Read(addr int64) ([]byte, error) {
	lines, err := c.do(0, fmt.Sprintf("READ %d", addr))
	if err != nil {
		return nil, err
	}
	return parseReadLine(lines[0])
}

// Write stores one block.
func (c *Client) Write(addr int64, data []byte) error {
	lines, err := c.do(0, fmt.Sprintf("WRITE %d %s", addr, hex.EncodeToString(data)))
	if err != nil {
		return err
	}
	return parseOKLine(lines[0])
}

// Op is one operation of a Batch call.
type Op struct {
	Write bool
	Addr  int64
	Data  []byte // required for writes
}

// Result is the per-operation outcome of a Batch call.
type Result struct {
	Data []byte // read results; nil for writes
	Err  error
}

// Batch runs the operations as one MULTI command — a single scheduler
// batch on the server — and returns per-operation results in order.
func (c *Client) Batch(ops []Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if len(ops) > MaxBatchOps {
		return nil, fmt.Errorf("client: batch of %d ops exceeds the protocol cap %d", len(ops), MaxBatchOps)
	}
	lines := make([]string, 0, len(ops)+1)
	lines = append(lines, fmt.Sprintf("MULTI %d", len(ops)))
	for _, op := range ops {
		if op.Write {
			lines = append(lines, fmt.Sprintf("WRITE %d %s", op.Addr, hex.EncodeToString(op.Data)))
		} else {
			lines = append(lines, fmt.Sprintf("READ %d", op.Addr))
		}
	}
	resp, err := c.do(len(ops), lines...)
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(resp[0], "OK") {
		return nil, errors.New("client: " + strings.TrimPrefix(resp[0], "ERR "))
	}
	if len(resp) != len(ops)+1 {
		return nil, fmt.Errorf("client: MULTI returned %d lines, want %d", len(resp)-1, len(ops))
	}
	out := make([]Result, len(ops))
	for i, line := range resp[1:] {
		if ops[i].Write {
			out[i].Err = parseOKLine(line)
		} else {
			out[i].Data, out[i].Err = parseReadLine(line)
		}
	}
	return out, nil
}

// KGet looks a key up in the server's oblivious key–value layer
// (horamd -kv), returning ok=false when the key is absent. Concurrent
// callers pipeline exactly like Read/Write.
func (c *Client) KGet(key []byte) (value []byte, ok bool, err error) {
	lines, err := c.do(0, "KGET "+hex.EncodeToString(key))
	if err != nil {
		return nil, false, err
	}
	line := lines[0]
	switch {
	case line == "MISS":
		return nil, false, nil
	case line == "OK":
		return []byte{}, true, nil
	case strings.HasPrefix(line, "OK "):
		v, err := hex.DecodeString(strings.TrimPrefix(line, "OK "))
		if err != nil {
			return nil, false, fmt.Errorf("client: bad KGET payload: %w", err)
		}
		return v, true, nil
	default:
		return nil, false, errors.New("client: " + strings.TrimPrefix(line, "ERR "))
	}
}

// KSet inserts or updates a key in the server's oblivious key–value
// layer. Value-length and key-length caps are enforced server-side
// (okv.ErrValueTooLarge / okv.ErrKeyInvalid surface as ERR lines); a
// full table surfaces okv.ErrTableFull's message.
func (c *Client) KSet(key, value []byte) error {
	line := "KSET " + hex.EncodeToString(key)
	if len(value) > 0 {
		line += " " + hex.EncodeToString(value)
	}
	lines, err := c.do(0, line)
	if err != nil {
		return err
	}
	return parseOKLine(lines[0])
}

// KDel removes a key from the server's oblivious key–value layer,
// reporting whether it existed. Deleting an absent key is not an
// error (and, server-side, runs the same fixed access shape).
func (c *Client) KDel(key []byte) (existed bool, err error) {
	lines, err := c.do(0, "KDEL "+hex.EncodeToString(key))
	if err != nil {
		return false, err
	}
	switch lines[0] {
	case "OK 1":
		return true, nil
	case "OK 0":
		return false, nil
	default:
		return false, errors.New("client: " + strings.TrimPrefix(lines[0], "ERR "))
	}
}

// Stats fetches the server's STATS line parsed into key=value pairs.
func (c *Client) Stats() (map[string]string, error) {
	lines, err := c.do(0, "STATS")
	if err != nil {
		return nil, err
	}
	line := lines[0]
	if !strings.HasPrefix(line, "OK") {
		return nil, errors.New("client: " + strings.TrimPrefix(line, "ERR "))
	}
	kv := make(map[string]string)
	for _, f := range strings.Fields(line)[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	return kv, nil
}

// Cycles fetches the node's cumulative scheduler cycle count — the
// CYCLES shard-control verb, answered only by horamd -shard-serve.
// It is the lightweight read a gateway's leveling pass uses (a full
// STATS line would do, but leveling runs after every batch).
func (c *Client) Cycles() (int64, error) {
	lines, err := c.do(0, "CYCLES")
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(lines[0], "OK ") {
		return 0, errors.New("client: " + strings.TrimPrefix(lines[0], "ERR "))
	}
	return strconv.ParseInt(strings.TrimPrefix(lines[0], "OK "), 10, 64)
}

// Pad runs dummy scheduler cycles on the node until its cumulative
// count reaches target (the PAD shard-control verb) and returns how
// many were run — the over-the-wire half of cross-node cycle
// leveling.
func (c *Client) Pad(target int64) (int64, error) {
	lines, err := c.do(0, fmt.Sprintf("PAD %d", target))
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(lines[0], "OK ") {
		return 0, errors.New("client: " + strings.TrimPrefix(lines[0], "ERR "))
	}
	return strconv.ParseInt(strings.TrimPrefix(lines[0], "OK "), 10, 64)
}

// Checkpt checkpoints the node's shard state at the explicit lifetime
// number (the CHECKPT shard-control verb), so a gateway can drive a
// cluster to one aligned checkpoint cut.
func (c *Client) Checkpt(n uint64) error {
	lines, err := c.do(0, fmt.Sprintf("CHECKPT %d", n))
	if err != nil {
		return err
	}
	return parseOKLine(lines[0])
}

// Peek fetches the node's manifest echo (the PEEK shard-control verb)
// parsed into key=value pairs: epoch, checkpoint, geometry, option
// flags, cluster identity and the hex-encoded seed. A gateway
// validates these against the placement-derived expectation before
// serving any traffic through the node.
func (c *Client) Peek() (map[string]string, error) {
	lines, err := c.do(0, "PEEK")
	if err != nil {
		return nil, err
	}
	line := lines[0]
	if !strings.HasPrefix(line, "OK") {
		return nil, errors.New("client: " + strings.TrimPrefix(line, "ERR "))
	}
	kv := make(map[string]string)
	for _, f := range strings.Fields(line)[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	return kv, nil
}

// Metrics fetches the node's Prometheus exposition (the METRICS
// shard-control verb, answered only by horamd -shard-serve): the
// leak-audited /metrics text a gateway aggregates into its own scrape
// so one scrape sees the whole cluster.
func (c *Client) Metrics() (string, error) {
	lines, err := c.do(0, "METRICS")
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(lines[0], "OK ") {
		return "", errors.New("client: " + strings.TrimPrefix(lines[0], "ERR "))
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(lines[0], "OK "))
	if err != nil {
		return "", fmt.Errorf("client: bad METRICS payload: %w", err)
	}
	return string(raw), nil
}

// TraceStart enables the server's request-path tracer (TRACE ON),
// resetting its span buffer.
func (c *Client) TraceStart() error {
	lines, err := c.do(0, "TRACE ON")
	if err != nil {
		return err
	}
	return parseOKLine(lines[0])
}

// TraceStop disables the server's request-path tracer (TRACE OFF);
// the recorded spans stay buffered for TraceDump.
func (c *Client) TraceStop() error {
	lines, err := c.do(0, "TRACE OFF")
	if err != nil {
		return err
	}
	return parseOKLine(lines[0])
}

// TraceDump fetches the recorded spans as chrome://tracing JSON
// (TRACE DUMP) — write it to a file and load it in chrome://tracing
// or ui.perfetto.dev.
func (c *Client) TraceDump() ([]byte, error) {
	lines, err := c.do(0, "TRACE DUMP")
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(lines[0], "OK ") {
		return nil, errors.New("client: " + strings.TrimPrefix(lines[0], "ERR "))
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(lines[0], "OK "))
	if err != nil {
		return nil, fmt.Errorf("client: bad TRACE DUMP payload: %w", err)
	}
	return raw, nil
}

// StatInt parses one numeric field of a Stats map.
func StatInt(kv map[string]string, key string) (int64, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("client: stats field %q missing", key)
	}
	return strconv.ParseInt(v, 10, 64)
}

func parseOKLine(line string) error {
	if line == "OK" || strings.HasPrefix(line, "OK ") {
		return nil
	}
	return errors.New("client: " + strings.TrimPrefix(line, "ERR "))
}

func parseReadLine(line string) ([]byte, error) {
	if !strings.HasPrefix(line, "OK ") {
		return nil, errors.New("client: " + strings.TrimPrefix(line, "ERR "))
	}
	data, err := hex.DecodeString(strings.TrimPrefix(line, "OK "))
	if err != nil {
		return nil, fmt.Errorf("client: bad response payload: %w", err)
	}
	return data, nil
}
