package client

import (
	"net"
	"testing"
	"time"
)

// deadAddr reserves a port that is guaranteed to have nothing
// listening: bind, read the address, close. The window where another
// process grabs the port is negligible for a test.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// A dead node must fail the dial promptly — the gateway's startup
// path depends on it — whether the OS refuses fast (typical for a
// closed local port) or the timeout has to fire.
func TestDialDeadNodeFailsFast(t *testing.T) {
	addr := deadAddr(t)
	start := time.Now()
	c, err := DialWithConfig(addr, DialConfig{Timeout: 250 * time.Millisecond})
	if err == nil {
		c.Close()
		t.Fatalf("DialWithConfig(%s) connected to a dead address", addr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("single-attempt dial against a dead node took %v; the timeout did not bound it", elapsed)
	}
}

// The retry budget must be spent and then surfaced — not retried
// forever — and the total time must stay within the configured
// attempts × (timeout + backoff) envelope.
func TestDialRetriesAreBounded(t *testing.T) {
	addr := deadAddr(t)
	cfg := DialConfig{
		Timeout:  100 * time.Millisecond,
		Attempts: 3,
		Backoff:  10 * time.Millisecond,
	}
	start := time.Now()
	c, err := DialWithConfig(addr, cfg)
	elapsed := time.Since(start)
	if err == nil {
		c.Close()
		t.Fatalf("DialWithConfig(%s) connected to a dead address", addr)
	}
	// 3 attempts × 100ms timeout + 10+20ms backoff = 330ms worst case;
	// allow generous CI slack but catch unbounded retry loops.
	if elapsed > 5*time.Second {
		t.Fatalf("3-attempt dial took %v; retries are not bounded", elapsed)
	}
}

// Defaults must fill in: zero-value config behaves like one attempt
// with the default timeout, and Dial delegates to it.
func TestDialDefaultsApply(t *testing.T) {
	if _, err := Dial(deadAddr(t)); err == nil {
		t.Fatal("Dial connected to a dead address")
	}
}
