package shuffle

import (
	"fmt"
	"math/bits"

	"repro/internal/blockcipher"
)

// Network is a programmed Benes permutation network. A Benes network
// on n = 2^k wires realises any permutation with 2k−1 columns of n/2
// two-input switches; once programmed, applying it touches a fixed,
// input-independent sequence of wire pairs, so routing data through it
// is oblivious. The paper lists permutation networks among the
// oblivious-shuffle options whose cost motivates H-ORAM's lighter
// partition shuffle.
//
// The structure is recursive: an input column of n/2 switches, two
// half-size subnetworks, and an output column of n/2 switches (n = 2
// degenerates to a single switch).
type Network struct {
	n       int
	swap    bool // n == 2: whether the single switch crosses
	inBits  []bool
	outBits []bool
	top     *Network
	bot     *Network
}

// RouteBenes programs a Benes network realising p, which sends input i
// to output p[i]. len(p) must be a power of two ≥ 2.
func RouteBenes(p Permutation) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p)
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("shuffle: benes network size must be a power of two ≥ 2, got %d", n)
	}
	return routeBenes(p), nil
}

func routeBenes(p Permutation) *Network {
	n := len(p)
	if n == 2 {
		return &Network{n: 2, swap: p[0] == 1}
	}
	half := n / 2
	inv := p.Inverse()

	inBits := make([]bool, half)
	outBits := make([]bool, half)
	inDone := make([]bool, half)
	outDone := make([]bool, half)
	topPerm := make(Permutation, half)
	botPerm := make(Permutation, half)

	// Chase the alternating cycles of the constraint graph (each cycle
	// alternates between input switch pairs and output switch pairs).
	// The inner loop is arranged so that at its head the current
	// output is always routed via the TOP subnetwork; the partner
	// input handled in the same step goes via the bottom. A cycle is
	// complete when the chase reaches an input pair already consumed.
	for start := 0; start < n; start += 2 {
		if outDone[start/2] {
			continue // this output pair's cycle is already routed
		}
		out := start
		for {
			// Route `out` from the top subnetwork. The switch bit may
			// already be set if this pair's sibling output was routed
			// from the bottom earlier in the cycle; the settings are
			// consistent by construction.
			j := out / 2
			if !outDone[j] {
				outDone[j] = true
				outBits[j] = out%2 == 1 // true: top subnet exits at odd output
			}

			a := inv[out] // the input that must reach `out`
			if inDone[a/2] {
				break // cycle closed
			}
			inDone[a/2] = true
			inBits[a/2] = a%2 == 1 // true: odd input goes to top
			topPerm[a/2] = j

			// Its partner input is forced through the bottom subnet.
			a2 := a ^ 1
			b := p[a2]
			botPerm[a2/2] = b / 2
			jb := b / 2
			if !outDone[jb] {
				outDone[jb] = true
				outBits[jb] = b%2 == 0 // true: bottom subnet exits at even output
			}

			// The partner of output b must come from the top subnet:
			// continue the chase there.
			out = b ^ 1
		}
	}

	return &Network{
		n:       n,
		inBits:  inBits,
		outBits: outBits,
		top:     routeBenes(topPerm),
		bot:     routeBenes(botPerm),
	}
}

// Size returns the number of wires n.
func (nw *Network) Size() int { return nw.n }

// Switches returns the total number of two-input switches, which for
// n = 2^k is n·k − n/2.
func (nw *Network) Switches() int {
	if nw.n == 2 {
		return 1
	}
	return nw.n + nw.top.Switches() + nw.bot.Switches()
}

// Depth returns the number of switch columns, 2·log2(n) − 1.
func (nw *Network) Depth() int {
	if nw.n == 2 {
		return 1
	}
	return 2 + nw.top.Depth()
}

// Apply routes items through the network in place: items[i] ends at
// position p[i] of the permutation the network was programmed with.
// The wire pairs touched depend only on n, never on the switch bits,
// so applying the network is data-oblivious.
func (nw *Network) Apply(items [][]byte) error {
	if len(items) != nw.n {
		return fmt.Errorf("shuffle: network size %d, got %d items", nw.n, len(items))
	}
	nw.apply(items)
	return nil
}

func (nw *Network) apply(items [][]byte) {
	if nw.n == 2 {
		// Oblivious conditional swap: both slots are always touched.
		a, b := items[0], items[1]
		if nw.swap {
			a, b = b, a
		}
		items[0], items[1] = a, b
		return
	}
	half := nw.n / 2
	scratch := make([][]byte, nw.n)

	// Input column: switch i feeds top wire i and bottom wire half+i.
	for i := 0; i < half; i++ {
		a, b := items[2*i], items[2*i+1]
		if nw.inBits[i] {
			a, b = b, a
		}
		scratch[i], scratch[half+i] = a, b
	}

	nw.top.apply(scratch[:half])
	nw.bot.apply(scratch[half:])

	// Output column: switch j drains top wire j and bottom wire half+j.
	for j := 0; j < half; j++ {
		a, b := scratch[j], scratch[half+j]
		if nw.outBits[j] {
			a, b = b, a
		}
		items[2*j], items[2*j+1] = a, b
	}
}

// BenesShuffle is an Algorithm that shuffles by programming a Benes
// network with a fresh random permutation and routing the items
// through it. Applying the network is oblivious; programming it
// happens in trusted memory.
type BenesShuffle struct {
	// Switches counts the switches traversed by the last Shuffle.
	Switches int64
}

// Name implements Algorithm.
func (s *BenesShuffle) Name() string { return "benes" }

// Shuffle implements Algorithm. Non-power-of-two inputs are handled by
// padding with dummy wires up to the next power of two (the dummies'
// routes are part of the fixed network and reveal nothing).
func (s *BenesShuffle) Shuffle(items [][]byte, rng *blockcipher.RNG) error {
	n := len(items)
	if n < 2 {
		return nil
	}
	size := 1
	for size < n {
		size <<= 1
	}
	// Random permutation on the padded domain; real items land in the
	// first n outputs by construction: draw a random permutation of
	// [0,size) and relabel so that the images of the n real inputs,
	// in increasing order, are 0..n-1.
	raw := Random(size, rng)
	p := make(Permutation, size)
	rank := make([]int, size)
	idx := 0
	// rank of each output position among the images of real inputs
	which := make([]bool, size)
	for i := 0; i < n; i++ {
		which[raw[i]] = true
	}
	for v := 0; v < size; v++ {
		if which[v] {
			rank[v] = idx
			idx++
		} else {
			rank[v] = n + (v - idx) // dummies fill the tail in order
		}
	}
	for i := 0; i < size; i++ {
		p[i] = rank[raw[i]]
	}

	nw, err := RouteBenes(p)
	if err != nil {
		return err
	}
	work := make([][]byte, size)
	copy(work, items)
	if err := nw.Apply(work); err != nil {
		return err
	}
	s.Switches = int64(nw.Switches())
	copy(items, work[:n])
	return nil
}
