package shuffle

import "repro/internal/blockcipher"

// Algorithm is a uniform shuffle over opaque blocks. Implementations
// differ in obliviousness guarantees and cost model; see the package
// comment for which tier each is meant for.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Shuffle permutes items in place, uniformly at random under rng.
	Shuffle(items [][]byte, rng *blockcipher.RNG) error
}

// Cache is the trusted-memory shuffle (the paper's "cache shuffle"
// role): plain Fisher-Yates. It is not data-oblivious — admissible
// only inside the trusted tier.
type Cache struct{}

// Name implements Algorithm.
func (Cache) Name() string { return "cache" }

// Shuffle implements Algorithm.
func (Cache) Shuffle(items [][]byte, rng *blockcipher.RNG) error {
	FisherYates(items, rng)
	return nil
}
