// Package shuffle implements the permutation machinery ORAM schemes
// rebuild their layouts with: uniform in-memory shuffling (the "cache
// shuffle" role in the paper), data-oblivious shuffles for untrusted
// memory (bitonic network, Melbourne shuffle), and a Benes permutation
// network with explicit switch programming.
//
// Inside the trusted memory tier any uniform shuffle is admissible —
// the paper notes "the in-memory shuffle algorithm is free to choose"
// — so H-ORAM's hot path uses Fisher-Yates. The oblivious variants
// exist for the baselines whose shuffles execute on untrusted storage
// and for the ablation comparing shuffle costs.
package shuffle

import (
	"fmt"

	"repro/internal/blockcipher"
)

// Permutation maps position i to p[i]. A valid permutation of size n
// contains each value in [0,n) exactly once.
type Permutation []int

// Identity returns the identity permutation of size n.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Random returns a uniformly random permutation of size n drawn from
// rng (Fisher-Yates).
func Random(n int, rng *blockcipher.RNG) Permutation {
	return Permutation(rng.Perm(n))
}

// Validate returns an error unless p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("shuffle: p[%d] = %d out of range [0,%d)", i, v, len(p))
		}
		if seen[v] {
			return fmt.Errorf("shuffle: value %d appears twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns r with r[i] = p[q[i]]: applying q first, then p.
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic("shuffle: composing permutations of different sizes")
	}
	r := make(Permutation, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// IsIdentity reports whether p fixes every position.
func (p Permutation) IsIdentity() bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// Apply permutes items so that out[p[i]] = items[i], i.e. p gives the
// destination of each element. It allocates a fresh slice.
func Apply[T any](p Permutation, items []T) []T {
	if len(p) != len(items) {
		panic("shuffle: permutation/items size mismatch")
	}
	out := make([]T, len(items))
	for i, v := range p {
		out[v] = items[i]
	}
	return out
}

// FisherYates uniformly shuffles items in place using rng. This is the
// in-memory "cache shuffle" role from the paper: it runs inside the
// trusted tier where access-pattern obliviousness is not required.
func FisherYates[T any](items []T, rng *blockcipher.RNG) {
	for i := len(items) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}
