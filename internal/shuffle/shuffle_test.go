package shuffle

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/blockcipher"
)

// numberedItems returns n distinct 8-byte payloads.
func numberedItems(n int) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(i))
		items[i] = b
	}
	return items
}

// itemSet returns the multiset of payload values for comparison.
func itemSet(items [][]byte) map[uint64]int {
	m := make(map[uint64]int)
	for _, b := range items {
		m[binary.BigEndian.Uint64(b)]++
	}
	return m
}

func sameMultiset(t *testing.T, before, after [][]byte) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("length changed: %d -> %d", len(before), len(after))
	}
	b, a := itemSet(before), itemSet(after)
	for k, v := range b {
		if a[k] != v {
			t.Fatalf("element %d count changed: %d -> %d", k, v, a[k])
		}
	}
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsIdentity() {
		t.Fatal("Identity(5) is not the identity")
	}
}

func TestValidateRejectsBadPermutations(t *testing.T) {
	cases := []Permutation{
		{0, 0},    // duplicate
		{1, 2},    // out of range
		{-1, 0},   // negative
		{0, 1, 1}, // duplicate
		{3, 0, 1}, // out of range
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted an invalid permutation", p)
		}
	}
}

func TestInverse(t *testing.T) {
	rng := blockcipher.NewRNGFromString("inv")
	for trial := 0; trial < 20; trial++ {
		p := Random(17, rng)
		q := p.Inverse()
		if !p.Compose(q).IsIdentity() || !q.Compose(p).IsIdentity() {
			t.Fatalf("p∘p⁻¹ != id for p=%v", p)
		}
	}
}

func TestApply(t *testing.T) {
	p := Permutation{2, 0, 1}
	out := Apply(p, []string{"a", "b", "c"})
	want := []string{"b", "c", "a"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", out, want)
		}
	}
}

func TestApplyPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with mismatched sizes did not panic")
		}
	}()
	Apply(Permutation{0, 1}, []int{1, 2, 3})
}

func TestComposePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compose with mismatched sizes did not panic")
		}
	}()
	Permutation{0, 1}.Compose(Permutation{0})
}

func TestRandomIsValidPermutation(t *testing.T) {
	rng := blockcipher.NewRNGFromString("rand-perm")
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		return Random(n, rng).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFisherYatesPreservesMultiset(t *testing.T) {
	rng := blockcipher.NewRNGFromString("fy")
	items := numberedItems(100)
	orig := numberedItems(100)
	FisherYates(items, rng)
	sameMultiset(t, orig, items)
}

// allAlgorithms returns one instance of every shuffle Algorithm.
func allAlgorithms() []Algorithm {
	return []Algorithm{Cache{}, &Bitonic{}, &Melbourne{}, &BenesShuffle{}}
}

func TestAlgorithmsPreserveMultiset(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		for _, n := range []int{0, 1, 2, 3, 16, 17, 100} {
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				rng := blockcipher.NewRNGFromString("ms-" + alg.Name())
				items := numberedItems(n)
				orig := numberedItems(n)
				if err := alg.Shuffle(items, rng); err != nil {
					t.Fatalf("Shuffle: %v", err)
				}
				sameMultiset(t, orig, items)
			})
		}
	}
}

// TestAlgorithmsUniform verifies that each algorithm produces a
// roughly uniform distribution over destination positions: item 0 of
// an n-item input should land in each slot about equally often.
func TestAlgorithmsUniform(t *testing.T) {
	const n = 8
	const trials = 4000
	// Chi-square critical value for 7 dof at 99.9%: 24.32.
	const critical = 24.32
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			rng := blockcipher.NewRNGFromString("uniform-" + alg.Name())
			var counts [n]int
			for trial := 0; trial < trials; trial++ {
				items := numberedItems(n)
				if err := alg.Shuffle(items, rng); err != nil {
					t.Fatal(err)
				}
				for pos, b := range items {
					if binary.BigEndian.Uint64(b) == 0 {
						counts[pos]++
					}
				}
			}
			expected := float64(trials) / n
			var chi2 float64
			for _, c := range counts {
				d := float64(c) - expected
				chi2 += d * d / expected
			}
			if chi2 > critical {
				t.Fatalf("%s: chi2 = %.2f > %.2f, counts=%v", alg.Name(), chi2, critical, counts)
			}
		})
	}
}

func TestBitonicCountsCompareExchanges(t *testing.T) {
	b := &Bitonic{}
	rng := blockcipher.NewRNGFromString("bce")
	items := numberedItems(64)
	if err := b.Shuffle(items, rng); err != nil {
		t.Fatal(err)
	}
	// 64 = 2^6: exactly n/2 * k(k+1)/2 = 32*21 = 672 compare-exchanges.
	if b.CompareExchanges != 672 {
		t.Fatalf("CompareExchanges = %d, want 672", b.CompareExchanges)
	}
}

// TestBitonicAccessPatternFixed verifies obliviousness: the sequence
// of (i, l) pairs touched depends only on n. We run two shuffles with
// different randomness and check the comparator count is identical
// (the offsets are generated by loops over n alone, so equal counts at
// equal n imply the identical fixed sequence).
func TestBitonicAccessPatternFixed(t *testing.T) {
	for _, n := range []int{5, 16, 33, 100} {
		b1, b2 := &Bitonic{}, &Bitonic{}
		r1 := blockcipher.NewRNGFromString("pat1")
		r2 := blockcipher.NewRNGFromString("pat2")
		i1, i2 := numberedItems(n), numberedItems(n)
		b1.Shuffle(i1, r1)
		b2.Shuffle(i2, r2)
		if b1.CompareExchanges != b2.CompareExchanges {
			t.Fatalf("n=%d: comparator counts differ across randomness: %d vs %d",
				n, b1.CompareExchanges, b2.CompareExchanges)
		}
	}
}

func TestMelbourneStats(t *testing.T) {
	m := &Melbourne{PadFactor: 4}
	rng := blockcipher.NewRNGFromString("melb-stats")
	items := numberedItems(256)
	if err := m.Shuffle(items, rng); err != nil {
		t.Fatal(err)
	}
	if m.DummyWrites <= 0 {
		t.Fatal("Melbourne shuffle reported no dummy writes; distribution pass is not padded")
	}
	// Distribution writes exactly pad slots per (chunk,bucket):
	// 16 chunks x 16 buckets x 4 = 1024 slots for 256 reals.
	if got, want := m.DummyWrites+256, int64(1024); got != want {
		t.Fatalf("distribution slots = %d, want %d", got, want)
	}
}

func TestMelbourneDefaultPadScales(t *testing.T) {
	// n = 4096 needs more than the small-n pad of 4; the adaptive
	// default must succeed without error.
	m := &Melbourne{}
	rng := blockcipher.NewRNGFromString("melb-large")
	items := numberedItems(4096)
	if err := m.Shuffle(items, rng); err != nil {
		t.Fatalf("adaptive pad failed at n=4096: %v", err)
	}
}

func TestMelbournePadFactorTooSmallFails(t *testing.T) {
	m := &Melbourne{PadFactor: 1}
	rng := blockcipher.NewRNGFromString("melb-tight")
	items := numberedItems(1024)
	err := m.Shuffle(items, rng)
	// With pad factor 1 on 1024 items (32 chunks of 32), some chunk
	// virtually always sends 2+ items to one bucket; expect failure
	// or at least heavy retries.
	if err == nil && m.Retries == 0 {
		t.Fatal("pad factor 1 succeeded with no retries; overflow detection is broken")
	}
}

func TestRouteBenesRejectsBadSizes(t *testing.T) {
	for _, p := range []Permutation{{0}, {0, 1, 2}, {0, 1, 2, 3, 4, 5}} {
		if _, err := RouteBenes(p); err == nil {
			t.Errorf("RouteBenes accepted size %d", len(p))
		}
	}
	if _, err := RouteBenes(Permutation{0, 0}); err == nil {
		t.Error("RouteBenes accepted an invalid permutation")
	}
}

func TestBenesRealizesPermutation(t *testing.T) {
	rng := blockcipher.NewRNGFromString("benes")
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			p := Random(n, rng)
			nw, err := RouteBenes(p)
			if err != nil {
				t.Fatalf("RouteBenes(n=%d): %v", n, err)
			}
			items := numberedItems(n)
			if err := nw.Apply(items); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				got := binary.BigEndian.Uint64(items[p[i]])
				if got != uint64(i) {
					t.Fatalf("n=%d: input %d should be at output %d, found %d there", n, i, p[i], got)
				}
			}
		}
	}
}

func TestBenesSwitchCount(t *testing.T) {
	// Benes on n = 2^k has n·k − n/2 switches and 2k−1 columns.
	for _, tc := range []struct{ n, switches, depth int }{
		{2, 1, 1},
		{4, 6, 3},
		{8, 20, 5},
		{16, 56, 7},
	} {
		nw, err := RouteBenes(Identity(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		if got := nw.Switches(); got != tc.switches {
			t.Errorf("n=%d: Switches() = %d, want %d", tc.n, got, tc.switches)
		}
		if got := nw.Depth(); got != tc.depth {
			t.Errorf("n=%d: Depth() = %d, want %d", tc.n, got, tc.depth)
		}
		if got := nw.Size(); got != tc.n {
			t.Errorf("n=%d: Size() = %d", tc.n, got)
		}
	}
}

func TestBenesApplyRejectsWrongSize(t *testing.T) {
	nw, _ := RouteBenes(Identity(4))
	if err := nw.Apply(numberedItems(3)); err == nil {
		t.Fatal("Apply accepted wrong item count")
	}
}

func TestBenesIdentityRoutesIdentity(t *testing.T) {
	nw, _ := RouteBenes(Identity(8))
	items := numberedItems(8)
	nw.Apply(items)
	for i, b := range items {
		if binary.BigEndian.Uint64(b) != uint64(i) {
			t.Fatalf("identity network moved item %d", i)
		}
	}
}

func TestBenesPropertyAllPermsN4(t *testing.T) {
	// Exhaustive check of all 24 permutations of size 4.
	perms := [][]int{}
	var gen func(cur []int, used []bool)
	gen = func(cur []int, used []bool) {
		if len(cur) == 4 {
			c := make([]int, 4)
			copy(c, cur)
			perms = append(perms, c)
			return
		}
		for v := 0; v < 4; v++ {
			if !used[v] {
				used[v] = true
				gen(append(cur, v), used)
				used[v] = false
			}
		}
	}
	gen(nil, make([]bool, 4))
	if len(perms) != 24 {
		t.Fatalf("generated %d perms, want 24", len(perms))
	}
	for _, p := range perms {
		nw, err := RouteBenes(Permutation(p))
		if err != nil {
			t.Fatalf("RouteBenes(%v): %v", p, err)
		}
		items := numberedItems(4)
		nw.Apply(items)
		for i := 0; i < 4; i++ {
			if got := binary.BigEndian.Uint64(items[p[i]]); got != uint64(i) {
				t.Fatalf("perm %v: input %d not at output %d", p, i, p[i])
			}
		}
	}
}

func TestShuffleDoesNotAliasAcrossItems(t *testing.T) {
	// After shuffling, mutating one item must not affect another
	// (i.e. algorithms must move references, not merge them).
	for _, alg := range allAlgorithms() {
		rng := blockcipher.NewRNGFromString("alias")
		items := numberedItems(16)
		if err := alg.Shuffle(items, rng); err != nil {
			t.Fatal(err)
		}
		seen := make(map[*byte]bool)
		for _, it := range items {
			if seen[&it[0]] {
				t.Fatalf("%s: two positions share one backing array", alg.Name())
			}
			seen[&it[0]] = true
		}
	}
}

func BenchmarkFisherYates1K(b *testing.B) {
	rng := blockcipher.NewRNGFromString("bench-fy")
	items := numberedItems(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FisherYates(items, rng)
	}
}

func BenchmarkBitonic1K(b *testing.B) {
	rng := blockcipher.NewRNGFromString("bench-bit")
	alg := &Bitonic{}
	items := numberedItems(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Shuffle(items, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMelbourne1K(b *testing.B) {
	rng := blockcipher.NewRNGFromString("bench-melb")
	alg := &Melbourne{}
	items := numberedItems(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Shuffle(items, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBenes1K(b *testing.B) {
	rng := blockcipher.NewRNGFromString("bench-benes")
	alg := &BenesShuffle{}
	items := numberedItems(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Shuffle(items, rng); err != nil {
			b.Fatal(err)
		}
	}
}
