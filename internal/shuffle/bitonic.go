package shuffle

import "repro/internal/blockcipher"

// Bitonic performs a data-oblivious uniform shuffle: it tags every
// item with a random 63-bit key and sorts by key with a bitonic
// sorting network. The sequence of compare-exchange offsets depends
// only on the input length, never on the key values — an observer of
// the *positions touched* learns nothing about the resulting
// permutation.
//
// Cost is O(n log² n) compare-exchanges. CompareExchanges reports the
// exact count for the ablation benches.
type Bitonic struct {
	// CompareExchanges counts compare-exchange operations performed by
	// the last Shuffle call.
	CompareExchanges int64
}

// Name implements the Algorithm naming convention used in reports.
func (b *Bitonic) Name() string { return "bitonic" }

const bitonicPadKey = ^uint64(0) // sorts after every real 63-bit key

// Shuffle obliviously permutes items in place.
func (b *Bitonic) Shuffle(items [][]byte, rng *blockcipher.RNG) error {
	n := len(items)
	if n < 2 {
		return nil
	}
	size := 1
	for size < n {
		size <<= 1
	}
	// Physical padding: pad keys sort after all real keys, so after
	// the network runs the real items occupy positions [0, n).
	keys := make([]uint64, size)
	work := make([][]byte, size)
	for i := 0; i < n; i++ {
		keys[i] = rng.Uint64() >> 1 // 63-bit: strictly below bitonicPadKey
		work[i] = items[i]
	}
	for i := n; i < size; i++ {
		keys[i] = bitonicPadKey
	}

	b.CompareExchanges = 0
	for k := 2; k <= size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < size; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				b.CompareExchanges++
				ascending := i&k == 0
				if (keys[i] > keys[l]) == ascending {
					keys[i], keys[l] = keys[l], keys[i]
					work[i], work[l] = work[l], work[i]
				}
			}
		}
	}
	copy(items, work[:n])
	return nil
}
