package shuffle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/blockcipher"
)

// Melbourne implements the Melbourne shuffle of Ohrimenko et al.: an
// oblivious shuffle for a client with O(√n) private memory against an
// untrusted store. The access pattern of both passes is fixed given n
// and the pad factor, independent of the permutation being realised:
//
//	distribution pass: the input is scanned sequentially in √n chunks
//	  and, for every (chunk, bucket) pair, exactly PadFactor slots are
//	  written — real items destined for that bucket plus dummies;
//	cleanup pass: each bucket is scanned sequentially, dummies are
//	  discarded in private memory, and its √n real items are written
//	  out in permuted order.
//
// If more than PadFactor items of one chunk map to one bucket the
// attempt fails (probability vanishing in PadFactor) and the shuffle
// retries with fresh randomness; Retries counts how often.
type Melbourne struct {
	// PadFactor is the per-(chunk,bucket) slot budget p. Zero selects
	// max(4, ⌈ln n⌉): the per-cell load is Poisson(1), so a logarithmic
	// budget keeps the overflow probability across all √n·√n cells
	// vanishing (the classic Θ(log n / log log n) bound, rounded up
	// for simplicity).
	PadFactor int

	// Stats from the last Shuffle call.
	DummyWrites int64 // padding slots written during distribution
	RealWrites  int64 // real item writes across both passes
	Retries     int64 // failed distribution attempts
}

// Name implements Algorithm.
func (m *Melbourne) Name() string { return "melbourne" }

// melbEntry holds one distribution-pass entry.
type melbEntry struct {
	item []byte // payload; meaningful only when real
	real bool   // false for a padding dummy
	dest int    // final position; meaningful only when real
}

// Shuffle implements Algorithm.
func (m *Melbourne) Shuffle(items [][]byte, rng *blockcipher.RNG) error {
	n := len(items)
	if n < 2 {
		return nil
	}
	pad := m.PadFactor
	if pad == 0 {
		pad = int(math.Ceil(math.Log(float64(n))))
		if pad < 4 {
			pad = 4
		}
	}
	m.DummyWrites, m.RealWrites, m.Retries = 0, 0, 0

	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if m.attempt(items, pad, rng) {
			return nil
		}
		m.Retries++
	}
	return fmt.Errorf("shuffle: melbourne failed %d times with pad factor %d on n=%d; raise PadFactor", maxAttempts, pad, n)
}

func (m *Melbourne) attempt(items [][]byte, pad int, rng *blockcipher.RNG) bool {
	n := len(items)
	b := int(math.Ceil(math.Sqrt(float64(n)))) // buckets and chunk size
	perm := Random(n, rng)                     // perm[i] = destination of items[i]

	// Bucket of a destination position. Destinations are striped so
	// every bucket owns a contiguous output range of ≈ n/b positions.
	bucketOf := func(dest int) int {
		bk := dest / b
		if bk >= b {
			bk = b - 1
		}
		return bk
	}

	// Distribution pass: for each chunk, write exactly pad entries to
	// each bucket (reals first, dummy-padded).
	buckets := make([][]melbEntry, b)
	chunks := (n + b - 1) / b
	for c := 0; c < chunks; c++ {
		lo, hi := c*b, (c+1)*b
		if hi > n {
			hi = n
		}
		// Group this chunk's items by destination bucket.
		byBucket := make(map[int][]melbEntry)
		for i := lo; i < hi; i++ {
			bk := bucketOf(perm[i])
			byBucket[bk] = append(byBucket[bk], melbEntry{item: items[i], real: true, dest: perm[i]})
		}
		for bk := 0; bk < b; bk++ {
			real := byBucket[bk]
			if len(real) > pad {
				return false // overflow: retry with a fresh permutation
			}
			buckets[bk] = append(buckets[bk], real...)
			m.RealWrites += int64(len(real))
			for d := len(real); d < pad; d++ {
				buckets[bk] = append(buckets[bk], melbEntry{})
				m.DummyWrites++
			}
		}
	}

	// Cleanup pass: per bucket, drop dummies, order by destination,
	// emit sequentially.
	out := make([][]byte, n)
	for bk := 0; bk < b; bk++ {
		var real []melbEntry
		for _, e := range buckets[bk] {
			if e.real {
				real = append(real, e)
			}
		}
		sort.Slice(real, func(i, j int) bool { return real[i].dest < real[j].dest })
		for _, e := range real {
			out[e.dest] = e.item
			m.RealWrites++
		}
	}
	copy(items, out)
	return true
}
