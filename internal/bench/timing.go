// Timing-variance experiment: drives secret-state-differing workload
// pairs through the trusted-memory structures in both modes and
// reports Welch's t per pair (internal/timing). The CI gate built on
// this (scripts/timing_gate.sh) demands two things at once:
//
//  1. CTPass — with ConstantTime on, EVERY pair stays statistically
//     indistinguishable (|t| under the threshold);
//  2. DetectPass — in default mode, the stash canary pair exceeds the
//     same threshold, proving the harness has the power to see the
//     channel it claims to gate. A gate that "passes" because the
//     measurement is too weak to see anything is not a gate.
//
// The threshold is generous (Welch |t| of 12 is overwhelming evidence
// under clean conditions) because shared CI runners are noisy; the
// escape hatch for pathological runners is TIMING_GATE_SKIP=1.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/pathoram"
	"repro/internal/posmap"
	"repro/internal/simclock"
	"repro/internal/stash"
	"repro/internal/timing"
)

// DefaultTimingThreshold is the |t| gate bound. Calibrated so the
// default-mode stash canary clears it by an order of magnitude while
// constant-time pairs sit far below it even on busy machines.
const DefaultTimingThreshold = 12

// TimingRow is one pair measurement in one mode.
type TimingRow struct {
	Pair   string `json:"pair"`
	Mode   string `json:"mode"`   // "default" or "constant-time"
	Canary bool   `json:"canary"` // default-mode detectability proof
	timing.PairResult
}

// TimingReport is the full experiment output.
type TimingReport struct {
	Threshold  float64     `json:"threshold"`
	Samples    int         `json:"samples"`
	Rows       []TimingRow `json:"rows"`
	CTPass     bool        `json:"ct_pass"`
	DetectPass bool        `json:"detect_pass"`
}

// timingPair is one A/B workload pair, constructed per mode.
type timingPair struct {
	name   string
	canary bool
	build  func(ct bool) (a, b func(), cleanup func(), err error)
}

// stashPair: Take+Put per iteration on a 3/4-full stash. Side A takes
// a RESIDENT address and re-inserts it (map mode: delete + insert);
// side B takes an ABSENT address and overwrites another resident one
// (map mode: failed lookup + replace). Same public op sequence, the
// hit/miss split is the secret. The inner loop amplifies the per-op
// difference above timer resolution.
func stashPair(ct bool) (func(), func(), func(), error) {
	const (
		capacity  = 128
		blockSize = 64
		resident  = 96
		inner     = 16
	)
	var s stash.Store
	if ct {
		s = stash.NewConstantTime(capacity, blockSize)
	} else {
		s = stash.New(capacity)
	}
	buf := make([]byte, blockSize)
	// Even addresses resident, odd absent.
	for i := 0; i < resident; i++ {
		if err := s.Put(int64(2*i), buf); err != nil {
			return nil, nil, nil, err
		}
	}
	const (
		hot     = int64(100) // resident (even)
		absent  = int64(101) // odd, never inserted
		replace = int64(200) // resident (even)
	)
	a := func() {
		for i := 0; i < inner; i++ {
			if _, ok := s.Take(hot); !ok {
				panic("bench: stash canary lost its hot block")
			}
			if err := s.Put(hot, buf); err != nil {
				panic(err)
			}
		}
	}
	b := func() {
		for i := 0; i < inner; i++ {
			s.Take(absent)
			if err := s.Put(replace, buf); err != nil {
				panic(err)
			}
		}
	}
	return a, b, nil, nil
}

// posmapPair: position-map lookups of one hot address vs a sweep of
// addresses. In default mode both are array indexing (the residual
// channel is the cache line, below this harness's resolution); in CT
// mode both are full scans. Not a canary.
func posmapPair(ct bool) (func(), func(), func(), error) {
	const (
		blocks = 1024
		nLeaf  = 512
		inner  = 64
	)
	rng := blockcipher.NewRNGFromString("bench-timing-posmap")
	m, err := posmap.NewPositionMap(blocks, nLeaf, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	m.SetConstantTime(ct)
	m.RemapAll()
	// Both sides run the identical harness arithmetic (advance an
	// index, fold the result into a sink); only the looked-up address
	// differs, so any measured gap comes from the structure itself.
	var sinkA, sinkB int64
	idxA, idxB := int64(0), int64(0)
	a := func() {
		for i := 0; i < inner; i++ {
			idxA = (idxA + 131) % blocks
			v, _ := m.Get(7)
			sinkA += v
		}
	}
	b := func() {
		for i := 0; i < inner; i++ {
			idxB = (idxB + 131) % blocks
			v, _ := m.Get(idxB)
			sinkB += v
		}
	}
	return a, b, nil, nil
}

// pathoramPair: end-to-end Path ORAM reads — one hot address vs a
// uniform sweep. Unlike the full H-ORAM scheduler (where a hit/miss
// mix changes the CYCLE COUNT, which the bus already reveals), every
// pathoram access presents the identical public shape: one path read,
// one path write. What differs between the sides is pure secret
// state — which addresses sit in the stash and where on the tree the
// target lives — exactly the residue ConstantTime must erase.
func pathoramPair(ct bool) (func(), func(), func(), error) {
	const (
		blocks    = 64
		blockSize = 32
		inner     = 4
	)
	rng := blockcipher.NewRNGFromString("bench-timing-pathoram")
	cfg := pathoram.Config{
		Blocks:       blocks,
		BlockSize:    blockSize,
		Z:            4,
		Sealer:       blockcipher.NullSealer{},
		RNG:          rng.Fork("oram"),
		ConstantTime: ct,
	}
	dev, err := device.New(device.DRAM(), cfg.SlotSize(), 16*blocks, simclock.New())
	if err != nil {
		return nil, nil, nil, err
	}
	o, err := pathoram.New(cfg, dev)
	if err != nil {
		return nil, nil, nil, err
	}
	payload := make([]byte, blockSize)
	for i := int64(0); i < blocks; i++ {
		if err := o.Write(i, payload); err != nil {
			return nil, nil, nil, err
		}
	}
	// Symmetric harness arithmetic; only the address differs.
	idxA, idxB := int64(0), int64(0)
	a := func() {
		for i := 0; i < inner; i++ {
			idxA = (idxA + 17) % blocks
			if _, err := o.Read(13); err != nil {
				panic(err)
			}
		}
	}
	b := func() {
		for i := 0; i < inner; i++ {
			idxB = (idxB + 17) % blocks
			if _, err := o.Read(idxB); err != nil {
				panic(err)
			}
		}
	}
	return a, b, nil, nil
}

// timingPairs is the experiment's pair catalogue.
var timingPairs = []timingPair{
	{name: "stash-take-put", canary: true, build: stashPair},
	{name: "posmap-lookup", canary: false, build: posmapPair},
	{name: "pathoram-read", canary: false, build: pathoramPair},
}

// RunTiming measures every pair in both modes.
func RunTiming(opts timing.Options, threshold float64) (*TimingReport, error) {
	if threshold <= 0 {
		threshold = DefaultTimingThreshold
	}
	rep := &TimingReport{Threshold: threshold, CTPass: true}
	for _, p := range timingPairs {
		for _, mode := range []struct {
			name string
			ct   bool
		}{{"default", false}, {"constant-time", true}} {
			a, b, cleanup, err := p.build(mode.ct)
			if err != nil {
				return nil, fmt.Errorf("bench: timing pair %s (%s): %w", p.name, mode.name, err)
			}
			res := timing.MeasurePair(opts, a, b)
			if cleanup != nil {
				cleanup()
			}
			rep.Samples = res.A.N
			row := TimingRow{Pair: p.name, Mode: mode.name, Canary: p.canary && !mode.ct, PairResult: res}
			rep.Rows = append(rep.Rows, row)
			abs := row.T
			if abs < 0 {
				abs = -abs
			}
			if mode.ct && abs >= threshold {
				rep.CTPass = false
			}
			if row.Canary && abs >= threshold {
				rep.DetectPass = true
			}
		}
	}
	return rep, nil
}

// FormatTiming renders the report as the experiment's console table.
func FormatTiming(rep *TimingReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== timing variance: secret-dependent wall-clock distinguishability (|t| threshold %.0f) ==\n", rep.Threshold)
	fmt.Fprintf(&sb, "%-16s %-14s %12s %12s %10s  %s\n", "pair", "mode", "mean A (ns)", "mean B (ns)", "Welch t", "verdict")
	for _, r := range rep.Rows {
		abs := r.T
		if abs < 0 {
			abs = -abs
		}
		verdict := "indistinguishable"
		if abs >= rep.Threshold {
			verdict = "DISTINGUISHABLE"
		}
		if r.Canary {
			verdict += " (canary)"
		}
		fmt.Fprintf(&sb, "%-16s %-14s %12.0f %12.0f %10.1f  %s\n", r.Pair, r.Mode, r.A.Mean, r.B.Mean, r.T, verdict)
	}
	fmt.Fprintf(&sb, "constant-time gate: %s (every CT pair under threshold)\n", passFail(rep.CTPass))
	fmt.Fprintf(&sb, "detection power:    %s (default-mode canary over threshold)\n", passFail(rep.DetectPass))
	return sb.String()
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// WriteTimingJSON persists the report (BENCH_timing.json baseline and
// the CI gate's input).
func WriteTimingJSON(path string, rep *TimingReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
