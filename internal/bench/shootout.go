package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/partitionoram"
	"repro/internal/simclock"
	"repro/internal/sqrtoram"
)

// ShootoutRow is one scheme's result on the shared shootout workload.
type ShootoutRow struct {
	Scheme       string
	TotalTime    time.Duration
	StorageOps   int64
	StorageBytes int64 // footprint on the slow tier
	Note         string
}

// shootoutParams is the shared scenario: 8 MB data, 1 MB memory tier
// where the scheme has one, 1 KB blocks, 4000 hotspot requests.
func shootoutParams() Params {
	return Params{
		Name:        "shootout",
		DataBytes:   8 << 20,
		MemoryBytes: 1 << 20,
		BlockSize:   1 << 10,
		Requests:    4000,
		HotFrac:     0.8,
		HotSize:     0.01,
		Z:           4,
		Seed:        "shootout",
	}
}

// RunShootout drives all four schemes of the paper's background
// section with the identical request trace: H-ORAM, the tree-top
// Path ORAM baseline, square-root ORAM and partition ORAM. It makes
// the motivation of §3 measurable — which scheme pays tree I/O, which
// pays shuffle stalls, and what the hybrid buys.
func RunShootout() ([]ShootoutRow, error) {
	p := shootoutParams()
	addrs, err := addresses(p)
	if err != nil {
		return nil, err
	}
	var rows []ShootoutRow

	// H-ORAM.
	h, err := runHORAM(p)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ShootoutRow{
		Scheme: "H-ORAM", TotalTime: h.TotalTime,
		StorageOps: h.StorageStats.Ops(), StorageBytes: h.StorageBytes,
		Note: fmt.Sprintf("%d shuffles", h.Shuffles),
	})

	// Tree-top Path ORAM.
	po, err := runTreeTop(p)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ShootoutRow{
		Scheme: "Path ORAM (tree-top)", TotalTime: po.TotalTime,
		StorageOps: po.StorageStats.Ops(), StorageBytes: po.StorageBytes,
		Note: "per-access tree path I/O",
	})

	// Square-root ORAM: entirely on storage, O(4N) reshuffles.
	sq, err := runSqrt(p, addrs)
	if err != nil {
		return nil, err
	}
	rows = append(rows, sq)

	// Partition ORAM: per-partition shuffles.
	pa, err := runPartition(p, addrs)
	if err != nil {
		return nil, err
	}
	rows = append(rows, pa)
	return rows, nil
}

func runSqrt(p Params, addrs []int64) (ShootoutRow, error) {
	rng := blockcipher.NewRNGFromString(p.Seed + "-sqrt")
	cfg := sqrtoram.Config{
		Blocks:    p.blocks(),
		BlockSize: p.BlockSize,
		Sealer:    blockcipher.NullSealer{},
		RNG:       rng.Fork("oram"),
	}
	clk := simclock.New()
	dev, err := device.New(device.PaperHDD(), cfg.SlotSize(), p.blocks()+256, clk)
	if err != nil {
		return ShootoutRow{}, err
	}
	o, err := sqrtoram.New(cfg, dev)
	if err != nil {
		return ShootoutRow{}, err
	}
	for _, a := range addrs {
		if _, err := o.Read(a); err != nil {
			return ShootoutRow{}, err
		}
	}
	return ShootoutRow{
		Scheme:       "Square-root ORAM",
		TotalTime:    clk.Now(),
		StorageOps:   dev.Stats().Ops(),
		StorageBytes: (p.blocks() + o.Dummies()) * int64(p.BlockSize),
		Note:         fmt.Sprintf("%d full reshuffles (4 passes each)", o.Stats().Shuffles),
	}, nil
}

func runPartition(p Params, addrs []int64) (ShootoutRow, error) {
	rng := blockcipher.NewRNGFromString(p.Seed + "-part")
	cfg := partitionoram.Config{
		Blocks:    p.blocks(),
		BlockSize: p.BlockSize,
		Sealer:    blockcipher.NullSealer{},
		RNG:       rng.Fork("oram"),
	}
	clk := simclock.New()
	dev, err := device.New(device.PaperHDD(), cfg.SlotSize(), 4*p.blocks(), clk)
	if err != nil {
		return ShootoutRow{}, err
	}
	o, err := partitionoram.New(cfg, dev)
	if err != nil {
		return ShootoutRow{}, err
	}
	for _, a := range addrs {
		if _, err := o.Read(a); err != nil {
			return ShootoutRow{}, err
		}
	}
	return ShootoutRow{
		Scheme:       "Partition ORAM",
		TotalTime:    clk.Now(),
		StorageOps:   dev.Stats().Ops(),
		StorageBytes: o.Partitions() * o.Partitions() * 2 * int64(p.BlockSize),
		Note:         fmt.Sprintf("%d partition shuffles", o.Stats().PartitionShuffle),
	}, nil
}

// FormatShootout renders the scheme comparison.
func FormatShootout(rows []ShootoutRow) string {
	var b strings.Builder
	b.WriteString("== scheme shootout (8 MB data, 1 MB memory, 4k hotspot requests, identical trace) ==\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %12s  %s\n", "scheme", "total", "storage ops", "footprint", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12s %12d %12s  %s\n",
			r.Scheme, r.TotalTime.Round(time.Millisecond), r.StorageOps, byteSize(r.StorageBytes), r.Note)
	}
	return b.String()
}

// NoShuffleResult captures the §5.1 non-shuffle (Figure 5-2) case.
type NoShuffleResult struct {
	WithShuffle    time.Duration // H-ORAM, shuffle on the critical path
	Background     time.Duration // H-ORAM, shuffle off the critical path
	Baseline       time.Duration // tree-top Path ORAM
	GainWith       float64
	GainBackground float64
	// TheoreticalCap is the paper's analytic block-count bound
	// 2·Z·log2(2N/n) (32x for the Table 5-1 geometry). It weights
	// reads and writes equally; the measured latency gain can exceed
	// it because the baseline is write-heavy and HDD writes are ~2x
	// slower than reads (§5.2 notes the same effect).
	TheoreticalCap float64
}

// RunNoShuffleCase measures H-ORAM with the shuffle on and off the
// critical path against the baseline, on the Table 5-3 geometry
// shrunk 4x for wall time.
func RunNoShuffleCase() (NoShuffleResult, error) {
	p := Params{
		Name:        "noshuffle",
		DataBytes:   16 << 20,
		MemoryBytes: 2 << 20,
		BlockSize:   1 << 10,
		Requests:    12000,
		HotFrac:     0.8,
		HotSize:     0.01,
		Z:           4,
		Seed:        "noshuffle",
	}
	run := func(background bool) (time.Duration, error) {
		rng := blockcipher.NewRNGFromString(p.Seed + "-horam")
		cfg := horam.Config{
			Blocks:            p.blocks(),
			BlockSize:         p.BlockSize,
			MemoryBytes:       p.MemoryBytes,
			Z:                 p.Z,
			BackgroundShuffle: background,
			Sealer:            blockcipher.NullSealer{},
			RNG:               rng.Fork("oram"),
		}
		o, err := horam.New(cfg)
		if err != nil {
			return 0, err
		}
		addrs, err := addresses(p)
		if err != nil {
			return 0, err
		}
		reqs := make([]*horam.Request, len(addrs))
		for i, a := range addrs {
			reqs[i] = &horam.Request{Op: horam.OpRead, Addr: a}
		}
		if err := o.RunBatch(reqs); err != nil {
			return 0, err
		}
		return o.Clock().Now(), nil
	}
	withShuffle, err := run(false)
	if err != nil {
		return NoShuffleResult{}, err
	}
	background, err := run(true)
	if err != nil {
		return NoShuffleResult{}, err
	}
	base, err := runTreeTop(p)
	if err != nil {
		return NoShuffleResult{}, err
	}
	out := NoShuffleResult{
		WithShuffle: withShuffle,
		Background:  background,
		Baseline:    base.TotalTime,
	}
	out.GainWith = float64(out.Baseline) / float64(out.WithShuffle)
	out.GainBackground = float64(out.Baseline) / float64(out.Background)

	// The paper's 32x bound is 2·Z·log2(2N/n) single-block-read units.
	n := float64(p.MemoryBytes / int64(p.BlockSize))
	N := float64(p.blocks())
	out.TheoreticalCap = 2 * 4 * log2(2*N/n)
	return out, nil
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// FormatNoShuffle renders the non-shuffle-case comparison.
func FormatNoShuffle(r NoShuffleResult) string {
	var b strings.Builder
	b.WriteString("== §5.1 non-shuffle case (Figure 5-2: shuffle off the critical path) ==\n")
	fmt.Fprintf(&b, "%-38s %12s %10s\n", "", "total", "gain")
	fmt.Fprintf(&b, "%-38s %12s %10s\n", "Path ORAM baseline", r.Baseline.Round(time.Millisecond), "1x")
	fmt.Fprintf(&b, "%-38s %12s %9.1fx\n", "H-ORAM, shuffle on critical path", r.WithShuffle.Round(time.Millisecond), r.GainWith)
	fmt.Fprintf(&b, "%-38s %12s %9.1fx\n", "H-ORAM, shuffle in background", r.Background.Round(time.Millisecond), r.GainBackground)
	fmt.Fprintf(&b, "%-38s %12s %9.1fx\n", "analytic cap (2·Z·log2(2N/n))", "-", r.TheoreticalCap)
	return b.String()
}
