// Shard-scaling benchmark: aggregate throughput versus shard count
// through internal/engine. Two throughput figures are reported per
// row, because they answer different questions:
//
//   - sim req/s divides the request count by the SLOWEST shard's
//     virtual device time. Shards model independent hardware (each
//     owns its own memory tree and storage partitions), so this is the
//     deployment-model aggregate throughput — it scales with shard
//     count regardless of how many host cores the benchmark machine
//     has;
//   - wall req/s is the real elapsed time of the run, which reflects
//     host-core parallelism across the per-shard scheduler goroutines
//     (flat on one core, scaling on a multi-core runner).
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/engine"
)

// ShardParams sizes one shard-scaling sweep.
type ShardParams struct {
	Blocks    int64
	BlockSize int
	MemBytes  int64 // total across shards
	Requests  int
	BatchSize int
	Seed      string
}

// DefaultShardParams is the committed-baseline geometry: 16 Ki of
// 256 B blocks, a 1 MiB memory tier (small enough that every shard
// count crosses shuffle periods, so the baseline includes shuffle
// cost), mixed read/write traffic.
func DefaultShardParams() ShardParams {
	return ShardParams{
		Blocks:    16384,
		BlockSize: 256,
		MemBytes:  1 << 20,
		Requests:  12000,
		BatchSize: 384,
		Seed:      "shard-bench",
	}
}

// ShardRow is one shard-count measurement.
type ShardRow struct {
	Shards       int           `json:"shards"`
	Requests     int           `json:"requests"`
	Wall         time.Duration `json:"wall_ns"`
	WallTput     float64       `json:"wall_req_per_s"`
	SimTime      time.Duration `json:"sim_ns"` // max over shards
	SimTput      float64       `json:"sim_req_per_s"`
	Cycles       int64         `json:"cycles"`
	PaddedCycles int64         `json:"padded_cycles"` // leveling cost (subset of cycles)
	Shuffles     int64         `json:"shuffles"`
	// MinShardReqs/MaxShardReqs are the extremes of the per-shard
	// request counts — the balance check (a skewed partition shows a
	// wide spread; the PRF deal should keep it narrow).
	MinShardReqs int64 `json:"min_shard_reqs"`
	MaxShardReqs int64 `json:"max_shard_reqs"`
}

// RunShard sweeps the shard counts on the same logical workload: the
// same seeded mixed read/write request stream is submitted in
// equal-size batches, and the engine scatters each batch across the
// shards' schedulers.
func RunShard(shardCounts []int, p ShardParams) ([]ShardRow, error) {
	rows := make([]ShardRow, 0, len(shardCounts))
	for _, s := range shardCounts {
		row, err := runShardOne(s, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runShardOne(shards int, p ShardParams) (ShardRow, error) {
	e, err := engine.New(engine.Options{
		Blocks:      p.Blocks,
		BlockSize:   p.BlockSize,
		MemoryBytes: p.MemBytes,
		Insecure:    true,
		Seed:        fmt.Sprintf("%s-%d", p.Seed, shards),
		Shards:      shards,
	})
	if err != nil {
		return ShardRow{}, err
	}
	defer e.Close() //horam:errok bench teardown; the measured run is already over

	// One seeded workload for every shard count: 80/20 hot-spot reads
	// with a write every fourth request.
	rng := blockcipher.NewRNGFromString(p.Seed + "-wl")
	hot := p.Blocks / 20
	if hot < 1 {
		hot = 1
	}
	payload := bytes.Repeat([]byte{0x5a}, p.BlockSize)
	reqs := make([]*engine.Request, p.Requests)
	for i := range reqs {
		var addr int64
		if rng.Intn(10) < 8 {
			addr = rng.Int63n(hot)
		} else {
			addr = rng.Int63n(p.Blocks)
		}
		if i%4 == 3 {
			reqs[i] = &engine.Request{Op: engine.OpWrite, Addr: addr, Data: payload}
		} else {
			reqs[i] = &engine.Request{Op: engine.OpRead, Addr: addr}
		}
	}

	start := time.Now()
	for off := 0; off < len(reqs); off += p.BatchSize {
		end := off + p.BatchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := e.Batch(reqs[off:end]); err != nil {
			return ShardRow{}, err
		}
	}
	wall := time.Since(start)

	sum := e.Stats()
	row := ShardRow{
		Shards:       shards,
		Requests:     p.Requests,
		Wall:         wall,
		WallTput:     float64(p.Requests) / wall.Seconds(),
		SimTime:      sum.SimTime,
		SimTput:      float64(p.Requests) / sum.SimTime.Seconds(),
		Cycles:       sum.Cycles,
		PaddedCycles: sum.Padded,
		Shuffles:     sum.Shuffles,
	}
	for i, sh := range e.ShardStats() {
		if i == 0 || sh.Requests < row.MinShardReqs {
			row.MinShardReqs = sh.Requests
		}
		if sh.Requests > row.MaxShardReqs {
			row.MaxShardReqs = sh.Requests
		}
	}
	return row, nil
}

// FormatShard renders the sweep.
func FormatShard(rows []ShardRow, p ShardParams) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== sharded engine: aggregate throughput vs shard count (%d x %d B blocks, %d KiB memory, %d requests) ==\n",
		p.Blocks, p.BlockSize, p.MemBytes>>10, p.Requests)
	fmt.Fprintf(&b, "%7s %12s %12s %14s %12s %10s %10s\n",
		"shards", "wall", "wall req/s", "sim (slowest)", "sim req/s", "cycles", "shuffles")
	base := 0.0
	for i, r := range rows {
		if i == 0 {
			base = r.SimTput
		}
		fmt.Fprintf(&b, "%7d %12s %12.0f %14s %12.0f %10d %10d   (%.2fx)\n",
			r.Shards, r.Wall.Round(time.Millisecond), r.WallTput,
			r.SimTime.Round(time.Millisecond), r.SimTput, r.Cycles, r.Shuffles, r.SimTput/base)
	}
	fmt.Fprintf(&b, "sim req/s = requests / slowest shard's virtual device time: shards are\n")
	fmt.Fprintf(&b, "independent hardware, so this is the deployment-model aggregate throughput.\n")
	fmt.Fprintf(&b, "wall req/s additionally depends on host cores (GOMAXPROCS=%d here).\n", runtime.GOMAXPROCS(0))
	return b.String()
}

// ShardReport is the JSON baseline committed as BENCH_shard.json so
// later PRs have a trajectory to compare against.
type ShardReport struct {
	Experiment string      `json:"experiment"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CPUs       int         `json:"cpus"`
	Params     ShardParams `json:"params"`
	Rows       []ShardRow  `json:"rows"`
}

// WriteShardJSON writes the sweep as an indented JSON baseline.
func WriteShardJSON(path string, rows []ShardRow, p ShardParams) error {
	rep := ShardReport{
		Experiment: "shard",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Params:     p,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
