// Tail-latency benchmark: per-request latency distributions under the
// monolithic stop-the-world shuffle versus the deamortized incremental
// pipeline. Aggregate throughput (BENCH_shard.json) hides the shuffle
// entirely — the paper's own short-data-block analysis makes tail
// latency, not the mean, the binding constraint for batched serving —
// so this experiment measures what a single request experiences:
//
//   - sim latency: the owning shard's virtual-clock span from ROB
//     submission to completion, including any shuffle work that ran in
//     between. In monolithic mode a request that lands behind the
//     period pays the whole O(window·partition) pass; the incremental
//     pipeline bounds the work any cycle performs by O(one partition),
//     so the same request pays a handful of quanta instead.
//   - wall latency: the real elapsed time of the request's batch —
//     what a serving-layer client would observe on this host.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/engine"
	"repro/internal/horam"
)

// LatencyParams sizes one latency sweep.
type LatencyParams struct {
	Blocks    int64
	BlockSize int
	MemBytes  int64 // total across shards
	Requests  int
	BatchSize int
	Shards    []int
	Seed      string
}

// DefaultLatencyParams is the committed-baseline geometry: 64 Ki of
// 256 B blocks and a 1 MiB memory tier, so every shard crosses several
// shuffle periods and the per-shard shuffle window (√N partitions) is
// large enough that the monolithic pass visibly dwarfs one partition
// quantum.
func DefaultLatencyParams() LatencyParams {
	return LatencyParams{
		Blocks:    65536,
		BlockSize: 256,
		MemBytes:  1 << 20,
		Requests:  12000,
		BatchSize: 64,
		Shards:    []int{1, 4},
		Seed:      "latency-bench",
	}
}

// LatencyRow is one (mode, shard count) measurement.
type LatencyRow struct {
	Mode     string `json:"mode"` // "monolithic" or "incremental"
	Shards   int    `json:"shards"`
	Requests int    `json:"requests"`

	// Per-request simulated latency (virtual device time).
	SimP50 time.Duration `json:"sim_p50_ns"`
	SimP99 time.Duration `json:"sim_p99_ns"`
	SimMax time.Duration `json:"sim_max_ns"`

	// Per-request wall latency (the request's batch round-trip).
	WallP50 time.Duration `json:"wall_p50_ns"`
	WallP99 time.Duration `json:"wall_p99_ns"`
	WallMax time.Duration `json:"wall_max_ns"`

	// Whole-run totals, to show deamortization does not buy its tail
	// with throughput: the period's work is the same, only its
	// placement changes.
	SimTotal  time.Duration `json:"sim_total_ns"` // slowest shard
	WallTotal time.Duration `json:"wall_total_ns"`

	Shuffles     int64         `json:"shuffles"`
	Quanta       int64         `json:"quanta"`
	MaxCycleTime time.Duration `json:"max_cycle_ns"`
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// RunLatency sweeps both shuffle modes over the shard counts on the
// same seeded workload.
func RunLatency(p LatencyParams) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, shards := range p.Shards {
		for _, mode := range []struct {
			name       string
			monolithic bool
		}{{"monolithic", true}, {"incremental", false}} {
			row, err := runLatencyOne(shards, mode.monolithic, mode.name, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runLatencyOne(shards int, monolithic bool, modeName string, p LatencyParams) (LatencyRow, error) {
	// A flat group size (the obliviousness tests' schedule) keeps every
	// access cycle's service rate constant, so the distributions compare
	// the shuffle placement and nothing else: with the paper's staged
	// schedule the c=1 cold phase would bound the tail by the ROB drain
	// rate in both modes and blur the effect under measurement.
	e, err := engine.New(engine.Options{
		Blocks:            p.Blocks,
		BlockSize:         p.BlockSize,
		MemoryBytes:       p.MemBytes,
		Insecure:          true,
		Seed:              fmt.Sprintf("%s-%d", p.Seed, shards),
		Shards:            shards,
		MonolithicShuffle: monolithic,
		Stages:            []horam.Stage{{C: 3, Frac: 1}},
	})
	if err != nil {
		return LatencyRow{}, err
	}
	defer e.Close() //horam:errok bench teardown; the measured run is already over

	// The shard benchmark's workload shape: 80/20 hot-spot reads with a
	// write every fourth request.
	rng := blockcipher.NewRNGFromString(p.Seed + "-wl")
	hot := p.Blocks / 20
	if hot < 1 {
		hot = 1
	}
	payload := bytes.Repeat([]byte{0x5a}, p.BlockSize)
	reqs := make([]*engine.Request, p.Requests)
	for i := range reqs {
		var addr int64
		if rng.Intn(10) < 8 {
			addr = rng.Int63n(hot)
		} else {
			addr = rng.Int63n(p.Blocks)
		}
		if i%4 == 3 {
			reqs[i] = &engine.Request{Op: engine.OpWrite, Addr: addr, Data: payload}
		} else {
			reqs[i] = &engine.Request{Op: engine.OpRead, Addr: addr}
		}
	}

	simLat := make([]time.Duration, 0, p.Requests)
	wallLat := make([]time.Duration, 0, p.Requests)
	start := time.Now()
	for off := 0; off < len(reqs); off += p.BatchSize {
		end := off + p.BatchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		b0 := time.Now()
		if err := e.Batch(reqs[off:end]); err != nil {
			return LatencyRow{}, err
		}
		bd := time.Since(b0)
		for _, r := range reqs[off:end] {
			simLat = append(simLat, r.DoneSim-r.SubmitSim)
			wallLat = append(wallLat, bd)
		}
	}
	wall := time.Since(start)

	sort.Slice(simLat, func(i, j int) bool { return simLat[i] < simLat[j] })
	sort.Slice(wallLat, func(i, j int) bool { return wallLat[i] < wallLat[j] })
	sum := e.Stats()
	return LatencyRow{
		Mode:         modeName,
		Shards:       shards,
		Requests:     p.Requests,
		SimP50:       percentile(simLat, 0.50),
		SimP99:       percentile(simLat, 0.99),
		SimMax:       simLat[len(simLat)-1],
		WallP50:      percentile(wallLat, 0.50),
		WallP99:      percentile(wallLat, 0.99),
		WallMax:      wallLat[len(wallLat)-1],
		SimTotal:     sum.SimTime,
		WallTotal:    wall,
		Shuffles:     sum.Shuffles,
		Quanta:       sum.Quanta,
		MaxCycleTime: sum.MaxCycleTime,
	}, nil
}

// FormatLatency renders the sweep with the monolithic→incremental
// improvement ratios per shard count.
func FormatLatency(rows []LatencyRow, p LatencyParams) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== shuffle deamortization: per-request latency, monolithic vs incremental (%d x %d B blocks, %d KiB memory, %d requests, batch %d) ==\n",
		p.Blocks, p.BlockSize, p.MemBytes>>10, p.Requests, p.BatchSize)
	fmt.Fprintf(&b, "%7s %12s %10s %10s %10s %10s %10s %10s %10s %9s\n",
		"shards", "mode", "sim p50", "sim p99", "sim max", "wall p99", "wall max", "max cycle", "sim total", "shuffles")
	byShard := map[int]map[string]LatencyRow{}
	for _, r := range rows {
		if byShard[r.Shards] == nil {
			byShard[r.Shards] = map[string]LatencyRow{}
		}
		byShard[r.Shards][r.Mode] = r
		fmt.Fprintf(&b, "%7d %12s %10s %10s %10s %10s %10s %10s %10s %9d\n",
			r.Shards, r.Mode,
			r.SimP50.Round(time.Microsecond), r.SimP99.Round(time.Microsecond), r.SimMax.Round(time.Microsecond),
			r.WallP99.Round(time.Microsecond), r.WallMax.Round(time.Microsecond),
			r.MaxCycleTime.Round(time.Microsecond), r.SimTotal.Round(time.Millisecond), r.Shuffles)
	}
	for _, r := range rows {
		mono, ok1 := byShard[r.Shards]["monolithic"]
		incr, ok2 := byShard[r.Shards]["incremental"]
		if !ok1 || !ok2 || r.Mode != "incremental" {
			continue
		}
		fmt.Fprintf(&b, "shards=%d: incremental improves sim p99 %.1fx, sim max %.1fx, max-cycle cost %.1fx (sim total %.2fx)\n",
			r.Shards,
			float64(mono.SimP99)/float64(incr.SimP99),
			float64(mono.SimMax)/float64(incr.SimMax),
			float64(mono.MaxCycleTime)/float64(incr.MaxCycleTime),
			float64(mono.SimTotal)/float64(incr.SimTotal))
	}
	fmt.Fprintf(&b, "sim latency = shard virtual-clock span submit->complete; wall latency = the\n")
	fmt.Fprintf(&b, "request's batch round-trip on this host (GOMAXPROCS=%d).\n", runtime.GOMAXPROCS(0))
	return b.String()
}

// LatencyReport is the JSON baseline committed as BENCH_latency.json.
type LatencyReport struct {
	Experiment string        `json:"experiment"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	CPUs       int           `json:"cpus"`
	Params     LatencyParams `json:"params"`
	Rows       []LatencyRow  `json:"rows"`
}

// WriteLatencyJSON writes the sweep as an indented JSON baseline.
func WriteLatencyJSON(path string, rows []LatencyRow, p LatencyParams) error {
	rep := LatencyReport{
		Experiment: "latency",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Params:     p,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
