package bench

import (
	"testing"
)

// TestKVSimThroughputScales is the acceptance gate for the KV layer's
// shard scaling: logical KV throughput on the deployment-model metric
// must keep most of the engine's shard gain — at least 1.5x from 1 to
// 4 shards on this small geometry — and the workload must exercise
// every verb. The virtual clocks make the ratio deterministic.
func TestKVSimThroughputScales(t *testing.T) {
	p := KVParams{
		Blocks:         4096,
		BlockSize:      128,
		MemBytes:       1 << 20,
		SlotsPerBucket: 2,
		MaxValueBytes:  256,
		SeedKeys:       128,
		Ops:            256,
		Workers:        8,
		Seed:           "kv-scaling-test",
	}
	rows, err := RunKV([]int{1, 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	one, four := rows[0], rows[1]
	// The gain comes from concurrent pipelines coalescing in the
	// combiner; the race detector's uneven goroutine slowdown starves
	// that coalescing, so under -race only sanity is asserted (the
	// race job is about races, not throughput).
	wantGain := 1.5
	if raceEnabled {
		wantGain = 1.0
	}
	if four.SimTput < wantGain*one.SimTput {
		t.Fatalf("4 shards: %.1f sim ops/s vs 1 shard: %.1f — %.2fx, want >= %.1fx",
			four.SimTput, one.SimTput, four.SimTput/one.SimTput, wantGain)
	}
	for _, r := range rows {
		if r.Gets == 0 || r.Sets == 0 || r.Dels == 0 {
			t.Fatalf("shards=%d: workload skipped a verb: %+v", r.Shards, r)
		}
		if want := 2*p.SlotsPerBucket + 2*((p.MaxValueBytes+p.BlockSize-1)/p.BlockSize) + 1; r.BlocksPerOp != want {
			t.Fatalf("shards=%d: blocks/op = %d, want %d", r.Shards, r.BlocksPerOp, want)
		}
	}
	t.Logf("kv sim throughput: 1 shard %.1f ops/s, 4 shards %.1f ops/s (%.2fx)",
		one.SimTput, four.SimTput, four.SimTput/one.SimTput)
}

// BenchmarkKVOps measures wall-clock logical KV operations on a small
// single-shard store (the CI bench smoke runs this once).
func BenchmarkKVOps(b *testing.B) {
	p := KVParams{
		Blocks:         2048,
		BlockSize:      128,
		MemBytes:       512 << 10,
		SlotsPerBucket: 2,
		MaxValueBytes:  128,
		SeedKeys:       32,
		Ops:            64,
		Seed:           "kv-bench-bm",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runKVOne(1, p); err != nil {
			b.Fatal(err)
		}
	}
}
