package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/shuffle"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Figure51 computes the Figure 5-1 gain grid: one row per N/n ratio,
// one column per c value, Z = 4.
type Figure51 struct {
	Ratios []float64
	Cs     []float64
	Gains  [][]float64 // [ratio][c]
}

// RunFigure51 evaluates the analytic model over the paper's domain.
func RunFigure51() Figure51 {
	ratios := []float64{2, 4, 8, 16, 32, 64}
	cs := []float64{1, 2, 4, 8}
	f := Figure51{Ratios: ratios, Cs: cs, Gains: make([][]float64, len(ratios))}
	for i, r := range ratios {
		f.Gains[i] = make([]float64, len(cs))
		for j, c := range cs {
			f.Gains[i][j] = analytic.Gain(r, c, 4, 1, 1)
		}
	}
	return f
}

// FormatFigure51 renders the gain grid as the figure's data table.
func FormatFigure51(f Figure51) string {
	var b strings.Builder
	b.WriteString("== figure 5-1: theoretical I/O-overhead reduction over Path ORAM (Z=4) ==\n")
	fmt.Fprintf(&b, "%8s", "N/n")
	for _, c := range f.Cs {
		fmt.Fprintf(&b, "  c=%-6.0f", c)
	}
	b.WriteString("\n")
	for i, r := range f.Ratios {
		fmt.Fprintf(&b, "%8.0f", r)
		for j := range f.Cs {
			fmt.Fprintf(&b, "  %-8.2f", f.Gains[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable51 renders the analytic one-period overhead comparison.
func FormatTable51() string {
	h, p := analytic.Table51(analytic.PaperTable51())
	var b strings.Builder
	b.WriteString("== table 5-1: overhead comparison for one period (1 GB data, 128 MB memory, 1 KB block) ==\n")
	fmt.Fprintf(&b, "%-24s %26s %26s\n", "", h.Scheme, p.Scheme)
	fmt.Fprintf(&b, "%-24s %26s %26s\n", "Storage/Memory Size",
		fmt.Sprintf("%s / %s", byteSize(h.StorageBytes), byteSize(h.MemoryBytes)),
		fmt.Sprintf("%s / %s", byteSize(p.StorageBytes), byteSize(p.MemoryBytes)))
	fmt.Fprintf(&b, "%-24s %26.0f %26.0f\n", "Path ORAM level", h.PathLevel, p.PathLevel)
	fmt.Fprintf(&b, "%-24s %26d %26d\n", "Requests Serviced", h.RequestsServiced, p.RequestsServiced)
	fmt.Fprintf(&b, "%-24s %26s %26s\n", "Access Overhead",
		fmt.Sprintf("%.1f KB (read)", h.AccessReadKB),
		fmt.Sprintf("%.0f KB (read) + %.0f KB (write)", p.AccessReadKB, p.AccessWriteKB))
	fmt.Fprintf(&b, "%-24s %26s %26s\n", "Shuffle Overhead",
		fmt.Sprintf("%.3f GB (r) + %.0f GB (w)", h.ShuffleReadGB, h.ShuffleWriteGB), "N/A")
	fmt.Fprintf(&b, "%-24s %26s %26s\n", "Average Overhead",
		fmt.Sprintf("%.1f KB (r) + %.0f KB (w)", h.AvgReadKB, h.AvgWriteKB),
		fmt.Sprintf("%.0f KB (r) + %.0f KB (w)", p.AvgReadKB, p.AvgWriteKB))
	fmt.Fprintf(&b, "%-24s %26s %26s\n", "Ideal (no-shuffle) gain",
		fmt.Sprintf("%.0fx", analytic.IdealGainNoShuffle(float64(128<<10), float64(1<<20), 4)), "1x")
	return b.String()
}

// Table52Row reports one device profile: its configured parameters and
// its *measured* simulated throughputs, mirroring the machine-setup
// table.
type Table52Row struct {
	Profile       device.Profile
	SeqReadMBps   float64
	SeqWriteMBps  float64
	RandReadLat   time.Duration
	RandWriteLat  time.Duration
	SeqOverRandom float64 // per-block sequential vs random read speed
}

// RunTable52 measures the shipped device profiles with 4 KB transfers.
func RunTable52() ([]Table52Row, error) {
	profiles := []device.Profile{device.PaperHDD(), device.RawHDD7200(), device.SSD(), device.DRAM()}
	rows := make([]Table52Row, 0, len(profiles))
	const slotSize = 4096
	const slots = 4096
	for _, p := range profiles {
		clk := simclock.New()
		d, err := device.New(p, slotSize, slots, clk)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, slotSize)

		t0 := clk.Now()
		for i := int64(0); i < slots; i++ {
			d.Read(i, buf) //horam:errok in-range read on a simulated device; the loop measures the clock, not the data
		}
		seqRead := float64(slots*slotSize) / clk.Now().Seconds() / (1 << 20)

		t0 = clk.Now()
		for i := int64(0); i < slots; i++ {
			d.Write(i, buf) //horam:errok in-range write on a simulated device; the loop measures the clock, not the data
		}
		seqWrite := float64(slots*slotSize) / (clk.Now() - t0).Seconds() / (1 << 20)

		t0 = clk.Now()
		const randOps = 512
		for i := int64(0); i < randOps; i++ {
			d.Read((i*2053)%slots, buf) //horam:errok in-range read on a simulated device; the loop measures the clock, not the data
		}
		randRead := (clk.Now() - t0) / randOps

		t0 = clk.Now()
		for i := int64(0); i < randOps; i++ {
			d.Write((i*2053)%slots, buf) //horam:errok in-range write on a simulated device; the loop measures the clock, not the data
		}
		randWrite := (clk.Now() - t0) / randOps

		seqPerBlock := float64(slotSize) / (seqRead * (1 << 20))
		rows = append(rows, Table52Row{
			Profile:       p,
			SeqReadMBps:   seqRead,
			SeqWriteMBps:  seqWrite,
			RandReadLat:   randRead,
			RandWriteLat:  randWrite,
			SeqOverRandom: randRead.Seconds() / seqPerBlock,
		})
	}
	return rows, nil
}

// FormatTable52 renders the device calibration table.
func FormatTable52(rows []Table52Row) string {
	var b strings.Builder
	b.WriteString("== table 5-2: simulated machine setup (measured on the device models, 4 KB blocks) ==\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s %10s\n",
		"device", "seq read MB/s", "seq write MB/s", "rand read", "rand write", "seq/rand")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.1f %14.1f %14s %14s %9.1fx\n",
			r.Profile.Name, r.SeqReadMBps, r.SeqWriteMBps, r.RandReadLat, r.RandWriteLat, r.SeqOverRandom)
	}
	return b.String()
}

// SeqVsRand measures the §5.2 observation: a whole-store sequential
// sweep vs the same slot count in random order on the HDD model.
type SeqVsRand struct {
	Slots      int64
	Sequential time.Duration
	Random     time.Duration
	Ratio      float64
}

// RunSeqVsRand sweeps 16K 1 KB slots.
func RunSeqVsRand() (SeqVsRand, error) {
	const slots = 16384
	const slotSize = 1024
	mk := func() (*device.Sim, *simclock.Clock, error) {
		clk := simclock.New()
		d, err := device.New(device.PaperHDD(), slotSize, slots, clk)
		return d, clk, err
	}
	buf := make([]byte, slotSize)

	dSeq, cSeq, err := mk()
	if err != nil {
		return SeqVsRand{}, err
	}
	for i := int64(0); i < slots; i++ {
		dSeq.Read(i, buf) //horam:errok in-range read on a simulated device; the loop measures the clock, not the data
	}

	dRand, cRand, err := mk()
	if err != nil {
		return SeqVsRand{}, err
	}
	for i := int64(0); i < slots; i++ {
		dRand.Read((i*4099)%slots, buf) //horam:errok in-range read on a simulated device; the loop measures the clock, not the data
	}
	out := SeqVsRand{
		Slots:      slots,
		Sequential: cSeq.Now(),
		Random:     cRand.Now(),
	}
	out.Ratio = float64(out.Random) / float64(out.Sequential)
	return out, nil
}

// PartialShuffleRow is one r setting of the §5.3.1 ablation.
type PartialShuffleRow struct {
	Ratio        float64
	TotalTime    time.Duration
	ShuffleTime  time.Duration
	AccessTime   time.Duration
	Shuffles     int64
	PartShuffled int64
	StorageBytes int64
}

// RunPartialShuffle sweeps the shuffle ratio on a mid-size instance.
func RunPartialShuffle(ratios []float64) ([]PartialShuffleRow, error) {
	p := Params{
		DataBytes:   8 << 20,
		MemoryBytes: 1 << 20,
		BlockSize:   1 << 10,
		Requests:    8000,
		HotFrac:     0.8,
		HotSize:     0.05,
		Z:           4,
		Seed:        "partial",
	}
	rows := make([]PartialShuffleRow, 0, len(ratios))
	for _, r := range ratios {
		rng := blockcipher.NewRNGFromString(p.Seed + fmt.Sprint(r))
		cfg := horam.Config{
			Blocks:       p.blocks(),
			BlockSize:    p.BlockSize,
			MemoryBytes:  p.MemoryBytes,
			Z:            p.Z,
			ShuffleRatio: r,
			Sealer:       blockcipher.NullSealer{},
			RNG:          rng.Fork("oram"),
		}
		o, err := horam.New(cfg)
		if err != nil {
			return nil, err
		}
		addrs, err := addresses(p)
		if err != nil {
			return nil, err
		}
		reqs := make([]*horam.Request, len(addrs))
		for i, a := range addrs {
			reqs[i] = &horam.Request{Op: horam.OpRead, Addr: a}
		}
		if err := o.RunBatch(reqs); err != nil {
			return nil, err
		}
		rows = append(rows, PartialShuffleRow{
			Ratio:        r,
			TotalTime:    o.Clock().Now(),
			ShuffleTime:  o.ShuffleTime(),
			AccessTime:   o.AccessTime(),
			Shuffles:     o.Stats().Shuffles,
			PartShuffled: o.Stats().PartShuffled,
			StorageBytes: o.Partitions() * o.PartitionSlots() * int64(p.BlockSize),
		})
	}
	return rows, nil
}

// FormatPartialShuffle renders the ablation rows.
func FormatPartialShuffle(rows []PartialShuffleRow) string {
	var b strings.Builder
	b.WriteString("== §5.3.1 partial shuffle ablation (8 MB data, 1 MB memory, 8k requests) ==\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %9s %10s %12s\n",
		"ratio r", "total", "access", "shuffle", "shuffles", "parts", "storage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %12s %12s %12s %9d %10d %12s\n",
			r.Ratio, r.TotalTime.Round(time.Millisecond), r.AccessTime.Round(time.Millisecond),
			r.ShuffleTime.Round(time.Millisecond), r.Shuffles, r.PartShuffled, byteSize(r.StorageBytes))
	}
	return b.String()
}

// MultiUserRow is one point of the §5.3.2 scaling experiment.
type MultiUserRow struct {
	Users      int
	Requests   int64
	TotalTime  time.Duration
	PerRequest time.Duration
	Throughput float64 // requests per simulated second
}

// RunMultiUser drives one shared H-ORAM with interleaved request
// streams from u users, each with its own hot region.
func RunMultiUser(userCounts []int) ([]MultiUserRow, error) {
	const blocks = 16384
	const perUser = 2000
	rows := make([]MultiUserRow, 0, len(userCounts))
	for _, users := range userCounts {
		rng := blockcipher.NewRNGFromString(fmt.Sprintf("multiuser-%d", users))
		cfg := horam.Config{
			Blocks:      blocks,
			BlockSize:   1 << 10,
			MemoryBytes: (2 << 20),
			Z:           4,
			Sealer:      blockcipher.NullSealer{},
			RNG:         rng.Fork("oram"),
		}
		o, err := horam.New(cfg)
		if err != nil {
			return nil, err
		}
		// Each user hammers a private region with an 80/20 law; the
		// streams interleave round-robin into the shared ROB.
		gens := make([]workload.Generator, users)
		span := int64(blocks / users)
		for u := 0; u < users; u++ {
			base := int64(u) * span
			hot, err := workload.NewHotspot(span, 0.8, 0.05, rng.Fork(fmt.Sprintf("u%d", u)))
			if err != nil {
				return nil, err
			}
			gens[u] = offsetGen{hot, base}
		}
		var reqs []*horam.Request
		for i := 0; i < perUser; i++ {
			for u := 0; u < users; u++ {
				reqs = append(reqs, &horam.Request{Op: horam.OpRead, Addr: gens[u].Next(), User: u})
			}
		}
		if err := o.RunBatch(reqs); err != nil {
			return nil, err
		}
		total := o.Clock().Now()
		n := int64(len(reqs))
		rows = append(rows, MultiUserRow{
			Users:      users,
			Requests:   n,
			TotalTime:  total,
			PerRequest: total / time.Duration(n),
			Throughput: float64(n) / total.Seconds(),
		})
	}
	return rows, nil
}

// offsetGen shifts a generator's addresses into a user's region.
type offsetGen struct {
	g    workload.Generator
	base int64
}

func (o offsetGen) Name() string { return o.g.Name() + "+offset" }
func (o offsetGen) Next() int64  { return o.base + o.g.Next() }

// FormatMultiUser renders the multi-user scaling rows.
func FormatMultiUser(rows []MultiUserRow) string {
	var b strings.Builder
	b.WriteString("== §5.3.2 multi-user sharing (16 MB data, 2 MB memory, 2k requests/user) ==\n")
	fmt.Fprintf(&b, "%6s %10s %12s %14s %16s\n", "users", "requests", "total", "per request", "req/sim-second")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10d %12s %14s %16.0f\n",
			r.Users, r.Requests, r.TotalTime.Round(time.Millisecond), r.PerRequest, r.Throughput)
	}
	return b.String()
}

// ZSweepRow is one bucket-size setting of the design ablation.
type ZSweepRow struct {
	Z         int
	TotalTime time.Duration
	StashPeak int
}

// RunZSweep compares memory-tree bucket sizes on a fixed workload.
func RunZSweep(zs []int) ([]ZSweepRow, error) {
	rows := make([]ZSweepRow, 0, len(zs))
	for _, z := range zs {
		rng := blockcipher.NewRNGFromString(fmt.Sprintf("zsweep-%d", z))
		cfg := horam.Config{
			Blocks:      8192,
			BlockSize:   1 << 10,
			MemoryBytes: 1 << 20,
			Z:           z,
			Sealer:      blockcipher.NullSealer{},
			RNG:         rng.Fork("oram"),
		}
		o, err := horam.New(cfg)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewHotspot(8192, 0.8, 0.05, rng.Fork("wl"))
		if err != nil {
			return nil, err
		}
		var reqs []*horam.Request
		for _, a := range workload.Take(gen, 8000) {
			reqs = append(reqs, &horam.Request{Op: horam.OpRead, Addr: a})
		}
		if err := o.RunBatch(reqs); err != nil {
			return nil, err
		}
		rows = append(rows, ZSweepRow{Z: z, TotalTime: o.Clock().Now()})
	}
	return rows, nil
}

// FormatZSweep renders the Z ablation.
func FormatZSweep(rows []ZSweepRow) string {
	var b strings.Builder
	b.WriteString("== ablation: memory-tree bucket size Z (8 MB data, 1 MB memory, 8k requests) ==\n")
	fmt.Fprintf(&b, "%4s %12s\n", "Z", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %12s\n", r.Z, r.TotalTime.Round(time.Millisecond))
	}
	return b.String()
}

// StageRow compares the staged c schedule with fixed-c schedules.
type StageRow struct {
	Label     string
	TotalTime time.Duration
	Cycles    int64
	DummyMem  int64
}

// RunStageAblation contrasts the paper's staged schedule against fixed
// c values on the same trace.
func RunStageAblation() ([]StageRow, error) {
	schedules := []struct {
		label  string
		stages []horam.Stage
	}{
		{"paper {1,3,5}", horam.PaperStages()},
		{"fixed c=1", []horam.Stage{{C: 1, Frac: 1}}},
		{"fixed c=4", []horam.Stage{{C: 4, Frac: 1}}},
		{"fixed c=8", []horam.Stage{{C: 8, Frac: 1}}},
	}
	p := Params{
		DataBytes:   8 << 20,
		MemoryBytes: 1 << 20,
		BlockSize:   1 << 10,
		Requests:    8000,
		HotFrac:     0.8,
		HotSize:     0.05,
		Z:           4,
		Seed:        "stages",
	}
	rows := make([]StageRow, 0, len(schedules))
	for _, s := range schedules {
		rng := blockcipher.NewRNGFromString(p.Seed + s.label)
		cfg := horam.Config{
			Blocks:      p.blocks(),
			BlockSize:   p.BlockSize,
			MemoryBytes: p.MemoryBytes,
			Z:           p.Z,
			Stages:      s.stages,
			Sealer:      blockcipher.NullSealer{},
			RNG:         rng.Fork("oram"),
		}
		o, err := horam.New(cfg)
		if err != nil {
			return nil, err
		}
		addrs, err := addresses(p)
		if err != nil {
			return nil, err
		}
		reqs := make([]*horam.Request, len(addrs))
		for i, a := range addrs {
			reqs[i] = &horam.Request{Op: horam.OpRead, Addr: a}
		}
		if err := o.RunBatch(reqs); err != nil {
			return nil, err
		}
		rows = append(rows, StageRow{
			Label:     s.label,
			TotalTime: o.Clock().Now(),
			Cycles:    o.Stats().Cycles,
			DummyMem:  o.Stats().DummyMemory,
		})
	}
	return rows, nil
}

// FormatStageAblation renders the schedule comparison.
func FormatStageAblation(rows []StageRow) string {
	var b strings.Builder
	b.WriteString("== ablation: scheduler c schedule (8 MB data, 1 MB memory, 8k requests) ==\n")
	fmt.Fprintf(&b, "%-14s %12s %10s %12s\n", "schedule", "total", "cycles", "mem dummies")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12s %10d %12d\n",
			r.Label, r.TotalTime.Round(time.Millisecond), r.Cycles, r.DummyMem)
	}
	return b.String()
}

// PrefetchRow is one prefetch-depth setting of the scheduler ablation.
type PrefetchRow struct {
	Depth     int
	TotalTime time.Duration
	Cycles    int64
	DummyMem  int64 // padding path accesses (scheduler found too few hits)
	DummyIO   int64
}

// RunPrefetchDepth sweeps the ROB scan window d at fixed stages: a
// deeper window finds matching hits for full groups, cutting dummy
// padding (§4.2's prefetching optimisation).
func RunPrefetchDepth(depths []int) ([]PrefetchRow, error) {
	p := Params{
		DataBytes:   8 << 20,
		MemoryBytes: 1 << 20,
		BlockSize:   1 << 10,
		Requests:    8000,
		HotFrac:     0.8,
		HotSize:     0.01,
		Z:           4,
		Seed:        "prefetch",
	}
	rows := make([]PrefetchRow, 0, len(depths))
	for _, d := range depths {
		rng := blockcipher.NewRNGFromString(fmt.Sprintf("%s-%d", p.Seed, d))
		cfg := horam.Config{
			Blocks:        p.blocks(),
			BlockSize:     p.BlockSize,
			MemoryBytes:   p.MemoryBytes,
			Z:             p.Z,
			PrefetchDepth: d,
			Sealer:        blockcipher.NullSealer{},
			RNG:           rng.Fork("oram"),
		}
		o, err := horam.New(cfg)
		if err != nil {
			return nil, err
		}
		addrs, err := addresses(p)
		if err != nil {
			return nil, err
		}
		reqs := make([]*horam.Request, len(addrs))
		for i, a := range addrs {
			reqs[i] = &horam.Request{Op: horam.OpRead, Addr: a}
		}
		if err := o.RunBatch(reqs); err != nil {
			return nil, err
		}
		st := o.Stats()
		rows = append(rows, PrefetchRow{
			Depth:     d,
			TotalTime: o.Clock().Now(),
			Cycles:    st.Cycles,
			DummyMem:  st.DummyMemory,
			DummyIO:   st.DummyIO,
		})
	}
	return rows, nil
}

// FormatPrefetchDepth renders the prefetch ablation.
func FormatPrefetchDepth(rows []PrefetchRow) string {
	var b strings.Builder
	b.WriteString("== ablation: prefetch window depth d (8 MB data, 1 MB memory, 8k requests) ==\n")
	fmt.Fprintf(&b, "%6s %12s %10s %12s %10s\n", "d", "total", "cycles", "mem dummies", "io dummies")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12s %10d %12d %10d\n",
			r.Depth, r.TotalTime.Round(time.Millisecond), r.Cycles, r.DummyMem, r.DummyIO)
	}
	return b.String()
}

// ShuffleAlgRow compares the in-memory shuffle algorithm choices on
// equal inputs: wall-clock cost and the oblivious-primitive counts.
type ShuffleAlgRow struct {
	Name      string
	WallTime  time.Duration
	Primitive string // what the count below counts
	Count     int64
}

// RunShuffleAlgs shuffles the same 4096 x 1 KB buffer with every
// algorithm (the DESIGN ablation: inside trusted memory any uniform
// shuffle is admissible; the oblivious ones cost more).
func RunShuffleAlgs() ([]ShuffleAlgRow, error) {
	const n = 4096
	mkItems := func() [][]byte {
		items := make([][]byte, n)
		for i := range items {
			items[i] = make([]byte, 1024)
			items[i][0] = byte(i)
		}
		return items
	}
	var rows []ShuffleAlgRow

	run := func(name string, fn func(items [][]byte) (string, int64, error)) error {
		items := mkItems()
		start := time.Now()
		prim, count, err := fn(items)
		if err != nil {
			return err
		}
		rows = append(rows, ShuffleAlgRow{Name: name, WallTime: time.Since(start), Primitive: prim, Count: count})
		return nil
	}

	if err := run("fisher-yates", func(items [][]byte) (string, int64, error) {
		rng := blockcipher.NewRNGFromString("alg-fy")
		err := shuffle.Cache{}.Shuffle(items, rng)
		return "swaps", int64(len(items) - 1), err
	}); err != nil {
		return nil, err
	}
	if err := run("bitonic", func(items [][]byte) (string, int64, error) {
		rng := blockcipher.NewRNGFromString("alg-bit")
		alg := &shuffle.Bitonic{}
		err := alg.Shuffle(items, rng)
		return "compare-exchanges", alg.CompareExchanges, err
	}); err != nil {
		return nil, err
	}
	if err := run("melbourne", func(items [][]byte) (string, int64, error) {
		rng := blockcipher.NewRNGFromString("alg-melb")
		alg := &shuffle.Melbourne{}
		err := alg.Shuffle(items, rng)
		return "slot writes", alg.RealWrites + alg.DummyWrites, err
	}); err != nil {
		return nil, err
	}
	if err := run("benes", func(items [][]byte) (string, int64, error) {
		rng := blockcipher.NewRNGFromString("alg-benes")
		alg := &shuffle.BenesShuffle{}
		err := alg.Shuffle(items, rng)
		return "switches", alg.Switches, err
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatShuffleAlgs renders the shuffle-algorithm comparison.
func FormatShuffleAlgs(rows []ShuffleAlgRow) string {
	var b strings.Builder
	b.WriteString("== ablation: in-memory shuffle algorithm (4096 x 1 KB blocks) ==\n")
	fmt.Fprintf(&b, "%-14s %12s %22s %12s\n", "algorithm", "wall time", "primitive", "count")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12s %22s %12d\n", r.Name, r.WallTime.Round(time.Microsecond), r.Primitive, r.Count)
	}
	b.WriteString("(fisher-yates is admissible inside trusted memory; the oblivious\n")
	b.WriteString(" algorithms show what an untrusted-memory shuffle would cost)\n")
	return b.String()
}
