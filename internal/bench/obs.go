// Observability-overhead benchmark: the same engine workload run
// bare, with the metrics registry wired, and with the tracer armed on
// top — the cost story for leaving instrumentation on in production.
// The instruments are single atomic ops and the tracer's disabled
// path is one atomic load, so the wired modes should sit within noise
// of bare; this experiment is the regression guard on that claim.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ObsParams sizes one observability-overhead run.
type ObsParams struct {
	Blocks    int64  `json:"blocks"`
	BlockSize int    `json:"blocksize"`
	MemBytes  int64  `json:"mem_bytes"`
	Shards    int    `json:"shards"`
	Requests  int    `json:"requests"`
	BatchSize int    `json:"batch_size"`
	Seed      string `json:"seed"`
}

// DefaultObsParams reuses the shard-bench geometry at 2 shards: large
// enough to cross shuffle periods, so the instrumented paths include
// the quantum and leveling hooks, not just the batch epilogue.
func DefaultObsParams() ObsParams {
	return ObsParams{
		Blocks:    16384,
		BlockSize: 256,
		MemBytes:  1 << 20,
		Shards:    2,
		Requests:  12000,
		BatchSize: 384,
		Seed:      "obs-bench",
	}
}

// ObsRow is one instrumentation mode's measurement.
type ObsRow struct {
	Mode        string        `json:"mode"` // bare | registry | registry+trace
	Requests    int           `json:"requests"`
	Wall        time.Duration `json:"wall_ns"`
	WallTput    float64       `json:"wall_req_per_s"`
	NsPerOp     float64       `json:"ns_per_op"`
	OverheadPct float64       `json:"overhead_pct"` // vs the bare row
	Spans       int           `json:"spans"`        // tracer spans recorded (trace mode)
}

// RunObs measures the three modes on one seeded workload. Each mode
// gets a fresh engine (same seed, same request stream), so the only
// variable is the instrumentation wiring.
func RunObs(p ObsParams) ([]ObsRow, error) {
	modes := []string{"bare", "registry", "registry+trace"}
	rows := make([]ObsRow, 0, len(modes))
	for _, mode := range modes {
		row, err := runObsOne(mode, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	base := rows[0].Wall.Seconds()
	for i := range rows {
		rows[i].OverheadPct = (rows[i].Wall.Seconds() - base) / base * 100
	}
	return rows, nil
}

func runObsOne(mode string, p ObsParams) (ObsRow, error) {
	e, err := engine.New(engine.Options{
		Blocks:      p.Blocks,
		BlockSize:   p.BlockSize,
		MemoryBytes: p.MemBytes,
		Insecure:    true,
		Seed:        p.Seed,
		Shards:      p.Shards,
	})
	if err != nil {
		return ObsRow{}, err
	}
	defer e.Close() //horam:errok bench teardown; the measured run is already over

	var tr *obs.Tracer
	switch mode {
	case "bare":
		// No Observe call: nil instruments, the no-op fast path.
	case "registry":
		e.Observe(obs.NewRegistry(), nil)
	case "registry+trace":
		tr = obs.NewTracer(1 << 17)
		e.Observe(obs.NewRegistry(), tr)
		tr.Start()
	default:
		return ObsRow{}, fmt.Errorf("unknown obs mode %q", mode)
	}

	rng := blockcipher.NewRNGFromString(p.Seed + "-wl")
	payload := bytes.Repeat([]byte{0x5a}, p.BlockSize)
	reqs := make([]*engine.Request, p.Requests)
	for i := range reqs {
		addr := rng.Int63n(p.Blocks)
		if i%4 == 3 {
			reqs[i] = &engine.Request{Op: engine.OpWrite, Addr: addr, Data: payload}
		} else {
			reqs[i] = &engine.Request{Op: engine.OpRead, Addr: addr}
		}
	}

	start := time.Now()
	for off := 0; off < len(reqs); off += p.BatchSize {
		end := off + p.BatchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := e.Batch(reqs[off:end]); err != nil {
			return ObsRow{}, err
		}
	}
	wall := time.Since(start)

	row := ObsRow{
		Mode:     mode,
		Requests: p.Requests,
		Wall:     wall,
		WallTput: float64(p.Requests) / wall.Seconds(),
		NsPerOp:  float64(wall.Nanoseconds()) / float64(p.Requests),
	}
	if tr != nil {
		tr.Stop()
		row.Spans = tr.Len()
	}
	return row, nil
}

// FormatObs renders the comparison.
func FormatObs(rows []ObsRow, p ObsParams) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== observability overhead: instrumented vs bare engine (%d x %d B blocks, %d shards, %d requests) ==\n",
		p.Blocks, p.BlockSize, p.Shards, p.Requests)
	fmt.Fprintf(&b, "%16s %12s %12s %10s %10s %8s\n", "mode", "wall", "req/s", "ns/op", "overhead", "spans")
	for _, r := range rows {
		fmt.Fprintf(&b, "%16s %12s %12.0f %10.0f %+9.1f%% %8d\n",
			r.Mode, r.Wall.Round(time.Millisecond), r.WallTput, r.NsPerOp, r.OverheadPct, r.Spans)
	}
	fmt.Fprintf(&b, "registry = atomic counters/histograms wired into the batch, leveling and\n")
	fmt.Fprintf(&b, "quantum paths; trace additionally records one span per window/batch/drain.\n")
	return b.String()
}

// ObsReport is the JSON baseline committed as BENCH_obs.json.
type ObsReport struct {
	Experiment string    `json:"experiment"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	CPUs       int       `json:"cpus"`
	Params     ObsParams `json:"params"`
	Rows       []ObsRow  `json:"rows"`
}

// WriteObsJSON writes the comparison as an indented JSON baseline.
func WriteObsJSON(path string, rows []ObsRow, p ObsParams) error {
	rep := ObsReport{
		Experiment: "obs",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Params:     p,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
