package bench

import (
	"testing"
)

// TestShardSimThroughputScales is the acceptance gate for the sharded
// engine: on the deployment-model metric (requests / slowest shard's
// virtual device time — shards are independent hardware), 4 shards
// must deliver at least 2x the aggregate throughput of 1 shard. The
// virtual clocks make this deterministic regardless of host cores.
func TestShardSimThroughputScales(t *testing.T) {
	p := ShardParams{
		Blocks:    4096,
		BlockSize: 128,
		MemBytes:  1 << 20,
		Requests:  4000,
		BatchSize: 256,
		Seed:      "shard-scaling-test",
	}
	rows, err := RunShard([]int{1, 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	one, four := rows[0], rows[1]
	if four.SimTput < 2*one.SimTput {
		t.Fatalf("4 shards: %.0f sim req/s vs 1 shard: %.0f — %.2fx, want >= 2x",
			four.SimTput, one.SimTput, four.SimTput/one.SimTput)
	}
	t.Logf("sim throughput: 1 shard %.0f req/s, 4 shards %.0f req/s (%.2fx)",
		one.SimTput, four.SimTput, four.SimTput/one.SimTput)

	// Balance check on the real per-shard spread: the PRF deal should
	// keep the hot-spot workload's requests within a sane band — a
	// degenerate partition (everything on one shard) would also erase
	// the throughput gain asserted above.
	if four.MinShardReqs == 0 {
		t.Fatalf("a shard served zero requests from a 4000-request workload: min=%d max=%d",
			four.MinShardReqs, four.MaxShardReqs)
	}
	if four.MaxShardReqs > 4*four.MinShardReqs {
		t.Errorf("per-shard request spread too wide: min=%d max=%d", four.MinShardReqs, four.MaxShardReqs)
	}
}
