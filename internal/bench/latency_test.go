package bench

import "testing"

// TestLatencySweepSmoke runs a miniature latency sweep end to end and
// sanity-checks the direction of the deamortization effect: the
// incremental pipeline's worst single cycle must be well under the
// monolithic one's, and the totals must stay within a few percent
// (the period's work is identical; only its placement changes).
func TestLatencySweepSmoke(t *testing.T) {
	p := LatencyParams{
		Blocks:    4096,
		BlockSize: 64,
		MemBytes:  64 << 10,
		Requests:  1200,
		BatchSize: 32,
		Shards:    []int{2},
		Seed:      "latency-smoke",
	}
	rows, err := RunLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	byMode := map[string]LatencyRow{}
	for _, r := range rows {
		if r.SimMax <= 0 || r.SimP99 <= 0 || r.SimP50 <= 0 {
			t.Fatalf("%s: empty latency distribution: %+v", r.Mode, r)
		}
		if r.Shuffles == 0 {
			t.Fatalf("%s: no shuffles; the sweep never exercised the period boundary", r.Mode)
		}
		byMode[r.Mode] = r
	}
	mono, incr := byMode["monolithic"], byMode["incremental"]
	if incr.Quanta == 0 || mono.Quanta != 0 {
		t.Fatalf("quanta: incremental %d, monolithic %d", incr.Quanta, mono.Quanta)
	}
	if incr.MaxCycleTime*2 > mono.MaxCycleTime {
		t.Fatalf("max cycle cost: incremental %v vs monolithic %v — no deamortization", incr.MaxCycleTime, mono.MaxCycleTime)
	}
	ratio := float64(incr.SimTotal) / float64(mono.SimTotal)
	if ratio > 1.25 || ratio < 0.8 {
		t.Fatalf("sim totals diverge: incremental %v vs monolithic %v", incr.SimTotal, mono.SimTotal)
	}

	// The baseline writer round-trips.
	tmp := t.TempDir() + "/latency.json"
	if err := WriteLatencyJSON(tmp, rows, p); err != nil {
		t.Fatal(err)
	}
}
