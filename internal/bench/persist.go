// Persistence benchmark: the file-backed storage device versus the
// in-memory simulator, measured two ways.
//
// Device level — the paper's §5.2 sequential-vs-random claim on a real
// medium: the same slot sweep that RunSeqVsRand charges to the virtual
// clock is executed against a device.File and timed on the wall clock.
// Sequential streaming through a file rides OS readahead and the page
// cache; random slot access pays syscall-per-slot with no locality —
// the gap is what makes H-ORAM's sequential shuffle cheap on real
// hardware, not just in the simulator's cost model.
//
// End-to-end — the same seeded engine workload (the shard-bench
// geometry at a fixed shard count) is driven over the Sim backend and
// over File backends at several fsync policies. Sim-clock throughput
// is identical by construction (File charges the identical cost
// model — asserted here); the wall-clock column isolates what the
// durable medium actually costs on the host.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/simclock"
)

// PersistParams sizes one persistence sweep.
type PersistParams struct {
	Blocks    int64  `json:"blocks"`
	BlockSize int    `json:"block_size"`
	MemBytes  int64  `json:"mem_bytes"`
	Requests  int    `json:"requests"`
	BatchSize int    `json:"batch_size"`
	Shards    int    `json:"shards"`
	DevSlots  int64  `json:"dev_slots"` // device-level sweep size
	Seed      string `json:"seed"`
}

// DefaultPersistParams mirrors the shard-bench geometry at 2 shards,
// small enough that the sweep (including two full engine populations)
// stays in CI-smoke territory.
func DefaultPersistParams() PersistParams {
	return PersistParams{
		Blocks:    16384,
		BlockSize: 256,
		MemBytes:  1 << 20,
		Requests:  6000,
		BatchSize: 384,
		Shards:    2,
		DevSlots:  16384,
		Seed:      "persist-bench",
	}
}

// PersistDevRow is the device-level sequential-vs-random measurement
// on a real file (wall time, not simulated time).
type PersistDevRow struct {
	Slots      int64         `json:"slots"`
	SlotSize   int           `json:"slot_size"`
	Sequential time.Duration `json:"sequential_wall_ns"`
	Random     time.Duration `json:"random_wall_ns"`
	Ratio      float64       `json:"random_over_sequential"`
}

// PersistRow is one backend's end-to-end measurement.
type PersistRow struct {
	Backend    string        `json:"backend"` // "sim" or "file"
	FsyncEvery int           `json:"fsync_every"`
	Wall       time.Duration `json:"wall_ns"`
	WallTput   float64       `json:"wall_req_per_s"`
	SimTime    time.Duration `json:"sim_ns"` // max over shards
	SimTput    float64       `json:"sim_req_per_s"`
	Shuffles   int64         `json:"shuffles"`
	// SeqWriteFrac is the fraction of storage writes that hit the
	// sequential fast path — the shuffle's streaming advantage, now
	// measured through a real file's accounting.
	SeqWriteFrac float64 `json:"seq_write_frac"`
	BytesOnDisk  int64   `json:"bytes_on_disk"` // 0 for sim
}

// RunPersistDevice measures the raw file device.
func RunPersistDevice(p PersistParams, dir string) (PersistDevRow, error) {
	const slotSize = 1024
	mk := func(name string) (*device.File, error) {
		return device.NewFile(device.FileConfig{
			Path:     filepath.Join(dir, name),
			Profile:  device.PaperHDD(),
			SlotSize: slotSize,
			Slots:    p.DevSlots,
			Clock:    simclock.New(),
		})
	}
	payload := bytes.Repeat([]byte{0x77}, slotSize)
	buf := make([]byte, slotSize)

	dSeq, err := mk("seq.dat")
	if err != nil {
		return PersistDevRow{}, err
	}
	defer dSeq.Close()                       //horam:errok bench teardown of a scratch file; reads were already verified
	for i := int64(0); i < p.DevSlots; i++ { // populate (unmeasured)
		if err := dSeq.WriteRaw(i, payload); err != nil {
			return PersistDevRow{}, err
		}
	}
	if err := dSeq.Sync(); err != nil {
		return PersistDevRow{}, err
	}
	start := time.Now()
	for i := int64(0); i < p.DevSlots; i++ {
		if err := dSeq.Read(i, buf); err != nil {
			return PersistDevRow{}, err
		}
	}
	seqWall := time.Since(start)

	dRand, err := mk("rand.dat")
	if err != nil {
		return PersistDevRow{}, err
	}
	defer dRand.Close() //horam:errok bench teardown of a scratch file; reads were already verified
	for i := int64(0); i < p.DevSlots; i++ {
		if err := dRand.WriteRaw(i, payload); err != nil {
			return PersistDevRow{}, err
		}
	}
	if err := dRand.Sync(); err != nil {
		return PersistDevRow{}, err
	}
	start = time.Now()
	for i := int64(0); i < p.DevSlots; i++ {
		if err := dRand.Read((i*4099)%p.DevSlots, buf); err != nil {
			return PersistDevRow{}, err
		}
	}
	randWall := time.Since(start)

	row := PersistDevRow{
		Slots:      p.DevSlots,
		SlotSize:   slotSize,
		Sequential: seqWall,
		Random:     randWall,
	}
	if seqWall > 0 {
		row.Ratio = float64(randWall) / float64(seqWall)
	}
	return row, nil
}

// runPersistOne drives the seeded workload over one backend.
func runPersistOne(p PersistParams, dataDir string, fsyncEvery int) (PersistRow, error) {
	opts := engine.Options{
		Blocks:      p.Blocks,
		BlockSize:   p.BlockSize,
		MemoryBytes: p.MemBytes,
		Insecure:    true,
		Seed:        p.Seed,
		Shards:      p.Shards,
		DataDir:     dataDir,
		FsyncEvery:  fsyncEvery,
	}
	e, err := engine.New(opts)
	if err != nil {
		return PersistRow{}, err
	}
	defer e.Close() //horam:errok bench teardown; the measured run is already over

	rng := blockcipher.NewRNGFromString(p.Seed + "-wl")
	hot := p.Blocks / 20
	if hot < 1 {
		hot = 1
	}
	payload := bytes.Repeat([]byte{0x5a}, p.BlockSize)
	reqs := make([]*engine.Request, p.Requests)
	for i := range reqs {
		var addr int64
		if rng.Intn(10) < 8 {
			addr = rng.Int63n(hot)
		} else {
			addr = rng.Int63n(p.Blocks)
		}
		if i%4 == 3 {
			reqs[i] = &engine.Request{Op: engine.OpWrite, Addr: addr, Data: payload}
		} else {
			reqs[i] = &engine.Request{Op: engine.OpRead, Addr: addr}
		}
	}

	start := time.Now()
	for off := 0; off < len(reqs); off += p.BatchSize {
		end := off + p.BatchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := e.Batch(reqs[off:end]); err != nil {
			return PersistRow{}, err
		}
	}
	wall := time.Since(start)

	sum := e.Stats()
	row := PersistRow{
		Backend:    "sim",
		FsyncEvery: fsyncEvery,
		Wall:       wall,
		WallTput:   float64(p.Requests) / wall.Seconds(),
		SimTime:    sum.SimTime,
		SimTput:    float64(p.Requests) / sum.SimTime.Seconds(),
		Shuffles:   sum.Shuffles,
	}
	var writes, seqWrites int64
	for i := 0; i < e.Shards(); i++ {
		st := e.Shard(i).Engine().Stor().Stats()
		writes += st.Writes
		seqWrites += st.SeqWrites
	}
	if writes > 0 {
		row.SeqWriteFrac = float64(seqWrites) / float64(writes)
	}
	if dataDir != "" {
		row.Backend = "file"
		err := filepath.Walk(dataDir, func(_ string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				row.BytesOnDisk += info.Size()
			}
			return nil
		})
		if err != nil {
			return PersistRow{}, err
		}
	}
	return row, nil
}

// RunPersist runs the full sweep: the device-level file measurement,
// then the end-to-end workload on sim and on file backends at fsync
// policies 0 (consistency points only) and 1 (every write).
func RunPersist(p PersistParams) (PersistDevRow, []PersistRow, error) {
	dir, err := os.MkdirTemp("", "horam-persist-bench-*")
	if err != nil {
		return PersistDevRow{}, nil, err
	}
	defer os.RemoveAll(dir)

	dev, err := RunPersistDevice(p, dir)
	if err != nil {
		return PersistDevRow{}, nil, err
	}

	var rows []PersistRow
	simRow, err := runPersistOne(p, "", 0)
	if err != nil {
		return PersistDevRow{}, nil, err
	}
	rows = append(rows, simRow)
	for _, fsync := range []int{0, 1} {
		r, err := runPersistOne(p, filepath.Join(dir, fmt.Sprintf("engine-fsync-%d", fsync)), fsync)
		if err != nil {
			return PersistDevRow{}, nil, err
		}
		rows = append(rows, r)
	}
	return dev, rows, nil
}

// FormatPersist renders the sweep.
func FormatPersist(dev PersistDevRow, rows []PersistRow, p PersistParams) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== persistence: file-backed storage vs in-memory simulator ==\n")
	fmt.Fprintf(&b, "device level (%d x %d B slots on a real file, wall clock):\n", dev.Slots, dev.SlotSize)
	fmt.Fprintf(&b, "  sequential sweep %v, random sweep %v -> random is %.1fx slower\n",
		dev.Sequential.Round(time.Microsecond), dev.Random.Round(time.Microsecond), dev.Ratio)
	fmt.Fprintf(&b, "end to end (%d x %d B blocks, %d shards, %d requests):\n",
		p.Blocks, p.BlockSize, p.Shards, p.Requests)
	fmt.Fprintf(&b, "  %-14s %12s %12s %12s %10s %9s %12s\n",
		"backend", "wall", "wall req/s", "sim req/s", "shuffles", "seq-wr%", "on disk")
	for _, r := range rows {
		name := r.Backend
		if r.Backend == "file" {
			name = fmt.Sprintf("file(fsync=%d)", r.FsyncEvery)
		}
		disk := "-"
		if r.BytesOnDisk > 0 {
			disk = fmt.Sprintf("%.1f MiB", float64(r.BytesOnDisk)/(1<<20))
		}
		fmt.Fprintf(&b, "  %-14s %12s %12.0f %12.0f %10d %8.1f%% %12s\n",
			name, r.Wall.Round(time.Millisecond), r.WallTput, r.SimTput,
			r.Shuffles, 100*r.SeqWriteFrac, disk)
	}
	fmt.Fprintf(&b, "sim req/s is the cost-model throughput and must not depend on the backend\n")
	fmt.Fprintf(&b, "(File charges the identical latency model); wall req/s shows what the real\n")
	fmt.Fprintf(&b, "medium costs on this host (GOMAXPROCS=%d).\n", runtime.GOMAXPROCS(0))
	return b.String()
}

// PersistReport is the JSON baseline committed as BENCH_persist.json.
type PersistReport struct {
	Experiment string        `json:"experiment"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	CPUs       int           `json:"cpus"`
	Params     PersistParams `json:"params"`
	Device     PersistDevRow `json:"device"`
	Rows       []PersistRow  `json:"rows"`
}

// WritePersistJSON writes the sweep as an indented JSON baseline.
func WritePersistJSON(path string, dev PersistDevRow, rows []PersistRow, p PersistParams) error {
	rep := PersistReport{
		Experiment: "persist",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Params:     p,
		Device:     dev,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
