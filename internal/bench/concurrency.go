// Serving-layer benchmark: throughput versus number of concurrent TCP
// clients through the batched front end (internal/server). Unlike the
// paper-table experiments, this one measures real wall-clock time over
// real loopback sockets — the point is the serving stack, not the
// simulated devices — and reports the observed mean scheduler batch
// size so the request-grouping win (§4.2, §5.3.2) is visible directly
// in BENCH output.
package bench

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
)

// ConcurrencyRow is one client-count measurement.
type ConcurrencyRow struct {
	Clients    int
	Requests   int
	Wall       time.Duration
	Throughput float64 // requests per wall-clock second
	MeanBatch  float64 // mean logical requests per scheduler drain
	Batches    int64
}

// RunConcurrency measures serving throughput for each client count:
// a fresh store and server per row, each client driving perClient
// mixed read/write requests over its own TCP connection and private
// address region.
func RunConcurrency(clients []int, perClient int) ([]ConcurrencyRow, error) {
	rows := make([]ConcurrencyRow, 0, len(clients))
	for _, n := range clients {
		row, err := runConcurrencyOne(n, perClient)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runConcurrencyOne(clients, perClient int) (ConcurrencyRow, error) {
	const (
		blockSize = 256
		region    = 256
	)
	store, err := engine.New(engine.Options{
		Blocks:      int64(clients) * region * 2,
		BlockSize:   blockSize,
		MemoryBytes: 1 << 20,
		Insecure:    true,
		Seed:        fmt.Sprint("concurrency-", clients),
	})
	if err != nil {
		return ConcurrencyRow{}, err
	}
	defer store.Close() //horam:errok bench teardown; the measured run is already over
	srv, err := server.New(server.Config{Engine: store})
	if err != nil {
		return ConcurrencyRow{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ConcurrencyRow{}, err
	}
	go srv.Serve(ln)
	defer srv.Close() //horam:errok bench teardown; the measured run is already over

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs <- driveConcurrencyClient(ln.Addr().String(), id, perClient, region, blockSize)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ConcurrencyRow{}, err
		}
	}
	wall := time.Since(start)

	st := srv.Stats()
	total := clients * perClient
	return ConcurrencyRow{
		Clients:    clients,
		Requests:   total,
		Wall:       wall,
		Throughput: float64(total) / wall.Seconds(),
		MeanBatch:  st.MeanBatch,
		Batches:    st.Batches,
	}, nil
}

func driveConcurrencyClient(addr string, id, ops, region, blockSize int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close() //horam:errok bench teardown; the measured run is already over
	base := int64(id * region)
	rng := blockcipher.NewRNGFromString(fmt.Sprint("bench-client-", id))
	payload := bytes.Repeat([]byte{byte(id + 1)}, blockSize)
	for i := 0; i < ops; i++ {
		a := base + rng.Int63n(int64(region))
		if i%2 == 0 {
			if err := c.Write(a, payload); err != nil {
				return err
			}
		} else if _, err := c.Read(a); err != nil {
			return err
		}
	}
	return nil
}

// FormatConcurrency renders the sweep.
func FormatConcurrency(rows []ConcurrencyRow) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== serving layer: throughput vs concurrent clients (real TCP, wall clock) ==\n")
	fmt.Fprintf(&b, "%8s %9s %10s %11s %9s %8s\n",
		"clients", "requests", "wall", "req/s", "batches", "ĉ_obs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %9d %10s %11.0f %9d %8.2f\n",
			r.Clients, r.Requests, r.Wall.Round(time.Millisecond),
			r.Throughput, r.Batches, r.MeanBatch)
	}
	fmt.Fprintf(&b, "ĉ_obs = mean logical requests per scheduler drain; > 1 means the\n")
	fmt.Fprintf(&b, "batching window is amortising storage loads across concurrent clients.\n")
	return b.String()
}
