// Oblivious key–value benchmark: logical KV throughput versus shard
// count through internal/okv over internal/engine. Each logical
// operation costs one fixed pipeline of block batches (2S slot reads,
// E extent reads, 1+E writes — reported per row as blocks/op), so KV
// throughput is the block-store throughput divided by a constant; the
// sweep shows how much of the engine's shard scaling the KV layer
// keeps. As in the shard sweep, sim req/s divides by the SLOWEST
// shard's virtual device time (shards model independent hardware) and
// wall req/s reflects host-core parallelism.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/engine"
	"repro/internal/okv"
)

// KVParams sizes one KV throughput sweep.
type KVParams struct {
	Blocks         int64
	BlockSize      int
	MemBytes       int64 // total across shards
	SlotsPerBucket int
	MaxValueBytes  int
	SeedKeys       int // keys inserted before measurement
	Ops            int // measured mixed operations, split across Workers
	Workers        int // concurrent clients driving the measured phase
	Seed           string
}

// DefaultKVParams is the committed-baseline geometry: the shard
// sweep's block store (16 Ki × 256 B, 1 MiB memory) carrying a table
// of 4-slot buckets with 512 B values (2 extent blocks per slot), at
// a ~19% seeded load factor, under a 60/30/10 get/set/del mix.
func DefaultKVParams() KVParams {
	return KVParams{
		Blocks:         16384,
		BlockSize:      256,
		MemBytes:       1 << 20,
		SlotsPerBucket: 4,
		MaxValueBytes:  512,
		SeedKeys:       1024,
		Ops:            1536,
		Workers:        8,
		Seed:           "kv-bench",
	}
}

// KVRow is one shard-count measurement.
type KVRow struct {
	Shards      int           `json:"shards"`
	Ops         int           `json:"ops"`
	BlocksPerOp int           `json:"blocks_per_op"` // fixed pipeline size
	Wall        time.Duration `json:"wall_ns"`
	WallTput    float64       `json:"wall_ops_per_s"`
	SimTime     time.Duration `json:"sim_ns"` // measured phase, max over shard clocks
	SimTput     float64       `json:"sim_ops_per_s"`
	Gets        int64         `json:"gets"`
	Sets        int64         `json:"sets"`
	Dels        int64         `json:"dels"`
	Misses      int64         `json:"misses"`
	LiveKeys    int64         `json:"live_keys"`
	Capacity    int64         `json:"capacity"`
}

// RunKV sweeps the shard counts on the same seeded logical workload.
func RunKV(shardCounts []int, p KVParams) ([]KVRow, error) {
	rows := make([]KVRow, 0, len(shardCounts))
	for _, s := range shardCounts {
		row, err := runKVOne(s, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runKVOne(shards int, p KVParams) (KVRow, error) {
	e, err := engine.New(engine.Options{
		Blocks:      p.Blocks,
		BlockSize:   p.BlockSize,
		MemoryBytes: p.MemBytes,
		Insecure:    true,
		Seed:        fmt.Sprintf("%s-%d", p.Seed, shards),
		Shards:      shards,
	})
	if err != nil {
		return KVRow{}, err
	}
	defer e.Close() //horam:errok bench teardown; the measured run is already over
	s, err := okv.New(okv.Options{
		Backend:        e,
		SlotsPerBucket: p.SlotsPerBucket,
		MaxValueBytes:  p.MaxValueBytes,
		Insecure:       true,
		Seed:           p.Seed,
	})
	if err != nil {
		return KVRow{}, err
	}

	// Seed phase: a resident population so the measured mix sees
	// mostly hits, like a warmed cache of user records.
	key := func(i int) []byte { return []byte(fmt.Sprintf("user-%06d", i)) }
	rng := blockcipher.NewRNGFromString(p.Seed + "-wl")
	val := func(i int) []byte {
		n := 1 + rng.Intn(p.MaxValueBytes)
		return bytes.Repeat([]byte{byte(i)}, n)
	}
	for i := 0; i < p.SeedKeys; i++ {
		if err := s.Set(key(i), val(i)); err != nil {
			return KVRow{}, fmt.Errorf("seed key %d: %w", i, err)
		}
	}

	// Measured phase: Workers concurrent clients, each running its
	// share of a 60/30/10 get/set/del mix (gets are 80/20 hot-spotted
	// over the residents with ~9% ghosts). Concurrency is what the
	// layer is built for: okv's bucket-striped locking lets disjoint
	// ops overlap, so their fixed pipelines coalesce in the shards'
	// reorder buffers.
	preStats := s.Stats()
	preSim := e.Stats().SimTime
	hot := p.SeedKeys / 20
	if hot < 1 {
		hot = 1
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := blockcipher.NewRNGFromString(fmt.Sprintf("%s-worker-%d", p.Seed, w))
			wval := func(i int) []byte {
				n := 1 + wrng.Intn(p.MaxValueBytes)
				return bytes.Repeat([]byte{byte(i)}, n)
			}
			ops := p.Ops / workers
			if w < p.Ops%workers {
				ops++
			}
			for i := 0; i < ops; i++ {
				switch r := wrng.Intn(10); {
				case r < 6:
					idx := wrng.Intn(p.SeedKeys * 11 / 10) // ~9% ghosts
					if wrng.Intn(10) < 8 {
						idx = wrng.Intn(hot)
					}
					if _, _, err := s.Get(key(idx)); err != nil {
						errs[w] = err
						return
					}
				case r < 9:
					if err := s.Set(key(wrng.Intn(p.SeedKeys)), wval(i)); err != nil {
						errs[w] = err
						return
					}
				default:
					if _, err := s.Del(key(wrng.Intn(p.SeedKeys))); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return KVRow{}, err
		}
	}

	sum := e.Stats()
	st := s.Stats()
	shape := s.Shape()
	row := KVRow{
		Shards:      shards,
		Ops:         p.Ops,
		BlocksPerOp: shape.LookupReads + shape.ExtentReads + shape.Writes,
		Wall:        wall,
		WallTput:    float64(p.Ops) / wall.Seconds(),
		SimTime:     sum.SimTime - preSim,
		Gets:        st.Gets - preStats.Gets,
		Sets:        st.Sets - preStats.Sets,
		Dels:        st.Dels - preStats.Dels,
		Misses:      st.Misses - preStats.Misses,
		LiveKeys:    st.Count,
		Capacity:    st.Capacity,
	}
	// Sim throughput is logical ops per virtual device second over the
	// measured phase alone (the serial seed phase is setup, not the
	// workload under test).
	row.SimTput = float64(p.Ops) / row.SimTime.Seconds()
	return row, nil
}

// FormatKV renders the sweep.
func FormatKV(rows []KVRow, p KVParams) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== oblivious KV: logical throughput vs shard count (%d x %d B blocks, %d-slot buckets, %d B value cap, %d seeded keys, %d ops) ==\n",
		p.Blocks, p.BlockSize, p.SlotsPerBucket, p.MaxValueBytes, p.SeedKeys, p.Ops)
	fmt.Fprintf(&b, "%7s %10s %12s %12s %12s %8s %8s %8s %8s\n",
		"shards", "blocks/op", "wall", "wall ops/s", "sim ops/s", "gets", "sets", "dels", "misses")
	base := 0.0
	for i, r := range rows {
		if i == 0 {
			base = r.SimTput
		}
		fmt.Fprintf(&b, "%7d %10d %12s %12.1f %12.1f %8d %8d %8d %8d   (%.2fx)\n",
			r.Shards, r.BlocksPerOp, r.Wall.Round(time.Millisecond), r.WallTput, r.SimTput,
			r.Gets, r.Sets, r.Dels, r.Misses, r.SimTput/base)
	}
	fmt.Fprintf(&b, "every op = one fixed pipeline (2S slot reads + E extent reads + 1+E writes);\n")
	fmt.Fprintf(&b, "hit, miss, insert, update and delete are bus-indistinguishable, so logical\n")
	fmt.Fprintf(&b, "ops/s is block req/s divided by the constant blocks/op.\n")
	return b.String()
}

// KVReport is the JSON baseline committed as BENCH_kv.json.
type KVReport struct {
	Experiment string   `json:"experiment"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPUs       int      `json:"cpus"`
	Params     KVParams `json:"params"`
	Rows       []KVRow  `json:"rows"`
}

// WriteKVJSON writes the sweep as an indented JSON baseline.
func WriteKVJSON(path string, rows []KVRow, p KVParams) error {
	rep := KVReport{
		Experiment: "kv",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Params:     p,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
