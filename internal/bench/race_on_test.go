//go:build race

package bench

// raceEnabled mirrors the -race build flag; see race_off_test.go.
const raceEnabled = true
