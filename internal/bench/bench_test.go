package bench

import (
	"strings"
	"testing"
	"time"
)

// smallParams shrinks an experiment so the unit tests stay fast while
// preserving the geometry ratios (data : memory = 8 : 1).
func smallParams() Params {
	return Params{
		Name:        "small",
		DataBytes:   4 << 20,
		MemoryBytes: 512 << 10,
		BlockSize:   1 << 10,
		Requests:    3000,
		HotFrac:     0.8,
		HotSize:     0.01,
		Z:           4,
		Seed:        "bench-test",
	}
}

func TestComparisonShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiment is slow")
	}
	c, err := RunComparison(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions per the paper's Tables 5-3/5-4: H-ORAM wins by
	// an order of magnitude and issues several-fold fewer I/Os.
	if c.Speedup < 3 {
		t.Fatalf("H-ORAM speedup = %.1fx, want ≥3x (paper: ~20x at full scale)", c.Speedup)
	}
	if c.IORatio < 2 || c.IORatio > 6 {
		t.Fatalf("I/O reduction = %.1fx, want within [2,6] (paper: 3.5-3.8x)", c.IORatio)
	}
	if c.HORAM.TotalTime >= c.Path.TotalTime {
		t.Fatal("H-ORAM not faster than the baseline")
	}
	if c.HORAM.Shuffles == 0 {
		t.Fatal("H-ORAM never shuffled; the experiment did not cross a period")
	}
	// The paper stores 1x data + memory for H-ORAM vs ~1.875x for the
	// baseline: H-ORAM's storage footprint must be materially smaller.
	if c.HORAM.StorageBytes >= c.Path.StorageBytes {
		t.Fatalf("H-ORAM storage %d not below baseline %d", c.HORAM.StorageBytes, c.Path.StorageBytes)
	}
	out := FormatComparison(c)
	for _, want := range []string{"H-ORAM", "Path ORAM", "Number of I/O Access", "Total Time"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatComparison missing %q:\n%s", want, out)
		}
	}
}

func TestFigure51GridShape(t *testing.T) {
	f := RunFigure51()
	if len(f.Gains) != len(f.Ratios) {
		t.Fatal("grid rows mismatch")
	}
	// Anchor: c=4, N/n=8 ≈ 8x (paper's quoted point).
	var at8c4 float64
	for i, r := range f.Ratios {
		for j, c := range f.Cs {
			if r == 8 && c == 4 {
				at8c4 = f.Gains[i][j]
			}
		}
	}
	if at8c4 < 7 || at8c4 > 9 {
		t.Fatalf("gain(N/n=8, c=4) = %.2f, want ≈8", at8c4)
	}
	// Peak in the paper's 12-16x band.
	peak := 0.0
	for i := range f.Gains {
		for j := range f.Gains[i] {
			if f.Gains[i][j] > peak {
				peak = f.Gains[i][j]
			}
		}
	}
	if peak < 12 || peak > 17 {
		t.Fatalf("peak gain %.1f outside the paper's 12-16x band", peak)
	}
	if !strings.Contains(FormatFigure51(f), "c=4") {
		t.Error("FormatFigure51 missing c=4 column")
	}
}

func TestTable51Format(t *testing.T) {
	out := FormatTable51()
	for _, want := range []string{"262144", "4.5 KB", "16 KB", "1.875", "32x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5-1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable52Measurements(t *testing.T) {
	rows, err := RunTable52()
	if err != nil {
		t.Fatal(err)
	}
	var hdd *Table52Row
	for i := range rows {
		if rows[i].Profile.Name == "hdd" {
			hdd = &rows[i]
		}
	}
	if hdd == nil {
		t.Fatal("no hdd row")
	}
	// Calibration targets from the paper's Table 5-2.
	if hdd.SeqReadMBps < 92 || hdd.SeqReadMBps > 113 {
		t.Fatalf("hdd seq read %.1f MB/s, want ≈102.7", hdd.SeqReadMBps)
	}
	if hdd.SeqWriteMBps < 50 || hdd.SeqWriteMBps > 61 {
		t.Fatalf("hdd seq write %.1f MB/s, want ≈55.2", hdd.SeqWriteMBps)
	}
	if hdd.SeqOverRandom < 2 {
		t.Fatalf("hdd seq/rand = %.1f, want > 2", hdd.SeqOverRandom)
	}
	if !strings.Contains(FormatTable52(rows), "hdd") {
		t.Error("format missing hdd row")
	}
}

func TestSeqVsRandObservation(t *testing.T) {
	r, err := RunSeqVsRand()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 5 || r.Ratio > 40 {
		t.Fatalf("random/sequential = %.1fx, want 5-40x (paper observes 10-20x)", r.Ratio)
	}
	if r.Sequential <= 0 || r.Random <= r.Sequential {
		t.Fatalf("nonsensical measurement: %+v", r)
	}
}

func TestPartialShuffleTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("partial shuffle sweep is slow")
	}
	rows, err := RunPartialShuffle([]float64{1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	full, quarter := rows[0], rows[1]
	// Partial shuffle must reshuffle fewer partitions per period.
	fullRate := float64(full.PartShuffled) / float64(full.Shuffles)
	quarterRate := float64(quarter.PartShuffled) / float64(quarter.Shuffles)
	if quarterRate >= fullRate {
		t.Fatalf("partial shuffle rate %.1f not below full %.1f", quarterRate, fullRate)
	}
	// And trade storage for it (slack).
	if quarter.StorageBytes <= full.StorageBytes {
		t.Fatal("partial shuffle did not allocate slack storage")
	}
	if !strings.Contains(FormatPartialShuffle(rows), "ratio") {
		t.Error("format broken")
	}
}

func TestMultiUserScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-user sweep is slow")
	}
	rows, err := RunMultiUser([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Users != 1 || rows[1].Users != 4 {
		t.Fatal("row ordering")
	}
	// Sharing one ORAM: total requests scale with users; per-request
	// cost should not explode (same scheduler shape).
	if rows[1].PerRequest > 4*rows[0].PerRequest {
		t.Fatalf("per-request cost exploded with users: %v vs %v", rows[1].PerRequest, rows[0].PerRequest)
	}
	if !strings.Contains(FormatMultiUser(rows), "users") {
		t.Error("format broken")
	}
}

func TestStageAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("stage ablation is slow")
	}
	rows, err := RunStageAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Higher fixed c means fewer cycles for the same request count.
	var c1, c8 StageRow
	for _, r := range rows {
		switch r.Label {
		case "fixed c=1":
			c1 = r
		case "fixed c=8":
			c8 = r
		}
	}
	if c8.Cycles >= c1.Cycles {
		t.Fatalf("c=8 used %d cycles, c=1 used %d; grouping is not reducing cycles", c8.Cycles, c1.Cycles)
	}
	if !strings.Contains(FormatStageAblation(rows), "paper") {
		t.Error("format broken")
	}
}

func TestZSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("Z sweep is slow")
	}
	rows, err := RunZSweep([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalTime <= 0 {
			t.Fatalf("Z=%d produced zero time", r.Z)
		}
	}
	if !strings.Contains(FormatZSweep(rows), "Z") {
		t.Error("format broken")
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		1 << 10: "1 KB",
		1 << 20: "1 MB",
		1 << 30: "1 GB",
	}
	for n, want := range cases {
		if got := byteSize(n); got != want {
			t.Errorf("byteSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTable54ParamsScaling(t *testing.T) {
	full := Table54Params(1)
	if full.DataBytes != 1<<30 || full.Requests != 500000 {
		t.Fatalf("full params wrong: %+v", full)
	}
	half := Table54Params(0.5)
	if half.DataBytes != 1<<29 || half.Requests != 250000 {
		t.Fatalf("half params wrong: %+v", half)
	}
	bad := Table54Params(-2)
	if bad.DataBytes != 1<<30 {
		t.Fatal("invalid scale not clamped to 1")
	}
}

func TestTable53ParamsMatchPaper(t *testing.T) {
	p := Table53Params()
	if p.DataBytes != 64<<20 || p.MemoryBytes != 8<<20 || p.Requests != 25000 {
		t.Fatalf("Table 5-3 params drifted: %+v", p)
	}
	if p.HotFrac != 0.8 {
		t.Fatal("workload is not 80/20")
	}
}

func TestIOLatencyReported(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c, err := RunComparison(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.HORAM.IOLatency <= 0 || c.Path.IOLatency <= 0 {
		t.Fatalf("latencies not reported: %v / %v", c.HORAM.IOLatency, c.Path.IOLatency)
	}
	// Path ORAM pays multiple random bucket reads+writes per access;
	// H-ORAM pays one block load (overlapped). Its per-access I/O
	// latency must be far lower (paper: 77µs vs 1032µs).
	if c.HORAM.IOLatency*3 > c.Path.IOLatency {
		t.Fatalf("H-ORAM I/O latency %v not well below baseline %v", c.HORAM.IOLatency, c.Path.IOLatency)
	}
	_ = time.Millisecond
}

func TestShootoutOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shootout is slow")
	}
	rows, err := RunShootout()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byScheme := map[string]ShootoutRow{}
	for _, r := range rows {
		if r.TotalTime <= 0 {
			t.Fatalf("%s: zero total time", r.Scheme)
		}
		byScheme[r.Scheme] = r
	}
	h := byScheme["H-ORAM"]
	// §3's motivation, measured: H-ORAM beats the tree-path baseline
	// and the stall-heavy square-root ORAM on this cacheable workload.
	if h.TotalTime >= byScheme["Path ORAM (tree-top)"].TotalTime {
		t.Fatal("H-ORAM not faster than tree-top Path ORAM")
	}
	if h.TotalTime >= byScheme["Square-root ORAM"].TotalTime {
		t.Fatal("H-ORAM not faster than square-root ORAM")
	}
	if !strings.Contains(FormatShootout(rows), "H-ORAM") {
		t.Error("format broken")
	}
}

func TestNoShuffleCase(t *testing.T) {
	if testing.Short() {
		t.Skip("no-shuffle case is slow")
	}
	r, err := RunNoShuffleCase()
	if err != nil {
		t.Fatal(err)
	}
	// Removing the shuffle from the critical path must increase the
	// gain, and the result must respect the analytic cap.
	if r.GainBackground <= r.GainWith {
		t.Fatalf("background shuffle gain %.1f not above critical-path gain %.1f",
			r.GainBackground, r.GainWith)
	}
	// The cap counts block I/Os with reads and writes weighted
	// equally; on the HDD model writes are ~2x dearer and the baseline
	// is write-heavy, so the measured latency gain may exceed the
	// block-count cap by up to that write/read factor.
	if r.GainBackground > r.TheoreticalCap*2.5 {
		t.Fatalf("background gain %.1f implausibly exceeds the %.0fx analytic cap",
			r.GainBackground, r.TheoreticalCap)
	}
	if r.GainBackground < r.TheoreticalCap/2 {
		t.Fatalf("background gain %.1f far below the %.0fx analytic cap",
			r.GainBackground, r.TheoreticalCap)
	}
	if !strings.Contains(FormatNoShuffle(r), "background") {
		t.Error("format broken")
	}
}

func TestPrefetchDepthReducesPadding(t *testing.T) {
	if testing.Short() {
		t.Skip("prefetch sweep is slow")
	}
	rows, err := RunPrefetchDepth([]int{6, 48})
	if err != nil {
		t.Fatal(err)
	}
	shallow, deep := rows[0], rows[1]
	// A deeper scan window finds more real hits per group, so it pads
	// fewer dummy memory accesses and completes in fewer cycles.
	if deep.DummyMem >= shallow.DummyMem {
		t.Fatalf("depth 48 padded %d dummies, depth 6 padded %d; prefetching is not helping",
			deep.DummyMem, shallow.DummyMem)
	}
	if deep.TotalTime > shallow.TotalTime {
		t.Fatalf("deeper prefetch slower: %v vs %v", deep.TotalTime, shallow.TotalTime)
	}
	if !strings.Contains(FormatPrefetchDepth(rows), "d") {
		t.Error("format broken")
	}
}

func TestShuffleAlgsComparison(t *testing.T) {
	rows, err := RunShuffleAlgs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	counts := map[string]int64{}
	for _, r := range rows {
		if r.Count <= 0 {
			t.Fatalf("%s: zero primitive count", r.Name)
		}
		counts[r.Name] = r.Count
	}
	// The oblivious algorithms must do asymptotically more work than
	// the trusted-memory Fisher-Yates on the same input.
	if counts["bitonic"] <= counts["fisher-yates"] {
		t.Fatal("bitonic not costlier than fisher-yates")
	}
	if counts["benes"] <= counts["fisher-yates"] {
		t.Fatal("benes not costlier than fisher-yates")
	}
	if !strings.Contains(FormatShuffleAlgs(rows), "fisher-yates") {
		t.Error("format broken")
	}
}
