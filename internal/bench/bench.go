// Package bench is the experiment harness: it builds the schemes with
// the paper's parameters, drives them with the paper's workload, and
// reports the same rows the evaluation section prints. One entry point
// exists per table and figure; cmd/horam-bench and the repository's
// top-level benchmarks are thin wrappers around this package.
//
// Crypto note: experiments default to the NullSealer because the
// virtual-time results are independent of real encryption cost and the
// paper's machine did AES in hardware; pass Crypto: true to run the
// full AES-CTR+HMAC path (validated independently by the unit tests).
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/oramtree"
	"repro/internal/pathoram"
	"repro/internal/simclock"
	"repro/internal/treetop"
	"repro/internal/workload"
)

// Params configures one comparison experiment (Tables 5-3 / 5-4).
type Params struct {
	Name        string
	DataBytes   int64 // data set size (N·BlockSize)
	MemoryBytes int64 // memory-tier budget
	BlockSize   int
	Requests    int
	HotFrac     float64 // fraction of requests landing in the hot region
	HotSize     float64 // hot region as a fraction of the data set
	Z           int
	Seed        string
	Crypto      bool // true: AES-CTR+HMAC; false: NullSealer
}

// Table53Params returns the paper's small experiment: 64 MB data set,
// 8 MB memory, 1 KB blocks, 25 000 requests, 80/20 workload.
func Table53Params() Params {
	return Params{
		Name:        "table5-3",
		DataBytes:   64 << 20,
		MemoryBytes: 8 << 20,
		BlockSize:   1 << 10,
		Requests:    25000,
		HotFrac:     0.8,
		HotSize:     0.01,
		Z:           4,
		Seed:        "table5-3",
	}
}

// Table54Params returns the paper's large experiment: 1 GB data set,
// 128 MB memory, 1 KB blocks, 500 000 requests. scale < 1 shrinks the
// data set, memory and request count proportionally (the default CLI
// uses 1/8 to keep wall time modest; pass 1 for the paper's size).
func Table54Params(scale float64) Params {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return Params{
		Name:        "table5-4",
		DataBytes:   int64(float64(1<<30) * scale),
		MemoryBytes: int64(float64(128<<20) * scale),
		BlockSize:   1 << 10,
		Requests:    int(500000 * scale),
		HotFrac:     0.8,
		HotSize:     0.01,
		Z:           4,
		Seed:        "table5-4",
	}
}

func (p Params) blocks() int64 { return p.DataBytes / int64(p.BlockSize) }

func (p Params) sealer(rng *blockcipher.RNG) (blockcipher.Sealer, error) {
	if !p.Crypto {
		return blockcipher.NullSealer{}, nil
	}
	key := make([]byte, 32)
	prf, err := blockcipher.NewPRF([]byte("bench-master-key-0123456789abcdef"))
	if err != nil {
		return nil, err
	}
	copy(key, prf.Derive(p.Seed, 32))
	return blockcipher.NewAESSealer(key, rng.Fork("sealer"))
}

// SchemeResult is one column of a comparison table.
type SchemeResult struct {
	Scheme       string
	StorageBytes int64
	MemoryBytes  int64
	IOAccesses   int64         // paper's "Number of I/O Access"
	IOLatency    time.Duration // average storage latency per I/O access
	Shuffles     int64
	ShuffleTime  time.Duration
	TotalTime    time.Duration
	StorageStats device.Stats
}

// Comparison is one full table: H-ORAM vs the tree-top Path ORAM.
type Comparison struct {
	Params  Params
	HORAM   SchemeResult
	Path    SchemeResult
	Speedup float64 // Path.TotalTime / HORAM.TotalTime
	IORatio float64 // Path.IOAccesses / HORAM.IOAccesses
}

// RunComparison executes the experiment against both schemes.
func RunComparison(p Params) (Comparison, error) {
	h, err := runHORAM(p)
	if err != nil {
		return Comparison{}, fmt.Errorf("bench %s: H-ORAM: %w", p.Name, err)
	}
	po, err := runTreeTop(p)
	if err != nil {
		return Comparison{}, fmt.Errorf("bench %s: Path ORAM: %w", p.Name, err)
	}
	c := Comparison{Params: p, HORAM: h, Path: po}
	if h.TotalTime > 0 {
		c.Speedup = float64(po.TotalTime) / float64(h.TotalTime)
	}
	if h.IOAccesses > 0 {
		c.IORatio = float64(po.IOAccesses) / float64(h.IOAccesses)
	}
	return c, nil
}

// addresses materialises the workload trace so both schemes replay the
// identical request sequence.
func addresses(p Params) ([]int64, error) {
	rng := blockcipher.NewRNGFromString(p.Seed + "-workload")
	gen, err := workload.NewHotspot(p.blocks(), p.HotFrac, p.HotSize, rng)
	if err != nil {
		return nil, err
	}
	return workload.Take(gen, p.Requests), nil
}

func runHORAM(p Params) (SchemeResult, error) {
	rng := blockcipher.NewRNGFromString(p.Seed + "-horam")
	sealer, err := p.sealer(rng)
	if err != nil {
		return SchemeResult{}, err
	}
	cfg := horam.Config{
		Blocks:      p.blocks(),
		BlockSize:   p.BlockSize,
		MemoryBytes: p.MemoryBytes,
		Z:           p.Z,
		Sealer:      sealer,
		RNG:         rng.Fork("oram"),
	}
	o, err := horam.New(cfg)
	if err != nil {
		return SchemeResult{}, err
	}
	addrs, err := addresses(p)
	if err != nil {
		return SchemeResult{}, err
	}
	reqs := make([]*horam.Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = &horam.Request{Op: horam.OpRead, Addr: a}
	}
	if err := o.RunBatch(reqs); err != nil {
		return SchemeResult{}, err
	}

	st := o.Stats()
	storage := o.Stor().Stats()
	io := st.Cycles // one storage load per cycle
	var ioLat time.Duration
	if io > 0 {
		// Access-period storage time only: total busy minus the bulk
		// shuffle traffic share. The accumulator splits phases exactly.
		ioLat = o.AccessTime() / time.Duration(io)
		// Access phase overlaps memory reads; the storage-only latency
		// is the interesting number when storage dominates (it does on
		// the HDD profile), so report access-phase time per I/O.
	}
	return SchemeResult{
		Scheme:       "H-ORAM",
		StorageBytes: o.Partitions() * o.PartitionSlots() * int64(p.BlockSize),
		MemoryBytes:  p.MemoryBytes,
		IOAccesses:   io,
		IOLatency:    ioLat,
		Shuffles:     st.Shuffles,
		ShuffleTime:  o.ShuffleTime(),
		TotalTime:    o.Clock().Now(),
		StorageStats: storage,
	}, nil
}

func runTreeTop(p Params) (SchemeResult, error) {
	rng := blockcipher.NewRNGFromString(p.Seed + "-path")
	sealer, err := p.sealer(rng)
	if err != nil {
		return SchemeResult{}, err
	}
	// The paper's baseline stores N real blocks in a 2N-slot tree; use
	// the largest tree not exceeding 2N so a near-miss on a power-of-
	// two boundary does not double the footprint (the couple of slots
	// of slack land in the stash).
	geom, err := oramtree.FitCapacity(2*p.blocks(), p.Z)
	if err != nil {
		return SchemeResult{}, err
	}
	cfg := pathoram.Config{
		Blocks:    p.blocks(),
		BlockSize: p.BlockSize,
		Z:         p.Z,
		Capacity:  geom.Slots(),
		Sealer:    sealer,
		RNG:       rng.Fork("oram"),
	}
	clk := simclock.New()
	slotSize := cfg.SlotSize()
	// The budget counts plaintext blocks (paper accounting), so the
	// memory device must hold that many sealed slots.
	memSlots := p.MemoryBytes / int64(p.BlockSize)
	mem, err := device.New(device.DRAM(), slotSize, maxI64(memSlots, 1), clk)
	if err != nil {
		return SchemeResult{}, err
	}
	// Storage holds the rest of the 2N-slot tree.
	stor, err := device.New(device.PaperHDD(), slotSize, 4*p.blocks(), clk)
	if err != nil {
		return SchemeResult{}, err
	}
	o, err := treetop.New(cfg, mem, stor, p.MemoryBytes)
	if err != nil {
		return SchemeResult{}, err
	}
	addrs, err := addresses(p)
	if err != nil {
		return SchemeResult{}, err
	}
	for _, a := range addrs {
		if _, err := o.Read(a); err != nil {
			return SchemeResult{}, err
		}
	}
	storage := stor.Stats()
	n := int64(len(addrs))
	var ioLat time.Duration
	if n > 0 {
		ioLat = storage.Busy / time.Duration(n)
	}
	return SchemeResult{
		Scheme: "Path ORAM",
		// The paper prints the tree footprint beyond memory: ~2N·B.
		StorageBytes: o.Geometry().Slots()*int64(p.BlockSize) - p.MemoryBytes,
		MemoryBytes:  p.MemoryBytes,
		IOAccesses:   n, // one path-I/O event per request
		IOLatency:    ioLat,
		Shuffles:     0,
		ShuffleTime:  0,
		TotalTime:    clk.Now(),
		StorageStats: storage,
	}, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FormatComparison renders the comparison in the paper's table layout.
func FormatComparison(c Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s data set, %d requests (80/20 hotspot) ==\n",
		c.Params.Name, byteSize(c.Params.DataBytes), c.Params.Requests)
	fmt.Fprintf(&b, "%-28s %18s %18s\n", "", "H-ORAM", "Path ORAM")
	fmt.Fprintf(&b, "%-28s %18s %18s\n", "Storage/Memory Size",
		byteSize(c.HORAM.StorageBytes)+" / "+byteSize(c.HORAM.MemoryBytes),
		byteSize(c.Path.StorageBytes)+" / "+byteSize(c.Path.MemoryBytes))
	fmt.Fprintf(&b, "%-28s %18d %18d\n", "Number of I/O Access", c.HORAM.IOAccesses, c.Path.IOAccesses)
	fmt.Fprintf(&b, "%-28s %18s %18s\n", "I/O Latency (per access)", c.HORAM.IOLatency, c.Path.IOLatency)
	fmt.Fprintf(&b, "%-28s %12s x %-3d %18s\n", "Shuffle Time",
		perShuffle(c.HORAM), c.HORAM.Shuffles, "N/A")
	fmt.Fprintf(&b, "%-28s %18s %18s\n", "Total Time",
		c.HORAM.TotalTime.Round(time.Millisecond), c.Path.TotalTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-28s %18.1fx %17.1fx\n", "Speedup / IO reduction", c.Speedup, c.IORatio)
	return b.String()
}

func perShuffle(r SchemeResult) string {
	if r.Shuffles == 0 {
		return "0"
	}
	return (r.ShuffleTime / time.Duration(r.Shuffles)).Round(time.Millisecond).String()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.4g GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.4g MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.4g KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
