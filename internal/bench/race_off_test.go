//go:build !race

package bench

// raceEnabled mirrors the -race build flag for tests whose throughput
// assertions depend on goroutine scheduling density (the race
// detector slows goroutines unevenly, which starves opportunistic
// batching).
const raceEnabled = false
