// Race-detector soak: N concurrent clients fire MULTI batches at a
// sharded daemon over real loopback sockets while a poller hammers
// STATS. Runs in the CI race job (go test -race ./internal/server),
// where it sweeps the whole serving path — connection readers, the
// batching window, the engine's scatter/gather, the per-shard
// scheduler goroutines and the stats plumbing — for data races, and
// asserts read-your-writes semantics end to end.
package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/client"
	"repro/internal/engine"
)

func TestShardedSoakOverSockets(t *testing.T) {
	const (
		shards    = 4
		clients   = 6
		rounds    = 24
		batchOps  = 8
		region    = 64 // private blocks per client
		blockSize = 64
	)
	e, err := engine.New(engine.Options{
		Blocks:      clients * region,
		BlockSize:   blockSize,
		MemoryBytes: 32 << 10,
		Insecure:    true,
		Seed:        "soak",
		Shards:      shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	addr, srv := startServer(t, Config{Engine: e, BatchWindow: time.Millisecond})

	var wg sync.WaitGroup
	errs := make(chan error, clients+1)

	// A stats poller races the traffic: STATS snapshots per-shard
	// counters while every shard is mid-drain.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if _, err := c.Stats(); err != nil {
				errs <- fmt.Errorf("stats poller: %w", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs <- soakClient(addr, id, rounds, batchOps, region, blockSize)
		}(id)
	}
	// Wait for the traffic clients, then release the poller.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if want := int64(clients * rounds * batchOps); st.Requests != want {
		t.Fatalf("server drained %d requests, want %d", st.Requests, want)
	}
	var shardReqs int64
	for _, sh := range st.PerShard {
		shardReqs += sh.Requests
	}
	if shardReqs != st.Requests {
		t.Fatalf("shards drained %d requests, server drained %d", shardReqs, st.Requests)
	}
}

// soakClient drives one connection with MULTI batches of mixed
// read/write traffic over its private region, asserting
// read-your-writes: every read must see the last value this client
// wrote (overlay semantics for writes earlier in the same batch).
func soakClient(addr string, id, rounds, batchOps, region, blockSize int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	base := int64(id * region)
	rng := blockcipher.NewRNGFromString(fmt.Sprint("soak-client-", id))
	last := make(map[int64]byte)
	for r := 0; r < rounds; r++ {
		ops := make([]client.Op, batchOps)
		vals := make([]byte, batchOps)
		for i := range ops {
			a := base + rng.Int63n(int64(region))
			if rng.Intn(2) == 0 {
				v := byte(rng.Intn(255) + 1)
				vals[i] = v
				ops[i] = client.Op{Write: true, Addr: a, Data: bytes.Repeat([]byte{v}, blockSize)}
			} else {
				ops[i] = client.Op{Addr: a}
			}
		}
		res, err := c.Batch(ops)
		if err != nil {
			return fmt.Errorf("client %d round %d: %w", id, r, err)
		}
		overlay := make(map[int64]byte, batchOps)
		for i, op := range ops {
			if res[i].Err != nil {
				return fmt.Errorf("client %d round %d op %d: %w", id, r, i, res[i].Err)
			}
			if op.Write {
				overlay[op.Addr] = vals[i]
				continue
			}
			want := last[op.Addr]
			if v, ok := overlay[op.Addr]; ok {
				want = v
			}
			if !bytes.Equal(res[i].Data, bytes.Repeat([]byte{want}, blockSize)) {
				return fmt.Errorf("client %d round %d: read-your-writes violated at %d", id, r, op.Addr)
			}
		}
		for a, v := range overlay {
			last[a] = v
		}
	}
	return nil
}
