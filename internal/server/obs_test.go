// Tests for the observability surfaces: the leak-audit differential
// (the /metrics contract), the zero-alloc STATS render, the TRACE and
// METRICS verbs, and the typed ParseStats round trip.
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/obs"
)

// runAuditWorkload serves a fresh engine through a fresh registry,
// drives ops single-request windows (MaxBatch 1 drains each request
// the moment it is queued, so the window structure is deterministic),
// waits for quiescence and returns the audited snapshot.
//
// hot=true hammers one address; hot=false scans uniformly. Equal op
// count, equal batch structure — an adversary reading the audited
// snapshot must not be able to tell the two apart.
func runAuditWorkload(t *testing.T, shards int, hot, inject bool) string {
	t.Helper()
	eng, err := engine.New(engine.Options{
		Blocks:      512,
		BlockSize:   64,
		MemoryBytes: 16 << 10,
		Insecure:    true,
		Seed:        "obs-diff",
		Shards:      shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	reg := obs.NewRegistry()
	eng.Observe(reg, nil)
	if inject {
		// The deliberate leak the audit must catch: the real-vs-pad
		// cycle split per shard IS the request routing distribution.
		for i := 0; i < eng.Shards(); i++ {
			i := i
			reg.GaugeFunc("horam_shard_real_cycles",
				"DELIBERATE LEAK: per-shard non-pad cycle count",
				obs.Public("WRONG ON PURPOSE: the real/pad split is secret-dependent; this registration exists so the differential test proves it would be caught"),
				func() int64 {
					st := eng.ShardStats()[i]
					return st.Cycles - st.PadCycles
				},
				obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		}
	}
	addr, srv := startServer(t, Config{Engine: eng, Metrics: reg, MaxBatch: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 48
	payload := bytes.Repeat([]byte{0x5a}, 64)
	for i := 0; i < ops; i++ {
		a := int64(7)
		if !hot {
			a = int64((i * 10) % 512)
		}
		if err := c.Write(a, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The connection-active gauge drops asynchronously after QUIT;
	// audit only a quiescent server.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Active != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
	// Level both runs to one fixed cycle target before auditing. Raw
	// cycle counts differ between the workloads (a memory-tier hit
	// advances fewer device cycles than a miss) — but that difference
	// IS the device bus the adversary already watches; the audit
	// contract is about quiescent padded state, where everything
	// public must equalize. 256 clears both workloads' organic counts.
	if _, err := eng.PadToCycles(256); err != nil {
		t.Fatal(err)
	}
	return reg.AuditText()
}

// TestMetricsEqualityDifferential is the leak audit: the full audited
// snapshot (everything Public — wall-clock Timing metrics are
// excluded by construction) must be byte-identical between a
// hot-single-address workload and a uniform scan of equal op count.
// Cycle leveling is what makes the per-shard counters pass this.
func TestMetricsEqualityDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		hotText := runAuditWorkload(t, shards, true, false)
		uniText := runAuditWorkload(t, shards, false, false)
		if hotText != uniText {
			t.Errorf("shards=%d: audited snapshots distinguish the workloads\nhot:\n%s\nuniform:\n%s",
				shards, hotText, uniText)
		}
		if !strings.Contains(hotText, "horam_shard_cycles") || !strings.Contains(hotText, "horam_server_windows_total") {
			t.Errorf("shards=%d: audit snapshot is missing expected public metrics:\n%s", shards, hotText)
		}
	}
}

// TestMetricsEqualityCatchesInjectedLeak proves the differential has
// teeth: registering the per-shard real-vs-pad cycle split as Public
// makes the snapshots diverge, because that split IS the routing
// distribution the padding exists to hide. (One shard has no routing
// to leak, so the injection only bites at 2+.)
func TestMetricsEqualityCatchesInjectedLeak(t *testing.T) {
	for _, shards := range []int{2, 4} {
		hotText := runAuditWorkload(t, shards, true, true)
		uniText := runAuditWorkload(t, shards, false, true)
		if hotText == uniText {
			t.Errorf("shards=%d: injected secret-dependent gauge did not change the audited snapshot:\n%s",
				shards, hotText)
		}
	}
}

// TestStatsRenderZeroAlloc pins the STATS serving path at zero
// allocations per render once the scratch buffers are warm — the
// regression guard for operator polling loops.
func TestStatsRenderZeroAlloc(t *testing.T) {
	addr, srv := startServer(t, Config{MaxBatch: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte{1}, 64)
	for i := 0; i < 8; i++ {
		if err := c.Write(int64(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	srv.writeStats(io.Discard) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { srv.writeStats(io.Discard) }); n != 0 {
		t.Fatalf("STATS render allocates %.1f times per run, want 0", n)
	}
}

// TestTraceVerb arms the tracer over the wire, runs traffic, and
// checks the dump is valid chrome://tracing JSON carrying the
// expected span names from both the server and engine layers.
func TestTraceVerb(t *testing.T) {
	eng, err := engine.New(engine.Options{
		Blocks:      512,
		BlockSize:   64,
		MemoryBytes: 16 << 10,
		Insecure:    true,
		Seed:        "trace-test",
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 12)
	eng.Observe(reg, tr)
	addr, _ := startServer(t, Config{Engine: eng, Metrics: reg, Tracer: tr, MaxBatch: 1})

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.TraceStart(); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{2}, 64)
	for i := 0; i < 8; i++ {
		if err := c.Write(int64(i*13%512), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.TraceStop(); err != nil {
		t.Fatal(err)
	}
	dump, err := c.TraceDump()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(dump, &doc); err != nil {
		t.Fatalf("TRACE DUMP is not valid JSON: %v\n%s", err, dump)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("TRACE DUMP carried no events")
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete-event X", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"window", "batch", "drain"} {
		if !names[want] {
			t.Errorf("trace has no %q spans (got %v)", want, names)
		}
	}

	// A server with no tracer wired refuses the verb.
	addr2, _ := startServer(t, Config{})
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.TraceStart(); err == nil {
		t.Fatal("TRACE ON succeeded on a server with no tracer")
	}
}

// TestMetricsVerb checks the shard-control METRICS verb: gated behind
// -shard-serve like PAD, and decoding to the node's full exposition.
func TestMetricsVerb(t *testing.T) {
	reg := obs.NewRegistry()
	addr, _ := startServer(t, Config{Metrics: reg, ShardControl: true, MaxBatch: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte{3}, 64)
	if err := c.Write(5, payload); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# HELP", "# TYPE", "# CLASS", "horam_server_windows_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("METRICS exposition missing %q:\n%s", want, text)
		}
	}

	// Without shard-control the verb is refused, like PAD.
	addr2, _ := startServer(t, Config{})
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Metrics(); err == nil {
		t.Fatal("METRICS succeeded without -shard-serve")
	}
}

// TestParseStatsRoundTrip drives real traffic, fetches the STATS line
// through the typed helper and cross-checks it against the server's
// own snapshot — block mode first, then KV mode for the kv_* group.
func TestParseStatsRoundTrip(t *testing.T) {
	addr, srv := startServer(t, Config{MaxBatch: 1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte{4}, 64)
	for i := 0; i < 16; i++ {
		if err := c.Write(int64(i*31%512), payload); err != nil {
			t.Fatal(err)
		}
	}
	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.ParseStats(kv)
	if err != nil {
		t.Fatalf("ParseStats: %v\nline map: %v", err, kv)
	}
	if st.KV != nil {
		t.Fatal("block-mode stats carried a kv group")
	}
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("shards=%d per-shard=%d, want 2/2", st.Shards, len(st.PerShard))
	}
	if st.Requests != 16 || st.Batches != 16 {
		t.Fatalf("requests=%d batches=%d, want 16/16 (MaxBatch 1)", st.Requests, st.Batches)
	}
	own := srv.Stats()
	if st.Conns != own.Accepted || st.Active != own.Active || st.Rejected != own.Rejected {
		t.Fatalf("conn counters %d/%d/%d disagree with server snapshot %d/%d/%d",
			st.Conns, st.Active, st.Rejected, own.Accepted, own.Active, own.Rejected)
	}
	var perShardReqs int64
	for i, sh := range st.PerShard {
		if sh.Shard != i {
			t.Fatalf("per-shard group %d parsed as shard %d", i, sh.Shard)
		}
		if sh.Cycles <= 0 || sh.Hist == "" {
			t.Fatalf("shard %d parsed as %+v, want live counters", i, sh)
		}
		perShardReqs += sh.Requests
	}
	if perShardReqs != st.Requests {
		t.Fatalf("per-shard requests sum %d != window requests %d", perShardReqs, st.Requests)
	}

	kvAddr, _, _ := startKVServer(t)
	kc, err := client.Dial(kvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()
	if err := kc.KSet([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kc.KGet([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kc.KGet([]byte("missing")); err != nil {
		t.Fatal(err)
	}
	kvLine, err := kc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	kst, err := client.ParseStats(kvLine)
	if err != nil {
		t.Fatalf("ParseStats (kv): %v\nline map: %v", err, kvLine)
	}
	if kst.KV == nil {
		t.Fatal("kv-mode stats parsed without a kv group")
	}
	if kst.KV.Gets != 2 || kst.KV.Sets != 1 || kst.KV.Count != 1 || kst.KV.Misses != 1 {
		t.Fatalf("kv group %+v, want gets=2 sets=1 count=1 misses=1", kst.KV)
	}

	// Malformed input: a missing required field must name itself.
	delete(kv, "shuffles")
	if _, err := client.ParseStats(kv); err == nil || !strings.Contains(err.Error(), "shuffles") {
		t.Fatalf("ParseStats on a map missing shuffles: %v", err)
	}
}
