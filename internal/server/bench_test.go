package server

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
)

// BenchmarkConcurrentClients measures end-to-end serving throughput
// over real TCP with varying client counts. The per-op metric shrinks
// as clients grow because the batching window amortises one scheduler
// drain across more concurrent requests; mean-batch is reported so the
// grouping is visible in bench output.
func BenchmarkConcurrentClients(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchClients(b, clients)
		})
	}
}

func benchClients(b *testing.B, clients int) {
	const (
		blockSize = 256
		region    = 128
	)
	store, err := engine.New(engine.Options{
		Blocks:      int64(clients) * region,
		BlockSize:   blockSize,
		MemoryBytes: 1 << 20,
		Insecure:    true,
		Seed:        fmt.Sprint("bench-", clients),
		Shards:      2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Engine: store})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conns := make([]*client.Client, clients)
	for i := range conns {
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	perClient := (b.N + clients - 1) / clients
	payload := bytes.Repeat([]byte{1}, blockSize)
	b.ResetTimer()
	var wg sync.WaitGroup
	for id, c := range conns {
		wg.Add(1)
		go func(id int, c *client.Client) {
			defer wg.Done()
			base := int64(id * region)
			for i := 0; i < perClient; i++ {
				a := base + int64(i%region)
				if i%2 == 0 {
					if err := c.Write(a, payload); err != nil {
						b.Error(err)
						return
					}
				} else if _, err := c.Read(a); err != nil {
					b.Error(err)
					return
				}
			}
		}(id, c)
	}
	wg.Wait()
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(st.MeanBatch, "mean-batch")
}
