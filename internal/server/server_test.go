package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/client"
	"repro/internal/engine"
)

// startServer builds a small insecure store (2 shards unless the
// caller provided an engine), serves it on a loopback listener and
// returns the connect address plus the server handle.
func startServer(t *testing.T, cfg Config) (string, *Server) {
	t.Helper()
	if cfg.Engine == nil {
		e, err := engine.New(engine.Options{
			Blocks:      512,
			BlockSize:   64,
			MemoryBytes: 16 << 10,
			Insecure:    true,
			Seed:        "server-test",
			Shards:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		cfg.Engine = e
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return ln.Addr().String(), srv
}

// TestConcurrentClientsBatching is the acceptance test: 8 concurrent
// clients hammer mixed READ/WRITE traffic over real TCP sockets, each
// client sees read-your-writes on its private address range, and the
// concurrency actually forms scheduler batches larger than one.
func TestConcurrentClientsBatching(t *testing.T) {
	addr, srv := startServer(t, Config{BatchWindow: 3 * time.Millisecond})

	const (
		clients   = 8
		perClient = 40
		region    = 32 // private blocks per client
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs <- runClient(addr, id, perClient, region)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("served %d logical requests, want %d", st.Requests, clients*perClient)
	}
	if st.MeanBatch <= 1 {
		t.Fatalf("mean batch size %.2f, want > 1 under %d concurrent clients (hist %s)",
			st.MeanBatch, clients, st.HistogramString())
	}
	if st.Batches >= st.Requests {
		t.Fatalf("%d batches for %d requests: no grouping happened", st.Batches, st.Requests)
	}
	t.Logf("batches=%d mean=%.2f hist=%s", st.Batches, st.MeanBatch, st.HistogramString())
}

// runClient drives one connection with a deterministic mixed workload
// over its private region and checks read-your-writes throughout.
func runClient(addr string, id, ops, region int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	base := int64(id * region)
	rng := blockcipher.NewRNGFromString(fmt.Sprint("client", id))
	last := make(map[int64]byte)
	for i := 0; i < ops; i++ {
		a := base + rng.Int63n(int64(region))
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(255) + 1)
			if err := c.Write(a, bytes.Repeat([]byte{v}, 64)); err != nil {
				return fmt.Errorf("client %d: write %d: %w", id, a, err)
			}
			last[a] = v
		} else {
			got, err := c.Read(a)
			if err != nil {
				return fmt.Errorf("client %d: read %d: %w", id, a, err)
			}
			want := bytes.Repeat([]byte{last[a]}, 64)
			if !bytes.Equal(got, want) {
				return fmt.Errorf("client %d: read-your-writes violated at %d", id, a)
			}
		}
	}
	return nil
}

// TestMultiVerb checks that MULTI runs a whole slice as one batch and
// returns per-op responses in order.
func TestMultiVerb(t *testing.T) {
	addr, srv := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ops := []client.Op{
		{Write: true, Addr: 3, Data: bytes.Repeat([]byte{1}, 64)},
		{Write: true, Addr: 4, Data: bytes.Repeat([]byte{2}, 64)},
		{Addr: 3},
		{Addr: 4},
		{Addr: 5},
	}
	res, err := c.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	if !bytes.Equal(res[2].Data, ops[0].Data) || !bytes.Equal(res[3].Data, ops[1].Data) {
		t.Fatal("MULTI reads did not observe MULTI writes")
	}
	if !bytes.Equal(res[4].Data, make([]byte, 64)) {
		t.Fatal("unwritten block not zero")
	}
	st := srv.Stats()
	if st.Batches != 1 || st.Requests != int64(len(ops)) {
		t.Fatalf("MULTI ran as %d batches / %d requests, want 1 / %d", st.Batches, st.Requests, len(ops))
	}
	if st.MeanBatch != float64(len(ops)) {
		t.Fatalf("mean batch %.2f, want %d", st.MeanBatch, len(ops))
	}
}

// TestProtocolErrors exercises the refusal paths over a raw socket.
func TestProtocolErrors(t *testing.T) {
	addr, _ := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		fmt.Fprintln(conn, line)
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("after %q: %v", line, err)
		}
		return strings.TrimSpace(resp)
	}
	for _, tc := range []struct{ line, wantPrefix string }{
		{"FROB", "ERR unknown command"},
		{"READ", "ERR usage"},
		{"READ zzz", "ERR bad address"},
		{"READ 99999", "ERR address 99999 out of range"},
		{"WRITE 1 xyz", "ERR bad hex payload"},
		{"WRITE 1 abcd", "ERR payload 2 bytes"},
		{"MULTI", "ERR usage"},
	} {
		if got := send(tc.line); !strings.HasPrefix(got, tc.wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", tc.line, got, tc.wantPrefix)
		}
	}
	// A bad sub-line aborts the whole MULTI with one ERR line, drains
	// the declared frame (the trailing WRITE must NOT execute as a
	// top-level command) and keeps the connection usable and in sync.
	fmt.Fprintln(conn, "MULTI 3")
	fmt.Fprintln(conn, "READ 1")
	fmt.Fprintln(conn, "STATS")
	fmt.Fprintln(conn, "WRITE 2 "+strings.Repeat("ff", 64))
	if resp := send("READ 2"); !strings.HasPrefix(resp, "ERR MULTI line 2") {
		t.Fatalf("bad MULTI sub-line -> %q", resp)
	} else if resp := send("READ 2"); resp != "OK "+strings.Repeat("00", 64) {
		t.Fatalf("connection desynced or drained WRITE executed: READ 2 -> %q", resp)
	}
}

// TestMultiBadCountClosesConnection: an unusable MULTI count makes the
// frame length untrustworthy, so the server answers ERR and closes
// rather than risk executing payload lines as commands.
func TestMultiBadCountClosesConnection(t *testing.T) {
	addr, _ := startServer(t, Config{})
	for _, line := range []string{"MULTI 0", "MULTI 99999", "MULTI zz"} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		fmt.Fprintln(conn, line)
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%q: no ERR before close: %v", line, err)
		}
		if !strings.HasPrefix(resp, "ERR MULTI count") {
			t.Errorf("%q -> %q, want ERR MULTI count", line, resp)
		}
		if _, err := r.ReadString('\n'); err == nil {
			t.Errorf("%q: connection stayed open after unusable count", line)
		}
		conn.Close()
	}
}

// TestMultiChunkedByMaxBatch: one MULTI larger than MaxBatch is split
// across scheduler drains so -max-batch bounds per-drain latency.
func TestMultiChunkedByMaxBatch(t *testing.T) {
	addr, srv := startServer(t, Config{MaxBatch: 4})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ops := make([]client.Op, 10)
	for i := range ops {
		ops[i] = client.Op{Addr: int64(i)}
	}
	res, err := c.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	st := srv.Stats()
	if st.Batches != 3 || st.Requests != 10 {
		t.Fatalf("10 ops with MaxBatch=4 drained as %d batches / %d requests, want 3 / 10",
			st.Batches, st.Requests)
	}
}

// TestClientBatchCap: the client refuses batches over the protocol
// cap instead of desyncing the server, and the two packages agree on
// the cap.
func TestClientBatchCap(t *testing.T) {
	if client.MaxBatchOps != MaxMultiRequests {
		t.Fatalf("client.MaxBatchOps = %d, server.MaxMultiRequests = %d", client.MaxBatchOps, MaxMultiRequests)
	}
	addr, _ := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Batch(make([]client.Op, client.MaxBatchOps+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestOversizedLineSurfacesError checks the scanner failure path: a
// line over the 1 MiB limit must produce an ERR response, not a
// silent hangup.
func TestOversizedLineSurfacesError(t *testing.T) {
	addr, _ := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := make([]byte, MaxLineBytes+16)
	for i := range big {
		big[i] = 'a'
	}
	big = append(big, '\n')
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no ERR before close: %v", err)
	}
	if !strings.HasPrefix(resp, "ERR ") || !strings.Contains(resp, "too long") {
		t.Fatalf("oversized line -> %q, want ERR ... too long", resp)
	}
}

// TestConnLimit checks that connections over MaxConns are refused
// with a protocol-level error.
func TestConnLimit(t *testing.T) {
	addr, srv := startServer(t, Config{MaxConns: 1})
	keep, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer keep.Close()
	// Prove the first connection is registered before dialing the
	// second one.
	fmt.Fprintln(keep, "STATS")
	if _, err := bufio.NewReader(keep).ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	extra, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	resp, err := bufio.NewReader(extra).ReadString('\n')
	if err != nil {
		t.Fatalf("refused connection got no ERR: %v", err)
	}
	if !strings.HasPrefix(resp, "ERR server busy") {
		t.Fatalf("over-limit connect -> %q, want ERR server busy", resp)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestGracefulShutdown: Close while clients are mid-traffic lets
// in-flight requests complete, Serve returns nil, and a later Serve
// refuses.
func TestGracefulShutdown(t *testing.T) {
	store, err := engine.New(engine.Options{
		Blocks: 256, BlockSize: 64, MemoryBytes: 16 << 10, Insecure: true, Seed: "shutdown", Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Engine: store})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve after Close returned %v, want nil", err)
	}
	if err := srv.Serve(ln); err != ErrClosed {
		t.Fatalf("Serve on closed server returned %v, want ErrClosed", err)
	}
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedSingleConnection checks that one connection pipelining
// requests from many goroutines stays correct and in order.
func TestPipelinedSingleConnection(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := int64(w)
			payload := bytes.Repeat([]byte{byte(w + 1)}, 64)
			for i := 0; i < 15; i++ {
				if err := c.Write(a, payload); err != nil {
					t.Error(err)
					return
				}
				got, err := c.Read(a)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d: wrong payload", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestStatsLine checks the STATS response carries both engine and
// batching counters.
func TestStatsLine(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "hits", "misses", "shuffles", "quanta", "max_cycle", "batches", "mean_batch", "conns", "hist",
		"shards", "shard_hist", "s0_depth", "s0_cycles", "s0_pad", "s0_quanta", "s0_maxcycle", "s0_batches", "s0_hist", "s1_depth", "s1_hist"} {
		if _, ok := kv[key]; !ok {
			t.Errorf("STATS missing %q (got %v)", key, kv)
		}
	}
	if n, err := client.StatInt(kv, "requests"); err != nil || n != 1 {
		t.Errorf("requests = %v (%v), want 1", kv["requests"], err)
	}
	if n, err := client.StatInt(kv, "shards"); err != nil || n != 2 {
		t.Errorf("shards = %v (%v), want 2", kv["shards"], err)
	}
}

// TestPerShardStatsAggregation is the regression test for the STATS
// fix: the server used to report only a single global batch histogram;
// it now reports one histogram per shard plus their aggregation, and
// the aggregation must reconcile exactly with both the per-shard
// counters and the server's window-level counters.
func TestPerShardStatsAggregation(t *testing.T) {
	e, err := engine.New(engine.Options{
		Blocks:      512,
		BlockSize:   64,
		MemoryBytes: 16 << 10,
		Insecure:    true,
		Seed:        "per-shard-stats",
		Shards:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	addr, srv := startServer(t, Config{Engine: e})

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Two MULTI windows spanning the whole address space, so every
	// shard drains at least once.
	for round := 0; round < 2; round++ {
		ops := make([]client.Op, 32)
		for i := range ops {
			ops[i] = client.Op{Addr: int64(round*256 + i*8)}
		}
		res, err := c.Batch(ops)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("round %d op %d: %v", round, i, r.Err)
			}
		}
	}

	st := srv.Stats()
	if len(st.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries, want 4", len(st.PerShard))
	}
	// Every logical request drains in exactly one shard: the per-shard
	// request counts must sum to the server's window-level total.
	var shardReqs, shardBatches int64
	var wantAgg [engine.NumBuckets]int64
	for _, sh := range st.PerShard {
		if sh.Requests == 0 || sh.Batches == 0 {
			t.Fatalf("shard %d drained nothing from an address-space-spanning workload", sh.Shard)
		}
		var bucketSum int64
		for b, n := range sh.Hist {
			bucketSum += n
			wantAgg[b] += n // summed by hand: must not share code with Stats()
		}
		if bucketSum != sh.Batches {
			t.Fatalf("shard %d histogram buckets sum to %d, Batches = %d", sh.Shard, bucketSum, sh.Batches)
		}
		shardReqs += sh.Requests
		shardBatches += sh.Batches
	}
	if shardReqs != st.Requests {
		t.Fatalf("per-shard requests sum to %d, server drained %d", shardReqs, st.Requests)
	}
	if st.ShardHistogram != wantAgg {
		t.Fatalf("ShardHistogram %v is not the element-wise sum of the per-shard histograms %v", st.ShardHistogram, wantAgg)
	}
	var aggBuckets int64
	for _, n := range st.ShardHistogram {
		aggBuckets += n
	}
	if aggBuckets != shardBatches {
		t.Fatalf("aggregated histogram counts %d drains, shards report %d", aggBuckets, shardBatches)
	}
	// The engine's own summary must agree with the server's view.
	if sum := e.Stats(); sum.Requests != st.Requests || sum.Batches != shardBatches {
		t.Fatalf("engine summary (requests=%d batches=%d) disagrees with server (requests=%d batches=%d)",
			sum.Requests, sum.Batches, st.Requests, shardBatches)
	}
}
