package server

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
)

// The shard-control verbs must be refused unless the server was
// explicitly started as a shard node: PAD burns I/O budget and
// CHECKPT writes snapshots, neither of which a public front end may
// expose to arbitrary clients.
func TestShardControlDisabledByDefault(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Cycles(); err == nil || !strings.Contains(err.Error(), "shard-control disabled") {
		t.Fatalf("CYCLES without ShardControl: got %v, want shard-control refusal", err)
	}
	if _, err := c.Pad(10); err == nil || !strings.Contains(err.Error(), "shard-control disabled") {
		t.Fatalf("PAD without ShardControl: got %v, want shard-control refusal", err)
	}
	if err := c.Checkpt(1); err == nil || !strings.Contains(err.Error(), "shard-control disabled") {
		t.Fatalf("CHECKPT without ShardControl: got %v, want shard-control refusal", err)
	}
	if _, err := c.Peek(); err == nil || !strings.Contains(err.Error(), "shard-control disabled") {
		t.Fatalf("PEEK without ShardControl: got %v, want shard-control refusal", err)
	}
}

// CYCLES/PAD round-trip: run some traffic, read the count over the
// wire, pad past it, and observe the padded count — the primitive a
// gateway's cross-node leveling pass is built from.
func TestShardControlCyclesAndPad(t *testing.T) {
	opts := engine.Options{
		Blocks:      256,
		BlockSize:   32,
		MemoryBytes: 8 << 10,
		Insecure:    true,
		Seed:        "shardctl-test",
	}
	shardOpts, err := engine.ShardConfig(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	addr, _ := startServer(t, Config{Engine: e, ShardControl: true})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Write(3, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	n, err := c.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("CYCLES after one write: got %d, want >= 1", n)
	}
	padded, err := c.Pad(n + 7)
	if err != nil {
		t.Fatal(err)
	}
	if padded != 7 {
		t.Fatalf("PAD %d from %d: padded %d cycles, want 7", n+7, n, padded)
	}
	after, err := c.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	if after != n+7 {
		t.Fatalf("CYCLES after pad: got %d, want %d", after, n+7)
	}
	// Padding to a target already reached is a no-op, not an error.
	if padded, err := c.Pad(after - 1); err != nil || padded != 0 {
		t.Fatalf("PAD below current count: got (%d, %v), want (0, nil)", padded, err)
	}
}

// PEEK must echo the node's cluster identity and geometry — the
// fields a gateway validates placement against — and CHECKPT on a
// sim-only node must surface the core's durability refusal instead of
// pretending to checkpoint.
func TestShardControlPeekAndCheckpt(t *testing.T) {
	opts := engine.Options{
		Blocks:      256,
		BlockSize:   32,
		MemoryBytes: 8 << 10,
		Insecure:    true,
		Seed:        "shardctl-test",
		Shards:      2,
	}
	shardOpts, err := engine.ShardConfig(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	addr, _ := startServer(t, Config{Engine: e, ShardControl: true})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	kv, err := c.Peek()
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"epoch":      "0",
		"checkpoint": "0",
		"cshards":    "2",
		"shard":      "1",
		"shards":     "1",
		"blocksize":  "32",
		"insecure":   "true",
	} {
		if kv[key] != want {
			t.Errorf("PEEK %s = %q, want %q (full echo: %v)", key, kv[key], want, kv)
		}
	}
	// The node serves its slice of the 2-way partition: 256/2 blocks.
	if kv["blocks"] != "128" {
		t.Errorf("PEEK blocks = %q, want 128", kv["blocks"])
	}

	if err := c.Checkpt(1); err == nil {
		t.Fatal("CHECKPT on a sim-only node succeeded; want a durability refusal")
	}
	if err := c.Checkpt(0); err == nil || !strings.Contains(err.Error(), "start at 1") {
		t.Fatalf("CHECKPT 0: got %v, want checkpoint-numbering refusal", err)
	}
}
