// Fuzz coverage for the wire-protocol parser: arbitrary client bytes —
// malformed verbs, bad hex, out-of-range addresses, torn MULTI frames,
// KV verbs against both modes — must never panic the server, hang a
// connection, or elicit a response line outside the protocol (every
// line starts OK, ERR or MISS). The same input is replayed against a
// block-mode and a KV-mode server so mode-dependent refusals (raw
// WRITE in KV mode, K* verbs without -kv) are both exercised.
package server

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/okv"
)

// fuzzServer starts a small insecure server for the whole fuzz run and
// returns its address.
func fuzzServer(f *testing.F, kv bool) string {
	f.Helper()
	seed := "fuzz-wire-block"
	if kv {
		seed = "fuzz-wire-kv"
	}
	e, err := engine.New(engine.Options{
		Blocks:      128,
		BlockSize:   32,
		MemoryBytes: 4 << 10,
		Insecure:    true,
		Seed:        seed,
		Shards:      2,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { e.Close() })
	cfg := Config{Engine: e, BatchWindow: time.Millisecond}
	if kv {
		store, err := okv.New(okv.Options{
			Backend:       e,
			MaxValueBytes: 64,
			Insecure:      true,
			Seed:          seed,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Cleanup(store.Close)
		cfg.KV = store
	}
	srv, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	f.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			f.Errorf("Serve returned %v", err)
		}
	})
	return ln.Addr().String()
}

func FuzzWireProtocol(f *testing.F) {
	addrs := []string{fuzzServer(f, false), fuzzServer(f, true)}

	payload := hex.EncodeToString(bytes.Repeat([]byte{0xab}, 32))
	f.Add([]byte("READ 0\n"))
	f.Add([]byte("WRITE 1 " + payload + "\n"))
	f.Add([]byte("WRITE 1 zz\n"))
	f.Add([]byte("READ 99999999999999999999\n")) // int64 overflow
	f.Add([]byte("READ -3\nREAD 128\n"))         // both out of range
	f.Add([]byte("MULTI 2\nREAD 3\nWRITE 4 " + payload + "\n"))
	f.Add([]byte("MULTI 3\nREAD 1\n"))        // torn frame: fewer lines than declared
	f.Add([]byte("MULTI 2\nKGET 00\nQUIT\n")) // non-READ/WRITE sub-line swallows QUIT
	f.Add([]byte("MULTI -5\nREAD 1\n"))       // unusable count kills framing
	f.Add([]byte("MULTI abc\nMULTI 9999999\n"))
	f.Add([]byte("KGET 616c696365\nKSET 616c696365 00ff\nKDEL 616c696365\n"))
	f.Add([]byte("KSET zz 00\nKDEL zz\nKGET\n"))
	f.Add([]byte("STATS\nQUIT\nREAD 0\n")) // bytes after QUIT must not execute
	f.Add([]byte("  read  5  \n\n\nwrite 5\n"))
	f.Add([]byte("garbage \x00\xff\x13\nREAD x\n"))
	f.Add(bytes.Repeat([]byte{'A'}, 4096)) // one long unterminated token

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("bounding per-iteration work")
		}
		for _, addr := range addrs {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := conn.Write(data); err != nil {
				// The server may legitimately tear the connection down
				// mid-write (lost framing); that is not a parser bug.
				conn.Close()
				continue
			}
			// EOF the read side so a torn MULTI frame terminates the
			// scan loop instead of waiting forever for the rest.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			r := bufio.NewReaderSize(conn, 64<<10)
			for {
				line, err := r.ReadString('\n')
				if line != "" {
					line = strings.TrimRight(line, "\n")
					if !strings.HasPrefix(line, "OK") && !strings.HasPrefix(line, "ERR") && line != "MISS" {
						t.Fatalf("protocol-breaking response line %q for input %q", line, data)
					}
				}
				if err != nil {
					if err != io.EOF {
						t.Fatalf("read: %v", err)
					}
					break
				}
			}
			conn.Close()
		}
	})
}
