// Fault-injection regression tests for the batcher's per-task error
// attribution: when one chunk of a window fails, only the tasks whose
// requests were in that chunk see the error — tasks whose chunks
// drained (before OR after the failing one) get their real results.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

var errChunkFault = errors.New("injected chunk fault")

// dispatchWindow submits the tasks into one batching window with
// deterministic ordering (the batcher collects submissions in arrival
// order) and returns each task's delivered error.
func dispatchWindow(t *testing.T, s *Server, tasks [][]*core.Request) []error {
	t.Helper()
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, reqs := range tasks {
		wg.Add(1)
		go func(i int, reqs []*core.Request) {
			defer wg.Done()
			errs[i] = s.dispatch(reqs)
		}(i, reqs)
		// Give the batcher time to pull this task before the next is
		// submitted, so task order — and therefore chunk layout — is
		// deterministic under the long window below.
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	return errs
}

func TestBatcherPerTaskErrorAttribution(t *testing.T) {
	// MaxBatch 2 with three 2-request tasks → one window of exactly
	// three chunks, one chunk per task.
	_, srv := startServer(t, Config{BatchWindow: 500 * time.Millisecond, MaxBatch: 2})

	var faultAddr atomic.Int64
	faultAddr.Store(-1)
	realDrain := srv.drain
	srv.drain = func(reqs []*core.Request) error {
		for _, r := range reqs {
			if r.Addr == faultAddr.Load() {
				return fmt.Errorf("%w (addr %d)", errChunkFault, r.Addr)
			}
		}
		return realDrain(reqs)
	}

	mkTask := func(base int64) []*core.Request {
		return []*core.Request{
			{Op: core.OpRead, Addr: base},
			{Op: core.OpRead, Addr: base + 1},
		}
	}

	// Fault the MIDDLE task's chunk: the first chunk already drained
	// successfully when the fault hits, the third is attempted after
	// it. Before the fix, all three clients saw the error.
	faultAddr.Store(10)
	errs := dispatchWindow(t, srv, [][]*core.Request{mkTask(0), mkTask(10), mkTask(20)})
	if errs[0] != nil {
		t.Errorf("task 0 (chunk drained before the fault) got %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], errChunkFault) {
		t.Errorf("task 1 (the faulted chunk) got %v, want the injected fault", errs[1])
	}
	if errs[2] != nil {
		t.Errorf("task 2 (chunk after the fault) got %v, want nil — its requests really executed", errs[2])
	}

	// Fault the FIRST task's chunk: later chunks must still be
	// attempted and succeed (before the fix they were never attempted
	// yet reported the first chunk's error).
	faultAddr.Store(0)
	errs = dispatchWindow(t, srv, [][]*core.Request{mkTask(0), mkTask(10)})
	if !errors.Is(errs[0], errChunkFault) {
		t.Errorf("task 0 got %v, want the injected fault", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("task 1 got %v, want nil", errs[1])
	}

	// No fault: everyone succeeds.
	faultAddr.Store(-1)
	errs = dispatchWindow(t, srv, [][]*core.Request{mkTask(0), mkTask(10)})
	for i, err := range errs {
		if err != nil {
			t.Errorf("task %d got %v after fault cleared", i, err)
		}
	}
}

// TestBatcherSpanningTaskErrorAttribution covers a task whose requests
// span a chunk boundary: it must see the error if ANY of its chunks
// failed.
func TestBatcherSpanningTaskErrorAttribution(t *testing.T) {
	// MaxBatch 4; task A has 3 requests, task B has 3: chunks are
	// [A0 A1 A2 B0] and [B1 B2] — B spans both chunks.
	_, srv := startServer(t, Config{BatchWindow: 500 * time.Millisecond, MaxBatch: 4})

	var faultAddr atomic.Int64
	faultAddr.Store(-1)
	realDrain := srv.drain
	srv.drain = func(reqs []*core.Request) error {
		for _, r := range reqs {
			if r.Addr == faultAddr.Load() {
				return errChunkFault
			}
		}
		return realDrain(reqs)
	}
	taskA := []*core.Request{
		{Op: core.OpRead, Addr: 0}, {Op: core.OpRead, Addr: 1}, {Op: core.OpRead, Addr: 2},
	}
	taskB := []*core.Request{
		{Op: core.OpRead, Addr: 10}, {Op: core.OpRead, Addr: 11}, {Op: core.OpRead, Addr: 12},
	}

	// Fault the second chunk (addr 11 is in it): A's only chunk is the
	// first, which also carries B's first request — A must be clean, B
	// must see the error.
	faultAddr.Store(11)
	errs := dispatchWindow(t, srv, [][]*core.Request{taskA, taskB})
	if errs[0] != nil {
		t.Errorf("task A got %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], errChunkFault) {
		t.Errorf("task B got %v, want the injected fault (its tail chunk failed)", errs[1])
	}
}
