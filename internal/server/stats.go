package server

import (
	"repro/internal/engine"
	"repro/internal/okv"
)

// counters is the mutable server-side stats state, guarded by
// Server.mu. The histogram here is of window-level drains (what the
// batching window grouped before handing to the engine); the per-shard
// drain histograms live in the engine, which is the only place that
// sees how a window scattered.
type counters struct {
	Accepted        int64
	Rejected        int64
	Batches         int64
	BatchedRequests int64
	Hist            [engine.NumBuckets]int64
}

// Stats is a snapshot of the server's serving counters. The batch
// fields are the observable proof of request grouping: MeanBatch is
// the mean number of logical requests drained per batching window.
type Stats struct {
	// Accepted and Rejected count connections; Active is the number
	// currently being served.
	Accepted int64
	Rejected int64
	Active   int64
	// Requests counts logical READ/WRITE requests completed, Batches
	// the window-level drains that served them.
	Requests  int64
	Batches   int64
	MeanBatch float64
	// Histogram counts window-level drains by size bucket, in
	// engine.HistLabels order.
	Histogram [engine.NumBuckets]int64
	// PerShard is the engine's per-shard serving snapshot: queue
	// depth, scheduler-drain histogram and scheme counters per shard.
	PerShard []engine.ShardStats
	// ShardHistogram is the element-wise aggregation of the per-shard
	// drain histograms — the replacement for the old single global
	// batch histogram, now derived from per-shard truth.
	ShardHistogram [engine.NumBuckets]int64
	// KV is the oblivious key–value layer's counters when Config.KV is
	// set (nil otherwise): live keys, capacity, and per-verb totals.
	KV *okv.Stats
}

// record accounts one window-level drain.
func (s *Server) record(size int) {
	s.mu.Lock()
	s.st.Batches++
	s.st.BatchedRequests += int64(size)
	s.st.Hist[engine.BucketFor(size)]++
	s.mu.Unlock()
}

// Stats returns a snapshot of the serving counters, including the
// per-shard view and its aggregation. The window counters are sampled
// BEFORE the shard counters: shard drain hooks fire before a window's
// futures resolve, which is before record() counts the window — so
// sampling in this order keeps a snapshot under live traffic causally
// consistent (per-shard sums can only lead the window totals, never
// trail them).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Accepted:  s.st.Accepted,
		Rejected:  s.st.Rejected,
		Active:    int64(len(s.conns)),
		Requests:  s.st.BatchedRequests,
		Batches:   s.st.Batches,
		Histogram: s.st.Hist,
	}
	s.mu.Unlock()
	st.PerShard = s.engine.ShardStats()
	hists := make([][engine.NumBuckets]int64, len(st.PerShard))
	for i, sh := range st.PerShard {
		hists[i] = sh.Hist
	}
	st.ShardHistogram = engine.SumHists(hists...)
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Requests) / float64(st.Batches)
	}
	if s.kv != nil {
		kv := s.kv.Stats()
		st.KV = &kv
	}
	return st
}

// HistogramString renders the window-level batch-size histogram for
// logs.
func (st Stats) HistogramString() string { return engine.FormatHist(st.Histogram) }
