package server

import (
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/okv"
)

// instruments is the server's registry-backed counter set — the state
// behind both the STATS line and the /metrics exposition. Every
// update is one atomic op, so counting happens on the hot path
// without touching Server.mu (which guards the connection map only).
// The window histogram's buckets coincide with engine.BucketFor's
// (≤1, 2, ≤4, …, ≤64, 65+), so Stats can read the classic
// [NumBuckets]int64 view straight out of it.
type instruments struct {
	accepted   *obs.Counter
	rejected   *obs.Counter
	active     *obs.Gauge
	windows    *obs.Counter   // window-level drains executed
	windowReqs *obs.Counter   // logical requests drained by them
	windowHist *obs.Histogram // drains by size bucket (Public)
	drainTime  *obs.Histogram // wall-clock window drain latency (Timing)

	kvGets *obs.Counter
	kvSets *obs.Counter
	kvDels *obs.Counter
	kvTime *obs.Histogram // wall-clock KV pipeline latency (Timing)
}

// newInstruments registers the server's metric set. The Public
// declarations all reduce to the same fact: a wire adversary watching
// the plaintext TCP protocol already sees every connection, verb and
// request line, so arrival counts and window sizes reveal nothing
// beyond the traffic it tallies itself. What a wire adversary does
// NOT see — how requests scattered across shards, the hit/miss mix,
// the real-vs-pad cycle split — is never registered here.
func newInstruments(reg *obs.Registry, kv bool) instruments {
	ins := instruments{
		accepted: reg.Counter("horam_server_conns_accepted_total",
			"TCP connections accepted",
			obs.Public("connection arrivals are wire-visible")),
		rejected: reg.Counter("horam_server_conns_rejected_total",
			"connections refused over the MaxConns cap",
			obs.Public("refusals answer on the wire (ERR server busy)")),
		active: reg.Gauge("horam_server_conns_active",
			"connections currently served",
			obs.Public("open TCP connections are wire-visible")),
		windows: reg.Counter("horam_server_windows_total",
			"batching-window drains executed",
			obs.Public("window boundaries follow from wire-visible request arrival timing and the public MaxBatch/BatchWindow config")),
		windowReqs: reg.Counter("horam_server_window_requests_total",
			"logical requests drained through batching windows",
			obs.Public("request count is wire-visible traffic volume")),
		windowHist: reg.Histogram("horam_server_window_size",
			"window drain sizes, bucketed like the engine batch histogram",
			obs.Public("window sizes are a function of wire-visible arrival timing, never of addresses"),
			obs.BatchSizeBounds()),
		drainTime: reg.Histogram("horam_server_drain_seconds",
			"wall-clock latency of one window drain",
			obs.Timing("wall-clock measurement; covered by the PR 7 timing gate, not snapshot equality"),
			obs.DurationBounds()),
	}
	if kv {
		ins.kvGets = reg.Counter("horam_server_kv_ops_total",
			"KV verbs served", obs.Public("verbs travel in plaintext on the wire; per-verb counts are what a wire adversary already tallies"),
			obs.Label{Key: "verb", Value: "get"})
		ins.kvSets = reg.Counter("horam_server_kv_ops_total",
			"KV verbs served", obs.Public("wire-visible verb count"),
			obs.Label{Key: "verb", Value: "set"})
		ins.kvDels = reg.Counter("horam_server_kv_ops_total",
			"KV verbs served", obs.Public("wire-visible verb count"),
			obs.Label{Key: "verb", Value: "del"})
		ins.kvTime = reg.Histogram("horam_server_kv_seconds",
			"wall-clock latency of one oblivious KV pipeline",
			obs.Timing("wall-clock measurement; the pipeline's fixed three-batch shape, not its wall time, is the oblivious property"),
			obs.DurationBounds())
	}
	return ins
}

// Stats is a snapshot of the server's serving counters. The batch
// fields are the observable proof of request grouping: MeanBatch is
// the mean number of logical requests drained per batching window.
type Stats struct {
	// Accepted and Rejected count connections; Active is the number
	// currently being served.
	Accepted int64
	Rejected int64
	Active   int64
	// Requests counts logical READ/WRITE requests completed, Batches
	// the window-level drains that served them.
	Requests  int64
	Batches   int64
	MeanBatch float64
	// Histogram counts window-level drains by size bucket, in
	// engine.HistLabels order.
	Histogram [engine.NumBuckets]int64
	// PerShard is the engine's per-shard serving snapshot: queue
	// depth, scheduler-drain histogram and scheme counters per shard.
	PerShard []engine.ShardStats
	// ShardHistogram is the element-wise aggregation of the per-shard
	// drain histograms — the replacement for the old single global
	// batch histogram, now derived from per-shard truth.
	ShardHistogram [engine.NumBuckets]int64
	// KV is the oblivious key–value layer's counters when Config.KV is
	// set (nil otherwise): live keys, capacity, and per-verb totals.
	KV *okv.Stats
}

// record accounts one window-level drain.
func (s *Server) record(size int) {
	s.ins.windows.Inc()
	s.ins.windowReqs.Add(int64(size))
	s.ins.windowHist.Observe(float64(size))
}

// windowCounters samples the window-level instrument block. The
// histogram read is not atomic with the totals, but neither was the
// old mutex-guarded snapshot with respect to the engine's counters;
// per-field monotonicity is all consumers rely on.
func (s *Server) windowCounters() (st Stats) {
	st.Accepted = s.ins.accepted.Value()
	st.Rejected = s.ins.rejected.Value()
	st.Requests = s.ins.windowReqs.Value()
	st.Batches = s.ins.windows.Value()
	for i := 0; i < engine.NumBuckets; i++ {
		st.Histogram[i] = s.ins.windowHist.Bucket(i)
	}
	return st
}

// Stats returns a snapshot of the serving counters, including the
// per-shard view and its aggregation. The window counters are sampled
// BEFORE the shard counters: shard drain hooks fire before a window's
// futures resolve, which is before record() counts the window — so
// sampling in this order keeps a snapshot under live traffic causally
// consistent (per-shard sums can only lead the window totals, never
// trail them).
func (s *Server) Stats() Stats {
	st := s.windowCounters()
	s.mu.Lock()
	st.Active = int64(len(s.conns))
	s.mu.Unlock()
	st.PerShard = s.engine.ShardStats()
	hists := make([][engine.NumBuckets]int64, len(st.PerShard))
	for i, sh := range st.PerShard {
		hists[i] = sh.Hist
	}
	st.ShardHistogram = engine.SumHists(hists...)
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Requests) / float64(st.Batches)
	}
	if s.kv != nil {
		kv := s.kv.Stats()
		st.KV = &kv
	}
	return st
}

// HistogramString renders the window-level batch-size histogram for
// logs.
func (st Stats) HistogramString() string { return engine.FormatHist(st.Histogram) }

// appendDuration renders d as seconds with nanosecond precision plus
// an "s" suffix ("0.002000000s") — allocation-free, and still
// accepted by time.ParseDuration, which internal/cluster's remote
// backend uses to read max_cycle/simtime back off a STATS line.
func appendDuration(dst []byte, d time.Duration) []byte {
	dst = strconv.AppendFloat(dst, d.Seconds(), 'f', 9, 64)
	return append(dst, 's')
}

// appendStatsLine renders the STATS response into dst: aggregate
// engine counters, the server's window-level batching counters, and
// one group of keys per shard (queue depth, cycles, leveling pad
// cycles, drains, drain-size histogram). The shard_hist key is the
// element-wise aggregation of the per-shard histograms, so consumers
// that only want the old single-histogram view still get one — built
// from the per-shard truth.
//
// The build is allocation-free in the steady state (strconv.Append*
// into a reused buffer, engine.ShardStatsInto into a reused slice):
// a monitoring loop polling STATS must not perturb the zero-alloc
// serving path — TestStatsLineAllocs enforces it.
func (s *Server) appendStatsLine(dst []byte) []byte {
	sum := s.engine.Stats()
	st := s.windowCounters()
	s.mu.Lock()
	st.Active = int64(len(s.conns))
	s.mu.Unlock()

	if s.statsShards == nil {
		s.statsShards = make([]engine.ShardStats, s.engine.Shards())
	}
	s.engine.ShardStatsInto(s.statsShards)
	var shardHist [engine.NumBuckets]int64
	for _, sh := range s.statsShards {
		for i, n := range sh.Hist {
			shardHist[i] += n
		}
	}
	mean := 0.0
	if st.Batches > 0 {
		mean = float64(st.Requests) / float64(st.Batches)
	}

	dst = append(dst, "OK requests="...)
	dst = strconv.AppendInt(dst, sum.Requests, 10)
	dst = append(dst, " hits="...)
	dst = strconv.AppendInt(dst, sum.Hits, 10)
	dst = append(dst, " misses="...)
	dst = strconv.AppendInt(dst, sum.Misses, 10)
	dst = append(dst, " shuffles="...)
	dst = strconv.AppendInt(dst, sum.Shuffles, 10)
	dst = append(dst, " quanta="...)
	dst = strconv.AppendInt(dst, sum.Quanta, 10)
	dst = append(dst, " max_cycle="...)
	dst = appendDuration(dst, sum.MaxCycleTime)
	dst = append(dst, " simtime="...)
	dst = appendDuration(dst, sum.SimTime)
	dst = append(dst, " shards="...)
	dst = strconv.AppendInt(dst, int64(sum.Shards), 10)
	dst = append(dst, " conns="...)
	dst = strconv.AppendInt(dst, st.Accepted, 10)
	dst = append(dst, " active="...)
	dst = strconv.AppendInt(dst, st.Active, 10)
	dst = append(dst, " rejected="...)
	dst = strconv.AppendInt(dst, st.Rejected, 10)
	dst = append(dst, " batches="...)
	dst = strconv.AppendInt(dst, st.Batches, 10)
	dst = append(dst, " mean_batch="...)
	dst = strconv.AppendFloat(dst, mean, 'f', 2, 64)
	dst = append(dst, " hist="...)
	dst = engine.AppendHist(dst, st.Histogram)
	dst = append(dst, " shard_hist="...)
	dst = engine.AppendHist(dst, shardHist)

	if s.kv != nil {
		kv := s.kv.Stats()
		dst = append(dst, " kv_count="...)
		dst = strconv.AppendInt(dst, kv.Count, 10)
		dst = append(dst, " kv_capacity="...)
		dst = strconv.AppendInt(dst, kv.Capacity, 10)
		dst = append(dst, " kv_gets="...)
		dst = strconv.AppendInt(dst, kv.Gets, 10)
		dst = append(dst, " kv_sets="...)
		dst = strconv.AppendInt(dst, kv.Sets, 10)
		dst = append(dst, " kv_dels="...)
		dst = strconv.AppendInt(dst, kv.Dels, 10)
		dst = append(dst, " kv_misses="...)
		dst = strconv.AppendInt(dst, kv.Misses, 10)
	}

	for _, sh := range s.statsShards {
		id := int64(sh.Shard)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_depth="...)
		dst = strconv.AppendInt(dst, int64(sh.QueueDepth), 10)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_cycles="...)
		dst = strconv.AppendInt(dst, sh.Cycles, 10)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_pad="...)
		dst = strconv.AppendInt(dst, sh.PadCycles, 10)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_quanta="...)
		dst = strconv.AppendInt(dst, sh.ShuffleQuanta, 10)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_maxcycle="...)
		dst = appendDuration(dst, sh.MaxCycleTime)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_batches="...)
		dst = strconv.AppendInt(dst, sh.Batches, 10)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_reqs="...)
		dst = strconv.AppendInt(dst, sh.Requests, 10)
		dst = append(dst, " s"...)
		dst = strconv.AppendInt(dst, id, 10)
		dst = append(dst, "_hist="...)
		dst = engine.AppendHist(dst, sh.Hist)
	}
	return dst
}

// writeStats renders one STATS response into the connection writer,
// reusing the server's scratch buffer (statsMu serialises polls; the
// serving path never takes it).
func (s *Server) writeStats(w interface{ Write([]byte) (int, error) }) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.statsBuf = s.appendStatsLine(s.statsBuf[:0])
	s.statsBuf = append(s.statsBuf, '\n')
	w.Write(s.statsBuf) //horam:errok buffered writer; the flush in handle surfaces the error
}
