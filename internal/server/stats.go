package server

import (
	"fmt"
	"strings"
)

// Histogram bucket boundaries for batch sizes: 1, 2, 3-4, 5-8, 9-16,
// 17-32, 33-64, 65+.
var histLabels = []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// counters is the mutable server-side stats state, guarded by
// Server.mu.
type counters struct {
	Accepted        int64
	Rejected        int64
	Batches         int64
	BatchedRequests int64
	Hist            [8]int64
}

// Stats is a snapshot of the server's serving counters. The batch
// fields are the observable proof of request grouping: MeanBatch is
// the mean number of logical requests drained per scheduler batch.
type Stats struct {
	// Accepted and Rejected count connections; Active is the number
	// currently being served.
	Accepted int64
	Rejected int64
	Active   int64
	// Requests counts logical READ/WRITE requests completed, Batches
	// the scheduler drains that served them.
	Requests  int64
	Batches   int64
	MeanBatch float64
	// Histogram counts batches by size bucket, in histLabels order.
	Histogram [8]int64
}

// bucketFor maps a batch size to its histogram bucket.
func bucketFor(size int) int {
	switch {
	case size <= 1:
		return 0
	case size == 2:
		return 1
	case size <= 4:
		return 2
	case size <= 8:
		return 3
	case size <= 16:
		return 4
	case size <= 32:
		return 5
	case size <= 64:
		return 6
	default:
		return 7
	}
}

// record accounts one drained batch.
func (s *Server) record(size int) {
	s.mu.Lock()
	s.st.Batches++
	s.st.BatchedRequests += int64(size)
	s.st.Hist[bucketFor(size)]++
	s.mu.Unlock()
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Accepted:  s.st.Accepted,
		Rejected:  s.st.Rejected,
		Active:    int64(len(s.conns)),
		Requests:  s.st.BatchedRequests,
		Batches:   s.st.Batches,
		Histogram: s.st.Hist,
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Requests) / float64(st.Batches)
	}
	return st
}

// histString renders the non-empty histogram buckets as
// "1:12,2:3,5-8:1".
func (st Stats) histString() string {
	var parts []string
	for i, n := range st.Histogram {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", histLabels[i], n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// HistogramString renders the batch-size histogram for logs.
func (st Stats) HistogramString() string { return st.histString() }
