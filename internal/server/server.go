// Package server is the concurrent batched network front-end for an
// H-ORAM block store — the serving half of the paper's Figure 2-3 /
// 5-2 deployment, built so heavy multi-client traffic actually feeds
// the scheduler's request-grouping machinery (§4.2) instead of
// trickling in one request at a time.
//
// Architecture: each TCP connection gets a reader goroutine that
// parses requests and hands them to a single batcher goroutine over a
// submit channel. The batcher collects everything that arrives within
// a short window (or until the batch cap) and drains the whole window
// through engine.Engine.Batch as ONE logical batch: the engine
// scatters it across its shards' reorder buffers, every shard's
// scheduler drains its sub-batch concurrently (one storage load
// amortised across up to c in-memory hits per cycle, exactly as the
// paper's schedule intends), and the engine gathers the futures before
// the batcher hands completions back to the connection goroutines over
// per-task done channels — every client stays asynchronous with
// respect to the others.
//
// Wire protocol (text, line-oriented; responses in request order):
//
//	READ <addr>                  -> OK <hex> | ERR <msg>
//	WRITE <addr> <hex>           -> OK       | ERR <msg>
//	MULTI <n>                    -> OK <n> then n lines  | ERR <msg>
//	  followed by n lines, each READ <addr> or WRITE <addr> <hex>;
//	  the n sub-requests run as one scheduler batch and the n
//	  response lines mirror the single-request responses.
//	STATS                        -> OK k=v ... (engine + server counters)
//	TRACE ON|OFF|STATUS|DUMP     -> OK ... (request-path tracer control;
//	  DUMP answers OK <hex> where <hex> decodes to chrome://tracing JSON)
//	QUIT                         -> closes the connection
//
// STATS and TRACE are TRUSTED operator surfaces: the STATS line
// reports secret-dependent counters (per-shard request routing,
// hit/miss mix, the real-vs-pad cycle split) and trace spans carry
// wall-clock timings. The adversary-visible monitoring surface is the
// separate leak-audited /metrics exposition (internal/obs, exported
// by horamd -metrics-addr), which exports none of those.
//
// With Config.KV set (horamd -kv) the oblivious key–value verbs are
// served as well — each runs internal/okv's fixed three-batch block
// pipeline through the engine's reorder buffers, so hit, miss, insert,
// update and delete are bus-indistinguishable:
//
//	KGET <hexkey>                -> OK <hex> | OK (empty value) | MISS | ERR <msg>
//	KSET <hexkey> [<hexvalue>]   -> OK | ERR <msg>   (omitted value = empty)
//	KDEL <hexkey>                -> OK 1 (existed) | OK 0 (absent) | ERR <msg>
//
// In KV mode raw WRITE is refused: the whole block address space backs
// the table, and a raw write landing inside it would corrupt the
// layout. Raw READ stays available for diagnostics.
//
// With Config.ShardControl set (horamd -shard-serve) the shard-control
// verbs are served as well — the wire half of the cluster control
// plane a gateway engine (engine.NewWithBackends over
// internal/cluster's remote shards) drives:
//
//	CYCLES                       -> OK <n> | ERR <msg>   (cumulative scheduler cycles)
//	PAD <target>                 -> OK <padded> | ERR <msg>  (dummy cycles up to target)
//	CHECKPT <n>                  -> OK | ERR <msg>   (checkpoint at explicit lifetime number)
//	PEEK                         -> OK k=v ... | ERR <msg>   (manifest echo + checkpoint)
//	METRICS                      -> OK <hex> | ERR <msg>   (node /metrics text, hex-encoded —
//	  how a gateway aggregates a cluster-wide scrape)
//
// CYCLES/PAD are how cross-node cycle leveling reaches over process
// boundaries; PEEK is how a gateway refuses a node running drifted
// geometry/options/seed before serving traffic through it. The verbs
// are refused unless explicitly enabled: PAD and CHECKPT let any
// client burn I/O budget and write snapshots, which a public-facing
// front end must not expose.
package server

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/okv"
)

// Defaults for Config zero values.
const (
	DefaultBatchWindow = 2 * time.Millisecond
	DefaultMaxBatch    = 64
	DefaultMaxConns    = 256

	// MaxMultiRequests bounds the <n> of one MULTI command.
	MaxMultiRequests = 1024

	// MaxLineBytes bounds one protocol line. WRITE and KSET lines carry
	// hex payloads (two line bytes per payload byte), so this bounds
	// the block size at ~512 KiB and is the ceiling horamd validates
	// -kv-max-value against: a value cap whose at-cap KSET line could
	// not fit would tear every connection that legitimately used it.
	MaxLineBytes = 1 << 20
)

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("server: closed")

// Config parameterises a Server. Zero values select the defaults
// above.
type Config struct {
	// Engine is the sharded H-ORAM engine every request is served
	// from. Required. The server is its only driver on the hot path,
	// so each shard's scheduler still observes one serial request
	// stream as the secure scheduler requires.
	Engine *engine.Engine
	// BatchWindow is how long the batcher waits for more requests
	// after the first one arrives before draining the window.
	BatchWindow time.Duration
	// MaxBatch caps the logical requests grouped into one scheduler
	// drain.
	MaxBatch int
	// MaxConns caps concurrently served connections; excess
	// connections are refused with "ERR server busy".
	MaxConns int
	// KV enables the oblivious key–value verbs (KGET/KSET/KDEL),
	// served from this store. The store must be laid over the same
	// engine; while it is set, raw WRITE is refused so block traffic
	// cannot corrupt the table layout. Nil serves the block protocol
	// only.
	KV *okv.Store
	// ShardControl enables the CYCLES/PAD/CHECKPT/PEEK/METRICS verbs —
	// the wire half of the cluster control plane. Only a horamd
	// running as a -shard-serve node should set it: PAD and CHECKPT
	// are state-changing operations a public front end must not
	// expose, and METRICS hands out the node's whole exposition.
	ShardControl bool
	// Metrics is the registry the server registers its serving
	// counters on (see internal/obs for the leak-audit contract); the
	// same counters back the STATS verb. Nil makes the server register
	// on a private registry, so STATS works without an exported
	// /metrics surface.
	Metrics *obs.Registry
	// Tracer, when set, enables the TRACE control verb and tags the
	// window-drain spans. Wire the same tracer into the engine
	// (Engine.Observe) to see the full request path in one dump. The
	// dump is a trusted diagnostic like STATS — wall-clock spans are
	// not a public observable.
	Tracer *obs.Tracer
	// Logger receives connection-level diagnostics; nil discards them.
	Logger *slog.Logger
}

// task is one connection's contribution to a batch window.
type task struct {
	reqs []*core.Request
	done chan error
}

// Server accepts connections and batches their requests into the
// shared scheduler.
type Server struct {
	cfg       Config
	engine    *engine.Engine
	kv        *okv.Store
	blocks    int64
	blockSize int

	submit      chan *task
	quit        chan struct{}
	batcherDone chan struct{}
	wg          sync.WaitGroup

	// drain executes one chunk of a window; engine.Batch in
	// production, overridable by fault-injection tests.
	drain func(reqs []*core.Request) error

	// reg backs the STATS verb and (on a -shard-serve node) the
	// METRICS verb; ins are the registered serving counters. tracer is
	// nil unless Config.Tracer wired one.
	reg    *obs.Registry
	ins    instruments
	tracer *obs.Tracer
	logger *slog.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	// statsMu serialises STATS renders over the reused scratch below;
	// the serving path never takes it.
	statsMu     sync.Mutex
	statsBuf    []byte
	statsShards []engine.ShardStats
}

// New validates the config and starts the batcher. Callers must
// Close the server even if Serve is never reached.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Metrics
	if reg == nil {
		// A private registry keeps the STATS verb registry-backed even
		// when nothing exports /metrics.
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:         cfg,
		engine:      cfg.Engine,
		kv:          cfg.KV,
		blocks:      cfg.Engine.Blocks(),
		blockSize:   cfg.Engine.BlockSize(),
		submit:      make(chan *task, cfg.MaxConns),
		quit:        make(chan struct{}),
		batcherDone: make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
		reg:         reg,
		tracer:      cfg.Tracer,
		logger:      cfg.Logger,
	}
	s.ins = newInstruments(reg, cfg.KV != nil)
	s.drain = cfg.Engine.Batch
	go s.batcher()
	return s, nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close() //horam:errok refusing a listener handed to a closed server; ErrClosed is the answer
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
			}
			// Ride out transient accept failures (fd exhaustion under
			// a connection flood) instead of killing every healthy
			// connection with the daemon.
			if ne, ok := err.(net.Error); ok && ne.Temporary() { //nolint:staticcheck // matches net/http's accept-retry pattern
				s.logger.Warn("accept failed, retrying", "err", err)
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return err
		}
		if !s.admit(conn) {
			continue
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// admit registers the connection or refuses it over the MaxConns cap.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.ins.rejected.Inc()
		fmt.Fprintln(conn, "ERR server busy")
		conn.Close() //horam:errok best-effort refusal of a connection over the cap
		return false
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.ins.accepted.Inc()
	s.ins.active.Add(1)
	return true
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.ins.active.Add(-1)
}

// Close stops accepting, lets in-flight requests complete and their
// responses flush, then stops the batcher. Safe to call more than
// once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.batcherDone
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.quit)
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	// Unblock connection readers while keeping the write side open so
	// in-flight responses still reach the client.
	for _, c := range conns {
		if cr, ok := c.(interface{ CloseRead() error }); ok {
			cr.CloseRead()
		} else {
			c.SetReadDeadline(time.Now())
		}
	}
	s.wg.Wait()
	close(s.submit)
	<-s.batcherDone
	return lnErr
}

// dispatch hands one connection's requests to the batcher and waits
// for the batch that contains them to drain.
func (s *Server) dispatch(reqs []*core.Request) error {
	t := &task{reqs: reqs, done: make(chan error, 1)}
	select {
	case s.submit <- t:
	case <-s.quit:
		return ErrClosed
	}
	return <-t.done
}

// batcher is the single goroutine that feeds the scheduler: it opens
// a window on the first queued task, keeps collecting until the
// window closes or the batch cap is hit, and drains everything as one
// ROB batch.
//
// Error attribution is per task, not per window: the window drains in
// MaxBatch chunks, every chunk is attempted regardless of earlier
// chunk failures (the engine's batches are independent), and a task
// only observes an error from a chunk that contained at least one of
// ITS requests. A task whose chunks all drained cleanly gets nil even
// when a neighbour's chunk failed — its operations really executed,
// and telling its client ERR would be a lie in both directions.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	for {
		t, ok := <-s.submit
		if !ok {
			return
		}
		reqs := append([]*core.Request(nil), t.reqs...)
		waiters := []*task{t}
		starts := []int{0} // waiters[i]'s requests occupy reqs[starts[i] : starts[i]+len(waiters[i].reqs)]
		timer := time.NewTimer(s.cfg.BatchWindow)
		open := true
	collect:
		for len(reqs) < s.cfg.MaxBatch {
			select {
			case t2, ok2 := <-s.submit:
				if !ok2 {
					open = false
					break collect
				}
				starts = append(starts, len(reqs))
				reqs = append(reqs, t2.reqs...)
				waiters = append(waiters, t2)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		// A single task (one MULTI) may exceed MaxBatch on its own;
		// chunk the drain so -max-batch really bounds per-drain
		// latency for everyone sharing the scheduler.
		type chunk struct {
			off, end int
			err      error
		}
		var chunks []chunk
		for off := 0; off < len(reqs); off += s.cfg.MaxBatch {
			end := off + s.cfg.MaxBatch
			if end > len(reqs) {
				end = len(reqs)
			}
			var obsStart time.Time
			if s.ins.drainTime != nil {
				obsStart = time.Now()
			}
			sp := s.tracer.Begin("window", 0)
			err := s.drain(reqs[off:end])
			sp.End(obs.Arg{Key: "size", Val: int64(end - off)})
			if s.ins.drainTime != nil {
				s.ins.drainTime.ObserveDuration(time.Since(obsStart))
			}
			// Count only successful chunks, mirroring the engine's
			// per-shard drain hooks (which skip failed drains) — so the
			// per-shard request sums always reconcile with the window
			// totals, even after faults.
			if err == nil {
				s.record(end - off)
			}
			chunks = append(chunks, chunk{off, end, err})
		}
		for i, w := range waiters {
			lo, hi := starts[i], starts[i]+len(w.reqs)
			var werr error
			for _, c := range chunks {
				if c.err != nil && c.off < hi && lo < c.end {
					werr = c.err
					break
				}
			}
			w.done <- werr
		}
		if !open {
			return
		}
	}
}

// handle serves one connection: parse, dispatch, respond. Responses
// for a connection are written in request order; batching across
// connections happens behind the submit channel.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close() //horam:errok per-connection teardown; the protocol has already answered or failed
	defer s.forget(conn)

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	w := bufio.NewWriter(conn)
scan:
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "QUIT":
			return
		case "STATS":
			s.writeStats(w)
		case "TRACE":
			s.handleTrace(w, fields)
		case "READ", "WRITE":
			req, msg := s.parseOp(fields)
			if msg != "" {
				fmt.Fprintln(w, "ERR "+msg)
				break
			}
			if err := s.dispatch([]*core.Request{req}); err != nil {
				fmt.Fprintln(w, "ERR "+err.Error())
				break
			}
			writeOpResponse(w, req)
		case "KGET", "KSET", "KDEL":
			s.handleKV(w, fields)
		case "CYCLES", "PAD", "CHECKPT", "PEEK", "METRICS":
			s.handleShardControl(w, fields)
		case "MULTI":
			if !s.handleMulti(sc, w, fields) {
				// Framing is no longer trustworthy (bad count, or
				// the stream died mid-command): stop parsing and
				// close after surfacing sc.Err below.
				break scan
			}
		default:
			fmt.Fprintln(w, "ERR unknown command "+fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// A failed scan (oversized line, transport error) used to drop
	// the connection silently; surface it to the client when the
	// write side is still usable.
	if err := sc.Err(); err != nil {
		s.logger.Warn("connection scan failed", "remote", conn.RemoteAddr().String(), "err", err)
		fmt.Fprintf(w, "ERR %v\n", err)
	}
	w.Flush()
}

// handleMulti reads the n sub-request lines of a MULTI command,
// dispatches them as one task and writes the n+1 response lines. On a
// sub-line validation error it still consumes the full declared frame
// (keeping the stream in sync — leftover lines must never execute as
// top-level commands), answers one ERR and lets the connection
// continue. It returns false when framing is lost: an unusable count
// (the n sub-lines can't be safely consumed) or a scan failure
// mid-command; handle then surfaces sc.Err and closes.
func (s *Server) handleMulti(sc *bufio.Scanner, w *bufio.Writer, fields []string) bool {
	if len(fields) != 2 {
		fmt.Fprintln(w, "ERR usage: MULTI <n>")
		return true
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 || n > MaxMultiRequests {
		fmt.Fprintf(w, "ERR MULTI count must be in [1,%d]\n", MaxMultiRequests)
		return false
	}
	reqs := make([]*core.Request, 0, n)
	badLine := ""
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return false
		}
		if badLine != "" {
			continue // drain the rest of the frame
		}
		sub := strings.Fields(strings.TrimSpace(sc.Text()))
		op := ""
		if len(sub) > 0 {
			op = strings.ToUpper(sub[0])
		}
		if op != "READ" && op != "WRITE" {
			badLine = fmt.Sprintf("MULTI line %d: only READ/WRITE allowed", i+1)
			continue
		}
		req, msg := s.parseOp(sub)
		if msg != "" {
			badLine = fmt.Sprintf("MULTI line %d: %s", i+1, msg)
			continue
		}
		reqs = append(reqs, req)
	}
	if badLine != "" {
		fmt.Fprintln(w, "ERR "+badLine)
		return true
	}
	if err := s.dispatch(reqs); err != nil {
		fmt.Fprintln(w, "ERR "+err.Error())
		return true
	}
	fmt.Fprintf(w, "OK %d\n", n)
	for _, req := range reqs {
		writeOpResponse(w, req)
	}
	return true
}

// handleKV serves one KGET/KSET/KDEL command. KV operations bypass the
// batching window — each already IS a fixed-size batch pipeline that
// the okv layer drives through the engine's reorder buffers. Blocking
// here only parks this connection's goroutine: okv locks per bucket,
// so concurrent connections' operations on disjoint keys run their
// pipelines concurrently and their batches coalesce in the shards'
// reorder buffers.
func (s *Server) handleKV(w *bufio.Writer, fields []string) {
	verb := strings.ToUpper(fields[0])
	if s.kv == nil {
		fmt.Fprintln(w, "ERR kv disabled (start horamd with -kv)")
		return
	}
	usage := map[string]string{
		"KGET": "usage: KGET <hexkey>",
		"KSET": "usage: KSET <hexkey> [<hexvalue>]",
		"KDEL": "usage: KDEL <hexkey>",
	}[verb]
	wantMax := 2
	if verb == "KSET" {
		wantMax = 3
	}
	if len(fields) < 2 || len(fields) > wantMax {
		fmt.Fprintln(w, "ERR "+usage)
		return
	}
	key, err := hex.DecodeString(fields[1])
	if err != nil {
		fmt.Fprintln(w, "ERR bad hex key")
		return
	}
	var obsStart time.Time
	if s.ins.kvTime != nil {
		obsStart = time.Now()
	}
	sp := s.tracer.Begin("kv-"+strings.ToLower(verb), 0)
	defer func() {
		sp.End()
		if s.ins.kvTime != nil {
			s.ins.kvTime.ObserveDuration(time.Since(obsStart))
		}
	}()
	switch verb {
	case "KGET":
		s.ins.kvGets.Inc()
		val, ok, err := s.kv.Get(key)
		switch {
		case err != nil:
			fmt.Fprintln(w, "ERR "+err.Error())
		case !ok:
			fmt.Fprintln(w, "MISS")
		case len(val) == 0:
			fmt.Fprintln(w, "OK")
		default:
			fmt.Fprintln(w, "OK "+hex.EncodeToString(val))
		}
	case "KSET":
		s.ins.kvSets.Inc()
		var val []byte
		if len(fields) == 3 {
			if val, err = hex.DecodeString(fields[2]); err != nil {
				fmt.Fprintln(w, "ERR bad hex value")
				return
			}
		}
		if err := s.kv.Set(key, val); err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		fmt.Fprintln(w, "OK")
	case "KDEL":
		s.ins.kvDels.Inc()
		existed, err := s.kv.Del(key)
		if err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		if existed {
			fmt.Fprintln(w, "OK 1")
		} else {
			fmt.Fprintln(w, "OK 0")
		}
	}
}

// parseOp parses a READ/WRITE command (already split into fields) and
// validates it against the store geometry, so a malformed request is
// refused before it can poison a shared batch.
func (s *Server) parseOp(fields []string) (*core.Request, string) {
	op := strings.ToUpper(fields[0])
	wantArgs := 2
	if op == "WRITE" {
		wantArgs = 3
		if s.kv != nil {
			return nil, "WRITE disabled in KV mode (the block space backs the key-value table)"
		}
	}
	if len(fields) != wantArgs {
		if op == "WRITE" {
			return nil, "usage: WRITE <addr> <hex>"
		}
		return nil, "usage: READ <addr>"
	}
	addr, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, "bad address"
	}
	if addr < 0 || addr >= s.blocks {
		return nil, fmt.Sprintf("address %d out of range [0,%d)", addr, s.blocks)
	}
	if op == "READ" {
		return &core.Request{Op: core.OpRead, Addr: addr}, ""
	}
	data, err := hex.DecodeString(fields[2])
	if err != nil {
		return nil, "bad hex payload"
	}
	if len(data) != s.blockSize {
		return nil, fmt.Sprintf("payload %d bytes, want %d", len(data), s.blockSize)
	}
	return &core.Request{Op: core.OpWrite, Addr: addr, Data: data}, ""
}

// writeOpResponse emits the per-request success line.
func writeOpResponse(w *bufio.Writer, req *core.Request) {
	if req.Op == core.OpRead {
		fmt.Fprintln(w, "OK "+hex.EncodeToString(req.Result))
	} else {
		fmt.Fprintln(w, "OK")
	}
}

// handleTrace serves the TRACE control surface:
//
//	TRACE ON     -> OK            (reset the buffer, start recording)
//	TRACE OFF    -> OK            (stop recording, keep the buffer)
//	TRACE STATUS -> OK k=v ...    (enabled/spans/dropped)
//	TRACE DUMP   -> OK <hex>      (chrome://tracing JSON, hex-encoded)
//
// Like STATS it is a trusted operator surface: span durations are
// wall-clock and therefore not public observables, which is exactly
// why the dump lives here and never on /metrics.
func (s *Server) handleTrace(w *bufio.Writer, fields []string) {
	if s.tracer == nil {
		fmt.Fprintln(w, "ERR tracing not wired (start horamd to get a tracer)")
		return
	}
	sub := ""
	if len(fields) == 2 {
		sub = strings.ToUpper(fields[1])
	}
	switch sub {
	case "ON":
		s.tracer.Start()
		fmt.Fprintln(w, "OK")
	case "OFF":
		s.tracer.Stop()
		fmt.Fprintln(w, "OK")
	case "STATUS":
		fmt.Fprintf(w, "OK enabled=%t spans=%d dropped=%d\n",
			s.tracer.Enabled(), s.tracer.Len(), s.tracer.Dropped())
	case "DUMP":
		raw, err := s.tracer.DumpJSON()
		if err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		fmt.Fprintln(w, "OK "+hex.EncodeToString(raw))
	default:
		fmt.Fprintln(w, "ERR usage: TRACE ON|OFF|STATUS|DUMP")
	}
}
