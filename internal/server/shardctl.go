// The shard-control verbs: the wire half of the cluster control
// plane. A horamd -shard-serve node serves its one shard through the
// ordinary block verbs and exposes these four on top, so a gateway
// engine can level cycle counts across nodes (CYCLES/PAD), drive an
// aligned cluster-wide checkpoint (CHECKPT), and validate a node's
// identity and geometry before trusting it with traffic (PEEK).
package server

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// handleShardControl serves one CYCLES/PAD/CHECKPT/PEEK/METRICS command.
// These verbs bypass the batching window: they are control-plane
// operations issued between a gateway's data batches, not data-plane
// requests that should coalesce with them — and PAD in particular
// must observe the cycle count the preceding drains left, not race
// a window.
func (s *Server) handleShardControl(w *bufio.Writer, fields []string) {
	verb := strings.ToUpper(fields[0])
	if !s.cfg.ShardControl {
		fmt.Fprintln(w, "ERR shard-control disabled (start horamd with -shard-serve)")
		return
	}
	switch verb {
	case "CYCLES":
		if len(fields) != 1 {
			fmt.Fprintln(w, "ERR usage: CYCLES")
			return
		}
		n, err := s.engine.Cycles()
		if err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		fmt.Fprintf(w, "OK %d\n", n)
	case "PAD":
		if len(fields) != 2 {
			fmt.Fprintln(w, "ERR usage: PAD <target-cycles>")
			return
		}
		target, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || target < 0 {
			fmt.Fprintln(w, "ERR bad PAD target")
			return
		}
		padded, err := s.engine.PadToCycles(target)
		if err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		fmt.Fprintf(w, "OK %d\n", padded)
	case "CHECKPT":
		if len(fields) != 2 {
			fmt.Fprintln(w, "ERR usage: CHECKPT <checkpoint>")
			return
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || n == 0 {
			fmt.Fprintln(w, "ERR bad CHECKPT number (checkpoints start at 1)")
			return
		}
		if err := s.engine.SaveSnapshotAt(n); err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		fmt.Fprintln(w, "OK")
	case "PEEK":
		if len(fields) != 1 {
			fmt.Fprintln(w, "ERR usage: PEEK")
			return
		}
		fmt.Fprintln(w, s.peekLine())
	case "METRICS":
		if len(fields) != 1 {
			fmt.Fprintln(w, "ERR usage: METRICS")
			return
		}
		// The node's whole Prometheus exposition, hex-encoded onto one
		// line. A gateway answers its own /metrics scrape by fetching
		// every node's exposition through this verb and relabelling it
		// (internal/cluster.MetricsHandler), so one scrape sees the
		// cluster. Shard-control-gated like PAD: the exposition is
		// leak-audited, but a node's metrics belong to its operator,
		// not to arbitrary block-protocol clients.
		var b strings.Builder
		if err := s.reg.WritePrometheus(&b); err != nil {
			fmt.Fprintln(w, "ERR "+err.Error())
			return
		}
		fmt.Fprintln(w, "OK "+hex.EncodeToString([]byte(b.String())))
	}
}

// peekLine renders the node's manifest echo plus the live checkpoint
// counter. The seed is hex-encoded: it is an arbitrary string that may
// contain spaces, and the line format is whitespace-delimited.
func (s *Server) peekLine() string {
	_, ckpt, err := s.engine.Peek()
	if err != nil {
		return "ERR " + err.Error()
	}
	man := s.engine.ManifestEcho()
	return fmt.Sprintf(
		"OK epoch=%d checkpoint=%d blocks=%d blocksize=%d shards=%d cshards=%d shard=%d memory=%d shuffleratio=%g monolithic=%t constanttime=%t insecure=%t seed=%s",
		man.Epoch, ckpt, man.Blocks, man.BlockSize, man.Shards,
		man.ClusterShards, man.ShardIndex, man.MemoryBytes,
		man.ShuffleRatio, man.MonolithicShuffle, man.ConstantTime,
		man.Insecure, hex.EncodeToString([]byte(man.Seed)))
}
