// Wire-level tests for the oblivious key–value verbs and their STATS
// counters — the serving-layer face of internal/okv.
package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/okv"
)

// rawConn is a bare protocol connection for malformed-line tests the
// typed client cannot produce.
type rawConn struct {
	w *bufio.Writer
	r *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{w: bufio.NewWriter(conn), r: bufio.NewReader(conn)}
}

func (rc *rawConn) roundTrip(t *testing.T, line string) string {
	t.Helper()
	fmt.Fprintln(rc.w, line)
	if err := rc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := rc.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

// startKVServer is startServer with the KV layer laid over the
// engine.
func startKVServer(t *testing.T) (string, *Server, *okv.Store) {
	t.Helper()
	e, err := engine.New(engine.Options{
		Blocks:      512,
		BlockSize:   64,
		MemoryBytes: 16 << 10,
		Insecure:    true,
		Seed:        "kv-server-test",
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	store, err := okv.New(okv.Options{
		Backend:        e,
		SlotsPerBucket: 2,
		MaxValueBytes:  128,
		Insecure:       true,
		Seed:           "kv-server-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, Config{Engine: e, KV: store})
	return addr, srv, store
}

// TestKVVerbs drives the full verb set over real TCP through the
// pipelining client: set, update, hit, miss, empty value, delete
// (present and absent), value-cap refusal.
func TestKVVerbs(t *testing.T) {
	addr, _, store := startKVServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key := []byte("alice")
	if _, ok, err := c.KGet(key); err != nil || ok {
		t.Fatalf("KGet before set = (ok=%v, err=%v), want miss", ok, err)
	}
	if err := c.KSet(key, []byte("patient file #1842")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.KGet(key); err != nil || !ok || string(v) != "patient file #1842" {
		t.Fatalf("KGet = (%q, %v, %v)", v, ok, err)
	}
	if err := c.KSet(key, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.KGet(key); err != nil || !ok || string(v) != "updated" {
		t.Fatalf("KGet after update = (%q, %v, %v)", v, ok, err)
	}
	// Empty value: a hit, distinguishable from a miss.
	if err := c.KSet([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.KGet([]byte("empty")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("KGet(empty value) = (%q, %v, %v), want empty hit", v, ok, err)
	}
	// Binary keys and values survive the hex framing.
	bkey := []byte{0x00, '\n', ' ', 0xff}
	bval := bytes.Repeat([]byte{0x00, 0xff}, 40)
	if err := c.KSet(bkey, bval); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.KGet(bkey); err != nil || !ok || !bytes.Equal(v, bval) {
		t.Fatalf("KGet(binary) = (%d bytes, %v, %v)", len(v), ok, err)
	}
	// Over-cap value surfaces the typed refusal as an ERR line.
	if err := c.KSet(key, make([]byte, store.MaxValueBytes()+1)); err == nil || !strings.Contains(err.Error(), "over MaxValueBytes") {
		t.Fatalf("over-cap KSET: %v", err)
	}
	// Deletes: present then absent.
	if existed, err := c.KDel(key); err != nil || !existed {
		t.Fatalf("KDel(present) = (%v, %v)", existed, err)
	}
	if existed, err := c.KDel(key); err != nil || existed {
		t.Fatalf("KDel(absent) = (%v, %v)", existed, err)
	}
	if _, ok, err := c.KGet(key); err != nil || ok {
		t.Fatalf("KGet after delete = (ok=%v, err=%v), want miss", ok, err)
	}
	if n := store.Len(); n != 2 {
		t.Fatalf("store.Len() = %d, want 2 (empty + binary)", n)
	}
}

// TestKVStatsCounters is the STATS regression alongside the per-shard
// stats tests: the kv_* keys must be present, must reconcile exactly
// with the driven workload, and must be absent without the KV layer.
func TestKVStatsCounters(t *testing.T) {
	addr, _, _ := startKVServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 3 sets (2 inserts + 1 update), 4 gets (1 miss), 2 dels (1 absent).
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"a", "3"}} {
		if err := c.KSet([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []string{"a", "b", "a", "ghost"} {
		if _, _, err := c.KGet([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []string{"b", "ghost"} {
		if _, err := c.KDel([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}

	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"kv_count":  1, // a remains
		"kv_gets":   4,
		"kv_sets":   3,
		"kv_dels":   2,
		"kv_misses": 2, // ghost get + ghost del
	}
	for k, n := range want {
		got, err := client.StatInt(kv, k)
		if err != nil {
			t.Fatalf("STATS %s: %v (line: %v)", k, err, kv)
		}
		if got != n {
			t.Errorf("STATS %s = %d, want %d", k, got, n)
		}
	}
	if _, err := client.StatInt(kv, "kv_capacity"); err != nil {
		t.Errorf("STATS kv_capacity missing: %v", err)
	}

	// A plain block server must not advertise KV counters.
	plainAddr, _ := startServer(t, Config{})
	pc, err := client.Dial(plainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pkv, err := pc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pkv["kv_gets"]; ok {
		t.Error("plain block server advertises kv_gets")
	}
}

// TestKVModeProtocolBoundaries: K verbs without the KV layer are
// refused with a helpful error; raw WRITE under KV mode is refused
// (the block space backs the table) while raw READ stays available;
// malformed K lines get usage errors without killing the connection.
func TestKVModeProtocolBoundaries(t *testing.T) {
	// No KV layer: K verbs refused.
	plainAddr, _ := startServer(t, Config{})
	pc, err := client.Dial(plainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, _, err := pc.KGet([]byte("k")); err == nil || !strings.Contains(err.Error(), "kv disabled") {
		t.Fatalf("KGET without KV layer: %v", err)
	}

	// KV mode: raw WRITE refused, raw READ served.
	addr, _, _ := startKVServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, make([]byte, 64)); err == nil || !strings.Contains(err.Error(), "WRITE disabled") {
		t.Fatalf("raw WRITE in KV mode: %v", err)
	}
	if _, err := c.Read(0); err != nil {
		t.Fatalf("raw READ in KV mode: %v", err)
	}

	// Malformed K lines: usage/parse errors, connection survives.
	raw := dialRaw(t, addr)
	for _, tc := range []struct{ send, wantPrefix string }{
		{"KGET", "ERR usage: KGET"},
		{"KSET", "ERR usage: KSET"},
		{"KGET zz", "ERR bad hex key"},
		{"KSET 61 zz", "ERR bad hex value"},
		{"KDEL 61 62", "ERR usage: KDEL"},
		{"KGET 61", "MISS"},
	} {
		resp := raw.roundTrip(t, tc.send)
		if !strings.HasPrefix(resp, tc.wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", tc.send, resp, tc.wantPrefix)
		}
	}
}

// TestKVConcurrentClients: concurrent connections hammer disjoint key
// ranges through the pipelining client; every client sees
// read-your-writes on its own keys and the store's counters reconcile.
func TestKVConcurrentClients(t *testing.T) {
	addr, _, store := startKVServer(t)
	const clients, opsPer = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < opsPer; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				v := []byte(fmt.Sprintf("w%d-v%d", w, i))
				if err := c.KSet(k, v); err != nil {
					errs <- fmt.Errorf("worker %d set %d: %w", w, i, err)
					return
				}
				got, ok, err := c.KGet(k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					errs <- fmt.Errorf("worker %d get %d = (%q, %v, %v)", w, i, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := store.Len(); n != clients*opsPer {
		t.Fatalf("store.Len() = %d, want %d", n, clients*opsPer)
	}
	st := store.Stats()
	if st.Sets != clients*opsPer || st.Gets != clients*opsPer || st.Misses != 0 {
		t.Fatalf("counters %+v do not reconcile with %d sets + %d gets", st, clients*opsPer, clients*opsPer)
	}
}
