// Goroutine accounting on shutdown: Server.Close must join the
// batcher, every connection reader and the accept loop — with clients
// still attached and traffic in flight — returning the process to its
// pre-construction goroutine count once the engine closes too.
package server

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func waitGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	e, err := engine.New(engine.Options{
		Blocks:      256,
		BlockSize:   32,
		MemoryBytes: 4 << 10,
		Insecure:    true,
		Seed:        "server-leak-test",
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: e, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Attach live clients and leave them connected across Close: the
	// reader goroutines must be unblocked by Close itself, not by
	// clients politely hanging up.
	conns := make([]net.Conn, 0, 4)
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		fmt.Fprintf(conn, "READ %d\n", i)
		resp, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil || !strings.HasPrefix(resp, "OK") {
			t.Fatalf("conn %d: READ -> %q, %v", i, resp, err)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	for _, c := range conns {
		c.Close()
	}
	e.Close()
	waitGoroutinesBack(t, base)
}
