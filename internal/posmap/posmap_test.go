package posmap

import (
	"testing"
	"testing/quick"

	"repro/internal/blockcipher"
)

func newPM(t *testing.T, blocks, leaves int64) *PositionMap {
	t.Helper()
	m, err := NewPositionMap(blocks, leaves, blockcipher.NewRNGFromString("pm"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewPositionMapValidation(t *testing.T) {
	rng := blockcipher.NewRNGFromString("x")
	if _, err := NewPositionMap(0, 4, rng); err == nil {
		t.Error("accepted zero blocks")
	}
	if _, err := NewPositionMap(4, 0, rng); err == nil {
		t.Error("accepted zero leaves")
	}
	if _, err := NewPositionMap(4, 4, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestPositionMapStartsUnmapped(t *testing.T) {
	m := newPM(t, 8, 4)
	for a := int64(0); a < 8; a++ {
		leaf, err := m.Get(a)
		if err != nil {
			t.Fatal(err)
		}
		if leaf != NoLeaf {
			t.Fatalf("Get(%d) = %d, want NoLeaf", a, leaf)
		}
	}
	if m.Size() != 8 || m.Leaves() != 4 {
		t.Fatalf("Size/Leaves = %d/%d", m.Size(), m.Leaves())
	}
}

func TestPositionMapSetGet(t *testing.T) {
	m := newPM(t, 8, 4)
	if err := m.Set(3, 2); err != nil {
		t.Fatal(err)
	}
	leaf, _ := m.Get(3)
	if leaf != 2 {
		t.Fatalf("Get(3) = %d, want 2", leaf)
	}
	if err := m.Set(3, NoLeaf); err != nil {
		t.Fatalf("Set(NoLeaf): %v", err)
	}
	if leaf, _ := m.Get(3); leaf != NoLeaf {
		t.Fatalf("Get(3) = %d after unmapping", leaf)
	}
}

func TestPositionMapBounds(t *testing.T) {
	m := newPM(t, 8, 4)
	if _, err := m.Get(-1); err == nil {
		t.Error("Get(-1) passed")
	}
	if _, err := m.Get(8); err == nil {
		t.Error("Get(8) passed")
	}
	if err := m.Set(0, 4); err == nil {
		t.Error("Set(leaf=4) passed with 4 leaves")
	}
	if err := m.Set(0, -2); err == nil {
		t.Error("Set(leaf=-2) passed")
	}
	if _, err := m.Remap(99); err == nil {
		t.Error("Remap(99) passed")
	}
}

func TestRemapInRangeAndRecorded(t *testing.T) {
	m := newPM(t, 16, 8)
	for i := 0; i < 200; i++ {
		addr := int64(i % 16)
		leaf, err := m.Remap(addr)
		if err != nil {
			t.Fatal(err)
		}
		if leaf < 0 || leaf >= 8 {
			t.Fatalf("Remap leaf %d out of range", leaf)
		}
		got, _ := m.Get(addr)
		if got != leaf {
			t.Fatalf("Get after Remap = %d, want %d", got, leaf)
		}
	}
}

func TestRemapUniform(t *testing.T) {
	m := newPM(t, 1, 8)
	const trials = 8000
	counts := make([]int, 8)
	for i := 0; i < trials; i++ {
		leaf, _ := m.Remap(0)
		counts[leaf]++
	}
	expected := float64(trials) / 8
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 24.32 { // 7 dof, 99.9%
		t.Fatalf("Remap distribution chi2 = %.2f, counts %v", chi2, counts)
	}
}

func TestRemapAllAndClear(t *testing.T) {
	m := newPM(t, 32, 16)
	m.RemapAll()
	for a := int64(0); a < 32; a++ {
		leaf, _ := m.Get(a)
		if leaf == NoLeaf {
			t.Fatalf("address %d unmapped after RemapAll", a)
		}
	}
	m.Clear()
	for a := int64(0); a < 32; a++ {
		if leaf, _ := m.Get(a); leaf != NoLeaf {
			t.Fatalf("address %d mapped after Clear", a)
		}
	}
}

func TestTierString(t *testing.T) {
	if TierStorage.String() != "storage" || TierMemory.String() != "memory" {
		t.Fatal("Tier.String() wrong")
	}
}

func TestNewPermutationListValidation(t *testing.T) {
	if _, err := NewPermutationList(0); err == nil {
		t.Error("accepted zero blocks")
	}
	if _, err := NewPermutationList(-1); err == nil {
		t.Error("accepted negative blocks")
	}
}

func TestPermutationListDefaults(t *testing.T) {
	l, err := NewPermutationList(4)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(0); a < 4; a++ {
		e, err := l.Lookup(a)
		if err != nil {
			t.Fatal(err)
		}
		if e.Tier != TierStorage || e.Slot != a || e.Touched {
			t.Fatalf("Lookup(%d) = %+v, want identity storage entry", a, e)
		}
	}
	if l.Size() != 4 {
		t.Fatalf("Size() = %d", l.Size())
	}
}

func TestInitRandomIsPermutation(t *testing.T) {
	l, _ := NewPermutationList(64)
	rng := blockcipher.NewRNGFromString("initrand")
	perm := l.InitRandom(rng)
	seen := make([]bool, 64)
	for _, s := range perm {
		if s < 0 || s >= 64 || seen[s] {
			t.Fatalf("InitRandom produced invalid permutation: %v", perm)
		}
		seen[s] = true
	}
	if err := l.ValidateStoragePermutation(); err != nil {
		t.Fatal(err)
	}
}

func TestSetMemoryAndStorage(t *testing.T) {
	l, _ := NewPermutationList(4)
	if err := l.SetMemory(2); err != nil {
		t.Fatal(err)
	}
	e, _ := l.Lookup(2)
	if e.Tier != TierMemory {
		t.Fatalf("Lookup(2).Tier = %v, want memory", e.Tier)
	}
	if l.InMemoryCount() != 1 {
		t.Fatalf("InMemoryCount() = %d, want 1", l.InMemoryCount())
	}
	if err := l.SetStorage(2, 9); err != nil {
		t.Fatal(err)
	}
	e, _ = l.Lookup(2)
	if e.Tier != TierStorage || e.Slot != 9 || e.Touched {
		t.Fatalf("Lookup(2) = %+v after SetStorage", e)
	}
	addrs := l.StorageAddrs()
	if len(addrs) != 4 {
		t.Fatalf("StorageAddrs() = %v", addrs)
	}
}

func TestMarkTouchedEnforcesSquareRootInvariant(t *testing.T) {
	l, _ := NewPermutationList(4)
	if err := l.MarkTouched(1); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkTouched(1); err == nil {
		t.Fatal("second MarkTouched(1) in one period passed; invariant not enforced")
	}
	l.ResetPeriod()
	if err := l.MarkTouched(1); err != nil {
		t.Fatalf("MarkTouched after ResetPeriod: %v", err)
	}
	l.SetMemory(3)
	if err := l.MarkTouched(3); err == nil {
		t.Fatal("MarkTouched on memory-resident block passed")
	}
}

func TestPermutationListBounds(t *testing.T) {
	l, _ := NewPermutationList(4)
	if _, err := l.Lookup(-1); err == nil {
		t.Error("Lookup(-1) passed")
	}
	if err := l.SetMemory(4); err == nil {
		t.Error("SetMemory(4) passed")
	}
	if err := l.SetStorage(5, 0); err == nil {
		t.Error("SetStorage(5) passed")
	}
	if err := l.MarkTouched(-2); err == nil {
		t.Error("MarkTouched(-2) passed")
	}
}

func TestValidateStoragePermutationDetectsCollision(t *testing.T) {
	l, _ := NewPermutationList(4)
	l.SetStorage(0, 1)
	l.SetStorage(1, 1) // collision
	if err := l.ValidateStoragePermutation(); err == nil {
		t.Fatal("duplicate slot not detected")
	}
}

func TestInitRandomClearsState(t *testing.T) {
	l, _ := NewPermutationList(16)
	rng := blockcipher.NewRNGFromString("clear")
	l.SetMemory(3)
	l.MarkTouched(5)
	l.InitRandom(rng)
	if l.InMemoryCount() != 0 {
		t.Fatal("InitRandom left blocks in memory")
	}
	e, _ := l.Lookup(5)
	if e.Touched {
		t.Fatal("InitRandom left touched bits set")
	}
}

func TestPermutationListProperty(t *testing.T) {
	// Property: after any sequence of SetMemory/SetStorage with
	// distinct slots, ValidateStoragePermutation holds.
	f := func(ops []uint16) bool {
		l, _ := NewPermutationList(32)
		nextSlot := int64(100)
		for _, op := range ops {
			addr := int64(op % 32)
			if op%2 == 0 {
				l.SetMemory(addr)
			} else {
				l.SetStorage(addr, nextSlot)
				nextSlot++
			}
		}
		return l.ValidateStoragePermutation() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
