// Package posmap holds the two control-layer lookup structures the
// paper keeps inside the secure shelter: the Path ORAM position map
// (logical block → leaf) and H-ORAM's permutation list (logical block
// → current tier and slot, plus the touched bit that enforces the
// square-root "each storage block read at most once per period"
// invariant).
package posmap

import (
	"fmt"

	"repro/internal/blockcipher"
	"repro/internal/ctops"
)

// NoLeaf marks a position-map entry whose block is not currently
// mapped into the tree.
const NoLeaf = int64(-1)

// PositionMap maps logical block addresses to Path ORAM leaves.
type PositionMap struct {
	// The leaf assignments are secret: leaking which leaf an address
	// maps to is leaking the very path identity ORAM randomizes.
	//
	//horam:secret
	leaves []int64
	nLeaf  int64
	rng    *blockcipher.RNG
	ct     bool
}

// NewPositionMap creates a map for `blocks` addresses over a tree with
// nLeaf leaves. All entries start unmapped (NoLeaf); Path ORAM
// variants that pre-populate call RemapAll first.
func NewPositionMap(blocks, nLeaf int64, rng *blockcipher.RNG) (*PositionMap, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("posmap: block count must be positive, got %d", blocks)
	}
	if nLeaf <= 0 {
		return nil, fmt.Errorf("posmap: leaf count must be positive, got %d", nLeaf)
	}
	if rng == nil {
		return nil, fmt.Errorf("posmap: nil RNG")
	}
	leaves := make([]int64, blocks)
	for i := range leaves {
		leaves[i] = NoLeaf
	}
	return &PositionMap{leaves: leaves, nLeaf: nLeaf, rng: rng}, nil
}

// Size returns the number of addresses.
func (m *PositionMap) Size() int64 { return int64(len(m.leaves)) }

// Leaves returns the number of leaves positions are drawn from.
func (m *PositionMap) Leaves() int64 { return m.nLeaf }

func (m *PositionMap) check(addr int64) error {
	if addr < 0 || addr >= int64(len(m.leaves)) {
		return fmt.Errorf("posmap: address %d out of range [0,%d)", addr, len(m.leaves))
	}
	return nil
}

// SetConstantTime switches the map's lookup discipline. When on,
// Get/Set/Remap stop indexing the leaf array by address — a
// secret-dependent memory access a co-located adversary can observe
// through the cache — and instead run one full-length fixed-order scan
// per call with branchless selects, so the touch sequence depends only
// on the map's public size. Results are identical in both modes.
func (m *PositionMap) SetConstantTime(on bool) { m.ct = on }

// ConstantTime reports whether the scan discipline is active.
func (m *PositionMap) ConstantTime() bool { return m.ct }

// ctGet scans the whole leaf array for addr's entry.
//
//horam:constant-time
//horam:secret addr
func (m *PositionMap) ctGet(addr int64) int64 {
	leaf := NoLeaf
	for j := range m.leaves {
		mm := ctops.Eq64(int64(j), addr)
		leaf = ctops.Select64(mm, m.leaves[j], leaf)
	}
	return leaf
}

// ctSet writes leaf into addr's entry via a masked full-length pass.
//
//horam:constant-time
//horam:secret addr leaf
func (m *PositionMap) ctSet(addr, leaf int64) {
	for j := range m.leaves {
		mm := ctops.Eq64(int64(j), addr)
		m.leaves[j] = ctops.Select64(mm, leaf, m.leaves[j])
	}
}

// Get returns the leaf addr is mapped to, or NoLeaf.
func (m *PositionMap) Get(addr int64) (int64, error) {
	if err := m.check(addr); err != nil {
		return 0, err
	}
	if m.ct {
		return m.ctGet(addr), nil
	}
	return m.leaves[addr], nil
}

// Set pins addr to leaf.
func (m *PositionMap) Set(addr, leaf int64) error {
	if err := m.check(addr); err != nil {
		return err
	}
	if leaf != NoLeaf && (leaf < 0 || leaf >= m.nLeaf) {
		return fmt.Errorf("posmap: leaf %d out of range [0,%d)", leaf, m.nLeaf)
	}
	if m.ct {
		m.ctSet(addr, leaf)
		return nil
	}
	m.leaves[addr] = leaf
	return nil
}

// Remap assigns addr a fresh uniformly random leaf and returns it.
// This is the remap-on-access at the heart of Path ORAM's security.
// The RNG draw order is identical in both lookup disciplines, so the
// leaf streams — and therefore the device traces — match across modes.
func (m *PositionMap) Remap(addr int64) (int64, error) {
	if err := m.check(addr); err != nil {
		return 0, err
	}
	leaf := m.rng.Int63n(m.nLeaf)
	if m.ct {
		m.ctSet(addr, leaf)
		return leaf, nil
	}
	m.leaves[addr] = leaf
	return leaf, nil
}

// GetBatch fills dst[i] with the leaf addrs[i] maps to (NoLeaf for
// addresses outside the map, such as the constant-time stash's Empty
// sentinel), in one pass over the leaf array regardless of how many
// addresses are asked for. pathoram's constant-time eviction uses it
// to join a fixed-length stash snapshot against the map without
// per-candidate indexed loads. dst must be as long as addrs.
//
//horam:constant-time
//horam:secret addrs
func (m *PositionMap) GetBatch(addrs, dst []int64) {
	for i := range dst {
		dst[i] = NoLeaf
	}
	for j := range m.leaves {
		lj := m.leaves[j]
		jj := int64(j)
		for i := range addrs {
			mm := ctops.Eq64(addrs[i], jj)
			dst[i] = ctops.Select64(mm, lj, dst[i])
		}
	}
}

// RemapAll assigns every address an independent random leaf.
func (m *PositionMap) RemapAll() {
	for i := range m.leaves {
		m.leaves[i] = m.rng.Int63n(m.nLeaf)
	}
}

// Clear unmaps every address.
func (m *PositionMap) Clear() {
	for i := range m.leaves {
		m.leaves[i] = NoLeaf
	}
}

// Export returns a copy of the full leaf assignment, indexed by
// address — the snapshot subsystem's view of the map.
func (m *PositionMap) Export() []int64 {
	out := make([]int64, len(m.leaves))
	copy(out, m.leaves)
	return out
}

// Import replaces the leaf assignment with a previously Exported one.
func (m *PositionMap) Import(leaves []int64) error {
	if len(leaves) != len(m.leaves) {
		return fmt.Errorf("posmap: import of %d leaves into a map of %d addresses", len(leaves), len(m.leaves))
	}
	for addr, leaf := range leaves {
		if leaf != NoLeaf && (leaf < 0 || leaf >= m.nLeaf) {
			return fmt.Errorf("posmap: import: address %d leaf %d out of range [0,%d)", addr, leaf, m.nLeaf)
		}
	}
	copy(m.leaves, leaves)
	return nil
}

// Tier says which physical layer currently holds a block.
type Tier uint8

// Tiers of the H-ORAM hierarchy.
const (
	TierStorage Tier = iota // flat storage layer, addressed by slot
	TierMemory              // in-memory Path ORAM tree (or its stash)
)

// String names the tier for reports.
func (t Tier) String() string {
	if t == TierStorage {
		return "storage"
	}
	return "memory"
}

// Entry is one permutation-list record: where a logical block lives
// now and whether its storage slot was already read this period.
type Entry struct {
	Tier    Tier
	Slot    int64 // storage slot when Tier == TierStorage
	Touched bool  // storage slot consumed this access period
}

// PermutationList is H-ORAM's control structure for the storage layer.
// It records, per logical address, a boolean "is the block already in
// memory" and its storage slot otherwise — exactly the two fields the
// paper's §4.1.1 prescribes — plus the per-period touched bit.
type PermutationList struct {
	entries []Entry
}

// NewPermutationList creates a list for `blocks` addresses, all
// initially in storage with slot equal to their address (callers
// install a real permutation with SetStorage or InitRandom).
func NewPermutationList(blocks int64) (*PermutationList, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("posmap: block count must be positive, got %d", blocks)
	}
	entries := make([]Entry, blocks)
	for i := range entries {
		entries[i] = Entry{Tier: TierStorage, Slot: int64(i)}
	}
	return &PermutationList{entries: entries}, nil
}

// InitRandom installs a fresh uniformly random address→slot permutation
// over [0, Size()) and clears all touched bits and memory residency.
// It returns the permutation used, indexed by address.
func (l *PermutationList) InitRandom(rng *blockcipher.RNG) []int64 {
	n := len(l.entries)
	perm := rng.Perm(n)
	out := make([]int64, n)
	for addr := range l.entries {
		l.entries[addr] = Entry{Tier: TierStorage, Slot: int64(perm[addr])}
		out[addr] = int64(perm[addr])
	}
	return out
}

// Size returns the number of addresses.
func (l *PermutationList) Size() int64 { return int64(len(l.entries)) }

// Export returns a copy of every entry, indexed by address — the
// snapshot subsystem's view of the list.
func (l *PermutationList) Export() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Import replaces the list with a previously Exported one and
// re-validates the storage-slot injection, so a corrupted snapshot
// cannot install two blocks in one slot.
func (l *PermutationList) Import(entries []Entry) error {
	if len(entries) != len(l.entries) {
		return fmt.Errorf("posmap: import of %d entries into a list of %d addresses", len(entries), len(l.entries))
	}
	prev := l.entries
	l.entries = make([]Entry, len(entries))
	copy(l.entries, entries)
	if err := l.ValidateStoragePermutation(); err != nil {
		l.entries = prev
		return err
	}
	return nil
}

func (l *PermutationList) check(addr int64) error {
	if addr < 0 || addr >= int64(len(l.entries)) {
		return fmt.Errorf("posmap: address %d out of range [0,%d)", addr, len(l.entries))
	}
	return nil
}

// Lookup returns the entry for addr.
func (l *PermutationList) Lookup(addr int64) (Entry, error) {
	if err := l.check(addr); err != nil {
		return Entry{}, err
	}
	return l.entries[addr], nil
}

// SetMemory records that addr now lives in the memory tier.
func (l *PermutationList) SetMemory(addr int64) error {
	if err := l.check(addr); err != nil {
		return err
	}
	l.entries[addr].Tier = TierMemory
	return nil
}

// SetStorage records that addr lives in storage at slot, with the
// touched bit cleared.
func (l *PermutationList) SetStorage(addr, slot int64) error {
	if err := l.check(addr); err != nil {
		return err
	}
	l.entries[addr] = Entry{Tier: TierStorage, Slot: slot}
	return nil
}

// MarkTouched sets the touched bit of addr. It fails if the block is
// not in storage or the bit is already set — a violated square-root
// invariant is a bug in the caller, not a recoverable condition, but
// we surface it as an error so tests can assert on it.
func (l *PermutationList) MarkTouched(addr int64) error {
	if err := l.check(addr); err != nil {
		return err
	}
	e := &l.entries[addr]
	if e.Tier != TierStorage {
		return fmt.Errorf("posmap: MarkTouched(%d): block is in memory", addr)
	}
	if e.Touched {
		return fmt.Errorf("posmap: MarkTouched(%d): slot %d already read this period (square-root invariant violated)", addr, e.Slot)
	}
	e.Touched = true
	return nil
}

// ResetPeriod clears every touched bit (the per-period state).
func (l *PermutationList) ResetPeriod() {
	for i := range l.entries {
		l.entries[i].Touched = false
	}
}

// InMemoryCount returns how many blocks are resident in memory.
func (l *PermutationList) InMemoryCount() int64 {
	var n int64
	for i := range l.entries {
		if l.entries[i].Tier == TierMemory {
			n++
		}
	}
	return n
}

// StorageAddrs returns all addresses currently in the storage tier, in
// ascending order.
func (l *PermutationList) StorageAddrs() []int64 {
	out := make([]int64, 0, len(l.entries))
	for a := range l.entries {
		if l.entries[a].Tier == TierStorage {
			out = append(out, int64(a))
		}
	}
	return out
}

// ValidateStoragePermutation checks that the storage slots of all
// storage-resident blocks are distinct — i.e. the list is a partial
// injection into storage. Used by property tests after shuffles.
func (l *PermutationList) ValidateStoragePermutation() error {
	seen := make(map[int64]int64)
	for a := range l.entries {
		e := l.entries[a]
		if e.Tier != TierStorage {
			continue
		}
		if prev, dup := seen[e.Slot]; dup {
			return fmt.Errorf("posmap: addresses %d and %d share storage slot %d", prev, a, e.Slot)
		}
		seen[e.Slot] = int64(a)
	}
	return nil
}
