package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/snapshot"
)

func durableOpts(dir string) Options {
	return Options{
		Blocks:      256,
		BlockSize:   32,
		MemoryBytes: 2 << 10, // 64-slot memory tier: small budget, frequent shuffles
		Key:         testKey(),
		DataDir:     dir,
	}
}

func payloadFor(addr int64, generation int, size int) []byte {
	p := bytes.Repeat([]byte{0}, size)
	copy(p, fmt.Sprintf("blk-%d-gen-%d", addr, generation))
	return p
}

// TestSnapshotRoundTrip is the core durability contract: write a
// workload, snapshot, reopen from disk, and every block — whether it
// was resident in the durable storage tier or in the volatile memory
// tier at snapshot time — reads back with its last written contents.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	model := make(map[int64][]byte)
	rng := blockcipher.NewRNGFromString("core-persist")
	var reqs []*Request
	for i := 0; i < 300; i++ {
		addr := rng.Int63n(opts.Blocks)
		if rng.Intn(3) == 0 {
			data := payloadFor(addr, i, opts.BlockSize)
			model[addr] = data
			reqs = append(reqs, &Request{Op: OpWrite, Addr: addr, Data: data})
		} else {
			reqs = append(reqs, &Request{Op: OpRead, Addr: addr})
		}
	}
	if err := c.Batch(reqs); err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if c.Stats().Shuffles == 0 {
		t.Fatal("workload never crossed a shuffle period; grow it so the test covers post-shuffle restores")
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	preStats := c.Stats()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Restore(opts)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	if r.Epoch() != 1 {
		t.Fatalf("Epoch after first restore = %d, want 1", r.Epoch())
	}
	if got := r.Stats(); got.Stats != preStats.Stats {
		t.Fatalf("restored counters %+v != saved %+v", got.Stats, preStats.Stats)
	}
	for addr := int64(0); addr < opts.Blocks; addr++ {
		want, ok := model[addr]
		if !ok {
			want = make([]byte, opts.BlockSize)
		}
		got, err := r.Read(addr)
		if err != nil {
			t.Fatalf("Read(%d) after restore: %v", addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d after restore = %q, want %q", addr, got, want)
		}
	}
	// The restored instance keeps serving writes (and can snapshot
	// again at a later epoch).
	data := payloadFor(7, 999, opts.BlockSize)
	if err := r.Write(7, data); err != nil {
		t.Fatalf("Write after restore: %v", err)
	}
	if err := r.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot after restore: %v", err)
	}
}

// TestRestoreChain restores twice in a row, checking the epoch keeps
// climbing and the data stays intact.
func TestRestoreChain(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	data := payloadFor(3, 0, opts.BlockSize)
	if err := c.Write(3, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	c.Close()

	for epoch := uint64(1); epoch <= 2; epoch++ {
		r, err := Restore(opts)
		if err != nil {
			t.Fatalf("Restore #%d: %v", epoch, err)
		}
		if r.Epoch() != epoch {
			t.Fatalf("Epoch = %d, want %d", r.Epoch(), epoch)
		}
		got, err := r.Read(3)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("block 3 = %q, want %q", got, data)
		}
		if err := r.SaveSnapshot(); err != nil {
			t.Fatalf("SaveSnapshot: %v", err)
		}
		r.Close()
	}
}

// TestRestorePersistsEpochImmediately: a boot that crashes before its
// first explicit checkpoint must still never be followed by a boot at
// the same epoch — the epoch bump is made durable inside Restore
// itself, or the crashed boot's nonce/RNG streams would replay.
func TestRestorePersistsEpochImmediately(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	c.Close()

	r1, err := Restore(opts)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r1.Epoch() != 1 {
		t.Fatalf("Epoch = %d, want 1", r1.Epoch())
	}
	// Simulate a crash: no SaveSnapshot, no Close.

	r2, err := Restore(opts)
	if err != nil {
		t.Fatalf("second Restore: %v", err)
	}
	defer r2.Close()
	if r2.Epoch() != 2 {
		t.Fatalf("Epoch after crash-restore = %d, want 2 (epoch bump was not persisted)", r2.Epoch())
	}
	r1.Close()
}

// TestStaleSnapshotRefused runs traffic past another shuffle after the
// last snapshot: the storage file advances beyond the checkpoint and
// the restore must refuse rather than resume inconsistent state.
func TestStaleSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	// Drive traffic until at least one more shuffle completes.
	rng := blockcipher.NewRNGFromString("stale")
	for c.Stats().Shuffles == 0 {
		var reqs []*Request
		for i := 0; i < 64; i++ {
			reqs = append(reqs, &Request{Op: OpRead, Addr: rng.Int63n(opts.Blocks)})
		}
		if err := c.Batch(reqs); err != nil {
			t.Fatalf("Batch: %v", err)
		}
	}
	c.Close()

	_, err = Restore(opts)
	if err == nil {
		t.Fatal("Restore accepted a snapshot older than the storage image")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("err = %v, want a stale-snapshot refusal", err)
	}
}

// TestTornSnapshotRefused truncates and bit-flips state.snap: the
// checksum (and, for flips past it, the authentication tag) must
// reject the file.
func TestTornSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.Write(5, payloadFor(5, 0, opts.BlockSize)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	c.Close()

	statePath := filepath.Join(dir, StateFileName)
	raw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// Truncation.
	if err := os.WriteFile(statePath, raw[:len(raw)/2], 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Restore(opts); err == nil {
		t.Fatal("Restore accepted a truncated snapshot")
	}

	// Bit flip in the sealed payload.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x10
	if err := os.WriteFile(statePath, flipped, 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Restore(opts); err == nil {
		t.Fatal("Restore accepted a bit-flipped snapshot")
	}

	// Wrong key: the container verifies but the seal must not.
	if err := os.WriteFile(statePath, raw, 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	bad := opts
	bad.Key = bytes.Repeat([]byte{0xee}, 32)
	if _, err := Restore(bad); err == nil {
		t.Fatal("Restore accepted the snapshot under a different master key")
	}

	// And the pristine bytes still restore.
	r, err := Restore(opts)
	if err != nil {
		t.Fatalf("Restore of pristine snapshot: %v", err)
	}
	defer r.Close()
	got, err := r.Read(5)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payloadFor(5, 0, opts.BlockSize)) {
		t.Fatal("restored block 5 has wrong contents")
	}
}

// TestTornShuffleRefused forges a mid-shuffle generation marker: the
// restore must report a torn storage image.
func TestTornShuffleRefused(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	c.Close()
	if err := snapshot.WriteGen(filepath.Join(dir, GenFileName), snapshot.Gen{Started: 1, Completed: 0}); err != nil {
		t.Fatalf("WriteGen: %v", err)
	}
	_, err = Restore(opts)
	if err == nil {
		t.Fatal("Restore accepted a torn (mid-shuffle) storage image")
	}
	if !strings.Contains(err.Error(), "torn") {
		t.Fatalf("err = %v, want a torn-image refusal", err)
	}
}

// TestFreshOpenClearsStaleSnapshot ensures Open never leaves a
// restorable snapshot pointing at a reinitialised storage file.
func TestFreshOpenClearsStaleSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	c.Close()

	c2, err := Open(opts) // fresh layout over the same dir
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	c2.Close()
	if _, err := os.Stat(filepath.Join(dir, StateFileName)); !os.IsNotExist(err) {
		t.Fatal("fresh Open left the previous state.snap behind")
	}
	if _, err := Restore(opts); err == nil {
		t.Fatal("Restore succeeded against a reinitialised layout with no snapshot")
	}
}
