package core

import (
	"bytes"
	"testing"
)

func testKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}

func open(t *testing.T) *Client {
	t.Helper()
	c, err := Open(Options{Blocks: 256, BlockSize: 64, MemoryBytes: 32 << 10, Key: testKey()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenValidation(t *testing.T) {
	base := Options{Blocks: 64, BlockSize: 64, MemoryBytes: 16 << 10, Key: testKey()}

	bad := base
	bad.Blocks = 0
	if _, err := Open(bad); err == nil {
		t.Error("accepted zero blocks")
	}
	bad = base
	bad.MemoryBytes = 0
	if _, err := Open(bad); err == nil {
		t.Error("accepted zero memory")
	}
	bad = base
	bad.Key = []byte("short")
	if _, err := Open(bad); err == nil {
		t.Error("accepted short key")
	}
	bad = base
	bad.BlockSize = -1
	if _, err := Open(bad); err == nil {
		t.Error("accepted negative block size")
	}
	// No key needed when insecure.
	ok := base
	ok.Key = nil
	ok.Insecure = true
	if _, err := Open(ok); err != nil {
		t.Errorf("insecure open failed: %v", err)
	}
}

func TestDefaultBlockSize(t *testing.T) {
	c, err := Open(Options{Blocks: 64, MemoryBytes: 64 << 10, Key: testKey()})
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize() = %d, want %d", c.BlockSize(), DefaultBlockSize)
	}
}

func TestReadWrite(t *testing.T) {
	c := open(t)
	want := bytes.Repeat([]byte{7}, 64)
	if err := c.Write(10, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip failed")
	}
}

func TestClientImplementsStore(t *testing.T) {
	var _ Store = open(t)
}

func TestBatch(t *testing.T) {
	c := open(t)
	var reqs []*Request
	for a := int64(0); a < 32; a++ {
		reqs = append(reqs, &Request{Op: 1 /* write */, Addr: a, Data: bytes.Repeat([]byte{byte(a)}, 64)})
	}
	if err := c.Batch(reqs); err != nil {
		t.Fatal(err)
	}
	read := &Request{Addr: 9}
	if err := c.Batch([]*Request{read}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read.Result, bytes.Repeat([]byte{9}, 64)) {
		t.Fatal("batch read wrong")
	}
}

func TestStatsProgress(t *testing.T) {
	c := open(t)
	c.Write(0, make([]byte, 64))
	c.Read(0)
	st := c.Stats()
	if st.Requests != 2 {
		t.Fatalf("Requests = %d, want 2", st.Requests)
	}
	if st.SimulatedTime <= 0 {
		t.Fatal("no simulated time accrued")
	}
	if st.AccessTime+st.ShuffleTime != st.SimulatedTime {
		t.Fatal("time buckets do not sum to total")
	}
	if c.Engine() == nil {
		t.Fatal("Engine() nil")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() int64 {
		c, err := Open(Options{Blocks: 128, BlockSize: 32, MemoryBytes: 8 << 10,
			Insecure: true, Seed: "fixed"})
		if err != nil {
			t.Fatal(err)
		}
		for a := int64(0); a < 64; a++ {
			c.Write(a, make([]byte, 32))
		}
		return int64(c.Stats().SimulatedTime)
	}
	if run() != run() {
		t.Fatal("same seed produced different simulated time")
	}
}
