// Durable storage and crash-safe snapshot/restore for a Client.
//
// With Options.DataDir set, the layout on disk is:
//
//	DataDir/storage.dat   sealed storage-tier slots (device.File)
//	DataDir/storage.gen   shuffle generation marker {started, completed}
//	DataDir/state.snap    sealed control-state snapshot (SaveSnapshot)
//
// The storage file is the durable ground truth for storage-resident
// blocks; state.snap recovers everything else — the permutation list,
// the memory tree's position map, stash and sealed device image, and
// the scheduler/miss-budget counters. The master key is NEVER written:
// the sealer, the snapshot sealer and every RNG stream are re-derived
// from the key the operator supplies at restart.
//
// Epochs. Each Restore bumps a key-derivation epoch (stored in the
// snapshot) and salts every derived nonce/RNG stream with it, so a
// rebooted instance can never replay the nonce sequence or randomness
// of a previous boot — re-sealing a block after a restore always uses
// a fresh CTR IV.
//
// Consistency. Storage slots are only written during shuffle periods;
// horam brackets each period's writes with the storage.gen marker
// ({G, G-1} before the first write, fsync then {G, G} after the last).
// A snapshot records the generation it was taken at, so Restore can
// decide exactly which images are safe: marker {G, G} equal to the
// snapshot's G resumes cleanly; completed > G means the storage file
// advanced past the checkpoint (writes since the snapshot are lost and
// the control state no longer matches — refused); started > completed
// means the process died inside a shuffle and the storage image itself
// is torn (refused). Refusal is always an explicit error, never a
// silent load of inconsistent state.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/simclock"
	"repro/internal/snapshot"
)

// File names inside Options.DataDir.
const (
	StorageFileName   = "storage.dat"
	GenFileName       = "storage.gen"
	StateFileName     = "state.snap"
	StatePrevFileName = "state.snap.prev"
)

func (c *Client) storagePath() string   { return filepath.Join(c.dataDir, StorageFileName) }
func (c *Client) genPath() string       { return filepath.Join(c.dataDir, GenFileName) }
func (c *Client) statePath() string     { return filepath.Join(c.dataDir, StateFileName) }
func (c *Client) statePrevPath() string { return filepath.Join(c.dataDir, StatePrevFileName) }

// wireDurability points cfg's storage tier at the backing file and
// installs the shuffle-generation marker hook.
func (c *Client) wireDurability(cfg *horam.Config, fsyncEvery int) error {
	if err := os.MkdirAll(c.dataDir, 0o700); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	cfg.Storage = func(p device.Profile, slotSize int, slots int64, clk *simclock.Clock) (device.Backend, error) {
		return device.NewFile(device.FileConfig{
			Path:       c.storagePath(),
			Profile:    p,
			SlotSize:   slotSize,
			Slots:      slots,
			Clock:      clk,
			FsyncEvery: fsyncEvery,
		})
	}
	cfg.ShuffleMark = func(gen int64, done bool) error {
		g := snapshot.Gen{Started: gen, Completed: gen}
		if !done {
			g.Completed = gen - 1
		}
		return snapshot.WriteGen(c.genPath(), g)
	}
	return nil
}

// clearStaleState removes leftover snapshots before a fresh Open
// reinitialises the storage file. A control snapshot from a previous
// layout must never be restorable over a re-permuted storage image.
func (c *Client) clearStaleState() error {
	if c.dataDir == "" {
		return nil
	}
	for _, p := range []string{c.statePath(), c.statePrevPath()} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// markFreshLayout makes a fresh Open's initial storage layout durable
// and writes the generation-0 marker.
func (c *Client) markFreshLayout() error {
	if c.dataDir == "" {
		return nil
	}
	if err := c.oram.SyncStorage(); err != nil {
		return err
	}
	return snapshot.WriteGen(c.genPath(), snapshot.Gen{})
}

// Epoch returns the client's key-derivation boot generation: 0 for a
// fresh Open, previous+1 after each Restore.
func (c *Client) Epoch() uint64 { return c.epoch }

// Checkpoint returns the number of SaveSnapshot calls over the
// instance's whole life (the counter survives restores). The engine
// uses it to verify that all shards restored from the SAME checkpoint.
func (c *Client) Checkpoint() uint64 { return c.checkpoint }

// DataDir returns the durable directory, or "" for a pure simulation.
func (c *Client) DataDir() string { return c.dataDir }

// SaveSnapshot captures the control state at a quiescent point, seals
// it, and atomically replaces DataDir/state.snap — first rotating the
// previous snapshot to state.snap.prev, so one older checkpoint stays
// recoverable (the engine rolls individual shards back to it when a
// crash lands midway through a multi-shard checkpoint). The client
// must have no unflushed requests; callers running traffic quiesce
// first (internal/engine blocks new batches and levels shards before
// asking every shard to save).
func (c *Client) SaveSnapshot() error {
	return c.SaveSnapshotAt(c.Checkpoint() + 1)
}

// SaveSnapshotAt saves a checkpoint with an explicit lifetime number,
// which must exceed the client's current one. The engine drives all
// its shards with ONE number (max across shards + 1) so that a
// transiently failed per-shard save — which leaves that shard's
// counter behind — re-aligns at the very next checkpoint instead of
// skewing the lockstep counters forever.
func (c *Client) SaveSnapshotAt(checkpoint uint64) error {
	c.mu.Lock()
	queued := len(c.pending)
	c.mu.Unlock()
	if queued > 0 {
		return fmt.Errorf("core: SaveSnapshot with %d unflushed requests; Flush first", queued)
	}
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	if checkpoint <= c.checkpoint {
		return fmt.Errorf("core: SaveSnapshotAt(%d): checkpoint numbers must grow (currently at %d)", checkpoint, c.checkpoint)
	}
	return c.saveLocked(checkpoint)
}

// saveLocked writes the snapshot under oramMu at the given lifetime
// checkpoint number. The epoch-persisting re-save a Restore performs
// passes the UNCHANGED current number (same Checkpoint, new Epoch): it
// must not advance the lockstep counter the engine compares across
// shards.
func (c *Client) saveLocked(ckpt uint64) error {
	if c.dataDir == "" {
		return errors.New("core: SaveSnapshot requires Options.DataDir")
	}
	shard, err := c.oram.CaptureSnapshot()
	if err != nil {
		return err
	}
	shard.Epoch = c.epoch
	shard.Checkpoint = ckpt
	// The snapshot's generation is only meaningful once the storage
	// writes it refers to are durable.
	if err := c.oram.SyncStorage(); err != nil {
		return err
	}
	payload, err := shard.Encode()
	if err != nil {
		return err
	}
	sealed, err := c.snapSealer.Seal(payload)
	if err != nil {
		return err
	}
	// Rotate, then write: if the write never lands, the previous
	// checkpoint is still at state.snap.prev and Restore falls back.
	if err := os.Rename(c.statePath(), c.statePrevPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: %w", err)
	}
	if err := snapshot.WriteFile(c.statePath(), sealed); err != nil {
		return err
	}
	c.checkpoint = ckpt
	return nil
}

// loadShard reads and authenticates one snapshot file.
func loadShard(sealer blockcipher.Sealer, path string) (*snapshot.Shard, error) {
	sealed, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := sealer.Open(sealed)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot %s does not authenticate (wrong key or tampered file): %w", filepath.Base(path), err)
	}
	return snapshot.DecodeShard(payload)
}

// Peek reads the durable directory's newest snapshot (falling back to
// the rotated previous one if the newest write never landed) and
// reports its epoch and checkpoint without building a client. The
// engine uses it to agree on one target checkpoint and one fresh boot
// epoch across all shards before restoring any of them.
func Peek(opts Options) (epoch, checkpoint uint64, err error) {
	opts, err = resolve(opts)
	if err != nil {
		return 0, 0, err
	}
	if opts.DataDir == "" {
		return 0, 0, errors.New("core: Peek requires Options.DataDir")
	}
	probe, _, err := prepare(opts, 0)
	if err != nil {
		return 0, 0, err
	}
	shard, err := loadShard(probe.snapSealer, probe.statePath())
	if os.IsNotExist(err) {
		shard, err = loadShard(probe.snapSealer, probe.statePrevPath())
	}
	if err != nil {
		return 0, 0, err
	}
	return shard.Epoch, shard.Checkpoint, nil
}

// Restore resumes a client from the image a previous SaveSnapshot left
// in opts.DataDir, at the newest recoverable checkpoint, booting at
// the stored epoch + 1. The options must carry the same geometry and
// key material as the instance that saved; the snapshot checksum,
// sealing tag, geometry echo and shuffle-generation marker are all
// verified before any state is adopted.
func Restore(opts Options) (*Client, error) {
	return restoreAt(opts, 0, false)
}

// RestoreCheckpoint resumes a client from the snapshot with the exact
// lifetime checkpoint number — the current one or the rotated previous
// one — booting at the given epoch. The engine uses it to roll every
// shard onto one consistent checkpoint cut with one shared fresh
// epoch, even when a crash interrupted the checkpoint loop.
func RestoreCheckpoint(opts Options, checkpoint, epoch uint64) (*Client, error) {
	return restoreAt(opts, epoch, true, checkpoint)
}

// restoreAt implements Restore and RestoreCheckpoint. With pin set,
// wantCkpt[0] selects the exact checkpoint and epoch is used verbatim;
// otherwise the newest available snapshot wins and the boot epoch is
// its stored epoch + 1.
func restoreAt(opts Options, epoch uint64, pin bool, wantCkpt ...uint64) (*Client, error) {
	opts, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if opts.DataDir == "" {
		return nil, errors.New("core: Restore requires Options.DataDir")
	}

	// Epoch 0 here only builds the (epoch-independent) snapshot-opening
	// key; the real client is prepared again below at the right epoch.
	probe, _, err := prepare(opts, 0)
	if err != nil {
		return nil, err
	}
	shard, err := loadShard(probe.snapSealer, probe.statePath())
	if os.IsNotExist(err) {
		// A crash between the rotate and the write of the last save:
		// the previous checkpoint is the newest complete one.
		shard, err = loadShard(probe.snapSealer, probe.statePrevPath())
	}
	if err != nil {
		return nil, err
	}
	if pin && shard.Checkpoint != wantCkpt[0] {
		prev, perr := loadShard(probe.snapSealer, probe.statePrevPath())
		if perr != nil {
			return nil, fmt.Errorf("core: no snapshot at checkpoint %d: current is %d and the previous copy is unreadable: %w", wantCkpt[0], shard.Checkpoint, perr)
		}
		if prev.Checkpoint != wantCkpt[0] {
			return nil, fmt.Errorf("core: no snapshot at checkpoint %d: have %d and %d", wantCkpt[0], shard.Checkpoint, prev.Checkpoint)
		}
		shard = prev
	}
	if !pin {
		epoch = shard.Epoch + 1
	}

	gen, err := snapshot.ReadGen(filepath.Join(opts.DataDir, GenFileName))
	if err != nil {
		return nil, fmt.Errorf("core: reading shuffle generation marker: %w", err)
	}
	if gen.Started != gen.Completed {
		return nil, fmt.Errorf("core: storage image is torn: crashed during shuffle generation %d (completed %d); the image cannot be resumed", gen.Started, gen.Completed)
	}
	if gen.Completed != shard.ShuffleGen {
		return nil, fmt.Errorf("core: snapshot is stale: taken at shuffle generation %d but storage is at %d; writes since the last checkpoint are unrecoverable", shard.ShuffleGen, gen.Completed)
	}

	c, cfg, err := prepare(opts, epoch)
	if err != nil {
		return nil, err
	}
	c.checkpoint = shard.Checkpoint
	c.oram, err = horam.Restore(cfg, shard)
	if err != nil {
		return nil, err
	}
	// Persist the epoch bump IMMEDIATELY (without advancing the
	// checkpoint counter): if this boot crashed before its first real
	// checkpoint, the next restore would otherwise read the old
	// snapshot, boot at the same epoch, and replay this boot's
	// nonce/RNG streams under the epoch-independent sealing key.
	if err := c.saveLocked(c.checkpoint); err != nil {
		c.oram.CloseStorage()
		return nil, fmt.Errorf("core: persisting restored epoch: %w", err)
	}
	return c, nil
}

// Close releases OS resources held by the durable backend (no-op for a
// pure simulation). It does not snapshot; callers that want the latest
// control state persisted call SaveSnapshot first.
func (c *Client) Close() error {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	return c.oram.CloseStorage()
}
