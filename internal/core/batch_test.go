package core

import (
	"bytes"
	"sync"
	"testing"
)

func TestReadWriteBatch(t *testing.T) {
	c := open(t)
	var addrs []int64
	var payloads [][]byte
	for a := int64(0); a < 24; a++ {
		addrs = append(addrs, a)
		payloads = append(payloads, bytes.Repeat([]byte{byte(a + 1)}, 64))
	}
	if err := c.WriteBatch(addrs, payloads); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("ReadBatch[%d] mismatch", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	c := open(t)
	if _, err := c.ReadBatch([]int64{0, 999}); err == nil {
		t.Error("ReadBatch accepted out-of-range address")
	}
	if err := c.WriteBatch([]int64{0}, nil); err == nil {
		t.Error("WriteBatch accepted mismatched lengths")
	}
	if err := c.WriteBatch([]int64{0}, [][]byte{{1, 2}}); err == nil {
		t.Error("WriteBatch accepted short payload")
	}
	if _, err := c.Enqueue(&Request{Op: OpWrite, Addr: 0, Data: []byte("short")}); err == nil {
		t.Error("Enqueue accepted short write payload")
	}
	if _, err := c.Enqueue(&Request{Addr: -1}); err == nil {
		t.Error("Enqueue accepted negative address")
	}
}

func TestEnqueueFlush(t *testing.T) {
	c := open(t)
	want := bytes.Repeat([]byte{42}, 64)
	wf, err := c.Enqueue(&Request{Op: OpWrite, Addr: 5, Data: want})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := c.Enqueue(&Request{Op: OpRead, Addr: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.PendingFutures(); n != 2 {
		t.Fatalf("PendingFutures = %d, want 2", n)
	}
	select {
	case <-rf.Done():
		t.Fatal("future completed before Flush")
	default:
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Wait(); err != nil {
		t.Fatal(err)
	}
	got, err := rf.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("enqueued read did not observe enqueued write")
	}
	if n := c.PendingFutures(); n != 0 {
		t.Fatalf("PendingFutures after flush = %d, want 0", n)
	}
	// Flush with nothing queued is a no-op.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainHookFiresBeforeFuturesResolve: the hook must observe the
// drain count before any waiter sees its future complete — the
// ordering internal/engine's per-shard accounting depends on.
func TestDrainHookFiresBeforeFuturesResolve(t *testing.T) {
	c := open(t)
	var drains []int
	c.SetDrainHook(func(n int) { drains = append(drains, n) })
	var futs []*Future
	for a := int64(0); a < 3; a++ {
		f, err := c.Enqueue(&Request{Op: OpRead, Addr: a})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	// Waiters sample the hook's view the moment their future resolves;
	// the hook appends before the futures close (both under the client
	// lock), so every waiter must observe a non-empty drain log.
	observed := make(chan int, len(futs))
	for _, f := range futs {
		go func(f *Future) {
			f.Wait()
			observed <- len(drains)
		}(f)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for range futs {
		if n := <-observed; n == 0 {
			t.Fatal("a future resolved before the drain hook fired")
		}
	}
	if len(drains) != 1 || drains[0] != 3 {
		t.Fatalf("drain hook observed %v, want one drain of 3", drains)
	}
	// An empty flush must not fire the hook; removal must stick even on
	// the Enqueue+Flush path that does fire it.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.SetDrainHook(nil)
	if _, err := c.Enqueue(&Request{Op: OpRead, Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(drains) != 1 {
		t.Fatalf("drain hook fired %d times, want 1", len(drains))
	}
}

// TestConcurrentClientUse hammers the client from many goroutines —
// mixed single ops, batches, enqueues and stats — to prove the mutex
// discipline under the race detector.
func TestConcurrentClientUse(t *testing.T) {
	c := open(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * 16)
			payload := bytes.Repeat([]byte{byte(w + 1)}, 64)
			for i := 0; i < 10; i++ {
				a := base + int64(i%16)
				if err := c.Write(a, payload); err != nil {
					t.Error(err)
					return
				}
				got, err := c.Read(a)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d: read-your-write violated at %d", w, a)
					return
				}
				f, err := c.Enqueue(&Request{Op: OpRead, Addr: a})
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.Flush(); err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Wait(); err != nil {
					t.Error(err)
					return
				}
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
}
