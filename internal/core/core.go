// Package core is the public face of the H-ORAM library: a small,
// stable client API over the full engine in internal/horam. It owns
// key handling (one 32-byte master key fans out to the sealer and the
// randomness), picks the paper's defaults for every knob, and offers
// both a simple Read/Write interface and the batched interface the
// scheduler was designed for.
//
// A minimal session:
//
//	client, err := core.Open(core.Options{
//	        Blocks:      1 << 16,      // 64 Mi of 1 KiB blocks
//	        MemoryBytes: 8 << 20,      // 8 MiB cache tier
//	        Key:         key,          // 32 bytes
//	})
//	...
//	err = client.Write(42, payload)
//	data, err := client.Read(42)
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/config"
	"repro/internal/horam"
	"repro/internal/obs"
)

// DefaultBlockSize is the paper's block size (1 KB).
const DefaultBlockSize = config.DefaultBlockSize

// Store is the uniform oblivious block-store interface all schemes in
// this repository satisfy; downstream code should depend on it rather
// than a concrete scheme.
type Store interface {
	// Read returns the BlockSize-byte contents of addr (zeros if the
	// block was never written).
	Read(addr int64) ([]byte, error)
	// Write stores data (exactly BlockSize bytes) at addr.
	Write(addr int64, data []byte) error
}

// Options configures a Client. It is the shared config.Common option
// set (see internal/config for every field and the functional-option
// constructors); zero values select the paper's defaults where one
// exists. Notes specific to this layer:
//
//   - Shards must be 0 or 1: a Client is one H-ORAM instance; the
//     sharded front end is internal/engine.
//   - DataDir enables the durable storage backend: the storage tier
//     becomes a preallocated device.File at DataDir/storage.dat, a
//     shuffle-generation marker is maintained at DataDir/storage.gen,
//     and SaveSnapshot/Restore persist the control state at
//     DataDir/state.snap. Open always REINITIALISES the storage file
//     (and removes any stale state.snap); resuming a previous image
//     goes through Restore. Empty keeps the in-memory simulator.
type Options = config.Common

// Client is an H-ORAM session. All methods are safe for concurrent
// use: the engine itself is single-threaded (the secure scheduler
// must observe one serial request stream), so the client serialises
// every engine entry on an internal mutex. Concurrent callers who
// want their requests grouped into one scheduler batch should use
// Enqueue/Flush or Batch rather than racing on Read/Write — see
// internal/server for the batching front end built on top.
//
// Two locks split the queue from the engine: Enqueue and
// PendingFutures only touch queue state (mu), so they never wait for
// an in-flight drain (oramMu) to finish — internal/engine scatters a
// batch across shards without stalling behind whichever shard is
// mid-drain.
type Client struct {
	oram      *horam.ORAM
	blockSize int
	blocks    int64

	dataDir    string // "" = in-memory simulation, nothing persisted
	epoch      uint64 // key-derivation boot generation (see persist.go)
	checkpoint uint64 // SaveSnapshot calls over the instance's life
	snapSealer blockcipher.Sealer

	oramMu sync.Mutex // serialises all oram entries

	mu        sync.Mutex // guards pending, futures, drainHook
	pending   []*Request
	futures   []*Future
	drainHook func(n int)
}

// resolve fills defaults and validates the options through the shared
// config rules, plus the one core-specific restriction: no sharding.
func resolve(opts Options) (Options, error) {
	opts = opts.WithDefaults()
	if err := opts.Validate("core"); err != nil {
		return opts, err
	}
	if opts.Shards > 1 {
		return opts, fmt.Errorf("core: Shards %d not supported by a single-instance client (use internal/engine)", opts.Shards)
	}
	return opts, nil
}

// Open validates the options and constructs a fresh client. With
// DataDir set, the durable storage file is (re)initialised from
// scratch — resuming a persisted image goes through Restore.
func Open(opts Options) (*Client, error) {
	opts, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	c, cfg, err := prepare(opts, 0)
	if err != nil {
		return nil, err
	}
	if err := c.clearStaleState(); err != nil {
		return nil, err
	}
	c.oram, err = horam.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := c.markFreshLayout(); err != nil {
		c.oram.CloseStorage()
		return nil, err
	}
	return c, nil
}

// prepare derives the epoch-salted key material and builds the horam
// configuration plus a client shell. Open uses epoch 0; Restore uses
// the snapshot's epoch + 1 so no RNG or nonce stream replays (see the
// epoch discussion in persist.go).
func prepare(opts Options, epoch uint64) (*Client, horam.Config, error) {
	seed := opts.Seed
	var sealer, snapSealer blockcipher.Sealer
	if opts.Insecure {
		sealer = blockcipher.NullSealer{}
		snapSealer = blockcipher.NullSealer{}
		if seed == "" {
			seed = "core-insecure"
		}
	} else {
		prf, err := blockcipher.NewPRF(opts.Key)
		if err != nil {
			return nil, horam.Config{}, err
		}
		if seed == "" {
			seed = string(prf.Derive("client-seed", 32))
		}
		// The sealing KEY is epoch-independent (pre-crash ciphertext
		// must open after a restore); only the nonce stream is salted.
		rng := blockcipher.NewRNG(prf.Derive(fmt.Sprintf("sealer-rng-epoch-%d", epoch), 32))
		sealer, err = blockcipher.NewAESSealer(opts.Key, rng)
		if err != nil {
			return nil, horam.Config{}, err
		}
		snapRNG := blockcipher.NewRNG(prf.Derive(fmt.Sprintf("snapshot-nonce-epoch-%d", epoch), 32))
		snapSealer, err = blockcipher.NewAESSealer(prf.Derive("snapshot-key", 32), snapRNG)
		if err != nil {
			return nil, horam.Config{}, err
		}
	}
	if epoch > 0 {
		seed = fmt.Sprintf("%s/epoch-%d", seed, epoch)
	}

	c := &Client{
		blockSize:  opts.BlockSize,
		blocks:     opts.Blocks,
		dataDir:    opts.DataDir,
		epoch:      epoch,
		snapSealer: snapSealer,
	}
	cfg := horam.Config{
		Blocks:            opts.Blocks,
		BlockSize:         opts.BlockSize,
		MemoryBytes:       opts.MemoryBytes,
		ShuffleRatio:      opts.ShuffleRatio,
		MonolithicShuffle: opts.MonolithicShuffle,
		Stages:            opts.Stages,
		SealWorkers:       opts.SealWorkers,
		ConstantTime:      opts.ConstantTime,
		Sealer:            sealer,
		RNG:               blockcipher.NewRNGFromString(seed),
	}
	if opts.DataDir != "" {
		if err := c.wireDurability(&cfg, opts.FsyncEvery); err != nil {
			return nil, horam.Config{}, err
		}
	}
	return c, cfg, nil
}

// BlockSize returns the client's block size in bytes.
func (c *Client) BlockSize() int { return c.blockSize }

// Blocks returns the logical data set size N in blocks.
func (c *Client) Blocks() int64 { return c.blocks }

// Read implements Store.
func (c *Client) Read(addr int64) ([]byte, error) {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	return c.oram.Read(addr)
}

// Write implements Store.
func (c *Client) Write(addr int64, data []byte) error {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	return c.oram.Write(addr, data)
}

// Request mirrors horam.Request for batch submission.
type Request = horam.Request

// Op mirrors horam.Op for batch submission.
type Op = horam.Op

// Request operations, re-exported so batch callers need not import
// the engine package.
const (
	OpRead  = horam.OpRead
	OpWrite = horam.OpWrite
)

// Batch queues the requests and runs the scheduler until all of them
// complete. Results land in each request's Result field. Batching is
// the intended operating mode: a full reorder buffer lets the secure
// scheduler group hits and misses with minimal dummy padding.
func (c *Client) Batch(reqs []*Request) error {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	return c.oram.RunBatch(reqs)
}

// Stats is a snapshot of the client's scheme counters and timing.
type Stats struct {
	horam.Stats
	SimulatedTime time.Duration
	AccessTime    time.Duration
	ShuffleTime   time.Duration
}

// Stats returns the counters accumulated so far.
func (c *Client) Stats() Stats {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	return Stats{
		Stats:         c.oram.Stats(),
		SimulatedTime: c.oram.Clock().Now(),
		AccessTime:    c.oram.AccessTime(),
		ShuffleTime:   c.oram.ShuffleTime(),
	}
}

// PadToCycles runs dummy scheduler cycles — bus-indistinguishable
// from real ones — until the client's cumulative cycle count reaches
// target, and returns how many it ran (zero if the count was already
// there). internal/engine calls it at batch boundaries to equalise
// cycle counts across shards.
func (c *Client) PadToCycles(target int64) (int64, error) {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	return c.oram.PadToCycles(target)
}

// Engine exposes the underlying H-ORAM instance for experiment
// harnesses that need device stats or adversary hooks. Application
// code should not need it. The engine is not synchronised: do not
// drive it while other goroutines use the client.
func (c *Client) Engine() *horam.ORAM { return c.oram }

// SetObs wires the request-path tracer and the shuffle-quantum
// latency histogram through to the underlying H-ORAM instance (see
// horam.ORAM.SetObs). internal/engine calls it at Observe time.
func (c *Client) SetObs(tr *obs.Tracer, tid int, quantum *obs.Histogram) {
	c.oramMu.Lock()
	defer c.oramMu.Unlock()
	c.oram.SetObs(tr, tid, quantum)
}
