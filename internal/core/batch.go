// Batched and asynchronous request submission. The scheduler's whole
// design (§4.2: a reorder buffer grouping c in-memory hits with one
// storage load per cycle) only pays off when it sees many requests at
// once, so the library offers three grouping levels:
//
//   - ReadBatch/WriteBatch: synchronous convenience wrappers that run
//     one whole slice of requests as a single scheduler batch;
//   - Enqueue/Flush: an asynchronous future-based interface — any
//     number of goroutines Enqueue, one Flush drains everything queued
//     so far through the ROB as one batch and completes the futures.
//
// internal/server builds its network batching window on this layer.
package core

import (
	"fmt"
)

// Future is the handle returned by Enqueue: it completes when a later
// Flush (or FlushEvery loop) drains the request through the scheduler.
type Future struct {
	req  *Request
	done chan struct{}
	err  error
}

// Done returns a channel closed when the request has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the request completes and returns the block
// contents (for reads; previous contents for writes) or the batch
// error.
func (f *Future) Wait() ([]byte, error) {
	<-f.done
	if f.err != nil {
		return nil, f.err
	}
	return f.req.Result, nil
}

// validate rejects malformed requests up front so one bad request
// cannot poison a whole batch at Submit time.
func (c *Client) validate(r *Request) error {
	if r == nil {
		return fmt.Errorf("core: nil request")
	}
	if r.Addr < 0 || r.Addr >= c.blocks {
		return fmt.Errorf("core: address %d out of range [0,%d)", r.Addr, c.blocks)
	}
	if r.Op == OpWrite && len(r.Data) != c.blockSize {
		return fmt.Errorf("core: write payload %d bytes, want %d", len(r.Data), c.blockSize)
	}
	return nil
}

// Enqueue validates and queues a request without executing it, and
// returns a Future that completes at the next Flush. Safe for
// concurrent use; requests complete in enqueue order within a flush.
func (c *Client) Enqueue(r *Request) (*Future, error) {
	if err := c.validate(r); err != nil {
		return nil, err
	}
	f := &Future{req: r, done: make(chan struct{})}
	c.mu.Lock()
	c.pending = append(c.pending, r)
	c.futures = append(c.futures, f)
	c.mu.Unlock()
	return f, nil
}

// PendingFutures returns the number of enqueued, unflushed requests.
func (c *Client) PendingFutures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// SetDrainHook registers fn to observe every non-empty Flush drain
// that succeeds (failed drains complete their futures with the error
// but are not counted). It is called with the drained request count,
// under the engine lock (oramMu) — NOT the queue lock, so it runs
// concurrently with Enqueue/PendingFutures/SetDrainHook and must do
// its own synchronisation — and BEFORE the drained futures complete,
// so accounting done in the hook is guaranteed visible by the time
// any waiter sees its request finish. internal/engine uses it for
// per-shard drain histograms. A nil fn removes the hook for future
// flushes; a drain already in flight has snapshotted the previous
// hook and will still call it.
func (c *Client) SetDrainHook(fn func(n int)) {
	c.mu.Lock()
	c.drainHook = fn
	c.mu.Unlock()
}

// Flush drains every request enqueued so far through the scheduler as
// one ROB batch and completes their futures. Requests enqueued while
// the flush is running wait for the next Flush: the queue is
// snapshotted under the queue lock, then the drain runs under the
// engine lock only, so concurrent Enqueue callers never stall behind
// an in-flight drain. Concurrent Flush callers may drain their
// snapshots in either order — keep one flusher per client when
// cross-flush ordering matters (internal/engine runs exactly one per
// shard).
func (c *Client) Flush() error {
	c.mu.Lock()
	reqs, futs, hook := c.pending, c.futures, c.drainHook
	c.pending, c.futures = nil, nil
	c.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	c.oramMu.Lock()
	err := c.oram.RunBatch(reqs)
	if err == nil && hook != nil {
		hook(len(reqs))
	}
	for _, f := range futs {
		f.err = err
		close(f.done)
	}
	c.oramMu.Unlock()
	return err
}

// ReadBatch reads all addresses as a single scheduler batch and
// returns the block contents in the same order.
func (c *Client) ReadBatch(addrs []int64) ([][]byte, error) {
	reqs := make([]*Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = &Request{Op: OpRead, Addr: a}
		if err := c.validate(reqs[i]); err != nil {
			return nil, err
		}
	}
	if err := c.Batch(reqs); err != nil {
		return nil, err
	}
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		out[i] = r.Result
	}
	return out, nil
}

// WriteBatch writes payloads[i] to addrs[i] as a single scheduler
// batch.
func (c *Client) WriteBatch(addrs []int64, payloads [][]byte) error {
	if len(addrs) != len(payloads) {
		return fmt.Errorf("core: %d addresses but %d payloads", len(addrs), len(payloads))
	}
	reqs := make([]*Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = &Request{Op: OpWrite, Addr: a, Data: payloads[i]}
		if err := c.validate(reqs[i]); err != nil {
			return err
		}
	}
	return c.Batch(reqs)
}
