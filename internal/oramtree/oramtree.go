// Package oramtree provides the index arithmetic for Path ORAM trees:
// heap-numbered buckets, root-to-leaf paths, level queries and the
// bucket→device-slot layout. It holds no data; the pathoram, treetop
// and horam packages layer storage on top of this geometry.
package oramtree

import (
	"fmt"
	"math/bits"
)

// Geometry describes a complete binary Path ORAM tree.
//
// Levels counts edges from root to leaf: a tree with Levels = L has
// L+1 bucket levels (the root is level 0, leaves are level L), 2^L
// leaves and 2^(L+1) − 1 buckets. Each bucket holds Z block slots.
// Buckets are heap-numbered: the root is bucket 0 and bucket b has
// children 2b+1 and 2b+2.
type Geometry struct {
	Levels int // tree height in edges; leaves sit at this level
	Z      int // block slots per bucket
}

// ForCapacity returns the smallest geometry whose total slot count is
// at least `blocks` with bucket size z. Path ORAM stores N real blocks
// in a tree of ≥ 2N slots (≤ 50% utilisation, per the paper), so
// callers typically pass blocks = 2N.
func ForCapacity(blocks int64, z int) (Geometry, error) {
	if blocks <= 0 {
		return Geometry{}, fmt.Errorf("oramtree: capacity must be positive, got %d", blocks)
	}
	if z <= 0 {
		return Geometry{}, fmt.Errorf("oramtree: bucket size must be positive, got %d", z)
	}
	g := Geometry{Levels: 0, Z: z}
	for g.Slots() < blocks {
		g.Levels++
		if g.Levels > 62 {
			return Geometry{}, fmt.Errorf("oramtree: capacity %d too large", blocks)
		}
	}
	return g, nil
}

// FitCapacity returns the largest geometry whose total slot count does
// not exceed `slots` with bucket size z — the sizing rule for a tree
// that must fit a fixed memory budget (H-ORAM's cache tier). It fails
// if even a single bucket does not fit.
func FitCapacity(slots int64, z int) (Geometry, error) {
	if z <= 0 {
		return Geometry{}, fmt.Errorf("oramtree: bucket size must be positive, got %d", z)
	}
	if slots < int64(z) {
		return Geometry{}, fmt.Errorf("oramtree: budget of %d slots cannot hold one bucket of %d", slots, z)
	}
	g := Geometry{Levels: 0, Z: z}
	for {
		next := Geometry{Levels: g.Levels + 1, Z: z}
		if next.Levels > 62 || next.Slots() > slots {
			return g, nil
		}
		g = next
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Levels < 0 || g.Levels > 62 {
		return fmt.Errorf("oramtree: levels %d out of range [0,62]", g.Levels)
	}
	if g.Z <= 0 {
		return fmt.Errorf("oramtree: bucket size %d must be positive", g.Z)
	}
	return nil
}

// Leaves returns the number of leaves, 2^Levels.
func (g Geometry) Leaves() int64 { return 1 << uint(g.Levels) }

// Buckets returns the number of buckets, 2^(Levels+1) − 1.
func (g Geometry) Buckets() int64 { return (1 << uint(g.Levels+1)) - 1 }

// Slots returns the total number of block slots, Buckets · Z.
func (g Geometry) Slots() int64 { return g.Buckets() * int64(g.Z) }

// BucketAt returns the heap index of the bucket at the given level on
// the path from the root to leaf.
func (g Geometry) BucketAt(leaf int64, level int) int64 {
	// Level l holds buckets [2^l − 1, 2^(l+1) − 1); the path to `leaf`
	// passes through the one whose offset is the top l bits of leaf.
	return (1 << uint(level)) - 1 + (leaf >> uint(g.Levels-level))
}

// Path returns the heap indices of the buckets from the root (index 0
// of the result) down to leaf (last index). The slice has Levels+1
// entries.
func (g Geometry) Path(leaf int64) []int64 {
	p := make([]int64, g.Levels+1)
	for l := 0; l <= g.Levels; l++ {
		p[l] = g.BucketAt(leaf, l)
	}
	return p
}

// LevelOf returns the level of a heap-numbered bucket.
func (g Geometry) LevelOf(bucket int64) int {
	return bits.Len64(uint64(bucket)+1) - 1
}

// LeafOfBucket returns the smallest leaf whose path passes through
// bucket (i.e. the leftmost leaf of its subtree).
func (g Geometry) LeafOfBucket(bucket int64) int64 {
	level := g.LevelOf(bucket)
	offset := bucket - ((1 << uint(level)) - 1)
	return offset << uint(g.Levels-level)
}

// CommonLevel returns the deepest level at which the paths to leaves a
// and b share a bucket (0 = they only share the root). This is the
// level down to which a block mapped to leaf b may be evicted while
// the eviction walks the path of leaf a.
func (g Geometry) CommonLevel(a, b int64) int {
	x := a ^ b
	if x == 0 {
		return g.Levels
	}
	return g.Levels - bits.Len64(uint64(x))
}

// SlotBase returns the first device slot of a bucket under the
// canonical layout where bucket b occupies slots [b·Z, (b+1)·Z).
func (g Geometry) SlotBase(bucket int64) int64 { return bucket * int64(g.Z) }

// CheckLeaf returns an error unless leaf is a valid leaf index.
func (g Geometry) CheckLeaf(leaf int64) error {
	if leaf < 0 || leaf >= g.Leaves() {
		return fmt.Errorf("oramtree: leaf %d out of range [0,%d)", leaf, g.Leaves())
	}
	return nil
}

// CheckBucket returns an error unless bucket is a valid bucket index.
func (g Geometry) CheckBucket(bucket int64) error {
	if bucket < 0 || bucket >= g.Buckets() {
		return fmt.Errorf("oramtree: bucket %d out of range [0,%d)", bucket, g.Buckets())
	}
	return nil
}
