package oramtree

import (
	"testing"
	"testing/quick"
)

func TestForCapacity(t *testing.T) {
	cases := []struct {
		blocks int64
		z      int
		levels int
	}{
		{1, 4, 0},    // one bucket of 4 slots holds 1
		{4, 4, 0},    // exactly one bucket
		{5, 4, 1},    // needs 3 buckets
		{12, 4, 1},   // 3 buckets * 4 = 12
		{13, 4, 2},   // needs 7 buckets
		{1000, 4, 8}, // 511 buckets * 4 = 2044 ≥ 1000; 255*4=1020 ≥ 1000 → level 7? see assert below
	}
	for _, tc := range cases {
		g, err := ForCapacity(tc.blocks, tc.z)
		if err != nil {
			t.Fatalf("ForCapacity(%d, %d): %v", tc.blocks, tc.z, err)
		}
		if g.Slots() < tc.blocks {
			t.Errorf("ForCapacity(%d, %d): %d slots < requested", tc.blocks, tc.z, g.Slots())
		}
		// Minimality: one level less must not suffice (when possible).
		if g.Levels > 0 {
			smaller := Geometry{Levels: g.Levels - 1, Z: tc.z}
			if smaller.Slots() >= tc.blocks {
				t.Errorf("ForCapacity(%d, %d) = %d levels, but %d levels suffice", tc.blocks, tc.z, g.Levels, smaller.Levels)
			}
		}
	}
}

func TestForCapacityRejectsBadInput(t *testing.T) {
	if _, err := ForCapacity(0, 4); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := ForCapacity(-5, 4); err == nil {
		t.Error("accepted negative capacity")
	}
	if _, err := ForCapacity(10, 0); err == nil {
		t.Error("accepted zero bucket size")
	}
}

func TestValidate(t *testing.T) {
	if err := (Geometry{Levels: 3, Z: 4}).Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if err := (Geometry{Levels: -1, Z: 4}).Validate(); err == nil {
		t.Error("negative levels accepted")
	}
	if err := (Geometry{Levels: 3, Z: 0}).Validate(); err == nil {
		t.Error("zero Z accepted")
	}
	if err := (Geometry{Levels: 63, Z: 1}).Validate(); err == nil {
		t.Error("oversized levels accepted")
	}
}

func TestCounts(t *testing.T) {
	g := Geometry{Levels: 3, Z: 4}
	if g.Leaves() != 8 {
		t.Errorf("Leaves() = %d, want 8", g.Leaves())
	}
	if g.Buckets() != 15 {
		t.Errorf("Buckets() = %d, want 15", g.Buckets())
	}
	if g.Slots() != 60 {
		t.Errorf("Slots() = %d, want 60", g.Slots())
	}
}

func TestPath(t *testing.T) {
	g := Geometry{Levels: 3, Z: 4}
	// Leaf 0: root(0) -> 1 -> 3 -> 7.
	want := []int64{0, 1, 3, 7}
	got := g.Path(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(0) = %v, want %v", got, want)
		}
	}
	// Leaf 7 (rightmost): 0 -> 2 -> 6 -> 14.
	want = []int64{0, 2, 6, 14}
	got = g.Path(7)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(7) = %v, want %v", got, want)
		}
	}
	// Leaf 5: binary 101 -> 0, 2 (right), 5 (left), 12 (right).
	want = []int64{0, 2, 5, 12}
	got = g.Path(5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(5) = %v, want %v", got, want)
		}
	}
}

func TestPathChildRelation(t *testing.T) {
	g := Geometry{Levels: 6, Z: 4}
	for leaf := int64(0); leaf < g.Leaves(); leaf++ {
		p := g.Path(leaf)
		if p[0] != 0 {
			t.Fatalf("Path(%d) does not start at root", leaf)
		}
		for i := 1; i < len(p); i++ {
			parent := (p[i] - 1) / 2
			if parent != p[i-1] {
				t.Fatalf("Path(%d): bucket %d's parent is %d, path says %d", leaf, p[i], parent, p[i-1])
			}
		}
		if last := p[len(p)-1]; last != g.Leaves()-1+leaf {
			t.Fatalf("Path(%d) ends at %d, want %d", leaf, last, g.Leaves()-1+leaf)
		}
	}
}

func TestLevelOf(t *testing.T) {
	g := Geometry{Levels: 3, Z: 1}
	wants := map[int64]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 14: 3}
	for bucket, level := range wants {
		if got := g.LevelOf(bucket); got != level {
			t.Errorf("LevelOf(%d) = %d, want %d", bucket, got, level)
		}
	}
}

func TestLeafOfBucket(t *testing.T) {
	g := Geometry{Levels: 3, Z: 1}
	if got := g.LeafOfBucket(0); got != 0 {
		t.Errorf("LeafOfBucket(root) = %d, want 0", got)
	}
	if got := g.LeafOfBucket(2); got != 4 {
		t.Errorf("LeafOfBucket(2) = %d, want 4", got)
	}
	if got := g.LeafOfBucket(14); got != 7 {
		t.Errorf("LeafOfBucket(14) = %d, want 7", got)
	}
}

func TestCommonLevel(t *testing.T) {
	g := Geometry{Levels: 3, Z: 1}
	cases := []struct {
		a, b int64
		want int
	}{
		{0, 0, 3}, // same leaf: share whole path
		{0, 1, 2}, // differ in last bit
		{0, 2, 1},
		{0, 4, 0}, // opposite halves: only root
		{5, 7, 1},
		{6, 7, 2},
	}
	for _, tc := range cases {
		if got := g.CommonLevel(tc.a, tc.b); got != tc.want {
			t.Errorf("CommonLevel(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCommonLevelMatchesPathIntersection(t *testing.T) {
	g := Geometry{Levels: 5, Z: 1}
	f := func(aRaw, bRaw uint8) bool {
		a := int64(aRaw) % g.Leaves()
		b := int64(bRaw) % g.Leaves()
		pa, pb := g.Path(a), g.Path(b)
		deepest := 0
		for l := 0; l <= g.Levels; l++ {
			if pa[l] == pb[l] {
				deepest = l
			}
		}
		return g.CommonLevel(a, b) == deepest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotBase(t *testing.T) {
	g := Geometry{Levels: 2, Z: 4}
	if got := g.SlotBase(0); got != 0 {
		t.Errorf("SlotBase(0) = %d", got)
	}
	if got := g.SlotBase(3); got != 12 {
		t.Errorf("SlotBase(3) = %d, want 12", got)
	}
}

func TestCheckLeafAndBucket(t *testing.T) {
	g := Geometry{Levels: 2, Z: 4} // 4 leaves, 7 buckets
	if err := g.CheckLeaf(3); err != nil {
		t.Errorf("CheckLeaf(3): %v", err)
	}
	if err := g.CheckLeaf(4); err == nil {
		t.Error("CheckLeaf(4) passed on 4-leaf tree")
	}
	if err := g.CheckLeaf(-1); err == nil {
		t.Error("CheckLeaf(-1) passed")
	}
	if err := g.CheckBucket(6); err != nil {
		t.Errorf("CheckBucket(6): %v", err)
	}
	if err := g.CheckBucket(7); err == nil {
		t.Error("CheckBucket(7) passed on 7-bucket tree")
	}
}

func TestBucketAtConsistentWithPath(t *testing.T) {
	g := Geometry{Levels: 7, Z: 2}
	for leaf := int64(0); leaf < g.Leaves(); leaf += 13 {
		p := g.Path(leaf)
		for l := 0; l <= g.Levels; l++ {
			if got := g.BucketAt(leaf, l); got != p[l] {
				t.Fatalf("BucketAt(%d,%d) = %d, Path says %d", leaf, l, got, p[l])
			}
		}
	}
}
