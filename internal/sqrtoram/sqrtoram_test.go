package sqrtoram

import (
	"bytes"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/simclock"
)

func testConfig(blocks int64, blockSize int) Config {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(50 + i)
	}
	rng := blockcipher.NewRNGFromString("sqrt-test")
	sealer, err := blockcipher.NewAESSealer(key, rng.Fork("sealer"))
	if err != nil {
		panic(err)
	}
	return Config{Blocks: blocks, BlockSize: blockSize, Sealer: sealer, RNG: rng.Fork("oram")}
}

func build(t *testing.T, blocks int64, blockSize int) (*ORAM, *device.Sim) {
	t.Helper()
	cfg := testConfig(blocks, blockSize)
	clk := simclock.New()
	dev, err := device.New(device.PaperHDD(), cfg.SlotSize(), 2*blocks+64, clk)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	return o, dev
}

func TestValidation(t *testing.T) {
	cfg := testConfig(16, 32)
	clk := simclock.New()
	dev, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 64, clk)

	bad := cfg
	bad.Blocks = 0
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted zero blocks")
	}
	bad = cfg
	bad.Sealer = nil
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted nil sealer")
	}
	bad = cfg
	bad.RNG = nil
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted nil rng")
	}
	bad = cfg
	bad.Period = 100 // > √16 = 4 dummies
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted period exceeding dummy count")
	}
	if _, err := New(cfg, nil); err == nil {
		t.Error("accepted nil device")
	}
	tiny, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 4, clk)
	if _, err := New(cfg, tiny); err == nil {
		t.Error("accepted undersized device")
	}
}

func TestDefaults(t *testing.T) {
	o, _ := build(t, 100, 16)
	if o.Dummies() != 10 {
		t.Fatalf("Dummies() = %d, want 10", o.Dummies())
	}
	if o.Period() != 10 {
		t.Fatalf("Period() = %d, want 10", o.Period())
	}
}

func TestRoundTrip(t *testing.T) {
	o, _ := build(t, 64, 32)
	want := bytes.Repeat([]byte{0x42}, 32)
	if err := o.Write(10, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip failed")
	}
}

func TestSurvivesManyShuffles(t *testing.T) {
	const blocks = 64
	o, _ := build(t, blocks, 16)
	fill := func(b byte) []byte { return bytes.Repeat([]byte{b}, 16) }
	for a := int64(0); a < blocks; a++ {
		if err := o.Write(a, fill(byte(a))); err != nil {
			t.Fatal(err)
		}
	}
	rng := blockcipher.NewRNGFromString("sqrt-churn")
	for i := 0; i < 300; i++ {
		a := rng.Int63n(blocks)
		got, err := o.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(byte(a))) {
			t.Fatalf("Read(%d) corrupted at iteration %d", a, i)
		}
	}
	if o.Stats().Shuffles == 0 {
		t.Fatal("no shuffles happened in 364 accesses with period 8")
	}
}

func TestShuffleClearsShelterAndResetsPeriod(t *testing.T) {
	o, _ := build(t, 16, 8) // period 4
	for i := 0; i < 4; i++ {
		if _, err := o.Read(0); err != nil {
			t.Fatal(err)
		}
	}
	if o.Stats().Shuffles != 1 {
		t.Fatalf("Shuffles = %d after exactly one period, want 1", o.Stats().Shuffles)
	}
	if o.ShelterLen() != 0 {
		t.Fatalf("shelter has %d blocks after shuffle, want 0", o.ShelterLen())
	}
}

func TestShelterHitConsumesDummy(t *testing.T) {
	o, _ := build(t, 64, 8) // period 8
	if _, err := o.Read(5); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(5); err != nil { // now sheltered
		t.Fatal(err)
	}
	st := o.Stats()
	if st.ShelterHits != 1 || st.DummyReads != 1 {
		t.Fatalf("hits/dummy = %d/%d, want 1/1", st.ShelterHits, st.DummyReads)
	}
}

func TestEveryAccessIsExactlyOneStorageRead(t *testing.T) {
	o, dev := build(t, 64, 8)
	dev.ResetStats()
	reads := dev.Stats().Reads
	for i := 0; i < 7; i++ { // stop before the period-8 shuffle
		if _, err := o.Read(int64(i % 3)); err != nil {
			t.Fatal(err)
		}
		got := dev.Stats().Reads
		if got != reads+1 {
			t.Fatalf("access %d performed %d reads, want exactly 1", i, got-reads)
		}
		reads = got
	}
}

func TestNoSlotReadTwicePerPeriod(t *testing.T) {
	o, dev := build(t, 64, 8)
	seen := map[int64]bool{}
	violated := false
	dev.SetHook(func(_ string, op device.Op, slot int64) {
		if op != device.OpRead {
			return
		}
		if seen[slot] {
			violated = true
		}
		seen[slot] = true
	})
	// 7 accesses (one period is 8; the 8th triggers the shuffle whose
	// bulk scan legitimately re-reads).
	for i := 0; i < 7; i++ {
		if _, err := o.Read(int64(i % 4)); err != nil {
			t.Fatal(err)
		}
	}
	dev.SetHook(nil)
	if violated {
		t.Fatal("a storage slot was read twice within one access period")
	}
}

func TestShufflePassesCharged(t *testing.T) {
	cfg := testConfig(64, 8)
	cfg.ShufflePasses = 1
	clk1 := simclock.New()
	dev1, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 200, clk1)
	o1, err := New(cfg, dev1)
	if err != nil {
		t.Fatal(err)
	}

	cfg4 := testConfig(64, 8)
	cfg4.ShufflePasses = 4
	clk4 := simclock.New()
	dev4, _ := device.New(device.PaperHDD(), cfg4.SlotSize(), 200, clk4)
	o4, err := New(cfg4, dev4)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ { // exactly one shuffle each
		if _, err := o1.Read(int64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := o4.Read(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if o1.Stats().Shuffles != 1 || o4.Stats().Shuffles != 1 {
		t.Fatal("expected one shuffle in both configurations")
	}
	if clk4.Now() < 2*clk1.Now() {
		t.Fatalf("4-pass shuffle (%v) should cost much more than 1-pass (%v)", clk4.Now(), clk1.Now())
	}
}

func TestBounds(t *testing.T) {
	o, _ := build(t, 16, 8)
	if _, err := o.Read(-1); err == nil {
		t.Error("Read(-1) passed")
	}
	if _, err := o.Read(16); err == nil {
		t.Error("Read(16) passed")
	}
	if err := o.Write(0, make([]byte, 7)); err == nil {
		t.Error("short write passed")
	}
}
