// Package sqrtoram implements the square-root ORAM of Goldreich and
// Ostrovsky (§2.1.3 of the paper): N real blocks padded with √N
// dummies in a permuted flat store, a trusted shelter of √N blocks,
// and a full reshuffle every √N accesses.
//
// Every access costs exactly one storage read — either the requested
// block's permuted slot (miss) or the next unread dummy (hit in the
// shelter) — so the adversary sees a sequence of never-repeating,
// uniformly distributed slots. The price is the periodic reshuffle:
// with only O(√N) trusted memory the reshuffle must itself be
// oblivious, costing several passes over the whole store. The paper
// charges it O(4N); ShufflePasses models that multiplier.
package sqrtoram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/stash"
)

const headerSize = 8
const dummyAddr = int64(-1)

// Config parameterises a square-root ORAM.
type Config struct {
	// Blocks is the number of real blocks N.
	Blocks int64
	// BlockSize is the plaintext payload size.
	BlockSize int
	// Sealer encrypts slot records; required.
	Sealer blockcipher.Sealer
	// RNG must be dedicated to this instance.
	RNG *blockcipher.RNG
	// Period T: accesses between reshuffles. Zero selects ⌈√N⌉, the
	// classic choice (it also equals the dummy count).
	Period int64
	// ShufflePasses models the oblivious-shuffle cost as whole-store
	// read+write passes. Zero selects 4, matching the O(4N) the paper
	// charges the square-root baseline (§4.3.2). H-ORAM by contrast
	// shuffles with a single pass because its partitions fit in
	// trusted memory.
	ShufflePasses int
}

func (c Config) validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("sqrtoram: Blocks must be positive, got %d", c.Blocks)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("sqrtoram: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.Sealer == nil {
		return errors.New("sqrtoram: Sealer is required")
	}
	if c.RNG == nil {
		return errors.New("sqrtoram: RNG is required")
	}
	if c.Period < 0 || c.ShufflePasses < 0 {
		return errors.New("sqrtoram: Period and ShufflePasses must be non-negative")
	}
	return nil
}

// SlotSize returns the sealed on-device slot size implied by cfg.
func (c Config) SlotSize() int { return headerSize + c.BlockSize + c.Sealer.Overhead() }

// Stats counts scheme-level work.
type Stats struct {
	Accesses    int64 // logical accesses
	ShelterHits int64 // requests served from the shelter
	DummyReads  int64 // dummy slots consumed to mask shelter hits
	Shuffles    int64 // full reshuffles performed
}

// ORAM is a square-root ORAM over one storage device. Not safe for
// concurrent use.
type ORAM struct {
	cfg     Config
	dev     device.Device
	period  int64
	dummies int64
	passes  int

	// perm maps virtual index → device slot. Virtual indices [0,N) are
	// the real blocks by address; [N, N+dummies) are the dummies.
	perm    []int64
	shelter *stash.Stash
	used    int64 // accesses this period (== dummies consumed ceiling)
	stats   Stats

	slotBuf []byte
}

// New builds the ORAM, writing an initial permuted store of sealed
// zero blocks and dummies (setup, via the device's raw path when
// available).
func New(cfg Config, dev device.Device) (*ORAM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("sqrtoram: nil device")
	}
	if dev.SlotSize() != cfg.SlotSize() {
		return nil, fmt.Errorf("sqrtoram: device slot size %d, config needs %d", dev.SlotSize(), cfg.SlotSize())
	}
	dummies := int64(math.Ceil(math.Sqrt(float64(cfg.Blocks))))
	period := cfg.Period
	if period == 0 {
		period = dummies
	}
	if period > dummies {
		return nil, fmt.Errorf("sqrtoram: period %d exceeds dummy count %d; a hit run would exhaust the dummies", period, dummies)
	}
	passes := cfg.ShufflePasses
	if passes == 0 {
		passes = 4
	}
	total := cfg.Blocks + dummies
	if dev.Slots() < total {
		return nil, fmt.Errorf("sqrtoram: device has %d slots, need %d", dev.Slots(), total)
	}
	o := &ORAM{
		cfg:     cfg,
		dev:     dev,
		period:  period,
		dummies: dummies,
		passes:  passes,
		perm:    make([]int64, total),
		shelter: stash.New(0),
		slotBuf: make([]byte, cfg.SlotSize()),
	}
	if err := o.initStore(); err != nil {
		return nil, err
	}
	return o, nil
}

type rawWriter interface {
	WriteRaw(slot int64, src []byte) error
}

// initStore writes a freshly permuted store of zero blocks + dummies
// without charging simulated time.
func (o *ORAM) initStore() error {
	total := int64(len(o.perm))
	p := o.cfg.RNG.Perm(int(total))
	for v := int64(0); v < total; v++ {
		o.perm[v] = int64(p[v])
	}
	rw, hasRaw := o.dev.(rawWriter)
	zero := make([]byte, o.cfg.BlockSize)
	for v := int64(0); v < total; v++ {
		addr := v
		payload := zero
		if v >= o.cfg.Blocks {
			addr = dummyAddr
		}
		sealed, err := o.sealRecord(addr, payload)
		if err != nil {
			return err
		}
		if hasRaw {
			err = rw.WriteRaw(o.perm[v], sealed)
		} else {
			err = o.dev.Write(o.perm[v], sealed)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (o *ORAM) sealRecord(addr int64, payload []byte) ([]byte, error) {
	pt := make([]byte, headerSize+o.cfg.BlockSize)
	binary.BigEndian.PutUint64(pt[:headerSize], uint64(addr))
	copy(pt[headerSize:], payload)
	return o.cfg.Sealer.Seal(pt)
}

func (o *ORAM) openRecord(sealed []byte) (int64, []byte, error) {
	pt, err := o.cfg.Sealer.Open(sealed)
	if err != nil {
		return 0, nil, err
	}
	if len(pt) != headerSize+o.cfg.BlockSize {
		return 0, nil, fmt.Errorf("sqrtoram: record is %d bytes, want %d", len(pt), headerSize+o.cfg.BlockSize)
	}
	return int64(binary.BigEndian.Uint64(pt[:headerSize])), pt[headerSize:], nil
}

// Stats returns scheme-level counters.
func (o *ORAM) Stats() Stats { return o.stats }

// Period returns the reshuffle period T.
func (o *ORAM) Period() int64 { return o.period }

// Dummies returns the dummy block count.
func (o *ORAM) Dummies() int64 { return o.dummies }

// ShelterLen returns current shelter occupancy.
func (o *ORAM) ShelterLen() int { return o.shelter.Len() }

// Op selects the access type.
type Op uint8

// Access operations.
const (
	OpRead Op = iota
	OpWrite
)

// Access performs one square-root ORAM operation.
func (o *ORAM) Access(op Op, addr int64, data []byte) ([]byte, error) {
	if addr < 0 || addr >= o.cfg.Blocks {
		return nil, fmt.Errorf("sqrtoram: address %d out of range [0,%d)", addr, o.cfg.Blocks)
	}
	if op == OpWrite && len(data) != o.cfg.BlockSize {
		return nil, fmt.Errorf("sqrtoram: write payload %d bytes, want %d", len(data), o.cfg.BlockSize)
	}

	var current []byte
	if held, ok := o.shelter.Get(addr); ok {
		// Shelter hit: consume the next unread dummy so the storage
		// still sees exactly one fresh slot read.
		o.stats.ShelterHits++
		dummySlot := o.perm[o.cfg.Blocks+o.used]
		if err := o.dev.Read(dummySlot, o.slotBuf); err != nil {
			return nil, err
		}
		if _, _, err := o.openRecord(o.slotBuf); err != nil {
			return nil, err
		}
		o.stats.DummyReads++
		current = held
	} else {
		slot := o.perm[addr]
		if err := o.dev.Read(slot, o.slotBuf); err != nil {
			return nil, err
		}
		gotAddr, payload, err := o.openRecord(o.slotBuf)
		if err != nil {
			return nil, err
		}
		if gotAddr != addr {
			return nil, fmt.Errorf("sqrtoram: slot %d holds block %d, want %d", slot, gotAddr, addr)
		}
		current = payload
		if err := o.shelter.Put(addr, payload); err != nil {
			return nil, err
		}
	}

	out := make([]byte, o.cfg.BlockSize)
	copy(out, current)
	if op == OpWrite {
		stored := make([]byte, o.cfg.BlockSize)
		copy(stored, data)
		if err := o.shelter.Put(addr, stored); err != nil {
			return nil, err
		}
	}

	o.used++
	o.stats.Accesses++
	if o.used >= o.period {
		if err := o.reshuffle(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Read fetches the block at addr.
func (o *ORAM) Read(addr int64) ([]byte, error) { return o.Access(OpRead, addr, nil) }

// Write stores data at addr.
func (o *ORAM) Write(addr int64, data []byte) error {
	_, err := o.Access(OpWrite, addr, data)
	return err
}

// reshuffle rebuilds the store under a fresh permutation, charging
// ShufflePasses whole-store read+write passes to model the oblivious
// external shuffle, then clears the shelter.
func (o *ORAM) reshuffle() error {
	total := int64(len(o.perm))

	// Collect current contents: one sequential pass (part of pass 1).
	contents := make([][]byte, o.cfg.Blocks)
	for slot := int64(0); slot < total; slot++ {
		if err := o.dev.Read(slot, o.slotBuf); err != nil {
			return err
		}
		addr, payload, err := o.openRecord(o.slotBuf)
		if err != nil {
			return err
		}
		if addr == dummyAddr {
			continue
		}
		owned := make([]byte, o.cfg.BlockSize)
		copy(owned, payload)
		contents[addr] = owned
	}
	// Shelter copies are newer.
	for _, b := range o.shelter.Drain() {
		contents[b.Addr] = b.Data
	}

	// Fresh permutation; sequential write-back (completes pass 1).
	p := o.cfg.RNG.Perm(int(total))
	for v := int64(0); v < total; v++ {
		o.perm[v] = int64(p[v])
	}
	// Write in slot order so the device sees a sequential stream.
	bySlot := make([]int64, total) // slot → virtual index
	for v := int64(0); v < total; v++ {
		bySlot[o.perm[v]] = v
	}
	for slot := int64(0); slot < total; slot++ {
		v := bySlot[slot]
		addr := v
		var payload []byte
		if v >= o.cfg.Blocks {
			addr = dummyAddr
		} else {
			payload = contents[v]
		}
		sealed, err := o.sealRecord(addr, payload)
		if err != nil {
			return err
		}
		if err := o.dev.Write(slot, sealed); err != nil {
			return err
		}
	}

	// Remaining passes of the oblivious shuffle: the Melbourne-style
	// algorithms re-read and re-write the store. Model each pass as a
	// sequential read of every slot followed by a rewrite of the same
	// content (so the store is charged the traffic but unchanged).
	for pass := 1; pass < o.passes; pass++ {
		for slot := int64(0); slot < total; slot++ {
			if err := o.dev.Read(slot, o.slotBuf); err != nil {
				return err
			}
			if err := o.dev.Write(slot, o.slotBuf); err != nil {
				return err
			}
		}
	}

	o.used = 0
	o.stats.Shuffles++
	return nil
}
