package horam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/posmap"
	"repro/internal/shuffle"
	"repro/internal/stash"
)

// ErrPoisoned marks an instance whose shuffle failed mid-flight. A
// failed shuffle leaves partitions partially rewritten, the shuffle
// cursor advanced and the in-memory control state out of step with the
// device image, so no later operation can be trusted: the instance is
// poisoned and every subsequent entry point returns an error wrapping
// this sentinel. Recovery is a Restore from the last good snapshot
// (the generation marker refuses the torn storage image) or a fresh
// New.
var ErrPoisoned = errors.New("horam: instance poisoned by failed shuffle")

// shuffleState is the incremental shuffle state machine: the in-flight
// period's trusted pool and progress cursors. One quantum — the tree
// evict, or a single partition rewrite — executes per shuffle-mode
// scheduler cycle, so the period's O(window·partition) device work is
// spread across O(window) cycles instead of landing in one.
type shuffleState struct {
	active   bool
	evicted  bool          // the tree-evict quantum has run
	pool     []stash.Block // evicted blocks awaiting placement
	poolAddr map[int64]int // addr -> pool index, pending blocks only
	poolIdx  int
	shuffled int64 // partitions rewritten this period
	window   int64
}

// poison records the first shuffle failure; all later entry points
// fail with an error wrapping ErrPoisoned.
func (o *ORAM) poison(cause error) {
	if o.poisoned == nil {
		o.poisoned = fmt.Errorf("%w: %v", ErrPoisoned, cause)
	}
}

// shuffleWindow returns the number of partitions the current period
// must rewrite: all of them, or ⌈r·P⌉ with partial shuffling (§5.3.1).
func (o *ORAM) shuffleWindow() int64 {
	window := o.partitions
	if o.cfg.ShuffleRatio > 0 && o.cfg.ShuffleRatio < 1 {
		window = int64(float64(o.partitions)*o.cfg.ShuffleRatio + 0.5)
		if window < 1 {
			window = 1
		}
	}
	return window
}

// evictTree is the oblivious tree evict shared by both shuffle modes:
// the whole memory tree (real + dummy slots) is scanned into a trusted
// buffer, shuffled, and the dummies dropped, so the scan order reveals
// nothing about which slots were real. DrainAll performs the full
// sequential scan on the memory device (charging its time); the
// uniform shuffle stands in for the oblivious buffer shuffle — inside
// trusted memory any uniform permutation is admissible.
func (o *ORAM) evictTree() ([]stash.Block, error) {
	evicted, err := o.mem.DrainAll()
	if err != nil {
		return nil, err
	}
	items := make([][]byte, len(evicted))
	addrs := make([]int64, len(evicted))
	for i, b := range evicted {
		items[i] = b.Data
		addrs[i] = b.Addr
	}
	perm := shuffle.Random(len(items), o.cfg.RNG)
	items = shuffle.Apply(perm, items)
	addrs = shuffle.Apply(perm, addrs)
	o.stats.EvictedReal += int64(len(items))

	pool := make([]stash.Block, len(items))
	for i := range items {
		pool[i] = stash.Block{Addr: addrs[i], Data: items[i]}
	}
	return pool, nil
}

// evictAndShuffle runs the paper's shuffle period (§4.3) as one
// monolithic pass (Config.MonolithicShuffle):
//
//  1. oblivious tree evict (evictTree);
//  2. group & partition shuffle — the shuffle window's partitions are
//     processed left to right: read the partition sequentially, keep
//     its live cold blocks, concatenate the next piece of the evicted
//     hot data, shuffle in trusted memory (cache shuffle), write back
//     sequentially under a fresh intra-partition permutation;
//  3. a new empty tree (the DrainAll already re-sealed dummies) and a
//     cleared touched-bit state start the next access period.
//
// With ShuffleRatio r < 1 only ⌈r·√N⌉ partitions form the window each
// period (§5.3.1), cycling round-robin; slack slots absorb the extra
// hot data until each partition's next turn.
func (o *ORAM) evictAndShuffle() error {
	o.inShuffle = true
	defer func() { o.inShuffle = false }()
	return o.serial("shuffle", func() error {
		// Phase 1: oblivious tree evict.
		pool, err := o.evictTree()
		if err != nil {
			return err
		}

		// Phase 2: group & partition shuffle over the window.
		window := o.shuffleWindow()
		// Storage slots are only ever written here, so bracketing the
		// partition writes with generation marks gives the persistence
		// layer an exact consistency witness: started > completed on
		// disk means a crash tore this very loop.
		if o.cfg.ShuffleMark != nil {
			if err := o.cfg.ShuffleMark(o.shuffleGen+1, false); err != nil {
				return err
			}
		}
		poolIdx := 0
		shuffled := int64(0)
		for shuffled < window || poolIdx < len(pool) {
			if shuffled >= o.partitions {
				// Every partition visited and hot data still homeless:
				// the slack sizing is insufficient (cannot happen with
				// the shipped factors; guard against config drift).
				return fmt.Errorf("horam: shuffle could not place %d evicted blocks", len(pool)-poolIdx)
			}
			p := o.nextPart
			o.nextPart = (o.nextPart + 1) % o.partitions
			if _, err := o.shufflePartition(p, pool, &poolIdx); err != nil {
				return err
			}
			shuffled++
		}
		o.stats.PartShuffled += shuffled
		o.stats.Shuffles++

		// Phase 3: fresh period state.
		o.missCount = 0
		return o.endShufflePeriod()
	})
}

// beginShuffle arms the incremental state machine. The new access
// period's miss budget opens immediately: the loads issued by the
// shuffle-mode cycles that follow fill the freshly emptied tree and
// count against it, exactly as the first post-shuffle loads do in
// monolithic mode.
func (o *ORAM) beginShuffle() {
	o.sm = shuffleState{active: true, window: o.shuffleWindow()}
	o.missCount = 0
}

// shuffleQuantum executes one bounded slice of the in-flight period:
// the first quantum is the oblivious tree evict into the trusted pool;
// every later quantum rewrites exactly one partition, absorbing the
// next piece of the pool. The bus shape of each quantum is fixed — a
// sequential tree scan, or one sequential partition read + rewrite —
// independent of the real/dummy mix, so spreading the period across
// cycles reveals nothing the monolithic pass did not. Callers charge
// it to the "shuffle" accounting bucket via serial.
//
// Observability (SetObs) wraps the real work: the wall-clock duration
// of each quantum feeds the Timing-class quantum histogram, and a
// span tagged with the cycle/quantum indices lands in the trace
// buffer. Both are nil-safe no-ops when unwired, and the wall clock
// is only read when an observer is attached.
func (o *ORAM) shuffleQuantum() error {
	if o.obsQuantum == nil && !o.obsTracer.Enabled() {
		return o.runShuffleQuantum()
	}
	sp := o.obsTracer.Begin("quantum", o.obsTid)
	start := time.Now()
	err := o.runShuffleQuantum()
	o.obsQuantum.ObserveDuration(time.Since(start))
	sp.End(obs.Arg{Key: "cycle", Val: o.stats.Cycles},
		obs.Arg{Key: "quantum", Val: o.stats.ShuffleQuanta})
	return err
}

func (o *ORAM) runShuffleQuantum() error {
	o.inShuffle = true
	defer func() { o.inShuffle = false }()
	o.stats.ShuffleQuanta++

	if !o.sm.evicted {
		pool, err := o.evictTree()
		if err != nil {
			return err
		}
		o.sm.pool = pool
		o.sm.poolAddr = make(map[int64]int, len(pool))
		for i, b := range pool {
			o.sm.poolAddr[b.Addr] = i
		}
		o.sm.evicted = true
		if o.cfg.ShuffleMark != nil {
			if err := o.cfg.ShuffleMark(o.shuffleGen+1, false); err != nil {
				return err
			}
		}
		return nil
	}

	if o.sm.shuffled >= o.partitions && o.sm.poolIdx < len(o.sm.pool) {
		return fmt.Errorf("horam: shuffle could not place %d evicted blocks", len(o.sm.pool)-o.sm.poolIdx)
	}
	p := o.nextPart
	o.nextPart = (o.nextPart + 1) % o.partitions
	before := o.sm.poolIdx
	if _, err := o.shufflePartition(p, o.sm.pool, &o.sm.poolIdx); err != nil {
		return err
	}
	// Blocks absorbed into the partition left the pool: requests for
	// them are storage misses again, not pool hits.
	for i := before; i < o.sm.poolIdx; i++ {
		delete(o.sm.poolAddr, o.sm.pool[i].Addr)
	}
	o.sm.shuffled++

	if o.sm.shuffled >= o.sm.window && o.sm.poolIdx >= len(o.sm.pool) {
		o.stats.PartShuffled += o.sm.shuffled
		o.stats.Shuffles++
		o.sm = shuffleState{}
		// The loads issued while the shuffle was in flight already
		// belong to the new period, so missCount is NOT reset here —
		// beginShuffle opened the new budget.
		return o.endShufflePeriod()
	}
	return nil
}

// endShufflePeriod is the shared period epilogue: fresh touched-bit
// state, a repositioned storage head, and the durable generation
// marker (the generation's writes are synced before the marker
// declares them durable).
func (o *ORAM) endShufflePeriod() error {
	o.perm.ResetPeriod()
	o.storDev.ResetHead() // the next access is positioning-random
	o.shuffleGen++
	if o.cfg.ShuffleMark != nil {
		if err := o.SyncStorage(); err != nil {
			return err
		}
		if err := o.cfg.ShuffleMark(o.shuffleGen, true); err != nil {
			return err
		}
	}
	return nil
}

// FinishShuffle drives the in-flight incremental shuffle to
// completion, one quantum at a time (a no-op when none is pending).
// Quiesce points use it: a snapshot must sit at a period boundary, and
// finishing the pending quanta — rather than persisting the mid-flight
// pool — keeps the on-disk generation-marker protocol exactly as the
// monolithic mode defined it. Quanta run outside scheduler cycles
// here, so the cycle counter does not move and a leveled multi-shard
// engine stays leveled.
func (o *ORAM) FinishShuffle() error {
	if o.poisoned != nil {
		return o.poisoned
	}
	for o.sm.active {
		if err := o.serial("shuffle", o.shuffleQuantum); err != nil {
			o.poison(err)
			return err
		}
	}
	return nil
}

// shufflePartition reshuffles partition p, absorbing as much of the
// evicted pool (from *poolIdx on) as fits. It returns the number of
// pool blocks absorbed.
//
// The quantum runs entirely in the instance's persistent scratch: the
// partition is fetched with one vectored ReadSlots burst, the records
// are opened and re-sealed across the codec's worker pool (nonces are
// drawn serially in slot order, so the bytes match the serial
// implementation exactly), and written back with one WriteSlots burst.
// The meter charges and hook events are per slot in slot order either
// way — the bus-visible sequence is unchanged.
func (o *ORAM) shufflePartition(p int64, pool []stash.Block, poolIdx *int) (int, error) {
	base := p * o.partSlots
	sc := o.shufScratchFor(o.partSlots)

	// Sequential read: one burst for the whole partition, then a
	// parallel open into the read-phase plaintext slab.
	for i := int64(0); i < o.partSlots; i++ {
		sc.slots[i] = base + i
	}
	if err := o.storDev.ReadSlots(sc.slots, sc.sealedV); err != nil {
		return 0, err
	}
	if err := o.codec.openRun(sc.readPt, sc.sealedV); err != nil {
		return 0, err
	}

	// Collect live cold blocks. A slot is live iff the permutation
	// list still maps its block here — blocks fetched to memory this
	// (or an earlier partial-shuffle) period left stale ciphertext
	// behind. Payloads alias the read slab; the write phase encodes
	// into a separate slab, so no copy is needed.
	blocks := sc.recs[:0]
	for i := int64(0); i < o.partSlots; i++ {
		pt := sc.readPt[i]
		addr := int64(binary.BigEndian.Uint64(pt[:headerSize]))
		if addr == dummyAddr {
			continue
		}
		e, err := o.perm.Lookup(addr)
		if err != nil {
			return 0, err
		}
		if e.Tier != posmap.TierStorage || e.Slot != base+i {
			continue // stale copy
		}
		blocks = append(blocks, shufRec{addr, pt[headerSize:]})
	}

	// Concatenate the next piece of evicted hot data.
	absorbed := 0
	for int64(len(blocks)) < o.partSlots && *poolIdx < len(pool) {
		b := pool[*poolIdx]
		*poolIdx++
		blocks = append(blocks, shufRec{b.Addr, b.Data})
		absorbed++
	}
	sc.recs = blocks[:0]

	// Cache shuffle in trusted memory, then sequential write-back
	// under a fresh intra-partition permutation: encode every slot's
	// plaintext in slot order, batch-seal (nonce order = slot order),
	// one vectored write burst, then the permutation-list updates.
	permIdx := o.cfg.RNG.Perm(int(o.partSlots))
	clear(sc.slotOf)
	for i := range blocks {
		sc.slotOf[base+int64(permIdx[i])] = i
	}
	for i := int64(0); i < o.partSlots; i++ {
		if bi, ok := sc.slotOf[base+i]; ok {
			o.codec.encode(sc.writePt[i], blocks[bi].addr, blocks[bi].data)
		} else {
			copy(sc.writePt[i], o.codec.dummyPt)
		}
	}
	if err := o.codec.sealRun(sc.writePt, sc.sealedV); err != nil {
		return 0, err
	}
	if err := o.storDev.WriteSlots(sc.slots, sc.sealedV); err != nil {
		return 0, err
	}
	for i := int64(0); i < o.partSlots; i++ {
		if bi, ok := sc.slotOf[base+i]; ok {
			if err := o.perm.SetStorage(blocks[bi].addr, base+i); err != nil {
				return 0, err
			}
		}
	}
	return absorbed, nil
}
