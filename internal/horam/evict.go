package horam

import (
	"fmt"

	"repro/internal/posmap"
	"repro/internal/shuffle"
	"repro/internal/stash"
)

// evictAndShuffle runs the paper's shuffle period (§4.3):
//
//  1. oblivious tree evict — the whole memory tree (real + dummy
//     slots) is scanned into a trusted buffer, shuffled, and the
//     dummies dropped, so the scan order reveals nothing about which
//     slots were real;
//  2. group & partition shuffle — the shuffle window's partitions are
//     processed left to right: read the partition sequentially, keep
//     its live cold blocks, concatenate the next piece of the evicted
//     hot data, shuffle in trusted memory (cache shuffle), write back
//     sequentially under a fresh intra-partition permutation;
//  3. a new empty tree (the DrainAll already re-sealed dummies) and a
//     cleared touched-bit state start the next access period.
//
// With ShuffleRatio r < 1 only ⌈r·√N⌉ partitions form the window each
// period (§5.3.1), cycling round-robin; slack slots absorb the extra
// hot data until each partition's next turn.
func (o *ORAM) evictAndShuffle() error {
	o.inShuffle = true
	defer func() { o.inShuffle = false }()
	return o.serial("shuffle", func() error {
		// Phase 1: oblivious tree evict. DrainAll performs the full
		// sequential scan on the memory device (charging its time) and
		// returns the real blocks; the uniform shuffle below stands in
		// for the oblivious buffer shuffle — inside trusted memory any
		// uniform permutation is admissible.
		evicted, err := o.mem.DrainAll()
		if err != nil {
			return err
		}
		items := make([][]byte, len(evicted))
		addrs := make([]int64, len(evicted))
		for i, b := range evicted {
			items[i] = b.Data
			addrs[i] = b.Addr
		}
		perm := shuffle.Random(len(items), o.cfg.RNG)
		items = shuffle.Apply(perm, items)
		addrs = shuffle.Apply(perm, addrs)
		o.stats.EvictedReal += int64(len(items))

		pool := make([]stash.Block, len(items))
		for i := range items {
			pool[i] = stash.Block{Addr: addrs[i], Data: items[i]}
		}

		// Phase 2: group & partition shuffle over the window.
		window := o.partitions
		if o.cfg.ShuffleRatio > 0 && o.cfg.ShuffleRatio < 1 {
			window = int64(float64(o.partitions)*o.cfg.ShuffleRatio + 0.5)
			if window < 1 {
				window = 1
			}
		}
		// Storage slots are only ever written here, so bracketing the
		// partition writes with generation marks gives the persistence
		// layer an exact consistency witness: started > completed on
		// disk means a crash tore this very loop.
		if o.cfg.ShuffleMark != nil {
			if err := o.cfg.ShuffleMark(o.shuffleGen+1, false); err != nil {
				return err
			}
		}
		poolIdx := 0
		shuffled := int64(0)
		for shuffled < window || poolIdx < len(pool) {
			if shuffled >= o.partitions {
				// Every partition visited and hot data still homeless:
				// the slack sizing is insufficient (cannot happen with
				// the shipped factors; guard against config drift).
				return fmt.Errorf("horam: shuffle could not place %d evicted blocks", len(pool)-poolIdx)
			}
			p := o.nextPart
			o.nextPart = (o.nextPart + 1) % o.partitions
			n, err := o.shufflePartition(p, pool, &poolIdx)
			if err != nil {
				return err
			}
			_ = n
			shuffled++
		}
		o.stats.PartShuffled += shuffled
		o.stats.Shuffles++

		// Phase 3: fresh period state.
		o.perm.ResetPeriod()
		o.missCount = 0
		o.storDev.ResetHead() // the next access is positioning-random
		o.shuffleGen++
		if o.cfg.ShuffleMark != nil {
			// Make the generation's writes durable before the marker
			// declares them so.
			if err := o.SyncStorage(); err != nil {
				return err
			}
			if err := o.cfg.ShuffleMark(o.shuffleGen, true); err != nil {
				return err
			}
		}
		return nil
	})
}

// shufflePartition reshuffles partition p, absorbing as much of the
// evicted pool (from *poolIdx on) as fits. It returns the number of
// pool blocks absorbed.
func (o *ORAM) shufflePartition(p int64, pool []stash.Block, poolIdx *int) (int, error) {
	base := p * o.partSlots
	buf := make([]byte, o.storDev.SlotSize())

	// Sequential read: collect live cold blocks. A slot is live iff
	// the permutation list still maps its block here — blocks fetched
	// to memory this (or an earlier partial-shuffle) period left stale
	// ciphertext behind.
	type rec struct {
		addr int64
		data []byte
	}
	var blocks []rec
	for i := int64(0); i < o.partSlots; i++ {
		slot := base + i
		if err := o.storDev.Read(slot, buf); err != nil {
			return 0, err
		}
		addr, payload, err := o.openRecord(buf)
		if err != nil {
			return 0, err
		}
		if addr == dummyAddr {
			continue
		}
		e, err := o.perm.Lookup(addr)
		if err != nil {
			return 0, err
		}
		if e.Tier != posmap.TierStorage || e.Slot != slot {
			continue // stale copy
		}
		owned := make([]byte, o.cfg.BlockSize)
		copy(owned, payload)
		blocks = append(blocks, rec{addr, owned})
	}

	// Concatenate the next piece of evicted hot data.
	absorbed := 0
	for int64(len(blocks)) < o.partSlots && *poolIdx < len(pool) {
		b := pool[*poolIdx]
		*poolIdx++
		blocks = append(blocks, rec{b.Addr, b.Data})
		absorbed++
	}

	// Cache shuffle in trusted memory, then sequential write-back
	// under a fresh intra-partition permutation.
	items := make([][]byte, len(blocks))
	for i := range blocks {
		items[i] = blocks[i].data
	}
	permIdx := o.cfg.RNG.Perm(int(o.partSlots))
	slotOfIdx := make(map[int64]int, len(blocks))
	for i := range blocks {
		slotOfIdx[base+int64(permIdx[i])] = i
	}
	for i := int64(0); i < o.partSlots; i++ {
		slot := base + i
		addr := dummyAddr
		var payload []byte
		if bi, ok := slotOfIdx[slot]; ok {
			addr = blocks[bi].addr
			payload = blocks[bi].data
		}
		sealed, err := o.sealRecord(addr, payload)
		if err != nil {
			return 0, err
		}
		if err := o.storDev.Write(slot, sealed); err != nil {
			return 0, err
		}
		if addr != dummyAddr {
			if err := o.perm.SetStorage(addr, slot); err != nil {
				return 0, err
			}
		}
	}
	return absorbed, nil
}
