package horam

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"repro/internal/blockcipher"
)

// recordCodec owns the sealed-record hot path of one H-ORAM instance:
// the header+payload plaintext layout, the seal worker-pool sizing,
// and the reusable scratch that keeps the steady state allocation-free.
// The per-record helpers replace the historical sealRecord/openRecord
// (which allocated a plaintext and a sealed buffer on every call); the
// run helpers fan a whole partition or path across the worker pool
// while preserving the serial nonce order, so the sealed bytes — and
// every device-trace test — are identical at any worker count.
type recordCodec struct {
	sealer   blockcipher.Sealer
	workers  int
	ptSize   int // headerSize + BlockSize
	slotSize int

	dummyPt []byte // sealed-dummy plaintext; read-only after init
}

// sealWorkers resolves the configured pool bound: an explicit knob
// wins, otherwise GOMAXPROCS capped at 8 (sealing a partition saturates
// memory bandwidth long before it scales past that).
func sealWorkers(configured int) int {
	if configured > 0 {
		return configured
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

func newRecordCodec(sealer blockcipher.Sealer, blockSize, workers int) *recordCodec {
	ptSize := headerSize + blockSize
	c := &recordCodec{
		sealer:   sealer,
		workers:  sealWorkers(workers),
		ptSize:   ptSize,
		slotSize: ptSize + sealer.Overhead(),
		dummyPt:  make([]byte, ptSize),
	}
	c.encode(c.dummyPt, dummyAddr, nil)
	return c
}

// encode lays out one record plaintext into dst (exactly ptSize
// bytes): big-endian address header, then the payload, zero-padded
// when the payload is nil (dummies and never-written blocks).
func (c *recordCodec) encode(dst []byte, addr int64, payload []byte) {
	binary.BigEndian.PutUint64(dst[:headerSize], uint64(addr))
	n := copy(dst[headerSize:], payload)
	for i := headerSize + n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// openInto opens one sealed record into the ptSize buffer dst and
// returns the address header and the payload view aliasing dst.
func (c *recordCodec) openInto(dst, sealed []byte) (int64, []byte, error) {
	if err := blockcipher.OpenInto(c.sealer, dst, sealed); err != nil {
		return 0, nil, err
	}
	if len(dst) != c.ptSize {
		return 0, nil, fmt.Errorf("horam: record is %d bytes, want %d", len(dst), c.ptSize)
	}
	return int64(binary.BigEndian.Uint64(dst[:headerSize])), dst[headerSize:], nil
}

// sealRun batch-seals pts[i] into outs[i] across the worker pool.
func (c *recordCodec) sealRun(pts, outs [][]byte) error {
	return blockcipher.SealBatch(c.sealer, pts, outs, c.workers)
}

// openRun batch-opens sealed[i] into pts[i] across the worker pool.
func (c *recordCodec) openRun(pts, sealed [][]byte) error {
	return blockcipher.OpenBatch(c.sealer, sealed, pts, c.workers)
}

// slab carves an n×size byte slab into reusable views — the allocation
// pattern behind every run-scratch in the hot path: one backing array,
// n fixed-size windows, allocated once and reused forever.
func slab(n int64, size int) [][]byte {
	backing := make([]byte, int(n)*size)
	views := make([][]byte, n)
	for i := range views {
		views[i] = backing[i*size : (i+1)*size]
	}
	return views
}

// shufScratch is the persistent per-instance scratch of the shuffle
// quantum: slot vector, sealed slab (read inputs, then reused as seal
// outputs), two plaintext slabs (one for opened records, one for the
// write-phase encodes — separate so live payloads can alias the read
// slab while the write slab is being filled), the live-record list and
// the slot→record map. Sized to one partition, allocated on first use.
type shufScratch struct {
	slots   []int64
	sealedV [][]byte
	readPt  [][]byte
	writePt [][]byte
	recs    []shufRec
	slotOf  map[int64]int
}

type shufRec struct {
	addr int64
	data []byte
}

func (o *ORAM) shufScratchFor(partSlots int64) *shufScratch {
	if o.shuf == nil {
		o.shuf = &shufScratch{
			slots:   make([]int64, partSlots),
			sealedV: slab(partSlots, o.codec.slotSize),
			readPt:  slab(partSlots, o.codec.ptSize),
			writePt: slab(partSlots, o.codec.ptSize),
			recs:    make([]shufRec, 0, partSlots),
			slotOf:  make(map[int64]int, partSlots),
		}
	}
	return o.shuf
}
