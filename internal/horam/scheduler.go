package horam

import (
	"fmt"

	"repro/internal/pathoram"
	"repro/internal/posmap"
)

// Submit queues requests into the ROB table without executing them.
// Data slices for writes are copied.
func (o *ORAM) Submit(reqs ...*Request) error {
	if o.poisoned != nil {
		return o.poisoned
	}
	for _, r := range reqs {
		if r == nil {
			return fmt.Errorf("horam: nil request")
		}
		if r.Addr < 0 || r.Addr >= o.cfg.Blocks {
			return fmt.Errorf("horam: address %d out of range [0,%d)", r.Addr, o.cfg.Blocks)
		}
		if r.Op == OpWrite {
			if len(r.Data) != o.cfg.BlockSize {
				return fmt.Errorf("horam: write payload %d bytes, want %d", len(r.Data), o.cfg.BlockSize)
			}
			owned := make([]byte, len(r.Data))
			copy(owned, r.Data)
			r.Data = owned
		}
		r.done = false
		r.SubmitSim = o.clk.Now()
		r.DoneSim = 0
		o.rob = append(o.rob, r)
	}
	return nil
}

// Pending returns the number of queued, uncompleted requests.
func (o *ORAM) Pending() int { return len(o.rob) }

// abandonROB empties the ROB after a failed drain. The slots are
// nilled before truncating: reslicing alone would retain the abandoned
// *Request pointers — and their copied write payloads — in the backing
// array until overwritten, pinning them against collection for as long
// as the instance lives.
func (o *ORAM) abandonROB() {
	for i := range o.rob {
		o.rob[i] = nil
	}
	o.rob = o.rob[:0]
}

// Drain runs scheduler cycles until the ROB table is empty. Each
// cycle issues exactly one storage load (a real miss from the window
// when available, a random prefetch otherwise) overlapped with exactly
// c memory-tier path accesses (hits from the window, padded with
// dummies), so every cycle shows the adversary the same shape
// regardless of the actual hit/miss mix (§4.2). In the default
// incremental shuffle mode a cycle additionally carries one shuffle
// quantum while a period is in flight; quanta left over when the ROB
// empties ride along with later cycles.
//
// A failed drain abandons the requests still queued: their submitters
// observe the error (core.Flush completes every queued future with
// it), so leaving them in the ROB would only have a later drain serve
// requests nobody is waiting on — and block PadToCycles.
func (o *ORAM) Drain() error {
	if o.poisoned != nil {
		o.abandonROB()
		return o.poisoned
	}
	for len(o.rob) > 0 {
		if err := o.cycle(); err != nil {
			o.abandonROB()
			return err
		}
	}
	return nil
}

// PadToCycles runs dummy scheduler cycles until the cumulative cycle
// counter (Stats().Cycles) reaches target. A dummy cycle is an
// ordinary cycle run with an empty ROB — one random prefetch load
// overlapped with c dummy memory paths — so on the bus it is
// indistinguishable from a cycle serving real requests, and it
// consumes miss budget, triggers shuffles and advances in-flight
// shuffle quanta exactly like one. internal/engine uses this to
// equalise per-shard cycle counts at batch boundaries, closing the
// cross-shard traffic-volume channel; a shard that goes quiescent
// mid-shuffle levels like any other, because quanta progress is a
// deterministic function of the cycle count. The ROB must be empty:
// padding is defined between batches, not in the middle of one. It
// returns the number of dummy cycles run.
func (o *ORAM) PadToCycles(target int64) (int64, error) {
	if o.poisoned != nil {
		return 0, o.poisoned
	}
	if len(o.rob) > 0 {
		return 0, fmt.Errorf("horam: PadToCycles with %d requests still queued", len(o.rob))
	}
	var padded int64
	for o.stats.Cycles < target {
		if err := o.cycle(); err != nil {
			return padded, err
		}
		padded++
	}
	return padded, nil
}

// cycle executes one scheduling group and tracks the cost bound: the
// device time charged by this single cycle, shuffle work included, is
// folded into Stats.MaxCycleTime.
func (o *ORAM) cycle() error {
	before := o.acct.Get("access") + o.acct.Get("shuffle")
	err := o.cycleInner()
	if d := o.acct.Get("access") + o.acct.Get("shuffle") - before; d > o.stats.MaxCycleTime {
		o.stats.MaxCycleTime = d
	}
	return err
}

func (o *ORAM) cycleInner() error {
	if o.poisoned != nil {
		return o.poisoned
	}
	c := o.currentC()

	// Scan the prefetch window for the first miss and up to c hits.
	window := o.rob
	if len(window) > o.depth {
		window = window[:o.depth]
	}
	var miss *Request
	var hits []*Request
	for _, r := range window {
		e, err := o.perm.Lookup(r.Addr)
		if err != nil {
			return err
		}
		switch {
		case e.Tier == posmap.TierMemory && len(hits) < c:
			// Memory-resident covers both the tree and, mid-shuffle,
			// the trusted pool: serveHit picks the right source.
			hits = append(hits, r)
		case e.Tier == posmap.TierStorage && miss == nil:
			// Two queued requests may miss on the same address; only
			// the first becomes the cycle's load, the other waits to
			// be served as a hit next cycle. (A repeated address later
			// in the window is already classified as a memory hit once
			// the first fetch lands, so no double-fetch can occur —
			// Lookup reflects residency at scan time, and we fetch at
			// most one block per cycle.)
			miss = r
		}
		if miss != nil && len(hits) == c {
			break
		}
	}

	// While a shuffle is in flight, the new period's budget caps the
	// loads its cycles may issue; once exhausted, cycles run loadless
	// until the quanta complete and the next period begins. The cutoff
	// is a deterministic function of the cycle index (every cycle
	// issues exactly one load until then), so it leaks nothing.
	issueLoad := !o.sm.active || o.missCount < o.missBudget
	storPhase := func() error {
		if !issueLoad {
			return nil
		}
		if miss != nil {
			if err := o.fetchBlock(miss.Addr); err != nil {
				return err
			}
			o.stats.Misses++
			return nil
		}
		ok, err := o.dummyFetch()
		if err != nil {
			return err
		}
		if !ok {
			// Storage exhausted: nothing fetchable remains. The period
			// must end; the shuffle below restores fetchability.
			o.missCount = o.missBudget
		}
		return nil
	}
	memPhase := func() error {
		for _, r := range hits {
			if err := o.serveHit(r); err != nil {
				return err
			}
		}
		for pad := len(hits); pad < c; pad++ {
			if err := o.mem.DummyAccess(); err != nil {
				return err
			}
			o.stats.DummyMemory++
		}
		return nil
	}
	if err := o.overlap(memPhase, storPhase); err != nil {
		return err
	}
	o.stats.Cycles++

	// Remove completed requests, stamping their completion time now
	// that the cycle's device cost is on the clock. The backing-array
	// tail is nilled so completed requests do not linger uncollectable.
	kept := o.rob[:0]
	for _, r := range o.rob {
		if r.done {
			r.DoneSim = o.clk.Now()
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(o.rob); i++ {
		o.rob[i] = nil
	}
	o.rob = kept

	// Shuffle work runs at cycle end, after this cycle's requests
	// completed: one quantum of the in-flight period, then — budget
	// permitting — the start of a new one. A mid-flight failure leaves
	// partitions partially rewritten and the cursors advanced, so it
	// poisons the instance rather than letting the next cycle retry
	// over inconsistent state.
	if o.sm.active {
		if err := o.serial("shuffle", o.shuffleQuantum); err != nil {
			o.poison(err)
			return err
		}
	}
	if o.missCount >= o.missBudget && !o.sm.active {
		if o.cfg.MonolithicShuffle {
			if err := o.evictAndShuffle(); err != nil {
				o.poison(err)
				return err
			}
		} else {
			o.beginShuffle()
			// The evict quantum runs in the triggering cycle itself:
			// the block this cycle loaded still belongs to the period
			// that just ended, so it is evicted with the rest.
			if err := o.serial("shuffle", o.shuffleQuantum); err != nil {
				o.poison(err)
				return err
			}
		}
	}
	return nil
}

// serveHit completes one request against the memory tier. A block
// sitting in the in-flight shuffle's trusted pool is read or updated
// directly in trusted memory, with a dummy path access standing in for
// the tree path a resident hit would have touched — the path of a real
// hit is uniformly distributed, exactly like DummyAccess's, so the
// memory-tier bus shape is identical either way.
func (o *ORAM) serveHit(r *Request) error {
	if i, ok := o.sm.poolAddr[r.Addr]; ok {
		b := &o.sm.pool[i]
		prev := make([]byte, len(b.Data))
		copy(prev, b.Data)
		if r.Op == OpWrite {
			copy(b.Data, r.Data)
		}
		if err := o.mem.DummyAccess(); err != nil {
			return err
		}
		r.Result = prev
		r.done = true
		o.stats.Hits++
		o.stats.Requests++
		return nil
	}
	var result []byte
	var err error
	if r.Op == OpWrite {
		result, err = o.mem.Access(pathoram.OpWrite, r.Addr, r.Data)
	} else {
		result, err = o.mem.Access(pathoram.OpRead, r.Addr, nil)
	}
	if err != nil {
		return err
	}
	r.Result = result
	r.done = true
	o.stats.Hits++
	o.stats.Requests++
	return nil
}

// Read enqueues and completes a single read request.
func (o *ORAM) Read(addr int64) ([]byte, error) {
	r := &Request{Op: OpRead, Addr: addr}
	if err := o.Submit(r); err != nil {
		return nil, err
	}
	if err := o.Drain(); err != nil {
		return nil, err
	}
	return r.Result, nil
}

// Write enqueues and completes a single write request. The previous
// block contents are discarded.
func (o *ORAM) Write(addr int64, data []byte) error {
	r := &Request{Op: OpWrite, Addr: addr, Data: data}
	if err := o.Submit(r); err != nil {
		return err
	}
	return o.Drain()
}

// RunBatch queues all requests and drains the scheduler. This is the
// paper's operating mode: a full ROB gives the prefetcher real work to
// group, so the dummy-padding rate is far lower than with one request
// at a time.
func (o *ORAM) RunBatch(reqs []*Request) error {
	if err := o.Submit(reqs...); err != nil {
		return err
	}
	return o.Drain()
}
