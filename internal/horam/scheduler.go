package horam

import (
	"fmt"

	"repro/internal/pathoram"
	"repro/internal/posmap"
)

// Submit queues requests into the ROB table without executing them.
// Data slices for writes are copied.
func (o *ORAM) Submit(reqs ...*Request) error {
	for _, r := range reqs {
		if r == nil {
			return fmt.Errorf("horam: nil request")
		}
		if r.Addr < 0 || r.Addr >= o.cfg.Blocks {
			return fmt.Errorf("horam: address %d out of range [0,%d)", r.Addr, o.cfg.Blocks)
		}
		if r.Op == OpWrite {
			if len(r.Data) != o.cfg.BlockSize {
				return fmt.Errorf("horam: write payload %d bytes, want %d", len(r.Data), o.cfg.BlockSize)
			}
			owned := make([]byte, len(r.Data))
			copy(owned, r.Data)
			r.Data = owned
		}
		r.done = false
		o.rob = append(o.rob, r)
	}
	return nil
}

// Pending returns the number of queued, uncompleted requests.
func (o *ORAM) Pending() int { return len(o.rob) }

// Drain runs scheduler cycles until the ROB table is empty. Each
// cycle issues exactly one storage load (a real miss from the window
// when available, a random prefetch otherwise) overlapped with exactly
// c memory-tier path accesses (hits from the window, padded with
// dummies), so every cycle shows the adversary the same shape
// regardless of the actual hit/miss mix (§4.2).
//
// A failed drain abandons the requests still queued: their submitters
// observe the error (core.Flush completes every queued future with
// it), so leaving them in the ROB would only have a later drain serve
// requests nobody is waiting on — and block PadToCycles.
func (o *ORAM) Drain() error {
	for len(o.rob) > 0 {
		if err := o.cycle(); err != nil {
			o.rob = o.rob[:0]
			return err
		}
	}
	return nil
}

// PadToCycles runs dummy scheduler cycles until the cumulative cycle
// counter (Stats().Cycles) reaches target. A dummy cycle is an
// ordinary cycle run with an empty ROB — one random prefetch load
// overlapped with c dummy memory paths — so on the bus it is
// indistinguishable from a cycle serving real requests, and it
// consumes miss budget and triggers shuffles exactly like one.
// internal/engine uses this to equalise per-shard cycle counts at
// batch boundaries, closing the cross-shard traffic-volume channel.
// The ROB must be empty: padding is defined between batches, not in
// the middle of one. It returns the number of dummy cycles run.
func (o *ORAM) PadToCycles(target int64) (int64, error) {
	if len(o.rob) > 0 {
		return 0, fmt.Errorf("horam: PadToCycles with %d requests still queued", len(o.rob))
	}
	var padded int64
	for o.stats.Cycles < target {
		if err := o.cycle(); err != nil {
			return padded, err
		}
		padded++
	}
	return padded, nil
}

// cycle executes one scheduling group.
func (o *ORAM) cycle() error {
	c := o.currentC()

	// Scan the prefetch window for the first miss and up to c hits.
	window := o.rob
	if len(window) > o.depth {
		window = window[:o.depth]
	}
	var miss *Request
	var hits []*Request
	for _, r := range window {
		e, err := o.perm.Lookup(r.Addr)
		if err != nil {
			return err
		}
		switch {
		case e.Tier == posmap.TierMemory && len(hits) < c:
			hits = append(hits, r)
		case e.Tier == posmap.TierStorage && miss == nil:
			// Two queued requests may miss on the same address; only
			// the first becomes the cycle's load, the other waits to
			// be served as a hit next cycle. (A repeated address later
			// in the window is already classified as a memory hit once
			// the first fetch lands, so no double-fetch can occur —
			// Lookup reflects residency at scan time, and we fetch at
			// most one block per cycle.)
			miss = r
		}
		if miss != nil && len(hits) == c {
			break
		}
	}

	storPhase := func() error {
		if miss != nil {
			if err := o.fetchBlock(miss.Addr); err != nil {
				return err
			}
			o.stats.Misses++
			return nil
		}
		ok, err := o.dummyFetch()
		if err != nil {
			return err
		}
		if !ok {
			// Storage exhausted: nothing fetchable remains. The period
			// must end; the shuffle below restores fetchability.
			o.missCount = o.missBudget
		}
		return nil
	}
	memPhase := func() error {
		for _, r := range hits {
			if err := o.serveHit(r); err != nil {
				return err
			}
		}
		for pad := len(hits); pad < c; pad++ {
			if err := o.mem.DummyAccess(); err != nil {
				return err
			}
			o.stats.DummyMemory++
		}
		return nil
	}
	if err := o.overlap(memPhase, storPhase); err != nil {
		return err
	}
	o.stats.Cycles++

	// Remove completed requests.
	kept := o.rob[:0]
	for _, r := range o.rob {
		if !r.done {
			kept = append(kept, r)
		}
	}
	o.rob = kept

	if o.missCount >= o.missBudget {
		if err := o.evictAndShuffle(); err != nil {
			return err
		}
	}
	return nil
}

// serveHit completes one request against the memory tree.
func (o *ORAM) serveHit(r *Request) error {
	var result []byte
	var err error
	if r.Op == OpWrite {
		result, err = o.mem.Access(pathoram.OpWrite, r.Addr, r.Data)
	} else {
		result, err = o.mem.Access(pathoram.OpRead, r.Addr, nil)
	}
	if err != nil {
		return err
	}
	r.Result = result
	r.done = true
	o.stats.Hits++
	o.stats.Requests++
	return nil
}

// Read enqueues and completes a single read request.
func (o *ORAM) Read(addr int64) ([]byte, error) {
	r := &Request{Op: OpRead, Addr: addr}
	if err := o.Submit(r); err != nil {
		return nil, err
	}
	if err := o.Drain(); err != nil {
		return nil, err
	}
	return r.Result, nil
}

// Write enqueues and completes a single write request. The previous
// block contents are discarded.
func (o *ORAM) Write(addr int64, data []byte) error {
	r := &Request{Op: OpWrite, Addr: addr, Data: data}
	if err := o.Submit(r); err != nil {
		return err
	}
	return o.Drain()
}

// RunBatch queues all requests and drains the scheduler. This is the
// paper's operating mode: a full ROB gives the prefetcher real work to
// group, so the dummy-padding rate is far lower than with one request
// at a time.
func (o *ORAM) RunBatch(reqs []*Request) error {
	if err := o.Submit(reqs...); err != nil {
		return err
	}
	return o.Drain()
}
