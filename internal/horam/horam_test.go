package horam

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
)

// testConfig builds a small H-ORAM config: N blocks with a memory
// budget of memBlocks sealed slots.
func testConfig(blocks int64, blockSize int, memSlots int64) Config {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(13 * i)
	}
	rng := blockcipher.NewRNGFromString("horam-test")
	sealer, err := blockcipher.NewAESSealer(key, rng.Fork("sealer"))
	if err != nil {
		panic(err)
	}
	cfg := Config{
		Blocks:    blocks,
		BlockSize: blockSize,
		Z:         4,
		Sealer:    sealer,
		RNG:       rng.Fork("oram"),
	}
	cfg.MemoryBytes = memSlots * int64(cfg.SlotSize())
	return cfg
}

func build(t *testing.T, blocks int64, blockSize int, memSlots int64) *ORAM {
	t.Helper()
	o, err := New(testConfig(blocks, blockSize, memSlots))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func fill(size int, b byte) []byte { return bytes.Repeat([]byte{b}, size) }

func TestValidation(t *testing.T) {
	base := testConfig(64, 32, 64)

	bad := base
	bad.Blocks = 0
	if _, err := New(bad); err == nil {
		t.Error("accepted zero blocks")
	}
	bad = base
	bad.BlockSize = -1
	if _, err := New(bad); err == nil {
		t.Error("accepted negative block size")
	}
	bad = base
	bad.MemoryBytes = 0
	if _, err := New(bad); err == nil {
		t.Error("accepted zero memory budget")
	}
	bad = base
	bad.Sealer = nil
	if _, err := New(bad); err == nil {
		t.Error("accepted nil sealer")
	}
	bad = base
	bad.RNG = nil
	if _, err := New(bad); err == nil {
		t.Error("accepted nil rng")
	}
	bad = base
	bad.ShuffleRatio = 1.5
	if _, err := New(bad); err == nil {
		t.Error("accepted shuffle ratio > 1")
	}
	bad = base
	bad.Stages = []Stage{{C: 2, Frac: 0.5}} // sums to 0.5
	if _, err := New(bad); err == nil {
		t.Error("accepted stage fractions not summing to 1")
	}
	bad = base
	bad.Stages = []Stage{{C: 0, Frac: 1}}
	if _, err := New(bad); err == nil {
		t.Error("accepted stage with C=0")
	}
	bad = base
	bad.PrefetchDepth = 2
	bad.Stages = []Stage{{C: 5, Frac: 1}}
	if _, err := New(bad); err == nil {
		t.Error("accepted prefetch depth ≤ max C")
	}
	bad = base
	bad.MemoryBytes = 1 // less than one bucket
	if _, err := New(bad); err == nil {
		t.Error("accepted memory budget below one bucket")
	}
}

func TestGeometry(t *testing.T) {
	o := build(t, 100, 16, 64)
	if o.Partitions() != 10 {
		t.Fatalf("Partitions() = %d, want 10", o.Partitions())
	}
	if o.PartitionSlots() != 10 {
		t.Fatalf("PartitionSlots() = %d, want 10 (no slack at full shuffle)", o.PartitionSlots())
	}
	if o.MissBudget() != o.MemTreeCapacity() {
		t.Fatalf("MissBudget %d != tree capacity %d", o.MissBudget(), o.MemTreeCapacity())
	}
	if o.MissBudget() <= 0 {
		t.Fatal("non-positive miss budget")
	}
}

func TestSingleReadWrite(t *testing.T) {
	o := build(t, 64, 32, 64)
	want := fill(32, 0xC3)
	if err := o.Write(7, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Read(7) = %x..., want %x...", got[:4], want[:4])
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	o := build(t, 64, 16, 64)
	got, err := o.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestDataSurvivesShuffles(t *testing.T) {
	const blocks = 64
	// Tiny memory: 16 slots → capacity 8? forces frequent shuffles.
	o := build(t, blocks, 16, 28)
	version := make(map[int64]byte)
	rng := blockcipher.NewRNGFromString("churn")
	for i := 0; i < 400; i++ {
		a := rng.Int63n(blocks)
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := o.Write(a, fill(16, v)); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			version[a] = v
		} else {
			got, err := o.Read(a)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			want := byte(0)
			if v, ok := version[a]; ok {
				want = v
			}
			if !bytes.Equal(got, fill(16, want)) {
				t.Fatalf("iteration %d: Read(%d) got fill %x, want %x", i, a, got[0], want)
			}
		}
	}
	if o.Stats().Shuffles == 0 {
		t.Fatal("no shuffle happened despite tiny memory; period logic broken")
	}
	if err := o.perm.ValidateStoragePermutation(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCompletesAllRequests(t *testing.T) {
	const blocks = 128
	o := build(t, blocks, 16, 128)
	var reqs []*Request
	for a := int64(0); a < blocks; a++ {
		reqs = append(reqs, &Request{Op: OpWrite, Addr: a, Data: fill(16, byte(a))})
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", o.Pending())
	}
	var reads []*Request
	for a := int64(0); a < blocks; a++ {
		reads = append(reads, &Request{Op: OpRead, Addr: a})
	}
	if err := o.RunBatch(reads); err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if !bytes.Equal(r.Result, fill(16, byte(r.Addr))) {
			t.Fatalf("batch read %d corrupted", r.Addr)
		}
	}
	if got := o.Stats().Requests; got != 2*blocks {
		t.Fatalf("Requests = %d, want %d", got, 2*blocks)
	}
}

func TestRepeatedAddressInOneBatch(t *testing.T) {
	o := build(t, 64, 16, 64)
	reqs := []*Request{
		{Op: OpWrite, Addr: 3, Data: fill(16, 1)},
		{Op: OpRead, Addr: 3},
		{Op: OpWrite, Addr: 3, Data: fill(16, 2)},
		{Op: OpRead, Addr: 3},
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reqs[1].Result, fill(16, 1)) {
		t.Fatalf("first read saw %x, want 01 (program order)", reqs[1].Result[0])
	}
	if !bytes.Equal(reqs[3].Result, fill(16, 2)) {
		t.Fatalf("second read saw %x, want 02", reqs[3].Result[0])
	}
}

func TestSubmitValidation(t *testing.T) {
	o := build(t, 16, 16, 64)
	if err := o.Submit(&Request{Op: OpRead, Addr: -1}); err == nil {
		t.Error("accepted negative address")
	}
	if err := o.Submit(&Request{Op: OpRead, Addr: 16}); err == nil {
		t.Error("accepted out-of-range address")
	}
	if err := o.Submit(&Request{Op: OpWrite, Addr: 0, Data: fill(3, 0)}); err == nil {
		t.Error("accepted short write")
	}
	if err := o.Submit(nil); err == nil {
		t.Error("accepted nil request")
	}
}

func TestCycleShapeUniform(t *testing.T) {
	// Every cycle must issue exactly 1 storage read; memory accesses
	// per cycle must equal the stage's c (hits + dummies). We verify
	// via device counters: storage reads == cycles (access periods
	// only; shuffles add bulk traffic, so use a config that never
	// shuffles during the check).
	o := build(t, 256, 16, 256) // budget large enough to avoid shuffle
	var reqs []*Request
	for a := int64(0); a < 60; a++ {
		reqs = append(reqs, &Request{Op: OpRead, Addr: a % 16})
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Shuffles != 0 {
		t.Skip("unexpected shuffle; adjust config")
	}
	storReads := o.Stor().Stats().Reads
	if storReads != o.Stats().Cycles {
		t.Fatalf("storage reads %d != cycles %d; cycle shape leaks the miss pattern",
			storReads, o.Stats().Cycles)
	}
	if o.Stor().Stats().Writes != 0 {
		t.Fatalf("access period wrote %d storage slots; loads only per §4.1", o.Stor().Stats().Writes)
	}
}

func TestSquareRootInvariantHolds(t *testing.T) {
	// Within one access period no storage slot may be read twice.
	o := build(t, 144, 16, 96)
	seen := map[int64]bool{}
	violated := false
	lastWasShuffle := false
	o.Stor().SetHook(func(_ string, op device.Op, slot int64) {
		if op != device.OpRead {
			return
		}
		if o.InShuffle() {
			lastWasShuffle = true
			return // bulk shuffle traffic is exempt
		}
		if lastWasShuffle {
			seen = map[int64]bool{} // fresh access period
			lastWasShuffle = false
		}
		if seen[slot] {
			violated = true
		}
		seen[slot] = true
	})
	rng := blockcipher.NewRNGFromString("sqrt-inv")
	var reqs []*Request
	for i := 0; i < 300; i++ {
		reqs = append(reqs, &Request{Op: OpRead, Addr: rng.Int63n(144)})
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	o.Stor().SetHook(nil)
	if violated {
		t.Fatal("a storage slot was read twice within one access period")
	}
	if o.Stats().Shuffles == 0 {
		t.Fatal("test never crossed a period boundary; weaken memory budget")
	}
}

func TestHitsDontTouchStorageBeyondPadding(t *testing.T) {
	// A batch of repeated requests to one hot block: after the first
	// fetch everything is a hit, yet storage still sees exactly one
	// read per cycle (the dummy prefetch) — the adversary cannot tell
	// a hot workload from a cold one.
	o := build(t, 256, 16, 200)
	var reqs []*Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, &Request{Op: OpRead, Addr: 5})
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (single hot block)", st.Misses)
	}
	if st.DummyIO != st.Cycles-1 {
		t.Fatalf("DummyIO = %d, want %d (every other cycle pads)", st.DummyIO, st.Cycles-1)
	}
	if got := o.Stor().Stats().Reads; got != st.Cycles {
		t.Fatalf("storage reads %d != cycles %d", got, st.Cycles)
	}
}

func TestShuffleUsesSequentialIO(t *testing.T) {
	// The shuffle's storage traffic must be overwhelmingly sequential
	// — that is the effect the paper's §5.2 highlights (10-20x cheaper
	// per byte than random page reads).
	o := build(t, 400, 16, 60)
	var reqs []*Request
	rng := blockcipher.NewRNGFromString("seq")
	for i := 0; i < 200; i++ {
		reqs = append(reqs, &Request{Op: OpRead, Addr: rng.Int63n(400)})
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Shuffles == 0 {
		t.Fatal("no shuffle to observe")
	}
	st := o.Stor().Stats()
	if st.Writes == 0 {
		t.Fatal("shuffle wrote nothing")
	}
	seqFrac := float64(st.SeqWrites) / float64(st.Writes)
	if seqFrac < 0.9 {
		t.Fatalf("only %.0f%% of storage writes were sequential; shuffle is not streaming", 100*seqFrac)
	}
}

func TestPartialShuffle(t *testing.T) {
	cfg := testConfig(144, 16, 60)
	cfg.ShuffleRatio = 0.25
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.PartitionSlots() != 2*12 {
		t.Fatalf("PartitionSlots() = %d, want 24 (2x slack)", o.PartitionSlots())
	}
	version := make(map[int64]byte)
	rng := blockcipher.NewRNGFromString("partial")
	for i := 0; i < 300; i++ {
		a := rng.Int63n(144)
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := o.Write(a, fill(16, v)); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			version[a] = v
		} else {
			got, err := o.Read(a)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			want := byte(0)
			if v, ok := version[a]; ok {
				want = v
			}
			if !bytes.Equal(got, fill(16, want)) {
				t.Fatalf("iteration %d: Read(%d) corrupted", i, a)
			}
		}
	}
	st := o.Stats()
	if st.Shuffles == 0 {
		t.Fatal("no shuffles")
	}
	perShuffle := float64(st.PartShuffled) / float64(st.Shuffles)
	if perShuffle > 6 { // 12 partitions * 0.25 = 3, allow pool spill
		t.Fatalf("partial shuffle touched %.1f partitions per period, want ≈3", perShuffle)
	}
}

func TestStagesProgressC(t *testing.T) {
	cfg := testConfig(64, 16, 64)
	cfg.Stages = []Stage{{C: 1, Frac: 0.5}, {C: 4, Frac: 0.5}}
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.currentC(); got != 1 {
		t.Fatalf("currentC at period start = %d, want 1", got)
	}
	o.missCount = o.missBudget / 2
	if got := o.currentC(); got != 4 {
		t.Fatalf("currentC at half period = %d, want 4", got)
	}
	o.missCount = o.missBudget
	if got := o.currentC(); got != 4 {
		t.Fatalf("currentC at period end = %d, want 4", got)
	}
}

func TestAccountingSplitsTime(t *testing.T) {
	o := build(t, 144, 16, 48)
	rng := blockcipher.NewRNGFromString("acct")
	var reqs []*Request
	for i := 0; i < 120; i++ {
		reqs = append(reqs, &Request{Op: OpRead, Addr: rng.Int63n(144)})
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Shuffles == 0 {
		t.Fatal("no shuffle; cannot check accounting")
	}
	if o.AccessTime() <= 0 || o.ShuffleTime() <= 0 {
		t.Fatalf("accounting: access=%v shuffle=%v", o.AccessTime(), o.ShuffleTime())
	}
	total := o.AccessTime() + o.ShuffleTime()
	if got := o.Clock().Now(); got != total {
		t.Fatalf("clock %v != access+shuffle %v", got, total)
	}
}

func TestMultiUserTaggedRequests(t *testing.T) {
	o := build(t, 64, 16, 64)
	var reqs []*Request
	for u := 0; u < 4; u++ {
		for i := 0; i < 8; i++ {
			addr := int64(u*8 + i)
			reqs = append(reqs, &Request{Op: OpWrite, Addr: addr, Data: fill(16, byte(u)), User: u})
		}
	}
	if err := o.RunBatch(reqs); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		got, err := o.Read(int64(u * 8))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(16, byte(u))) {
			t.Fatalf("user %d data corrupted", u)
		}
	}
}

func BenchmarkHORAMBatch(b *testing.B) {
	for _, blocks := range []int64{256, 1024} {
		b.Run(fmt.Sprintf("N=%d", blocks), func(b *testing.B) {
			cfg := testConfig(blocks, 64, blocks/2)
			cfg.Sealer = blockcipher.NullSealer{}
			cfg.MemoryBytes = (blocks / 2) * int64(cfg.SlotSize())
			o, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := blockcipher.NewRNGFromString("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Read(rng.Int63n(blocks)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPadToCycles: padding runs exactly enough dummy cycles to reach
// the target, each with the standard bus shape (one storage load, so
// DummyIO advances in step), refuses to run with requests queued, and
// no-ops when the counter is already at or past the target.
func TestPadToCycles(t *testing.T) {
	o := build(t, 256, 32, 64)
	if _, err := o.Read(3); err != nil {
		t.Fatal(err)
	}
	base := o.Stats()

	padded, err := o.PadToCycles(base.Cycles + 5)
	if err != nil {
		t.Fatal(err)
	}
	if padded != 5 {
		t.Fatalf("PadToCycles ran %d cycles, want 5", padded)
	}
	st := o.Stats()
	if st.Cycles != base.Cycles+5 {
		t.Fatalf("Cycles = %d, want %d", st.Cycles, base.Cycles+5)
	}
	if st.DummyIO != base.DummyIO+5 {
		t.Fatalf("DummyIO advanced %d, want 5 (every pad cycle must issue its storage load)", st.DummyIO-base.DummyIO)
	}
	if st.Requests != base.Requests {
		t.Fatalf("padding completed %d requests", st.Requests-base.Requests)
	}

	if padded, err := o.PadToCycles(0); err != nil || padded != 0 {
		t.Fatalf("PadToCycles(0) = (%d, %v), want no-op", padded, err)
	}

	if err := o.Submit(&Request{Op: OpRead, Addr: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.PadToCycles(st.Cycles + 1); err == nil {
		t.Fatal("PadToCycles ran with a request queued in the ROB")
	}
	if err := o.Drain(); err != nil {
		t.Fatal(err)
	}
}
