// Tests for the deamortized shuffle pipeline and its failure paths:
// mode equivalence (incremental vs monolithic), the per-cycle cost
// bound, quiesce-finishes-the-shuffle, sticky poisoning after a
// mid-flight shuffle failure, and the ROB-abandonment memory fix.
package horam

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/device"
)

// faultSealer wraps a sealer with an injectable failure: when gate
// returns true, Seal fails. Open is untouched, so already-sealed state
// keeps reading back.
type faultSealer struct {
	blockcipher.Sealer
	gate func() bool
}

var errInjectedSeal = errors.New("injected seal fault")

func (f *faultSealer) Seal(pt []byte) ([]byte, error) {
	if f.gate != nil && f.gate() {
		return nil, errInjectedSeal
	}
	return f.Sealer.Seal(pt)
}

// testConfigMode is testConfig with the shuffle mode selectable.
func testConfigMode(blocks int64, blockSize int, memSlots int64, monolithic bool) Config {
	cfg := testConfig(blocks, blockSize, memSlots)
	cfg.MonolithicShuffle = monolithic
	return cfg
}

// TestIncrementalMatchesMonolithic runs one seeded workload through
// both shuffle modes and asserts they return identical bytes for every
// read and produce identical per-period shuffle bus traffic (the same
// tree scan and the same partition rewrites, merely spread across
// cycles). Only the interleaving differs between the modes; the work
// content of a period does not.
func TestIncrementalMatchesMonolithic(t *testing.T) {
	const blocks, blockSize, memSlots = 144, 16, 60
	type run struct {
		reads      []byte
		perPeriod  int64
		shuffles   int64
		quanta     int64
		maxCycleNs time.Duration
	}
	results := make(map[bool]run)
	for _, monolithic := range []bool{false, true} {
		o, err := New(testConfigMode(blocks, blockSize, memSlots, monolithic))
		if err != nil {
			t.Fatal(err)
		}
		var shuffleEvents int64
		hook := func(_ string, _ device.Op, _ int64) {
			if o.InShuffle() {
				shuffleEvents++
			}
		}
		o.Stor().SetHook(hook)
		o.Mem().SetHook(hook)

		rng := blockcipher.NewRNGFromString("mode-equivalence")
		var reads []byte
		for i := 0; i < 400; i++ {
			a := rng.Int63n(blocks)
			if rng.Intn(2) == 0 {
				if err := o.Write(a, fill(blockSize, byte(rng.Intn(256)))); err != nil {
					t.Fatalf("monolithic=%v op %d: %v", monolithic, i, err)
				}
			} else {
				got, err := o.Read(a)
				if err != nil {
					t.Fatalf("monolithic=%v op %d: %v", monolithic, i, err)
				}
				reads = append(reads, got[0])
			}
		}
		// Close out the last in-flight period so the traffic count
		// covers whole periods only.
		if err := o.FinishShuffle(); err != nil {
			t.Fatal(err)
		}
		st := o.Stats()
		if st.Shuffles < 2 {
			t.Fatalf("monolithic=%v: only %d shuffles; geometry drifted", monolithic, st.Shuffles)
		}
		if shuffleEvents%st.Shuffles != 0 {
			t.Fatalf("monolithic=%v: %d shuffle events over %d periods does not divide evenly — periods differ in traffic", monolithic, shuffleEvents, st.Shuffles)
		}
		results[monolithic] = run{reads, shuffleEvents / st.Shuffles, st.Shuffles, st.ShuffleQuanta, st.MaxCycleTime}
	}

	mono, incr := results[true], results[false]
	if !bytes.Equal(mono.reads, incr.reads) {
		t.Fatal("the two shuffle modes returned different read results for the same workload")
	}
	if mono.perPeriod != incr.perPeriod {
		t.Fatalf("per-period shuffle bus traffic differs: monolithic %d events, incremental %d", mono.perPeriod, incr.perPeriod)
	}
	if mono.quanta != 0 {
		t.Fatalf("monolithic mode ran %d quanta", mono.quanta)
	}
	if incr.quanta == 0 {
		t.Fatal("incremental mode ran no quanta")
	}
	// The deamortization bound: the costliest single cycle of the
	// incremental pipeline must be far below the monolithic one, which
	// absorbs a whole O(window·partition) period.
	if incr.maxCycleNs*3 > mono.maxCycleNs {
		t.Fatalf("max cycle cost: incremental %v vs monolithic %v — deamortization bound not met", incr.maxCycleNs, mono.maxCycleNs)
	}
}

// driveToPendingShuffle issues single-request drains until one returns
// with the shuffle state machine still holding quanta.
func driveToPendingShuffle(t *testing.T, o *ORAM) {
	t.Helper()
	for i := 0; i < 4000; i++ {
		if _, err := o.Read(int64(i) % o.cfg.Blocks); err != nil {
			t.Fatal(err)
		}
		if o.ShufflePending() {
			return
		}
	}
	t.Fatal("never went quiescent mid-shuffle; geometry drifted")
}

// TestRequestsServedWhileShufflePending pins the deamortization down
// at the request level: a drain that engages the shuffle state machine
// completes its requests and returns while quanta are still pending —
// it does not stall behind the rest of the period — and the leftover
// quanta ride along with later cycles until the period closes.
func TestRequestsServedWhileShufflePending(t *testing.T) {
	o := build(t, 144, 16, 60)
	driveToPendingShuffle(t, o)
	before := o.Stats()
	// Serve more requests while the shuffle is still in flight.
	if _, err := o.Read(7); err != nil {
		t.Fatal(err)
	}
	if got := o.Stats().Requests; got != before.Requests+1 {
		t.Fatalf("requests %d -> %d while shuffle pending; service stalled", before.Requests, got)
	}
	// The machine eventually drains: pad cycles advance quanta too.
	for i := 0; o.ShufflePending(); i++ {
		if i > 1000 {
			t.Fatal("shuffle never completed under padding")
		}
		if _, err := o.PadToCycles(o.Stats().Cycles + 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.Stats().Shuffles; got != before.Shuffles+1 {
		t.Fatalf("Shuffles = %d, want %d after the pending period closed", got, before.Shuffles+1)
	}
}

// TestSnapshotFinishesInFlightShuffle asserts the quiesce contract: a
// snapshot taken while quanta are pending first drives the period to
// completion, so the image sits at a period boundary with the
// generation marker protocol intact.
func TestSnapshotFinishesInFlightShuffle(t *testing.T) {
	o := build(t, 144, 16, 60)
	driveToPendingShuffle(t, o)
	genBefore := o.ShuffleGen()
	snap, err := o.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if o.ShufflePending() {
		t.Fatal("shuffle still pending after CaptureSnapshot")
	}
	if o.ShuffleGen() != genBefore+1 {
		t.Fatalf("ShuffleGen = %d after capture, want %d (the pending period must have completed)", o.ShuffleGen(), genBefore+1)
	}
	if snap.ShuffleGen != o.ShuffleGen() {
		t.Fatalf("snapshot records generation %d, instance is at %d", snap.ShuffleGen, o.ShuffleGen())
	}
}

// buildFaulty constructs an instance whose sealer fails mid-shuffle,
// after the tree reseal and at least one full partition rewrite — the
// exact partial-rewrite state the sticky-poison fix is about.
func buildFaulty(t *testing.T, monolithic bool) *ORAM {
	t.Helper()
	cfg := testConfigMode(64, 16, 28, monolithic)
	armed := false
	sealsInShuffle := 0
	var o *ORAM
	fs := &faultSealer{Sealer: cfg.Sealer, gate: func() bool {
		if !armed || o == nil || !o.InShuffle() {
			return false
		}
		sealsInShuffle++
		// Tree slots (28) resealed by the evict, one full partition (8
		// slots) written, then fail midway through the second.
		return sealsInShuffle > 28+8+3
	}}
	cfg.Sealer = fs
	var err error
	o, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	armed = true
	return o
}

// TestShuffleFailurePoisonsInstance is the regression for the silent
// mid-flight retry: a failed shuffle used to return with partitions
// partially rewritten, the cursor advanced and the miss budget still
// exhausted, so the very next cycle re-entered the shuffle over
// inconsistent state. Now the failure is sticky — the instance is
// poisoned and every subsequent operation reports it.
func TestShuffleFailurePoisonsInstance(t *testing.T) {
	for _, monolithic := range []bool{false, true} {
		o := buildFaulty(t, monolithic)
		var failure error
		for i := 0; i < 4000 && failure == nil; i++ {
			failure = o.Write(int64(i)%64, fill(16, byte(i)))
		}
		if failure == nil {
			t.Fatalf("monolithic=%v: injected seal fault never fired", monolithic)
		}
		if !errors.Is(failure, errInjectedSeal) {
			t.Fatalf("monolithic=%v: failure is %v, want the injected fault", monolithic, failure)
		}
		if errors.Is(failure, ErrPoisoned) {
			t.Fatalf("monolithic=%v: the triggering operation itself should report the root cause, not the poison wrapper", monolithic)
		}

		assertPoisoned := func(op string, err error) {
			if !errors.Is(err, ErrPoisoned) {
				t.Fatalf("monolithic=%v: %s after failed shuffle returned %v, want ErrPoisoned", monolithic, op, err)
			}
		}
		_, err := o.Read(1)
		assertPoisoned("Read", err)
		assertPoisoned("Write", o.Write(1, fill(16, 9)))
		assertPoisoned("Submit", o.Submit(&Request{Op: OpRead, Addr: 1}))
		assertPoisoned("Drain", o.Drain())
		_, err = o.PadToCycles(o.Stats().Cycles + 1)
		assertPoisoned("PadToCycles", err)
		_, err = o.CaptureSnapshot()
		assertPoisoned("CaptureSnapshot", err)
		if !monolithic {
			assertPoisoned("FinishShuffle", o.FinishShuffle())
		}
		// The shuffle must NOT have been silently retried or completed.
		if o.Stats().Shuffles != 0 {
			t.Fatalf("monolithic=%v: %d shuffles completed after the mid-flight failure", monolithic, o.Stats().Shuffles)
		}
	}
}

// TestDrainAbandonReleasesRequests is the regression for the ROB leak:
// a failed drain truncated the ROB with o.rob[:0], which kept the
// abandoned *Request pointers — and their copied write payloads — live
// in the backing array. The slots are nilled now, so the requests
// become collectable as soon as the callers drop them.
func TestDrainAbandonReleasesRequests(t *testing.T) {
	const n = 8
	cfg := testConfig(64, 16, 28)
	fail := false
	fs := &faultSealer{Sealer: cfg.Sealer, gate: func() bool { return fail }}
	cfg.Sealer = fs
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	collected := make(chan struct{}, n)
	func() {
		reqs := make([]*Request, n)
		for i := range reqs {
			reqs[i] = &Request{Op: OpWrite, Addr: int64(i), Data: fill(16, byte(i))}
			runtime.SetFinalizer(reqs[i], func(*Request) { collected <- struct{}{} })
		}
		if err := o.Submit(reqs...); err != nil {
			t.Fatal(err)
		}
		fail = true // every path write-back now fails: the drain aborts
		if err := o.Drain(); err == nil {
			t.Fatal("drain succeeded despite the injected fault")
		}
	}()
	if o.Pending() != 0 {
		t.Fatalf("Pending() = %d after a failed drain", o.Pending())
	}

	deadline := time.Now().Add(10 * time.Second)
	got := 0
	for got < n && time.Now().Before(deadline) {
		runtime.GC()
		select {
		case <-collected:
			got++
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got < n {
		t.Fatalf("only %d/%d abandoned requests were collected; the ROB backing array still pins them", got, n)
	}
	runtime.KeepAlive(o)
}
