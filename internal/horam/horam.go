// Package horam implements H-ORAM, the paper's contribution: a hybrid
// ORAM that splits a large data set between a fast memory tier and a
// slow storage tier and lets the memory tier act as a cache without
// leaking the hit/miss pattern.
//
// Layout (paper §4.1):
//
//   - control layer (trusted): permutation list, position map (inside
//     the embedded Path ORAM), request scheduler with its ROB table;
//   - memory layer: a Path ORAM tree of n slots (≤ n/2 real blocks)
//     that starts every period empty and fills with fetched blocks;
//   - storage layer: N sealed blocks in √N partitions, each block read
//     at most once per access period (square-root invariant).
//
// Operation alternates between an access period — the scheduler groups
// c in-memory hits with exactly 1 storage load per cycle, padding with
// dummies, so every cycle presents the same bus shape — and a shuffle
// period — the tree is obliviously evicted and the storage partitions
// are re-permuted with sequential I/O (§4.3).
package horam

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/oramtree"
	"repro/internal/pathoram"
	"repro/internal/posmap"
	"repro/internal/simclock"
)

// Op selects the request type.
type Op uint8

// Request operations.
const (
	OpRead Op = iota
	OpWrite
)

// Stage is one phase of the scheduler's group-size schedule (§4.2);
// the definition lives in internal/config so every layer shares it.
type Stage = config.Stage

// PaperStages returns the schedule used in the paper's evaluation:
// c = {1, 3, 5} over {20%, 13%, 67%} of each period (ĉ ≈ 3.94).
func PaperStages() []Stage {
	return []Stage{{C: 1, Frac: 0.20}, {C: 3, Frac: 0.13}, {C: 5, Frac: 0.67}}
}

// Config parameterises an H-ORAM instance.
type Config struct {
	// Blocks is the logical data set size N in blocks.
	Blocks int64
	// BlockSize is the plaintext block payload in bytes.
	BlockSize int
	// MemoryBytes is the memory-tier budget, counted in plaintext
	// block capacity as the paper does (n = MemoryBytes / BlockSize
	// slots; sealing metadata is not billed against the budget).
	MemoryBytes int64
	// Z is the Path ORAM bucket size for the memory tree (paper: 4).
	Z int
	// Stages is the scheduler's c schedule; nil selects PaperStages.
	Stages []Stage
	// PrefetchDepth is the scheduler's ROB scan window d (> max C);
	// zero selects 2·maxC + 2.
	PrefetchDepth int
	// ShuffleRatio r selects partial shuffling (§5.3.1): the fraction
	// of partitions reshuffled per period. 0 or 1 means full shuffle.
	// With r < 1 partitions get 2x slack slots to absorb imbalance.
	ShuffleRatio float64
	// MonolithicShuffle runs each shuffle period as one stop-the-world
	// pass inside the scheduler cycle that exhausts the miss budget —
	// O(window·partition) device work in a single cycle. The default
	// (false) is the deamortized pipeline: the period is split into
	// bounded quanta (the tree evict, then one partition rewrite per
	// shuffle-mode cycle), so the worst-case storage work any cycle
	// performs is O(one partition) and requests keep being served
	// while the shuffle progresses. Both modes produce identical
	// logical results and identical per-period shuffle bus traffic;
	// the differential and obliviousness tests assert both.
	MonolithicShuffle bool
	// BackgroundShuffle models the paper's §5.1 "non-shuffle case"
	// (Figure 5-2): the shuffle runs off the critical path — offline,
	// or on the remote server so it never crosses the network — and
	// its time is recorded (ShuffleTime) but not added to the global
	// clock. The paper bounds the resulting gain at 32x over the
	// baseline for the Table 5-1 scenario.
	BackgroundShuffle bool
	// SealWorkers bounds the worker pool that parallelises seal/unseal
	// across the records of a shuffle quantum, a tree path, or a cycle.
	// 0 sizes the pool from GOMAXPROCS; 1 forces serial crypto. The
	// nonce streams are drawn serially either way, so the sealed bytes
	// (and every device-trace test) are identical at any worker count.
	SealWorkers int
	// ConstantTime hardens the memory tree's trusted-memory control
	// structures (stash, position map) against a co-located timing
	// adversary; see pathoram.Config.ConstantTime. Device traffic is
	// byte-identical to the default mode. The permutation list and the
	// shuffle's pool bookkeeping keep their indexed layout — period
	// aggregate work remains a documented residual channel.
	ConstantTime bool
	// Sealer seals blocks on both tiers; required.
	Sealer blockcipher.Sealer
	// RNG drives all randomness; required and must be dedicated.
	RNG *blockcipher.RNG
	// MemProfile and StorProfile pick the device models; zero values
	// select device.DRAM() and device.PaperHDD().
	MemProfile  device.Profile
	StorProfile device.Profile
	// Storage optionally supplies the storage-tier device — e.g. a
	// durable device.File — instead of the default in-memory
	// device.Sim. The factory receives StorProfile (or its default)
	// and the sealed-slot geometry; whatever it returns must honour
	// the Backend contract. The memory tier always stays a Sim: it
	// models DRAM, which a restart loses anyway (its contents ride in
	// snapshots instead).
	Storage device.Factory
	// ShuffleMark, when set, is called around every shuffle period's
	// storage writes: once with (gen, false) before the first
	// partition write of generation gen, and once with (gen, true)
	// after the generation's writes are durable (the storage device is
	// synced first). The persistence layer uses it to keep the on-disk
	// generation marker truthful, which is what lets a restore detect
	// a stale or torn storage image.
	ShuffleMark func(gen int64, done bool) error
}

func (c Config) validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("horam: Blocks must be positive, got %d", c.Blocks)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("horam: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.MemoryBytes <= 0 {
		return errors.New("horam: MemoryBytes must be positive")
	}
	if c.Z < 0 {
		return errors.New("horam: Z must be non-negative")
	}
	if c.Sealer == nil {
		return errors.New("horam: Sealer is required")
	}
	if c.RNG == nil {
		return errors.New("horam: RNG is required")
	}
	if c.ShuffleRatio < 0 || c.ShuffleRatio > 1 {
		return fmt.Errorf("horam: ShuffleRatio %v out of [0,1]", c.ShuffleRatio)
	}
	if c.SealWorkers < 0 {
		return errors.New("horam: SealWorkers must be non-negative")
	}
	sum := 0.0
	for _, s := range c.Stages {
		if s.C <= 0 || s.Frac < 0 {
			return fmt.Errorf("horam: invalid stage %+v", s)
		}
		sum += s.Frac
	}
	if c.Stages != nil && math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("horam: stage fractions sum to %v, want 1", sum)
	}
	return nil
}

// SlotSize returns the sealed slot size on both tiers.
func (c Config) SlotSize() int { return 8 + c.BlockSize + c.Sealer.Overhead() }

// Stats aggregates a run's scheme-level counters.
type Stats struct {
	Requests     int64 // logical requests completed
	Cycles       int64 // scheduler cycles executed
	Misses       int64 // storage loads for requested blocks
	Hits         int64 // requests served by the memory tier
	DummyIO      int64 // dummy storage loads (random prefetches)
	DummyMemory  int64 // padding path accesses in the memory tier
	Shuffles     int64 // shuffle periods completed
	PartShuffled int64 // partitions reshuffled in total
	EvictedReal  int64 // real blocks evicted from the tree across shuffles
	// ShuffleQuanta counts incremental shuffle quanta executed (the
	// tree evict and each partition rewrite count one). Zero in
	// monolithic mode.
	ShuffleQuanta int64
	// MaxCycleTime is the device time charged by the costliest single
	// scheduler cycle, including any shuffle work that ran inside it —
	// the deamortization bound the incremental pipeline enforces. In
	// monolithic mode the shuffle-triggering cycle absorbs the whole
	// period, so this is the direct tail-latency witness.
	MaxCycleTime time.Duration
}

// ORAM is an H-ORAM instance. Not safe for concurrent use; the
// multi-user front end in this package serialises submissions.
type ORAM struct {
	cfg    Config
	stages []Stage
	depth  int

	clk     *simclock.Clock // global wall clock (overlap-aware)
	clkMem  *simclock.Clock // memory-tier private clock
	clkStor *simclock.Clock // storage-tier private clock
	acct    *simclock.Accumulator

	mem     *pathoram.ORAM
	memDev  *device.Sim
	storDev device.Backend

	perm       *posmap.PermutationList
	partitions int64 // P = ⌈√N⌉
	partSlots  int64 // slots per partition (with slack when r < 1)
	nextPart   int64 // partial shuffle cursor

	missBudget int64 // storage loads allowed per access period (n/2)
	missCount  int64 // loads so far this period
	inShuffle  bool  // shuffle work (a full pass or one quantum) is executing
	shuffleGen int64 // completed shuffle periods (the durability marker)

	sm       shuffleState // incremental shuffle state machine
	poisoned error        // sticky failure after a mid-flight shuffle error

	codec    *recordCodec // sealed-record hot path (see codec.go)
	shuf     *shufScratch // shuffle-quantum scratch, one partition wide
	fetchBuf []byte       // fetchBlock sealed-slot scratch
	fetchPt  []byte       // fetchBlock plaintext scratch

	rob   []*Request
	stats Stats

	// Observability wiring (SetObs). Config cannot carry these — it is
	// part of the serializable option set — so they are injected after
	// construction. All three are nil-safe no-ops when unset.
	obsTracer  *obs.Tracer
	obsTid     int
	obsQuantum *obs.Histogram
}

// SetObs wires the request-path tracer and the shuffle-quantum
// latency histogram into the instance. tid is the virtual thread id
// the instance's spans are tagged with in trace dumps (by convention
// shard index + 1; 0 is the serving layer). Call before serving
// traffic; the scheduler reads the fields unsynchronised.
func (o *ORAM) SetObs(tr *obs.Tracer, tid int, quantum *obs.Histogram) {
	o.obsTracer = tr
	o.obsTid = tid
	o.obsQuantum = quantum
}

// Request is one queued logical operation. After a batch completes,
// Result holds the block contents for reads (and the previous contents
// for writes). User tags the issuing client in multi-user runs.
type Request struct {
	Op     Op
	Addr   int64
	Data   []byte
	Result []byte
	User   int

	// SubmitSim and DoneSim are the instance's virtual-clock readings
	// when the request entered the ROB and when it completed; their
	// difference is the request's simulated latency, including any
	// shuffle work that ran in between. The latency benchmark reads
	// them; the scheduler fills them on every request.
	SubmitSim time.Duration
	DoneSim   time.Duration

	done bool
}

// New constructs an H-ORAM, building both tier devices and writing the
// initial permuted storage layout (unmeasured setup). New always
// reinitialises the storage tier — including a durable device.File,
// whose previous contents are overwritten; resuming from a persisted
// image goes through Restore instead.
func New(cfg Config) (*ORAM, error) {
	o, err := construct(cfg)
	if err != nil {
		return nil, err
	}
	if err := o.initStorage(); err != nil {
		o.CloseStorage()
		return nil, err
	}
	return o, nil
}

// construct builds the instance skeleton — devices, memory tree,
// permutation list — without touching the storage contents. New
// initialises them; Restore installs a snapshot instead.
func construct(cfg Config) (*ORAM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Z == 0 {
		cfg.Z = 4
	}
	stages := cfg.Stages
	if stages == nil {
		stages = PaperStages()
	}
	maxC := 0
	for _, s := range stages {
		if s.C > maxC {
			maxC = s.C
		}
	}
	depth := cfg.PrefetchDepth
	if depth == 0 {
		depth = 2*maxC + 2
	}
	if depth <= maxC {
		return nil, fmt.Errorf("horam: PrefetchDepth %d must exceed the largest stage C %d", depth, maxC)
	}

	memProfile := cfg.MemProfile
	if memProfile == (device.Profile{}) {
		memProfile = device.DRAM()
	}
	storProfile := cfg.StorProfile
	if storProfile == (device.Profile{}) {
		storProfile = device.PaperHDD()
	}

	slotSize := cfg.SlotSize()
	memSlots := cfg.MemoryBytes / int64(cfg.BlockSize)
	if memSlots < int64(cfg.Z) {
		return nil, fmt.Errorf("horam: memory budget %d bytes holds %d slots; need at least one bucket (%d)", cfg.MemoryBytes, memSlots, cfg.Z)
	}

	o := &ORAM{
		cfg:     cfg,
		stages:  stages,
		depth:   depth,
		clk:     simclock.New(),
		clkMem:  simclock.New(),
		clkStor: simclock.New(),
		acct:    simclock.NewAccumulator(),
	}
	o.codec = newRecordCodec(cfg.Sealer, cfg.BlockSize, cfg.SealWorkers)
	o.fetchBuf = make([]byte, slotSize)
	o.fetchPt = make([]byte, o.codec.ptSize)

	// Memory tier: the largest Path ORAM tree that fits the budget.
	geom, err := oramtree.FitCapacity(memSlots, cfg.Z)
	if err != nil {
		return nil, fmt.Errorf("horam: %w", err)
	}
	o.memDev, err = device.New(memProfile, slotSize, geom.Slots(), o.clkMem)
	if err != nil {
		return nil, err
	}
	memCfg := pathoram.Config{
		Blocks:       cfg.Blocks,
		BlockSize:    cfg.BlockSize,
		Z:            cfg.Z,
		Capacity:     geom.Slots(),
		Sealer:       cfg.Sealer,
		RNG:          cfg.RNG.Fork("mem-oram"),
		SealWorkers:  cfg.SealWorkers,
		ConstantTime: cfg.ConstantTime,
	}
	o.mem, err = pathoram.New(memCfg, o.memDev)
	if err != nil {
		return nil, err
	}
	o.missBudget = o.mem.Capacity()
	if o.missBudget < 1 {
		return nil, errors.New("horam: memory tree too small to cache any block")
	}

	// Storage tier: √N partitions.
	o.partitions = int64(math.Ceil(math.Sqrt(float64(cfg.Blocks))))
	perPart := (cfg.Blocks + o.partitions - 1) / o.partitions
	slack := int64(1)
	if cfg.ShuffleRatio > 0 && cfg.ShuffleRatio < 1 {
		slack = 2
	}
	o.partSlots = perPart * slack
	if cfg.Storage != nil {
		o.storDev, err = cfg.Storage(storProfile, slotSize, o.partitions*o.partSlots, o.clkStor)
	} else {
		o.storDev, err = device.New(storProfile, slotSize, o.partitions*o.partSlots, o.clkStor)
	}
	if err != nil {
		return nil, err
	}
	o.perm, err = posmap.NewPermutationList(cfg.Blocks)
	if err != nil {
		o.CloseStorage() // the factory may have opened a real file
		return nil, err
	}
	return o, nil
}

// Mem returns the memory-tier device for stats collection.
func (o *ORAM) Mem() *device.Sim { return o.memDev }

// Stor returns the storage-tier device for stats collection and
// adversary hooks.
func (o *ORAM) Stor() device.Backend { return o.storDev }

// SyncStorage flushes the storage tier's durable medium, when it has
// one (device.File); a pure simulation is a no-op.
func (o *ORAM) SyncStorage() error {
	if s, ok := o.storDev.(device.Syncer); ok {
		return s.Sync()
	}
	return nil
}

// CloseStorage releases the storage tier's OS resources, when it holds
// any. The instance is unusable afterwards.
func (o *ORAM) CloseStorage() error {
	if c, ok := o.storDev.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// ShuffleGen returns the number of completed shuffle periods — the
// generation counter the persistence layer uses to tie a control
// snapshot to the storage image it matches.
func (o *ORAM) ShuffleGen() int64 { return o.shuffleGen }

// Clock returns the global (overlap-aware) virtual clock.
func (o *ORAM) Clock() *simclock.Clock { return o.clk }

// Accounting returns per-phase virtual time buckets ("access",
// "shuffle").
func (o *ORAM) Accounting() *simclock.Accumulator { return o.acct }

// Stats returns scheme-level counters.
func (o *ORAM) Stats() Stats { return o.stats }

// InShuffle reports whether shuffle work — a monolithic pass or one
// incremental quantum — is currently executing; device hooks use it to
// classify observed traffic.
func (o *ORAM) InShuffle() bool { return o.inShuffle }

// ShufflePending reports whether an incremental shuffle period is in
// flight: quanta remain to be executed by upcoming scheduler cycles
// (or by FinishShuffle). Always false in monolithic mode and between
// periods.
func (o *ORAM) ShufflePending() bool { return o.sm.active }

// Partitions returns the storage partition count √N.
func (o *ORAM) Partitions() int64 { return o.partitions }

// PartitionSlots returns the slots per partition.
func (o *ORAM) PartitionSlots() int64 { return o.partSlots }

// MissBudget returns the storage loads allowed per access period
// (the paper's n/2).
func (o *ORAM) MissBudget() int64 { return o.missBudget }

// MemTreeCapacity returns the memory tree's real-block capacity.
func (o *ORAM) MemTreeCapacity() int64 { return o.mem.Capacity() }

// currentC returns the stage group size for the current point in the
// period, measured by the fraction of the miss budget consumed.
func (o *ORAM) currentC() int {
	progress := float64(o.missCount) / float64(o.missBudget)
	acc := 0.0
	for _, s := range o.stages {
		acc += s.Frac
		if progress < acc {
			return s.C
		}
	}
	return o.stages[len(o.stages)-1].C
}

// overlap runs the memory-phase and storage-phase thunks, charging the
// global clock max(Δmem, Δstor): the paper issues the I/O load and the
// in-memory reads of one cycle simultaneously.
func (o *ORAM) overlap(memPhase, storPhase func() error) error {
	m0, s0 := o.clkMem.Now(), o.clkStor.Now()
	if err := storPhase(); err != nil {
		return err
	}
	if err := memPhase(); err != nil {
		return err
	}
	dm, ds := o.clkMem.Now()-m0, o.clkStor.Now()-s0
	d := dm
	if ds > d {
		d = ds
	}
	o.clk.Advance(d)
	o.acct.Add("access", d)
	return nil
}

// serial charges the global clock the sum of both tiers' deltas across
// fn — shuffle work is serialised on the storage device. With
// BackgroundShuffle the time is recorded in the accounting bucket but
// the global clock does not advance (the work happens off the
// critical path).
func (o *ORAM) serial(bucket string, fn func() error) error {
	m0, s0 := o.clkMem.Now(), o.clkStor.Now()
	if err := fn(); err != nil {
		return err
	}
	d := (o.clkMem.Now() - m0) + (o.clkStor.Now() - s0)
	if !o.cfg.BackgroundShuffle {
		o.clk.Advance(d)
	}
	o.acct.Add(bucket, d)
	return nil
}

// AccessTime returns virtual time spent in access periods.
func (o *ORAM) AccessTime() time.Duration { return o.acct.Get("access") }

// ShuffleTime returns virtual time spent in shuffle periods.
func (o *ORAM) ShuffleTime() time.Duration { return o.acct.Get("shuffle") }
