package horam

import (
	"fmt"

	"repro/internal/posmap"
)

const headerSize = 8
const dummyAddr = int64(-1)

// initStorage writes the initial permuted layout. The address→partition
// assignment must be a *random balanced* one: a globally shuffled
// address list is dealt into the partitions in equal shares, then each
// partition is permuted internally. Assigning by address range instead
// would correlate logical addresses with partitions and leak workload
// structure through which partitions are read (the §4.3.3 argument
// needs unbiased partition access). Setup is unmeasured; the sealing
// is still batched across the worker pool because it is the dominant
// cost of bringing up a large instance.
func (o *ORAM) initStorage() error {
	perPart := (o.cfg.Blocks + o.partitions - 1) / o.partitions
	dealt := o.cfg.RNG.Perm(int(o.cfg.Blocks)) // random balanced deal
	sc := o.shufScratchFor(o.partSlots)
	for p := int64(0); p < o.partitions; p++ {
		lo := p * perPart
		hi := lo + perPart
		if hi > o.cfg.Blocks {
			hi = o.cfg.Blocks
		}
		count := hi - lo
		permIdx := o.cfg.RNG.Perm(int(o.partSlots))
		base := p * o.partSlots
		// Encode the partition's records in deal order (the nonce order
		// the serial implementation used), batch-seal, then raw-write
		// each record at its permuted slot.
		for i := int64(0); i < o.partSlots; i++ {
			slot := base + int64(permIdx[i])
			sc.slots[i] = slot
			if i < count {
				addr := int64(dealt[lo+i])
				o.codec.encode(sc.writePt[i], addr, nil)
				if err := o.perm.SetStorage(addr, slot); err != nil {
					return err
				}
			} else {
				copy(sc.writePt[i], o.codec.dummyPt)
			}
		}
		if err := o.codec.sealRun(sc.writePt, sc.sealedV); err != nil {
			return err
		}
		for i := int64(0); i < o.partSlots; i++ {
			if err := o.storDev.WriteRaw(sc.slots[i], sc.sealedV[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// fetchBlock services a miss: one storage read of the block's permuted
// slot, delivery into the memory tree's stash, residency update, and
// the square-root touched-bit bookkeeping. Exactly one I/O read; no
// storage write (the slot simply goes stale until the next shuffle).
// Runs entirely in instance scratch: the tree's Insert copies the
// payload, so the steady state allocates nothing here.
func (o *ORAM) fetchBlock(addr int64) error {
	entry, err := o.perm.Lookup(addr)
	if err != nil {
		return err
	}
	if entry.Tier != posmap.TierStorage {
		return fmt.Errorf("horam: fetchBlock(%d): block is already in memory", addr)
	}
	if err := o.perm.MarkTouched(addr); err != nil {
		return err
	}
	if err := o.storDev.Read(entry.Slot, o.fetchBuf); err != nil {
		return err
	}
	gotAddr, payload, err := o.codec.openInto(o.fetchPt, o.fetchBuf)
	if err != nil {
		return err
	}
	if gotAddr != addr {
		return fmt.Errorf("horam: storage slot %d holds block %d, want %d", entry.Slot, gotAddr, addr)
	}
	if err := o.mem.Insert(addr, payload); err != nil {
		return err
	}
	if err := o.perm.SetMemory(addr); err != nil {
		return err
	}
	o.missCount++
	return nil
}

// dummyFetch issues the padding I/O load of a cycle with no miss to
// serve: it prefetches a uniformly random storage-resident untouched
// block. On the bus this is indistinguishable from a real miss (one
// read of a fresh uniformly distributed slot), and because the block
// genuinely moves to memory the square-root read-once invariant is
// preserved even if the block is requested later this period.
//
// It returns false when no storage-resident untouched block remains
// (the caller shuffles immediately; with the standard n ≪ N geometry
// this cannot happen before the miss budget does).
func (o *ORAM) dummyFetch() (bool, error) {
	// Rejection-sample a random address that is still fetchable. With
	// N ≫ n the first draw almost always works; fall back to a scan so
	// small configurations terminate deterministically.
	for attempt := 0; attempt < 16; attempt++ {
		addr := o.cfg.RNG.Int63n(o.cfg.Blocks)
		e, err := o.perm.Lookup(addr)
		if err != nil {
			return false, err
		}
		if e.Tier == posmap.TierStorage && !e.Touched {
			if err := o.fetchBlock(addr); err != nil {
				return false, err
			}
			o.stats.DummyIO++
			return true, nil
		}
	}
	candidates := o.perm.StorageAddrs()
	var fresh []int64
	for _, a := range candidates {
		e, err := o.perm.Lookup(a)
		if err != nil {
			return false, err
		}
		if !e.Touched {
			fresh = append(fresh, a)
		}
	}
	if len(fresh) == 0 {
		return false, nil
	}
	addr := fresh[o.cfg.RNG.Intn(len(fresh))]
	if err := o.fetchBlock(addr); err != nil {
		return false, err
	}
	o.stats.DummyIO++
	return true, nil
}
