package horam

import (
	"fmt"
	"time"

	"repro/internal/posmap"
	"repro/internal/snapshot"
	"repro/internal/stash"
)

// CaptureSnapshot serialises the control state a restart must recover:
// the permutation list, the memory tree's position map and stash, the
// sealed memory-tree device image (the memory tier is volatile DRAM;
// the storage tier is durable in its own backing file and is NOT
// captured), and the scheduler/miss-budget counters. The instance must
// be quiescent — an empty reorder buffer — so the image sits at a
// cycle boundary; internal/engine additionally levels shards first so
// a multi-shard image is taken at cross-shard-equal cycle counts.
//
// A quiesce that lands mid-shuffle — the incremental state machine
// still holds pending quanta — first drives the shuffle to completion
// (FinishShuffle), so the image always sits at a period boundary and
// the existing generation-marker protocol covers it; the mid-flight
// trusted pool is never persisted.
//
// The caller owns sealing and the key-derivation Epoch field: the
// stash rides in plaintext inside the returned struct.
func (o *ORAM) CaptureSnapshot() (*snapshot.Shard, error) {
	if o.poisoned != nil {
		return nil, o.poisoned
	}
	if len(o.rob) > 0 {
		return nil, fmt.Errorf("horam: snapshot with %d requests still queued", len(o.rob))
	}
	if o.inShuffle {
		return nil, fmt.Errorf("horam: snapshot during a shuffle period")
	}
	if err := o.FinishShuffle(); err != nil {
		return nil, err
	}
	leaves, stashBlocks, real, err := o.mem.ExportState()
	if err != nil {
		return nil, err
	}
	s := &snapshot.Shard{
		Blocks:     o.cfg.Blocks,
		BlockSize:  o.cfg.BlockSize,
		SlotSize:   o.cfg.SlotSize(),
		MemSlots:   o.memDev.Slots(),
		Partitions: o.partitions,
		PartSlots:  o.partSlots,
		MissBudget: o.missBudget,
		MissCount:  o.missCount,
		NextPart:   o.nextPart,
		ShuffleGen: o.shuffleGen,
		Stats: snapshot.Counters{
			Requests:      o.stats.Requests,
			Cycles:        o.stats.Cycles,
			Misses:        o.stats.Misses,
			Hits:          o.stats.Hits,
			DummyIO:       o.stats.DummyIO,
			DummyMemory:   o.stats.DummyMemory,
			Shuffles:      o.stats.Shuffles,
			PartShuffled:  o.stats.PartShuffled,
			EvictedReal:   o.stats.EvictedReal,
			ShuffleQuanta: o.stats.ShuffleQuanta,
			MaxCycleNanos: int64(o.stats.MaxCycleTime),
		},
		Leaves:    leaves,
		RealCount: real,
	}
	entries := o.perm.Export()
	s.PermTier = make([]uint8, len(entries))
	s.PermSlot = make([]int64, len(entries))
	s.PermTouched = make([]bool, len(entries))
	for i, e := range entries {
		s.PermTier[i] = uint8(e.Tier)
		s.PermSlot[i] = e.Slot
		s.PermTouched[i] = e.Touched
	}
	for _, b := range stashBlocks {
		s.StashAddrs = append(s.StashAddrs, b.Addr)
		s.StashData = append(s.StashData, b.Data)
	}
	s.MemImage = make([][]byte, s.MemSlots)
	for slot := int64(0); slot < s.MemSlots; slot++ {
		buf := make([]byte, s.SlotSize)
		if err := o.memDev.ReadRaw(slot, buf); err != nil {
			return nil, err
		}
		s.MemImage[slot] = buf
	}
	return s, nil
}

// Restore rebuilds an instance from a snapshot taken by
// CaptureSnapshot. cfg must describe the same geometry and key
// material as the instance that was captured; the storage tier — via
// cfg.Storage — must already hold the generation the snapshot was
// taken at (the core layer checks the on-disk generation marker before
// calling here). The sealer and RNG in cfg should be derived with a
// fresh epoch so no randomness replays across the restart.
func Restore(cfg Config, s *snapshot.Shard) (*ORAM, error) {
	o, err := construct(cfg)
	if err != nil {
		return nil, err
	}
	if err := o.checkGeometry(s); err != nil {
		o.CloseStorage()
		return nil, err
	}
	if err := o.install(s); err != nil {
		o.CloseStorage()
		return nil, err
	}
	return o, nil
}

// checkGeometry refuses a snapshot whose instance shape differs from
// the rebuilt configuration's in any way that would scramble data.
func (o *ORAM) checkGeometry(s *snapshot.Shard) error {
	type dim struct {
		name      string
		got, want int64
	}
	dims := []dim{
		{"Blocks", o.cfg.Blocks, s.Blocks},
		{"BlockSize", int64(o.cfg.BlockSize), int64(s.BlockSize)},
		{"SlotSize", int64(o.cfg.SlotSize()), int64(s.SlotSize)},
		{"memory slots", o.memDev.Slots(), s.MemSlots},
		{"partitions", o.partitions, s.Partitions},
		{"partition slots", o.partSlots, s.PartSlots},
		{"miss budget", o.missBudget, s.MissBudget},
	}
	for _, d := range dims {
		if d.got != d.want {
			return fmt.Errorf("horam: restore geometry mismatch: config %s %d, snapshot %d", d.name, d.got, d.want)
		}
	}
	if int64(len(s.PermTier)) != s.Blocks || int64(len(s.PermSlot)) != s.Blocks ||
		int64(len(s.PermTouched)) != s.Blocks || int64(len(s.Leaves)) != s.Blocks {
		return fmt.Errorf("horam: restore: control tables sized %d/%d/%d/%d, want %d",
			len(s.PermTier), len(s.PermSlot), len(s.PermTouched), len(s.Leaves), s.Blocks)
	}
	if int64(len(s.MemImage)) != s.MemSlots {
		return fmt.Errorf("horam: restore: memory image has %d slots, want %d", len(s.MemImage), s.MemSlots)
	}
	if len(s.StashAddrs) != len(s.StashData) {
		return fmt.Errorf("horam: restore: %d stash addresses but %d payloads", len(s.StashAddrs), len(s.StashData))
	}
	return nil
}

// install writes the snapshot's state into a freshly built skeleton.
func (o *ORAM) install(s *snapshot.Shard) error {
	entries := make([]posmap.Entry, len(s.PermTier))
	for i := range entries {
		if s.PermTier[i] > uint8(posmap.TierMemory) {
			return fmt.Errorf("horam: restore: address %d has invalid tier %d", i, s.PermTier[i])
		}
		entries[i] = posmap.Entry{
			Tier:    posmap.Tier(s.PermTier[i]),
			Slot:    s.PermSlot[i],
			Touched: s.PermTouched[i],
		}
	}
	if err := o.perm.Import(entries); err != nil {
		return err
	}
	for slot := int64(0); slot < s.MemSlots; slot++ {
		if len(s.MemImage[slot]) != s.SlotSize {
			return fmt.Errorf("horam: restore: memory slot %d image is %d bytes, want %d", slot, len(s.MemImage[slot]), s.SlotSize)
		}
		if err := o.memDev.WriteRaw(slot, s.MemImage[slot]); err != nil {
			return err
		}
	}
	blocks := make([]stash.Block, len(s.StashAddrs))
	for i := range blocks {
		blocks[i] = stash.Block{Addr: s.StashAddrs[i], Data: s.StashData[i]}
	}
	if err := o.mem.ImportState(s.Leaves, blocks, s.RealCount); err != nil {
		return err
	}
	o.missCount = s.MissCount
	o.nextPart = s.NextPart
	o.shuffleGen = s.ShuffleGen
	o.stats = Stats{
		Requests:      s.Stats.Requests,
		Cycles:        s.Stats.Cycles,
		Misses:        s.Stats.Misses,
		Hits:          s.Stats.Hits,
		DummyIO:       s.Stats.DummyIO,
		DummyMemory:   s.Stats.DummyMemory,
		Shuffles:      s.Stats.Shuffles,
		PartShuffled:  s.Stats.PartShuffled,
		EvictedReal:   s.Stats.EvictedReal,
		ShuffleQuanta: s.Stats.ShuffleQuanta,
		MaxCycleTime:  time.Duration(s.Stats.MaxCycleNanos),
	}
	return nil
}
