// Statistics unit tests on synthetic data — no clocks involved, so
// they are deterministic and safe under -shuffle.
package timing

import (
	"math"
	"testing"
)

func TestTrim(t *testing.T) {
	in := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 1000}
	got := Trim(in, 0.1) // drops one from each tail
	if len(got) != 8 {
		t.Fatalf("Trim kept %d samples, want 8", len(got))
	}
	if got[0] != 2 || got[len(got)-1] != 9 {
		t.Fatalf("Trim range [%v, %v], want [2, 9]", got[0], got[len(got)-1])
	}
	// The input slice must not be reordered.
	if in[0] != 9 || in[9] != 1000 {
		t.Fatal("Trim mutated its input")
	}
	// Pathological fractions still keep at least one sample.
	if got := Trim([]float64{3, 1, 2}, 0.9); len(got) != 1 || got[0] != 2 {
		t.Fatalf("over-trim kept %v, want the single median sample", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("Summarize = %+v, want N=8 Mean=5", s)
	}
	// Unbiased variance: sum of squares 32 over n-1 = 7.
	if want := 32.0 / 7.0; math.Abs(s.Variance-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance, want)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 || z.Variance != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestWelch(t *testing.T) {
	a := Stats{N: 100, Mean: 105, Variance: 25}
	b := Stats{N: 100, Mean: 100, Variance: 25}
	// se = sqrt(25/100 + 25/100) = sqrt(0.5); t = 5/se.
	want := 5 / math.Sqrt(0.5)
	if got := Welch(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Welch = %v, want %v", got, want)
	}
	// Antisymmetric in the sides.
	if got := Welch(b, a); math.Abs(got+want) > 1e-12 {
		t.Fatalf("Welch swapped = %v, want %v", got, -want)
	}
	// Degenerate cases threshold cleanly.
	if got := Welch(Stats{}, b); got != 0 {
		t.Fatalf("Welch with empty side = %v, want 0", got)
	}
	same := Stats{N: 10, Mean: 3}
	if got := Welch(same, same); got != 0 {
		t.Fatalf("Welch zero-spread equal means = %v, want 0", got)
	}
	if got := Welch(Stats{N: 10, Mean: 4}, same); got < 1e8 {
		t.Fatalf("Welch zero-spread unequal means = %v, want large positive", got)
	}
}

func TestMeasurePairSeparatesLoads(t *testing.T) {
	// Two synthetic ops with a grossly different amount of real work:
	// the harness must rank A slower than B with high confidence, and a
	// pair of identical ops must stay well below the bench gate's
	// threshold. Kept tiny so the test is fast even under -race.
	sink := 0
	heavy := func() {
		for i := 0; i < 20000; i++ {
			sink += i
		}
	}
	light := func() {
		for i := 0; i < 100; i++ {
			sink += i
		}
	}
	opts := Options{Samples: 300}
	res := MeasurePair(opts, heavy, light)
	if res.T < 10 {
		t.Fatalf("heavy-vs-light t = %v, want strongly positive", res.T)
	}
	if res.A.N != 240 || res.B.N != 240 { // 300 trimmed by 10% each tail
		t.Fatalf("trimmed sizes %d/%d, want 240/240", res.A.N, res.B.N)
	}
	_ = sink
}
