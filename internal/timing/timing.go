// Package timing is a statistical timing-variance harness: it decides
// whether two operations — same public shape, different secret state —
// are distinguishable by a co-located adversary with a wall clock.
//
// # Method
//
// The harness interleaves the two operations A/B/A/B within one run,
// so slow drift (frequency scaling, thermal state, scheduler phase)
// lands on both sides equally instead of biasing whichever ran
// second. Each sample times a small fixed-count inner loop rather
// than a single call: the loop amplifies a per-call difference of a
// few nanoseconds well above the timer's own resolution, which is
// exactly the amplification a real attacker would use. The per-side
// sample sets are then trimmed (both tails) to shed scheduler
// preemptions and other heavy outliers, and compared with Welch's
// unequal-variance t statistic:
//
//	t = (mean(A) − mean(B)) / sqrt(var(A)/nA + var(B)/nB)
//
// |t| below a calibrated threshold means the pair is statistically
// indistinguishable at the harness's power; far above it means the
// secret leaks. The threshold is deliberately generous (see the gate
// in internal/bench): shared CI runners are noisy, and the gate's job
// is to catch regressions that reopen a channel by tens of
// nanoseconds per op, not to certify cycle-exactness.
package timing

import (
	"math"
	"sort"
	"time"
)

// Stats summarises one side's trimmed sample set, in nanoseconds per
// sample (one sample = one inner loop, not one call).
type Stats struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean_ns"`
	Variance float64 `json:"variance_ns2"`
}

// PairResult is the outcome of one A-vs-B measurement.
type PairResult struct {
	A Stats   `json:"a"`
	B Stats   `json:"b"`
	T float64 `json:"t"` // Welch's t; positive means A slower
}

// Options tunes a measurement run. The zero value selects defaults.
type Options struct {
	// Samples per side; 0 selects 2000.
	Samples int
	// Warmup iterations per side before sampling begins; 0 selects
	// Samples/10.
	Warmup int
	// TrimFraction is the fraction trimmed from EACH tail of each
	// side's sorted samples; 0 selects 0.1. Values ≥ 0.5 are clamped
	// to leave at least one sample.
	TrimFraction float64
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 2000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Samples / 10
	}
	if o.TrimFraction <= 0 {
		o.TrimFraction = 0.1
	}
	return o
}

// MeasurePair times a and b interleaved and returns the trimmed
// Welch comparison. Each call of a or b should already contain its
// own fixed inner loop; MeasurePair times exactly one call per
// sample.
func MeasurePair(opts Options, a, b func()) PairResult {
	opts = opts.withDefaults()
	for i := 0; i < opts.Warmup; i++ {
		a()
		b()
	}
	sa := make([]float64, opts.Samples)
	sb := make([]float64, opts.Samples)
	for i := 0; i < opts.Samples; i++ {
		t0 := time.Now()
		a()
		t1 := time.Now()
		b()
		t2 := time.Now()
		sa[i] = float64(t1.Sub(t0).Nanoseconds())
		sb[i] = float64(t2.Sub(t1).Nanoseconds())
	}
	ta := Trim(sa, opts.TrimFraction)
	tb := Trim(sb, opts.TrimFraction)
	ra := Summarize(ta)
	rb := Summarize(tb)
	return PairResult{A: ra, B: rb, T: Welch(ra, rb)}
}

// Trim sorts samples and drops frac of each tail, returning the
// retained middle (at least one sample).
func Trim(samples []float64, frac float64) []float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	k := int(float64(len(s)) * frac)
	if 2*k >= len(s) {
		k = (len(s) - 1) / 2
	}
	return s[k : len(s)-k]
}

// Summarize computes sample mean and (unbiased) variance.
func Summarize(samples []float64) Stats {
	n := len(samples)
	if n == 0 {
		return Stats{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	variance := 0.0
	if n > 1 {
		variance = ss / float64(n-1)
	}
	return Stats{N: n, Mean: mean, Variance: variance}
}

// Welch returns the unequal-variance t statistic between two
// summarised sides. Degenerate inputs (no spread, tiny n) yield 0
// when the means agree and ±Inf-clamped-to-large when they do not,
// so callers can threshold |t| uniformly.
func Welch(a, b Stats) float64 {
	if a.N == 0 || b.N == 0 {
		return 0
	}
	se := math.Sqrt(a.Variance/float64(a.N) + b.Variance/float64(b.N))
	diff := a.Mean - b.Mean
	if se == 0 {
		if diff == 0 {
			return 0
		}
		return math.Copysign(1e9, diff)
	}
	return diff / se
}
