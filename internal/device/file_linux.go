//go:build linux

package device

import (
	"fmt"
	"io"
	"syscall"
	"unsafe"
)

// iovMax is the kernel's per-call iovec limit (IOV_MAX / UIO_MAXIOV).
const iovMax = 1024

// fileVec is the linux vectored-I/O scratch: the iovec array reused
// across bursts so a steady-state shuffle quantum allocates nothing.
type fileVec struct {
	iov []syscall.Iovec
}

// preadvAt fills bufs from the contiguous file range starting at off
// using preadv, chunked to IOV_MAX, retrying EINTR and resuming after
// partial transfers.
func (d *File) preadvAt(bufs [][]byte, off int64) error {
	return d.vectoredAt(bufs, off, false)
}

// pwritevAt writes bufs to the contiguous file range starting at off
// using pwritev.
func (d *File) pwritevAt(bufs [][]byte, off int64) error {
	return d.vectoredAt(bufs, off, true)
}

func (d *File) vectoredAt(bufs [][]byte, off int64, write bool) error {
	trap := uintptr(syscall.SYS_PREADV)
	if write {
		trap = uintptr(syscall.SYS_PWRITEV)
	}
	fd := d.f.Fd()
	for len(bufs) > 0 {
		n := len(bufs)
		if n > iovMax {
			n = iovMax
		}
		iov := d.vec.iov[:0]
		total := 0
		for _, b := range bufs[:n] {
			if len(b) == 0 {
				continue
			}
			iov = append(iov, syscall.Iovec{Base: &b[0], Len: uint64(len(b))})
			total += len(b)
		}
		d.vec.iov = iov // keep the (possibly grown) capacity
		for total > 0 {
			// pos is split low/high; on 64-bit the kernel ORs them back
			// together, on 32-bit they are genuinely separate halves.
			r1, _, errno := syscall.Syscall6(trap, fd,
				uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)),
				uintptr(off), uintptr(off>>32), 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno != 0 {
				return errno
			}
			got := int(r1)
			if got <= 0 {
				if write {
					return fmt.Errorf("pwritev: %w", io.ErrShortWrite)
				}
				return fmt.Errorf("preadv: %w", io.ErrUnexpectedEOF)
			}
			total -= got
			off += int64(got)
			if total == 0 {
				break
			}
			// Partial transfer: drop fully-consumed iovecs and trim the
			// boundary one, then resume at the advanced offset.
			for got > 0 {
				if int(iov[0].Len) <= got {
					got -= int(iov[0].Len)
					iov = iov[1:]
				} else {
					iov[0].Base = (*byte)(unsafe.Add(unsafe.Pointer(iov[0].Base), got))
					iov[0].Len -= uint64(got)
					got = 0
				}
			}
		}
		bufs = bufs[n:]
	}
	return nil
}
