package device

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

func newTestDevice(t *testing.T, p Profile, slotSize int, slots int64) (*Sim, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	d, err := New(p, slotSize, slots, clk)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, clk
}

func TestNewValidation(t *testing.T) {
	clk := simclock.New()
	cases := []struct {
		name     string
		profile  Profile
		slotSize int
		slots    int64
		clock    *simclock.Clock
	}{
		{"zero bandwidth", Profile{Name: "x", ReadBandwidth: 0, WriteBandwidth: 1, SeqWindow: 1}, 8, 8, clk},
		{"negative penalty", Profile{Name: "x", ReadBandwidth: 1, WriteBandwidth: 1, RandomReadPenalty: -1, SeqWindow: 1}, 8, 8, clk},
		{"zero seq window", Profile{Name: "x", ReadBandwidth: 1, WriteBandwidth: 1, SeqWindow: 0}, 8, 8, clk},
		{"zero slot size", PaperHDD(), 0, 8, clk},
		{"zero slots", PaperHDD(), 8, 0, clk},
		{"nil clock", PaperHDD(), 8, 8, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.profile, tc.slotSize, tc.slots, tc.clock); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 16, 32)
	src := []byte("0123456789abcdef")
	if err := d.Write(5, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	dst := make([]byte, 16)
	if err := d.Read(5, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("Read = %q, want %q", dst, src)
	}
}

func TestReadUnwrittenSlotIsZero(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 8, 8)
	dst := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := d.Read(3, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("unwritten slot byte %d = %d, want 0", i, b)
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 8, 8)
	buf := make([]byte, 8)
	if err := d.Read(-1, buf); err == nil {
		t.Error("Read(-1) succeeded")
	}
	if err := d.Read(8, buf); err == nil {
		t.Error("Read(8) succeeded on 8-slot device")
	}
	if err := d.Write(9, buf); err == nil {
		t.Error("Write(9) succeeded on 8-slot device")
	}
	if err := d.Read(0, make([]byte, 4)); err == nil {
		t.Error("Read with short buffer succeeded")
	}
	if err := d.Write(0, make([]byte, 4)); err == nil {
		t.Error("Write with short payload succeeded")
	}
	if err := d.WriteRaw(0, make([]byte, 4)); err == nil {
		t.Error("WriteRaw with short payload succeeded")
	}
	if err := d.WriteRaw(99, buf); err == nil {
		t.Error("WriteRaw out of range succeeded")
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	const slotSize = 1024
	const slots = 4096

	// Sequential sweep.
	dSeq, clkSeq := newTestDevice(t, PaperHDD(), slotSize, slots)
	buf := make([]byte, slotSize)
	for i := int64(0); i < slots; i++ {
		if err := dSeq.Read(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	seqTime := clkSeq.Now()

	// Random-ish sweep: stride pattern guaranteed non-sequential.
	dRand, clkRand := newTestDevice(t, PaperHDD(), slotSize, slots)
	for i := int64(0); i < slots; i++ {
		slot := (i * 1021) % slots // 1021 prime, stride >> SeqWindow
		if err := dRand.Read(slot, buf); err != nil {
			t.Fatal(err)
		}
	}
	randTime := clkRand.Now()

	ratio := float64(randTime) / float64(seqTime)
	if ratio < 5 || ratio > 40 {
		t.Fatalf("random/sequential latency ratio = %.1f, want within [5,40] (paper observes 10-20x)", ratio)
	}
}

func TestFirstAccessIsRandom(t *testing.T) {
	d, clk := newTestDevice(t, PaperHDD(), 1024, 16)
	buf := make([]byte, 1024)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < PaperHDD().RandomReadPenalty {
		t.Fatalf("first access cost %v, want at least the random penalty %v", clk.Now(), PaperHDD().RandomReadPenalty)
	}
	if got := d.Stats().SeqReads; got != 0 {
		t.Fatalf("first access counted as sequential (SeqReads=%d)", got)
	}
}

func TestSeqWindowCoalescing(t *testing.T) {
	p := PaperHDD() // SeqWindow = 8
	d, _ := newTestDevice(t, p, 1024, 64)
	buf := make([]byte, 1024)
	d.Read(0, buf) // random: establishes head at 1
	d.Read(4, buf) // within window of head=1: sequential
	d.Read(5, buf) // next: sequential
	d.Read(40, buf)
	st := d.Stats()
	if st.SeqReads != 2 {
		t.Fatalf("SeqReads = %d, want 2", st.SeqReads)
	}
	if st.Reads != 4 {
		t.Fatalf("Reads = %d, want 4", st.Reads)
	}
}

func TestResetHeadForcesRandom(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 1024, 16)
	buf := make([]byte, 1024)
	d.Read(0, buf)
	d.ResetHead()
	d.Read(1, buf) // would have been sequential
	if got := d.Stats().SeqReads; got != 0 {
		t.Fatalf("SeqReads = %d after ResetHead, want 0", got)
	}
}

func TestBackwardAccessIsRandom(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 1024, 16)
	buf := make([]byte, 1024)
	d.Read(5, buf)
	d.Read(4, buf) // backwards
	if got := d.Stats().SeqReads; got != 0 {
		t.Fatalf("backward access counted sequential (SeqReads=%d)", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	d, clk := newTestDevice(t, PaperHDD(), 512, 32)
	buf := make([]byte, 512)
	for i := int64(0); i < 10; i++ {
		if err := d.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		if err := d.Read(i*3, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Writes != 10 || st.Reads != 5 {
		t.Fatalf("ops = (%d reads, %d writes), want (5, 10)", st.Reads, st.Writes)
	}
	if st.BytesWritten != 10*512 || st.BytesRead != 5*512 {
		t.Fatalf("bytes = (%d, %d), want (2560, 5120)", st.BytesRead, st.BytesWritten)
	}
	if st.Busy != clk.Now() {
		t.Fatalf("Busy = %v but clock shows %v (single device should own all time)", st.Busy, clk.Now())
	}
	if st.Ops() != 15 {
		t.Fatalf("Ops() = %d, want 15", st.Ops())
	}
	d.ResetStats()
	if d.Stats().Ops() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, SeqReads: 5, SeqWrites: 6, Busy: 7}
	b := Stats{Reads: 10, Writes: 20, BytesRead: 30, BytesWritten: 40, SeqReads: 50, SeqWrites: 60, Busy: 70}
	got := a.Add(b)
	want := Stats{Reads: 11, Writes: 22, BytesRead: 33, BytesWritten: 44, SeqReads: 55, SeqWrites: 66, Busy: 77}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func TestWriteRawChargesNoTime(t *testing.T) {
	d, clk := newTestDevice(t, PaperHDD(), 64, 8)
	if err := d.WriteRaw(2, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 0 {
		t.Fatalf("WriteRaw advanced the clock to %v", clk.Now())
	}
	if d.Stats().Ops() != 0 {
		t.Fatal("WriteRaw touched the counters")
	}
}

func TestHookObservesAccesses(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 64, 8)
	type ev struct {
		dev  string
		op   Op
		slot int64
	}
	var got []ev
	d.SetHook(func(dev string, op Op, slot int64) {
		got = append(got, ev{dev, op, slot})
	})
	buf := make([]byte, 64)
	d.Write(3, buf)
	d.Read(3, buf)
	want := []ev{{"hdd", OpWrite, 3}, {"hdd", OpRead, 3}}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Removing the hook stops observation.
	d.SetHook(nil)
	d.Read(0, buf)
	if len(got) != 2 {
		t.Fatal("hook fired after removal")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatalf("Op.String() = %q/%q", OpRead, OpWrite)
	}
}

func TestProfilesAreValid(t *testing.T) {
	clk := simclock.New()
	for _, p := range []Profile{PaperHDD(), RawHDD7200(), SSD(), DRAM()} {
		if _, err := New(p, 1024, 16, clk); err != nil {
			t.Errorf("profile %q rejected: %v", p.Name, err)
		}
		if strings.TrimSpace(p.Name) == "" {
			t.Errorf("profile has empty name: %+v", p)
		}
	}
}

func TestDRAMMuchFasterThanHDD(t *testing.T) {
	buf := make([]byte, 1024)

	dram, clkD := newTestDevice(t, DRAM(), 1024, 1024)
	for i := int64(0); i < 100; i++ {
		dram.Read((i*37)%1024, buf)
	}
	dramTime := clkD.Now()

	hdd, clkH := newTestDevice(t, PaperHDD(), 1024, 1024)
	for i := int64(0); i < 100; i++ {
		hdd.Read((i*37)%1024, buf)
	}
	hddTime := clkH.Now()

	if hddTime < 50*dramTime {
		t.Fatalf("hdd random (%v) should be >>50x dram random (%v)", hddTime, dramTime)
	}
}

func TestPaperHDDStreamingThroughput(t *testing.T) {
	// Writing 1 MB sequentially should take ~1/55.2 s per Table 5-2.
	const slotSize = 4096
	const slots = 256 // 1 MB
	d, clk := newTestDevice(t, PaperHDD(), slotSize, slots)
	payload := make([]byte, slotSize)
	for i := int64(0); i < slots; i++ {
		if err := d.Write(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	totalBytes := float64(slots * slotSize)
	want := time.Duration(totalBytes / (55.2 * MB) * float64(time.Second))
	got := clk.Now() - PaperHDD().RandomWritePenalty // first op pays positioning
	tolerance := want / 10
	if got < want-tolerance || got > want+tolerance {
		t.Fatalf("sequential 1MB write took %v, want %v ±10%%", got, want)
	}
}
