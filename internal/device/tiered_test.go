package device

import (
	"bytes"
	"testing"

	"repro/internal/simclock"
)

func newTieredPair(t *testing.T, slotSize int, fastSlots, slowSlots, boundary, total int64) (*Tiered, *Sim, *Sim) {
	t.Helper()
	clk := simclock.New()
	fast, err := New(DRAM(), slotSize, fastSlots, clk)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(PaperHDD(), slotSize, slowSlots, clk)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := NewTiered(fast, slow, boundary, total)
	if err != nil {
		t.Fatal(err)
	}
	return tiered, fast, slow
}

func TestNewTieredValidation(t *testing.T) {
	clk := simclock.New()
	fast, _ := New(DRAM(), 64, 10, clk)
	slow, _ := New(PaperHDD(), 64, 10, clk)
	other, _ := New(PaperHDD(), 32, 10, clk)

	if _, err := NewTiered(nil, slow, 5, 10); err == nil {
		t.Error("accepted nil fast device")
	}
	if _, err := NewTiered(fast, nil, 5, 10); err == nil {
		t.Error("accepted nil slow device")
	}
	if _, err := NewTiered(fast, other, 5, 10); err == nil {
		t.Error("accepted mismatched slot sizes")
	}
	if _, err := NewTiered(fast, slow, -1, 10); err == nil {
		t.Error("accepted negative boundary")
	}
	if _, err := NewTiered(fast, slow, 11, 10); err == nil {
		t.Error("accepted boundary beyond total")
	}
	if _, err := NewTiered(fast, slow, 5, 100); err == nil {
		t.Error("accepted slow tier too small for remainder")
	}
	if _, err := NewTiered(fast, slow, 20, 25); err == nil {
		t.Error("accepted boundary beyond fast capacity")
	}
}

func TestTieredRouting(t *testing.T) {
	tiered, fast, slow := newTieredPair(t, 16, 8, 8, 4, 12)
	src := bytes.Repeat([]byte{0xAA}, 16)

	// Slot 2 → fast tier slot 2.
	if err := tiered.Write(2, src); err != nil {
		t.Fatal(err)
	}
	if fast.Stats().Writes != 1 || slow.Stats().Writes != 0 {
		t.Fatalf("slot 2 routed wrong: fast=%d slow=%d", fast.Stats().Writes, slow.Stats().Writes)
	}

	// Slot 9 → slow tier slot 5.
	if err := tiered.Write(9, src); err != nil {
		t.Fatal(err)
	}
	if slow.Stats().Writes != 1 {
		t.Fatalf("slot 9 not routed to slow tier")
	}
	dst := make([]byte, 16)
	if err := slow.Read(5, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("slow tier offset mapping wrong")
	}

	// Round trip through the composite.
	if err := tiered.Read(9, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("composite read mismatched")
	}
}

func TestTieredGeometryAccessors(t *testing.T) {
	tiered, fast, slow := newTieredPair(t, 16, 8, 8, 4, 12)
	if tiered.Slots() != 12 {
		t.Fatalf("Slots() = %d, want 12", tiered.Slots())
	}
	if tiered.Boundary() != 4 {
		t.Fatalf("Boundary() = %d", tiered.Boundary())
	}
	if tiered.SlotSize() != 16 {
		t.Fatalf("SlotSize() = %d", tiered.SlotSize())
	}
	if tiered.Fast() != Device(fast) || tiered.Slow() != Device(slow) {
		t.Fatal("tier accessors wrong")
	}
	if tiered.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestTieredStatsSum(t *testing.T) {
	tiered, _, _ := newTieredPair(t, 16, 8, 8, 4, 12)
	src := make([]byte, 16)
	tiered.Write(0, src)  // fast
	tiered.Write(10, src) // slow
	tiered.Read(0, src)
	st := tiered.Stats()
	if st.Writes != 2 || st.Reads != 1 {
		t.Fatalf("summed stats = %+v", st)
	}
}

func TestTieredWriteRawRouting(t *testing.T) {
	tiered, fast, slow := newTieredPair(t, 16, 8, 8, 4, 12)
	src := bytes.Repeat([]byte{0x33}, 16)
	if err := tiered.WriteRaw(1, src); err != nil {
		t.Fatal(err)
	}
	if err := tiered.WriteRaw(6, src); err != nil {
		t.Fatal(err)
	}
	if fast.Stats().Ops() != 0 || slow.Stats().Ops() != 0 {
		t.Fatal("WriteRaw charged device time")
	}
	dst := make([]byte, 16)
	tiered.Read(1, dst)
	if !bytes.Equal(dst, src) {
		t.Fatal("raw write to fast tier lost")
	}
	tiered.Read(6, dst)
	if !bytes.Equal(dst, src) {
		t.Fatal("raw write to slow tier lost")
	}
}
