package device

import "fmt"

// Vectored slot I/O. The shuffle quantum and multi-slot cycle paths
// touch runs of slots at a time; issuing them through the one-slot
// Read/Write methods costs one syscall per slot on a File backend.
// Backend therefore carries first-class ReadSlots/WriteSlots, and this
// file provides the two pieces that keep the old world working:
//
//   - ReadSlotsSeq/WriteSlotsSeq, the sequential fallback any Device
//     can be adapted through — it IS the accounting contract: vectored
//     implementations must charge, count and observe exactly as the
//     fallback would;
//   - the Sim and Tiered implementations (Sim has no syscalls to
//     coalesce; Tiered splits a request into per-tier runs and lets
//     each tier coalesce its own).
//
// The package-level ReadSlots/WriteSlots helpers adapt a plain Device:
// they use the native vectored path when the device has one and the
// sequential fallback otherwise.

// vectorDevice is the vectored capability subset of Backend, used to
// probe plain Devices for a native gather/scatter path.
type vectorDevice interface {
	ReadSlots(slots []int64, bufs [][]byte) error
	WriteSlots(slots []int64, bufs [][]byte) error
}

func checkVector(slots []int64, bufs [][]byte) error {
	if len(slots) != len(bufs) {
		return fmt.Errorf("device: %d slots, %d buffers", len(slots), len(bufs))
	}
	return nil
}

// ReadSlotsSeq implements the ReadSlots contract as a loop of Read
// calls — the fallback adapter for devices without a native vectored
// path, and the reference accounting behaviour vectored
// implementations must match.
func ReadSlotsSeq(d Device, slots []int64, bufs [][]byte) error {
	if err := checkVector(slots, bufs); err != nil {
		return err
	}
	for i, slot := range slots {
		if err := d.Read(slot, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSlotsSeq implements the WriteSlots contract as a loop of Write
// calls.
func WriteSlotsSeq(d Device, slots []int64, bufs [][]byte) error {
	if err := checkVector(slots, bufs); err != nil {
		return err
	}
	for i, slot := range slots {
		if err := d.Write(slot, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSlots reads through d's native vectored path when it has one and
// the sequential fallback otherwise.
func ReadSlots(d Device, slots []int64, bufs [][]byte) error {
	if vd, ok := d.(vectorDevice); ok {
		return vd.ReadSlots(slots, bufs)
	}
	return ReadSlotsSeq(d, slots, bufs)
}

// WriteSlots writes through d's native vectored path when it has one
// and the sequential fallback otherwise.
func WriteSlots(d Device, slots []int64, bufs [][]byte) error {
	if vd, ok := d.(vectorDevice); ok {
		return vd.WriteSlots(slots, bufs)
	}
	return WriteSlotsSeq(d, slots, bufs)
}

// ReadSlots implements Backend. A Sim has no syscalls to coalesce, so
// the fallback is also the fast path.
func (s *Sim) ReadSlots(slots []int64, bufs [][]byte) error {
	return ReadSlotsSeq(s, slots, bufs)
}

// WriteSlots implements Backend.
func (s *Sim) WriteSlots(slots []int64, bufs [][]byte) error {
	return WriteSlotsSeq(s, slots, bufs)
}

// ReadSlots implements Backend by splitting the request into maximal
// same-tier runs, translating slow-tier addresses, and letting each
// tier's own vectored path coalesce its run.
func (t *Tiered) ReadSlots(slots []int64, bufs [][]byte) error {
	return t.vectored(slots, bufs, ReadSlots)
}

// WriteSlots implements Backend.
func (t *Tiered) WriteSlots(slots []int64, bufs [][]byte) error {
	return t.vectored(slots, bufs, WriteSlots)
}

func (t *Tiered) vectored(slots []int64, bufs [][]byte, op func(Device, []int64, [][]byte) error) error {
	if err := checkVector(slots, bufs); err != nil {
		return err
	}
	for start := 0; start < len(slots); {
		fast := slots[start] < t.boundary
		end := start + 1
		for end < len(slots) && (slots[end] < t.boundary) == fast {
			end++
		}
		dev, run := t.fast, slots[start:end]
		if !fast {
			dev = t.slow
			translated := make([]int64, end-start)
			for i, s := range run {
				translated[i] = s - t.boundary
			}
			run = translated
		}
		if err := op(dev, run, bufs[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}
