package device

import "time"

// MB is one megabyte in bytes, the unit the paper's Table 5-2 uses for
// device throughput.
const MB = 1 << 20

// PaperHDD returns the latency profile calibrated to the paper's
// experimental machine (Table 5-2): a 7200 RPM 500 GB HDD measured at
// 102.7 MB/s read and 55.2 MB/s write streaming throughput.
//
// The random-access penalties are the *effective* values the paper's
// numbers imply rather than raw mechanical seek times: Table 5-3/5-4
// report ~77-107 µs per 1 KB random read (the 64 MB / 1 GB data sets
// ride the OS page cache and NCQ), and the thesis observes sequential
// streaming to be "10x to 20x faster than the random page reading".
// With a 70 µs read penalty a random 1 KB read costs ≈ 80 µs versus
// ≈ 9.5 µs sequential — inside the paper's observed band.
func PaperHDD() Profile {
	return Profile{
		Name:               "hdd",
		ReadBandwidth:      102.7 * MB,
		WriteBandwidth:     55.2 * MB,
		RandomReadPenalty:  70 * time.Microsecond,
		RandomWritePenalty: 140 * time.Microsecond,
		SeqWindow:          8,
	}
}

// RawHDD7200 returns a physically faithful 7200 RPM profile (average
// seek 8.5 ms, average rotational latency 4.17 ms) with no page-cache
// softening. Used by ablations that ask how the schemes behave on a
// cold mechanical disk.
func RawHDD7200() Profile {
	return Profile{
		Name:               "raw-hdd",
		ReadBandwidth:      102.7 * MB,
		WriteBandwidth:     55.2 * MB,
		RandomReadPenalty:  8500*time.Microsecond + 4170*time.Microsecond,
		RandomWritePenalty: 8500*time.Microsecond + 4170*time.Microsecond,
		SeqWindow:          8,
	}
}

// SSD returns a SATA-SSD-class profile for ablations: ~90 µs random
// read, ~220 µs random write (erase-block effects), 520/450 MB/s
// streaming.
func SSD() Profile {
	return Profile{
		Name:               "ssd",
		ReadBandwidth:      520 * MB,
		WriteBandwidth:     450 * MB,
		RandomReadPenalty:  90 * time.Microsecond,
		RandomWritePenalty: 220 * time.Microsecond,
		SeqWindow:          4,
	}
}

// DRAM returns a profile for the in-memory tier: DDR4-2133-class
// streaming bandwidth with a CAS-latency-scale random penalty. The
// paper's memory tier (16 GB DDR4 PC4-2133) streams at roughly
// 12.8 GB/s with ~60 ns access latency.
func DRAM() Profile {
	return Profile{
		Name:               "dram",
		ReadBandwidth:      12800 * MB,
		WriteBandwidth:     12800 * MB,
		RandomReadPenalty:  60 * time.Nanosecond,
		RandomWritePenalty: 60 * time.Nanosecond,
		SeqWindow:          64,
	}
}
