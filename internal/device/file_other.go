//go:build !linux

package device

import "fmt"

// fileVec is the portable vectored-I/O scratch: a contiguous staging
// buffer that turns a burst into one ReadAt/WriteAt.
type fileVec struct {
	scratch []byte
}

func (d *File) stage(n int) []byte {
	if cap(d.vec.scratch) < n {
		d.vec.scratch = make([]byte, n)
	}
	return d.vec.scratch[:n]
}

// preadvAt fills bufs from the contiguous file range starting at off
// with a single ReadAt through a staging buffer.
func (d *File) preadvAt(bufs [][]byte, off int64) error {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	s := d.stage(total)
	if _, err := d.f.ReadAt(s, off); err != nil {
		return fmt.Errorf("pread: %w", err)
	}
	for _, b := range bufs {
		copy(b, s[:len(b)])
		s = s[len(b):]
	}
	return nil
}

// pwritevAt writes bufs to the contiguous file range starting at off
// with a single WriteAt through a staging buffer.
func (d *File) pwritevAt(bufs [][]byte, off int64) error {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	s := d.stage(total)
	rest := s
	for _, b := range bufs {
		copy(rest, b)
		rest = rest[len(b):]
	}
	if _, err := d.f.WriteAt(s, off); err != nil {
		return fmt.Errorf("pwrite: %w", err)
	}
	return nil
}
