package device

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/simclock"
)

// traceEvent records one hook observation for trace comparison.
type traceEvent struct {
	dev  string
	op   Op
	slot int64
}

func recordTrace(d Backend) *[]traceEvent {
	var tr []traceEvent
	d.SetHook(func(dev string, op Op, slot int64) {
		tr = append(tr, traceEvent{dev, op, slot})
	})
	return &tr
}

// vectorBackends builds each Backend flavour over a fresh store, all
// with the same geometry, so the equality tests below can run against
// every implementation.
func vectorBackends(t *testing.T, slotSize int, slots int64) map[string]func() (Backend, *simclock.Clock) {
	t.Helper()
	return map[string]func() (Backend, *simclock.Clock){
		"sim": func() (Backend, *simclock.Clock) {
			d, clk := newTestDevice(t, PaperHDD(), slotSize, slots)
			return d, clk
		},
		"file": func() (Backend, *simclock.Clock) {
			d, clk, _ := newTestFile(t, PaperHDD(), slotSize, slots, 0)
			return d, clk
		},
		"file-fsync": func() (Backend, *simclock.Clock) {
			d, clk, _ := newTestFile(t, PaperHDD(), slotSize, slots, 2)
			return d, clk
		},
		"tiered": func() (Backend, *simclock.Clock) {
			clk := simclock.New()
			fast, err := New(DRAM(), slotSize, slots/2, clk)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := New(PaperHDD(), slotSize, slots-slots/2, clk)
			if err != nil {
				t.Fatal(err)
			}
			td, err := NewTiered(fast, slow, slots/2, slots)
			if err != nil {
				t.Fatal(err)
			}
			return td, clk
		},
	}
}

// slotPatterns are the access shapes the ORAM layers issue: a
// contiguous run (shuffle quantum), a strided path, a run crossing the
// tiered boundary, and a single slot.
func slotPatterns(slots int64) map[string][]int64 {
	mid := slots / 2
	return map[string][]int64{
		"contiguous": {3, 4, 5, 6, 7, 8},
		"strided":    {1, 5, 2, 9, 0, slots - 1},
		"boundary":   {mid - 2, mid - 1, mid, mid + 1},
		"single":     {mid},
	}
}

// TestVectoredMatchesSequential is the accounting contract of
// ReadSlots/WriteSlots: for every backend and access shape, the
// vectored path must move the same bytes, charge the same simulated
// time, count the same ops and emit the same hook trace as the
// equivalent loop of Read/Write calls.
func TestVectoredMatchesSequential(t *testing.T) {
	const slotSize = 64
	const slots = int64(32)
	for name, mk := range vectorBackends(t, slotSize, slots) {
		for pat, slotIdx := range slotPatterns(slots) {
			t.Run(fmt.Sprintf("%s/%s", name, pat), func(t *testing.T) {
				seqDev, seqClk := mk()
				vecDev, vecClk := mk()

				bufs := make([][]byte, len(slotIdx))
				for i := range bufs {
					bufs[i] = make([]byte, slotSize)
					for j := range bufs[i] {
						bufs[i][j] = byte(i*31 + j)
					}
				}

				seqTrace := recordTrace(seqDev)
				vecTrace := recordTrace(vecDev)

				// Write phase: loop vs vectored.
				for i, s := range slotIdx {
					if err := seqDev.Write(s, bufs[i]); err != nil {
						t.Fatalf("seq Write(%d): %v", s, err)
					}
				}
				if err := WriteSlots(vecDev, slotIdx, bufs); err != nil {
					t.Fatalf("WriteSlots: %v", err)
				}

				// Read phase into fresh buffers.
				seqGot := make([][]byte, len(slotIdx))
				vecGot := make([][]byte, len(slotIdx))
				for i := range slotIdx {
					seqGot[i] = make([]byte, slotSize)
					vecGot[i] = make([]byte, slotSize)
				}
				for i, s := range slotIdx {
					if err := seqDev.Read(s, seqGot[i]); err != nil {
						t.Fatalf("seq Read(%d): %v", s, err)
					}
				}
				if err := ReadSlots(vecDev, slotIdx, vecGot); err != nil {
					t.Fatalf("ReadSlots: %v", err)
				}

				for i := range slotIdx {
					if !bytes.Equal(vecGot[i], bufs[i]) {
						t.Fatalf("slot %d: vectored read returned wrong data", slotIdx[i])
					}
					if !bytes.Equal(seqGot[i], vecGot[i]) {
						t.Fatalf("slot %d: vectored and sequential reads differ", slotIdx[i])
					}
				}
				if s, v := seqDev.Stats(), vecDev.Stats(); s != v {
					t.Fatalf("stats diverge: sequential %+v, vectored %+v", s, v)
				}
				if s, v := seqClk.Now(), vecClk.Now(); s != v {
					t.Fatalf("clock diverges: sequential %v, vectored %v", s, v)
				}
				if len(*seqTrace) != len(*vecTrace) {
					t.Fatalf("trace lengths diverge: %d vs %d", len(*seqTrace), len(*vecTrace))
				}
				for i := range *seqTrace {
					if (*seqTrace)[i] != (*vecTrace)[i] {
						t.Fatalf("trace event %d: sequential %+v, vectored %+v", i, (*seqTrace)[i], (*vecTrace)[i])
					}
				}
			})
		}
	}
}

// TestFileVectoredSyncCounts pins the fsync contract: a vectored write
// burst must trigger exactly the Syncs a sequential loop would.
func TestFileVectoredSyncCounts(t *testing.T) {
	const slotSize = 32
	seq, _, _ := newTestFile(t, PaperHDD(), slotSize, 16, 3)
	vec, _, _ := newTestFile(t, PaperHDD(), slotSize, 16, 3)
	slotIdx := []int64{2, 3, 4, 5, 6, 7, 8}
	bufs := make([][]byte, len(slotIdx))
	for i := range bufs {
		bufs[i] = make([]byte, slotSize)
	}
	for i, s := range slotIdx {
		if err := seq.Write(s, bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSlots(vec, slotIdx, bufs); err != nil {
		t.Fatal(err)
	}
	if seq.Syncs() != vec.Syncs() {
		t.Fatalf("sync counts diverge: sequential %d, vectored %d", seq.Syncs(), vec.Syncs())
	}
}

// TestVectoredValidation pins the argument contract shared by every
// implementation.
func TestVectoredValidation(t *testing.T) {
	d, _ := newTestDevice(t, PaperHDD(), 16, 8)
	good := [][]byte{make([]byte, 16)}
	if err := ReadSlots(d, []int64{0, 1}, good); err == nil {
		t.Error("ReadSlots accepted mismatched slot/buffer counts")
	}
	if err := ReadSlots(d, []int64{9}, good); err == nil {
		t.Error("ReadSlots accepted an out-of-range slot")
	}
	if err := WriteSlots(d, []int64{0}, [][]byte{make([]byte, 8)}); err == nil {
		t.Error("WriteSlots accepted a short payload")
	}
	if err := ReadSlots(d, nil, nil); err != nil {
		t.Errorf("empty vectored op failed: %v", err)
	}
}
