// Package device simulates the storage hierarchy the paper evaluates
// on: a slow HDD storage backend, fast DRAM, and (for ablations) an
// SSD. Devices store fixed-size opaque slots — the ciphertext produced
// by a blockcipher.Sealer — and charge virtual time on a shared
// simclock.Clock according to a latency profile.
//
// The two properties the paper's evaluation depends on are modelled
// explicitly:
//
//  1. random block access on the HDD is dominated by positioning cost
//     (seek + rotation, or their page-cache-softened effective value);
//  2. sequential streaming runs at full bandwidth, 10-20x faster per
//     byte, which is what makes H-ORAM's sequential shuffle cheap.
//
// A Sim tracks its head position: an access to the slot following the
// previous access is sequential and pays bandwidth cost only; anything
// else pays the random-access positioning cost first.
package device

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// Op identifies the direction of a device access, as visible to an
// adversary probing the bus.
type Op uint8

// Device operations.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Stats aggregates traffic counters for one device.
type Stats struct {
	Reads        int64         // read ops
	Writes       int64         // write ops
	BytesRead    int64         // payload bytes read
	BytesWritten int64         // payload bytes written
	SeqReads     int64         // reads that hit the sequential fast path
	SeqWrites    int64         // writes that hit the sequential fast path
	Busy         time.Duration // virtual time this device was busy
}

// Add returns the element-wise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Reads:        s.Reads + t.Reads,
		Writes:       s.Writes + t.Writes,
		BytesRead:    s.BytesRead + t.BytesRead,
		BytesWritten: s.BytesWritten + t.BytesWritten,
		SeqReads:     s.SeqReads + t.SeqReads,
		SeqWrites:    s.SeqWrites + t.SeqWrites,
		Busy:         s.Busy + t.Busy,
	}
}

// Ops returns the total number of operations.
func (s Stats) Ops() int64 { return s.Reads + s.Writes }

// Device is a slot-addressed store with simulated access cost.
//
// Implementations must tolerate concurrent callers only if documented;
// the ORAM controllers in this repository serialise device access.
type Device interface {
	// Name identifies the device in reports ("hdd", "dram", ...).
	Name() string
	// SlotSize returns the fixed payload size of one slot in bytes.
	SlotSize() int
	// Slots returns the number of addressable slots.
	Slots() int64
	// Read copies slot's payload into dst (len(dst) ≥ SlotSize) and
	// charges simulated time.
	Read(slot int64, dst []byte) error
	// Write stores src (len(src) == SlotSize) into slot and charges
	// simulated time.
	Write(slot int64, src []byte) error
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
}

// Hook observes every access to a device; the trace package uses it to
// record the adversary's view. The hook runs synchronously on the
// accessing goroutine.
type Hook func(dev string, op Op, slot int64)

// Backend is the full device contract the ORAM controllers in this
// repository build on: a Device plus the raw setup paths, head and
// counter controls, and the adversary hook Sim has always offered.
// *Sim, *File and *Tiered all satisfy it, so any of them can back an
// ORAM's storage tier.
type Backend interface {
	Device
	// WriteRaw stores src without charging simulated time or counters
	// (unmeasured experiment setup).
	WriteRaw(slot int64, src []byte) error
	// ReadRaw copies a slot's payload without charging simulated time
	// or counters (snapshot capture, debugging).
	ReadRaw(slot int64, dst []byte) error
	// ResetHead forgets the head position so the next access is
	// charged as random.
	ResetHead()
	// ResetStats zeroes the traffic counters.
	ResetStats()
	// SetHook installs fn to observe every access; nil removes it.
	SetHook(fn Hook)
	// ReadSlots reads slots[i] into bufs[i] for every i. Accounting is
	// per slot in argument order — clock charges, counters and hook
	// events are exactly those of the equivalent Read loop — but an
	// implementation may coalesce the data transfer (File turns each
	// contiguous run into one preadv).
	ReadSlots(slots []int64, bufs [][]byte) error
	// WriteSlots writes bufs[i] into slots[i] for every i, with the
	// same per-slot accounting contract as ReadSlots.
	WriteSlots(slots []int64, bufs [][]byte) error
}

// Syncer is the optional durability contract: devices with a real
// backing medium flush buffered writes to it. Sim has nothing to
// flush; File fsyncs.
type Syncer interface {
	Sync() error
}

// Factory builds the storage-tier device for an ORAM instance. The
// ORAM passes its latency profile, sealed-slot geometry and the
// storage-tier clock; the factory decides the medium (Sim, File, ...).
type Factory func(p Profile, slotSize int, slots int64, clk *simclock.Clock) (Backend, error)

// Profile parameterises the latency model of a Sim.
type Profile struct {
	// Name labels the device class, e.g. "hdd".
	Name string
	// ReadBandwidth and WriteBandwidth are streaming rates in
	// bytes/second once the head is positioned.
	ReadBandwidth  float64
	WriteBandwidth float64
	// RandomReadPenalty / RandomWritePenalty are charged on every
	// access that is not sequential with respect to the previous one
	// (seek + rotational latency on a raw disk, or the page-cache
	// softened effective value the paper's machine exhibits).
	RandomReadPenalty  time.Duration
	RandomWritePenalty time.Duration
	// SeqWindow is how many slots ahead of the head an access may land
	// and still count as sequential (models readahead/NCQ coalescing).
	// 1 means only the exact next slot is sequential.
	SeqWindow int64
}

func (p Profile) validate() error {
	if p.ReadBandwidth <= 0 || p.WriteBandwidth <= 0 {
		return fmt.Errorf("device: profile %q: bandwidths must be positive", p.Name)
	}
	if p.RandomReadPenalty < 0 || p.RandomWritePenalty < 0 {
		return fmt.Errorf("device: profile %q: penalties must be non-negative", p.Name)
	}
	if p.SeqWindow < 1 {
		return fmt.Errorf("device: profile %q: SeqWindow must be ≥ 1", p.Name)
	}
	return nil
}

// transferTime returns the streaming time for n bytes at bw bytes/s.
func transferTime(n int, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// meter is the accounting core shared by every latency-modelled device
// in this package: slot geometry, head tracking, the profile's
// streaming/positioning cost model, the traffic counters and the
// adversary hook. Sim and File embed it, so their cost accounting is
// one implementation and cannot drift apart — the property that makes
// a Sim→File swap invisible to the paper's cost model.
type meter struct {
	profile  Profile
	clock    *simclock.Clock
	slotSize int
	slots    int64
	head     int64 // next slot a sequential access would hit; -1 initially
	stats    Stats
	hook     Hook
}

func newMeter(p Profile, slotSize int, slots int64, clock *simclock.Clock) (meter, error) {
	if err := p.validate(); err != nil {
		return meter{}, err
	}
	if slotSize <= 0 {
		return meter{}, fmt.Errorf("device: slot size must be positive, got %d", slotSize)
	}
	if slots <= 0 {
		return meter{}, fmt.Errorf("device: slot count must be positive, got %d", slots)
	}
	if clock == nil {
		return meter{}, fmt.Errorf("device: nil clock")
	}
	return meter{profile: p, clock: clock, slotSize: slotSize, slots: slots, head: -1}, nil
}

// Name implements Device.
func (m *meter) Name() string { return m.profile.Name }

// SlotSize implements Device.
func (m *meter) SlotSize() int { return m.slotSize }

// Slots implements Device.
func (m *meter) Slots() int64 { return m.slots }

// Profile returns the latency profile the device was built with.
func (m *meter) Profile() Profile { return m.profile }

// SetHook installs fn to observe every access; a nil fn removes the
// hook.
func (m *meter) SetHook(fn Hook) { m.hook = fn }

// Stats implements Device.
func (m *meter) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (the stored data is untouched).
func (m *meter) ResetStats() { m.stats = Stats{} }

// ResetHead forgets the current head position so that the next access
// is charged as random. ORAM controllers call this between logical
// phases whose accesses should not accidentally coalesce.
func (m *meter) ResetHead() { m.head = -1 }

// sequential reports whether an access at slot continues the current
// streaming run, and advances the head.
func (m *meter) sequential(slot int64) bool {
	seq := m.head >= 0 && slot >= m.head && slot < m.head+m.profile.SeqWindow
	m.head = slot + 1
	return seq
}

func (m *meter) checkSlot(slot int64) error {
	if slot < 0 || slot >= m.slots {
		return fmt.Errorf("device %s: slot %d out of range [0,%d)", m.profile.Name, slot, m.slots)
	}
	return nil
}

func (m *meter) checkReadBuf(dst []byte, raw bool) error {
	if len(dst) < m.slotSize {
		kind := "read buffer"
		if raw {
			kind = "raw read buffer"
		}
		return fmt.Errorf("device %s: %s %d < slot size %d", m.profile.Name, kind, len(dst), m.slotSize)
	}
	return nil
}

func (m *meter) checkWritePayload(src []byte, raw bool) error {
	if len(src) != m.slotSize {
		kind := "write payload"
		if raw {
			kind = "raw write payload"
		}
		return fmt.Errorf("device %s: %s %d != slot size %d", m.profile.Name, kind, len(src), m.slotSize)
	}
	return nil
}

// chargeRead bills one slot read to the clock and counters.
func (m *meter) chargeRead(slot int64) {
	lat := transferTime(m.slotSize, m.profile.ReadBandwidth)
	if m.sequential(slot) {
		m.stats.SeqReads++
	} else {
		lat += m.profile.RandomReadPenalty
	}
	m.clock.Advance(lat)
	m.stats.Reads++
	m.stats.BytesRead += int64(m.slotSize)
	m.stats.Busy += lat
}

// chargeWrite bills one slot write to the clock and counters.
func (m *meter) chargeWrite(slot int64) {
	lat := transferTime(m.slotSize, m.profile.WriteBandwidth)
	if m.sequential(slot) {
		m.stats.SeqWrites++
	} else {
		lat += m.profile.RandomWritePenalty
	}
	m.clock.Advance(lat)
	m.stats.Writes++
	m.stats.BytesWritten += int64(m.slotSize)
	m.stats.Busy += lat
}

// observe dispatches the adversary hook.
func (m *meter) observe(op Op, slot int64) {
	if m.hook != nil {
		m.hook(m.profile.Name, op, slot)
	}
}

// Sim is the simulated device. It is not safe for concurrent use; the
// ORAM controllers serialise access to each device.
type Sim struct {
	meter
	data [][]byte
}

// New constructs a simulated device with the given profile, slot
// geometry and shared clock. All slots start zero-filled (allocated
// lazily on first write, so huge devices are cheap until touched).
func New(p Profile, slotSize int, slots int64, clock *simclock.Clock) (*Sim, error) {
	m, err := newMeter(p, slotSize, slots, clock)
	if err != nil {
		return nil, err
	}
	return &Sim{meter: m, data: make([][]byte, slots)}, nil
}

// copyOut copies slot's payload (zeros if never written) into dst.
func (s *Sim) copyOut(slot int64, dst []byte) {
	if s.data[slot] == nil {
		for i := 0; i < s.slotSize; i++ {
			dst[i] = 0
		}
	} else {
		copy(dst, s.data[slot])
	}
}

// copyIn stores src into slot, allocating it on first touch.
func (s *Sim) copyIn(slot int64, src []byte) {
	if s.data[slot] == nil {
		s.data[slot] = make([]byte, s.slotSize)
	}
	copy(s.data[slot], src)
}

// Read implements Device.
func (s *Sim) Read(slot int64, dst []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if err := s.checkReadBuf(dst, false); err != nil {
		return err
	}
	s.chargeRead(slot)
	s.copyOut(slot, dst)
	s.observe(OpRead, slot)
	return nil
}

// Write implements Device.
func (s *Sim) Write(slot int64, src []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if err := s.checkWritePayload(src, false); err != nil {
		return err
	}
	s.chargeWrite(slot)
	s.copyIn(slot, src)
	s.observe(OpWrite, slot)
	return nil
}

// WriteRaw stores src into slot without charging simulated time or
// touching the counters. It exists for experiment setup (initial ORAM
// population) that the paper does not bill to the measured phase.
func (s *Sim) WriteRaw(slot int64, src []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if err := s.checkWritePayload(src, true); err != nil {
		return err
	}
	s.copyIn(slot, src)
	return nil
}

// ReadRaw copies slot's payload into dst without charging simulated
// time or touching the counters — the mirror of WriteRaw, used by the
// snapshot subsystem to capture device contents.
func (s *Sim) ReadRaw(slot int64, dst []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if err := s.checkReadBuf(dst, true); err != nil {
		return err
	}
	s.copyOut(slot, dst)
	return nil
}
