// Package device simulates the storage hierarchy the paper evaluates
// on: a slow HDD storage backend, fast DRAM, and (for ablations) an
// SSD. Devices store fixed-size opaque slots — the ciphertext produced
// by a blockcipher.Sealer — and charge virtual time on a shared
// simclock.Clock according to a latency profile.
//
// The two properties the paper's evaluation depends on are modelled
// explicitly:
//
//  1. random block access on the HDD is dominated by positioning cost
//     (seek + rotation, or their page-cache-softened effective value);
//  2. sequential streaming runs at full bandwidth, 10-20x faster per
//     byte, which is what makes H-ORAM's sequential shuffle cheap.
//
// A Sim tracks its head position: an access to the slot following the
// previous access is sequential and pays bandwidth cost only; anything
// else pays the random-access positioning cost first.
package device

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// Op identifies the direction of a device access, as visible to an
// adversary probing the bus.
type Op uint8

// Device operations.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Stats aggregates traffic counters for one device.
type Stats struct {
	Reads        int64         // read ops
	Writes       int64         // write ops
	BytesRead    int64         // payload bytes read
	BytesWritten int64         // payload bytes written
	SeqReads     int64         // reads that hit the sequential fast path
	SeqWrites    int64         // writes that hit the sequential fast path
	Busy         time.Duration // virtual time this device was busy
}

// Add returns the element-wise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Reads:        s.Reads + t.Reads,
		Writes:       s.Writes + t.Writes,
		BytesRead:    s.BytesRead + t.BytesRead,
		BytesWritten: s.BytesWritten + t.BytesWritten,
		SeqReads:     s.SeqReads + t.SeqReads,
		SeqWrites:    s.SeqWrites + t.SeqWrites,
		Busy:         s.Busy + t.Busy,
	}
}

// Ops returns the total number of operations.
func (s Stats) Ops() int64 { return s.Reads + s.Writes }

// Device is a slot-addressed store with simulated access cost.
//
// Implementations must tolerate concurrent callers only if documented;
// the ORAM controllers in this repository serialise device access.
type Device interface {
	// Name identifies the device in reports ("hdd", "dram", ...).
	Name() string
	// SlotSize returns the fixed payload size of one slot in bytes.
	SlotSize() int
	// Slots returns the number of addressable slots.
	Slots() int64
	// Read copies slot's payload into dst (len(dst) ≥ SlotSize) and
	// charges simulated time.
	Read(slot int64, dst []byte) error
	// Write stores src (len(src) == SlotSize) into slot and charges
	// simulated time.
	Write(slot int64, src []byte) error
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
}

// Hook observes every access to a device; the trace package uses it to
// record the adversary's view. The hook runs synchronously on the
// accessing goroutine.
type Hook func(dev string, op Op, slot int64)

// Profile parameterises the latency model of a Sim.
type Profile struct {
	// Name labels the device class, e.g. "hdd".
	Name string
	// ReadBandwidth and WriteBandwidth are streaming rates in
	// bytes/second once the head is positioned.
	ReadBandwidth  float64
	WriteBandwidth float64
	// RandomReadPenalty / RandomWritePenalty are charged on every
	// access that is not sequential with respect to the previous one
	// (seek + rotational latency on a raw disk, or the page-cache
	// softened effective value the paper's machine exhibits).
	RandomReadPenalty  time.Duration
	RandomWritePenalty time.Duration
	// SeqWindow is how many slots ahead of the head an access may land
	// and still count as sequential (models readahead/NCQ coalescing).
	// 1 means only the exact next slot is sequential.
	SeqWindow int64
}

func (p Profile) validate() error {
	if p.ReadBandwidth <= 0 || p.WriteBandwidth <= 0 {
		return fmt.Errorf("device: profile %q: bandwidths must be positive", p.Name)
	}
	if p.RandomReadPenalty < 0 || p.RandomWritePenalty < 0 {
		return fmt.Errorf("device: profile %q: penalties must be non-negative", p.Name)
	}
	if p.SeqWindow < 1 {
		return fmt.Errorf("device: profile %q: SeqWindow must be ≥ 1", p.Name)
	}
	return nil
}

// transferTime returns the streaming time for n bytes at bw bytes/s.
func transferTime(n int, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Sim is the simulated device. It is not safe for concurrent use; the
// ORAM controllers serialise access to each device.
type Sim struct {
	profile  Profile
	clock    *simclock.Clock
	slotSize int
	data     [][]byte
	head     int64 // next slot a sequential access would hit; -1 initially
	stats    Stats
	hook     Hook
}

// New constructs a simulated device with the given profile, slot
// geometry and shared clock. All slots start zero-filled (allocated
// lazily on first write, so huge devices are cheap until touched).
func New(p Profile, slotSize int, slots int64, clock *simclock.Clock) (*Sim, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if slotSize <= 0 {
		return nil, fmt.Errorf("device: slot size must be positive, got %d", slotSize)
	}
	if slots <= 0 {
		return nil, fmt.Errorf("device: slot count must be positive, got %d", slots)
	}
	if clock == nil {
		return nil, fmt.Errorf("device: nil clock")
	}
	return &Sim{
		profile:  p,
		clock:    clock,
		slotSize: slotSize,
		data:     make([][]byte, slots),
		head:     -1,
	}, nil
}

// Name implements Device.
func (s *Sim) Name() string { return s.profile.Name }

// SlotSize implements Device.
func (s *Sim) SlotSize() int { return s.slotSize }

// Slots implements Device.
func (s *Sim) Slots() int64 { return int64(len(s.data)) }

// Profile returns the latency profile the device was built with.
func (s *Sim) Profile() Profile { return s.profile }

// SetHook installs fn to observe every access; a nil fn removes the
// hook.
func (s *Sim) SetHook(fn Hook) { s.hook = fn }

// sequential reports whether an access at slot continues the current
// streaming run, and advances the head.
func (s *Sim) sequential(slot int64) bool {
	seq := s.head >= 0 && slot >= s.head && slot < s.head+s.profile.SeqWindow
	s.head = slot + 1
	return seq
}

func (s *Sim) checkSlot(slot int64) error {
	if slot < 0 || slot >= int64(len(s.data)) {
		return fmt.Errorf("device %s: slot %d out of range [0,%d)", s.profile.Name, slot, len(s.data))
	}
	return nil
}

// Read implements Device.
func (s *Sim) Read(slot int64, dst []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if len(dst) < s.slotSize {
		return fmt.Errorf("device %s: read buffer %d < slot size %d", s.profile.Name, len(dst), s.slotSize)
	}
	lat := transferTime(s.slotSize, s.profile.ReadBandwidth)
	if s.sequential(slot) {
		s.stats.SeqReads++
	} else {
		lat += s.profile.RandomReadPenalty
	}
	s.clock.Advance(lat)
	s.stats.Reads++
	s.stats.BytesRead += int64(s.slotSize)
	s.stats.Busy += lat
	if s.data[slot] == nil {
		for i := 0; i < s.slotSize; i++ {
			dst[i] = 0
		}
	} else {
		copy(dst, s.data[slot])
	}
	if s.hook != nil {
		s.hook(s.profile.Name, OpRead, slot)
	}
	return nil
}

// Write implements Device.
func (s *Sim) Write(slot int64, src []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if len(src) != s.slotSize {
		return fmt.Errorf("device %s: write payload %d != slot size %d", s.profile.Name, len(src), s.slotSize)
	}
	lat := transferTime(s.slotSize, s.profile.WriteBandwidth)
	if s.sequential(slot) {
		s.stats.SeqWrites++
	} else {
		lat += s.profile.RandomWritePenalty
	}
	s.clock.Advance(lat)
	s.stats.Writes++
	s.stats.BytesWritten += int64(s.slotSize)
	s.stats.Busy += lat
	if s.data[slot] == nil {
		s.data[slot] = make([]byte, s.slotSize)
	}
	copy(s.data[slot], src)
	if s.hook != nil {
		s.hook(s.profile.Name, OpWrite, slot)
	}
	return nil
}

// WriteRaw stores src into slot without charging simulated time or
// touching the counters. It exists for experiment setup (initial ORAM
// population) that the paper does not bill to the measured phase.
func (s *Sim) WriteRaw(slot int64, src []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	if len(src) != s.slotSize {
		return fmt.Errorf("device %s: raw write payload %d != slot size %d", s.profile.Name, len(src), s.slotSize)
	}
	if s.data[slot] == nil {
		s.data[slot] = make([]byte, s.slotSize)
	}
	copy(s.data[slot], src)
	return nil
}

// Stats implements Device.
func (s *Sim) Stats() Stats { return s.stats }

// ResetStats zeroes the counters (the stored data is untouched).
func (s *Sim) ResetStats() { s.stats = Stats{} }

// ResetHead forgets the current head position so that the next access
// is charged as random. ORAM controllers call this between logical
// phases whose accesses should not accidentally coalesce.
func (s *Sim) ResetHead() { s.head = -1 }
