package device

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/simclock"
)

func newTestFile(t *testing.T, p Profile, slotSize int, slots int64, fsyncEvery int) (*File, *simclock.Clock, string) {
	t.Helper()
	clk := simclock.New()
	path := filepath.Join(t.TempDir(), "dev.dat")
	d, err := NewFile(FileConfig{
		Path: path, Profile: p, SlotSize: slotSize, Slots: slots,
		Clock: clk, FsyncEvery: fsyncEvery,
	})
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d, clk, path
}

func TestFileValidation(t *testing.T) {
	clk := simclock.New()
	path := filepath.Join(t.TempDir(), "dev.dat")
	cases := []struct {
		name string
		cfg  FileConfig
	}{
		{"bad profile", FileConfig{Path: path, Profile: Profile{Name: "x"}, SlotSize: 8, Slots: 8, Clock: clk}},
		{"zero slot size", FileConfig{Path: path, Profile: PaperHDD(), SlotSize: 0, Slots: 8, Clock: clk}},
		{"zero slots", FileConfig{Path: path, Profile: PaperHDD(), SlotSize: 8, Slots: 0, Clock: clk}},
		{"nil clock", FileConfig{Path: path, Profile: PaperHDD(), SlotSize: 8, Slots: 8}},
		{"negative fsync", FileConfig{Path: path, Profile: PaperHDD(), SlotSize: 8, Slots: 8, Clock: clk, FsyncEvery: -1}},
	}
	for _, tc := range cases {
		if _, err := NewFile(tc.cfg); err == nil {
			t.Errorf("%s: NewFile accepted invalid config", tc.name)
		}
	}
}

func TestFileRoundTripAndZeroFill(t *testing.T) {
	d, _, _ := newTestFile(t, PaperHDD(), 16, 32, 0)
	src := []byte("0123456789abcdef")
	if err := d.Write(5, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	dst := make([]byte, 16)
	if err := d.Read(5, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("Read = %q, want %q", dst, src)
	}
	// A never-written slot reads as zeros (preallocated hole).
	if err := d.Read(30, dst); err != nil {
		t.Fatalf("Read unwritten: %v", err)
	}
	if !bytes.Equal(dst, make([]byte, 16)) {
		t.Fatalf("unwritten slot = %x, want zeros", dst)
	}
}

// TestFileMatchesSimAccounting drives the same access pattern through
// a Sim and a File with the same profile and asserts identical Stats
// and clock time — the property that makes the swap invisible to the
// paper's cost model.
func TestFileMatchesSimAccounting(t *testing.T) {
	p := PaperHDD()
	sim, simClk := newTestDevice(t, p, 32, 64)
	file, fileClk, _ := newTestFile(t, p, 32, 64, 0)

	src := bytes.Repeat([]byte{0xab}, 32)
	dst := make([]byte, 32)
	drive := func(d Backend) {
		for i := int64(0); i < 64; i++ { // sequential sweep
			if err := d.Write(i, src); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		d.ResetHead()
		for _, slot := range []int64{7, 8, 9, 3, 60, 61} { // mixed run
			if err := d.Read(slot, dst); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}
	}
	drive(sim)
	drive(file)

	if sim.Stats() != file.Stats() {
		t.Fatalf("stats diverged:\nsim  %+v\nfile %+v", sim.Stats(), file.Stats())
	}
	if simClk.Now() != fileClk.Now() {
		t.Fatalf("clock diverged: sim %v file %v", simClk.Now(), fileClk.Now())
	}
	if file.Stats().SeqReads == 0 || file.Stats().SeqWrites == 0 {
		t.Fatal("file device never hit the sequential fast path")
	}
}

func TestFileSurvivesReopen(t *testing.T) {
	p := PaperHDD()
	clk := simclock.New()
	path := filepath.Join(t.TempDir(), "dev.dat")
	d, err := NewFile(FileConfig{Path: path, Profile: p, SlotSize: 16, Slots: 8, Clock: clk})
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	src := []byte("persistent-block")
	if err := d.Write(3, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := NewFile(FileConfig{Path: path, Profile: p, SlotSize: 16, Slots: 8, Clock: simclock.New()})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	dst := make([]byte, 16)
	if err := d2.Read(3, dst); err != nil {
		t.Fatalf("Read after reopen: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("after reopen slot 3 = %q, want %q", dst, src)
	}

	// Reopening with a different geometry must be refused, not
	// silently reinterpreted.
	if _, err := NewFile(FileConfig{Path: path, Profile: p, SlotSize: 16, Slots: 16, Clock: simclock.New()}); err == nil {
		t.Fatal("NewFile accepted an existing file with mismatched geometry")
	}
}

func TestFileRawPathsChargeNothing(t *testing.T) {
	d, clk, _ := newTestFile(t, PaperHDD(), 16, 8, 0)
	src := bytes.Repeat([]byte{7}, 16)
	if err := d.WriteRaw(2, src); err != nil {
		t.Fatalf("WriteRaw: %v", err)
	}
	dst := make([]byte, 16)
	if err := d.ReadRaw(2, dst); err != nil {
		t.Fatalf("ReadRaw: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("ReadRaw = %x, want %x", dst, src)
	}
	if clk.Now() != 0 {
		t.Fatalf("raw access advanced the clock to %v", clk.Now())
	}
	if d.Stats() != (Stats{}) {
		t.Fatal("raw access touched the counters")
	}
}

func TestFileFsyncPolicy(t *testing.T) {
	d, _, _ := newTestFile(t, PaperHDD(), 16, 32, 2)
	src := bytes.Repeat([]byte{1}, 16)
	for i := int64(0); i < 5; i++ {
		if err := d.Write(i, src); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if got := d.Syncs(); got != 2 { // after writes 2 and 4
		t.Fatalf("Syncs = %d after 5 writes with FsyncEvery=2, want 2", got)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := d.Syncs(); got != 3 {
		t.Fatalf("Syncs = %d after explicit Sync, want 3", got)
	}
}

func TestFileHookObservesAccesses(t *testing.T) {
	d, _, _ := newTestFile(t, PaperHDD(), 16, 8, 0)
	var ops []Op
	var slots []int64
	d.SetHook(func(_ string, op Op, slot int64) {
		ops = append(ops, op)
		slots = append(slots, slot)
	})
	src := bytes.Repeat([]byte{9}, 16)
	if err := d.Write(4, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.Read(4, make([]byte, 16)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	d.SetHook(nil)
	if err := d.Read(4, make([]byte, 16)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(ops) != 2 || ops[0] != OpWrite || ops[1] != OpRead || slots[0] != 4 || slots[1] != 4 {
		t.Fatalf("hook saw ops=%v slots=%v, want [write read] [4 4]", ops, slots)
	}
}

func TestFileUnderTiered(t *testing.T) {
	clk := simclock.New()
	fast, err := New(DRAM(), 16, 4, clk)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	path := filepath.Join(t.TempDir(), "slow.dat")
	slow, err := NewFile(FileConfig{Path: path, Profile: PaperHDD(), SlotSize: 16, Slots: 8, Clock: clk})
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	defer slow.Close()
	tiered, err := NewTiered(fast, slow, 4, 12)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	src := []byte("tiered-file-slot")
	if err := tiered.Write(10, src); err != nil { // slow tier, slot 6 on file
		t.Fatalf("Write: %v", err)
	}
	dst := make([]byte, 16)
	if err := tiered.ReadRaw(10, dst); err != nil {
		t.Fatalf("ReadRaw: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("tiered slot 10 = %q, want %q", dst, src)
	}
	if err := tiered.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// The payload really landed in the file (slot 10-4=6).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(raw[6*16:7*16], src) {
		t.Fatal("payload did not reach the backing file at the expected offset")
	}
}
