package device

import "fmt"

// Tiered composes a fast and a slow device into one slot address
// space: slots below Boundary live on the fast device, the rest on the
// slow one at an offset. This is exactly the ZeroTrace-style tree-top
// cache layout the paper's baseline uses — the top levels of the Path
// ORAM tree sit in memory and the bottom levels spill to storage.
type Tiered struct {
	fast     Device
	slow     Device
	boundary int64
}

// NewTiered builds the composite. boundary is the number of leading
// slots served by fast; it must fit within fast's capacity, and slow
// must hold the remainder of `total` slots. Both devices must share
// the slot size.
func NewTiered(fast, slow Device, boundary, total int64) (*Tiered, error) {
	if fast == nil || slow == nil {
		return nil, fmt.Errorf("device: tiered requires two devices")
	}
	if fast.SlotSize() != slow.SlotSize() {
		return nil, fmt.Errorf("device: tiered slot sizes differ: %d vs %d", fast.SlotSize(), slow.SlotSize())
	}
	if boundary < 0 || boundary > total {
		return nil, fmt.Errorf("device: tiered boundary %d out of range [0,%d]", boundary, total)
	}
	if fast.Slots() < boundary {
		return nil, fmt.Errorf("device: fast tier has %d slots, boundary needs %d", fast.Slots(), boundary)
	}
	if slow.Slots() < total-boundary {
		return nil, fmt.Errorf("device: slow tier has %d slots, needs %d", slow.Slots(), total-boundary)
	}
	return &Tiered{fast: fast, slow: slow, boundary: boundary}, nil
}

// Name implements Device.
func (t *Tiered) Name() string {
	return fmt.Sprintf("tiered(%s+%s)", t.fast.Name(), t.slow.Name())
}

// SlotSize implements Device.
func (t *Tiered) SlotSize() int { return t.fast.SlotSize() }

// Slots implements Device.
func (t *Tiered) Slots() int64 { return t.boundary + t.slow.Slots() }

// Boundary returns the first slot index served by the slow tier.
func (t *Tiered) Boundary() int64 { return t.boundary }

// Fast returns the fast-tier device.
func (t *Tiered) Fast() Device { return t.fast }

// Slow returns the slow-tier device.
func (t *Tiered) Slow() Device { return t.slow }

// Read implements Device.
func (t *Tiered) Read(slot int64, dst []byte) error {
	if slot < t.boundary {
		return t.fast.Read(slot, dst)
	}
	return t.slow.Read(slot-t.boundary, dst)
}

// Write implements Device.
func (t *Tiered) Write(slot int64, src []byte) error {
	if slot < t.boundary {
		return t.fast.Write(slot, src)
	}
	return t.slow.Write(slot-t.boundary, src)
}

// WriteRaw forwards setup writes to the owning tier's raw path when it
// has one, falling back to a timed write otherwise.
func (t *Tiered) WriteRaw(slot int64, src []byte) error {
	dev := t.fast
	if slot >= t.boundary {
		dev = t.slow
		slot -= t.boundary
	}
	if rw, ok := dev.(interface {
		WriteRaw(int64, []byte) error
	}); ok {
		return rw.WriteRaw(slot, src)
	}
	return dev.Write(slot, src)
}

// ReadRaw forwards uncharged reads to the owning tier's raw path when
// it has one, falling back to a timed read otherwise.
func (t *Tiered) ReadRaw(slot int64, dst []byte) error {
	dev := t.fast
	if slot >= t.boundary {
		dev = t.slow
		slot -= t.boundary
	}
	if rr, ok := dev.(interface {
		ReadRaw(int64, []byte) error
	}); ok {
		return rr.ReadRaw(slot, dst)
	}
	return dev.Read(slot, dst)
}

// ResetHead forgets the head position on both tiers (when they track
// one), so the next access to either is charged as random.
func (t *Tiered) ResetHead() {
	for _, dev := range []Device{t.fast, t.slow} {
		if rh, ok := dev.(interface{ ResetHead() }); ok {
			rh.ResetHead()
		}
	}
}

// ResetStats zeroes the counters of both tiers (when they support it).
func (t *Tiered) ResetStats() {
	for _, dev := range []Device{t.fast, t.slow} {
		if rs, ok := dev.(interface{ ResetStats() }); ok {
			rs.ResetStats()
		}
	}
}

// SetHook installs fn on both tiers (when they support hooks), so the
// composite reports every access like a single device would.
func (t *Tiered) SetHook(fn Hook) {
	for _, dev := range []Device{t.fast, t.slow} {
		if sh, ok := dev.(interface{ SetHook(Hook) }); ok {
			sh.SetHook(fn)
		}
	}
}

// Sync flushes both tiers' durable media (when they have one).
func (t *Tiered) Sync() error {
	for _, dev := range []Device{t.fast, t.slow} {
		if s, ok := dev.(Syncer); ok {
			if err := s.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats implements Device by summing both tiers.
func (t *Tiered) Stats() Stats { return t.fast.Stats().Add(t.slow.Stats()) }

// Compile-time Backend conformance for every device in this package.
var (
	_ Backend = (*Sim)(nil)
	_ Backend = (*File)(nil)
	_ Backend = (*Tiered)(nil)
	_ Syncer  = (*File)(nil)
)
