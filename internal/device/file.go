package device

import (
	"fmt"
	"os"

	"repro/internal/simclock"
)

// File is a durable slot store over a preallocated on-disk file: slot
// i occupies bytes [i·SlotSize, (i+1)·SlotSize). It embeds the same
// accounting meter as Sim — head-position tracking and the
// profile-driven virtual-time charging are one shared implementation —
// so an ORAM swapped from Sim to File keeps identical
// sequential-vs-random accounting and Stats, while the payload
// additionally survives process restarts.
//
// Like Sim, File is not safe for concurrent use; the ORAM controllers
// serialise device access.
//
// Durability: writes go straight to the file via pwrite. FsyncEvery
// picks the fsync policy; independent of it, Sync flushes explicitly —
// the snapshot subsystem calls it at shuffle and checkpoint
// boundaries so the on-disk image is durable before a state marker
// declares it so.
type File struct {
	meter
	f    *os.File
	path string

	fsyncEvery int
	unsynced   int   // timed writes since the last fsync
	syncs      int64 // fsyncs issued (policy + explicit)

	vec   fileVec  // platform-specific vectored-I/O scratch
	views [][]byte // reusable slot-size buffer views for vectored runs
}

// FileConfig parameterises a File device.
type FileConfig struct {
	// Path is the backing file. A missing file is created and
	// preallocated; an existing file must match the slot geometry
	// exactly (its contents are kept — that is the durability story).
	Path string
	// Profile is the latency model charged to Clock, exactly as Sim
	// charges it, so simulated accounting survives the Sim→File swap.
	Profile Profile
	// SlotSize and Slots fix the geometry.
	SlotSize int
	Slots    int64
	// Clock receives the simulated access cost; required.
	Clock *simclock.Clock
	// FsyncEvery selects the fsync policy for timed writes: 0 never
	// fsyncs implicitly (callers Sync at consistency points), 1 fsyncs
	// after every write, n > 1 after every n-th write.
	FsyncEvery int
}

// NewFile opens (or creates and preallocates) the backing file and
// returns the device. Unwritten slots read as zeros.
func NewFile(cfg FileConfig) (*File, error) {
	m, err := newMeter(cfg.Profile, cfg.SlotSize, cfg.Slots, cfg.Clock)
	if err != nil {
		return nil, err
	}
	if cfg.FsyncEvery < 0 {
		return nil, fmt.Errorf("device: FsyncEvery must be non-negative, got %d", cfg.FsyncEvery)
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	want := int64(cfg.SlotSize) * cfg.Slots
	st, err := f.Stat()
	if err != nil {
		f.Close() //horam:errok abandoning the handle; the stat error is the one to surface
		return nil, fmt.Errorf("device: %w", err)
	}
	if st.Size() != 0 && st.Size() != want {
		f.Close() //horam:errok abandoning the handle; nothing was written
		return nil, fmt.Errorf("device: %s is %d bytes; geometry %d x %d needs %d (refusing to reuse a file with different geometry)",
			cfg.Path, st.Size(), cfg.Slots, cfg.SlotSize, want)
	}
	if st.Size() != want {
		if err := f.Truncate(want); err != nil {
			f.Close() //horam:errok abandoning the handle; the preallocate error is the one to surface
			return nil, fmt.Errorf("device: preallocate %s: %w", cfg.Path, err)
		}
	}
	return &File{
		meter:      m,
		f:          f,
		path:       cfg.Path,
		fsyncEvery: cfg.FsyncEvery,
	}, nil
}

// Path returns the backing file path.
func (d *File) Path() string { return d.path }

func (d *File) off(slot int64) int64 { return slot * int64(d.slotSize) }

func (d *File) pread(slot int64, dst []byte) error {
	if _, err := d.f.ReadAt(dst[:d.slotSize], d.off(slot)); err != nil {
		return fmt.Errorf("device %s: pread slot %d: %w", d.profile.Name, slot, err)
	}
	return nil
}

func (d *File) pwrite(slot int64, src []byte) error {
	if _, err := d.f.WriteAt(src, d.off(slot)); err != nil {
		return fmt.Errorf("device %s: pwrite slot %d: %w", d.profile.Name, slot, err)
	}
	return nil
}

// Read implements Device.
func (d *File) Read(slot int64, dst []byte) error {
	if err := d.checkSlot(slot); err != nil {
		return err
	}
	if err := d.checkReadBuf(dst, false); err != nil {
		return err
	}
	d.chargeRead(slot)
	if err := d.pread(slot, dst); err != nil {
		return err
	}
	d.observe(OpRead, slot)
	return nil
}

// Write implements Device.
func (d *File) Write(slot int64, src []byte) error {
	if err := d.checkSlot(slot); err != nil {
		return err
	}
	if err := d.checkWritePayload(src, false); err != nil {
		return err
	}
	d.chargeWrite(slot)
	if err := d.pwrite(slot, src); err != nil {
		return err
	}
	if d.fsyncEvery > 0 {
		d.unsynced++
		if d.unsynced >= d.fsyncEvery {
			if err := d.Sync(); err != nil {
				return err
			}
		}
	}
	d.observe(OpWrite, slot)
	return nil
}

// WriteRaw stores src into slot without charging simulated time or
// touching the counters (unmeasured setup). The fsync policy does not
// apply; setup callers Sync once at the end.
func (d *File) WriteRaw(slot int64, src []byte) error {
	if err := d.checkSlot(slot); err != nil {
		return err
	}
	if err := d.checkWritePayload(src, true); err != nil {
		return err
	}
	return d.pwrite(slot, src)
}

// ReadRaw copies slot's payload into dst without charging simulated
// time or touching the counters.
func (d *File) ReadRaw(slot int64, dst []byte) error {
	if err := d.checkSlot(slot); err != nil {
		return err
	}
	if err := d.checkReadBuf(dst, true); err != nil {
		return err
	}
	return d.pread(slot, dst)
}

// ReadSlots implements Backend: accounting is charged per slot in
// argument order exactly as a Read loop would, but each maximal run of
// contiguous slots is fetched with one preadv burst instead of one
// pread per slot.
func (d *File) ReadSlots(slots []int64, bufs [][]byte) error {
	if err := checkVector(slots, bufs); err != nil {
		return err
	}
	for i, slot := range slots {
		if err := d.checkSlot(slot); err != nil {
			return err
		}
		if err := d.checkReadBuf(bufs[i], false); err != nil {
			return err
		}
	}
	for start := 0; start < len(slots); {
		end := start + 1
		for end < len(slots) && slots[end] == slots[end-1]+1 {
			end++
		}
		views := d.views[:0]
		for i := start; i < end; i++ {
			d.chargeRead(slots[i])
			d.observe(OpRead, slots[i])
			views = append(views, bufs[i][:d.slotSize])
		}
		d.views = views[:0]
		if err := d.preadvAt(views, d.off(slots[start])); err != nil {
			return fmt.Errorf("device %s: preadv slots [%d,%d]: %w", d.profile.Name, slots[start], slots[end-1], err)
		}
		start = end
	}
	return nil
}

// WriteSlots implements Backend: per-slot accounting, one pwritev
// burst per contiguous run. Under a periodic fsync policy it falls
// back to the sequential Write loop so the policy's sync points (and
// the Syncs counter) stay exactly where they have always been.
func (d *File) WriteSlots(slots []int64, bufs [][]byte) error {
	if d.fsyncEvery > 0 {
		return WriteSlotsSeq(d, slots, bufs)
	}
	if err := checkVector(slots, bufs); err != nil {
		return err
	}
	for i, slot := range slots {
		if err := d.checkSlot(slot); err != nil {
			return err
		}
		if err := d.checkWritePayload(bufs[i], false); err != nil {
			return err
		}
	}
	for start := 0; start < len(slots); {
		end := start + 1
		for end < len(slots) && slots[end] == slots[end-1]+1 {
			end++
		}
		views := d.views[:0]
		for i := start; i < end; i++ {
			d.chargeWrite(slots[i])
			d.observe(OpWrite, slots[i])
			views = append(views, bufs[i])
		}
		d.views = views[:0]
		if err := d.pwritevAt(views, d.off(slots[start])); err != nil {
			return fmt.Errorf("device %s: pwritev slots [%d,%d]: %w", d.profile.Name, slots[start], slots[end-1], err)
		}
		start = end
	}
	return nil
}

// Sync flushes buffered writes to the medium (fsync).
func (d *File) Sync() error {
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("device %s: fsync %s: %w", d.profile.Name, d.path, err)
	}
	d.unsynced = 0
	d.syncs++
	return nil
}

// Syncs returns the number of fsyncs issued (policy-driven and
// explicit).
func (d *File) Syncs() int64 { return d.syncs }

// Close syncs and closes the backing file. The device is unusable
// afterwards.
func (d *File) Close() error {
	if err := d.f.Sync(); err != nil {
		d.f.Close() //horam:errok the fsync failure is the durability signal; close is best effort after it
		return fmt.Errorf("device %s: fsync %s: %w", d.profile.Name, d.path, err)
	}
	return d.f.Close()
}
