package analytic

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestAvgCPaperStages(t *testing.T) {
	// §5.2.1: c = {1,3,5}, fracs {0.20, 0.13, 0.67} → ĉ = 3.94.
	got, err := AvgC([]int{1, 3, 5}, []float64{0.20, 0.13, 0.67})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "AvgC", got, 3.94, 1e-9)
}

func TestAvgCValidation(t *testing.T) {
	if _, err := AvgC([]int{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := AvgC([]int{}, []float64{}); err == nil {
		t.Error("accepted empty stages")
	}
	if _, err := AvgC([]int{0}, []float64{1}); err == nil {
		t.Error("accepted c=0")
	}
	if _, err := AvgC([]int{1, 2}, []float64{0.3, 0.3}); err == nil {
		t.Error("accepted fractions not summing to 1")
	}
}

func TestPathLevelsTable51(t *testing.T) {
	// Table 5-1: 1 GB data, 128 MB memory, 1 KB blocks, Z = 4:
	// memory levels log2(131072/4) = 15... the paper prints "16" for
	// the H-ORAM tree level (slots vs blocks rounding) and 16+4 for
	// the baseline; the defining quantity is the I/O level count 4.
	N := float64(1 << 20) // 1 GB / 1 KB
	n := float64(128 << 10)
	mem, io := PathLevels(n, N, 4)
	approx(t, "io levels", io, 4, 1e-9)
	approx(t, "mem levels", mem, 15, 1e-9)
}

func TestPathORAMIOPerAccessTable51(t *testing.T) {
	// Table 5-1 baseline: 16 KB reads + 16 KB writes per access with
	// 1 KB blocks → 16 blocks each way (Z·log2(2N/n) = 4·4).
	N := float64(1 << 20)
	n := float64(128 << 10)
	r, w := PathORAMIOPerAccess(n, N, 4)
	approx(t, "reads", r, 16, 1e-9)
	approx(t, "writes", w, 16, 1e-9)
}

func TestHORAMIOPerAccessTable51(t *testing.T) {
	// Table 5-1 H-ORAM: avg 4.5 KB reads + 4 KB writes per access.
	N := float64(1 << 20)
	n := float64(128 << 10)
	r, w := HORAMIOPerAccessPaper(n, N, 4)
	approx(t, "reads", r, 4.5, 1e-9)
	approx(t, "writes", w, 4, 1e-9)
}

func TestRequestsServicedEq55(t *testing.T) {
	// Equation 5-5: n·c/2 = 128Ki·4/2 = 262144 requests per period.
	h, p := Table51(PaperTable51())
	if h.RequestsServiced != 262144 {
		t.Fatalf("H-ORAM requests = %d, want 262144", h.RequestsServiced)
	}
	if p.RequestsServiced != 65536 {
		t.Fatalf("baseline requests = %d, want 65536", p.RequestsServiced)
	}
}

func TestTable51Columns(t *testing.T) {
	h, p := Table51(PaperTable51())

	// H-ORAM column (paper values).
	approx(t, "horam access read KB", h.AccessReadKB, 1, 1e-9)
	approx(t, "horam shuffle read GB", h.ShuffleReadGB, 0.875, 1e-9)
	approx(t, "horam shuffle write GB", h.ShuffleWriteGB, 1, 1e-9)
	approx(t, "horam avg read KB", h.AvgReadKB, 4.5, 1e-9)
	approx(t, "horam avg write KB", h.AvgWriteKB, 4, 1e-9)
	if h.StorageBytes != 1<<30 {
		t.Fatalf("horam storage = %d, want 1 GB", h.StorageBytes)
	}

	// Baseline column.
	approx(t, "path avg read KB", p.AvgReadKB, 16, 1e-9)
	approx(t, "path avg write KB", p.AvgWriteKB, 16, 1e-9)
	// Paper prints 1.875 GB storage for the baseline.
	wantStorage := int64(2<<30) - int64(128<<20)
	if p.StorageBytes != wantStorage {
		t.Fatalf("path storage = %d, want %d (1.875 GB)", p.StorageBytes, wantStorage)
	}
}

func TestGainShapeFigure51(t *testing.T) {
	// Figure 5-1 shape: Z = 4. At c=4, N/n=8 the paper reports ≈8x.
	g := Gain(8, 4, 4, 1, 1)
	if g < 6 || g < 0 {
		t.Fatalf("Gain(N/n=8, c=4) = %.2f, want ≥6 (paper ≈8)", g)
	}
	if g > 11 {
		t.Fatalf("Gain(N/n=8, c=4) = %.2f, implausibly high (paper ≈8)", g)
	}

	// Peak across the plotted domain stays in the paper's 12-16x band
	// for the larger c values.
	best := 0.0
	for _, c := range []float64{8} {
		for _, r := range []float64{2, 4, 8, 16, 32, 64} {
			if v := Gain(r, c, 4, 1, 1); v > best {
				best = v
			}
		}
	}
	if best < 10 || best > 20 {
		t.Fatalf("peak gain = %.1f, want within the paper's 12-16x band (±tolerance)", best)
	}
}

func TestGainMonotoneInC(t *testing.T) {
	// More grouping always helps (at fixed N/n).
	prev := 0.0
	for _, c := range []float64{1, 2, 4, 8} {
		g := Gain(8, c, 4, 1, 1)
		if g <= prev {
			t.Fatalf("gain not increasing in c: c=%v gives %.2f after %.2f", c, g, prev)
		}
		prev = g
	}
}

func TestGainSeries(t *testing.T) {
	ratios := []float64{2, 4, 8}
	s := GainSeries(ratios, 4, 4)
	if len(s) != 3 {
		t.Fatalf("series length %d", len(s))
	}
	for i, v := range s {
		if v <= 0 {
			t.Fatalf("series[%d] = %v", i, v)
		}
	}
}

func TestGainWeightsReadWriteSpeeds(t *testing.T) {
	// §5.2: with HDD writes ~2x slower than reads, H-ORAM (which
	// writes less per access) gains more. Weighting must move the
	// number.
	unweighted := Gain(8, 4, 4, 1, 1)
	weighted := Gain(8, 4, 4, 1, 2) // writes twice as expensive
	if weighted <= unweighted {
		t.Fatalf("write-heavy weighting should increase gain: %.2f vs %.2f", weighted, unweighted)
	}
}

func TestIdealGainNoShuffle(t *testing.T) {
	// §5.1 discussion: without shuffle on the critical path the gain
	// is 32x for the Table 5-1 scenario.
	N := float64(1 << 20)
	n := float64(128 << 10)
	approx(t, "ideal gain", IdealGainNoShuffle(n, N, 4), 32, 1e-9)
}

func TestHORAMExactVsPaperForm(t *testing.T) {
	// The exact form charges 1/c (not 1) for direct loads; it must be
	// cheaper, and both agree as c→1.
	N, n := float64(1<<20), float64(128<<10)
	er, _ := HORAMIOPerAccess(n, N, 4)
	pr, _ := HORAMIOPerAccessPaper(n, N, 4)
	if er >= pr {
		t.Fatalf("exact reads %v should be below paper form %v", er, pr)
	}
	er1, _ := HORAMIOPerAccess(n, N, 1)
	pr1, _ := HORAMIOPerAccessPaper(n, N, 1)
	approx(t, "c=1 agreement", er1, pr1, 1e-9)
}
