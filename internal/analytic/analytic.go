// Package analytic implements the paper's closed-form cost model
// (§5.1, equations 5-1 through 5-6) and regenerates its analytic
// artefacts: the Figure 5-1 gain curves and the Table 5-1 one-period
// overhead comparison.
//
// Notation follows the paper: N is the data set in blocks, n the
// memory-tier capacity in blocks, Z the Path ORAM bucket size, c the
// average number of in-memory requests grouped with one I/O request,
// and B the block size in bytes.
package analytic

import (
	"fmt"
	"math"
)

// AvgC implements equation (5-1): the weighted average group size over
// the period's stages, ĉ = (2/n)·Σ cᵢnᵢ — with nᵢ expressed as
// fractions of the period this reduces to Σ cᵢ·fracᵢ.
func AvgC(cs []int, fracs []float64) (float64, error) {
	if len(cs) != len(fracs) || len(cs) == 0 {
		return 0, fmt.Errorf("analytic: %d stage sizes vs %d fractions", len(cs), len(fracs))
	}
	sum, fsum := 0.0, 0.0
	for i := range cs {
		if cs[i] <= 0 || fracs[i] < 0 {
			return 0, fmt.Errorf("analytic: invalid stage (c=%d, frac=%v)", cs[i], fracs[i])
		}
		sum += float64(cs[i]) * fracs[i]
		fsum += fracs[i]
	}
	if math.Abs(fsum-1) > 1e-6 {
		return 0, fmt.Errorf("analytic: stage fractions sum to %v, want 1", fsum)
	}
	return sum, nil
}

// PathLevels implements equation (5-2): total path level of the
// baseline tree-top Path ORAM storing N real blocks (2N slots) with n
// slots in memory: log2(n/Z) in-memory levels + log2(2N/n) I/O levels.
func PathLevels(n, N float64, Z int) (mem, io float64) {
	return math.Log2(n / float64(Z)), math.Log2(2 * N / n)
}

// PathORAMIOPerAccess implements equation (5-3): the baseline's
// per-access storage traffic in blocks — Z·log2(2N/n) reads and the
// same in writes.
func PathORAMIOPerAccess(n, N float64, Z int) (reads, writes float64) {
	_, io := PathLevels(n, N, Z)
	reads = float64(Z) * io
	return reads, reads
}

// HORAMIOPerAccess implements equation (5-4): H-ORAM's amortised
// per-access storage traffic in blocks. The access period serves
// n·c/2 requests with n/2 single-block loads; the shuffle then reads
// N−n blocks and writes N back:
//
//	reads  = 1/c·(n/2 loads per n·c/2 requests) + 2(N−n)/(n·c)
//	writes = 2N/(n·c)
//
// Note the paper's equation folds the 1/c of the direct loads into the
// leading 1; we keep the exact form 1/c + 2(N−n)/(n·c) and also expose
// the paper's approximation.
func HORAMIOPerAccess(n, N, c float64) (reads, writes float64) {
	reads = 1/c + 2*(N-n)/(n*c)
	writes = 2 * N / (n * c)
	return reads, writes
}

// HORAMIOPerAccessPaper is the paper's printed form of (5-4), which
// charges every request a full block load: {1 + 2(N−n)/(n·c)} reads.
func HORAMIOPerAccessPaper(n, N, c float64) (reads, writes float64) {
	reads = 1 + 2*(N-n)/(n*c)
	writes = 2 * N / (n * c)
	return reads, writes
}

// SeqShuffleDiscount is the factor by which H-ORAM's shuffle traffic
// is cheaper per block than the baseline's random path I/O in the
// Figure 5-1 model. The shuffle streams sequentially while Path ORAM
// pages randomly; the paper's curves are only consistent with its
// equations once this discount is applied, and 2.5 reproduces the
// paper's anchor points — ≈8x at (c = 4, N/n = 8) and a 12–16x peak
// for the larger c curves. (The measured hardware ratio in §5.2 is
// larger still, 10–20x, which would only flatter H-ORAM further.)
const SeqShuffleDiscount = 2.5

// Gain returns the Figure 5-1 quantity: how many times H-ORAM reduces
// the baseline's I/O cost at ratio = N/n, group size c and bucket Z,
// weighting reads and writes by the device's relative speeds
// (readCost/writeCost in time per block; pass 1,1 for the paper's
// block-count version). H-ORAM's direct load is a random read; its
// shuffle traffic is sequential and discounted by SeqShuffleDiscount.
func Gain(ratio, c float64, Z int, readCost, writeCost float64) float64 {
	// Normalise n = 1, N = ratio.
	pr, pw := PathORAMIOPerAccess(1, ratio, Z)
	base := pr*readCost + pw*writeCost

	directReads := 1.0
	shufReads := 2 * (ratio - 1) / c / SeqShuffleDiscount
	shufWrites := 2 * ratio / c / SeqShuffleDiscount
	ours := (directReads+shufReads)*readCost + shufWrites*writeCost
	return base / ours
}

// GainSeries computes one Figure 5-1 curve: gains over the given N/n
// ratios for a fixed c.
func GainSeries(ratios []float64, c float64, Z int) []float64 {
	out := make([]float64, len(ratios))
	for i, r := range ratios {
		out[i] = Gain(r, c, Z, 1, 1)
	}
	return out
}

// PeriodOverhead is one column of Table 5-1.
type PeriodOverhead struct {
	Scheme           string
	StorageBytes     int64   // on-storage footprint
	MemoryBytes      int64   // memory-tier footprint
	PathLevel        float64 // total tree levels (baseline) or memory tree levels (H-ORAM)
	RequestsServiced int64   // requests per period (H-ORAM) or per same I/O budget
	AccessReadKB     float64 // per-access direct read traffic
	AccessWriteKB    float64
	ShuffleReadGB    float64 // per-period shuffle traffic
	ShuffleWriteGB   float64
	AvgReadKB        float64 // amortised per access
	AvgWriteKB       float64
}

// Table51Config holds the Table 5-1 scenario parameters.
type Table51Config struct {
	DataBytes   int64   // 1 GB in the paper
	MemoryBytes int64   // 128 MB
	BlockBytes  int64   // 1 KB
	Z           int     // 4
	C           float64 // ĉ = 4 in the table
}

// PaperTable51 returns the paper's Table 5-1 scenario.
func PaperTable51() Table51Config {
	return Table51Config{
		DataBytes:   1 << 30,
		MemoryBytes: 128 << 20,
		BlockBytes:  1 << 10,
		Z:           4,
		C:           4,
	}
}

// Table51 computes both columns of Table 5-1 from the scenario.
func Table51(cfg Table51Config) (horam, pathORAM PeriodOverhead) {
	N := float64(cfg.DataBytes / cfg.BlockBytes)
	n := float64(cfg.MemoryBytes / cfg.BlockBytes)
	kb := float64(cfg.BlockBytes) / 1024
	gb := float64(cfg.BlockBytes) / (1 << 30)

	// H-ORAM column.
	requests := int64(n * cfg.C / 2) // n·c/2 requests per period (eq. 5-5)
	shufReadBlocks := N - n          // eq. 5-6: (1 GB − 128 MB) read
	shufWriteBlocks := N
	horam = PeriodOverhead{
		Scheme:           "H-ORAM",
		StorageBytes:     cfg.DataBytes,
		MemoryBytes:      cfg.MemoryBytes,
		PathLevel:        math.Log2(n / float64(cfg.Z)),
		RequestsServiced: requests,
		AccessReadKB:     kb, // 1 block read per I/O access
		AccessWriteKB:    0,
		ShuffleReadGB:    shufReadBlocks * gb,
		ShuffleWriteGB:   shufWriteBlocks * gb,
		AvgReadKB:        kb + shufReadBlocks*kb/float64(requests),
		AvgWriteKB:       shufWriteBlocks * kb / float64(requests),
	}

	// Baseline column: tree-top Path ORAM storing 2N slots.
	memLevels, ioLevels := PathLevels(n, N, cfg.Z)
	pr, pw := PathORAMIOPerAccess(n, N, cfg.Z)
	pathORAM = PeriodOverhead{
		Scheme:           "Path ORAM",
		StorageBytes:     2*cfg.DataBytes - cfg.MemoryBytes,
		MemoryBytes:      cfg.MemoryBytes,
		PathLevel:        memLevels + ioLevels,
		RequestsServiced: int64(n / 2), // same I/O-load budget n/2
		AccessReadKB:     pr * kb,
		AccessWriteKB:    pw * kb,
		ShuffleReadGB:    0,
		ShuffleWriteGB:   0,
		AvgReadKB:        pr * kb,
		AvgWriteKB:       pw * kb,
	}
	return horam, pathORAM
}

// IdealGainNoShuffle returns the §5.1 "non-shuffle case" bound: if the
// shuffle runs off the critical path (offline or server-side, Figure
// 5-2), H-ORAM's per-access cost is a single block read versus the
// baseline's Z·log2(2N/n) reads + writes — 32x for the Table 5-1
// scenario.
func IdealGainNoShuffle(n, N float64, Z int) float64 {
	pr, pw := PathORAMIOPerAccess(n, N, Z)
	return (pr + pw) / 1
}
