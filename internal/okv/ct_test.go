// Constant-time mode tests for the KV layer: the branchless selector
// must make exactly the selections the branching one makes, so the
// request stream handed to the backend — every op, address and
// payload byte, in order — is identical across modes, and both modes
// must agree with the map model on every result, including the
// ErrTableFull and miss edges and keys/values with trailing zeros.
package okv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// reqEvent is one backend request as the store issued it.
type reqEvent struct {
	op   core.Op
	addr int64
	data string // write payload copy ("" for reads)
}

// recBackend wraps a Backend and logs every request. The combiner may
// merge phase batches, so the log captures the flat request stream,
// not batch boundaries (under a serial caller the grouping is
// deterministic anyway, but the assertion should not depend on it).
type recBackend struct {
	inner Backend
	mu    sync.Mutex
	log   []reqEvent
}

func (r *recBackend) Batch(reqs []*core.Request) error {
	r.mu.Lock()
	for _, q := range reqs {
		ev := reqEvent{op: q.Op, addr: q.Addr}
		if q.Op == core.OpWrite {
			ev.data = string(q.Data)
		}
		r.log = append(r.log, ev)
	}
	r.mu.Unlock()
	return r.inner.Batch(reqs)
}
func (r *recBackend) Blocks() int64  { return r.inner.Blocks() }
func (r *recBackend) BlockSize() int { return r.inner.BlockSize() }

// ctKVStore builds a store over a recording backend.
func ctKVStore(t *testing.T, ct bool) (*Store, *recBackend) {
	t.Helper()
	rec := &recBackend{inner: newCoreClient(t)}
	s, err := New(Options{
		Backend:       rec,
		MaxValueBytes: 48,
		MaxKeyBytes:   12,
		Insecure:      true,
		Seed:          "okv-ct-parity",
		ConstantTime:  ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, rec
}

// kvOp is one scripted operation; the script runs identically against
// both stores and the map model.
type kvOp struct {
	kind  opKind
	key   string
	value string
}

// ctScript builds a deterministic op mix covering hit/miss GETs,
// inserting and updating SETs (including into full buckets), present
// and absent DELs, and zero-byte key/value edges.
func ctScript() []kvOp {
	var ops []kvOp
	key := func(i int) string { return fmt.Sprintf("k%03d", i) }
	// Fill essentially the whole table (capacity 168 slots at the test
	// geometry) so some SETs land in full bucket pairs (ErrTableFull
	// parity).
	for i := 0; i < 180; i++ {
		ops = append(ops, kvOp{opSet, key(i), fmt.Sprintf("v%d", i)})
	}
	for i := 0; i < 40; i++ {
		ops = append(ops, kvOp{opGet, key(i * 3), ""})            // mixed hit/miss
		ops = append(ops, kvOp{opSet, key(i * 2), "updated"})     // mostly updates
		ops = append(ops, kvOp{opDel, key(i*5 + 1), ""})          // mixed hit/miss
		ops = append(ops, kvOp{opGet, fmt.Sprintf("m%d", i), ""}) // guaranteed miss
	}
	// Trailing-zero edges: keys that are prefixes of each other plus a
	// zero byte, values with embedded and trailing zeros.
	ops = append(ops,
		kvOp{opSet, "z", "plain"},
		kvOp{opSet, "z\x00", "with-zero"},
		kvOp{opGet, "z", ""},
		kvOp{opGet, "z\x00", ""},
		kvOp{opGet, "z\x00\x00", ""},
		kvOp{opSet, "zv", "a\x00b\x00\x00"},
		kvOp{opGet, "zv", ""},
		kvOp{opDel, "z\x00", ""},
		kvOp{opGet, "z\x00", ""},
		kvOp{opGet, "z", ""},
	)
	return ops
}

// runScript executes the script, checking against the map model, and
// returns a transcript of every observable outcome.
func runScript(t *testing.T, s *Store, label string) []byte {
	t.Helper()
	model := make(map[string]string)
	var out bytes.Buffer
	for i, op := range ctScript() {
		switch op.kind {
		case opSet:
			err := s.Set([]byte(op.key), []byte(op.value))
			if errors.Is(err, ErrTableFull) {
				fmt.Fprintf(&out, "%d:set-full;", i)
				continue
			}
			if err != nil {
				t.Fatalf("%s: op %d Set(%q): %v", label, i, op.key, err)
			}
			model[op.key] = op.value
			fmt.Fprintf(&out, "%d:set;", i)
		case opGet:
			v, ok, err := s.Get([]byte(op.key))
			if err != nil {
				t.Fatalf("%s: op %d Get(%q): %v", label, i, op.key, err)
			}
			want, wantOK := model[op.key]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("%s: op %d Get(%q) = %q,%v; model %q,%v", label, i, op.key, v, ok, want, wantOK)
			}
			fmt.Fprintf(&out, "%d:get=%q,%v;", i, v, ok)
		case opDel:
			ok, err := s.Del([]byte(op.key))
			if err != nil {
				t.Fatalf("%s: op %d Del(%q): %v", label, i, op.key, err)
			}
			_, wantOK := model[op.key]
			if ok != wantOK {
				t.Fatalf("%s: op %d Del(%q) = %v, model %v", label, i, op.key, ok, wantOK)
			}
			delete(model, op.key)
			fmt.Fprintf(&out, "%d:del=%v;", i, ok)
		}
	}
	st := s.Stats()
	fmt.Fprintf(&out, "count=%d gets=%d sets=%d dels=%d misses=%d", st.Count, st.Gets, st.Sets, st.Dels, st.Misses)
	return out.Bytes()
}

// TestConstantTimeBackendStreamParity: both modes run the scripted
// workload against the map model, produce identical outcomes, and
// issue byte-identical backend request streams.
func TestConstantTimeBackendStreamParity(t *testing.T) {
	sDef, recDef := ctKVStore(t, false)
	sCT, recCT := ctKVStore(t, true)

	outDef := runScript(t, sDef, "default")
	outCT := runScript(t, sCT, "constant-time")
	if !bytes.Equal(outDef, outCT) {
		t.Fatalf("outcomes differ:\ndefault: %s\nct:      %s", outDef, outCT)
	}

	if len(recDef.log) != len(recCT.log) {
		t.Fatalf("backend request counts differ: default %d, ct %d", len(recDef.log), len(recCT.log))
	}
	if len(recDef.log) == 0 {
		t.Fatal("no backend requests recorded")
	}
	for i := range recDef.log {
		d, c := recDef.log[i], recCT.log[i]
		if d.op != c.op || d.addr != c.addr || d.data != c.data {
			t.Fatalf("request %d differs: default {op:%v addr:%d %d data bytes}, ct {op:%v addr:%d %d data bytes}",
				i, d.op, d.addr, len(d.data), c.op, c.addr, len(c.data))
		}
	}

	// The script must actually have exercised the interesting edges.
	if !bytes.Contains(outDef, []byte("set-full;")) {
		t.Fatal("script never hit ErrTableFull; shrink the table or add keys")
	}
	if !bytes.Contains(outDef, []byte(`,false;`)) {
		t.Fatal("script never produced a GET miss")
	}
}
