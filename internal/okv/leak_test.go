// Goroutine accounting on shutdown: Store.Close must join the whole
// combiner pool (and engine Close its schedulers), returning the
// process to its pre-construction goroutine count.
package okv

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
)

func waitGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	e, err := engine.New(engine.Options{
		Blocks:      512,
		BlockSize:   32,
		MemoryBytes: 4 << 10,
		Insecure:    true,
		Seed:        "okv-leak-test",
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Backend:       e,
		MaxValueBytes: 48,
		Insecure:      true,
		Seed:          "okv-leak-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the combiner pool with live operations before shutdown.
	for i := 0; i < 32; i++ {
		if err := s.Set([]byte(fmt.Sprintf("leak%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s.Close() // idempotent Close must not hang on the drained pool
	e.Close()
	waitGoroutinesBack(t, base)
}
