// Package okv is an oblivious key–value store layered on the H-ORAM
// block engine: the outsourced-database workload the paper's
// introduction motivates, built so the KV layer itself cannot re-open
// the access-pattern channel the block store closes.
//
// # Why a fixed shape
//
// An ORAM hides WHICH blocks an operation touches, but not HOW MANY:
// the scheduler runs one cycle per unit of work, and cycle counts are
// observable at the device bus. A KV layer that probes a
// key-dependent number of blocks (the classic linear-probing table:
// walk the collision chain until the key or an empty slot appears)
// therefore leaks key popularity and table structure through the op
// count alone — exactly the leak the engine exists to close. This
// package makes every logical operation issue one identical,
// constant-size block pipeline:
//
//	batch 1: 2·SlotsPerBucket slot reads   (both candidate buckets)
//	batch 2: extents extent reads          (target slot's value run)
//	batch 3: 1 slot write + extents extent writes
//
// GET-hit, GET-miss, SET-insert, SET-update, SET-into-a-full-table
// and DEL (present or absent) all run the full pipeline: misses read
// and rewrite a PRF-chosen dummy slot, GETs write back exactly what
// they read, DELs of absent keys rewrite unchanged blocks. The shape
// is independent of the key, the table occupancy and the value length
// (values are padded to the fixed extent run, up to MaxValueBytes).
// The obliviousness tests in this package assert both the per-op
// batch shape and the full device-event trace.
//
// # Layout
//
// Keys hash to two candidate buckets under a PRF keyed from the
// master key (two-choice hashing keeps bucket overflow exponentially
// unlikely at moderate load factors); each bucket holds
// SlotsPerBucket slots; each slot owns one directory block and a
// fixed run of ceil(MaxValueBytes/BlockSize) extent blocks. All state
// lives in ordinary engine blocks, so the engine's snapshot/restore
// protocol persists the table as a side effect; the only additional
// record is snapshot.KVState (geometry echo + counters), embedded in
// the engine manifest by Store.Checkpoint — persistence adds no new
// volume channel.
//
// # Residual channels
//
// The op COUNT is observable, as it is for any client of the block
// store. Input validation (empty/oversized key, oversized value) is
// refused before any block traffic; validity depends only on the
// request itself, never on secret table state, so the refusal reveals
// nothing an adversary did not already know. ErrTableFull is returned
// only AFTER the full fixed pipeline has run.
package okv

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/blockcipher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ctops"
	"repro/internal/snapshot"
)

// DefaultSlotsPerBucket is the bucket width. Two-choice hashing with
// 4-slot buckets sustains ~80% load factors with negligible overflow
// probability; the advertised Capacity assumes 100% (a SET may return
// ErrTableFull earlier when both candidate buckets fill).
const DefaultSlotsPerBucket = 4

// Typed errors. Validation errors (key/value) are returned before any
// block traffic; ErrTableFull only after the op's full fixed pipeline.
var (
	ErrKeyInvalid    = errors.New("okv: key empty or over MaxKeyBytes")
	ErrValueTooLarge = errors.New("okv: value over MaxValueBytes")
	ErrTableFull     = errors.New("okv: both candidate buckets full")
	ErrClosed        = errors.New("okv: closed")
)

// Backend is the oblivious block store the table lives in. Both
// *engine.Engine and *core.Client satisfy it.
type Backend interface {
	// Batch runs the requests as one logical batch; results land in
	// each request's Result field in submission order.
	Batch(reqs []*core.Request) error
	// Blocks is the backend's logical address-space size.
	Blocks() int64
	// BlockSize is the block size in bytes.
	BlockSize() int
}

// Options configures a Store.
type Options struct {
	// Backend is the block store the table is laid out in. Required.
	// The store assumes it owns the WHOLE address space: raw block
	// writes interleaved from elsewhere corrupt the table.
	Backend Backend
	// SlotsPerBucket is the bucket width; 0 selects
	// DefaultSlotsPerBucket.
	SlotsPerBucket int
	// MaxValueBytes caps value length and fixes the per-slot extent
	// run at ceil(MaxValueBytes/BlockSize) blocks. 0 selects
	// 4×BlockSize.
	MaxValueBytes int
	// MaxKeyBytes caps key length; 0 selects the largest key a slot
	// block can hold (BlockSize − 7 header bytes).
	MaxKeyBytes int
	// Key is the 32-byte master key the bucket-hashing PRF derives
	// from. Required unless Insecure is set.
	Key []byte
	// Insecure derives the hashing PRF from Seed instead of a key
	// (performance-model runs only; bucket placement becomes
	// predictable).
	Insecure bool
	// Seed is the insecure-mode PRF seed; empty selects a fixed one.
	Seed string
	// ConstantTime makes the trusted-memory half of every operation
	// branchless on secret state: target-slot selection scans all 2S
	// candidates with masked compares (crypto/subtle) instead of
	// breaking at the first match, and batch-3 contents are composed
	// with masked copies. The backend request stream is byte-for-byte
	// identical to the default mode; only the CPU-side timing channel
	// closes. Pair it with the engine's config.WithConstantTime so
	// the block layer below is hardened too.
	ConstantTime bool
}

// Shape is the fixed per-operation access shape: every Get, Set and
// Del issues exactly LookupReads slot reads, then ExtentReads extent
// reads, then Writes block writes, as three backend batches.
type Shape struct {
	LookupReads int
	ExtentReads int
	Writes      int
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Count    int64 // live keys
	Capacity int64 // total slots (upper bound on live keys)
	Gets     int64
	Sets     int64
	Dels     int64
	// Misses counts lookups (Get or Del) that found no live entry.
	Misses int64
}

// lockStripes is the size of the bucket-lock table. Concurrency is
// bounded by min(lockStripes, in-flight ops), so the value only needs
// to comfortably exceed any realistic serving parallelism.
const lockStripes = 64

// Store is an oblivious key–value table. All methods are safe for
// concurrent use. Each operation is a read-modify-write spanning
// three backend batches, so mutual exclusion is per bucket (striped):
// operations whose candidate buckets share no stripe run their
// pipelines concurrently — that is what lets KV throughput follow the
// engine's shard scaling — while operations on the same key (same
// buckets) serialise and stay linearizable. Checkpoint takes the
// quiesce lock to drain every in-flight pipeline before the directory
// state is captured.
type Store struct {
	be  Backend
	lay layout
	prf *blockcipher.PRF
	ct  bool // constant-time selection and batch-3 composition

	quiesce sync.RWMutex            // ops hold R; Checkpoint/Close hold W
	stripes [lockStripes]sync.Mutex // bucket-striped op exclusion
	closed  bool                    // written under quiesce.W, read under .R

	// submit feeds the combiner pool (see combiner): concurrent
	// operations' phase batches merge into shared backend batches.
	submit       chan *phaseReq
	combinerDone chan struct{} // closed once every combiner has exited

	// ops pools per-operation pipeline scratch (request structs,
	// decoded entries, batch-3 encode buffers) so the steady-state op
	// path allocates nothing beyond the value returned to the caller.
	ops sync.Pool

	statMu sync.Mutex
	count  int64
	gets   int64
	sets   int64
	dels   int64
	misses int64
}

// phaseReq is one operation's contribution to a combined backend
// batch.
type phaseReq struct {
	reqs []*core.Request
	done chan error
}

// opScratch holds one operation's fixed pipeline state: the request
// structs and pointer slices of all three batches, the decoded slot
// entries, and the batch-3 encode buffers. Shapes depend only on the
// layout, so a pooled scratch serves any op. The pointer slices are
// wired to the request arrays once, at construction; each use resets
// the request structs wholesale (which also clears the scheduler's
// internal completion mark).
type opScratch struct {
	slotIdx  []int64
	entries  []slotEntry
	lookupRs []core.Request
	lookups  []*core.Request
	extRs    []core.Request
	extReads []*core.Request
	writeRs  []core.Request
	writes   []*core.Request
	extData  [][]byte // batch-3 extent payload views
	slotBuf  []byte   // batch-3 slot encode / delete scrub
	extBufs  [][]byte // batch-3 extent encodes, one backing slab

	// Constant-time mode scratch: the padded probe key, per-candidate
	// occupancy masks, the gathered target slot read-back, and the
	// masked-composed batch-3 payloads.
	keyBuf    []byte
	occs      []int
	slotRead  []byte
	writeSlot []byte
	extWrite  [][]byte // one backing slab
}

func newOpScratch(lay layout) *opScratch {
	S, E := lay.slots, lay.extents
	sc := &opScratch{
		slotIdx:   make([]int64, 2*S),
		entries:   make([]slotEntry, 2*S),
		lookupRs:  make([]core.Request, 2*S),
		lookups:   make([]*core.Request, 2*S),
		extRs:     make([]core.Request, E),
		extReads:  make([]*core.Request, E),
		writeRs:   make([]core.Request, 1+E),
		writes:    make([]*core.Request, 1+E),
		extData:   make([][]byte, E),
		slotBuf:   make([]byte, lay.blockSize),
		extBufs:   make([][]byte, E),
		keyBuf:    make([]byte, lay.maxKey),
		occs:      make([]int, 2*S),
		slotRead:  make([]byte, lay.blockSize),
		writeSlot: make([]byte, lay.blockSize),
		extWrite:  make([][]byte, E),
	}
	backing := make([]byte, E*lay.blockSize)
	for j := range sc.extBufs {
		sc.extBufs[j] = backing[j*lay.blockSize : (j+1)*lay.blockSize]
	}
	ctBacking := make([]byte, E*lay.blockSize)
	for j := range sc.extWrite {
		sc.extWrite[j] = ctBacking[j*lay.blockSize : (j+1)*lay.blockSize]
	}
	for i := range sc.lookupRs {
		sc.lookups[i] = &sc.lookupRs[i]
	}
	for i := range sc.extRs {
		sc.extReads[i] = &sc.extRs[i]
	}
	for i := range sc.writeRs {
		sc.writes[i] = &sc.writeRs[i]
	}
	return sc
}

// combineCap bounds one combined backend batch, so a burst of
// concurrent pipelines cannot build arbitrarily long drains.
const combineCap = 1024

// combineWorkers is the number of combiner goroutines. More than one
// keeps independent operations' phase batches overlapping inside the
// backend, so a sharded engine sees back-to-back batches in flight
// and can defer its cross-shard leveling to the last one out instead
// of padding at every batch boundary.
const combineWorkers = 4

// combiner is one of the store's batching goroutines. It takes
// whatever phase submissions are queued RIGHT NOW — at least one,
// blocking — and issues them as ONE backend batch, then completes the
// waiters. Under concurrency this merges many operations' fixed
// pipelines into shared scheduler drains (amortising the engine's
// per-batch cross-shard leveling); a lone serial operation is issued
// immediately, with no added latency window. Merging never alters
// what any single operation contributes — each op still issues its
// exact fixed request sequence — so the combined batch sizes depend
// only on arrival timing, never on keys, occupancy or outcomes.
func (s *Store) combiner() {
	for pr := range s.submit {
		reqs := pr.reqs
		waiters := []*phaseReq{pr}
	drain:
		for len(reqs) < combineCap {
			select {
			case more, ok := <-s.submit:
				if !ok {
					break drain
				}
				reqs = append(reqs, more.reqs...)
				waiters = append(waiters, more)
			default:
				break drain
			}
		}
		err := s.be.Batch(reqs)
		for _, w := range waiters {
			w.done <- err
		}
	}
}

// runBatch routes one phase batch through the combiner. The caller
// holds quiesce.R, so Close cannot shut the combiner down while a
// submission is in flight.
func (s *Store) runBatch(reqs []*core.Request) error {
	pr := &phaseReq{reqs: reqs, done: make(chan error, 1)}
	s.submit <- pr
	return <-pr.done
}

// Close stops the combiner pool after in-flight operations
// drain. Operations after Close return ErrClosed. Safe to call more
// than once. Close does not touch the backend.
func (s *Store) Close() {
	s.quiesce.Lock()
	defer s.quiesce.Unlock()
	if s.closed {
		<-s.combinerDone
		return
	}
	s.closed = true
	close(s.submit)
	<-s.combinerDone
}

// lockBuckets locks the stripes of both candidate buckets in stripe
// order (a single lock when they collide) and returns the unlock.
func (s *Store) lockBuckets(b0, b1 int64) func() {
	i, j := int(b0%lockStripes), int(b1%lockStripes)
	if i > j {
		i, j = j, i
	}
	s.stripes[i].Lock()
	if j != i {
		s.stripes[j].Lock()
	}
	return func() {
		if j != i {
			s.stripes[j].Unlock()
		}
		s.stripes[i].Unlock()
	}
}

// resolve fills defaults, validates, and derives the layout.
func resolve(opts Options) (Options, layout, error) {
	if opts.Backend == nil {
		return opts, layout{}, errors.New("okv: Options.Backend is required")
	}
	blockSize := opts.Backend.BlockSize()
	if blockSize <= slotHeaderLen {
		return opts, layout{}, fmt.Errorf("okv: block size %d cannot hold a %d-byte slot header", blockSize, slotHeaderLen)
	}
	if opts.SlotsPerBucket == 0 {
		opts.SlotsPerBucket = DefaultSlotsPerBucket
	}
	if opts.SlotsPerBucket < 1 {
		return opts, layout{}, fmt.Errorf("okv: SlotsPerBucket %d must be positive", opts.SlotsPerBucket)
	}
	if opts.MaxValueBytes == 0 {
		opts.MaxValueBytes = 4 * blockSize
	}
	if opts.MaxValueBytes < 1 {
		return opts, layout{}, fmt.Errorf("okv: MaxValueBytes %d must be positive", opts.MaxValueBytes)
	}
	if opts.MaxKeyBytes == 0 {
		opts.MaxKeyBytes = blockSize - slotHeaderLen
	}
	if opts.MaxKeyBytes < 1 || opts.MaxKeyBytes > blockSize-slotHeaderLen {
		return opts, layout{}, fmt.Errorf("okv: MaxKeyBytes %d out of [1,%d]", opts.MaxKeyBytes, blockSize-slotHeaderLen)
	}
	if !opts.Insecure && len(opts.Key) != 32 {
		return opts, layout{}, fmt.Errorf("okv: Key must be 32 bytes, got %d", len(opts.Key))
	}
	extents := (opts.MaxValueBytes + blockSize - 1) / blockSize
	lay := layout{
		slots:     opts.SlotsPerBucket,
		extents:   extents,
		blockSize: blockSize,
		maxKey:    opts.MaxKeyBytes,
		maxValue:  opts.MaxValueBytes,
	}
	lay.buckets = opts.Backend.Blocks() / (int64(opts.SlotsPerBucket) * lay.blocksPerSlot())
	if lay.buckets < 2 {
		return opts, layout{}, fmt.Errorf("okv: backend of %d blocks fits %d buckets of %d slots × %d blocks; need at least 2 (two-choice hashing)",
			opts.Backend.Blocks(), lay.buckets, opts.SlotsPerBucket, lay.blocksPerSlot())
	}
	return opts, lay, nil
}

// hashPRF builds the bucket-hashing PRF.
func hashPRF(opts Options) (*blockcipher.PRF, error) {
	if !opts.Insecure {
		return blockcipher.NewPRF(opts.Key)
	}
	seed := opts.Seed
	if seed == "" {
		seed = "okv-insecure"
	}
	sum := sha256.Sum256([]byte("okv-hash-seed/" + seed))
	return blockcipher.NewPRF(sum[:])
}

// New lays a fresh table over the backend's address space. The
// backend's blocks must all read as zeros (a fresh engine does): a
// zero block decodes as an empty slot, so no initialisation traffic
// is needed.
func New(opts Options) (*Store, error) {
	opts, lay, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	prf, err := hashPRF(opts)
	if err != nil {
		return nil, err
	}
	s := &Store{
		be:           opts.Backend,
		lay:          lay,
		prf:          prf,
		ct:           opts.ConstantTime,
		submit:       make(chan *phaseReq, lockStripes),
		combinerDone: make(chan struct{}),
	}
	s.ops.New = func() any { return newOpScratch(lay) }
	var cwg sync.WaitGroup
	for i := 0; i < combineWorkers; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			s.combiner()
		}()
	}
	go func() {
		cwg.Wait()
		close(s.combinerDone)
	}()
	return s, nil
}

// Resume re-attaches a Store to a restored backend image. st is the
// directory state the engine manifest carried (engine.RestoredKVState);
// the geometry it echoes must match what opts derives — a mismatch
// would silently re-hash every key to different buckets — and its
// counters are adopted.
func Resume(opts Options, st *snapshot.KVState) (*Store, error) {
	if st == nil {
		return nil, errors.New("okv: restored image carries no KV state (was the store created with the KV layer enabled?)")
	}
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	if err := config.CheckEcho("okv: resume geometry mismatch", []config.Field{
		{Name: "Buckets", Got: s.lay.buckets, Want: st.Buckets},
		{Name: "SlotsPerBucket", Got: s.lay.slots, Want: st.SlotsPerBucket},
		{Name: "MaxValueBytes", Got: s.lay.maxValue, Want: st.MaxValueBytes},
		{Name: "MaxKeyBytes", Got: s.lay.maxKey, Want: st.MaxKeyBytes},
	}); err != nil {
		return nil, err
	}
	s.count = st.Count
	s.gets, s.sets, s.dels, s.misses = st.Gets, st.Sets, st.Dels, st.Misses
	return s, nil
}

// Capacity is the total slot count — the hard upper bound on live
// keys. Two-choice hashing typically sustains ~80% of it before a SET
// first sees ErrTableFull.
func (s *Store) Capacity() int64 { return s.lay.buckets * int64(s.lay.slots) }

// Buckets returns the table's bucket count.
func (s *Store) Buckets() int64 { return s.lay.buckets }

// SlotsPerBucket returns the resolved bucket width.
func (s *Store) SlotsPerBucket() int { return s.lay.slots }

// Len returns the number of live keys.
func (s *Store) Len() int64 {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.count
}

// MaxValueBytes returns the value-length cap.
func (s *Store) MaxValueBytes() int { return s.lay.maxValue }

// MaxKeyBytes returns the key-length cap.
func (s *Store) MaxKeyBytes() int { return s.lay.maxKey }

// Shape returns the fixed per-operation access shape.
func (s *Store) Shape() Shape {
	return Shape{
		LookupReads: 2 * s.lay.slots,
		ExtentReads: s.lay.extents,
		Writes:      1 + s.lay.extents,
	}
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return Stats{
		Count:    s.count,
		Capacity: s.Capacity(),
		Gets:     s.gets,
		Sets:     s.sets,
		Dels:     s.dels,
		Misses:   s.misses,
	}
}

// state renders the directory state for the snapshot manifest. Caller
// holds statMu or has quiesced the store.
func (s *Store) state() snapshot.KVState {
	return snapshot.KVState{
		Buckets:        s.lay.buckets,
		SlotsPerBucket: s.lay.slots,
		MaxValueBytes:  s.lay.maxValue,
		MaxKeyBytes:    s.lay.maxKey,
		Count:          s.count,
		Gets:           s.gets,
		Sets:           s.sets,
		Dels:           s.dels,
		Misses:         s.misses,
	}
}

// Checkpoint quiesces the store — every in-flight operation pipeline
// completes, new ones wait — and runs save with the directory state,
// so the saved state can never sit between the batches of a
// half-finished operation. The intended save function is
// engine.SaveSnapshotKV: the engine then quiesces its shards, levels
// cycle counts, and persists the block image and this record at one
// checkpoint cut.
func (s *Store) Checkpoint(save func(*snapshot.KVState) error) error {
	s.quiesce.Lock()
	defer s.quiesce.Unlock()
	st := s.state()
	return save(&st)
}

// validateKey refuses malformed keys before any block traffic.
// Validity depends only on the request itself, never on table state.
func (s *Store) validateKey(key []byte) error {
	if len(key) < 1 || len(key) > s.lay.maxKey {
		return fmt.Errorf("%w: %d bytes, cap %d", ErrKeyInvalid, len(key), s.lay.maxKey)
	}
	return nil
}

// buckets returns the key's two candidate buckets under the keyed
// PRF. They may coincide; the pipeline reads both runs regardless, so
// the shape does not change.
func (s *Store) buckets(key []byte) (int64, int64) {
	b0 := int64(s.prf.Uint64("okv-bucket-0|"+string(key), 0) % uint64(s.lay.buckets))
	b1 := int64(s.prf.Uint64("okv-bucket-1|"+string(key), 0) % uint64(s.lay.buckets))
	return b0, b1
}

// dummySlot picks the miss path's target among the 2S candidate
// slots, keyed by the PRF so it is deterministic per key but
// structureless across keys.
func (s *Store) dummySlot(key []byte) int {
	return int(s.prf.Uint64("okv-dummy|"+string(key), 0) % uint64(2*s.lay.slots))
}

// opKind discriminates the three public operations inside the shared
// fixed pipeline.
type opKind int

const (
	opGet opKind = iota
	opSet
	opDel
)

// access is the one fixed pipeline every operation runs: 2S slot
// reads, E extent reads of the target slot, then 1 slot write + E
// extent writes. Only the CONTENT of batch 3 depends on the op kind
// and lookup outcome; the batch sizes, op mix and ordering never do.
func (s *Store) access(kind opKind, key, value []byte) (val []byte, found bool, err error) {
	s.quiesce.RLock()
	defer s.quiesce.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}

	S := s.lay.slots
	b0, b1 := s.buckets(key)
	unlock := s.lockBuckets(b0, b1)
	defer unlock()

	sc := s.ops.Get().(*opScratch)
	defer s.ops.Put(sc)

	// Batch 1: read both candidate buckets' slot blocks.
	n := 0
	for _, b := range [2]int64{b0, b1} {
		for j := 0; j < S; j++ {
			idx := s.lay.slotIndex(b, j)
			sc.slotIdx[n] = idx
			sc.lookupRs[n] = core.Request{Op: core.OpRead, Addr: s.lay.slotAddr(idx)}
			n++
		}
	}
	if err := s.runBatch(sc.lookups); err != nil {
		return nil, false, fmt.Errorf("okv: lookup batch: %w", err)
	}
	// Classify and pick the target slot. Every path lands on exactly
	// one of the 2S candidates. Both selectors make the same
	// decisions (first key match in scan order; the freer bucket with
	// ties to b0, then its first free slot; the PRF dummy on miss or
	// full) so the two modes issue byte-identical backend traffic —
	// they differ only in whether the scan branches on slot contents.
	var (
		target     int
		tIdx       int64 // target's global slot index
		full       bool
		valLen     int
		fndM, fulM int // CT-mode 0/1 masks for found/full
	)
	if s.ct {
		tIdx, fndM, fulM, valLen = s.selectTargetCT(sc, kind, key)
		found = fndM == 1
		full = fulM == 1
	} else {
		entries := sc.entries
		for i := range sc.lookupRs {
			e, err := s.lay.decodeSlot(sc.lookupRs[i].Result)
			if err != nil {
				return nil, false, fmt.Errorf("okv: slot %d of bucket %d: %w", i%S, sc.slotIdx[i]/int64(S), err)
			}
			entries[i] = e
		}
		target = -1
		for i, e := range entries {
			if e.occupied && bytes.Equal(e.key, key) {
				target = i
				found = true
				break
			}
		}
		if !found {
			if kind == opSet {
				// Two-choice insert: the bucket with more free slots
				// wins (ties to b0), then its first free slot.
				free := [2]int{}
				for i, e := range entries {
					if !e.occupied {
						free[i/S]++
					}
				}
				half := 0
				if free[1] > free[0] {
					half = 1
				}
				if free[half] == 0 {
					full = true
					target = s.dummySlot(key)
				} else {
					for j := 0; j < S; j++ {
						if !entries[half*S+j].occupied {
							target = half*S + j
							break
						}
					}
				}
			} else {
				target = s.dummySlot(key)
			}
		}
		if found {
			valLen = entries[target].valLen
		}
		tIdx = sc.slotIdx[target]
	}

	// Batch 2: read the target slot's fixed extent run. On the miss
	// and full paths this is the dummy read that keeps the shape.
	for j := range sc.extRs {
		sc.extRs[j] = core.Request{Op: core.OpRead, Addr: s.lay.extentAddr(tIdx, j)}
	}
	if err := s.runBatch(sc.extReads); err != nil {
		return nil, false, fmt.Errorf("okv: extent batch: %w", err)
	}

	// Compute batch 3's contents: by default write back the exact
	// bytes just read (a semantic no-op — the ORAM re-encrypts every
	// write, so it is bus-indistinguishable from a mutation).
	var slotData []byte
	extData := sc.extData
	for j := range sc.extRs {
		extData[j] = sc.extRs[j].Result
	}
	if s.ct {
		slotData = s.composeWritesCT(sc, kind, key, value, fndM, fulM, valLen, &val)
		extData = sc.extWrite
	} else {
		slotData = sc.lookupRs[target].Result
		switch {
		case kind == opSet && !full:
			s.lay.encodeSlotInto(sc.slotBuf, key, len(value))
			s.lay.encodeValueInto(sc.extBufs, value)
			slotData = sc.slotBuf
			copy(extData, sc.extBufs)
		case kind == opDel && found:
			// Vacate the slot and scrub the extents so deleted values
			// do not linger in the (encrypted) block image.
			for i := range sc.slotBuf {
				sc.slotBuf[i] = 0
			}
			s.lay.encodeValueInto(sc.extBufs, nil)
			slotData = sc.slotBuf
			copy(extData, sc.extBufs)
		case kind == opGet && found:
			val = s.lay.decodeValue(extData, valLen)
		}
	}

	// Batch 3: one slot write plus the extent run.
	sc.writeRs[0] = core.Request{Op: core.OpWrite, Addr: s.lay.slotAddr(tIdx), Data: slotData}
	for j, d := range extData {
		sc.writeRs[1+j] = core.Request{Op: core.OpWrite, Addr: s.lay.extentAddr(tIdx, j), Data: d}
	}
	if err := s.runBatch(sc.writes); err != nil {
		return nil, false, fmt.Errorf("okv: write batch: %w", err)
	}

	// Counters after the pipeline completed.
	s.statMu.Lock()
	defer s.statMu.Unlock()
	switch kind {
	case opGet:
		s.gets++
		if !found {
			s.misses++
		}
	case opSet:
		s.sets++
		if full {
			return nil, false, fmt.Errorf("%w (capacity %d, %d live keys)", ErrTableFull, s.Capacity(), s.count)
		}
		if !found {
			s.count++
		}
	case opDel:
		s.dels++
		if found {
			s.count--
		} else {
			s.misses++
		}
	}
	return val, found, nil
}

// selectTargetCT is the constant-time selector: one fixed-order pass
// over all 2S candidate slots with masked compares picks the same
// target the branching selector would — first key match in scan
// order; otherwise for SET the freer bucket (ties to b0) and its
// first free slot; otherwise the PRF dummy — and gathers the target's
// global slot index and read-back bytes without a secret-indexed
// load. The op kind is the caller's own request and so public;
// everything derived from slot contents flows through 0/1 masks.
// Returned found/full are 0/1 masks (they become caller-visible
// outputs only after the pipeline completes).
//
//horam:constant-time
//horam:secret key raw
func (s *Store) selectTargetCT(sc *opScratch, kind opKind, key []byte) (tIdx int64, fnd, full, valLen int) {
	S := s.lay.slots
	// Probe key, zero-padded to the fixed compare window. Slot blocks
	// zero-pad the key region past klen too (encodeSlotInto, and a
	// fresh or scrubbed block is all zeros), so a full-window compare
	// plus a length check is an exact key match even for keys with
	// trailing zero bytes.
	n := copy(sc.keyBuf, key)
	for i := n; i < len(sc.keyBuf); i++ {
		sc.keyBuf[i] = 0
	}
	tgt := 0
	free0, free1 := 0, 0
	for i := 0; i < 2*S; i++ {
		raw := sc.lookupRs[i].Result
		occ := int(subtle.ConstantTimeByteEq(raw[0], slotOccupied))
		sc.occs[i] = occ
		klen := int(binary.BigEndian.Uint16(raw[1:3]))
		keyEq := occ & ctops.EqInt(klen, len(key)) &
			subtle.ConstantTimeCompare(raw[slotHeaderLen:slotHeaderLen+s.lay.maxKey], sc.keyBuf)
		m := keyEq & (fnd ^ 1) // first match in scan order wins
		tgt = ctops.SelectInt(m, i, tgt)
		valLen = ctops.SelectInt(m, int(binary.BigEndian.Uint32(raw[3:7])), valLen)
		fnd |= m
		if i < S { // public: loop index
			free0 += occ ^ 1
		} else {
			free1 += occ ^ 1
		}
	}

	// Miss-path target: first free slot of the freer half for SET,
	// the PRF dummy otherwise (and for SET when both halves are
	// full). hasFree doubles as the not-full mask.
	half := ctops.LtInt(free0, free1) // free1 > free0 selects bucket 1
	firstFree, hasFree := 0, 0
	for i := 0; i < 2*S; i++ {
		inHalf := ctops.EqInt(i/S, half)
		pick := inHalf & (sc.occs[i] ^ 1) & (hasFree ^ 1)
		firstFree = ctops.SelectInt(pick, i, firstFree)
		hasFree |= pick
	}
	dummy := s.dummySlot(key) // stateless PRF: computing it on every path is free
	if kind == opSet {        // public: the caller's own op kind
		full = (fnd ^ 1) & (hasFree ^ 1)
		ins := ctops.SelectInt(full, dummy, firstFree)
		tgt = ctops.SelectInt(fnd, tgt, ins)
	} else {
		tgt = ctops.SelectInt(fnd, tgt, dummy)
	}

	// Gather the target's slot index and read-back bytes with a full
	// masked pass instead of indexing by the secret tgt.
	for i := 0; i < 2*S; i++ {
		m := ctops.EqInt(i, tgt)
		tIdx = ctops.Select64(m, sc.slotIdx[i], tIdx)
		ctops.CopyBytes(m, sc.slotRead, sc.lookupRs[i].Result)
	}

	// Clamp the gathered value length arithmetically: the default
	// selector relies on decodeSlot validation, which the masked scan
	// skips (the sealer authenticates blocks, so an out-of-range
	// length means table damage, not attacker input).
	valLen = ctops.SelectInt(fnd, valLen, 0)
	valLen = ctops.SelectInt(ctops.LtInt(s.lay.maxValue, valLen), s.lay.maxValue, valLen)
	return tIdx, fnd, full, valLen
}

// composeWritesCT fills the batch-3 payload buffers (sc.writeSlot,
// sc.extWrite) with masked copies: every op stages the gathered
// read-back bytes, then the outcome mask overlays the freshly encoded
// slot/value run. The staged bytes equal what the default mode writes
// in every case — only the composition is branchless. For GET it also
// produces the caller's value; trimming it to the hit/miss outcome is
// a branch on the op's own return value, not on hidden state.
//
//horam:constant-time
//horam:secret key value
func (s *Store) composeWritesCT(sc *opScratch, kind opKind, key, value []byte, fnd, full, valLen int, val *[]byte) []byte {
	copy(sc.writeSlot, sc.slotRead)
	for j := range sc.extWrite {
		copy(sc.extWrite[j], sc.extRs[j].Result)
	}
	switch kind { // public: the caller's own op kind
	case opSet:
		s.lay.encodeSlotInto(sc.slotBuf, key, len(value))
		s.lay.encodeValueInto(sc.extBufs, value)
		use := full ^ 1
		ctops.CopyBytes(use, sc.writeSlot, sc.slotBuf)
		for j := range sc.extWrite {
			ctops.CopyBytes(use, sc.extWrite[j], sc.extBufs[j])
		}
	case opDel:
		// Vacate the slot and scrub the extents (masked: an absent
		// key rewrites the dummy slot's bytes unchanged).
		for i := range sc.slotBuf {
			sc.slotBuf[i] = 0
		}
		s.lay.encodeValueInto(sc.extBufs, nil)
		ctops.CopyBytes(fnd, sc.writeSlot, sc.slotBuf)
		for j := range sc.extWrite {
			ctops.CopyBytes(fnd, sc.extWrite[j], sc.extBufs[j])
		}
	case opGet:
		v := s.lay.decodeValue(sc.extWrite, valLen)
		if fnd == 1 { // the hit/miss outcome is returned to the caller
			*val = v
		}
	}
	return sc.writeSlot
}

// Get looks key up, returning ok=false when absent. A miss runs the
// same fixed pipeline as a hit.
func (s *Store) Get(key []byte) (value []byte, ok bool, err error) {
	if err := s.validateKey(key); err != nil {
		return nil, false, err
	}
	return s.access(opGet, key, nil)
}

// Set inserts or updates key. Values up to MaxValueBytes (inclusive)
// are padded to the fixed extent run; longer ones are refused before
// any block traffic. When both candidate buckets are full the fixed
// pipeline still runs to completion and ErrTableFull is returned.
func (s *Store) Set(key, value []byte) error {
	if err := s.validateKey(key); err != nil {
		return err
	}
	if len(value) > s.lay.maxValue {
		return fmt.Errorf("%w: %d bytes, cap %d", ErrValueTooLarge, len(value), s.lay.maxValue)
	}
	_, _, err := s.access(opSet, key, value)
	return err
}

// Del removes key, reporting whether it existed. Deleting an absent
// key is a no-op with the same access shape as a real deletion.
func (s *Store) Del(key []byte) (existed bool, err error) {
	if err := s.validateKey(key); err != nil {
		return false, err
	}
	_, found, err := s.access(opDel, key, nil)
	return found, err
}
