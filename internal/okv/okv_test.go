// Differential tests: the oblivious KV store against a plain
// map[string]string. The map defines the reference semantics — Get
// returns the last value Set for the key (absent if never set or
// deleted), Del reports prior existence — and the store must match it
// at every shard count, across shuffle periods, and across a
// snapshot/restore cut. The edge cases the old examples/kvstore
// mishandled (table-full inserts, deletes, value-cap boundaries) are
// covered here explicitly.
package okv

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/core"
	"repro/internal/engine"
)

// newCoreClient builds an unsharded core.Client backend.
func newCoreClient(t *testing.T) *core.Client {
	t.Helper()
	c, err := core.Open(core.Options{
		Blocks:      512,
		BlockSize:   32,
		MemoryBytes: 4 << 10,
		Insecure:    true,
		Seed:        "okv-core-backend",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testEngine builds a small sharded engine whose per-shard memory
// trees are tiny, so differential runs cross several shuffle periods.
func testEngine(t *testing.T, shards int, seed string) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Options{
		Blocks:      512,
		BlockSize:   32,
		MemoryBytes: 4 << 10,
		Insecure:    true,
		Seed:        seed,
		Shards:      shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func testStore(t *testing.T, e *engine.Engine) *Store {
	t.Helper()
	s, err := New(Options{
		Backend:        e,
		SlotsPerBucket: 2,
		MaxValueBytes:  64, // 2 extent blocks of 32 B
		Insecure:       true,
		Seed:           "okv-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runDifferential drives a seeded randomized KV workload through the
// store, checking every outcome against the model as it goes, and
// returns the model for continuation checks.
func runDifferential(t *testing.T, s *Store, label string, ops int, model map[string]string) {
	t.Helper()
	rng := blockcipher.NewRNGFromString("okv-differential")
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for i := 0; i < ops; i++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // Set
			vlen := rng.Intn(s.MaxValueBytes() + 1) // 0..cap inclusive
			v := make([]byte, vlen)
			rng.Read(v)
			err := s.Set([]byte(k), v)
			if errors.Is(err, ErrTableFull) {
				if _, ok := model[k]; ok {
					t.Fatalf("%s: op %d: Set(%s) reported full but the key exists (update cannot fill)", label, i, k)
				}
				continue // model unchanged: the insert was refused
			}
			if err != nil {
				t.Fatalf("%s: op %d: Set(%s): %v", label, i, k, err)
			}
			model[k] = string(v)
		case 4: // Del
			existed, err := s.Del([]byte(k))
			if err != nil {
				t.Fatalf("%s: op %d: Del(%s): %v", label, i, k, err)
			}
			_, want := model[k]
			if existed != want {
				t.Fatalf("%s: op %d: Del(%s) existed=%v, model says %v", label, i, k, existed, want)
			}
			delete(model, k)
		default: // Get
			v, ok, err := s.Get([]byte(k))
			if err != nil {
				t.Fatalf("%s: op %d: Get(%s): %v", label, i, k, err)
			}
			want, wantOK := model[k]
			if ok != wantOK {
				t.Fatalf("%s: op %d: Get(%s) ok=%v, model says %v", label, i, k, ok, wantOK)
			}
			if ok && !bytes.Equal(v, []byte(want)) {
				t.Fatalf("%s: op %d: Get(%s) = %d bytes, want %d", label, i, k, len(v), len(want))
			}
		}
		if got := s.Len(); got != int64(len(model)) {
			t.Fatalf("%s: op %d: Len() = %d, model holds %d", label, i, got, len(model))
		}
	}
}

// TestDifferentialAgainstMapModel runs the randomized workload at
// shard counts 1, 2 and 4, checking the geometry actually crossed
// shuffle periods on every shard.
func TestDifferentialAgainstMapModel(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := testEngine(t, shards, fmt.Sprintf("okv-diff-%d", shards))
			s := testStore(t, e)
			model := make(map[string]string)
			runDifferential(t, s, "diff", 240, model)
			for _, sh := range e.ShardStats() {
				if sh.Shuffles < 2 {
					t.Fatalf("shard %d shuffled only %d times; the run never crossed enough shuffle periods", sh.Shard, sh.Shuffles)
				}
			}
			st := s.Stats()
			if st.Gets == 0 || st.Sets == 0 || st.Dels == 0 || st.Misses == 0 {
				t.Fatalf("workload did not exercise every op kind: %+v", st)
			}
		})
	}
}

// TestSnapshotRestoreDifferential checkpoints the store mid-workload,
// tears the whole stack down, restores from disk, and continues the
// differential run against the same model: the restart must preserve
// the table, the live-key count and the counters.
func TestSnapshotRestoreDifferential(t *testing.T) {
	dir := t.TempDir()
	build := func(restore bool) (*engine.Engine, *Store) {
		opts := engine.Options{
			Blocks:      512,
			BlockSize:   32,
			MemoryBytes: 4 << 10,
			Insecure:    true,
			Seed:        "okv-persist",
			Shards:      2,
			DataDir:     filepath.Join(dir, "store"),
		}
		var e *engine.Engine
		var err error
		if restore {
			e, err = engine.Restore(opts)
		} else {
			e, err = engine.New(opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		kvOpts := Options{
			Backend:        e,
			SlotsPerBucket: 2,
			MaxValueBytes:  64,
			Insecure:       true,
			Seed:           "okv-test",
		}
		var s *Store
		if restore {
			s, err = Resume(kvOpts, e.RestoredKVState())
		} else {
			s, err = New(kvOpts)
		}
		if err != nil {
			e.Close()
			t.Fatal(err)
		}
		return e, s
	}

	e, s := build(false)
	model := make(map[string]string)
	runDifferential(t, s, "pre-snapshot", 120, model)
	preStats := s.Stats()
	if err := s.Checkpoint(e.SaveSnapshotKV); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e, s = build(true)
	defer e.Close()
	if got := s.Stats(); got != preStats {
		t.Fatalf("restored stats %+v, want %+v", got, preStats)
	}
	// Every model key must read back across the restart, then the
	// workload continues against the same model.
	for k, v := range model {
		got, ok, err := s.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, []byte(v)) {
			t.Fatalf("after restore: Get(%s) = (%d bytes, %v, %v), want %d bytes", k, len(got), ok, err, len(v))
		}
	}
	runDifferential(t, s, "post-restore", 120, model)
}

// TestResumeRefusesGeometryDrift pins the resume-time validation: a
// table persisted under one geometry must not be reopened under
// another (every key would silently re-hash).
func TestResumeRefusesGeometryDrift(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	opts := engine.Options{
		Blocks: 512, BlockSize: 32, MemoryBytes: 4 << 10,
		Insecure: true, Seed: "okv-drift", Shards: 2, DataDir: dir,
	}
	e, err := engine.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Backend: e, SlotsPerBucket: 2, MaxValueBytes: 64, Insecure: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(e.SaveSnapshotKV); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e, err = engine.Restore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, bad := range []Options{
		{Backend: e, SlotsPerBucket: 4, MaxValueBytes: 64, Insecure: true},
		{Backend: e, SlotsPerBucket: 2, MaxValueBytes: 32, Insecure: true},
		{Backend: e, SlotsPerBucket: 2, MaxValueBytes: 64, MaxKeyBytes: 8, Insecure: true},
	} {
		if _, err := Resume(bad, e.RestoredKVState()); err == nil {
			t.Fatalf("Resume accepted drifted geometry %+v", bad)
		}
	}
	if _, err := Resume(Options{Backend: e, SlotsPerBucket: 2, MaxValueBytes: 64, Insecure: true}, nil); err == nil {
		t.Fatal("Resume accepted a nil KV state")
	}
	if s, err = Resume(Options{Backend: e, SlotsPerBucket: 2, MaxValueBytes: 64, Insecure: true, Seed: "okv-insecure"}, e.RestoredKVState()); err != nil {
		t.Fatalf("Resume refused the matching geometry: %v", err)
	}
	if v, ok, err := s.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after resume = (%q, %v, %v)", v, ok, err)
	}
}

// TestTableFull covers the old example's worst latent bug (a full
// table cost up to 2048 sequential ORAM reads before erroring): a SET
// into a table whose both candidate buckets are occupied returns
// ErrTableFull — typed, after its one fixed pipeline — and deleting
// any resident key makes the same SET succeed.
func TestTableFull(t *testing.T) {
	e, err := engine.New(engine.Options{
		Blocks:      8, // 2 buckets x 2 slots x (1 slot + 1 extent) blocks
		BlockSize:   32,
		MemoryBytes: 1 << 10,
		Insecure:    true,
		Seed:        "okv-full",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s, err := New(Options{Backend: e, SlotsPerBucket: 2, MaxValueBytes: 16, Insecure: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", s.Capacity())
	}

	// Insert fresh keys until one is refused. With 2 buckets the table
	// must refuse no later than the 5th distinct key.
	var fullErr error
	inserted := []string{}
	for i := 0; i < 16 && fullErr == nil; i++ {
		k := fmt.Sprintf("fill-%d", i)
		err := s.Set([]byte(k), []byte{byte(i)})
		if err == nil {
			inserted = append(inserted, k)
			continue
		}
		if !errors.Is(err, ErrTableFull) {
			t.Fatalf("Set(%s): got %v, want ErrTableFull", k, err)
		}
		fullErr = err
		// The refused op still ran its full pipeline, so the table is
		// untouched and every resident key still reads back.
		if s.Len() != int64(len(inserted)) {
			t.Fatalf("Len = %d after refused insert, want %d", s.Len(), len(inserted))
		}
		for j, res := range inserted {
			if _, ok, err := s.Get([]byte(res)); err != nil || !ok {
				t.Fatalf("resident key %d unreadable after full SET: ok=%v err=%v", j, ok, err)
			}
		}
		// Updating a resident key must still succeed at full occupancy.
		if err := s.Set([]byte(inserted[0]), []byte("upd")); err != nil {
			t.Fatalf("update at full occupancy: %v", err)
		}
		// Vacating any candidate bucket lets a retry through when the
		// freed slot serves the refused key; freeing ALL slots must.
		for _, res := range inserted {
			if _, err := s.Del([]byte(res)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Set([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatalf("Set(%s) after vacating the table: %v", k, err)
		}
	}
	if fullErr == nil {
		t.Fatalf("table of capacity 4 accepted 16 distinct keys without ErrTableFull")
	}
}

// TestValueCapBoundary: a value exactly at MaxValueBytes round-trips;
// one byte over is refused with a typed error before any block
// traffic; shrinking updates truncate cleanly.
func TestValueCapBoundary(t *testing.T) {
	e := testEngine(t, 1, "okv-cap")
	s := testStore(t, e)
	cap := s.MaxValueBytes()

	atCap := bytes.Repeat([]byte{0xcd}, cap)
	if err := s.Set([]byte("k"), atCap); err != nil {
		t.Fatalf("Set at cap (%d bytes): %v", cap, err)
	}
	if v, ok, err := s.Get([]byte("k")); err != nil || !ok || !bytes.Equal(v, atCap) {
		t.Fatalf("Get at cap = (%d bytes, %v, %v)", len(v), ok, err)
	}

	before := e.Stats().Requests
	err := s.Set([]byte("k"), append(atCap, 0xff))
	if !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("Set one byte over cap: got %v, want ErrValueTooLarge", err)
	}
	if after := e.Stats().Requests; after != before {
		t.Fatalf("over-cap Set issued %d block requests; validation must precede traffic", after-before)
	}

	// Shrink to empty: the update wins and the old tail never leaks.
	if err := s.Set([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := s.Get([]byte("k")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get after shrink-to-empty = (%d bytes, %v, %v), want empty hit", len(v), ok, err)
	}
}

// TestKeyValidation: empty and oversized keys are refused before any
// block traffic, for all three verbs.
func TestKeyValidation(t *testing.T) {
	e := testEngine(t, 1, "okv-keys")
	s := testStore(t, e)
	long := bytes.Repeat([]byte{'k'}, s.MaxKeyBytes()+1)
	before := e.Stats().Requests
	for _, key := range [][]byte{nil, {}, long} {
		if _, _, err := s.Get(key); !errors.Is(err, ErrKeyInvalid) {
			t.Fatalf("Get(%d-byte key): got %v, want ErrKeyInvalid", len(key), err)
		}
		if err := s.Set(key, []byte("v")); !errors.Is(err, ErrKeyInvalid) {
			t.Fatalf("Set(%d-byte key): got %v, want ErrKeyInvalid", len(key), err)
		}
		if _, err := s.Del(key); !errors.Is(err, ErrKeyInvalid) {
			t.Fatalf("Del(%d-byte key): got %v, want ErrKeyInvalid", len(key), err)
		}
	}
	if after := e.Stats().Requests; after != before {
		t.Fatalf("invalid keys issued %d block requests; validation must precede traffic", after-before)
	}
	// A key exactly at the cap works end to end.
	edge := bytes.Repeat([]byte{'e'}, s.MaxKeyBytes())
	if err := s.Set(edge, []byte("edge")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := s.Get(edge); err != nil || !ok || string(v) != "edge" {
		t.Fatalf("Get(at-cap key) = (%q, %v, %v)", v, ok, err)
	}
}

// TestDelAbsentIsNoOp: deleting a key that was never present (and one
// that was just deleted) reports existed=false, leaves the table
// untouched, and is not an error — the old example had no delete at
// all.
func TestDelAbsentIsNoOp(t *testing.T) {
	e := testEngine(t, 2, "okv-del")
	s := testStore(t, e)
	if err := s.Set([]byte("present"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"never-existed", "present", "present"} {
		existed, err := s.Del([]byte(k))
		if err != nil {
			t.Fatalf("Del %d (%s): %v", i, k, err)
		}
		if want := i == 1; existed != want {
			t.Fatalf("Del %d (%s) existed=%v, want %v", i, k, existed, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deletes, want 0", s.Len())
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Fatalf("Misses = %d, want 2 (one absent delete, one repeat)", st.Misses)
	}
}

// TestStoreOverCoreClient: the Backend interface is satisfied by a
// plain core.Client too — the KV layer does not require the sharded
// engine.
func TestStoreOverCoreClient(t *testing.T) {
	c := newCoreClient(t)
	s, err := New(Options{Backend: c, SlotsPerBucket: 2, MaxValueBytes: 64, Insecure: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("core-backed")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := s.Get([]byte("k")); err != nil || !ok || string(v) != "core-backed" {
		t.Fatalf("Get = (%q, %v, %v)", v, ok, err)
	}
}
