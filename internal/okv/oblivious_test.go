// Obliviousness regressions for the KV layer, at two levels.
//
// Level 1 (block-batch shape): every logical operation must issue the
// SAME fixed pipeline of block batches — same batch count, same batch
// sizes, same read/write mix, in the same order — whatever the op
// kind (GET-hit, GET-miss, SET-insert, SET-update, DEL-present,
// DEL-absent, SET-into-full-table) and whatever the key, occupancy or
// value length. This is the property the old examples/kvstore
// violated: its linear probing issued a collision-chain-dependent
// number of ORAM reads, so op counts leaked key popularity and table
// structure.
//
// Level 2 (device trace): two adversarially different KV workloads
// with the same op count must present the identical complete
// (device, op) event sequence — access cycles and shuffle quanta,
// storage and memory tiers, unfiltered — once both runs are padded to
// the common cycle count, exactly as the engine-level
// TestFullTraceWorkloadIndependent establishes for raw block
// traffic. Combined with level 1 (every op contributes the same
// request counts), the device trace of a KV workload is a function of
// its op count alone; the only residual is the total cycle count, the
// same quantity any single client of the block store already reveals.
package okv

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/horam"
	"repro/internal/trace"
)

// batchSig is the adversary-relevant signature of one backend batch:
// how many reads and how many writes it carried. (Addresses are
// hidden by the ORAM; the batch structure is what the KV layer could
// leak on its own.)
type batchSig struct {
	reads, writes int
}

// recordingBackend wraps a Backend and records every batch's
// signature.
type recordingBackend struct {
	Backend
	batches []batchSig
}

func (r *recordingBackend) Batch(reqs []*core.Request) error {
	var sig batchSig
	for _, q := range reqs {
		if q.Op == core.OpWrite {
			sig.writes++
		} else {
			sig.reads++
		}
	}
	r.batches = append(r.batches, sig)
	return r.Backend.Batch(reqs)
}

// take drains the recorded signatures.
func (r *recordingBackend) take() []batchSig {
	out := r.batches
	r.batches = nil
	return out
}

// TestOpShapeInvariant drives every operation kind through stores at
// shard counts 1, 2 and 4 and asserts each op issued the identical
// fixed pipeline.
func TestOpShapeInvariant(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := testEngine(t, shards, fmt.Sprintf("okv-shape-%d", shards))
			rec := &recordingBackend{Backend: e}
			s, err := New(Options{
				Backend:        rec,
				SlotsPerBucket: 2,
				MaxValueBytes:  64,
				Insecure:       true,
				Seed:           "okv-test",
			})
			if err != nil {
				t.Fatal(err)
			}
			want := s.Shape()

			type step struct {
				name string
				run  func() error
			}
			steps := []step{
				{"GET-miss", func() error { _, _, err := s.Get([]byte("absent")); return err }},
				{"SET-insert", func() error { return s.Set([]byte("alice"), []byte("v1")) }},
				{"SET-update", func() error { return s.Set([]byte("alice"), []byte("a long replacement value")) }},
				{"GET-hit", func() error { _, _, err := s.Get([]byte("alice")); return err }},
				{"GET-hit-empty-value", func() error {
					if err := s.Set([]byte("bob"), nil); err != nil {
						return err
					}
					rec.take() // the helper SET is its own op; judge only the GET
					_, _, err := s.Get([]byte("bob"))
					return err
				}},
				{"DEL-present", func() error { _, err := s.Del([]byte("alice")); return err }},
				{"DEL-absent", func() error { _, err := s.Del([]byte("alice")); return err }},
			}
			for _, st := range steps {
				rec.take()
				if err := st.run(); err != nil {
					t.Fatalf("%s: %v", st.name, err)
				}
				sigs := rec.take()
				expect := []batchSig{
					{reads: want.LookupReads},
					{reads: want.ExtentReads},
					{writes: want.Writes},
				}
				if len(sigs) != len(expect) {
					t.Fatalf("%s issued %d batches %v, want %d %v — the op shape depends on the outcome",
						st.name, len(sigs), sigs, len(expect), expect)
				}
				for i := range expect {
					if sigs[i] != expect[i] {
						t.Fatalf("%s batch %d = %+v, want %+v — the op shape depends on the outcome",
							st.name, i, sigs[i], expect[i])
					}
				}
			}
		})
	}
}

// TestFullTableSetKeepsShape extends the shape invariant to the
// refusal path: a SET into a table whose candidate buckets are all
// occupied must run the complete fixed pipeline before returning
// ErrTableFull — an early return would make refusals distinguishable
// on the bus.
func TestFullTableSetKeepsShape(t *testing.T) {
	e, err := engine.New(engine.Options{
		Blocks:      8,
		BlockSize:   32,
		MemoryBytes: 1 << 10,
		Insecure:    true,
		Seed:        "okv-full-shape",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := &recordingBackend{Backend: e}
	s, err := New(Options{Backend: rec, SlotsPerBucket: 2, MaxValueBytes: 16, Insecure: true})
	if err != nil {
		t.Fatal(err)
	}
	var fullSigs []batchSig
	for i := 0; i < 16 && fullSigs == nil; i++ {
		rec.take()
		err := s.Set([]byte(fmt.Sprintf("fill-%d", i)), []byte{byte(i)})
		sigs := rec.take()
		if err != nil {
			fullSigs = sigs
		} else if len(sigs) != 3 {
			t.Fatalf("successful SET issued %d batches", len(sigs))
		}
	}
	if fullSigs == nil {
		t.Fatal("table never filled")
	}
	want := s.Shape()
	expect := []batchSig{{reads: want.LookupReads}, {reads: want.ExtentReads}, {writes: want.Writes}}
	if len(fullSigs) != 3 || fullSigs[0] != expect[0] || fullSigs[1] != expect[1] || fullSigs[2] != expect[2] {
		t.Fatalf("full-table SET issued %v, want %v — the refusal is visible in the access shape", fullSigs, expect)
	}
}

// TestKVFullTraceWorkloadIndependent is the acceptance property: two
// adversarially different KV workloads of the same op count — a hot
// single key hammered with GET-hits versus a churn of inserts,
// deletes and misses over distinct keys — must present the identical
// complete (device, op) event sequence on every shard, storage and
// memory tiers, shuffle quanta included, once both engines are padded
// to the common cycle count.
func TestKVFullTraceWorkloadIndependent(t *testing.T) {
	const shards = 2
	build := func() (*engine.Engine, *Store, []*trace.Recorder) {
		e, err := engine.New(engine.Options{
			Blocks:      1024,
			BlockSize:   64,
			MemoryBytes: 16 << 10,
			Insecure:    true,
			Seed:        "okv-full-trace",
			Shards:      shards,
			Stages:      []horam.Stage{{C: 3, Frac: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		recs := make([]*trace.Recorder, shards)
		for i := 0; i < shards; i++ {
			rec := trace.NewRecorder()
			h := rec.Hook()
			e.Shard(i).Engine().Stor().SetHook(h)
			e.Shard(i).Engine().Mem().SetHook(h)
			recs[i] = rec
		}
		s, err := New(Options{
			Backend:        e,
			SlotsPerBucket: 2,
			MaxValueBytes:  128,
			Insecure:       true,
			Seed:           "okv-test",
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, s, recs
	}

	// Both workloads run exactly 30 logical operations.
	hotE, hotS, hotRecs := build()
	if err := hotS.Set([]byte("hot"), []byte("celebrity record")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 29; i++ {
		if _, ok, err := hotS.Get([]byte("hot")); err != nil || !ok {
			t.Fatalf("hot get %d: ok=%v err=%v", i, ok, err)
		}
	}

	churnE, churnS, churnRecs := build()
	for i := 0; i < 10; i++ {
		if err := churnS.Set([]byte(fmt.Sprintf("churn-%d", i)), make([]byte, i*12)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, _, err := churnS.Get([]byte(fmt.Sprintf("ghost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := churnS.Del([]byte(fmt.Sprintf("churn-%d", i*2))); err != nil { // half present, half absent
			t.Fatal(err)
		}
	}

	// Pad both engines' shards to one common cycle count: from equal
	// cycle counts and equal geometry, equal traces must follow.
	target := int64(0)
	for _, e := range []*engine.Engine{hotE, churnE} {
		for i := 0; i < shards; i++ {
			if c := e.Shard(i).Stats().Cycles; c > target {
				target = c
			}
		}
	}
	for _, e := range []*engine.Engine{hotE, churnE} {
		for i := 0; i < shards; i++ {
			if _, err := e.Shard(i).PadToCycles(target); err != nil {
				t.Fatal(err)
			}
		}
	}

	sig := func(rec *trace.Recorder) []string {
		evs := rec.Events()
		out := make([]string, len(evs))
		for i, ev := range evs {
			out[i] = fmt.Sprintf("%s/%d", ev.Dev, ev.Op)
		}
		return out
	}
	for i := 0; i < shards; i++ {
		hot, churn := sig(hotRecs[i]), sig(churnRecs[i])
		if len(hot) != len(churn) {
			t.Fatalf("shard %d: hot workload produced %d device events, churn %d — KV traffic volume depends on the op mix",
				i, len(hot), len(churn))
		}
		for j := range hot {
			if hot[j] != churn[j] {
				t.Fatalf("shard %d: event %d is %s under hot but %s under churn — the KV op mix is visible on the bus",
					i, j, hot[j], churn[j])
			}
		}
		if got := hotE.Shard(i).Stats().ShuffleQuanta; got == 0 {
			t.Fatalf("shard %d: no shuffle quanta ran; the trace never exercised the shuffle pipeline", i)
		}
	}
}
