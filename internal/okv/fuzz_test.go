// Fuzz and corruption coverage for the slot-block codec: round-trips
// are exact, decode never panics on arbitrary bytes, anything decode
// accepts re-encodes to a block decode agrees with, and structurally
// impossible inputs are refused with ErrCorruptSlot rather than
// guessed at.
package okv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzLayout is a fixed geometry for codec tests: 64 B blocks, keys
// up to 57 B, values up to 128 B (2 extents).
func fuzzLayout() layout {
	return layout{
		buckets:   16,
		slots:     2,
		extents:   2,
		blockSize: 64,
		maxKey:    64 - slotHeaderLen,
		maxValue:  128,
	}
}

func FuzzSlotCodec(f *testing.F) {
	l := fuzzLayout()
	f.Add(make([]byte, 64))                                            // canonical empty slot
	f.Add(l.encodeSlot([]byte("alice"), 17))                           // ordinary record
	f.Add(l.encodeSlot(bytes.Repeat([]byte{1}, l.maxKey), l.maxValue)) // both caps
	f.Add([]byte{0x7f})                                                // short + bad flag
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := l.decodeSlot(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptSlot) {
				t.Fatalf("decode error %v is not ErrCorruptSlot", err)
			}
			return
		}
		// Accepted input: the decoded record must survive a canonical
		// re-encode/decode round-trip unchanged.
		var re []byte
		if e.occupied {
			re = l.encodeSlot(e.key, e.valLen)
		} else {
			re = make([]byte, l.blockSize)
		}
		e2, err := l.decodeSlot(re)
		if err != nil {
			t.Fatalf("re-encode of accepted input fails decode: %v", err)
		}
		if e2.occupied != e.occupied || e2.valLen != e.valLen || !bytes.Equal(e2.key, e.key) {
			t.Fatalf("round-trip drift: %+v -> %+v", e, e2)
		}
	})
}

// TestSlotCodecRoundTrip pins exact round-trips for the boundary
// shapes the fuzzer may not hit in a short run.
func TestSlotCodecRoundTrip(t *testing.T) {
	l := fuzzLayout()
	cases := []struct {
		key    []byte
		valLen int
	}{
		{[]byte("k"), 0},
		{[]byte("alice"), 17},
		{bytes.Repeat([]byte{0xfe}, l.maxKey), l.maxValue},
		{[]byte{0x00, 0x0a, 0xff}, 1}, // binary keys incl. NUL and newline
	}
	for _, c := range cases {
		e, err := l.decodeSlot(l.encodeSlot(c.key, c.valLen))
		if err != nil {
			t.Fatalf("decode(encode(%q, %d)): %v", c.key, c.valLen, err)
		}
		if !e.occupied || !bytes.Equal(e.key, c.key) || e.valLen != c.valLen {
			t.Fatalf("round-trip of (%q, %d) = %+v", c.key, c.valLen, e)
		}
	}
	if e, err := l.decodeSlot(make([]byte, l.blockSize)); err != nil || e.occupied {
		t.Fatalf("all-zeros block = (%+v, %v), want empty slot", e, err)
	}
}

// TestSlotCodecRefusals pins the corruption classes decode must
// refuse.
func TestSlotCodecRefusals(t *testing.T) {
	l := fuzzLayout()
	base := l.encodeSlot([]byte("alice"), 17)
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"wrong length":          base[:l.blockSize-1],
		"unknown flag":          mutate(func(b []byte) { b[0] = 0x7f }),
		"empty with key length": mutate(func(b []byte) { b[0] = slotEmpty }),
		"occupied zero key":     mutate(func(b []byte) { binary.BigEndian.PutUint16(b[1:3], 0) }),
		"key length over cap":   mutate(func(b []byte) { binary.BigEndian.PutUint16(b[1:3], uint16(l.maxKey+1)) }),
		"key length past block": mutate(func(b []byte) { binary.BigEndian.PutUint16(b[1:3], 60000) }),
		"value length over cap": mutate(func(b []byte) { binary.BigEndian.PutUint32(b[3:7], uint32(l.maxValue+1)) }),
		"empty with value length": mutate(func(b []byte) {
			b[0] = slotEmpty
			binary.BigEndian.PutUint16(b[1:3], 0)
			binary.BigEndian.PutUint32(b[3:7], 9)
		}),
	}
	for name, blk := range cases {
		if _, err := l.decodeSlot(blk); !errors.Is(err, ErrCorruptSlot) {
			t.Errorf("%s: got %v, want ErrCorruptSlot", name, err)
		}
	}
}

// TestValueCodecRoundTrip: values of every length up to the cap
// (including 0 and non-block-aligned lengths) split into the fixed
// extent run and reassemble exactly.
func TestValueCodecRoundTrip(t *testing.T) {
	l := fuzzLayout()
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128} {
		v := bytes.Repeat([]byte{byte(n)}, n)
		ext := l.encodeValue(v)
		if len(ext) != l.extents {
			t.Fatalf("len %d: %d extent blocks, want %d (extent count must not depend on value length)", n, len(ext), l.extents)
		}
		for j, blk := range ext {
			if len(blk) != l.blockSize {
				t.Fatalf("len %d: extent %d is %d bytes", n, j, len(blk))
			}
		}
		if got := l.decodeValue(ext, n); !bytes.Equal(got, v) {
			t.Fatalf("len %d: round-trip returned %d bytes", n, len(got))
		}
	}
}
