//go:build !race

package okv

const raceEnabled = false
