// Slot-block codec and table layout. A slot block is the directory
// record of one (bucket, slot) pair; the value bytes themselves never
// live here — they occupy the slot's fixed extent run — so the record
// is pure metadata: an occupancy flag, the key, and the value length.
//
//	[0]        flags: slotEmpty (0x00) or slotOccupied (0x01)
//	[1:3]      key length, big endian
//	[3:7]      value length, big endian
//	[7:7+klen] key bytes
//	rest       zeros
//
// A never-written ORAM block reads back as all zeros, which decodes as
// a valid empty slot — the table needs no initialisation pass. Decode
// refuses structurally impossible inputs (unknown flags, lengths out
// of range, a non-canonical empty record) instead of guessing: the
// block store authenticates its contents, so a malformed slot means
// the table layout itself was damaged (e.g. raw WRITE traffic landed
// inside the KV region) and continuing would corrupt it further.
package okv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// slotHeaderLen is the fixed metadata prefix of a slot block.
const slotHeaderLen = 1 + 2 + 4

// Slot flag values.
const (
	slotEmpty    = 0x00
	slotOccupied = 0x01
)

// ErrCorruptSlot is returned (wrapped) when a slot block read from the
// store fails to decode. It indicates table damage, not a caller
// error.
var ErrCorruptSlot = errors.New("okv: corrupt slot block")

// slotEntry is the decoded form of a slot block.
type slotEntry struct {
	occupied bool
	key      []byte
	valLen   int
}

// layout is the static table geometry: how buckets, slots and extent
// runs map onto the backend's flat block address space.
//
//	[0, buckets*slots)        one slot block per (bucket, slot)
//	[buckets*slots, ...)      extents extent blocks per slot, in slot
//	                          index order
//
// Trailing backend blocks that do not fit a whole slot are unused.
type layout struct {
	buckets   int64
	slots     int // slots per bucket
	extents   int // extent blocks per slot
	blockSize int
	maxKey    int
	maxValue  int
}

// slotIndex flattens (bucket, slot) into the global slot index.
func (l layout) slotIndex(bucket int64, slot int) int64 {
	return bucket*int64(l.slots) + int64(slot)
}

// slotAddr is the block address of a slot's directory record.
func (l layout) slotAddr(slotIndex int64) int64 { return slotIndex }

// extentAddr is the block address of extent j of a slot.
func (l layout) extentAddr(slotIndex int64, j int) int64 {
	return l.buckets*int64(l.slots) + slotIndex*int64(l.extents) + int64(j)
}

// blocksPerSlot is the backend capacity one slot consumes.
func (l layout) blocksPerSlot() int64 { return 1 + int64(l.extents) }

// encodeSlotInto renders an occupied slot record into b, a block-size
// buffer that may hold stale bytes (the hot path reuses pooled
// scratch, so the tail must be re-zeroed explicitly). The caller has
// already validated key and valLen against the layout's caps.
func (l layout) encodeSlotInto(b, key []byte, valLen int) {
	b[0] = slotOccupied
	binary.BigEndian.PutUint16(b[1:3], uint16(len(key)))
	binary.BigEndian.PutUint32(b[3:7], uint32(valLen))
	n := copy(b[slotHeaderLen:], key)
	for i := slotHeaderLen + n; i < len(b); i++ {
		b[i] = 0
	}
}

// encodeSlot is the allocating form of encodeSlotInto, for callers
// outside the steady state.
func (l layout) encodeSlot(key []byte, valLen int) []byte {
	b := make([]byte, l.blockSize)
	l.encodeSlotInto(b, key, valLen)
	return b
}

// decodeSlot parses a slot block. The key slice aliases b.
func (l layout) decodeSlot(b []byte) (slotEntry, error) {
	if len(b) != l.blockSize {
		return slotEntry{}, fmt.Errorf("%w: %d bytes, want %d", ErrCorruptSlot, len(b), l.blockSize)
	}
	klen := int(binary.BigEndian.Uint16(b[1:3]))
	vlen := int(binary.BigEndian.Uint32(b[3:7]))
	switch b[0] {
	case slotEmpty:
		if klen != 0 || vlen != 0 {
			return slotEntry{}, fmt.Errorf("%w: empty flag with key length %d, value length %d", ErrCorruptSlot, klen, vlen)
		}
		return slotEntry{}, nil
	case slotOccupied:
		if klen < 1 || klen > l.maxKey || slotHeaderLen+klen > l.blockSize {
			return slotEntry{}, fmt.Errorf("%w: key length %d out of [1,%d]", ErrCorruptSlot, klen, l.maxKey)
		}
		if vlen > l.maxValue {
			return slotEntry{}, fmt.Errorf("%w: value length %d exceeds cap %d", ErrCorruptSlot, vlen, l.maxValue)
		}
		return slotEntry{occupied: true, key: b[slotHeaderLen : slotHeaderLen+klen], valLen: vlen}, nil
	default:
		return slotEntry{}, fmt.Errorf("%w: unknown flag byte 0x%02x", ErrCorruptSlot, b[0])
	}
}

// encodeValueInto splits a value into out, a pre-sized extent run of
// exactly l.extents block-size buffers, zero-padding every byte past
// the value — extent traffic is independent of the actual value
// length, and pooled buffers shed their previous contents. A nil
// value zeroes the whole run (the scrub a deletion writes).
func (l layout) encodeValueInto(out [][]byte, value []byte) {
	for j, blk := range out {
		off := j * l.blockSize
		n := 0
		if off < len(value) {
			n = copy(blk, value[off:])
		}
		for i := n; i < len(blk); i++ {
			blk[i] = 0
		}
	}
}

// encodeValue is the allocating form of encodeValueInto, for callers
// outside the steady state.
func (l layout) encodeValue(value []byte) [][]byte {
	out := make([][]byte, l.extents)
	for j := range out {
		out[j] = make([]byte, l.blockSize)
	}
	l.encodeValueInto(out, value)
	return out
}

// decodeValue reassembles a value of length valLen from its extent
// blocks.
func (l layout) decodeValue(ext [][]byte, valLen int) []byte {
	out := make([]byte, 0, valLen)
	for _, blk := range ext {
		if len(out) >= valLen {
			break
		}
		n := valLen - len(out)
		if n > len(blk) {
			n = len(blk)
		}
		out = append(out, blk[:n]...)
	}
	return out
}
