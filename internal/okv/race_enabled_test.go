//go:build race

package okv

// raceEnabled skips allocation-count assertions, which the race
// detector inflates.
const raceEnabled = true
