// Allocation regressions for the slot codec's in-place forms: the
// steady-state op path encodes every batch-3 block into pooled
// scratch, so the codec itself must not allocate.
package okv

import (
	"bytes"
	"testing"
)

func TestCodecIntoFormsMatchAllocating(t *testing.T) {
	l := fuzzLayout()
	key := []byte("alice")
	value := bytes.Repeat([]byte{7}, 100)

	slot := make([]byte, l.blockSize)
	for i := range slot {
		slot[i] = 0xEE // stale pool contents must be overwritten
	}
	l.encodeSlotInto(slot, key, len(value))
	if !bytes.Equal(slot, l.encodeSlot(key, len(value))) {
		t.Fatal("encodeSlotInto differs from encodeSlot")
	}

	ext := make([][]byte, l.extents)
	for j := range ext {
		ext[j] = bytes.Repeat([]byte{0xEE}, l.blockSize)
	}
	l.encodeValueInto(ext, value)
	want := l.encodeValue(value)
	for j := range ext {
		if !bytes.Equal(ext[j], want[j]) {
			t.Fatalf("encodeValueInto extent %d differs from encodeValue", j)
		}
	}

	// nil value scrubs the whole run.
	l.encodeValueInto(ext, nil)
	for j := range ext {
		for i, b := range ext[j] {
			if b != 0 {
				t.Fatalf("scrub left extent %d byte %d = 0x%02x", j, i, b)
			}
		}
	}
}

func TestCodecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	l := fuzzLayout()
	key := []byte("alice")
	value := bytes.Repeat([]byte{9}, 100)
	slot := make([]byte, l.blockSize)
	ext := make([][]byte, l.extents)
	for j := range ext {
		ext[j] = make([]byte, l.blockSize)
	}

	if avg := testing.AllocsPerRun(200, func() {
		l.encodeSlotInto(slot, key, len(value))
	}); avg != 0 {
		t.Errorf("encodeSlotInto allocates %.1f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		l.encodeValueInto(ext, value)
	}); avg != 0 {
		t.Errorf("encodeValueInto allocates %.1f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := l.decodeSlot(slot); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("decodeSlot allocates %.1f times, want 0", avg)
	}
}
