// Package stash implements the trusted-memory stash every ORAM scheme
// in this repository keeps inside the secure controller: blocks that
// have been fetched but not yet written back. The stash tracks its
// peak occupancy, the statistic Path ORAM's security argument bounds.
package stash

import (
	"fmt"
	"slices"
)

// Block is a plaintext ORAM block held in the stash.
type Block struct {
	Addr int64  // logical block address
	Data []byte // plaintext payload; owned by the stash while stored
}

// Stash holds plaintext blocks keyed by logical address. The zero
// value is not usable; call New. Stash is not safe for concurrent use.
type Stash struct {
	blocks map[int64][]byte
	limit  int // 0 = unbounded
	peak   int
}

// New returns an empty stash. limit caps occupancy (Put fails beyond
// it); limit 0 means unbounded, which is how the statistics-gathering
// experiments run so that overflow shows up as a measured peak rather
// than an error.
func New(limit int) *Stash {
	return &Stash{blocks: make(map[int64][]byte), limit: limit}
}

// ErrFull is returned by Put when a bounded stash is at capacity.
type ErrFull struct {
	Limit int
}

func (e ErrFull) Error() string {
	return fmt.Sprintf("stash: full at limit %d", e.Limit)
}

// Put stores data under addr, replacing any previous value. The stash
// takes ownership of data.
func (s *Stash) Put(addr int64, data []byte) error {
	if _, exists := s.blocks[addr]; !exists {
		if s.limit > 0 && len(s.blocks) >= s.limit {
			return ErrFull{Limit: s.limit}
		}
	}
	s.blocks[addr] = data
	if len(s.blocks) > s.peak {
		s.peak = len(s.blocks)
	}
	return nil
}

// Get returns the block stored under addr without removing it. The
// returned slice is the stash's copy; callers must not retain it past
// the next mutation of this address.
func (s *Stash) Get(addr int64) ([]byte, bool) {
	d, ok := s.blocks[addr]
	return d, ok
}

// Take removes and returns the block stored under addr.
func (s *Stash) Take(addr int64) ([]byte, bool) {
	d, ok := s.blocks[addr]
	if ok {
		delete(s.blocks, addr)
	}
	return d, ok
}

// Has reports whether addr is present.
func (s *Stash) Has(addr int64) bool {
	_, ok := s.blocks[addr]
	return ok
}

// Len returns the current occupancy.
func (s *Stash) Len() int { return len(s.blocks) }

// Peak returns the highest occupancy ever observed.
func (s *Stash) Peak() int { return s.peak }

// Limit returns the configured capacity (0 = unbounded).
func (s *Stash) Limit() int { return s.limit }

// Addrs returns the stored addresses in ascending order. Deterministic
// ordering keeps eviction — and therefore whole experiments —
// reproducible under a fixed seed.
func (s *Stash) Addrs() []int64 {
	return s.AppendAddrs(nil)
}

// AppendAddrs appends the stored addresses to dst in ascending order
// and returns the extended slice — the allocation-free form of Addrs
// for hot paths that keep a reusable buffer (pass dst[:0]).
func (s *Stash) AppendAddrs(dst []int64) []int64 {
	start := len(dst)
	if need := start + len(s.blocks); cap(dst) < need {
		grown := make([]int64, start, need)
		copy(grown, dst)
		dst = grown
	}
	for a := range s.blocks {
		dst = append(dst, a)
	}
	slices.Sort(dst[start:])
	return dst
}

// Drain removes and returns all blocks in ascending address order.
func (s *Stash) Drain() []Block {
	addrs := s.Addrs()
	out := make([]Block, 0, len(addrs))
	for _, a := range addrs {
		d := s.blocks[a]
		delete(s.blocks, a)
		out = append(out, Block{Addr: a, Data: d})
	}
	return out
}
