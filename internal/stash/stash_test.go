package stash

import (
	"errors"
	"testing"
)

func TestPutGetTake(t *testing.T) {
	s := New(0)
	if err := s.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(7)
	if !ok || string(got) != "seven" {
		t.Fatalf("Get(7) = %q, %v", got, ok)
	}
	if !s.Has(7) {
		t.Fatal("Has(7) = false after Put")
	}
	got, ok = s.Take(7)
	if !ok || string(got) != "seven" {
		t.Fatalf("Take(7) = %q, %v", got, ok)
	}
	if s.Has(7) {
		t.Fatal("Has(7) = true after Take")
	}
	if _, ok := s.Take(7); ok {
		t.Fatal("second Take(7) succeeded")
	}
}

func TestGetMissing(t *testing.T) {
	s := New(0)
	if _, ok := s.Get(42); ok {
		t.Fatal("Get on empty stash returned ok")
	}
}

func TestPutReplaces(t *testing.T) {
	s := New(0)
	s.Put(1, []byte("a"))
	s.Put(1, []byte("b"))
	if s.Len() != 1 {
		t.Fatalf("Len() = %d after replacing, want 1", s.Len())
	}
	got, _ := s.Get(1)
	if string(got) != "b" {
		t.Fatalf("Get(1) = %q, want b", got)
	}
}

func TestLimitEnforced(t *testing.T) {
	s := New(2)
	if err := s.Put(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, nil); err != nil {
		t.Fatal(err)
	}
	err := s.Put(3, nil)
	var full ErrFull
	if !errors.As(err, &full) {
		t.Fatalf("Put beyond limit = %v, want ErrFull", err)
	}
	if full.Limit != 2 {
		t.Fatalf("ErrFull.Limit = %d, want 2", full.Limit)
	}
	// Replacing an existing key at capacity is allowed.
	if err := s.Put(2, []byte("x")); err != nil {
		t.Fatalf("replacement Put at capacity failed: %v", err)
	}
	if s.Limit() != 2 {
		t.Fatalf("Limit() = %d", s.Limit())
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	s := New(0)
	s.Put(1, nil)
	s.Put(2, nil)
	s.Put(3, nil)
	s.Take(1)
	s.Take(2)
	if s.Peak() != 3 {
		t.Fatalf("Peak() = %d, want 3", s.Peak())
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
}

func TestAddrsSorted(t *testing.T) {
	s := New(0)
	for _, a := range []int64{9, 1, 5, 3} {
		s.Put(a, nil)
	}
	addrs := s.Addrs()
	want := []int64{1, 3, 5, 9}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("Addrs() = %v, want %v", addrs, want)
		}
	}
}

func TestDrain(t *testing.T) {
	s := New(0)
	s.Put(2, []byte("two"))
	s.Put(1, []byte("one"))
	blocks := s.Drain()
	if len(blocks) != 2 {
		t.Fatalf("Drain() returned %d blocks, want 2", len(blocks))
	}
	if blocks[0].Addr != 1 || string(blocks[0].Data) != "one" {
		t.Fatalf("Drain()[0] = %+v", blocks[0])
	}
	if blocks[1].Addr != 2 || string(blocks[1].Data) != "two" {
		t.Fatalf("Drain()[1] = %+v", blocks[1])
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d after Drain, want 0", s.Len())
	}
	// Peak survives a drain.
	if s.Peak() != 2 {
		t.Fatalf("Peak() = %d after Drain, want 2", s.Peak())
	}
}

func TestErrFullMessage(t *testing.T) {
	e := ErrFull{Limit: 5}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}
