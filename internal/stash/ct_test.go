// CT stash tests: the dense-array constant-time stash is pinned
// differentially against the map stash (the reference semantics), and
// its masked primitives are exercised directly. Both implementations
// sit behind the Store interface, so the differential run drives them
// through identical call sequences.
package stash

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
)

// newPair returns a map stash and a CT stash with the same limit.
func newPair(limit, blockSize int) (*Stash, *CT) {
	return New(limit), NewConstantTime(limit, blockSize)
}

// TestCTDifferentialAgainstMap drives both implementations through a
// deterministic random op mix and asserts every observable — returned
// values, ok flags, errors, Len, Peak, Addrs, the final Drain — is
// identical.
func TestCTDifferentialAgainstMap(t *testing.T) {
	const (
		limit     = 24
		blockSize = 16
		addrSpace = 40 // > limit so ErrFull paths trigger
		ops       = 4000
	)
	ms, cs := newPair(limit, blockSize)

	lcg := uint64(99)
	next := func(mod int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(mod))
	}
	pay := func(addr int64, salt int) []byte {
		p := make([]byte, blockSize)
		for i := range p {
			p[i] = byte(int(addr)*31 + salt + i)
		}
		return p
	}

	for i := 0; i < ops; i++ {
		addr := int64(next(addrSpace))
		switch next(6) {
		case 0, 1:
			p := pay(addr, i)
			errM := ms.Put(addr, p)
			errC := cs.Put(addr, p)
			if (errM == nil) != (errC == nil) {
				t.Fatalf("op %d: Put(%d) errs diverge: map %v, ct %v", i, addr, errM, errC)
			}
			if errM != nil && (!errors.As(errM, &ErrFull{}) || !errors.As(errC, &ErrFull{})) {
				t.Fatalf("op %d: Put(%d) non-ErrFull errors: map %v, ct %v", i, addr, errM, errC)
			}
		case 2:
			gM, okM := ms.Get(addr)
			gC, okC := cs.Get(addr)
			if okM != okC || !bytes.Equal(gM, gC) {
				t.Fatalf("op %d: Get(%d) diverges: map %x,%v ct %x,%v", i, addr, gM, okM, gC, okC)
			}
		case 3:
			gM, okM := ms.Take(addr)
			gC, okC := cs.Take(addr)
			if okM != okC || !bytes.Equal(gM, gC) {
				t.Fatalf("op %d: Take(%d) diverges: map %x,%v ct %x,%v", i, addr, gM, okM, gC, okC)
			}
		case 4:
			if hM, hC := ms.Has(addr), cs.Has(addr); hM != hC {
				t.Fatalf("op %d: Has(%d) diverges: map %v, ct %v", i, addr, hM, hC)
			}
		case 5:
			aM, aC := ms.Addrs(), cs.Addrs()
			if len(aM) != len(aC) {
				t.Fatalf("op %d: Addrs lengths diverge: %d vs %d", i, len(aM), len(aC))
			}
			for j := range aM {
				if aM[j] != aC[j] {
					t.Fatalf("op %d: Addrs[%d] diverges: %d vs %d", i, j, aM[j], aC[j])
				}
			}
		}
		if ms.Len() != cs.Len() {
			t.Fatalf("op %d: Len diverges: map %d, ct %d", i, ms.Len(), cs.Len())
		}
		if ms.Peak() != cs.Peak() {
			t.Fatalf("op %d: Peak diverges: map %d, ct %d", i, ms.Peak(), cs.Peak())
		}
	}

	dM, dC := ms.Drain(), cs.Drain()
	if len(dM) != len(dC) {
		t.Fatalf("Drain lengths diverge: %d vs %d", len(dM), len(dC))
	}
	for i := range dM {
		if dM[i].Addr != dC[i].Addr || !bytes.Equal(dM[i].Data, dC[i].Data) {
			t.Fatalf("Drain[%d] diverges: map addr %d, ct addr %d", i, dM[i].Addr, dC[i].Addr)
		}
	}
	if cs.Len() != 0 || ms.Len() != 0 {
		t.Fatal("stashes not empty after Drain")
	}
}

// TestCTLimitFullInsert: at capacity a fresh insert fails with
// ErrFull, a replacement of a resident address still succeeds, and a
// Take reopens exactly one slot — on both implementations.
func TestCTLimitFullInsert(t *testing.T) {
	for name, s := range map[string]Store{
		"map": New(3),
		"ct":  NewConstantTime(3, 8),
	} {
		t.Run(name, func(t *testing.T) {
			for a := int64(0); a < 3; a++ {
				if err := s.Put(a, []byte{byte(a)}); err != nil {
					t.Fatal(err)
				}
			}
			err := s.Put(9, []byte{9})
			var full ErrFull
			if !errors.As(err, &full) || full.Limit != 3 {
				t.Fatalf("Put at capacity: err = %v, want ErrFull{3}", err)
			}
			if s.Len() != 3 {
				t.Fatalf("Len = %d after refused insert", s.Len())
			}
			// Replacing a resident address is not an insert.
			if err := s.Put(1, []byte{0xBB}); err != nil {
				t.Fatalf("replacement at capacity refused: %v", err)
			}
			got, ok := s.Get(1)
			if !ok || !bytes.Equal(got, []byte{0xBB}) {
				t.Fatalf("Get(1) = %x, %v after replacement", got, ok)
			}
			if _, ok := s.Take(2); !ok {
				t.Fatal("Take(2) failed")
			}
			if err := s.Put(9, []byte{9}); err != nil {
				t.Fatalf("insert after Take refused: %v", err)
			}
		})
	}
}

// TestCTDuplicateAddress: Put on a resident address replaces the
// payload without growing the count, for payloads of differing length.
func TestCTDuplicateAddress(t *testing.T) {
	for name, s := range map[string]Store{
		"map": New(0),
		"ct":  NewConstantTime(4, 8),
	} {
		t.Run(name, func(t *testing.T) {
			if err := s.Put(5, []byte("abcdefgh")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(5, []byte("xy")); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d after duplicate Put, want 1", s.Len())
			}
			got, ok := s.Get(5)
			if !ok || string(got) != "xy" {
				t.Fatalf("Get(5) = %q, %v", got, ok)
			}
			if s.Peak() != 1 {
				t.Fatalf("Peak = %d, want 1", s.Peak())
			}
		})
	}
}

// TestCTAddrsSnapshotStable: Addrs returns a sorted snapshot the
// caller owns — mutating it must not corrupt the stash, and a second
// call returns the same contents.
func TestCTAddrsSnapshotStable(t *testing.T) {
	for name, s := range map[string]Store{
		"map": New(0),
		"ct":  NewConstantTime(8, 4),
	} {
		t.Run(name, func(t *testing.T) {
			for _, a := range []int64{9, 3, 7, 1} {
				if err := s.Put(a, []byte{byte(a)}); err != nil {
					t.Fatal(err)
				}
			}
			first := s.Addrs()
			want := []int64{1, 3, 7, 9}
			if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i] < first[j] }) {
				t.Fatalf("Addrs not sorted: %v", first)
			}
			if fmt.Sprint(first) != fmt.Sprint(want) {
				t.Fatalf("Addrs = %v, want %v", first, want)
			}
			for i := range first {
				first[i] = -42 // caller scribbles on the snapshot
			}
			second := s.Addrs()
			if fmt.Sprint(second) != fmt.Sprint(want) {
				t.Fatalf("Addrs after caller mutation = %v, want %v", second, want)
			}
			for _, a := range want {
				if !s.Has(a) {
					t.Fatalf("Has(%d) = false after snapshot mutation", a)
				}
			}
		})
	}
}

// TestCTPutMaskedZeroIsNoOp: a v=0 PutMasked runs the full scan and
// shift machinery but must not change any observable state.
func TestCTPutMaskedZeroIsNoOp(t *testing.T) {
	s := NewConstantTime(4, 4)
	if err := s.Put(2, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMasked(0, 7, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Has(7) {
		t.Fatalf("masked-off Put changed state: Len=%d Has(7)=%v", s.Len(), s.Has(7))
	}
	// Masked-off insert at capacity must not report ErrFull either.
	for _, a := range []int64{0, 1, 3} {
		if err := s.Put(a, []byte{byte(a)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutMasked(0, 9, []byte{9}); err != nil {
		t.Fatalf("masked-off Put at capacity: %v", err)
	}
}

// TestCTSnapshotAddrsFixedLength: SnapshotAddrs always yields the full
// capacity-length array with MaxInt64 sentinels past the occupancy.
func TestCTSnapshotAddrsFixedLength(t *testing.T) {
	s := NewConstantTime(5, 4)
	for _, a := range []int64{4, 2} {
		if err := s.Put(a, []byte{byte(a)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.SnapshotAddrs(nil)
	if len(snap) != 5 {
		t.Fatalf("SnapshotAddrs length = %d, want capacity 5", len(snap))
	}
	want := []int64{2, 4, math.MaxInt64, math.MaxInt64, math.MaxInt64}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("SnapshotAddrs[%d] = %d, want %d", i, snap[i], want[i])
		}
	}
}

// TestCTRemoveMasked removes a marked subset in one masked sweep and
// leaves the survivors packed and sorted.
func TestCTRemoveMasked(t *testing.T) {
	s := NewConstantTime(6, 4)
	for _, a := range []int64{10, 20, 30, 40} {
		if err := s.Put(a, []byte{byte(a)}); err != nil {
			t.Fatal(err)
		}
	}
	mask := make([]int, 6)
	mask[0] = 1 // addr 10
	mask[2] = 1 // addr 30
	s.RemoveMasked(mask, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d after RemoveMasked, want 2", s.Len())
	}
	if s.Has(10) || s.Has(30) || !s.Has(20) || !s.Has(40) {
		t.Fatalf("wrong survivors: Has(10)=%v Has(20)=%v Has(30)=%v Has(40)=%v",
			s.Has(10), s.Has(20), s.Has(30), s.Has(40))
	}
	addrs := s.Addrs()
	if len(addrs) != 2 || addrs[0] != 20 || addrs[1] != 40 {
		t.Fatalf("Addrs = %v, want [20 40]", addrs)
	}
}
