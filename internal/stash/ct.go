// Constant-time stash: the dense-slot-array variant behind
// config.ConstantTime. The map stash's hash lookups, deletes and
// sorted-address enumeration all take time (and touch memory) as a
// function of which addresses are resident — exactly the secret a
// co-located timing adversary is after. This variant stores blocks in
// one dense, address-sorted slot array and implements every operation
// as a full-length fixed-order scan with branchless selects, so the
// instruction and memory-touch sequence of Put/Get/Take/Has depends
// only on the stash's public capacity, never on which addresses are
// present or asked for.
//
// Two deliberate deviations from perfect constant time, both
// documented at the call sites: the ErrFull refusal on Put can branch
// on presence when the stash is exactly at capacity (a failure path
// that aborts the access anyway), and Drain/Addrs run in time
// proportional to the public occupancy count (Path ORAM's stash-size
// distribution is access-pattern independent, which is the scheme's
// own security argument for exposing it).
package stash

import (
	"fmt"
	"math"

	"repro/internal/ctops"
)

// Every function in this file runs under the constant-time contract:
// the ctflow analyzer flags any secret-dependent branch, index or
// variable-length operation, and ctmask checks that every masked
// select's mask traces back to a constant-time comparison.
//
//horam:constant-time

// Empty is the address sentinel an unoccupied constant-time slot
// holds. It sorts after every valid address, so the occupied slots
// always form the sorted prefix of the array.
const Empty = int64(math.MaxInt64)

// Store is the stash contract pathoram consumes: the map Stash and the
// constant-time CT both satisfy it.
type Store interface {
	Put(addr int64, data []byte) error
	Get(addr int64) ([]byte, bool)
	Take(addr int64) ([]byte, bool)
	Has(addr int64) bool
	Len() int
	Peak() int
	Limit() int
	Addrs() []int64
	AppendAddrs(dst []int64) []int64
	Drain() []Block
}

var (
	_ Store = (*Stash)(nil)
	_ Store = (*CT)(nil)
)

// CT is the constant-time stash. The zero value is not usable; call
// NewConstantTime. Like Stash, it is not safe for concurrent use.
//
// Contract differences from the map Stash, beyond timing: capacity is
// always bounded (there is no "unbounded" mode — the dense array IS
// the scan length), payloads are capped at the configured block size,
// and Get returns a scratch buffer that is only valid until the next
// operation on the stash (Take returns an owned copy).
type CT struct {
	capacity  int
	blockSize int
	// The stored addresses are the access-pattern secret: which blocks
	// are resident is exactly what an observer must not learn.
	//
	//horam:secret
	addrs []int64 // sorted ascending; Empty sentinels form the suffix
	lens  []int   // stored payload length per slot
	slab  []byte  // capacity × blockSize payload backing
	count int
	peak  int
	out   []byte // Get/Has scan target, reused across calls
	pad   []byte // Put staging: payload zero-padded to blockSize
	zero  []byte // all-zero block for masked clears
}

// NewConstantTime returns an empty constant-time stash holding at most
// capacity blocks of at most blockSize bytes each.
func NewConstantTime(capacity, blockSize int) *CT {
	if capacity <= 0 {
		panic(fmt.Sprintf("stash: constant-time capacity must be positive, got %d", capacity))
	}
	if blockSize <= 0 {
		panic(fmt.Sprintf("stash: constant-time block size must be positive, got %d", blockSize))
	}
	s := &CT{
		capacity:  capacity,
		blockSize: blockSize,
		addrs:     make([]int64, capacity),
		lens:      make([]int, capacity),
		slab:      make([]byte, capacity*blockSize),
		out:       make([]byte, blockSize),
		pad:       make([]byte, blockSize),
		zero:      make([]byte, blockSize),
	}
	for i := range s.addrs {
		s.addrs[i] = Empty
	}
	return s
}

// Capacity returns the fixed scan length.
func (s *CT) Capacity() int { return s.capacity }

// BlockSize returns the per-slot payload bound.
func (s *CT) BlockSize() int { return s.blockSize }

func (s *CT) slot(i int) []byte { return s.slab[i*s.blockSize : (i+1)*s.blockSize] }

// Put stores data under addr, replacing any previous value; the data
// is copied into the slot array (the caller keeps ownership of its
// buffer, unlike the map stash). Equivalent to PutMasked(1, ...).
//
//horam:secret addr
func (s *CT) Put(addr int64, data []byte) error { return s.PutMasked(1, addr, data) }

// PutMasked is Put when v == 1 and a fixed-cost no-op when v == 0: the
// same full-length scan and shift passes run either way, with every
// write masked out. pathoram's read-path uses it to absorb a path's
// slots without revealing which of them carried real blocks. When
// v == 0 the addr operand is ignored (it may be a dummy sentinel);
// when v == 1 it must be a valid non-negative address.
//
//horam:secret addr
func (s *CT) PutMasked(v int, addr int64, data []byte) error {
	if len(data) > s.blockSize {
		return fmt.Errorf("stash: payload %d bytes exceeds constant-time slot size %d", len(data), s.blockSize)
	}
	a := ctops.Select64(v, addr, 0)
	n := copy(s.pad, data)
	for i := n; i < len(s.pad); i++ {
		s.pad[i] = 0
	}
	present := 0
	for i := range s.addrs {
		present |= ctops.Eq64(s.addrs[i], a)
	}
	present &= v
	doInsert := v & (present ^ 1)
	// The one data-dependent branch: refusing an insert at capacity.
	// The overflow mask is composed branchlessly (no short-circuit on
	// doInsert), so below capacity the instruction stream is identical
	// for inserts and replacements; the branch only fires on the
	// failure path, which aborts the enclosing access anyway.
	overflow := doInsert & ctops.GeInt(s.count, s.capacity)
	if overflow == 1 {
		return ErrFull{Limit: s.capacity}
	}
	// Insertion position: how many stored addresses sort below a.
	// Empty sentinels never do, so pos lands inside the sorted prefix.
	pos := 0
	for i := range s.addrs {
		pos += ctops.Lt64(s.addrs[i], a)
	}
	// Backward shift pass: open the slot at pos when inserting.
	for i := s.capacity - 1; i >= 1; i-- {
		mv := doInsert & ctops.GeInt(i-1, pos)
		s.addrs[i] = ctops.Select64(mv, s.addrs[i-1], s.addrs[i])
		s.lens[i] = ctops.SelectInt(mv, s.lens[i-1], s.lens[i])
		ctops.CopyBytes(mv, s.slot(i), s.slot(i-1))
	}
	// Write pass: land the padded payload at the match (replace) or at
	// the opened slot (insert).
	for i := range s.addrs {
		w := (present & ctops.Eq64(s.addrs[i], a)) | (doInsert & ctops.EqInt(i, pos))
		s.addrs[i] = ctops.Select64(w, a, s.addrs[i])
		s.lens[i] = ctops.SelectInt(w, len(data), s.lens[i])
		ctops.CopyBytes(w, s.slot(i), s.pad)
	}
	s.count += doInsert
	if s.count > s.peak {
		s.peak = s.count
	}
	return nil
}

// scan is the shared full-length lookup: it accumulates the match
// flag, slot position and stored length, and gathers the payload into
// s.out, touching every slot exactly once in fixed order. Its results
// are established 0-or-1 masks and mask-selected public quantities.
//
//horam:mask
//horam:secret addr
func (s *CT) scan(addr int64) (found, pos, n int) {
	for i := range s.addrs {
		m := ctops.Eq64(s.addrs[i], addr)
		found |= m
		pos = ctops.SelectInt(m, i, pos)
		n = ctops.SelectInt(m, s.lens[i], n)
		ctops.CopyBytes(m, s.out, s.slot(i))
	}
	return found, pos, n
}

// Get returns the block stored under addr without removing it. The
// returned slice is a scratch buffer valid only until the next
// operation on this stash.
//
//horam:secret addr
func (s *CT) Get(addr int64) ([]byte, bool) {
	found, _, n := s.scan(addr)
	if found == 0 {
		return nil, false
	}
	return s.out[:n], true
}

// Take removes and returns the block stored under addr. The returned
// slice is freshly allocated and owned by the caller. The removal
// shift pass runs in full whether or not the address was present.
//
//horam:secret addr
func (s *CT) Take(addr int64) ([]byte, bool) {
	found, pos, n := s.scan(addr)
	out := make([]byte, s.blockSize)
	copy(out, s.out)
	// Close the gap at pos: every slot at or past it slides down one.
	for i := 0; i < s.capacity-1; i++ {
		mv := found & ctops.GeInt(i, pos)
		s.addrs[i] = ctops.Select64(mv, s.addrs[i+1], s.addrs[i])
		s.lens[i] = ctops.SelectInt(mv, s.lens[i+1], s.lens[i])
		ctops.CopyBytes(mv, s.slot(i), s.slot(i+1))
	}
	last := s.capacity - 1
	s.addrs[last] = ctops.Select64(found, Empty, s.addrs[last])
	s.lens[last] = ctops.SelectInt(found, 0, s.lens[last])
	ctops.CopyBytes(found, s.slot(last), s.zero)
	s.count -= found
	if found == 0 {
		return nil, false
	}
	return out[:n], true
}

// Has reports whether addr is present, via the same full scan as Get.
//
//horam:secret addr
func (s *CT) Has(addr int64) bool {
	found, _, _ := s.scan(addr)
	return found == 1
}

// Len returns the current occupancy.
func (s *CT) Len() int { return s.count }

// Peak returns the highest occupancy ever observed.
func (s *CT) Peak() int { return s.peak }

// Limit returns the capacity (a constant-time stash is always
// bounded).
func (s *CT) Limit() int { return s.capacity }

// Addrs returns the stored addresses in ascending order. The sorted
// prefix IS the ascending order, so this is a straight copy whose cost
// depends only on the public occupancy count.
func (s *CT) Addrs() []int64 { return s.AppendAddrs(nil) }

// AppendAddrs appends the stored addresses to dst in ascending order.
func (s *CT) AppendAddrs(dst []int64) []int64 {
	return append(dst, s.addrs[:s.count]...)
}

// Drain removes and returns all blocks in ascending address order.
func (s *CT) Drain() []Block {
	out := make([]Block, 0, s.count)
	for i := 0; i < s.count; i++ {
		data := make([]byte, s.lens[i])
		copy(data, s.slot(i))
		out = append(out, Block{Addr: s.addrs[i], Data: data})
	}
	for i := range s.addrs {
		s.addrs[i] = Empty
		s.lens[i] = 0
	}
	for i := range s.slab {
		s.slab[i] = 0
	}
	s.count = 0
	return out
}

// SnapshotAddrs appends the FULL fixed-length address array — Empty
// sentinels included — to dst. pathoram's constant-time eviction scans
// this snapshot so its candidate enumeration has a fixed length.
func (s *CT) SnapshotAddrs(dst []int64) []int64 {
	return append(dst, s.addrs...)
}

// CopySlotMasked copies slot i's payload bytes into dst when v == 1
// and leaves dst unchanged when v == 0; slot i is read in full either
// way. dst must be exactly BlockSize bytes.
func (s *CT) CopySlotMasked(v, i int, dst []byte) {
	ctops.CopyBytes(v, dst, s.slot(i))
}

// RemoveMasked removes every slot whose mask entry is 1, preserving
// order, in exactly `removals` fixed-cost passes (each pass extracts
// at most one marked slot; surplus passes are masked no-ops). mask
// must have Capacity() entries, indexed like a SnapshotAddrs taken
// with no intervening mutations; it is consumed.
func (s *CT) RemoveMasked(mask []int, removals int) {
	if len(mask) != s.capacity {
		panic(fmt.Sprintf("stash: RemoveMasked mask has %d entries, capacity is %d", len(mask), s.capacity))
	}
	last := s.capacity - 1
	for r := 0; r < removals; r++ {
		// Lowest marked index this pass.
		found, pos := 0, 0
		for i := range mask {
			m := mask[i] & (found ^ 1)
			pos = ctops.SelectInt(m, i, pos)
			found |= m
		}
		// Clear its mark, then slide slots and marks down together.
		for i := range mask {
			mask[i] = ctops.SelectInt(found&ctops.EqInt(i, pos), 0, mask[i])
		}
		for i := 0; i < last; i++ {
			mv := found & ctops.GeInt(i, pos)
			s.addrs[i] = ctops.Select64(mv, s.addrs[i+1], s.addrs[i])
			s.lens[i] = ctops.SelectInt(mv, s.lens[i+1], s.lens[i])
			mask[i] = ctops.SelectInt(mv, mask[i+1], mask[i])
			ctops.CopyBytes(mv, s.slot(i), s.slot(i+1))
		}
		s.addrs[last] = ctops.Select64(found, Empty, s.addrs[last])
		s.lens[last] = ctops.SelectInt(found, 0, s.lens[last])
		mask[last] = ctops.SelectInt(found, 0, mask[last])
		ctops.CopyBytes(found, s.slot(last), s.zero)
		s.count -= found
	}
}
