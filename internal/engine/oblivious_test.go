// Obliviousness regression: every shard's access-period bus must
// present the identical shape every cycle — exactly one storage load
// overlapped with exactly c memory-tier path accesses — regardless of
// the workload's hit/miss mix and of the shard count, in BOTH shuffle
// modes (the monolithic stop-the-world pass and the default
// deamortized pipeline). This is the paper's §4.2 indistinguishability
// argument, asserted on recorded device traces via internal/trace.
package engine

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/horam"
	"repro/internal/trace"
)

// shuffleModes enumerates the two shuffle pipelines every obliviousness
// property must hold under.
var shuffleModes = []struct {
	name       string
	monolithic bool
}{
	{"incremental", false},
	{"monolithic", true},
}

// shardShape is the adversary-visible per-cycle shape of one shard's
// trace: the number of cycles and the (constant) number of memory-tier
// device events each cycle presents.
type shardShape struct {
	cycles      int
	memPerCycle int
}

// obliviousEngine builds an engine with a fixed c=3 schedule (so the
// expected per-cycle shape is constant over the whole period) and
// attaches a shuffle-filtered trace recorder to every shard. The
// memory tier is sized so every shard's miss budget exceeds its
// shuffle-period quantum count — in the deamortized mode, cycles only
// carry their storage load while budget remains, and this test's
// cycle-grouping keys on the loads.
func obliviousEngine(t *testing.T, shards int, monolithic bool, seed string) (*Engine, []*trace.Recorder) {
	t.Helper()
	e, err := New(Options{
		Blocks:            1024,
		BlockSize:         64,
		MemoryBytes:       16 << 10,
		Insecure:          true,
		Seed:              seed,
		Shards:            shards,
		MonolithicShuffle: monolithic,
		Stages:            []horam.Stage{{C: 3, Frac: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	recs := make([]*trace.Recorder, shards)
	for i := 0; i < shards; i++ {
		oram := e.Shard(i).Engine()
		rec := trace.NewRecorder()
		h := rec.Hook()
		// Record only access-period traffic: the shuffle's own traffic
		// (the full pass, or each bounded quantum) has its own
		// sequential, data-independent shape, asserted separately by
		// TestFullTraceWorkloadIndependent and the horam tests.
		filtered := func(dev string, op device.Op, slot int64) {
			if !oram.InShuffle() {
				h(dev, op, slot)
			}
		}
		oram.Stor().SetHook(filtered)
		oram.Mem().SetHook(filtered)
		recs[i] = rec
	}
	return e, recs
}

// analyzeShard groups one shard's trace into scheduler cycles
// (delimited by storage-device events) and asserts the invariants that
// do not depend on geometry: storage traffic is read-only during
// access periods, every cycle has exactly one storage load, and every
// cycle presents the same number of memory-tier events.
func analyzeShard(t *testing.T, label string, rec *trace.Recorder, storName string) shardShape {
	t.Helper()
	events := rec.Events()
	if len(events) == 0 {
		t.Fatalf("%s: no events recorded", label)
	}
	if events[0].Dev != storName {
		t.Fatalf("%s: trace starts with %s/%s, want a storage load first (storage and memory phases overlap; the simulator issues the load before the paths)", label, events[0].Dev, events[0].Op)
	}
	memCounts := []int{}
	current := -1
	for _, ev := range events {
		if ev.Dev == storName {
			if ev.Op != device.OpRead {
				t.Fatalf("%s: storage WRITE at slot %d during an access period (shuffle leak)", label, ev.Slot)
			}
			memCounts = append(memCounts, 0)
			current = len(memCounts) - 1
			continue
		}
		memCounts[current]++
	}
	per := memCounts[0]
	for c, n := range memCounts {
		if n != per {
			t.Fatalf("%s: cycle %d presented %d memory events, cycle 0 presented %d — bus shape varies with the request mix", label, c, n, per)
		}
	}
	return shardShape{cycles: len(memCounts), memPerCycle: per}
}

// TestBusShapeInvariantAcrossWorkloadsAndShardCounts runs two
// adversarially different workloads — a cold uniform scan (maximal
// misses) and a hot 8-address loop (maximal hits after warmup), with
// writes mixed into the hot case — and asserts every shard's per-cycle
// bus shape is identical across cycles, across the two workloads, and
// across the shards of each engine, at shard counts 1, 2 and 4, in
// both shuffle modes.
func TestBusShapeInvariantAcrossWorkloadsAndShardCounts(t *testing.T) {
	const requests = 360
	workloads := []struct {
		name string
		addr func(rng *blockcipher.RNG, i int) int64
		mix  bool // include writes
	}{
		{"cold-scan", func(rng *blockcipher.RNG, i int) int64 { return int64(i*13) % 1024 }, false},
		{"hot-loop", func(rng *blockcipher.RNG, i int) int64 { return int64(i % 8) }, true},
	}

	for _, mode := range shuffleModes {
		for _, shards := range []int{1, 2, 4} {
			shapes := make(map[string]map[int]shardShape) // workload -> shard -> shape
			for _, wl := range workloads {
				e, recs := obliviousEngine(t, shards, mode.monolithic, fmt.Sprintf("oblivious-%d", shards))
				storName := e.Shard(0).Engine().Stor().Name()
				rng := blockcipher.NewRNGFromString("oblivious-wl")
				payload := bytes.Repeat([]byte{0xab}, 64)
				var reqs []*Request
				for i := 0; i < requests; i++ {
					a := wl.addr(rng, i)
					if wl.mix && i%3 == 0 {
						reqs = append(reqs, &Request{Op: OpWrite, Addr: a, Data: payload})
					} else {
						reqs = append(reqs, &Request{Op: OpRead, Addr: a})
					}
				}
				for off := 0; off < len(reqs); off += 60 {
					end := off + 60
					if end > len(reqs) {
						end = len(reqs)
					}
					if err := e.Batch(reqs[off:end]); err != nil {
						t.Fatal(err)
					}
				}

				if shapes[wl.name] == nil {
					shapes[wl.name] = make(map[int]shardShape)
				}
				for i, rec := range recs {
					label := fmt.Sprintf("%s shards=%d %s shard %d", mode.name, shards, wl.name, i)
					shape := analyzeShard(t, label, rec, storName)
					cycles := e.Shard(i).Stats().Cycles
					if int64(shape.cycles) != cycles {
						t.Fatalf("%s: trace shows %d cycles, scheduler counted %d — a cycle ran without its storage load", label, shape.cycles, cycles)
					}
					shapes[wl.name][i] = shape
				}

				// Leveling: with the engine quiescent, every shard must have
				// run the identical number of cycles, whatever the workload's
				// collision structure.
				for i := 1; i < shards; i++ {
					if a, b := shapes[wl.name][0].cycles, shapes[wl.name][i].cycles; a != b {
						t.Errorf("%s shards=%d %s: shard 0 ran %d cycles but shard %d ran %d — per-shard traffic volume leaks the workload",
							mode.name, shards, wl.name, a, i, b)
					}
				}
			}

			// The shape (memory events per cycle) must not depend on the
			// workload or on which shard served it. Only the TOTAL cycle
			// count may differ between workloads — the same quantity a
			// single unsharded instance reveals — and leveling keeps that
			// total identical on every shard (asserted above). All shards of
			// an engine share one memory-tree geometry, so one constant
			// describes them all.
			ref := shapes[workloads[0].name][0].memPerCycle
			for wl, perShard := range shapes {
				for i, s := range perShard {
					if s.memPerCycle != ref {
						t.Errorf("%s shards=%d: workload %s shard %d presents %d memory events per cycle, want %d — hit/miss mix is visible on the bus",
							mode.name, shards, wl, i, s.memPerCycle, ref)
					}
				}
			}
			t.Logf("%s shards=%d: every cycle = 1 storage load + %d memory events, both workloads, all shards", mode.name, shards, ref)
		}
	}
}

// TestShardCycleCountsHideCollisionStructure pins down the channel
// that sharding alone would open and batch-boundary leveling closes: a
// device-level adversary observes each shard's cycle count, and with a
// fixed address->shard map those counts would reflect address
// collisions — a hot single address drives exactly one shard, a
// uniform scan drives all of them. After every batch the engine pads
// all shards to the maximum cumulative cycle count with dummy cycles,
// so the two adversarial extremes below must produce a perfectly flat
// cross-shard cycle distribution — including while the deamortized
// shuffle has quanta in flight on some shards.
func TestShardCycleCountsHideCollisionStructure(t *testing.T) {
	const requests = 240
	workloads := []struct {
		name string
		addr func(i int) int64
	}{
		{"hot-single-address", func(i int) int64 { return 7 }},
		{"uniform-scan", func(i int) int64 { return int64(i*31) % 1024 }},
	}
	for _, mode := range shuffleModes {
		for _, shards := range []int{2, 4} {
			for _, wl := range workloads {
				e, err := New(Options{
					Blocks:            1024,
					BlockSize:         64,
					MemoryBytes:       16 << 10,
					Insecure:          true,
					Seed:              fmt.Sprintf("leveling-%d", shards),
					Shards:            shards,
					MonolithicShuffle: mode.monolithic,
					Stages:            []horam.Stage{{C: 3, Frac: 1}},
				})
				if err != nil {
					t.Fatal(err)
				}
				var reqs []*Request
				for i := 0; i < requests; i++ {
					reqs = append(reqs, &Request{Op: OpRead, Addr: wl.addr(i)})
				}
				for off := 0; off < len(reqs); off += 48 {
					if err := e.Batch(reqs[off : off+48]); err != nil {
						t.Fatal(err)
					}
				}
				stats := e.ShardStats()
				ref := stats[0].Cycles
				if ref == 0 {
					t.Fatalf("%s shards=%d %s: shard 0 ran no cycles", mode.name, shards, wl.name)
				}
				var padded int64
				for _, sh := range stats {
					if sh.Cycles != ref {
						t.Errorf("%s shards=%d %s: shard %d ran %d cycles, shard 0 ran %d — collision structure is visible in per-shard traffic",
							mode.name, shards, wl.name, sh.Shard, sh.Cycles, ref)
					}
					padded += sh.PadCycles
				}
				// The hot workload funnels every request into one shard, so
				// leveling must actually have padded the others — guard
				// against the assertion passing vacuously because padding
				// accounting broke.
				if wl.name == "hot-single-address" && padded == 0 {
					t.Errorf("%s shards=%d %s: no pad cycles recorded; leveling did not run", mode.name, shards, wl.name)
				}
				e.Close()
			}
		}
	}
}

// TestFullTraceWorkloadIndependent is the deamortized pipeline's
// strongest obliviousness assertion: the COMPLETE device-event
// sequence — access cycles AND shuffle-mode quanta, storage and memory
// tiers, no filtering — must be identical, event for event in (device,
// op), between two adversarially different workloads, once both
// engines are padded to a common cycle count. The whole schedule
// (when shuffle mode engages, which quantum each cycle carries, every
// access cycle's 1-load + c-path shape) is a deterministic function of
// the cycle index alone; only the slots (uniformly random by
// construction) and the ciphertexts may differ.
func TestFullTraceWorkloadIndependent(t *testing.T) {
	const shards = 2
	build := func() (*Engine, []*trace.Recorder) {
		e, err := New(Options{
			Blocks:      1024,
			BlockSize:   64,
			MemoryBytes: 16 << 10,
			Insecure:    true,
			Seed:        "full-trace",
			Shards:      shards,
			Stages:      []horam.Stage{{C: 3, Frac: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		recs := make([]*trace.Recorder, shards)
		for i := 0; i < shards; i++ {
			rec := trace.NewRecorder()
			h := rec.Hook()
			e.Shard(i).Engine().Stor().SetHook(h)
			e.Shard(i).Engine().Mem().SetHook(h)
			recs[i] = rec
		}
		return e, recs
	}

	run := func(e *Engine, addr func(i int) int64) {
		var reqs []*Request
		for i := 0; i < 300; i++ {
			reqs = append(reqs, &Request{Op: OpRead, Addr: addr(i)})
		}
		for off := 0; off < len(reqs); off += 50 {
			if err := e.Batch(reqs[off : off+50]); err != nil {
				t.Fatal(err)
			}
		}
	}

	hotE, hotRecs := build()
	run(hotE, func(i int) int64 { return int64(i % 4) })
	scanE, scanRecs := build()
	run(scanE, func(i int) int64 { return int64(i*29) % 1024 })

	// Pad both engines' shards to one common cycle count: from equal
	// cycle counts (and equal geometry — same seed, same partition),
	// equal traces must follow.
	target := int64(0)
	for _, e := range []*Engine{hotE, scanE} {
		for i := 0; i < shards; i++ {
			if c := e.Shard(i).Stats().Cycles; c > target {
				target = c
			}
		}
	}
	for _, e := range []*Engine{hotE, scanE} {
		for i := 0; i < shards; i++ {
			if _, err := e.Shard(i).PadToCycles(target); err != nil {
				t.Fatal(err)
			}
		}
	}

	sig := func(rec *trace.Recorder) []string {
		evs := rec.Events()
		out := make([]string, len(evs))
		for i, ev := range evs {
			out[i] = fmt.Sprintf("%s/%d", ev.Dev, ev.Op)
		}
		return out
	}
	for i := 0; i < shards; i++ {
		hot, scan := sig(hotRecs[i]), sig(scanRecs[i])
		if len(hot) != len(scan) {
			t.Fatalf("shard %d: hot workload produced %d device events, scan %d — total traffic depends on the request mix", i, len(hot), len(scan))
		}
		for j := range hot {
			if hot[j] != scan[j] {
				t.Fatalf("shard %d: event %d is %s under hot but %s under scan — the op sequence depends on the request mix", i, j, hot[j], scan[j])
			}
		}
		if got := hotE.Shard(i).Stats().ShuffleQuanta; got == 0 {
			t.Fatalf("shard %d: no shuffle quanta ran; the trace never exercised the incremental pipeline", i)
		}
	}
}
