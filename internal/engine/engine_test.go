package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func testEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := New(Options{
		Blocks:      512,
		BlockSize:   32,
		MemoryBytes: 16 << 10,
		Insecure:    true,
		Seed:        "engine-test",
		Shards:      shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestOptionValidation(t *testing.T) {
	bad := []Options{
		{Blocks: 0, MemoryBytes: 1 << 10, Insecure: true},
		{Blocks: 64, MemoryBytes: 1 << 10, Insecure: true, Shards: -1},
		{Blocks: 64, MemoryBytes: 1 << 10, Insecure: true, Shards: MaxShards + 1},
		{Blocks: 4, MemoryBytes: 1 << 10, Insecure: true, Shards: 8}, // more shards than blocks
		{Blocks: 64, MemoryBytes: 0, Insecure: true},
		{Blocks: 64, MemoryBytes: 1 << 10, Key: []byte("short")},
	}
	for i, opts := range bad {
		if _, err := New(opts); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, opts)
		}
	}
}

// TestPartitionBalancedAndComplete: the PRF partition assigns every
// address to exactly one shard, shard sizes differ by at most one, and
// shard-local addresses are dense in [0, shard blocks).
func TestPartitionBalancedAndComplete(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		e := testEngine(t, shards)
		counts := make([]int64, shards)
		seen := make([]map[int64]bool, shards)
		for s := range seen {
			seen[s] = make(map[int64]bool)
		}
		for a := int64(0); a < e.Blocks(); a++ {
			s := e.ShardOf(a)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: ShardOf(%d) = %d", shards, a, s)
			}
			local := e.local[a]
			if local < 0 || local >= e.Shard(s).Blocks() {
				t.Fatalf("shards=%d: local address %d out of shard %d range [0,%d)",
					shards, local, s, e.Shard(s).Blocks())
			}
			if seen[s][local] {
				t.Fatalf("shards=%d: shard %d local address %d assigned twice", shards, s, local)
			}
			seen[s][local] = true
			counts[s]++
		}
		var min, max int64 = e.Blocks(), 0
		var total int64
		for s, n := range counts {
			if n != e.Shard(s).Blocks() {
				t.Fatalf("shards=%d: shard %d assigned %d addresses but sized for %d", shards, s, n, e.Shard(s).Blocks())
			}
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
			total += n
		}
		if total != e.Blocks() {
			t.Fatalf("shards=%d: %d addresses assigned, want %d", shards, total, e.Blocks())
		}
		if max-min > 1 {
			t.Fatalf("shards=%d: unbalanced partition: min %d, max %d", shards, min, max)
		}
	}
}

// TestPartitionIsKeyed: two engines with different seeds produce
// different address->shard maps (the partition derives from the
// key/seed, not from address arithmetic).
func TestPartitionIsKeyed(t *testing.T) {
	mk := func(seed string) *Engine {
		e, err := New(Options{
			Blocks: 512, BlockSize: 32, MemoryBytes: 16 << 10,
			Insecure: true, Seed: seed, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	a, b := mk("seed-a"), mk("seed-b")
	same := 0
	for addr := int64(0); addr < 512; addr++ {
		if a.ShardOf(addr) == b.ShardOf(addr) {
			same++
		}
	}
	if same == 512 {
		t.Fatal("two different seeds produced the identical shard map")
	}
}

func TestReadWriteRoundTripAcrossShards(t *testing.T) {
	e := testEngine(t, 4)
	payload := func(a int64) []byte { return bytes.Repeat([]byte{byte(a + 1)}, 32) }
	for a := int64(0); a < 64; a++ {
		if err := e.Write(a, payload(a)); err != nil {
			t.Fatalf("Write(%d): %v", a, err)
		}
	}
	for a := int64(0); a < 64; a++ {
		got, err := e.Read(a)
		if err != nil {
			t.Fatalf("Read(%d): %v", a, err)
		}
		if !bytes.Equal(got, payload(a)) {
			t.Fatalf("Read(%d) returned wrong payload", a)
		}
	}
}

// TestBatchOrderAndScatter: one batch mixing writes and reads of the
// same addresses across all shards preserves per-address program
// order, and results land in submission order.
func TestBatchOrderAndScatter(t *testing.T) {
	e := testEngine(t, 4)
	var reqs []*Request
	for a := int64(100); a < 164; a++ {
		reqs = append(reqs,
			&Request{Op: OpWrite, Addr: a, Data: bytes.Repeat([]byte{byte(a)}, 32)},
			&Request{Op: OpRead, Addr: a})
	}
	if err := e.Batch(reqs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i += 2 {
		a := reqs[i].Addr
		if !bytes.Equal(reqs[i].Result, bytes.Repeat([]byte{byte(a)}, 32)) {
			t.Fatalf("read of %d did not observe the write queued before it", a)
		}
	}
	// Every shard should have seen work from a 128-request spread.
	for i, sh := range e.ShardStats() {
		if sh.Requests == 0 {
			t.Errorf("shard %d served no requests from a batch spanning the address space", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	e := testEngine(t, 2)
	cases := []*Request{
		nil,
		{Op: OpRead, Addr: -1},
		{Op: OpRead, Addr: 512},
		{Op: OpWrite, Addr: 0, Data: []byte("short")},
	}
	for i, r := range cases {
		if err := e.Batch([]*Request{r}); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
	// A bad request anywhere in the batch fails before anything runs.
	before := e.Stats().Requests
	good := &Request{Op: OpRead, Addr: 1}
	if err := e.Batch([]*Request{good, {Op: OpRead, Addr: 9999}}); err == nil {
		t.Fatal("batch with out-of-range request accepted")
	}
	if after := e.Stats().Requests; after != before {
		t.Fatalf("rejected batch still executed %d requests", after-before)
	}
}

func TestConcurrentBatchesCoalesce(t *testing.T) {
	e := testEngine(t, 2)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * 16)
			payload := bytes.Repeat([]byte{byte(w + 1)}, 32)
			for i := 0; i < 10; i++ {
				a := base + int64(i)
				if err := e.Write(a, payload); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				got, err := e.Read(a)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("worker %d: read-your-writes violated at %d", w, a)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	sum := e.Stats()
	if want := int64(workers * 10 * 2); sum.Requests != want {
		t.Fatalf("engine served %d requests, want %d", sum.Requests, want)
	}
}

func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	e := testEngine(t, 2)
	if err := e.Write(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := e.Batch([]*Request{{Op: OpRead, Addr: 0}}); err != ErrClosed {
		t.Fatalf("Batch after Close returned %v, want ErrClosed", err)
	}
	e.Close() // must not hang or panic
}

// TestDeterministicAcrossRuns: same seed, same workload, bit-identical
// aggregate counters and virtual time — the reproducibility property
// must survive sharding.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Summary {
		e, err := New(Options{
			Blocks: 512, BlockSize: 32, MemoryBytes: 8 << 10,
			Insecure: true, Seed: "determinism", Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var reqs []*Request
		for i := 0; i < 300; i++ {
			reqs = append(reqs, &Request{Op: OpRead, Addr: int64(i*7) % 512})
		}
		if err := e.Batch(reqs); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed diverged:\n%+v\n%+v", s1, s2)
	}
}
