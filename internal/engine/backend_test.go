// ShardBackend seam coverage: Close error aggregation when remote
// shards are already gone, and the Shard/ShardOf panics — including
// the remote-shard case, where there is no in-process client to hand
// out.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/horam"
)

// stubBackend is a minimal ShardBackend for seam tests: it serves
// zero blocks for reads, counts cycles one per request, and fails
// Close with a configurable error (a dead remote shard's torn
// connection).
type stubBackend struct {
	blocks   int64
	cycles   int64
	closeErr error
	closed   bool
}

func (s *stubBackend) Blocks() int64 { return s.blocks }

func (s *stubBackend) Batch(reqs []*Request) error {
	for _, r := range reqs {
		if r.Op == OpRead {
			r.Result = make([]byte, 8)
		}
		s.cycles++
	}
	return nil
}

func (s *stubBackend) Cycles() (int64, error) { return s.cycles, nil }

func (s *stubBackend) PadToCycles(target int64) (int64, error) {
	padded := target - s.cycles
	if padded < 0 {
		return 0, nil
	}
	s.cycles = target
	return padded, nil
}

func (s *stubBackend) Stats() core.Stats {
	return core.Stats{Stats: horam.Stats{Cycles: s.cycles}}
}

func (s *stubBackend) SaveSnapshotAt(uint64) error { return errors.New("stub: no durability") }

func (s *stubBackend) Peek() (uint64, uint64, error) { return 0, 0, nil }

func (s *stubBackend) RestoreCheckpoint(uint64, uint64) error { return ErrRemoteRestore }

func (s *stubBackend) Close() error {
	s.closed = true
	return s.closeErr
}

// stubEngine assembles a 2-shard engine over stub backends. The stub
// block counts must match the PRF partition: 8 blocks over 2 shards
// deals 4 to each.
func stubEngine(t *testing.T, stubs []*stubBackend) *Engine {
	t.Helper()
	backends := make([]ShardBackend, len(stubs))
	for i, s := range stubs {
		s.blocks = 4
		backends[i] = s
	}
	e, err := NewWithBackends(Options{
		Blocks:      8,
		BlockSize:   8,
		MemoryBytes: 1 << 10,
		Insecure:    true,
		Seed:        "backend-test",
		Shards:      len(stubs),
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// When several remote shards are already gone, Close must report ALL
// their errors (errors.Join), not just the first — an operator
// tearing a gateway down needs to know every node that went with it —
// and must still close every backend.
func TestCloseAggregatesRemoteShardErrors(t *testing.T) {
	err0 := errors.New("shard 0: connection torn")
	err1 := errors.New("shard 1: connection torn")
	stubs := []*stubBackend{{closeErr: err0}, {closeErr: err1}}
	e := stubEngine(t, stubs)

	err := e.Close()
	if !errors.Is(err, err0) || !errors.Is(err, err1) {
		t.Fatalf("Close error %v does not join both shard errors", err)
	}
	for i, s := range stubs {
		if !s.closed {
			t.Errorf("shard %d backend not closed despite neighbour errors", i)
		}
	}
	// Repeat Close: resources are gone, no error replay.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close returned %v, want nil", err)
	}
}

// The engine must actually serve through stub backends — guarding the
// seam itself, not just its failure paths.
func TestNewWithBackendsServes(t *testing.T) {
	e := stubEngine(t, []*stubBackend{{}, {}})
	defer e.Close()
	data, err := e.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 {
		t.Fatalf("read %d bytes, want 8", len(data))
	}
	// Leveling ran against the stubs' cycle counters.
	n, err := e.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.Shards(); i++ {
		if got, _ := e.Backend(i).Cycles(); got != n {
			t.Fatalf("shard %d at %d cycles, engine max is %d — leveling skipped a backend", i, got, n)
		}
	}
}

// NewWithBackends must refuse a backend set that does not match the
// PRF partition — a node serving the wrong slice would scramble the
// address space silently.
func TestNewWithBackendsRefusesWrongGeometry(t *testing.T) {
	_, err := NewWithBackends(Options{
		Blocks:      8,
		BlockSize:   8,
		MemoryBytes: 1 << 10,
		Insecure:    true,
		Seed:        "backend-test",
		Shards:      2,
	}, []ShardBackend{&stubBackend{blocks: 4}, &stubBackend{blocks: 5}})
	if err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("mismatched backend blocks: got %v, want partition refusal", err)
	}
}

func TestShardOfPanicsOutOfRange(t *testing.T) {
	e := stubEngine(t, []*stubBackend{{}, {}})
	defer e.Close()
	for _, addr := range []int64{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardOf(%d) did not panic", addr)
				}
			}()
			e.ShardOf(addr)
		}()
	}
	// In range: no panic, and the full address space maps to valid
	// shard indices.
	for addr := int64(0); addr < 8; addr++ {
		if s := e.ShardOf(addr); s < 0 || s >= 2 {
			t.Fatalf("ShardOf(%d) = %d", addr, s)
		}
	}
}

func TestShardPanics(t *testing.T) {
	e := stubEngine(t, []*stubBackend{{}, {}})
	defer e.Close()
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(%d) did not panic", i)
				}
			}()
			e.Shard(i)
		}()
	}
	// A remote (non-in-process) shard has no core.Client to expose:
	// Shard must panic rather than return nil.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Shard(0) on a remote-backed engine did not panic")
			}
			if !strings.Contains(fmt.Sprint(r), "not in-process") {
				t.Fatalf("Shard(0) panic = %v, want not-in-process explanation", r)
			}
		}()
		e.Shard(0)
	}()

	// Backend(i) panics out of range too, but serves the in-range case
	// remote shards rely on.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Backend(2) did not panic")
			}
		}()
		e.Backend(2)
	}()
}
