// Snapshot round-trip differential tests: write a workload, snapshot,
// rebuild the engine from disk, and the restored engine must agree
// with the map model at every shard count — including blocks that were
// resident in the volatile memory tiers at snapshot time, and after
// restoring twice in a row.
package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blockcipher"
)

func persistOpts(dir string, shards int) Options {
	return Options{
		Blocks:      512,
		BlockSize:   32,
		MemoryBytes: 8 << 10,
		Key:         bytes.Repeat([]byte{0x42}, 32),
		Shards:      shards,
		DataDir:     dir,
	}
}

// runWorkload drives seeded mixed batches through the engine, keeping
// the map model in sync, and returns the model.
func runWorkload(t *testing.T, e *Engine, seed string, ops int, model map[int64]byte) {
	t.Helper()
	rng := blockcipher.NewRNGFromString(seed)
	done := 0
	for done < ops {
		n := 1 + rng.Intn(48)
		if done+n > ops {
			n = ops - done
		}
		reqs := make([]*Request, n)
		for i := 0; i < n; i++ {
			addr := rng.Int63n(e.Blocks())
			if rng.Intn(2) == 0 {
				v := byte(rng.Intn(255) + 1)
				model[addr] = v // per-address order holds within a batch
				reqs[i] = &Request{Op: OpWrite, Addr: addr, Data: bytes.Repeat([]byte{v}, e.BlockSize())}
			} else {
				reqs[i] = &Request{Op: OpRead, Addr: addr}
			}
		}
		if err := e.Batch(reqs); err != nil {
			t.Fatalf("batch at op %d: %v", done, err)
		}
		done += n
	}
}

// checkModel reads every address and compares against the model.
func checkModel(t *testing.T, e *Engine, model map[int64]byte, when string) {
	t.Helper()
	for addr := int64(0); addr < e.Blocks(); addr++ {
		want := make([]byte, e.BlockSize())
		if v, ok := model[addr]; ok {
			want = bytes.Repeat([]byte{v}, e.BlockSize())
		}
		got, err := e.Read(addr)
		if err != nil {
			t.Fatalf("%s: Read(%d): %v", when, addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: block %d = %x, want %x", when, addr, got[:4], want[:4])
		}
	}
}

func TestSnapshotRoundTripDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := persistOpts(t.TempDir(), shards)
			e, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[int64]byte)
			runWorkload(t, e, fmt.Sprintf("persist-wl-%d", shards), 800, model)
			if e.Stats().Shuffles == 0 {
				t.Fatal("workload never crossed a shuffle period")
			}
			if err := e.SaveSnapshot(); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}
			preCycles := e.Stats().Cycles
			e.Close()

			// First restart.
			r, err := Restore(opts)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if r.Epoch() != 1 {
				t.Fatalf("Epoch = %d, want 1", r.Epoch())
			}
			if got := r.Stats().Cycles; got != preCycles {
				t.Fatalf("restored cycle count %d != saved %d", got, preCycles)
			}
			// Shard cycle counts restore leveled: the persisted image
			// must not introduce a cross-shard volume channel.
			ss := r.ShardStats()
			for _, sh := range ss[1:] {
				if sh.Cycles != ss[0].Cycles {
					t.Fatalf("restored shard cycle counts unlevel: %d vs %d", sh.Cycles, ss[0].Cycles)
				}
			}
			checkModel(t, r, model, "after first restore")

			// Keep writing, snapshot again, restart again.
			runWorkload(t, r, fmt.Sprintf("persist-wl2-%d", shards), 400, model)
			if err := r.SaveSnapshot(); err != nil {
				t.Fatalf("second SaveSnapshot: %v", err)
			}
			r.Close()

			r2, err := Restore(opts)
			if err != nil {
				t.Fatalf("second Restore: %v", err)
			}
			defer r2.Close()
			if r2.Epoch() != 2 {
				t.Fatalf("Epoch = %d, want 2", r2.Epoch())
			}
			checkModel(t, r2, model, "after second restore")
		})
	}
}

// TestRestoreRefusesMismatchedOptions: the manifest is the geometry
// contract; any drifted option is refused before shard state loads.
func TestRestoreRefusesMismatchedOptions(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir, 2)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	e.Close()

	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"shards", func(o *Options) { o.Shards = 4 }},
		{"blocks", func(o *Options) { o.Blocks = 1024 }},
		{"blocksize", func(o *Options) { o.BlockSize = 64 }},
		{"memory", func(o *Options) { o.MemoryBytes = 16 << 10 }},
		// The PRF partition derives from the seed: a drifted seed would
		// silently reroute every address across shards.
		{"seed", func(o *Options) { o.Seed = "drifted" }},
		// Silently resuming a constant-time image without the
		// hardening (or vice versa) would change the deployment's
		// threat model without anyone noticing.
		{"constant-time", func(o *Options) { o.ConstantTime = true }},
	} {
		bad := opts
		tc.mutate(&bad)
		if _, err := Restore(bad); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Errorf("%s: Restore err = %v, want an option-mismatch refusal", tc.name, err)
		}
	}

	// Wrong master key: the manifest must not authenticate.
	bad := opts
	bad.Key = bytes.Repeat([]byte{0x13}, 32)
	if _, err := Restore(bad); err == nil || !strings.Contains(err.Error(), "authenticate") {
		t.Errorf("wrong key: Restore err = %v, want an authentication refusal", err)
	}

	// The unmodified options still restore.
	r, err := Restore(opts)
	if err != nil {
		t.Fatalf("Restore with matching options: %v", err)
	}
	r.Close()
}

// TestRestoreHealsStaggeredCheckpoint simulates a crash midway through
// a multi-shard checkpoint loop: one shard's snapshot is a checkpoint
// ahead of the others. Restore must roll the ahead shard back to its
// rotated previous snapshot and resume the whole engine on the last
// complete checkpoint cut — not refuse the directory forever.
func TestRestoreHealsStaggeredCheckpoint(t *testing.T) {
	opts := persistOpts(t.TempDir(), 2)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]byte)
	runWorkload(t, e, "staggered-wl", 300, model)
	if err := e.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	// Crash simulation: the next checkpoint loop replaced shard 0's
	// snapshot and died before reaching shard 1.
	if err := e.shards[0].client.SaveSnapshot(); err != nil {
		t.Fatalf("shard 0 SaveSnapshot: %v", err)
	}
	e.Close()

	r, err := Restore(opts)
	if err != nil {
		t.Fatalf("Restore of staggered checkpoint: %v", err)
	}
	defer r.Close()
	ss := r.ShardStats()
	for _, sh := range ss[1:] {
		if sh.Cycles != ss[0].Cycles {
			t.Fatalf("restored shard cycle counts unlevel: %d vs %d", sh.Cycles, ss[0].Cycles)
		}
	}
	checkModel(t, r, model, "after staggered-checkpoint restore")

	// And the healed engine checkpoints/restores cleanly again.
	if err := r.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot after heal: %v", err)
	}
}

// TestSaveSnapshotRealignsLaggingCounter: a shard whose previous save
// transiently failed lags its lifetime checkpoint counter; the next
// engine checkpoint must drive every shard to ONE shared number (max
// across shards + 1) so the counters re-align instead of staying
// skewed forever and poisoning restore-time snapshot pairing.
func TestSaveSnapshotRealignsLaggingCounter(t *testing.T) {
	opts := persistOpts(t.TempDir(), 2)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SaveSnapshot(); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	// Simulate a transiently failed save at shard 1 during the next
	// checkpoint: only shard 0 advanced.
	if err := e.shards[0].client.SaveSnapshot(); err != nil {
		t.Fatalf("shard 0 SaveSnapshot: %v", err)
	}
	if a, b := e.shards[0].client.Checkpoint(), e.shards[1].client.Checkpoint(); a == b {
		t.Fatalf("setup failed: counters already equal (%d)", a)
	}
	if err := e.SaveSnapshot(); err != nil {
		t.Fatalf("realigning SaveSnapshot: %v", err)
	}
	if a, b := e.shards[0].client.Checkpoint(), e.shards[1].client.Checkpoint(); a != b {
		t.Fatalf("counters still skewed after engine checkpoint: %d vs %d", a, b)
	}
}

// TestSaveSnapshotConcurrentWithTraffic checkpoints while batches are
// in flight: the quiesce must interleave cleanly with traffic and the
// final image must restore to the model.
func TestSaveSnapshotConcurrentWithTraffic(t *testing.T) {
	opts := persistOpts(t.TempDir(), 2)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]byte)
	rng := blockcipher.NewRNGFromString("concurrent-ckpt")
	for round := 0; round < 6; round++ {
		reqs := make([]*Request, 40)
		for i := range reqs {
			addr := rng.Int63n(opts.Blocks)
			v := byte(rng.Intn(255) + 1)
			model[addr] = v
			reqs[i] = &Request{Op: OpWrite, Addr: addr, Data: bytes.Repeat([]byte{v}, opts.BlockSize)}
		}
		done := make(chan error, 1)
		go func() { done <- e.Batch(reqs) }()
		if err := e.SaveSnapshot(); err != nil {
			t.Fatalf("SaveSnapshot round %d: %v", round, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("Batch round %d: %v", round, err)
		}
	}
	// A final checkpoint after the last batch makes the image current.
	if err := e.SaveSnapshot(); err != nil {
		t.Fatalf("final SaveSnapshot: %v", err)
	}
	e.Close()

	r, err := Restore(opts)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	checkModel(t, r, model, "after concurrent-checkpoint run")
}
