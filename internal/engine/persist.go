// Engine-level snapshot/restore. The durable layout under
// Options.DataDir is:
//
//	DataDir/engine.snap      sealed manifest (geometry + epoch)
//	DataDir/shard-<i>/       one core.Client durable directory per
//	                         shard (storage.dat, storage.gen,
//	                         state.snap — see core/persist.go)
//
// SaveSnapshot quiesces the engine (blocking new batches and waiting
// out in-flight ones), levels shard cycle counts — so the persisted
// image sits at cross-shard-equal cycle counts and a restart leaks
// nothing a quiescent engine does not already reveal — then saves
// every shard and finally the manifest. The manifest is written last
// and read first: geometry is validated against the caller's options
// before any shard state is touched.
package engine

import (
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/blockcipher"
	"repro/internal/snapshot"
)

// ManifestFileName is the engine manifest inside Options.DataDir.
const ManifestFileName = "engine.snap"

func shardDir(dataDir string, s int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", s))
}

func manifestPath(dataDir string) string {
	return filepath.Join(dataDir, ManifestFileName)
}

// manifestSealer derives the sealer for the manifest container. The
// key is epoch-independent (a manifest from any boot must open); the
// nonce stream is epoch-salted so it never replays across boots.
func manifestSealer(opts Options, prf *blockcipher.PRF, epoch uint64) (blockcipher.Sealer, error) {
	if opts.Insecure {
		return blockcipher.NullSealer{}, nil
	}
	rng := blockcipher.NewRNG(prf.Derive(fmt.Sprintf("engine-manifest-nonce-epoch-%d", epoch), 32))
	return blockcipher.NewAESSealer(prf.Derive("engine-manifest-key", 32), rng)
}

// wireManifest records the geometry echo and builds the manifest
// sealer once the shards are up (their shared epoch is known then).
// The shards' epoch AND lifetime checkpoint counters must agree: the
// engine saves all shards in lockstep, so a divergence means the
// directory holds snapshots from different checkpoints (e.g. a crash
// midway through a SaveSnapshot loop) and resuming the mix would break
// the leveled-cycle-count invariant. With remote backends the same
// agreement check runs over the wire (PEEK), so a cluster assembled
// from nodes restored at different checkpoint cuts is refused exactly
// like an in-process directory would be.
func (e *Engine) wireManifest(opts Options, prf *blockcipher.PRF) error {
	epoch, ckpt, err := e.shards[0].backend.Peek()
	if err != nil {
		return fmt.Errorf("engine: shard 0: %w", err)
	}
	for _, sh := range e.shards {
		got, gotCkpt, err := sh.backend.Peek()
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", sh.id, err)
		}
		if got != epoch {
			return fmt.Errorf("engine: shard %d restored at epoch %d, shard 0 at %d; the per-shard snapshots are from different checkpoints", sh.id, got, epoch)
		}
		if gotCkpt != ckpt {
			return fmt.Errorf("engine: shard %d restored at checkpoint %d, shard 0 at %d; the directory mixes snapshots from different checkpoints (crash during SaveSnapshot?)", sh.id, gotCkpt, ckpt)
		}
	}
	// The geometry echo is the shared config.Common one — the same
	// field set CheckManifest validates at restore, so echo and check
	// cannot drift apart. It is recorded even without a DataDir: a
	// -shard-serve node answers the PEEK control verb from it, and
	// Epoch() reads it.
	e.manifest = opts.Manifest(epoch)
	if opts.DataDir == "" {
		return nil
	}
	sealer, err := manifestSealer(opts, prf, epoch)
	if err != nil {
		return err
	}
	e.manSealer = sealer
	return nil
}

// ManifestEcho returns the engine's geometry echo — the same manifest
// SaveSnapshot persists, with the live epoch. A -shard-serve node
// renders it on the PEEK shard-control verb so a gateway can refuse a
// node running with drifted geometry, options or seed before serving
// any traffic through it.
func (e *Engine) ManifestEcho() snapshot.Manifest { return e.manifest }

// Epoch returns the engine's key-derivation boot generation: 0 for a
// fresh New, previous+1 after each Restore.
func (e *Engine) Epoch() uint64 { return e.manifest.Epoch }

// Peek reports the live epoch and lifetime checkpoint counter. Shard
// 0 speaks for the engine: assembly refuses shards that disagree, and
// every save advances all shards in lockstep to one explicit number.
func (e *Engine) Peek() (epoch, checkpoint uint64, err error) {
	return e.shards[0].backend.Peek()
}

// SaveSnapshot persists a consistent engine image: it quiesces
// (in-flight batches finish, new ones wait), levels every shard to the
// maximum cycle count, saves each shard's control snapshot, and
// finally writes the manifest. Restore resumes exactly this image.
// Any KV state previously set (SaveSnapshotKV) or restored is carried
// forward unchanged.
func (e *Engine) SaveSnapshot() error { return e.SaveSnapshotKV(nil) }

// SaveSnapshotKV is SaveSnapshot with the oblivious key–value
// subsystem's directory state embedded in the manifest, so the KV
// geometry and counters are persisted at the same checkpoint cut as
// the shard images. okv.Store.Checkpoint is the intended caller — it
// holds the KV operation lock across the save, so the embedded state
// can never sit between the batches of a half-finished KV op. A nil
// kv preserves whatever KV state the manifest already carries.
func (e *Engine) SaveSnapshotKV(kv *snapshot.KVState) error {
	if e.dataDir == "" {
		return errors.New("engine: SaveSnapshot requires Options.DataDir")
	}
	return e.saveSnapshot(kv, 0)
}

// SaveSnapshotAt checkpoints every shard at the explicit lifetime
// number — the CHECKPT shard-control verb a -shard-serve node
// answers, so a gateway can drive a whole cluster to ONE aligned
// checkpoint cut (level, then CHECKPT the same number everywhere).
// Unlike SaveSnapshot it does not require an engine DataDir: a node
// persists shard state under its own directory, and the engine
// manifest file is only maintained when this engine owns one.
func (e *Engine) SaveSnapshotAt(target uint64) error {
	if target == 0 {
		return errors.New("engine: SaveSnapshotAt: checkpoint numbers start at 1")
	}
	return e.saveSnapshot(nil, target)
}

// saveSnapshot is the shared checkpoint path: quiesce, level, save
// every shard at one explicit checkpoint number, then persist the
// manifest if this engine maintains one. target 0 selects the next
// number automatically.
func (e *Engine) saveSnapshot(kv *snapshot.KVState, target uint64) error {
	e.pause.Lock()
	defer e.pause.Unlock()
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if kv != nil {
		e.manifest.KV = kv // under pause: serialised against other saves
	}
	// Level first: the image must show S identical cycle counts, so
	// persistence adds no cross-shard traffic-volume channel beyond
	// what a quiescent engine already shows.
	if err := e.level(); err != nil {
		return err
	}
	// One explicit checkpoint number for every shard — max across
	// shards + 1 — so a shard whose previous save transiently failed
	// (its counter lags) re-aligns here instead of staying skewed and
	// poisoning the restore-time min-cut pairing.
	if target == 0 {
		for _, sh := range e.shards {
			_, ck, err := sh.backend.Peek()
			if err != nil {
				return fmt.Errorf("engine: shard %d: %w", sh.id, err)
			}
			if ck > target {
				target = ck
			}
		}
		target++
	}
	for _, sh := range e.shards {
		if err := sh.backend.SaveSnapshotAt(target); err != nil {
			return fmt.Errorf("engine: shard %d: %w", sh.id, err)
		}
	}
	if e.dataDir == "" {
		return nil
	}
	payload, err := e.manifest.Encode()
	if err != nil {
		return err
	}
	sealed, err := e.manSealer.Seal(payload)
	if err != nil {
		return err
	}
	return snapshot.WriteFile(manifestPath(e.dataDir), sealed)
}

// Restore resumes an engine from the image a previous SaveSnapshot
// left in opts.DataDir. The options must agree with the persisted
// manifest on every geometry dimension — a mismatch is refused before
// any shard state is touched — and carry the same master key, from
// which all shard keys re-derive.
func Restore(opts Options) (*Engine, error) {
	opts, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if opts.DataDir == "" {
		return nil, errors.New("engine: Restore requires Options.DataDir")
	}
	var prf *blockcipher.PRF
	if !opts.Insecure {
		if prf, err = blockcipher.NewPRF(opts.Key); err != nil {
			return nil, err
		}
	}
	sealer, err := manifestSealer(opts, prf, 0) // key is epoch-independent; 0 only seeds the unused nonce stream
	if err != nil {
		return nil, err
	}
	sealedMan, err := snapshot.ReadFile(manifestPath(opts.DataDir))
	if err != nil {
		return nil, err
	}
	payload, err := sealer.Open(sealedMan)
	if err != nil {
		return nil, fmt.Errorf("engine: manifest does not authenticate (wrong key or tampered file): %w", err)
	}
	man, err := snapshot.DecodeManifest(payload)
	if err != nil {
		return nil, err
	}
	if err := opts.CheckManifest(man); err != nil {
		return nil, err
	}
	e, err := assemble(opts, true)
	if err != nil {
		return nil, err
	}
	// Carry the KV directory state forward: okv.Resume reads it via
	// RestoredKVState, and a later SaveSnapshot without explicit KV
	// state re-persists it instead of silently dropping the table's
	// record.
	e.manifest.KV = man.KV
	return e, nil
}

// RestoredKVState returns the oblivious key–value directory state the
// restored manifest carried, or nil when the image belongs to a raw
// block store (fresh engines always return nil). okv.Resume validates
// its geometry and adopts its counters.
func (e *Engine) RestoredKVState() *snapshot.KVState { return e.manifest.KV }
