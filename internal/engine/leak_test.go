// Goroutine accounting on shutdown: Close must join every shard
// scheduler the engine started, leaving the process at its pre-New
// goroutine count. A leaked scheduler is invisible to the functional
// tests (the engine still answers) but compounds across restarts in a
// long-lived daemon.
package engine

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// waitGoroutinesBack polls until the process goroutine count returns
// to the baseline, failing with a full stack dump if it never does.
// Goroutine exit is asynchronous with respect to Close returning only
// for the runtime's own bookkeeping, so a short poll — not a fixed
// sleep — is the reliable shape.
func waitGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseReleasesGoroutines(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base := runtime.NumGoroutine()
			e, err := New(Options{
				Blocks:      256,
				BlockSize:   32,
				MemoryBytes: 4 << 10,
				Insecure:    true,
				Seed:        "leak-test",
				Shards:      shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Real traffic first, so the schedulers are mid-flight state
			// machines, not freshly parked ones.
			data := bytes.Repeat([]byte{0x5a}, 32)
			for i := int64(0); i < 64; i++ {
				if err := e.Write(i, data); err != nil {
					t.Fatal(err)
				}
			}
			e.Close()
			e.Close() // idempotent Close must not double-join or hang
			waitGoroutinesBack(t, base)
		})
	}
}
