// Differential tests: the sharded engine against a plain map model.
// The model defines the reference semantics — reads return the last
// value written in submission order (zeros if never written) — and the
// engine must match it at every shard count, in both shuffle modes,
// across shuffle periods, under randomized mixed batches that include
// duplicate addresses.
package engine

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/blockcipher"
)

// diffGeometry is sized so the per-shard memory trees are tiny: every
// shard crosses several shuffle periods within one run, so period
// boundaries are exercised at every shard count.
const (
	diffBlocks    = 512
	diffBlockSize = 32
	diffMemBytes  = 4 << 10 // 1 KiB per shard at 4 shards
	diffOps       = 1600
)

// runDifferential drives the seeded randomized workload through one
// engine, checking every read against the map model as batches
// complete, and returns the concatenated read results so callers can
// also compare runs against each other.
func runDifferential(t *testing.T, e *Engine, label string) []byte {
	t.Helper()
	// One workload seed for every shard count and shuffle mode: the
	// reference behaviour must not depend on either.
	rng := blockcipher.NewRNGFromString("differential-workload")
	model := make(map[int64]byte)
	var readLog []byte
	done := 0
	for done < diffOps {
		n := 1 + rng.Intn(48)
		if done+n > diffOps {
			n = diffOps - done
		}
		reqs := make([]*Request, n)
		vals := make([]byte, n)
		for i := 0; i < n; i++ {
			addr := rng.Int63n(diffBlocks)
			if rng.Intn(2) == 0 {
				v := byte(rng.Intn(255) + 1)
				vals[i] = v
				reqs[i] = &Request{Op: OpWrite, Addr: addr, Data: bytes.Repeat([]byte{v}, diffBlockSize)}
			} else {
				reqs[i] = &Request{Op: OpRead, Addr: addr}
			}
		}
		if err := e.Batch(reqs); err != nil {
			t.Fatalf("%s: batch at op %d: %v", label, done, err)
		}
		// Check reads against the model with an overlay for
		// writes earlier in the same batch (per-address program
		// order holds inside a batch).
		overlay := make(map[int64]byte, n)
		for i, r := range reqs {
			if r.Op == OpWrite {
				overlay[r.Addr] = vals[i]
				continue
			}
			want := model[r.Addr]
			if v, ok := overlay[r.Addr]; ok {
				want = v
			}
			if !bytes.Equal(r.Result, bytes.Repeat([]byte{want}, diffBlockSize)) {
				t.Fatalf("%s: op %d: read %d returned %v, want fill %d", label, done+i, r.Addr, r.Result[:4], want)
			}
			readLog = append(readLog, r.Result[0])
		}
		for a, v := range overlay {
			model[a] = v
		}
		done += n
	}

	// The geometry must actually have crossed shuffle periods —
	// on every shard, or the period-boundary coverage is
	// imaginary.
	for _, sh := range e.ShardStats() {
		if sh.Shuffles < 2 {
			t.Fatalf("%s: shard %d shuffled only %d times; geometry drifted", label, sh.Shard, sh.Shuffles)
		}
	}
	return readLog
}

// TestDifferentialAgainstMapModel drives the same seeded randomized
// workload (mixed read/write batches of random sizes, duplicate
// addresses allowed) through the engine at shard counts 1, 2 and 4 in
// both shuffle modes, checking every read against the map model as
// batches complete — and then checks the two modes returned exactly
// the same bytes for every read (identical logical results).
func TestDifferentialAgainstMapModel(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			logs := make(map[string][]byte)
			for _, mode := range shuffleModes {
				e, err := New(Options{
					Blocks:            diffBlocks,
					BlockSize:         diffBlockSize,
					MemoryBytes:       diffMemBytes,
					Insecure:          true,
					Seed:              fmt.Sprintf("differential-%d", shards),
					Shards:            shards,
					MonolithicShuffle: mode.monolithic,
				})
				if err != nil {
					t.Fatal(err)
				}
				logs[mode.name] = runDifferential(t, e, mode.name)
				e.Close()
			}
			if !bytes.Equal(logs["incremental"], logs["monolithic"]) {
				t.Fatal("incremental and monolithic shuffle modes returned different read results for the same workload")
			}
		})
	}
}

// TestQuickWriteReadRoundTrip is the testing/quick property: for any
// (address, fill) pair, a write followed by a read through the sharded
// engine returns exactly the written block.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	e, err := New(Options{
		Blocks:      256,
		BlockSize:   16,
		MemoryBytes: 2 << 10,
		Insecure:    true,
		Seed:        "quick-roundtrip",
		Shards:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	f := func(rawAddr uint16, fill byte) bool {
		addr := int64(rawAddr) % 256
		payload := bytes.Repeat([]byte{fill}, 16)
		if err := e.Write(addr, payload); err != nil {
			return false
		}
		got, err := e.Read(addr)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
