// Constant-time mode at the engine level: the same differential
// workload that pins the default engine to the map model must pass
// with ConstantTime on at every shard count, return the same bytes as
// the default mode, and present an identical full device-event trace
// per shard (access AND shuffle traffic — the hardening must not move
// a single device touch).
package engine

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// tracedEngine builds a differential-geometry engine with an
// unfiltered trace recorder on every shard. Within a shard all device
// access is serial, so no synchronisation is needed per recorder.
func tracedEngine(t *testing.T, shards int, ct bool) (*Engine, []*trace.Recorder) {
	t.Helper()
	e, err := New(Options{
		Blocks:       diffBlocks,
		BlockSize:    diffBlockSize,
		MemoryBytes:  diffMemBytes,
		Insecure:     true,
		Seed:         fmt.Sprintf("differential-%d", shards),
		Shards:       shards,
		ConstantTime: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*trace.Recorder, shards)
	for i := 0; i < shards; i++ {
		oram := e.Shard(i).Engine()
		rec := trace.NewRecorder()
		h := rec.Hook()
		oram.Stor().SetHook(h)
		oram.Mem().SetHook(h)
		recs[i] = rec
	}
	return e, recs
}

// TestConstantTimeDifferentialAndTraceParity runs the map-model
// differential workload in both modes at shards 1, 2 and 4, then
// asserts the read results and every shard's complete device-event
// sequence are identical across modes.
func TestConstantTimeDifferentialAndTraceParity(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eDef, recsDef := tracedEngine(t, shards, false)
			logDef := runDifferential(t, eDef, "default")
			eDef.Close()

			eCT, recsCT := tracedEngine(t, shards, true)
			logCT := runDifferential(t, eCT, "constant-time")
			eCT.Close()

			if !bytes.Equal(logDef, logCT) {
				t.Fatal("constant-time mode returned different read results than default mode")
			}
			for s := 0; s < shards; s++ {
				evDef, evCT := recsDef[s].Events(), recsCT[s].Events()
				if len(evDef) != len(evCT) {
					t.Fatalf("shard %d: event counts differ: default %d, ct %d", s, len(evDef), len(evCT))
				}
				if len(evDef) == 0 {
					t.Fatalf("shard %d: no device events recorded", s)
				}
				for i := range evDef {
					if evDef[i] != evCT[i] {
						t.Fatalf("shard %d event %d: default %+v, ct %+v", s, i, evDef[i], evCT[i])
					}
				}
			}
		})
	}
}
