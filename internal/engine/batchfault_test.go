// Regression tests for Batch's partial-scatter path: an Enqueue
// failure mid-scatter must leave un-issued requests' Result fields
// untouched, complete everything already enqueued, and still level
// shard cycle counts afterwards.
package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

var errInjected = errors.New("injected scatter fault")

func TestBatchPartialScatter(t *testing.T) {
	e, err := New(Options{
		Blocks:      256,
		BlockSize:   32,
		MemoryBytes: 4 << 10,
		Insecure:    true,
		Seed:        "partial-scatter",
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Writes before the fault land; everything from the fault on is
	// never issued.
	const total, faultAt = 12, 7
	e.scatterFault = func(i int, r *Request) error {
		if i == faultAt {
			return errInjected
		}
		return nil
	}
	sentinel := []byte("UNTOUCHED-SENTINEL")
	reqs := make([]*Request, total)
	for i := range reqs {
		reqs[i] = &Request{
			Op:     OpWrite,
			Addr:   int64(i),
			Data:   bytes.Repeat([]byte{byte(i + 1)}, 32),
			Result: sentinel, // must survive for un-issued requests
		}
	}
	err = e.Batch(reqs)
	if !errors.Is(err, errInjected) {
		t.Fatalf("Batch err = %v, want the injected fault", err)
	}

	// Issued requests completed: a write's Result is the previous
	// contents (zeros here), not the sentinel. Un-issued requests keep
	// their Result exactly as the caller left it.
	for i, r := range reqs {
		issued := i < faultAt
		if issued && bytes.Equal(r.Result, sentinel) {
			t.Errorf("request %d was issued but its Result was never filled", i)
		}
		if !issued && !bytes.Equal(r.Result, sentinel) {
			t.Errorf("request %d was never issued but its Result was overwritten to %q", i, r.Result)
		}
	}

	// The "never strand what is already enqueued" path must leave the
	// engine leveled even after the partial batch.
	ss := e.ShardStats()
	for _, sh := range ss[1:] {
		if sh.Cycles != ss[0].Cycles {
			t.Fatalf("shard cycle counts unlevel after partial batch: %d vs %d", sh.Cycles, ss[0].Cycles)
		}
	}

	// And the engine keeps serving: issued writes took effect,
	// un-issued ones did not.
	e.scatterFault = nil
	for i := 0; i < total; i++ {
		got, err := e.Read(int64(i))
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		want := make([]byte, 32)
		if i < faultAt {
			want = bytes.Repeat([]byte{byte(i + 1)}, 32)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d = %x, want %x (issued=%v)", i, got[:2], want[:2], i < faultAt)
		}
	}
}

// TestBatchPartialScatterFirstRequest faults at index 0: nothing is
// issued, nothing is kicked, no Result is touched.
func TestBatchPartialScatterFirstRequest(t *testing.T) {
	e, err := New(Options{
		Blocks:      64,
		BlockSize:   32,
		MemoryBytes: 2 << 10,
		Insecure:    true,
		Seed:        "partial-scatter-0",
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.scatterFault = func(i int, r *Request) error { return fmt.Errorf("%w at %d", errInjected, i) }
	sentinel := []byte("S")
	reqs := []*Request{
		{Op: OpRead, Addr: 1, Result: sentinel},
		{Op: OpRead, Addr: 2, Result: sentinel},
	}
	if err := e.Batch(reqs); !errors.Is(err, errInjected) {
		t.Fatalf("Batch err = %v, want the injected fault", err)
	}
	for i, r := range reqs {
		if !bytes.Equal(r.Result, sentinel) {
			t.Errorf("request %d Result overwritten to %q", i, r.Result)
		}
	}
	e.scatterFault = nil
	if _, err := e.Read(1); err != nil {
		t.Fatalf("engine unusable after faulted batch: %v", err)
	}
}
