// Package engine shards one logical H-ORAM block store across S
// independent H-ORAM instances so scheduler cycles scale with cores.
// A single instance serialises every cycle on one goroutine (the
// secure scheduler must observe one serial request stream), which
// caps throughput at one core no matter how well the serving layer
// batches. The engine keeps that invariant *per shard* while letting
// S shards cycle concurrently:
//
//   - the block address space is PRF-partitioned: a keyed pseudorandom
//     permutation of [0,N) is dealt round-robin into S shards, so the
//     shard of an address is secret and the shards are balanced to
//     within one block;
//   - each shard is a ShardBackend — a full H-ORAM stack. In-process
//     shards (New/Restore) own scheduler, reorder buffer, memory tree,
//     storage partitions, devices and clocks, built from a per-shard
//     key derived from the master key (independent sealer nonce
//     streams, independent randomness). Remote shards (NewWithBackends,
//     assembled by internal/cluster) are horamd -shard-serve nodes
//     reached over TCP; ShardConfig derives the options such a node
//     must run with.
//   - each shard owns one scheduler goroutine. Batch scatters a batch
//     into the shards' queues, kicks their schedulers, and gathers:
//     every future resolves before Batch returns, and results land in
//     the caller's requests in submission order.
//
// # Security
//
// Per shard the paper's argument is unchanged: the shard's bus still
// shows one storage load overlapped with exactly c memory paths per
// cycle, whatever the hit/miss mix (§4.2) — the trace tests in this
// package assert it at every shard count.
//
// Sharding on its own, however, would open a channel a single
// instance does not have: shards are separate device stacks, so a
// device-level adversary sees how many cycles each shard runs, and
// with a fixed (even if secret) address→shard map that per-shard
// traffic volume reflects the workload's address collision structure
// — a hot single address drives exactly one shard, a uniform scan
// drives all of them evenly. The PRF partition does NOT fix this:
// logical addresses are exactly what an ORAM must hide, so "which
// shard is busy" must not depend on them.
//
// The engine therefore levels cycle counts at batch boundaries: when
// the last batch in flight resolves, every shard is padded with dummy
// scheduler cycles (horam.PadToCycles — one random prefetch load plus
// c dummy memory paths, bus-indistinguishable from real cycles,
// consuming miss budget and triggering shuffles like real cycles)
// until all shards reach the maximum cumulative cycle count. Batches
// overlapping in flight share one leveling pass — the final batch
// observes the true maximum, and padding only ever raises a shard
// toward it, so per-batch passes would add nothing but extra dummy
// traffic. Whenever the engine is quiescent every shard has run the
// identical number of cycles, so the adversary observes S identical
// traffic volumes —
// exactly the information (total cycle count) a single unsharded
// instance already reveals, and nothing about how requests collided
// across shards. This invariant is GLOBAL, not per-process: with
// remote backends the counts are read and the stragglers padded over
// the wire (CYCLES/PAD), so a quiescent multi-node cluster shows S
// equal per-shard cycle counts exactly as a single process does. The
// obliviousness tests in this package and in internal/cluster assert
// both properties: per-cycle bus shape per shard, and cross-shard
// cycle equality under adversarially skewed workloads.
//
// Residual channel: leveling equalises counts at batch boundaries,
// not the real-time interleaving of per-shard device activity while a
// batch is in flight. The simulator's threat model (recorded
// per-device traces, virtual clocks) has no cross-shard wall-clock
// ordering; a deployment with S physically separate devices should
// drive shards in lockstep cycles if that timing channel matters.
package engine

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// MaxShards bounds the shard count; one goroutine and one simulated
// device pair per shard make larger values a configuration error.
const MaxShards = 256

// ErrClosed is returned by Batch/Read/Write after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures a sharded engine. It is the shared config.Common
// option set (see internal/config for every field and the
// functional-option constructors); the knobs describe the WHOLE
// logical store and the engine splits them across shards. Notes
// specific to this layer:
//
//   - Shards is the shard count S (0 selects 1, bounded by MaxShards);
//     MemoryBytes is divided evenly across shards, and per-shard keys
//     and seeds are derived from Key/Seed.
//   - DataDir enables the durable storage backend: shard i keeps its
//     storage file, generation marker and control snapshot under
//     DataDir/shard-<i>/, and SaveSnapshot maintains the engine
//     manifest at DataDir/engine.snap. New always REINITIALISES the
//     layout; resuming a previous image goes through Restore. Empty
//     keeps the in-memory simulators.
type Options = config.Common

// future completes when the shard's scheduler drains the request it
// tracks. It mirrors core.Future one transport level up: the engine
// queues requests itself now, so futures no longer depend on the
// shard being in-process.
type future struct {
	done chan struct{}
	err  error
}

// shard is one ShardBackend plus its scheduler goroutine and queue.
// The goroutine is the shard's only driver on the hot path: Batch
// only appends to the shard's queue and kicks it, so each backend
// still observes one serial request stream however many callers race
// on the engine.
type shard struct {
	id      int
	backend ShardBackend

	// client is the in-process core.Client behind backend, or nil for
	// a remote shard. Shard() exposes it to stats collection and trace
	// tests; everything on the hot path goes through backend.
	client *core.Client

	// kick wakes the scheduler goroutine; capacity 1 coalesces kicks
	// that arrive while a drain is running without losing any.
	kick chan struct{}
	done chan struct{}

	// qmu guards the queue the engine scatters into — the engine-side
	// reorder buffer feeding the backend one Batch per drain.
	qmu     sync.Mutex
	queue   []*Request
	waiters []*future

	mu        sync.Mutex
	batches   int64
	requests  int64
	padCycles int64 // dummy cycles run by leveling (see Engine.level)
	hist      [NumBuckets]int64

	// tracer tags drain spans with this shard's virtual thread id
	// (shard id + 1); nil when the engine is not being observed.
	tracer *obs.Tracer
}

// enqueue appends one request to the shard's queue and returns its
// future. It cannot fail: requests are validated against the global
// geometry before scatter, and the shard-local geometry is a
// projection of it.
func (s *shard) enqueue(r *Request) *future {
	f := &future{done: make(chan struct{})}
	s.qmu.Lock()
	s.queue = append(s.queue, r)
	s.waiters = append(s.waiters, f)
	s.qmu.Unlock()
	return f
}

// depth reports queued-but-undrained requests (the QueueDepth stat).
func (s *shard) depth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue)
}

// run is the shard's scheduler goroutine: every kick drains whatever
// is queued as one backend batch and completes the futures. Drain
// errors reach the waiters through their futures; drain accounting
// happens only for successful drains and before their futures
// complete, so stats snapshots taken after a finished batch always
// include it.
func (s *shard) run() {
	defer close(s.done)
	for range s.kick {
		s.drainQueue()
	}
}

// drainQueue snapshots the queue and runs it through the backend as
// one batch. Requests enqueued while the drain is running wait for
// the next kick, exactly as the old core reorder-buffer flush did.
func (s *shard) drainQueue() {
	s.qmu.Lock()
	reqs, futs := s.queue, s.waiters
	s.queue, s.waiters = nil, nil
	s.qmu.Unlock()
	if len(reqs) == 0 {
		return
	}
	sp := s.tracer.Begin("drain", s.id+1)
	err := s.backend.Batch(reqs)
	sp.End(obs.Arg{Key: "size", Val: int64(len(reqs))})
	if err == nil {
		s.recordDrain(len(reqs))
	}
	for _, f := range futs {
		f.err = err
		close(f.done)
	}
}

// recordDrain is the shard's per-drain accounting.
func (s *shard) recordDrain(n int) {
	s.mu.Lock()
	s.batches++
	s.requests += int64(n)
	s.hist[BucketFor(n)]++
	s.mu.Unlock()
}

// Engine is a sharded H-ORAM session. All methods are safe for
// concurrent use; concurrent Batch calls to the same shard coalesce
// into shared scheduler drains.
type Engine struct {
	blocks    int64
	blockSize int
	shards    []*shard
	shardOf   []int32 // global address -> shard index
	local     []int64 // global address -> shard-local address

	// Persistence wiring (zero-valued for pure simulations).
	dataDir   string
	manifest  snapshot.Manifest  // geometry echo; persisted at each SaveSnapshot
	manSealer blockcipher.Sealer // seals the manifest container payload

	// pause quiesces the engine: every Batch holds it read-locked for
	// its whole lifetime (scatter, gather, level), so SaveSnapshot's
	// write lock waits for in-flight batches and blocks new ones while
	// the image is taken.
	pause sync.RWMutex

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	pending  int // batches in flight; the last one out levels

	// scatterFault, when set, is consulted before each enqueue during
	// Batch's scatter phase. Tests inject mid-scatter failures with it;
	// nil in production (enqueue cannot fail after validate).
	scatterFault func(i int, r *Request) error

	// Observability wiring (Observe, see obs.go). Nil instruments are
	// no-ops, so the unobserved hot path pays nothing but nil checks.
	tracer     *obs.Tracer
	obsBatches *obs.Counter
	obsOps     *obs.Counter
	obsLevels  *obs.Counter
	batchHist  *obs.Histogram
	levelHist  *obs.Histogram
}

// Request and Op mirror the core types; engine callers need not import
// core for batch submission.
type Request = core.Request

// Request operations.
const (
	OpRead  = core.OpRead
	OpWrite = core.OpWrite
)

// resolveOptions fills defaults and validates through the shared
// config rules, plus the engine-specific shard bounds.
func resolveOptions(opts Options) (Options, error) {
	opts = opts.WithDefaults()
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if err := opts.Validate("engine"); err != nil {
		return opts, err
	}
	if opts.Shards < 1 || opts.Shards > MaxShards {
		return opts, fmt.Errorf("engine: Shards %d out of [1,%d]", opts.Shards, MaxShards)
	}
	if int64(opts.Shards) > opts.Blocks {
		return opts, fmt.Errorf("engine: %d shards for %d blocks; every shard needs at least one block", opts.Shards, opts.Blocks)
	}
	if opts.MemoryBytes/int64(opts.Shards) <= 0 {
		return opts, fmt.Errorf("engine: MemoryBytes %d too small for %d shards", opts.MemoryBytes, opts.Shards)
	}
	return opts, nil
}

// shardPlan is the deterministic derivation every assembly path (and
// every -shard-serve node, via ShardConfig) must agree on: the PRF
// partition of the global address space and the per-shard option
// sets, all derived from the global options alone.
type shardPlan struct {
	prf       *blockcipher.PRF // nil in insecure mode
	shardOf   []int32
	local     []int64
	counts    []int64
	shardOpts []core.Options
}

// planShards computes the plan for resolved options.
//
// Per-shard key material: with a real key, shard keys are PRF
// derivations of the master key, so every shard gets an independent
// sealer nonce stream and independent randomness — sharing the raw
// master key across shards would reuse CTR keystreams. Insecure mode
// derives per-shard seeds from the engine seed instead. The partition
// derives from the epoch-INDEPENDENT base seed: it must come out
// identical on every restore or the shard-local address spaces would
// scramble.
func planShards(opts Options) (*shardPlan, error) {
	var prf *blockcipher.PRF
	seed := opts.Seed
	if opts.Insecure {
		if seed == "" {
			seed = "engine-insecure"
		}
	} else {
		var err error
		prf, err = blockcipher.NewPRF(opts.Key)
		if err != nil {
			return nil, err
		}
		if seed == "" {
			seed = string(prf.Derive("engine-seed", 32))
		}
	}

	// PRF partition: deal a keyed pseudorandom permutation of the
	// address space round-robin into the shards. Balanced to within one
	// block, and the address->shard map is secret (derived from the
	// key/seed), never from address arithmetic an adversary could
	// correlate with workload structure.
	p := &shardPlan{
		prf:     prf,
		shardOf: make([]int32, opts.Blocks),
		local:   make([]int64, opts.Blocks),
		counts:  make([]int64, opts.Shards),
	}
	partRNG := blockcipher.NewRNGFromString(seed + "/engine-partition")
	perm := partRNG.Perm(int(opts.Blocks))
	for i, addr := range perm {
		s := i % opts.Shards
		p.shardOf[addr] = int32(s)
		p.local[addr] = int64(i / opts.Shards)
		p.counts[s]++
	}

	memPerShard := opts.MemoryBytes / int64(opts.Shards)
	p.shardOpts = make([]core.Options, opts.Shards)
	for s := 0; s < opts.Shards; s++ {
		p.shardOpts[s] = core.Options{
			Blocks:            p.counts[s],
			BlockSize:         opts.BlockSize,
			MemoryBytes:       memPerShard,
			Insecure:          opts.Insecure,
			ShuffleRatio:      opts.ShuffleRatio,
			MonolithicShuffle: opts.MonolithicShuffle,
			Stages:            opts.Stages,
			SealWorkers:       opts.SealWorkers,
			ConstantTime:      opts.ConstantTime,
			FsyncEvery:        opts.FsyncEvery,
		}
		if opts.DataDir != "" {
			p.shardOpts[s].DataDir = shardDir(opts.DataDir, s)
		}
		if opts.Insecure {
			p.shardOpts[s].Seed = fmt.Sprintf("%s/shard-%d", seed, s)
		} else {
			p.shardOpts[s].Key = prf.Derive(fmt.Sprintf("engine-shard-key-%d", s), 32)
		}
	}
	return p, nil
}

// ShardConfig derives the options a horamd -shard-serve node must run
// as shard index of a cluster whose gateway runs with opts: the
// shard's slice of the PRF partition (Blocks), its share of the
// memory budget, its derived key material, and the cluster identity
// echoed in its manifest — so a node launched with drifted global
// geometry, options or seed is refused at gateway assembly, and a
// durable node directory can never be resumed as a different shard.
// DataDir is cleared: where (and whether) the node persists is the
// node's own concern, not part of the cluster-wide derivation.
func ShardConfig(opts Options, index int) (Options, error) {
	opts, err := resolveOptions(opts)
	if err != nil {
		return Options{}, err
	}
	if index < 0 || index >= opts.Shards {
		return Options{}, fmt.Errorf("engine: ShardConfig(%d): index out of [0,%d)", index, opts.Shards)
	}
	plan, err := planShards(opts)
	if err != nil {
		return Options{}, err
	}
	out := plan.shardOpts[index]
	out.Shards = 1
	out.ClusterShards = opts.Shards
	out.ShardIndex = index
	out.DataDir = ""
	return out, nil
}

// New validates the options, PRF-partitions the address space, builds
// the S in-process shard instances and starts their scheduler
// goroutines. With DataDir set the durable layout is reinitialised
// from scratch; resuming a persisted image goes through Restore.
func New(opts Options) (*Engine, error) {
	opts, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	return assemble(opts, false)
}

// NewWithBackends assembles an engine over already-live shard
// backends — internal/cluster's remote shards, or any mix of
// transports a test supplies. The options describe the same GLOBAL
// geometry a single-process engine would run with; the backends must
// match the PRF partition's per-shard block counts exactly (shard i
// of a cluster serves plan slice i — see ShardConfig) and must agree
// on epoch and checkpoint, or assembly is refused. DataDir must be
// empty: remote shards own their durability node-side, and the engine
// manifest file only exists for in-process layouts.
func NewWithBackends(opts Options, backends []ShardBackend) (*Engine, error) {
	opts, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if opts.DataDir != "" {
		return nil, errors.New("engine: NewWithBackends with Options.DataDir: remote shards persist node-side; the engine manifest is only maintained for in-process layouts")
	}
	if len(backends) != opts.Shards {
		return nil, fmt.Errorf("engine: %d backends for %d shards", len(backends), opts.Shards)
	}
	plan, err := planShards(opts)
	if err != nil {
		return nil, err
	}
	for i, b := range backends {
		if got := b.Blocks(); got != plan.counts[i] {
			return nil, fmt.Errorf("engine: backend %d serves %d blocks, the partition assigns it %d (node launched with drifted global geometry?)", i, got, plan.counts[i])
		}
	}
	return build(opts, plan, backends)
}

// assemble builds the engine from resolved options over in-process
// shards; restoring selects RestoreCheckpoint (resume each shard from
// its snapshot at one consistent cut) over open (fresh layout).
func assemble(opts Options, restoring bool) (*Engine, error) {
	plan, err := planShards(opts)
	if err != nil {
		return nil, err
	}
	if opts.DataDir != "" && !restoring {
		// A fresh engine reinitialises every shard layout; a manifest
		// from a previous instance must not survive to steer a later
		// load-on-start probe into restoring over it.
		if err := os.Remove(manifestPath(opts.DataDir)); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}

	locals := make([]*localShard, opts.Shards)
	for s := range locals {
		locals[s] = &localShard{opts: plan.shardOpts[s]}
	}

	// Restores must land every shard on ONE consistent checkpoint cut
	// with ONE fresh boot epoch, even when a crash interrupted a
	// previous checkpoint or restore loop and left the per-shard
	// snapshots staggered: the cut is the newest checkpoint every shard
	// still has (current or rotated-previous copy), and the epoch is
	// one past the highest any shard has ever used, so no shard can
	// replay a nonce/RNG stream.
	var targetCkpt, targetEpoch uint64
	if restoring {
		for s, l := range locals {
			epoch, ckpt, err := l.Peek()
			if err != nil {
				return nil, fmt.Errorf("engine: shard %d: %w", s, err)
			}
			if s == 0 || ckpt < targetCkpt {
				targetCkpt = ckpt
			}
			if epoch >= targetEpoch {
				targetEpoch = epoch + 1
			}
		}
	}

	backends := make([]ShardBackend, opts.Shards)
	for s, l := range locals {
		var err error
		if restoring {
			err = l.RestoreCheckpoint(targetCkpt, targetEpoch)
		} else {
			err = l.open()
		}
		if err != nil {
			// Unwind the shards already open, or their resources leak
			// on every failed construction attempt.
			for _, prev := range locals[:s] {
				prev.Close() //horam:errok unwinding a failed construction; the shard-open error is the one to surface
			}
			return nil, fmt.Errorf("engine: shard %d: %w", s, err)
		}
		backends[s] = l
	}
	return build(opts, plan, backends)
}

// build wires live backends into an engine: one scheduler goroutine
// per shard, then the manifest echo (which also verifies cross-shard
// epoch/checkpoint agreement, in-process or over the wire).
func build(opts Options, plan *shardPlan, backends []ShardBackend) (*Engine, error) {
	e := &Engine{
		blocks:    opts.Blocks,
		blockSize: opts.BlockSize,
		dataDir:   opts.DataDir,
		shardOf:   plan.shardOf,
		local:     plan.local,
	}
	for i, b := range backends {
		sh := &shard{
			id:      i,
			backend: b,
			kick:    make(chan struct{}, 1),
			done:    make(chan struct{}),
		}
		if l, ok := b.(*localShard); ok {
			sh.client = l.client
		}
		go sh.run()
		e.shards = append(e.shards, sh)
	}
	if err := e.wireManifest(opts, plan.prf); err != nil {
		e.Close() //horam:errok unwinding a failed construction; the manifest error is the one to surface
		return nil, err
	}
	return e, nil
}

// Blocks returns the logical data set size N in blocks.
func (e *Engine) Blocks() int64 { return e.blocks }

// BlockSize returns the block size in bytes.
func (e *Engine) BlockSize() int { return e.blockSize }

// Shards returns the shard count S.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardOf returns the shard serving a global address. It panics on an
// out-of-range address.
func (e *Engine) ShardOf(addr int64) int {
	if addr < 0 || addr >= e.blocks {
		panic(fmt.Sprintf("engine: ShardOf(%d): address out of range [0,%d)", addr, e.blocks))
	}
	return int(e.shardOf[addr])
}

// Shard exposes shard i's underlying in-process client for stats
// collection and adversary hooks (trace tests). It panics on an
// out-of-range index, and on a shard that is not in-process — a
// remote shard's H-ORAM instance lives in another process and has no
// client here. Do not drive the client directly while the engine is
// serving traffic.
func (e *Engine) Shard(i int) *core.Client {
	if i < 0 || i >= len(e.shards) {
		panic(fmt.Sprintf("engine: Shard(%d): index out of range [0,%d)", i, len(e.shards)))
	}
	if e.shards[i].client == nil {
		panic(fmt.Sprintf("engine: Shard(%d): shard is not in-process (remote backend)", i))
	}
	return e.shards[i].client
}

// Backend exposes shard i's transport backend. It panics on an
// out-of-range index.
func (e *Engine) Backend(i int) ShardBackend {
	if i < 0 || i >= len(e.shards) {
		panic(fmt.Sprintf("engine: Backend(%d): index out of range [0,%d)", i, len(e.shards)))
	}
	return e.shards[i].backend
}

// validate rejects a malformed request before anything is enqueued, so
// one bad request cannot strand a half-scattered batch.
func (e *Engine) validate(r *Request) error {
	if r == nil {
		return errors.New("engine: nil request")
	}
	if r.Addr < 0 || r.Addr >= e.blocks {
		return fmt.Errorf("engine: address %d out of range [0,%d)", r.Addr, e.blocks)
	}
	if r.Op == OpWrite && len(r.Data) != e.blockSize {
		return fmt.Errorf("engine: write payload %d bytes, want %d", len(r.Data), e.blockSize)
	}
	return nil
}

// Batch runs the requests as one logical batch: it scatters them to
// the owning shards' queues (addresses translated to shard space),
// kicks every involved scheduler, gathers all futures, and levels
// cycle counts across the shards (see the package doc) before
// returning. Results land in each request's Result field in
// submission order. Requests for different shards execute
// concurrently; requests for one shard keep their submission order, so
// per-address read-your-writes semantics match the single-instance
// engine.
func (e *Engine) Batch(reqs []*Request) error {
	for _, r := range reqs {
		if err := e.validate(r); err != nil {
			return err
		}
	}
	// Held read-locked for the whole batch (scatter, gather, level):
	// SaveSnapshot write-locks it to quiesce the engine.
	e.pause.RLock()
	defer e.pause.RUnlock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.inflight.Add(1)
	e.pending++
	e.mu.Unlock()
	defer e.inflight.Done()

	// Instrumentation: count the accepted batch, time it when a
	// histogram is wired, span it when tracing. All nil-safe no-ops on
	// an unobserved engine.
	var obsStart time.Time
	if e.batchHist != nil {
		obsStart = time.Now()
	}
	sp := e.tracer.Begin("batch", 0)

	// Scatter: shadow requests carry the shard-local addresses so the
	// caller's requests are never mutated.
	shadows := make([]*Request, len(reqs))
	futures := make([]*future, len(reqs))
	kicked := make(map[int]bool, len(e.shards))
	var firstErr error
	for i, r := range reqs {
		sh := e.shards[e.shardOf[r.Addr]]
		shadows[i] = &Request{Op: r.Op, Addr: e.local[r.Addr], Data: r.Data, User: r.User}
		if e.scatterFault != nil {
			if err := e.scatterFault(i, r); err != nil {
				// Never strand what is already enqueued: requests
				// before i stay issued and are gathered below, requests
				// from i on are never issued and their futures stay
				// nil.
				firstErr = fmt.Errorf("engine: shard %d: %w", sh.id, err)
				break
			}
		}
		futures[i] = sh.enqueue(shadows[i])
		kicked[sh.id] = true
	}
	for id := range kicked {
		select {
		case e.shards[id].kick <- struct{}{}:
		default: // a kick is already pending; the drain will see us
		}
	}

	// Gather: wait for every issued future, then copy results back in
	// submission order. Un-issued requests (nil future after a partial
	// scatter) are skipped entirely: their Result fields must stay
	// exactly as the caller left them, so a caller can distinguish
	// "executed" from "never issued" after a failed batch.
	for i, f := range futures {
		if f == nil {
			continue
		}
		<-f.done
		if f.err != nil && firstErr == nil {
			firstErr = f.err
		}
		reqs[i].Result = shadows[i].Result
		reqs[i].SubmitSim = shadows[i].SubmitSim
		reqs[i].DoneSim = shadows[i].DoneSim
	}

	// Level even when the batch failed: whatever real cycles did run
	// must still be masked. Concurrent batches amortize the pass: only
	// the last batch in flight runs it — that batch observes the true
	// maximum, and padding only ever raises counts toward the target,
	// so skipped intermediate passes never leave a shard overshooting.
	// Whenever the engine goes quiescent the final batch has leveled,
	// which is the only point the adversary model compares counts at.
	e.mu.Lock()
	e.pending--
	last := e.pending == 0
	e.mu.Unlock()
	if last {
		if err := e.level(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.observeBatch(len(reqs), obsStart, sp)
	return firstErr
}

// level pads every shard with dummy scheduler cycles up to the current
// maximum cumulative cycle count, so per-shard traffic volume is
// workload-independent (see the package doc). With remote backends
// both the reads and the padding go over the wire (CYCLES/PAD) — the
// leveling invariant is cluster-global. Concurrent batches may
// interleave their level passes with each other's drains; padding only
// ever raises a shard toward the observed maximum, which real drains
// alone can raise, so counts converge to equality whenever the engine
// is quiescent — the last batch to finish observes the true maximum
// and levels everything to it.
func (e *Engine) level() error {
	e.obsLevels.Inc()
	if len(e.shards) == 1 {
		return nil // a single instance has no cross-shard channel
	}
	var obsStart time.Time
	if e.levelHist != nil {
		obsStart = time.Now()
	}
	sp := e.tracer.Begin("level", 0)
	counts := make([]int64, len(e.shards))
	var target int64
	defer func() {
		if e.levelHist != nil {
			e.levelHist.ObserveDuration(time.Since(obsStart))
		}
		sp.End(obs.Arg{Key: "target", Val: target})
	}()
	for i, sh := range e.shards {
		n, err := sh.backend.Cycles()
		if err != nil {
			return fmt.Errorf("engine: shard %d: leveling: %w", sh.id, err)
		}
		counts[i] = n
		if n > target {
			target = n
		}
	}
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		if counts[i] >= target {
			continue // may still be raised by a concurrent drain; that batch levels
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			padded, err := sh.backend.PadToCycles(target)
			if padded > 0 {
				sh.mu.Lock()
				sh.padCycles += padded
				sh.mu.Unlock()
			}
			if err != nil {
				errs[i] = fmt.Errorf("engine: shard %d: leveling: %w", sh.id, err)
			}
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Cycles returns the engine's leveled cumulative cycle count: the
// maximum across shards, which every shard matches whenever the
// engine is quiescent. It backs the CYCLES shard-control verb a
// -shard-serve node answers, so a gateway can read the count this
// engine's shard(s) have run.
func (e *Engine) Cycles() (int64, error) {
	var max int64
	for _, sh := range e.shards {
		n, err := sh.backend.Cycles()
		if err != nil {
			return 0, fmt.Errorf("engine: shard %d: %w", sh.id, err)
		}
		if n > max {
			max = n
		}
	}
	return max, nil
}

// PadToCycles pads every shard with dummy cycles up to target (a
// no-op for shards already there) and returns the total padded. It
// backs the PAD shard-control verb: a gateway levels a cluster by
// reading every node's CYCLES and padding the stragglers to the
// maximum, exactly as Engine.level does in-process.
func (e *Engine) PadToCycles(target int64) (int64, error) {
	e.pause.RLock()
	defer e.pause.RUnlock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	e.mu.Unlock()
	var total int64
	for _, sh := range e.shards {
		padded, err := sh.backend.PadToCycles(target)
		if padded > 0 {
			sh.mu.Lock()
			sh.padCycles += padded
			sh.mu.Unlock()
			total += padded
		}
		if err != nil {
			return total, fmt.Errorf("engine: shard %d: %w", sh.id, err)
		}
	}
	return total, nil
}

// Read implements core.Store.
func (e *Engine) Read(addr int64) ([]byte, error) {
	r := &Request{Op: OpRead, Addr: addr}
	if err := e.Batch([]*Request{r}); err != nil {
		return nil, err
	}
	return r.Result, nil
}

// Write implements core.Store.
func (e *Engine) Write(addr int64, data []byte) error {
	return e.Batch([]*Request{{Op: OpWrite, Addr: addr, Data: data}})
}

// Close waits for in-flight batches, stops the shard scheduler
// goroutines and releases the shards' backends (durable resources for
// in-process shards, connections for remote ones). It does not
// snapshot; callers that want the latest control state persisted call
// SaveSnapshot first. Batch calls after Close return ErrClosed. Safe
// to call more than once; the returned error is the join of the
// shards' backend-release failures (nil for a pure simulation, and
// nil on repeat calls — resources are already gone).
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		for _, sh := range e.shards {
			<-sh.done
		}
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
	for _, sh := range e.shards {
		close(sh.kick)
	}
	var err error
	for _, sh := range e.shards {
		<-sh.done
		err = errors.Join(err, sh.backend.Close())
	}
	return err
}

// Summary aggregates scheme counters across shards. SimTime is the
// MAX of the shard clocks, not the sum: shards model independent
// hardware running concurrently, so the batch of work is done when the
// slowest shard is.
type Summary struct {
	Shards   int
	Requests int64
	Hits     int64
	Misses   int64
	Shuffles int64
	Cycles   int64
	Batches  int64 // per-shard scheduler drains, summed
	Padded   int64 // leveling dummy cycles, summed (subset of Cycles)
	// Quanta sums the shards' incremental shuffle quanta; MaxCycleTime
	// is the costliest single scheduler cycle on any shard — the
	// deamortization bound (huge in monolithic mode, O(one partition)
	// in incremental mode).
	Quanta       int64
	MaxCycleTime time.Duration
	SimTime      time.Duration
}

// Stats returns the aggregate counters.
func (e *Engine) Stats() Summary {
	sum := Summary{Shards: len(e.shards)}
	for _, sh := range e.shards {
		cs := sh.backend.Stats()
		sum.Requests += cs.Requests
		sum.Hits += cs.Hits
		sum.Misses += cs.Misses
		sum.Shuffles += cs.Shuffles
		sum.Cycles += cs.Cycles
		sum.Quanta += cs.ShuffleQuanta
		if cs.MaxCycleTime > sum.MaxCycleTime {
			sum.MaxCycleTime = cs.MaxCycleTime
		}
		if cs.SimulatedTime > sum.SimTime {
			sum.SimTime = cs.SimulatedTime
		}
		sh.mu.Lock()
		sum.Batches += sh.batches
		sum.Padded += sh.padCycles
		sh.mu.Unlock()
	}
	return sum
}

// ShardStats is one shard's serving snapshot: its queue depth, its
// scheduler-drain histogram and its scheme counters.
type ShardStats struct {
	Shard      int
	Blocks     int64
	QueueDepth int   // requests enqueued but not yet drained
	Batches    int64 // scheduler drains executed
	Requests   int64 // logical requests drained
	MeanBatch  float64
	Hist       [NumBuckets]int64 // drains by size bucket
	Cycles     int64
	PadCycles  int64 // leveling dummy cycles (subset of Cycles)
	Hits       int64
	Misses     int64
	Shuffles   int64
	// ShuffleQuanta counts incremental shuffle quanta executed;
	// MaxCycleTime is the shard's costliest single scheduler cycle,
	// shuffle work included.
	ShuffleQuanta int64
	MaxCycleTime  time.Duration
	SimTime       time.Duration
}

// ShardStats returns a per-shard snapshot, indexed by shard id.
func (e *Engine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	e.ShardStatsInto(out)
	return out
}

// ShardStatsInto fills out (which must hold exactly Shards() entries)
// with the per-shard snapshot — the allocation-free variant backing
// the STATS line builder, which reuses one slice across polls.
func (e *Engine) ShardStatsInto(out []ShardStats) {
	if len(out) != len(e.shards) {
		panic(fmt.Sprintf("engine: ShardStatsInto: %d entries for %d shards", len(out), len(e.shards)))
	}
	for i, sh := range e.shards {
		cs := sh.backend.Stats()
		sh.mu.Lock()
		st := ShardStats{
			Shard:         i,
			Blocks:        sh.backend.Blocks(),
			QueueDepth:    sh.depth(),
			Batches:       sh.batches,
			Requests:      sh.requests,
			Hist:          sh.hist,
			Cycles:        cs.Cycles,
			PadCycles:     sh.padCycles,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Shuffles:      cs.Shuffles,
			ShuffleQuanta: cs.ShuffleQuanta,
			MaxCycleTime:  cs.MaxCycleTime,
			SimTime:       cs.SimulatedTime,
		}
		sh.mu.Unlock()
		if st.Batches > 0 {
			st.MeanBatch = float64(st.Requests) / float64(st.Batches)
		}
		out[i] = st
	}
}
