// Observability wiring for the sharded engine: metric registration
// with the leak-audit declarations, and the request-path tracer hooks.
//
// What may be Public here is exactly what the leveling argument in
// the package doc makes workload-independent: per-shard cumulative
// cycle counts are leveled at batch boundaries, and the deamortized
// shuffle schedule (shuffles, quanta) is a deterministic function of
// the cycle index, so at quiescence all of them are functions of the
// one public quantity a single unsharded instance already reveals.
// Per-shard REQUEST routing (batches, requests, queue depth, the
// real-vs-pad cycle split) reflects the workload's address collision
// structure — the very channel leveling exists to close — and is
// deliberately absent: those numbers stay on the trusted STATS
// surface only.
package engine

import (
	"strconv"
	"time"

	"repro/internal/blockcipher"
	"repro/internal/obs"
)

// Observe registers the engine's metrics on reg and wires tr into the
// request path (batch, level and drain spans; per-shard quantum spans
// via core/horam). Either argument may be nil. Call once, before the
// engine serves traffic; registering the same engine on the same
// registry twice panics (duplicate series), exactly like any other
// misregistration.
func (e *Engine) Observe(reg *obs.Registry, tr *obs.Tracer) {
	e.tracer = tr
	var quantum *obs.Histogram
	if reg != nil {
		e.obsBatches = reg.Counter("horam_engine_batches_total",
			"logical batches submitted to the engine",
			obs.Public("one increment per client Batch call; arrival counts are wire-visible to the adversary"))
		e.obsOps = reg.Counter("horam_engine_ops_total",
			"logical read/write requests submitted",
			obs.Public("request count is the workload size the adversary model always grants; nothing about addresses"))
		e.obsLevels = reg.Counter("horam_engine_level_passes_total",
			"cross-shard cycle leveling passes",
			obs.Public("one pass per batch quiescence point; follows from the wire-visible arrival pattern, not from addresses"))
		e.batchHist = reg.Histogram("horam_engine_batch_seconds",
			"wall-clock latency of Engine.Batch",
			obs.Timing("wall-clock measurement; covered by the PR 7 timing gate, not snapshot equality"),
			obs.DurationBounds())
		e.levelHist = reg.Histogram("horam_engine_level_seconds",
			"wall-clock latency of a leveling pass",
			obs.Timing("wall-clock measurement"),
			obs.DurationBounds())
		quantum = reg.Histogram("horam_shuffle_quantum_seconds",
			"wall-clock duration of one incremental shuffle quantum",
			obs.Timing("wall-clock measurement"),
			obs.DurationBounds())
		for i, sh := range e.shards {
			label := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
			backend := sh.backend
			reg.GaugeFunc("horam_shard_cycles",
				"cumulative scheduler cycles run by the shard (dummy leveling cycles included)",
				obs.Public("leveled at batch boundaries: equal across shards at quiescence, so it reveals only the global cycle count a single instance already shows"),
				func() int64 {
					n, err := backend.Cycles()
					if err != nil {
						return -1
					}
					return n
				}, label)
			reg.GaugeFunc("horam_shard_shuffles",
				"completed shuffle periods on the shard",
				obs.Public("the shuffle schedule is a deterministic function of the cycle index (PR 4), which is leveled"),
				func() int64 { return backend.Stats().Shuffles }, label)
			reg.GaugeFunc("horam_shard_quanta",
				"incremental shuffle quanta executed on the shard",
				obs.Public("quantum schedule is a deterministic function of the cycle index, which is leveled"),
				func() int64 { return backend.Stats().ShuffleQuanta }, label)
		}
		reg.GaugeFunc("horam_sealer_sealed_bytes",
			"plaintext bytes sealed, process-wide",
			obs.Timing("process-global throughput total (accumulates across every sealer in the process); telemetry, not a per-workload observable"),
			func() int64 { sealed, _ := blockcipher.Throughput(); return sealed })
		reg.GaugeFunc("horam_sealer_opened_bytes",
			"sealed bytes opened, process-wide",
			obs.Timing("process-global throughput total"),
			func() int64 { _, opened := blockcipher.Throughput(); return opened })
	}
	for i, sh := range e.shards {
		sh.tracer = tr
		if sh.client != nil {
			sh.client.SetObs(tr, i+1, quantum)
		}
	}
}

// observeBatch is Batch's instrumentation epilogue.
func (e *Engine) observeBatch(n int, start time.Time, sp obs.Span) {
	e.obsBatches.Inc()
	e.obsOps.Add(int64(n))
	if e.batchHist != nil {
		e.batchHist.ObserveDuration(time.Since(start))
	}
	sp.End(obs.Arg{Key: "size", Val: int64(n)})
}
