// Kill/resume differential test for the deamortized shuffle: the
// engine is snapshotted and torn down at random batch boundaries —
// including points where shards still hold in-flight shuffle quanta —
// and resumed from disk, while every read keeps being checked against
// the map model. A quiesce that lands mid-shuffle must finish the
// pending quanta under the existing generation markers, so the
// persisted image is always at a period boundary and a resume is
// indistinguishable from an uninterrupted run.
package engine

import (
	"bytes"
	"testing"

	"repro/internal/blockcipher"
)

func TestKillResumeMidShuffleDifferential(t *testing.T) {
	const (
		blocks    = 512
		blockSize = 32
		shards    = 2
		rounds    = 120
	)
	opts := Options{
		Blocks:      blocks,
		BlockSize:   blockSize,
		MemoryBytes: 4 << 10, // tiny trees: shuffles every few batches
		Insecure:    true,
		Seed:        "kill-resume",
		Shards:      shards,
		DataDir:     t.TempDir(),
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { e.Close() }()

	rng := blockcipher.NewRNGFromString("kill-resume-wl")
	model := make(map[int64]byte)
	midShuffleKills, cleanKills := 0, 0
	for round := 0; round < rounds; round++ {
		n := 1 + rng.Intn(24)
		reqs := make([]*Request, n)
		vals := make([]byte, n)
		for i := range reqs {
			addr := rng.Int63n(blocks)
			if rng.Intn(2) == 0 {
				v := byte(rng.Intn(255) + 1)
				vals[i] = v
				reqs[i] = &Request{Op: OpWrite, Addr: addr, Data: bytes.Repeat([]byte{v}, blockSize)}
			} else {
				reqs[i] = &Request{Op: OpRead, Addr: addr}
			}
		}
		if err := e.Batch(reqs); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		overlay := make(map[int64]byte, n)
		for i, r := range reqs {
			if r.Op == OpWrite {
				overlay[r.Addr] = vals[i]
				continue
			}
			want := model[r.Addr]
			if v, ok := overlay[r.Addr]; ok {
				want = v
			}
			if !bytes.Equal(r.Result, bytes.Repeat([]byte{want}, blockSize)) {
				t.Fatalf("round %d: read %d returned %d, want %d", round, r.Addr, r.Result[0], want)
			}
		}
		for a, v := range overlay {
			model[a] = v
		}

		// Kill/resume at random boundaries, preferring moments where a
		// shard is mid-shuffle so the quiesce-finishes-the-shuffle path
		// is the one exercised.
		pending := false
		for i := 0; i < shards; i++ {
			if e.Shard(i).Engine().ShufflePending() {
				pending = true
			}
		}
		if pending || rng.Intn(12) == 0 {
			if err := e.SaveSnapshot(); err != nil {
				t.Fatalf("round %d: snapshot (pending=%v): %v", round, pending, err)
			}
			e.Close()
			if e, err = Restore(opts); err != nil {
				t.Fatalf("round %d: restore (pending=%v): %v", round, pending, err)
			}
			if pending {
				midShuffleKills++
				// The capture must have finished the in-flight period:
				// a resumed shard never holds pending quanta.
				for i := 0; i < shards; i++ {
					if e.Shard(i).Engine().ShufflePending() {
						t.Fatalf("round %d: shard %d resumed with a shuffle still pending", round, i)
					}
				}
			} else {
				cleanKills++
			}
		}
	}
	if midShuffleKills == 0 {
		t.Fatal("no kill landed mid-shuffle; shrink the memory tier or batch size so the regression actually covers the quiesce path")
	}
	if cleanKills == 0 {
		t.Log("note: every kill landed mid-shuffle; clean-boundary path covered by persist tests")
	}

	// Full read-back through the final resumed engine.
	addrs := make([]int64, blocks)
	for i := range addrs {
		addrs[i] = int64(i)
	}
	reqs := make([]*Request, blocks)
	for i, a := range addrs {
		reqs[i] = &Request{Op: OpRead, Addr: a}
	}
	if err := e.Batch(reqs); err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if !bytes.Equal(r.Result, bytes.Repeat([]byte{model[int64(i)]}, blockSize)) {
			t.Fatalf("final read-back: block %d is %d, want %d", i, r.Result[0], model[int64(i)])
		}
	}
	t.Logf("survived %d mid-shuffle and %d clean kill/resume cycles", midShuffleKills, cleanKills)
}
