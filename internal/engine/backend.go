// The shard-transport seam. Historically the engine hard-coded
// []*core.Client — every shard was an in-process H-ORAM instance — so
// "scatter a batch, level cycle counts, checkpoint every shard" was
// welded to one address space. ShardBackend splits the scatter/gather
// and persist coordination from the transport: the engine speaks this
// interface only, and a shard may be the same in-process core.Client
// as before (localShard, extracted here, behavior-identical) or a
// horamd -shard-serve node on the far end of a TCP connection
// (internal/cluster's remote backend, speaking the CYCLES/PAD/
// CHECKPT/PEEK shard-control verbs).
package engine

import (
	"errors"

	"repro/internal/core"
)

// ShardBackend is one shard of a sharded engine: a full H-ORAM
// instance the engine drains batches into, levels, and checkpoints.
// Implementations must be safe for the engine's access pattern — one
// scheduler goroutine calling Batch, with Cycles/PadToCycles/Stats/
// SaveSnapshotAt called only between drains (scatter never touches
// the backend; the engine queues requests itself).
type ShardBackend interface {
	// Blocks is the shard-local address-space size; the engine
	// cross-checks it against its PRF partition at assembly.
	Blocks() int64
	// Batch runs the shard-local requests as one scheduler batch;
	// results land in each request's Result field in submission order.
	Batch(reqs []*Request) error
	// Cycles returns the shard's cumulative scheduler cycle count —
	// the quantity the engine levels across shards. Remote backends
	// fetch it over the wire (CYCLES), so it can fail.
	Cycles() (int64, error)
	// PadToCycles runs dummy cycles until the cumulative count reaches
	// target and returns how many were run (PAD over the wire).
	PadToCycles(target int64) (int64, error)
	// Stats returns the shard's scheme counters. Remote backends
	// reconstruct them from the node's STATS line; fields the wire
	// protocol does not carry stay zero.
	Stats() core.Stats
	// SaveSnapshotAt checkpoints the shard's control state at an
	// explicit lifetime number (CHECKPT over the wire), so the engine
	// can drive every shard to ONE aligned cut.
	SaveSnapshotAt(checkpoint uint64) error
	// Peek reports the shard's key-derivation epoch and lifetime
	// checkpoint counter without disturbing it (PEEK over the wire).
	// The engine refuses to assemble shards whose epochs or
	// checkpoints disagree — the directory (or cluster) would mix
	// state from different checkpoint cuts.
	Peek() (epoch, checkpoint uint64, err error)
	// RestoreCheckpoint re-opens the shard at the given checkpoint cut
	// and boot epoch. Only in-process shards support it: a remote node
	// restores its own directory at startup, and the engine refuses to
	// drive a coordinated restore over the wire (that is the snapshot
	// migration/failover seam, deliberately left to a later change).
	RestoreCheckpoint(checkpoint, epoch uint64) error
	// Close releases the shard's resources. The engine joins all
	// shards' close errors (errors.Join) into its own Close result.
	Close() error
}

// ErrRemoteRestore is returned by backends that cannot re-open state
// over their transport.
var ErrRemoteRestore = errors.New("engine: remote shards restore from their own data directory at node startup; coordinated restore over the wire is not supported")

// localShard is the in-process ShardBackend: exactly the core.Client
// the engine always ran, behind the transport seam. It carries the
// shard's resolved core options so the offline persistence protocol
// (Peek before open, RestoreCheckpoint at a chosen cut) works before
// the client exists.
type localShard struct {
	opts   core.Options
	client *core.Client
}

// open builds the shard fresh (reinitialising any durable layout).
func (l *localShard) open() error {
	c, err := core.Open(l.opts)
	if err != nil {
		return err
	}
	l.client = c
	return nil
}

func (l *localShard) Blocks() int64 { return l.opts.Blocks }

func (l *localShard) Batch(reqs []*Request) error { return l.client.Batch(reqs) }

func (l *localShard) Cycles() (int64, error) { return l.client.Stats().Cycles, nil }

func (l *localShard) PadToCycles(target int64) (int64, error) {
	return l.client.PadToCycles(target)
}

func (l *localShard) Stats() core.Stats { return l.client.Stats() }

func (l *localShard) SaveSnapshotAt(checkpoint uint64) error {
	return l.client.SaveSnapshotAt(checkpoint)
}

// Peek reports the live client's counters once it is open, and reads
// the durable directory (core.Peek) before that — the restore path
// peeks every shard to choose one consistent cut before opening any.
func (l *localShard) Peek() (epoch, checkpoint uint64, err error) {
	if l.client != nil {
		return l.client.Epoch(), l.client.Checkpoint(), nil
	}
	return core.Peek(l.opts)
}

func (l *localShard) RestoreCheckpoint(checkpoint, epoch uint64) error {
	c, err := core.RestoreCheckpoint(l.opts, checkpoint, epoch)
	if err != nil {
		return err
	}
	l.client = c
	return nil
}

func (l *localShard) Close() error {
	if l.client == nil {
		return nil
	}
	return l.client.Close()
}
