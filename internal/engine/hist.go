package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// NumBuckets is the number of batch-size histogram buckets.
const NumBuckets = 8

// HistLabels names the batch-size buckets: 1, 2, 3-4, 5-8, 9-16,
// 17-32, 33-64, 65+.
var HistLabels = []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// BucketFor maps a batch size to its histogram bucket.
func BucketFor(size int) int {
	switch {
	case size <= 1:
		return 0
	case size == 2:
		return 1
	case size <= 4:
		return 2
	case size <= 8:
		return 3
	case size <= 16:
		return 4
	case size <= 32:
		return 5
	case size <= 64:
		return 6
	default:
		return 7
	}
}

// FormatHist renders the non-empty buckets as "1:12,2:3,5-8:1", or "-"
// when the histogram is empty.
func FormatHist(hist [NumBuckets]int64) string {
	var parts []string
	for i, n := range hist {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", HistLabels[i], n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// AppendHist appends FormatHist's rendering to dst and returns the
// extended slice — the allocation-free variant the STATS line builder
// uses (a steady-state STATS poll must not perturb the zero-alloc
// serving path).
func AppendHist(dst []byte, hist [NumBuckets]int64) []byte {
	n := 0
	for i, v := range hist {
		if v > 0 {
			if n > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, HistLabels[i]...)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, v, 10)
			n++
		}
	}
	if n == 0 {
		dst = append(dst, '-')
	}
	return dst
}

// SumHists returns the element-wise sum of per-shard histograms — the
// aggregation STATS reports alongside the per-shard views.
func SumHists(hists ...[NumBuckets]int64) [NumBuckets]int64 {
	var out [NumBuckets]int64
	for _, h := range hists {
		for i, n := range h {
			out[i] += n
		}
	}
	return out
}
