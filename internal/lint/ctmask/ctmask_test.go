package ctmask_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctmask"
)

// TestCTMask runs the analyzer over the fixture package: branchy
// boolean-to-int laundering, arithmetic masks and out-of-domain
// constants must fire; comparison algebra, parameter boundaries,
// //horam:mask functions and mask-filled scratch slices must not.
func TestCTMask(t *testing.T) {
	analysistest.Run(t, ctmask.Analyzer, "testdata/ctmask")
}
