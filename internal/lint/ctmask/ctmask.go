// Package ctmask enforces the ctops mask contract: the mask operand
// of ctops.Select*/CopyBytes (and subtle.ConstantTimeCopy/
// ConstantTimeSelect) must be exactly 0 or 1, and must originate from
// a constant-time comparison — not from a Go comparison operator,
// a branch-free-looking arithmetic trick, or an unvetted function.
//
// A mask expression is, inductively:
//
//   - a constant 0 or 1;
//   - a call to a ctops/subtle comparison, or to a function annotated
//     //horam:mask;
//   - a ctops select whose two data operands are masks;
//   - a conversion of a mask to an integer type;
//   - &, |, ^ or &^ of two masks (so m^1 is the branchless NOT);
//   - an integer parameter of the enclosing function (the contract is
//     checked per call site; a mask received across a function
//     boundary is trusted at that boundary);
//   - a local integer variable every assignment of which is a mask
//     expression (named results start at zero, which is in domain);
//   - an element of an integer-slice parameter, or of a slice whose
//     every element write in the function is a mask expression.
//
// The analysis is value-domain only: it proves the 0-or-1 domain and
// comparison provenance, not freedom from secret-dependent branching —
// `m := 0; if secret == x { m = 1 }` is in domain here and is ctflow's
// diagnostic to raise. Aliased slices (a container assigned wholesale
// from another slice) are trusted if their element writes are masks;
// the repository's scratch-slab idiom zero-fills before use.
package ctmask

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
	"repro/internal/lint/ctcall"
)

// Analyzer is the ctmask analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctmask",
	Doc:  "verify that ctops/subtle mask operands originate from constant-time comparisons",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	in := annot.Collect(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, in, fn)
		}
	}
	return nil
}

type funcCheck struct {
	pass *analysis.Pass
	in   *annot.Info
	fn   *ast.FuncDecl

	params map[types.Object]bool // int/[]int parameters: trusted boundary
	vars   map[types.Object]bool // locals currently believed mask-valued
	elems  map[types.Object]bool // containers whose elements are masks

	sites []*ast.CallExpr // calls with a checked mask operand
}

func checkFunc(pass *analysis.Pass, in *annot.Info, fn *ast.FuncDecl) {
	c := &funcCheck{
		pass:   pass,
		in:     in,
		fn:     fn,
		params: map[types.Object]bool{},
		vars:   map[types.Object]bool{},
		elems:  map[types.Object]bool{},
	}
	c.collectSites()
	if len(c.sites) == 0 {
		return
	}
	c.seed()
	// Greatest fixpoint: start optimistic, strike objects whose
	// assignments disprove mask-ness, repeat until stable (mask-ness of
	// one variable feeds another's).
	for c.strike() {
	}
	for _, call := range c.sites {
		idx := ctcall.MaskArg(ctcall.Callee(pass.TypesInfo, call))
		mask := call.Args[idx]
		if !c.isMask(mask) {
			pass.Reportf(mask.Pos(), "mask operand of %s is not derived from a constant-time comparison (ctops/subtle); the 0-or-1 contract is unproven", ctcall.Callee(pass.TypesInfo, call).FullName())
		}
	}
}

func (c *funcCheck) collectSites() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := ctcall.Callee(c.pass.TypesInfo, call); ctcall.MaskArg(fn) >= 0 {
				c.sites = append(c.sites, call)
			}
		}
		return true
	})
}

// intKind reports whether t is a plain integer type.
func intKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// intSlice reports whether t is a slice of integers.
func intSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && intKind(s.Elem())
}

// seed builds the optimistic initial sets.
func (c *funcCheck) seed() {
	sig, _ := c.pass.TypesInfo.Defs[c.fn.Name].(*types.Func)
	if sig != nil {
		tuple := sig.Type().(*types.Signature).Params()
		for i := 0; i < tuple.Len(); i++ {
			p := tuple.At(i)
			if intKind(p.Type()) || intSlice(p.Type()) {
				c.params[p] = true
			}
		}
	}
	// Locals (including named results): optimistic if integer-typed.
	for id, obj := range c.pass.TypesInfo.Defs {
		if obj == nil || id.Pos() < c.fn.Pos() || id.Pos() > c.fn.End() {
			continue
		}
		if v, ok := obj.(*types.Var); ok && !c.params[obj] && intKind(v.Type()) {
			c.vars[obj] = true
		}
	}
	// Containers: anything (local or field) with at least one indexed
	// element write inside the function.
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if obj := c.rootObj(ix.X); obj != nil && intSlice(obj.Type()) {
					c.elems[obj] = true
				}
			}
		}
		return true
	})
}

// rootObj resolves the variable or field a container expression names.
func (c *funcCheck) rootObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := c.pass.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return c.pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// strike removes objects whose definitions violate mask-ness; it
// reports whether anything changed.
func (c *funcCheck) strike() bool {
	changed := false
	drop := func(obj types.Object) {
		if obj == nil {
			return
		}
		if c.vars[obj] {
			delete(c.vars, obj)
			changed = true
		}
		if c.params[obj] {
			delete(c.params, obj)
			changed = true
		}
	}
	dropElems := func(obj types.Object) {
		if obj != nil && c.elems[obj] {
			delete(c.elems, obj)
			changed = true
		}
	}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.strikeAssign(n, drop, dropElems)
		case *ast.IncDecStmt:
			drop(c.rootObj(n.X))
		case *ast.UnaryExpr:
			// Address-taken variables can change behind our back.
			if n.Op.String() == "&" {
				drop(c.rootObj(n.X))
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				drop(c.rootObj(n.Key))
			}
			if n.Value != nil {
				drop(c.rootObj(n.Value))
			}
		}
		return true
	})
	return changed
}

func (c *funcCheck) strikeAssign(n *ast.AssignStmt, drop, dropElems func(types.Object)) {
	bitOp := func(op string) bool {
		return op == "&=" || op == "|=" || op == "^=" || op == "&^="
	}
	// Multi-value: x, y := f() — mask only when f is //horam:mask.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		ok := false
		if call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); isCall {
			if fn := ctcall.Callee(c.pass.TypesInfo, call); fn != nil && c.in.MaskFuncs[fn] {
				ok = true
			}
		}
		if !ok {
			for _, lhs := range n.Lhs {
				c.strikeTarget(lhs, drop, dropElems)
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		lhs := n.Lhs[i]
		rhsMask := c.isMask(rhs)
		if op := n.Tok.String(); op != "=" && op != ":=" {
			// Compound: only the bitwise family preserves the domain,
			// and only when the operand is a mask.
			rhsMask = rhsMask && bitOp(op)
		}
		if !rhsMask {
			c.strikeTarget(lhs, drop, dropElems)
		}
	}
}

func (c *funcCheck) strikeTarget(lhs ast.Expr, drop, dropElems func(types.Object)) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name != "_" {
			drop(c.rootObj(lhs))
		}
	case *ast.IndexExpr:
		// A non-mask element write disqualifies the container — for a
		// parameter slice it also revokes the boundary trust.
		obj := c.rootObj(lhs.X)
		dropElems(obj)
		drop(obj)
	case *ast.SelectorExpr:
		drop(c.rootObj(lhs))
	case *ast.StarExpr:
		drop(c.rootObj(lhs.X))
	}
}

// isMask reports whether e is a mask expression under the current
// optimistic sets.
func (c *funcCheck) isMask(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.isMask(e.X)
	case *ast.Ident:
		obj := c.rootObj(e)
		return obj != nil && (c.params[obj] || c.vars[obj])
	case *ast.IndexExpr:
		obj := c.rootObj(e.X)
		return obj != nil && (c.params[obj] || c.elems[obj])
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&", "|", "^", "&^":
			return c.isMask(e.X) && c.isMask(e.Y)
		}
	case *ast.CallExpr:
		return c.isMaskCall(e)
	}
	// Constants 0 and 1 are in domain wherever they appear.
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact && (v == 0 || v == 1) {
			return true
		}
	}
	return false
}

func (c *funcCheck) isMaskCall(call *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Integer conversion of a mask stays a mask.
		return len(call.Args) == 1 && intKind(tv.Type) && c.isMask(call.Args[0])
	}
	fn := ctcall.Callee(info, call)
	if fn == nil {
		return false
	}
	if ctcall.IsComparison(fn) || c.in.MaskFuncs[fn] {
		return true
	}
	if ctcall.IsSelect(fn) {
		return c.isMask(call.Args[1]) && c.isMask(call.Args[2])
	}
	return false
}
