// Package fixture exercises the ctmask analyzer: mask operands of
// ctops selects/copies must provably originate from constant-time
// comparisons. `want` lines are violations; the rest are legal mask
// compositions that must stay clean.
package fixture

import (
	"crypto/subtle"

	"repro/internal/ctops"
)

// b2i is the classic branchy mask launderer the contract bans.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func badMasks(a, b int, x, y int64, dst, src []byte) int64 {
	m := b2i(a == b)                     // a Go comparison, not a ct comparison
	r := ctops.Select64(m, x, y)         // want `mask operand .* not derived from a constant-time comparison`
	ctops.CopyBytes(a-b, dst, src)       // want `mask operand .* not derived from a constant-time comparison`
	v := 2                               // out of the 0-or-1 domain
	subtle.ConstantTimeCopy(v, dst, src) // want `mask operand .* not derived from a constant-time comparison`
	w := a * 3
	return r + int64(ctops.SelectInt(w, 0, 1)) // want `mask operand .* not derived from a constant-time comparison`
}

//horam:mask
func hitScan(addrs []int64, addr int64) (found int) {
	for i := range addrs {
		found |= ctops.Eq64(addrs[i], addr)
	}
	return found
}

func goodMasks(v int, a, b int64, dst, src []byte, maskIn []int) int64 {
	// Direct comparison results and their bitwise algebra.
	m := ctops.Eq64(a, b)
	n := ctops.Lt64(a, b) ^ 1
	combined := (m | n) & ctops.GeInt(int(a), int(b))
	ctops.CopyBytes(combined, dst, src)

	// Parameters are the trusted boundary; masks compose across calls.
	out := ctops.Select64(v, a, b)

	// Constants are in domain, selects of masks are masks.
	always := ctops.SelectInt(m, 1, 0)
	ctops.CopyBytes(always, dst, src)

	// Conversions keep mask-ness; //horam:mask results are trusted.
	f := int(int64(hitScan(maskIn64(), a)))
	ctops.CopyBytes(f, dst, src)

	// Accumulated masks through compound bitwise assignment.
	acc := 0
	acc |= m
	acc &= n
	ctops.CopyBytes(acc, dst, src)

	// Elements of a parameter slice, and of a locally mask-filled one.
	local := make([]int, 4)
	for i := range local {
		local[i] = ctops.EqInt(i, int(a))
	}
	ctops.CopyBytes(local[0]&maskIn[0], dst, src)
	return out
}

func maskIn64() []int64 { return []int64{1, 2, 3} }
