// Package analysis is a minimal, dependency-free stand-in for the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named
// check, a Pass hands it one type-checked package, and diagnostics
// flow back through Report. The build environment for this repository
// is offline (no module proxy), so rather than vendoring x/tools the
// lint suite runs on this shim; the analyzer API mirrors the upstream
// shape closely enough that porting to the real framework is a
// mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -c filters. It
	// must be a valid identifier.
	Name string

	// Doc documents what the analyzer reports and what it deliberately
	// trusts. The first line is the summary.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the unit of work handed to an Analyzer: one type-checked
// package plus a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver deduplicates and
	// orders; analyzers just emit.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
