// Package errdrop is the repo-tuned unchecked-error analyzer: it
// flags dropped errors exactly on the paths where a silent swallow
// corrupts state invisibly — snapshot container writes, device.Backend
// I/O, and Close/Sync anywhere in non-test code (a dropped Close on a
// durable file can lose acknowledged writes; a dropped Sync voids the
// fsync policy the options promised).
//
// A drop is an expression or defer statement whose call returns an
// error that nobody receives, or an assignment of the error result to
// the blank identifier. //horam:errok on the statement's line
// suppresses the diagnostic, making every drop a visible, auditable
// decision rather than an accident.
package errdrop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
)

// Analyzer is the errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flag dropped errors from snapshot writes, device I/O and Close/Sync in non-test code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	in := annot.Collect(pass)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		checkFile(pass, in, file)
	}
	return nil
}

func checkFile(pass *analysis.Pass, in *annot.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDrop(pass, in, n.Pos(), call)
			}
		case *ast.DeferStmt:
			checkDrop(pass, in, n.Pos(), n.Call)
		case *ast.GoStmt:
			checkDrop(pass, in, n.Pos(), n.Call)
		case *ast.AssignStmt:
			checkBlank(pass, in, n)
		}
		return true
	})
}

// errIndices returns the positions of error-typed results of a call.
func errIndices(info *types.Info, call *ast.CallExpr) []int {
	t := info.TypeOf(call)
	if t == nil {
		return nil
	}
	var out []int
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isErr(t) {
			out = append(out, 0)
		}
	}
	return out
}

var errType = types.Universe.Lookup("error").Type()

func isErr(t types.Type) bool { return types.Identical(t, errType) }

// guarded reports whether the call targets the watched surface, and
// names it for the diagnostic.
func guarded(info *types.Info, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil {
		if strings.HasSuffix(pkg.Path(), "internal/snapshot") {
			return fn.FullName(), true
		}
		if strings.HasSuffix(pkg.Path(), "internal/device") {
			return fn.FullName(), true
		}
	}
	if fn.Type().(*types.Signature).Recv() != nil && (fn.Name() == "Close" || fn.Name() == "Sync") {
		return fn.FullName(), true
	}
	return "", false
}

func checkDrop(pass *analysis.Pass, in *annot.Info, pos token.Pos, call *ast.CallExpr) {
	if len(errIndices(pass.TypesInfo, call)) == 0 {
		return
	}
	name, ok := guarded(pass.TypesInfo, call)
	if !ok || in.ErrOK(pos) {
		return
	}
	pass.Reportf(pos, "error from %s is dropped; handle it or mark the line //horam:errok", name)
}

// checkBlank flags `_ = call()` / `x, _ := call()` where the blank
// swallows a guarded error.
func checkBlank(pass *analysis.Pass, in *annot.Info, n *ast.AssignStmt) {
	pair := func(lhs []ast.Expr, call *ast.CallExpr) {
		idxs := errIndices(pass.TypesInfo, call)
		if len(idxs) == 0 {
			return
		}
		dropped := false
		for _, i := range idxs {
			if i < len(lhs) {
				if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					dropped = true
				}
			}
		}
		if !dropped {
			return
		}
		name, ok := guarded(pass.TypesInfo, call)
		if !ok || in.ErrOK(n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), "error from %s is assigned to _; handle it or mark the line //horam:errok", name)
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			pair(n.Lhs, call)
		}
		return
	}
	for i, rhs := range n.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			pair(n.Lhs[i:i+1], call)
		}
	}
}
