// Package fixture exercises the errdrop analyzer: dropped errors on
// the snapshot/device/Close/Sync surface are `want` diagnostics;
// handled errors, suppressed drops and unguarded calls must be clean.
package fixture

import (
	"fmt"
	"os"

	"repro/internal/device"
	"repro/internal/snapshot"
)

func drops(f *os.File, b device.Backend, s device.Syncer) error {
	f.Close()                    // want `error from .*Close.* is dropped`
	defer f.Close()              // want `error from .*Close.* is dropped`
	_ = f.Close()                // want `error from .*Close.* is assigned to _`
	s.Sync()                     // want `error from .*Sync.* is dropped`
	b.Write(0, nil)              // want `error from .*Write.* is dropped`
	snapshot.WriteFile("x", nil) // want `error from .*WriteFile.* is dropped`
	if _, err := snapshot.ReadFile("x"); err != nil {
		return err
	}
	return nil
}

func suppressed(f *os.File) {
	f.Close()     //horam:errok best-effort cleanup on an already-failed path
	_ = f.Close() //horam:errok double-close probe in teardown
}

func handled(f *os.File, s device.Syncer) error {
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.Sync(); err != nil {
		return err
	}
	return nil
}

// unguarded calls also return errors, but are outside the watched
// surface: a swallowed Println hurts nobody's durability.
func unguarded(m map[string]int) {
	fmt.Println("hello")
	delete(m, "x")
}
