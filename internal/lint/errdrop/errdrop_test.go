package errdrop_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errdrop"
)

// TestErrDrop runs the analyzer over the fixture package: dropped and
// blank-assigned errors on the snapshot/device/Close/Sync surface must
// fire; handled errors, //horam:errok lines and unguarded calls must
// not.
func TestErrDrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "testdata/errdrop")
}
