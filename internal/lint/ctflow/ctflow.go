// Package ctflow implements the secret-dependent-control-flow
// analyzer: inside functions annotated //horam:constant-time (or all
// functions of a file carrying the marker at file level), any branch
// condition, loop condition, switch, map operation, secret-indexed
// memory access or variable-length slice operation that taints from a
// //horam:secret value is a diagnostic.
//
// Taint model. Roots are the annotated objects. Taint propagates
// through assignments, arithmetic, indexing, struct/slice composition
// and calls — with three laundering channels, which are exactly the
// flows the constant-time discipline declares safe:
//
//   - constant-time comparisons (ctops.Eq*/Lt*/Ge*, the
//     crypto/subtle comparison family) produce public 0-or-1 masks;
//   - any other ctops/subtle call that is not a select (selects carry
//     the taint of their data operands, not their mask);
//   - calls to functions annotated //horam:mask.
//
// len and cap are treated as public: every length in the constant-time
// paths of this repository is a validated, capacity-bounded quantity
// (the secrets are addresses and contents, not sizes). Accumulated
// sums of masks (ranks, occupancy counts) launder through the
// comparison rule; the ctmask analyzer polices the mask domain itself.
// //horam:ct-ok on a diagnostic's line suppresses it — the audited,
// documented deviations.
package ctflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/annot"
	"repro/internal/lint/ctcall"
)

// Analyzer is the ctflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctflow",
	Doc:  "flag secret-dependent control flow and memory indexing in //horam:constant-time code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	in := annot.Collect(pass)
	for _, fn := range in.CTFuncs {
		newFunc(pass, in, fn).analyze()
	}
	return nil
}

// funcAnalysis is the per-function taint state.
type funcAnalysis struct {
	pass *analysis.Pass
	in   *annot.Info
	fn   *ast.FuncDecl

	// taint maps a tainted object to the name of the root secret it
	// derives from (for diagnostics).
	taint map[types.Object]string
}

func newFunc(pass *analysis.Pass, in *annot.Info, fn *ast.FuncDecl) *funcAnalysis {
	a := &funcAnalysis{pass: pass, in: in, fn: fn, taint: map[types.Object]string{}}
	for _, obj := range in.FuncSecrets(fn) {
		a.taint[obj] = obj.Name()
	}
	return a
}

func (a *funcAnalysis) analyze() {
	// Monotone fixpoint: assignments spread taint until stable.
	for a.propagate() {
	}
	a.report()
}

// obj resolves an identifier to its object.
func (a *funcAnalysis) obj(id *ast.Ident) types.Object {
	if o := a.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return a.pass.TypesInfo.Defs[id]
}

// taintOf returns the root-secret name e taints from, or "".
func (a *funcAnalysis) taintOf(e ast.Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		if o := a.obj(e); o != nil {
			return a.taint[o]
		}
	case *ast.SelectorExpr:
		if o := a.pass.TypesInfo.Uses[e.Sel]; o != nil {
			if why := a.taint[o]; why != "" {
				return why
			}
		}
		return a.taintOf(e.X)
	case *ast.CallExpr:
		return a.taintOfCall(e)
	case *ast.ParenExpr:
		return a.taintOf(e.X)
	case *ast.UnaryExpr:
		return a.taintOf(e.X)
	case *ast.StarExpr:
		return a.taintOf(e.X)
	case *ast.BinaryExpr:
		if why := a.taintOf(e.X); why != "" {
			return why
		}
		return a.taintOf(e.Y)
	case *ast.IndexExpr:
		if why := a.taintOf(e.X); why != "" {
			return why
		}
		return a.taintOf(e.Index)
	case *ast.SliceExpr:
		for _, sub := range []ast.Expr{e.X, e.Low, e.High, e.Max} {
			if why := a.taintOf(sub); why != "" {
				return why
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if why := a.taintOf(el); why != "" {
				return why
			}
		}
	case *ast.KeyValueExpr:
		return a.taintOf(e.Value)
	case *ast.TypeAssertExpr:
		return a.taintOf(e.X)
	}
	return ""
}

func (a *funcAnalysis) taintOfCall(call *ast.CallExpr) string {
	info := a.pass.TypesInfo
	// Conversions carry the taint of their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return a.taintOf(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "make", "new":
				// Lengths and fresh objects are public; a tainted make
				// SIZE is flagged by the reporting walk, not here.
				return ""
			case "append":
				for _, arg := range call.Args {
					if why := a.taintOf(arg); why != "" {
						return why
					}
				}
				return ""
			default:
				return ""
			}
		}
	}
	if fn := ctcall.Callee(info, call); fn != nil {
		switch {
		case ctcall.IsSelect(fn):
			// The result is one of the data operands; the mask does
			// not flow into it.
			if why := a.taintOf(call.Args[1]); why != "" {
				return why
			}
			return a.taintOf(call.Args[2])
		case ctcall.IsCTPrimitive(fn):
			// Comparisons and the remaining primitives launder: their
			// results are public masks by the package contract.
			return ""
		case a.in.MaskFuncs[fn]:
			// //horam:mask functions return established masks; their
			// results are public by annotation.
			return ""
		}
	}
	// Ordinary call: the result taints if the callee value (a method's
	// receiver) or any argument does.
	if why := a.taintOf(call.Fun); why != "" {
		return why
	}
	for _, arg := range call.Args {
		if why := a.taintOf(arg); why != "" {
			return why
		}
	}
	return ""
}

// mark taints the object behind an assignment target.
func (a *funcAnalysis) mark(lhs ast.Expr, why string) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		if o := a.obj(lhs); o != nil {
			return a.add(o, why)
		}
	case *ast.IndexExpr:
		// Storing a secret into a container taints the container.
		return a.mark(lhs.X, why)
	case *ast.SliceExpr:
		return a.mark(lhs.X, why)
	case *ast.StarExpr:
		return a.mark(lhs.X, why)
	case *ast.SelectorExpr:
		if o := a.pass.TypesInfo.Uses[lhs.Sel]; o != nil {
			return a.add(o, why)
		}
	}
	return false
}

func (a *funcAnalysis) add(o types.Object, why string) bool {
	if _, ok := a.taint[o]; ok {
		return false
	}
	a.taint[o] = why
	return true
}

// propagate runs one pass of taint spreading; it reports whether the
// taint set grew.
func (a *funcAnalysis) propagate() bool {
	changed := false
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if why := a.taintOf(n.Rhs[0]); why != "" {
					for _, lhs := range n.Lhs {
						changed = a.mark(lhs, why) || changed
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				if why := a.taintOf(rhs); why != "" {
					changed = a.mark(n.Lhs[i], why) || changed
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					if why := a.taintOf(vs.Values[0]); why != "" {
						for _, name := range vs.Names {
							changed = a.mark(name, why) || changed
						}
					}
					continue
				}
				for i, v := range vs.Values {
					if why := a.taintOf(v); why != "" {
						changed = a.mark(vs.Names[i], why) || changed
					}
				}
			}
		case *ast.RangeStmt:
			why := a.taintOf(n.X)
			if why == "" {
				return true
			}
			if n.Value != nil {
				changed = a.mark(n.Value, why) || changed
			}
			if n.Key != nil {
				// Slice/array range keys are public indices; map keys
				// are stored data.
				if _, isMap := a.pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); isMap {
					changed = a.mark(n.Key, why) || changed
				}
			}
		}
		return true
	})
	return changed
}

// report walks the body once and emits diagnostics.
func (a *funcAnalysis) report() {
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			a.flag(n.Pos(), n.Cond, "if condition")
		case *ast.ForStmt:
			if n.Cond != nil {
				a.flag(n.Pos(), n.Cond, "for condition")
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				a.flag(n.Pos(), n.Tag, "switch tag")
			}
			for _, cc := range n.Body.List {
				if cc, ok := cc.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						a.flag(cc.Pos(), e, "switch case")
					}
				}
			}
		case *ast.RangeStmt:
			if _, isMap := a.pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); isMap {
				if why := a.taintOf(n.X); why != "" && !a.in.CTOK(n.Pos()) {
					a.pass.Reportf(n.Pos(), "range over map holding secret %q in constant-time code (iteration order and length are data-dependent)", why)
				}
			}
		case *ast.IndexExpr:
			if tv, ok := a.pass.TypesInfo.Types[n.X]; !ok || tv.IsType() {
				return true // generic instantiation, not an index
			}
			switch a.pass.TypesInfo.TypeOf(n.X).Underlying().(type) {
			case *types.Map:
				a.flag(n.Pos(), n.Index, "map index")
			case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
				if why := a.taintOf(n.Index); why != "" && !a.in.CTOK(n.Pos()) {
					a.pass.Reportf(n.Pos(), "memory index depends on secret %q in constant-time code (secret-dependent address)", why)
				}
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if why := a.taintOf(b); why != "" && !a.in.CTOK(n.Pos()) {
					a.pass.Reportf(n.Pos(), "slice bounds depend on secret %q in constant-time code (variable-length operation)", why)
					break
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := a.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(n.Args) > 1 {
					for _, sz := range n.Args[1:] {
						if why := a.taintOf(sz); why != "" && !a.in.CTOK(n.Pos()) {
							a.pass.Reportf(n.Pos(), "make size depends on secret %q in constant-time code (variable-length operation)", why)
							break
						}
					}
				}
			}
		}
		return true
	})
}

// flag reports a secret-dependent control-flow condition at pos.
func (a *funcAnalysis) flag(pos token.Pos, cond ast.Expr, what string) {
	why := a.taintOf(cond)
	if why == "" || a.in.CTOK(pos) {
		return
	}
	a.pass.Reportf(pos, "%s depends on secret %q in constant-time code", what, why)
}
