//horam:constant-time
// This file carries the file-level marker: every function below is
// constant-time code without a per-function annotation. The fixture is
// the acceptance scenario for the lint gate — a PutMasked-shaped scan
// with a careless secret-dependent early exit slipped in, which is
// exactly the one-line regression the analyzer must turn into a build
// failure (the real internal/stash/ct.go stays clean; this file is the
// deliberately broken twin).

package fixture

import "repro/internal/ctops"

// putShaped mirrors the shape of stash.(*CT).PutMasked with an
// inserted secret-dependent fast path.
func putShaped(s *table, v int, addr int64, data []byte) error { //horam:secret addr
	if addr == 0 { // want `if condition depends on secret "addr"`
		return nil // the careless early exit: a hit/miss-shaped timing leak
	}
	a := ctops.Select64(v, addr, 0)
	present := 0
	for i := range s.addrs {
		present |= ctops.Eq64(s.addrs[i], a)
	}
	present &= v
	pos := 0
	for i := range s.addrs {
		pos += ctops.Lt64(s.addrs[i], a)
	}
	for i := range s.addrs {
		w := present & ctops.Eq64(s.addrs[i], a) & ctops.EqInt(i, pos)
		s.addrs[i] = ctops.Select64(w, a, s.addrs[i])
		s.lens[i] = ctops.SelectInt(w, len(data), s.lens[i])
	}
	return nil
}

// scanShaped is the clean twin: the same lookup with no data-dependent
// exit, proving the fixed-order discipline itself raises nothing.
func scanShaped(s *table, addr int64) (found, pos int) { //horam:secret addr
	for i := range s.addrs {
		m := ctops.Eq64(s.addrs[i], addr)
		found |= m
		pos = ctops.SelectInt(m, i, pos)
	}
	return found, pos
}
