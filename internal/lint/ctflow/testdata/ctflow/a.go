// Package fixture exercises the ctflow analyzer. Every `want` comment
// is a diagnostic the analyzer must report; every line without one is
// a false-positive regression case.
package fixture

import "repro/internal/ctops"

// table mimics the constant-time stash's layout: the stored addresses
// are the secret, the lengths are public occupancy data.
type table struct {
	//horam:secret
	addrs []int64
	lens  []int
}

//horam:constant-time
func branchOnSecret(secret int64) int64 { //horam:secret secret
	if secret == 0 { // want `if condition depends on secret "secret"`
		return 1
	}
	derived := secret * 3
	if derived > 10 { // want `if condition depends on secret "secret"`
		return 2
	}
	for i := int64(0); i < secret; i++ { // want `for condition depends on secret "secret"`
		derived++
	}
	switch secret { // want `switch tag depends on secret "secret"`
	case 0:
	}
	switch {
	case secret > 4: // want `switch case depends on secret "secret"`
	}
	return derived
}

//horam:constant-time
func memoryOps(secret int64, buf []byte, m map[int64]int) int { //horam:secret secret
	x := buf[secret]                // want `memory index depends on secret "secret"`
	_ = buf[:secret]                // want `slice bounds depend on secret "secret"`
	_ = m[secret]                   // want `map index depends on secret "secret"`
	scratch := make([]byte, secret) // want `make size depends on secret "secret"`
	return int(x) + len(scratch)
}

//horam:constant-time
func mapIteration(secret int64) int { //horam:secret secret
	held := map[int64]bool{}
	held[0] = secret != 0 // the map now holds secret-derived data
	n := 0
	for range held { // want `range over map holding secret "secret"`
		n++
	}
	return n
}

//horam:constant-time
func laundered(s *table, secret int64) int { //horam:secret secret
	found := 0
	for i := range s.addrs {
		found |= ctops.Eq64(s.addrs[i], secret) // comparisons launder: public mask
	}
	if found == 1 { // public hit/miss outcome, no diagnostic
		return 1
	}
	sel := ctops.Select64(found, secret, 0)
	if sel == 0 { // want `if condition depends on secret "secret"`
		return 2
	}
	return 0
}

//horam:constant-time
func suppressed(secret int64) error { //horam:secret secret
	if secret < 0 { //horam:ct-ok documented failure-path deviation
		return errFixture
	}
	return nil
}

// unannotated is ordinary code: the same branch raises nothing because
// no constant-time contract is claimed here.
func unannotated(secret int64) int { //horam:secret secret
	if secret == 0 {
		return 1
	}
	return 0
}

var errFixture = errorString("fixture")

type errorString string

func (e errorString) Error() string { return string(e) }
