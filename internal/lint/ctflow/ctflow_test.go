package ctflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctflow"
)

// TestCTFlow runs the analyzer over the fixture package: the broken
// twin of the constant-time stash (a secret-dependent early exit
// inserted into a PutMasked-shaped scan) must fire, and the laundered
// mask flows, suppressed lines and unannotated functions must not.
func TestCTFlow(t *testing.T) {
	analysistest.Run(t, ctflow.Analyzer, "testdata/ctflow")
}
