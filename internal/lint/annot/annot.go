// Package annot parses the //horam: annotation vocabulary the lint
// analyzers consume:
//
//	//horam:constant-time   on a function's doc comment marks that
//	                        function as constant-time code (ctflow
//	                        scope); as a free-standing or package-doc
//	                        comment it marks every function in the file.
//	//horam:secret          with no names marks the identifiers declared
//	                        on its line (or, for a doc-position comment,
//	                        the line below) as secret taint roots: struct
//	                        fields, vars, short declarations.
//	//horam:secret a b      with names marks the objects of those names
//	                        declared inside the enclosing function
//	                        (parameters, named results, locals).
//	//horam:mask            on a function's doc comment declares that the
//	                        function returns established 0-or-1 masks:
//	                        ctmask trusts its results as mask sources and
//	                        ctflow treats its calls as laundering.
//	//horam:ct-ok           on a line suppresses ctflow diagnostics
//	                        reported there — an audited, documented
//	                        deviation from constant time.
//	//horam:errok           on a line suppresses errdrop diagnostics
//	                        there — a visible decision to drop an error.
//
// Annotations are comments, so they carry no runtime cost and no
// build-graph weight; the analyzers are the only consumers.
package annot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Directive names (the text after "//horam:").
const (
	DirConstantTime = "constant-time"
	DirSecret       = "secret"
	DirMask         = "mask"
	DirCTOK         = "ct-ok"
	DirErrOK        = "errok"
)

// Info is the parsed annotation set of one package.
type Info struct {
	// CTFuncs are the functions ctflow analyzes, in file order.
	CTFuncs []*ast.FuncDecl

	// MaskFuncs are the declared objects of //horam:mask functions.
	MaskFuncs map[types.Object]bool

	// globalSecrets are marked package-level vars and struct fields;
	// they root taint in every constant-time function of the package.
	globalSecrets []types.Object
	// funcSecrets are marked per-function objects.
	funcSecrets map[*ast.FuncDecl][]types.Object

	ctok  map[string]map[int]bool
	errok map[string]map[int]bool

	fset *token.FileSet
}

// FuncSecrets returns the taint roots in force inside fn: the
// function's own marked objects plus every package-global mark.
func (in *Info) FuncSecrets(fn *ast.FuncDecl) []types.Object {
	out := append([]types.Object(nil), in.globalSecrets...)
	return append(out, in.funcSecrets[fn]...)
}

// CTOK reports whether a //horam:ct-ok comment covers pos's line.
func (in *Info) CTOK(pos token.Pos) bool { return in.onLine(in.ctok, pos) }

// ErrOK reports whether a //horam:errok comment covers pos's line.
func (in *Info) ErrOK(pos token.Pos) bool { return in.onLine(in.errok, pos) }

func (in *Info) onLine(set map[string]map[int]bool, pos token.Pos) bool {
	p := in.fset.Position(pos)
	return set[p.Filename][p.Line]
}

type directive struct {
	name string
	args []string
	pos  token.Pos
}

// parseDirectives extracts //horam: lines from one comment group.
func parseDirectives(g *ast.CommentGroup) []directive {
	var out []directive
	if g == nil {
		return nil
	}
	for _, c := range g.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue // /* */ comments are not directive carriers
		}
		text, ok = strings.CutPrefix(strings.TrimSpace(text), "horam:")
		if !ok {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		out = append(out, directive{name: fields[0], args: fields[1:], pos: c.Pos()})
	}
	return out
}

// Collect parses every annotation in the pass's files.
func Collect(pass *analysis.Pass) *Info {
	in := &Info{
		MaskFuncs:   map[types.Object]bool{},
		funcSecrets: map[*ast.FuncDecl][]types.Object{},
		ctok:        map[string]map[int]bool{},
		errok:       map[string]map[int]bool{},
		fset:        pass.Fset,
	}
	for _, file := range pass.Files {
		in.collectFile(pass, file)
	}
	return in
}

func (in *Info) collectFile(pass *analysis.Pass, file *ast.File) {
	fset := pass.Fset

	// Declarations by line, for the bare //horam:secret form.
	declLines := map[int][]types.Object{}
	for ident, obj := range pass.TypesInfo.Defs {
		if obj == nil {
			continue
		}
		p := fset.Position(ident.Pos())
		if p.Filename == fset.Position(file.Pos()).Filename {
			declLines[p.Line] = append(declLines[p.Line], obj)
		}
	}

	funcs := make([]*ast.FuncDecl, 0, len(file.Decls))
	docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			funcs = append(funcs, fn)
			if fn.Doc != nil {
				docOf[fn.Doc] = fn
			}
		}
	}
	enclosing := func(pos token.Pos) *ast.FuncDecl {
		for _, fn := range funcs {
			if fn.Pos() <= pos && pos <= fn.End() {
				return fn
			}
		}
		return nil
	}

	fileCT := false
	ctMarked := map[*ast.FuncDecl]bool{}

	for _, g := range file.Comments {
		docFn := docOf[g]
		bodyFn := enclosing(g.Pos())
		for _, d := range parseDirectives(g) {
			pos := fset.Position(d.pos)
			switch d.name {
			case DirConstantTime:
				switch {
				case docFn != nil:
					ctMarked[docFn] = true
				case bodyFn == nil:
					fileCT = true
				default:
					// Inside a body the function-level marker governs;
					// treat it as marking the enclosing function.
					ctMarked[bodyFn] = true
				}
			case DirMask:
				fn := docFn
				if fn == nil {
					fn = bodyFn
				}
				if fn != nil {
					if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
						in.MaskFuncs[obj] = true
					}
				}
			case DirSecret:
				owner := docFn
				if owner == nil {
					owner = bodyFn
				}
				if len(d.args) > 0 {
					in.markNamed(pass, owner, d.args)
					continue
				}
				objs := declLines[pos.Line]
				if len(objs) == 0 {
					// Doc-position form: the marker sits on its own
					// line directly above the declaration it covers.
					objs = declLines[pos.Line+1]
				}
				in.markObjects(owner, objs)
			case DirCTOK:
				mark(in.ctok, pos)
			case DirErrOK:
				mark(in.errok, pos)
			}
		}
	}

	for _, fn := range funcs {
		if fn.Body == nil {
			continue
		}
		if fileCT || ctMarked[fn] {
			in.CTFuncs = append(in.CTFuncs, fn)
		}
	}
}

// markNamed marks the objects named in a //horam:secret list within
// owner (or, with no owner, at file scope — package vars and fields).
func (in *Info) markNamed(pass *analysis.Pass, owner *ast.FuncDecl, names []string) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var objs []types.Object
	for ident, obj := range pass.TypesInfo.Defs {
		if obj == nil || !want[ident.Name] {
			continue
		}
		if owner != nil {
			if ident.Pos() < owner.Pos() || ident.Pos() > owner.End() {
				continue
			}
		}
		objs = append(objs, obj)
	}
	in.markObjects(owner, objs)
}

func (in *Info) markObjects(owner *ast.FuncDecl, objs []types.Object) {
	for _, obj := range objs {
		if owner == nil || isGlobal(obj) {
			in.globalSecrets = append(in.globalSecrets, obj)
		} else {
			in.funcSecrets[owner] = append(in.funcSecrets[owner], obj)
		}
	}
}

// isGlobal reports whether obj outlives any single function: a
// package-level var or a struct field.
func isGlobal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.IsField() || (v.Parent() != nil && v.Parent().Parent() == types.Universe)
}

func mark(set map[string]map[int]bool, pos token.Position) {
	lines := set[pos.Filename]
	if lines == nil {
		lines = map[int]bool{}
		set[pos.Filename] = lines
	}
	lines[pos.Line] = true
}
