// Package analysistest runs a lint analyzer over a fixture directory
// and checks its diagnostics against `// want` expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest (which the
// offline build cannot vendor).
//
// Fixture files live under testdata/ (invisible to the go tool, so
// deliberately-broken code never taints the build) and may import any
// package of this module or the standard library; imports resolve
// through the build cache. Expectations are trailing comments:
//
//	if secret == 0 { // want `depends on secret`
//
// Each backquoted or quoted string is a regexp that must match one
// diagnostic reported on that line; diagnostics with no matching want,
// and wants with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads dir as one package, applies a, and verifies the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load.Dir(root, dir, "fixture/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)

	type key struct {
		file string
		line int
	}
	unmatched := map[key][]string{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		unmatched[k] = append(unmatched[k], d.Message)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		found := -1
		for i, msg := range unmatched[k] {
			if w.rx.MatchString(msg) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q (got %v)", w.file, w.line, w.rx, unmatched[k])
			continue
		}
		unmatched[k] = append(unmatched[k][:found], unmatched[k][found+1:]...)
	}
	for k, msgs := range unmatched {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", p.Filename, p.Line, c.Text)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", p.Filename, p.Line, pat, err)
					}
					out = append(out, want{p.Filename, p.Line, rx})
				}
			}
		}
	}
	return out
}

// RunNoDiagnostics asserts a produces zero diagnostics on dir — the
// false-positive regression entry point for all-clean fixtures.
func RunNoDiagnostics(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	Run(t, a, dir) // a clean fixture simply carries no want comments
}

// Sprint formats diagnostics for debugging helpers.
func Sprint(fset *token.FileSet, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message)
}
