// Package load type-checks packages for the lint analyzers without
// golang.org/x/tools: targets are enumerated with `go list`, their
// sources parsed with go/parser, and their imports satisfied from the
// build cache's export data (`go list -export`), so the whole pipeline
// works offline with nothing but the toolchain.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// exporter satisfies imports from compiled export data. It is shared
// across every target of one load so each dependency is read once.
type exporter struct {
	root    string // module root, where `go list` runs
	exports map[string]string
}

func (e *exporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := e.exports[path]
	if !ok {
		out, err := goList(e.root, "-export", "-f", "{{.Export}}", "--", path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		e.exports[path] = file
	}
	return os.Open(file)
}

func goList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// Packages loads every non-test Go package matching the patterns,
// resolved relative to dir (which must sit inside the module).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	// One -deps -export pass prefills the export map AND compiles
	// everything, so per-import lookups never shell out again.
	depOut, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exp := &exporter{root: dir, exports: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(depOut))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exp.exports[p.ImportPath] = p.Export
		}
	}

	tgtOut, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exp.lookup)
	var pkgs []*Package
	dec = json.NewDecoder(bytes.NewReader(tgtOut))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := check(fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Dir loads the single package in dir as the import path `as`. It is
// the fixture entry point: testdata directories are invisible to the
// go tool, so the files are globbed directly and imports resolve
// through moduleRoot's build cache.
func Dir(moduleRoot, dir, as string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, n := range names {
		if !strings.HasSuffix(n, "_test.go") {
			files = append(files, n)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", (&exporter{root: moduleRoot, exports: map[string]string{}}).lookup)
	return check(fset, imp, as, files)
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

func check(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
