// Package ctcall classifies calls into the constant-time primitive
// packages (repro/internal/ctops and crypto/subtle) for the ctflow and
// ctmask analyzers: which calls are comparisons (secret in, 0-or-1
// mask out), which are selects (mask + data in, data out), and which
// calls take a mask operand whose provenance ctmask must verify.
package ctcall

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the function or method object a call invokes, or nil
// for conversions, builtins and indirect calls through values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ctPkg reports whether obj lives in ctops or crypto/subtle.
func ctPkg(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "crypto/subtle" || p == "internal/ctops" || strings.HasSuffix(p, "/internal/ctops")
}

// subtleComparisons are the crypto/subtle functions that return 0-or-1
// masks from data operands.
var subtleComparisons = map[string]bool{
	"ConstantTimeCompare":  true,
	"ConstantTimeByteEq":   true,
	"ConstantTimeEq":       true,
	"ConstantTimeLessOrEq": true,
}

// IsComparison reports whether the call is a constant-time comparison:
// its result is an established 0-or-1 mask and its data operands are
// consumed obliviously (ctops Eq*/Lt*/Ge*/Le*/Gt*, or the subtle
// comparison family).
func IsComparison(fn *types.Func) bool {
	if fn == nil || !ctPkg(fn) {
		return false
	}
	if fn.Pkg().Path() == "crypto/subtle" {
		return subtleComparisons[fn.Name()]
	}
	for _, prefix := range []string{"Eq", "Lt", "Ge", "Le", "Gt", "Ne"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// IsSelect reports whether the call is a two-way masked select
// (ctops.Select64/SelectInt, subtle.ConstantTimeSelect): argument 0 is
// the mask, arguments 1 and 2 are the data operands the result is
// drawn from.
func IsSelect(fn *types.Func) bool {
	if fn == nil || !ctPkg(fn) {
		return false
	}
	if fn.Pkg().Path() == "crypto/subtle" {
		return fn.Name() == "ConstantTimeSelect"
	}
	return strings.HasPrefix(fn.Name(), "Select")
}

// IsCTPrimitive reports whether the call targets ctops or
// crypto/subtle at all.
func IsCTPrimitive(fn *types.Func) bool { return fn != nil && ctPkg(fn) }

// MaskArg returns the index of the mask operand ctmask must verify,
// or -1 when the call carries no checked mask. The checked set is the
// contract surface from the issue: ctops.Select*, ctops.CopyBytes,
// subtle.ConstantTimeCopy and subtle.ConstantTimeSelect all take the
// mask first.
func MaskArg(fn *types.Func) int {
	if fn == nil || !ctPkg(fn) {
		return -1
	}
	name := fn.Name()
	if fn.Pkg().Path() == "crypto/subtle" {
		if name == "ConstantTimeCopy" || name == "ConstantTimeSelect" {
			return 0
		}
		return -1
	}
	if strings.HasPrefix(name, "Select") || name == "CopyBytes" {
		return 0
	}
	return -1
}
