package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	payload := bytes.Repeat([]byte{0xc3, 0x07}, 1000)
	if err := WriteFile(path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload did not round-trip")
	}
}

func TestContainerOverwriteIsAtomicReplacement(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := WriteFile(path, []byte("generation-1")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := WriteFile(path, []byte("generation-2")); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "generation-2" {
		t.Fatalf("payload = %q, want generation-2", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after overwrite, want 1", len(entries))
	}
}

// TestTornSnapshotRejected is the crash-safety contract: any
// truncation or bit flip of a container must be rejected by the
// checksum, never silently loaded.
func TestTornSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	payload := bytes.Repeat([]byte{0x5a}, 4096)
	if err := WriteFile(path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// Truncations at every region: header, payload, checksum.
	for _, n := range []int{0, 4, headerLen - 1, headerLen + 100, len(raw) - checksumLen, len(raw) - 1} {
		p := filepath.Join(dir, "torn.snap")
		if err := os.WriteFile(p, raw[:n], 0o600); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		if _, err := ReadFile(p); err == nil {
			t.Errorf("truncation to %d bytes was accepted", n)
		}
	}

	// A bit flip anywhere — payload, header, checksum — must fail.
	for _, off := range []int{9, headerLen + 17, len(raw) - 5} {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x40
		p := filepath.Join(dir, "flipped.snap")
		if err := os.WriteFile(p, flipped, 0o600); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		_, err := ReadFile(p)
		if err == nil {
			t.Errorf("bit flip at offset %d was accepted", off)
		}
		if off > 12 && !errors.Is(err, ErrChecksum) {
			t.Errorf("bit flip at offset %d: err = %v, want ErrChecksum", off, err)
		}
	}

	// Wrong magic and wrong version get their own errors.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	p := filepath.Join(dir, "magic.snap")
	os.WriteFile(p, bad, 0o600)
	if _, err := ReadFile(p); !errors.Is(err, ErrFormat) {
		t.Errorf("wrong magic: err = %v, want ErrFormat", err)
	}
}

func TestShardCodecRoundTrip(t *testing.T) {
	s := &Shard{
		Blocks: 128, BlockSize: 32, SlotSize: 40, MemSlots: 15,
		Partitions: 12, PartSlots: 11, MissBudget: 7, Epoch: 3,
		MissCount: 2, NextPart: 5, ShuffleGen: 9,
		Stats:       Counters{Requests: 100, Cycles: 42, Hits: 80, Misses: 20},
		PermTier:    []uint8{0, 1, 0},
		PermSlot:    []int64{5, 0, 7},
		PermTouched: []bool{false, false, true},
		Leaves:      []int64{-1, 3, -1},
		RealCount:   1,
		StashAddrs:  []int64{1},
		StashData:   [][]byte{bytes.Repeat([]byte{1}, 32)},
		MemImage:    [][]byte{bytes.Repeat([]byte{2}, 40)},
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeShard(b)
	if err != nil {
		t.Fatalf("DecodeShard: %v", err)
	}
	if got.Blocks != s.Blocks || got.Epoch != s.Epoch || got.ShuffleGen != s.ShuffleGen ||
		got.Stats != s.Stats || len(got.MemImage) != 1 || !bytes.Equal(got.MemImage[0], s.MemImage[0]) ||
		len(got.StashData) != 1 || !bytes.Equal(got.StashData[0], s.StashData[0]) {
		t.Fatalf("shard did not round-trip: %+v", got)
	}
}

func TestManifestAndGenRoundTrip(t *testing.T) {
	m := &Manifest{Blocks: 1024, BlockSize: 64, Shards: 4, MemoryBytes: 1 << 16, ShuffleRatio: 0.5, Insecure: true, Epoch: 2}
	b, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeManifest(b)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if *got != *m {
		t.Fatalf("manifest = %+v, want %+v", got, m)
	}

	path := filepath.Join(t.TempDir(), "storage.gen")
	if err := WriteGen(path, Gen{Started: 8, Completed: 7}); err != nil {
		t.Fatalf("WriteGen: %v", err)
	}
	g, err := ReadGen(path)
	if err != nil {
		t.Fatalf("ReadGen: %v", err)
	}
	if g != (Gen{Started: 8, Completed: 7}) {
		t.Fatalf("gen = %+v", g)
	}
}
