// Package snapshot is the crash-safe persistence format for H-ORAM
// control state: the data a restart must recover that is not already
// durable in the storage-tier file. Three layers:
//
//   - a checksummed container (WriteFile/ReadFile): magic, format
//     version, payload length, payload, SHA-256 — written to a temp
//     file, fsynced and renamed into place, so a reader only ever sees
//     either the previous complete snapshot or the new complete one.
//     A torn, truncated or bit-flipped file fails the checksum and is
//     rejected, never silently loaded;
//
//   - typed payloads (Shard, Manifest, Gen): gob-encoded state blobs.
//     Shard is one H-ORAM instance's control state — permutation list,
//     position map, stash, sealed memory-tree image, scheduler and
//     miss-budget counters, and the key-derivation epoch. It never
//     contains key material: everything cryptographic is re-derived
//     from the master key the operator supplies at restart, salted
//     with the epoch so no RNG or nonce stream ever replays;
//
//   - the shuffle generation marker (WriteGen/ReadGen): a tiny record
//     {started, completed} the ORAM updates around every shuffle
//     period. Storage-tier slots are only ever written during
//     shuffles, so the marker is exactly the consistency witness a
//     restore needs: a snapshot taken at generation G is valid iff
//     the marker still reads {G, G}. completed > G means the storage
//     file advanced past the snapshot (stale checkpoint); started >
//     completed means the process died mid-shuffle and the storage
//     image itself is torn. Both are detected and refused.
//
// Callers seal the payload before writing when it contains plaintext
// (the stash does); the container itself only guarantees integrity
// against accidental corruption, not confidentiality.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the container format version this package writes.
const Version = 1

// magic identifies a snapshot container file.
var magic = [8]byte{'H', 'O', 'R', 'A', 'M', 'S', 'N', 'P'}

// Errors returned by ReadFile.
var (
	// ErrFormat indicates a file too short or not a snapshot container.
	ErrFormat = errors.New("snapshot: not a snapshot container")
	// ErrVersion indicates a container from an unsupported format
	// version.
	ErrVersion = errors.New("snapshot: unsupported container version")
	// ErrChecksum indicates a truncated or corrupted container.
	ErrChecksum = errors.New("snapshot: checksum mismatch (truncated or corrupted file)")
)

const (
	headerLen   = 8 + 4 + 8 // magic + version + payload length
	checksumLen = sha256.Size
)

// WriteFile atomically replaces path with a container holding payload:
// the bytes are written to a temp file in the same directory, fsynced,
// and renamed into place, then the directory is fsynced so the rename
// itself is durable.
func WriteFile(path string, payload []byte) error {
	buf := make([]byte, 0, headerLen+len(payload)+checksumLen)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, Version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close() //horam:errok the write error is the one to surface; the temp file is discarded
		return fmt.Errorf("snapshot: write %s: %w", tmpPath, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //horam:errok the fsync error is the one to surface; the temp file is discarded
		return fmt.Errorf("snapshot: fsync %s: %w", tmpPath, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close %s: %w", tmpPath, err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()  //horam:errok best effort: some filesystems reject directory fsync
		d.Close() //horam:errok read-only directory handle; nothing to flush
	}
	return nil
}

// ReadFile reads a container written by WriteFile and returns its
// payload. Any structural damage — wrong magic, unsupported version,
// truncation, bit flips — is an error; a payload is only returned when
// the checksum over the whole container verifies.
func ReadFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerLen+checksumLen || !bytes.Equal(raw[:8], magic[:]) {
		return nil, fmt.Errorf("%w: %s", ErrFormat, path)
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != Version {
		return nil, fmt.Errorf("%w: %s has version %d, this build reads %d", ErrVersion, path, v, Version)
	}
	plen := binary.BigEndian.Uint64(raw[12:headerLen])
	if uint64(len(raw)) != headerLen+plen+checksumLen {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	body := raw[:headerLen+plen]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], raw[headerLen+plen:]) {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	payload := make([]byte, plen)
	copy(payload, body[headerLen:])
	return payload, nil
}

// Counters mirrors the scheme-level counters of one H-ORAM instance
// (horam.Stats; duplicated here to keep the dependency arrow pointing
// from the ORAM to its persistence format, not the other way).
type Counters struct {
	Requests      int64
	Cycles        int64
	Misses        int64
	Hits          int64
	DummyIO       int64
	DummyMemory   int64
	Shuffles      int64
	PartShuffled  int64
	EvictedReal   int64
	ShuffleQuanta int64
	MaxCycleNanos int64
}

// Shard is the complete control state of one H-ORAM instance at a
// quiescent point (empty reorder buffer, no shuffle in progress).
// Everything needed to resume is here or re-derivable from the master
// key — which itself is never stored.
type Shard struct {
	// Geometry echo, validated against the rebuilt configuration on
	// restore so a snapshot can never be loaded into a mismatched
	// instance.
	Blocks     int64
	BlockSize  int
	SlotSize   int
	MemSlots   int64 // memory-tree device slots
	Partitions int64
	PartSlots  int64
	MissBudget int64

	// Key-derivation parameters. Epoch is the boot generation of the
	// instance that took the snapshot; a restore boots with Epoch+1 —
	// and immediately persists the bump — so every derived seed, and
	// therefore every RNG stream and sealer nonce sequence, differs
	// from all previous boots.
	Epoch uint64

	// Checkpoint counts SaveSnapshot calls over the instance's whole
	// life (it survives restores). A multi-shard engine saves all its
	// shards in lockstep, so equal Checkpoint values are the witness
	// that the per-shard snapshots belong to the SAME checkpoint — a
	// crash midway through a checkpoint loop leaves them unequal and
	// the restore refuses the mixed image.
	Checkpoint uint64

	// Scheduler / period state.
	MissCount  int64
	NextPart   int64
	ShuffleGen int64
	Stats      Counters

	// Permutation list (per logical address).
	PermTier    []uint8 // 0 = storage, 1 = memory
	PermSlot    []int64
	PermTouched []bool

	// Memory-tier Path ORAM control state.
	Leaves     []int64 // position map (posmap.NoLeaf = unmapped)
	RealCount  int64
	StashAddrs []int64
	StashData  [][]byte // plaintext; the enclosing payload must be sealed

	// Sealed memory-tree device image, slot by slot. The memory tier
	// is DRAM — volatile — so its ciphertext rides in the snapshot,
	// unlike the storage tier, which is durable in its own file.
	MemImage [][]byte
}

// Encode gob-encodes the shard state for WriteFile (after sealing).
func (s *Shard) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("snapshot: encode shard: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeShard reverses Shard.Encode.
func DecodeShard(b []byte) (*Shard, error) {
	var s Shard
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode shard: %w", err)
	}
	return &s, nil
}

// Manifest is the engine-level snapshot record: the cross-shard
// geometry a restore must agree on before any shard state is touched.
// Seed matters as much as the numeric dimensions: the PRF address
// partition derives from it, so a different seed silently scrambles
// every address→shard route (in insecure mode nothing else would
// catch it — the NullSealer authenticates any snapshot).
type Manifest struct {
	Blocks    int64
	BlockSize int
	Shards    int
	// ClusterShards/ShardIndex are the cluster identity echo: a
	// -shard-serve node's image records which shard of how large a
	// placement it holds (0/0 for a standalone store), so a directory
	// can never be resumed as a different shard and a gateway can
	// detect a node launched with drifted global geometry.
	ClusterShards int
	ShardIndex    int
	MemoryBytes   int64
	ShuffleRatio  float64
	// MonolithicShuffle is echoed so an image persisted under one
	// shuffle mode is not silently resumed under the other: the modes
	// are state-compatible at period boundaries, but the operator's
	// latency expectations (and any recorded baselines) are not.
	MonolithicShuffle bool
	// ConstantTime is echoed so an image persisted under one
	// controller mode is not silently resumed under the other: the
	// modes are state-compatible (identical sealed bytes), but the
	// operator's timing-hardening expectations are not.
	ConstantTime bool
	Insecure     bool
	Seed         string
	Epoch        uint64

	// KV is the oblivious key–value subsystem's directory state when
	// the image belongs to a KV store (nil for raw block images). It
	// rides in the manifest — the file written last and read first — so
	// a restore sees KV geometry and occupancy from the same checkpoint
	// cut as the shard snapshots, and persistence adds no KV-specific
	// volume channel: the table's contents live in the ordinary block
	// image, this record only carries geometry and counters.
	KV *KVState
}

// KVState is the control state of an okv.Store: the static table
// geometry (validated on resume — a mismatched layout would silently
// scramble every key's bucket and extent addresses) plus the live-key
// count and operation counters at the checkpoint. It never contains
// keys, values, or key material.
type KVState struct {
	Buckets        int64
	SlotsPerBucket int
	MaxValueBytes  int
	MaxKeyBytes    int
	Count          int64
	Gets           int64
	Sets           int64
	Dels           int64
	Misses         int64
}

// Encode gob-encodes the manifest for WriteFile (after sealing).
func (m *Manifest) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("snapshot: encode manifest: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeManifest reverses Manifest.Encode.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("snapshot: decode manifest: %w", err)
	}
	return &m, nil
}

// Gen is the shuffle generation marker (see the package doc).
type Gen struct {
	Started   int64 // shuffle generations begun
	Completed int64 // shuffle generations whose storage writes are durable
}

// WriteGen atomically replaces the generation marker at path.
func WriteGen(path string, g Gen) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&g); err != nil {
		return fmt.Errorf("snapshot: encode gen: %w", err)
	}
	return WriteFile(path, buf.Bytes())
}

// ReadGen reads a marker written by WriteGen.
func ReadGen(path string) (Gen, error) {
	payload, err := ReadFile(path)
	if err != nil {
		return Gen{}, err
	}
	var g Gen
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&g); err != nil {
		return Gen{}, fmt.Errorf("snapshot: decode gen: %w", err)
	}
	return g, nil
}
