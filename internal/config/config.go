// Package config is the single definition of the cross-layer H-ORAM
// options. Historically horam.Config, core.Options and engine.Options
// each re-declared the same knobs (geometry, key material, shuffle
// mode, durability paths) and each re-echoed them into manifests with
// its own mismatch check, so the three copies could — and did — drift.
// Now there is one Common struct: core.Options and engine.Options are
// aliases of it, horam.Config embeds the subset it consumes, and the
// manifest echo plus the restore-time mismatch refusal live here, in
// exactly one place.
//
// Construction supports both plain struct literals (the historical
// style, still used throughout the tests) and functional options:
//
//	opts := config.New(
//	        config.WithBlocks(1<<16),
//	        config.WithMemoryBytes(8<<20),
//	        config.WithKey(key),
//	        config.WithShards(4),
//	)
//	eng, err := engine.New(opts)
package config

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/snapshot"
)

// DefaultBlockSize is the paper's block size (1 KB).
const DefaultBlockSize = 1 << 10

// Stage is one phase of the scheduler's group-size schedule: for Frac
// of the period's I/O budget, every cycle groups C in-memory reads
// with the single storage load (paper §4.2: c starts small while the
// cache is cold and grows as it warms).
type Stage struct {
	C    int
	Frac float64
}

// Common is the one definition of the knobs every layer shares. Zero
// values select the paper's defaults where one exists.
type Common struct {
	// Blocks is the logical data set size N in blocks. Required.
	Blocks int64
	// BlockSize defaults to DefaultBlockSize.
	BlockSize int
	// MemoryBytes is the trusted-adjacent memory-tier budget (the
	// paper's n, counted in plaintext block capacity). Required. A
	// sharded engine divides it evenly across shards.
	MemoryBytes int64
	// Key is the 32-byte master key. Required unless Insecure is set.
	Key []byte
	// Insecure disables encryption and integrity (NullSealer) for
	// performance-model runs. Never use it with real data.
	Insecure bool
	// Seed makes all randomness deterministic for replayable
	// experiments; empty derives the seed from the key.
	Seed string
	// Shards is the shard count S of a sharded engine; 0 selects 1.
	// The single-instance core refuses Shards > 1.
	Shards int
	// ClusterShards and ShardIndex identify a process that serves ONE
	// shard of a larger placement (horamd -shard-serve): the process is
	// shard ShardIndex of a ClusterShards-wide cluster, its local
	// geometry derived from the global one by engine.ShardConfig. Both
	// are echoed in the manifest, so a durable shard directory can never
	// be resumed as a different shard (or as a standalone store) without
	// refusal, and the gateway's placement validation can detect a node
	// launched with drifted global options. Zero values mean standalone.
	ClusterShards int
	ShardIndex    int
	// ShuffleRatio enables partial shuffling (§5.3.1); 0 or 1 = full.
	ShuffleRatio float64
	// MonolithicShuffle selects the stop-the-world shuffle (the whole
	// period inside one scheduler cycle) instead of the default
	// deamortized pipeline.
	MonolithicShuffle bool
	// Stages overrides the scheduler's c schedule; nil selects the
	// paper's {1, 3, 5} over {20%, 13%, 67%}.
	Stages []Stage
	// SealWorkers bounds the worker pool that parallelises seal/unseal
	// across the records of a cycle or shuffle quantum. 0 sizes the
	// pool by GOMAXPROCS (serial on one core); 1 forces serial.
	SealWorkers int
	// ConstantTime hardens the controller's trusted-memory structures
	// against a co-located timing adversary: stash lookup/insert/evict,
	// position-map lookups and the okv slot selection become
	// full-length fixed-order scans with crypto/subtle-style selects
	// instead of map/early-exit code. The mode changes only in-memory
	// computation — the sealed device traffic is byte-identical to the
	// default mode — at a substantial CPU cost per access.
	ConstantTime bool
	// DataDir enables the durable storage backend (see core.Options /
	// engine.Options for the per-layer directory layouts). Empty keeps
	// the in-memory simulator.
	DataDir string
	// FsyncEvery picks the storage file's fsync policy: 0 fsyncs only
	// at consistency points (shuffle ends, snapshots), 1 after every
	// write, n > 1 after every n-th write. Ignored without DataDir.
	FsyncEvery int
}

// Option mutates a Common under construction (see New).
type Option func(*Common)

// New builds a Common from functional options.
func New(opts ...Option) Common {
	var c Common
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithBlocks sets the logical data set size N.
func WithBlocks(n int64) Option { return func(c *Common) { c.Blocks = n } }

// WithBlockSize sets the plaintext block size in bytes.
func WithBlockSize(n int) Option { return func(c *Common) { c.BlockSize = n } }

// WithMemoryBytes sets the memory-tier budget.
func WithMemoryBytes(n int64) Option { return func(c *Common) { c.MemoryBytes = n } }

// WithKey sets the 32-byte master key.
func WithKey(key []byte) Option { return func(c *Common) { c.Key = key } }

// WithInsecure disables encryption and integrity (performance-model
// runs only).
func WithInsecure() Option { return func(c *Common) { c.Insecure = true } }

// WithSeed pins the deterministic randomness seed.
func WithSeed(seed string) Option { return func(c *Common) { c.Seed = seed } }

// WithShards sets the engine shard count.
func WithShards(s int) Option { return func(c *Common) { c.Shards = s } }

// WithShardIdentity marks the configuration as shard index of a
// cluster-wide placement of total shards (see Common.ClusterShards).
func WithShardIdentity(index, total int) Option {
	return func(c *Common) { c.ShardIndex = index; c.ClusterShards = total }
}

// WithShuffleRatio enables partial shuffling.
func WithShuffleRatio(r float64) Option { return func(c *Common) { c.ShuffleRatio = r } }

// WithMonolithicShuffle selects the stop-the-world shuffle mode.
func WithMonolithicShuffle() Option { return func(c *Common) { c.MonolithicShuffle = true } }

// WithStages overrides the scheduler's c schedule.
func WithStages(stages []Stage) Option { return func(c *Common) { c.Stages = stages } }

// WithSealWorkers bounds the seal/unseal worker pool.
func WithSealWorkers(n int) Option { return func(c *Common) { c.SealWorkers = n } }

// WithConstantTime enables the constant-time controller mode.
func WithConstantTime() Option { return func(c *Common) { c.ConstantTime = true } }

// WithDataDir enables the durable storage backend under dir.
func WithDataDir(dir string) Option { return func(c *Common) { c.DataDir = dir } }

// WithFsyncEvery sets the storage file's fsync policy.
func WithFsyncEvery(n int) Option { return func(c *Common) { c.FsyncEvery = n } }

// WithDefaults returns c with the cross-layer defaults filled in:
// BlockSize and (for engine callers) a shard count of 1.
func (c Common) WithDefaults() Common {
	if c.BlockSize == 0 {
		c.BlockSize = DefaultBlockSize
	}
	return c
}

// Validate applies the shared validation rules. prefix names the
// calling layer ("core", "engine") so errors keep their historical
// shape.
func (c Common) Validate(prefix string) error {
	if c.Blocks <= 0 {
		return fmt.Errorf("%s: Blocks must be positive, got %d", prefix, c.Blocks)
	}
	if c.BlockSize < 0 {
		return fmt.Errorf("%s: negative BlockSize", prefix)
	}
	if c.MemoryBytes <= 0 {
		return fmt.Errorf("%s: MemoryBytes must be positive", prefix)
	}
	if c.FsyncEvery < 0 {
		return fmt.Errorf("%s: negative FsyncEvery", prefix)
	}
	if c.SealWorkers < 0 {
		return fmt.Errorf("%s: negative SealWorkers", prefix)
	}
	if c.ShuffleRatio < 0 || c.ShuffleRatio > 1 {
		return fmt.Errorf("%s: ShuffleRatio %v out of [0,1]", prefix, c.ShuffleRatio)
	}
	if !c.Insecure && len(c.Key) != 32 {
		return fmt.Errorf("%s: Key must be 32 bytes, got %d", prefix, len(c.Key))
	}
	if c.ClusterShards < 0 || c.ShardIndex < 0 {
		return fmt.Errorf("%s: negative cluster identity (ClusterShards %d, ShardIndex %d)", prefix, c.ClusterShards, c.ShardIndex)
	}
	if c.ClusterShards == 0 && c.ShardIndex != 0 {
		return fmt.Errorf("%s: ShardIndex %d without ClusterShards", prefix, c.ShardIndex)
	}
	if c.ClusterShards > 0 && c.ShardIndex >= c.ClusterShards {
		return fmt.Errorf("%s: ShardIndex %d out of [0,%d)", prefix, c.ShardIndex, c.ClusterShards)
	}
	sum := 0.0
	for _, s := range c.Stages {
		if s.C <= 0 || s.Frac < 0 {
			return fmt.Errorf("%s: invalid stage %+v", prefix, s)
		}
		sum += s.Frac
	}
	if c.Stages != nil && math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%s: stage fractions sum to %v, want 1", prefix, sum)
	}
	return nil
}

// Manifest renders the geometry echo a sharded engine persists at each
// SaveSnapshot — the one place options become durable state. Restore
// validates a loaded manifest against the caller's options with
// CheckManifest, so echo and check can never disagree on the field
// set.
func (c Common) Manifest(epoch uint64) snapshot.Manifest {
	return snapshot.Manifest{
		Blocks:            c.Blocks,
		BlockSize:         c.BlockSize,
		Shards:            c.Shards,
		ClusterShards:     c.ClusterShards,
		ShardIndex:        c.ShardIndex,
		MemoryBytes:       c.MemoryBytes,
		ShuffleRatio:      c.ShuffleRatio,
		MonolithicShuffle: c.MonolithicShuffle,
		ConstantTime:      c.ConstantTime,
		Insecure:          c.Insecure,
		Seed:              c.Seed,
		Epoch:             epoch,
	}
}

// CheckManifest refuses a persisted manifest that disagrees with c on
// any geometry dimension — the restore-time mismatch refusal, defined
// once for every layer.
func (c Common) CheckManifest(man *snapshot.Manifest) error {
	if man == nil {
		return errors.New("config: nil manifest")
	}
	return CheckEcho("engine: restore option mismatch", []Field{
		{"Blocks", c.Blocks, man.Blocks},
		{"BlockSize", c.BlockSize, man.BlockSize},
		{"Shards", c.Shards, man.Shards},
		{"ClusterShards", c.ClusterShards, man.ClusterShards},
		{"ShardIndex", c.ShardIndex, man.ShardIndex},
		{"MemoryBytes", c.MemoryBytes, man.MemoryBytes},
		{"ShuffleRatio", c.ShuffleRatio, man.ShuffleRatio},
		{"MonolithicShuffle", c.MonolithicShuffle, man.MonolithicShuffle},
		{"ConstantTime", c.ConstantTime, man.ConstantTime},
		{"Insecure", c.Insecure, man.Insecure},
		{"Seed", c.Seed, man.Seed},
	})
}

// Field is one echoed geometry dimension compared at restore time.
type Field struct {
	Name      string
	Got, Want any
}

// CheckEcho compares a slice of echoed fields and reports the first
// disagreement in the uniform refusal shape every restore path in this
// repository uses. Comparison is by interface equality, so both sides
// of a field must be the same concrete type.
func CheckEcho(context string, fields []Field) error {
	for _, f := range fields {
		if f.Got != f.Want {
			return fmt.Errorf("%s: %s is %v but the persisted image was built with %v", context, f.Name, f.Got, f.Want)
		}
	}
	return nil
}
