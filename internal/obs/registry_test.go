package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Registration without a publicness justification must fail at
// startup — the mechanical half of the leak audit.
func TestRegistrationRequiresJustification(t *testing.T) {
	r := NewRegistry()
	if err := r.register(&metric{name: "bad_counter", decl: Decl{}, kind: kindCounter, counter: &Counter{}}); err == nil {
		t.Fatal("registering a metric with an empty Decl should be refused")
	}
	if err := r.register(&metric{name: "bad_counter", decl: Decl{Class: ClassPublic, Reason: "   "}, kind: kindCounter, counter: &Counter{}}); err == nil {
		t.Fatal("a whitespace-only justification should be refused")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Counter with empty Decl should panic at startup")
		}
	}()
	r.Counter("bad_counter", "", Decl{})
}

func TestDuplicateAndInvalidRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", Public("test"))
	if err := r.register(&metric{name: "dup_total", decl: Public("test"), kind: kindCounter, counter: &Counter{}}); err == nil {
		t.Fatal("duplicate series should be refused")
	}
	// Same name with different labels is a distinct series.
	r.Counter("dup_total", "", Public("test"), Label{"shard", "0"})
	if err := r.register(&metric{name: "bad name", decl: Public("test"), kind: kindCounter, counter: &Counter{}}); err == nil {
		t.Fatal("invalid metric name should be refused")
	}
	if err := r.register(&metric{name: "ok_total", decl: Public("test"), kind: kindCounter, counter: &Counter{},
		labels: []Label{{"k", "v\"w"}}}); err == nil {
		t.Fatal("label value with a quote should be refused")
	}
}

// A nil registry hands out nil instruments, and every instrument
// method must be nil-receiver safe — that is the no-op mode benched
// by bench-obs.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "", Public("test"))
	g := r.Gauge("x", "", Public("test"))
	h := r.Histogram("x_seconds", "", Timing("test"), DurationBounds())
	r.GaugeFunc("y", "", Public("test"), func() int64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.NumBuckets() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Begin("x", 0).End(Arg{"k", 1})
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("horam_requests_total", "client ops", Public("client-visible op count"))
	c.Add(7)
	for i := 0; i < 4; i++ {
		r.GaugeFunc("horam_shard_cycles", "cycles", Public("leveled"),
			func() int64 { return 42 }, Label{"shard", itoa(i)})
	}
	h := r.Histogram("horam_batch_seconds", "latency", Timing("wall clock"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP horam_requests_total client ops",
		"# TYPE horam_requests_total counter",
		"# CLASS horam_requests_total public",
		"horam_requests_total 7",
		`horam_shard_cycles{shard="2"} 42`,
		"# TYPE horam_batch_seconds histogram",
		"# CLASS horam_batch_seconds timing",
		`horam_batch_seconds_bucket{le="0.1"} 1`,
		`horam_batch_seconds_bucket{le="1"} 2`,
		`horam_batch_seconds_bucket{le="+Inf"} 3`,
		"horam_batch_seconds_sum 5.55",
		"horam_batch_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP header per name even with four labeled series.
	if n := strings.Count(out, "# HELP horam_shard_cycles"); n != 1 {
		t.Fatalf("HELP for horam_shard_cycles rendered %d times", n)
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("content type = %q", got)
	}
	if rec.Body.String() != out {
		t.Fatal("ServeHTTP body differs from WritePrometheus")
	}
}

// The audited snapshot carries only Public-class series; Timing-class
// values (wall clock) must not appear.
func TestAuditTextExcludesTiming(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub_total", "", Public("test")).Add(3)
	r.Histogram("lat_seconds", "", Timing("wall clock"), DurationBounds()).Observe(0.25)
	out := r.AuditText()
	if !strings.Contains(out, "pub_total 3") {
		t.Fatalf("audit missing public counter:\n%s", out)
	}
	if strings.Contains(out, "lat_seconds") {
		t.Fatalf("audit leaked a timing-class metric:\n%s", out)
	}
	if strings.Contains(out, "#") {
		t.Fatalf("audit text should carry no comments:\n%s", out)
	}
	decls := r.Decls()
	if d, ok := decls["pub_total"]; !ok || d.Class != ClassPublic {
		t.Fatalf("Decls() = %v", decls)
	}
}

// Rendering order is deterministic regardless of registration order —
// the differential test compares snapshots byte for byte.
func TestDeterministicOrder(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			r.Counter("m_total", "", Public("test"), Label{"shard", itoa(i)}).Add(int64(i))
		}
		r.Counter("a_total", "", Public("test")).Add(9)
		return r.AuditText()
	}
	if build([]int{0, 1, 2, 3}) != build([]int{3, 1, 0, 2}) {
		t.Fatal("audit text depends on registration order")
	}
	if !strings.HasPrefix(build([]int{0}), "a_total 9\n") {
		t.Fatal("series not sorted by id")
	}
}

// Hot-path instrument updates must not allocate or lock — they run
// inside the PR 6 zero-alloc steady state.
func TestInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", Public("test"))
	g := r.Gauge("g", "", Public("test"))
	h := r.Histogram("h_seconds", "", Timing("test"), DurationBounds())
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Add(1)
		h.Observe(1e-4)
		h.ObserveDuration(3 * time.Millisecond)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %.1f times per run", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bs", "", Public("test"), BatchSizeBounds())
	for _, v := range []float64{1, 2, 3, 4, 5, 64, 65, 1000} {
		h.Observe(v)
	}
	want := []int64{1, 1, 2, 1, 0, 0, 1, 2} // le 1,2,4,8,16,32,64,+Inf
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", Public("test"))
	h := r.Histogram("h_seconds", "", Timing("test"), DurationBounds())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("c=%d h=%d", c.Value(), h.Count())
	}
	if s := h.Sum(); s < 7.99 || s > 8.01 {
		t.Fatalf("sum = %v", s)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
