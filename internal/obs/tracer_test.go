package obs

import (
	"encoding/json"
	"testing"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(16)
	// Disabled: Begin/End are no-ops.
	tr.Begin("ignored", 0).End()
	if tr.Len() != 0 {
		t.Fatal("span recorded while disabled")
	}
	tr.Start()
	if !tr.Enabled() {
		t.Fatal("Start did not enable")
	}
	s := tr.Begin("batch", 0)
	tr.Begin("quantum", 2).End(Arg{"cycle", 7}, Arg{"pad", 1})
	s.End(Arg{"size", 3})
	tr.Stop()
	tr.Begin("after", 0).End()
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}

	raw, err := tr.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Pid  int              `json:"pid"`
			Tid  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, raw)
	}
	if len(dump.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(dump.TraceEvents))
	}
	q := dump.TraceEvents[0]
	if q.Name != "quantum" || q.Ph != "X" || q.Tid != 2 || q.Pid != 1 {
		t.Fatalf("quantum event = %+v", q)
	}
	if q.Args["cycle"] != 7 || q.Args["pad"] != 1 {
		t.Fatalf("quantum args = %v", q.Args)
	}
	if dump.TraceEvents[1].Name != "batch" || dump.TraceEvents[1].Args["size"] != 3 {
		t.Fatalf("batch event = %+v", dump.TraceEvents[1])
	}
}

func TestTracerBufferCap(t *testing.T) {
	tr := NewTracer(4)
	tr.Start()
	for i := 0; i < 10; i++ {
		tr.Begin("s", 0).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want cap 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// Start resets buffer and drop count.
	tr.Start()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Start did not reset")
	}
}

func TestNilTracerDump(t *testing.T) {
	var tr *Tracer
	raw, err := tr.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"traceEvents":[]}` {
		t.Fatalf("nil dump = %s", raw)
	}
}

// The disabled fast path must be allocation-free: tracing sites sit
// inside the zero-alloc steady state.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	tr := NewTracer(16)
	if n := testing.AllocsPerRun(200, func() {
		tr.Begin("s", 1).End(Arg{"k", 1})
	}); n != 0 {
		t.Fatalf("disabled tracer allocates %.1f times per run", n)
	}
}
