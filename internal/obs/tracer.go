package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records request-path spans into a bounded in-memory buffer
// and dumps them in the chrome://tracing JSON array format (load the
// dump in chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off by default and costs one atomic load per
// instrumentation site while off. It is a TRUSTED diagnostic surface
// like STATS: span durations and annotations are wall-clock and
// secret-adjacent, so the dump is served over the operator control
// surface (the TRACE verb), never over /metrics.
//
// A nil *Tracer is inert: Begin returns an inert Span and Enabled
// reports false.
type Tracer struct {
	enabled atomic.Bool
	dropped atomic.Int64

	mu    sync.Mutex
	base  time.Time
	spans []span
	max   int
}

type span struct {
	name  string
	tid   int
	start time.Duration // since base
	dur   time.Duration
	args  [4]Arg
	nargs int
}

// Arg is one integer annotation on a span (cycle index, pad count,
// batch size, …).
type Arg struct {
	Key string
	Val int64
}

// DefaultTraceSpans is the default span-buffer capacity.
const DefaultTraceSpans = 1 << 16

// NewTracer returns a tracer with capacity for max spans (max <= 0
// selects DefaultTraceSpans). The tracer starts disabled.
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceSpans
	}
	return &Tracer{max: max}
}

// Start clears the buffer and enables recording.
func (t *Tracer) Start() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.base = time.Now()
	t.dropped.Store(0)
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Stop disables recording; the buffer is kept for dumping.
func (t *Tracer) Stop() {
	if t == nil {
		return
	}
	t.enabled.Store(false)
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded because the buffer
// was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is an in-flight span handle returned by Begin. The zero Span
// (or any Span from a disabled tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Time
}

// Begin opens a span on virtual thread tid (by convention tid 0 is
// the server/batch path, tid i+1 is shard i). When the tracer is
// disabled this is one atomic load and no clock read.
func (t *Tracer) Begin(name string, tid int) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, start: time.Now()}
}

// End closes the span with optional integer annotations (at most 4
// are kept).
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	end := time.Now()
	sp := span{name: s.name, tid: s.tid}
	sp.nargs = copy(sp.args[:], args)
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped.Add(1)
		return
	}
	sp.start = s.start.Sub(t.base)
	sp.dur = end.Sub(s.start)
	t.spans = append(t.spans, sp)
}

// traceEvent is one chrome://tracing complete event ("ph":"X").
type traceEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// DumpJSON renders the buffered spans as a chrome://tracing trace.
func (t *Tracer) DumpJSON() ([]byte, error) {
	if t == nil {
		return []byte(`{"traceEvents":[]}`), nil
	}
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.spans))
	for _, sp := range t.spans {
		ev := traceEvent{
			Name: sp.name,
			Ph:   "X",
			Ts:   float64(sp.start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  sp.tid,
		}
		if sp.nargs > 0 {
			ev.Args = make(map[string]int64, sp.nargs)
			for _, a := range sp.args[:sp.nargs] {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}
	t.mu.Unlock()
	return json.Marshal(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events})
}
