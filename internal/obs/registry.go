// Package obs is the observability layer: a zero-alloc metrics
// registry with a mandatory leak audit, and a request-path tracer
// (tracer.go) that dumps chrome://tracing JSON.
//
// # The public-observable contract
//
// In an H-ORAM deployment the monitoring pipeline is part of the
// threat model: a Prometheus scrape travels the same untrusted
// networks the device bus does, so a metric derived from
// secret-dependent state is a side channel exactly like an unpadded
// bus trace. Every metric in a Registry must therefore be registered
// with a Decl — a publicness class plus a written justification of
// why exporting the value reveals nothing the adversary model does
// not already grant. Registration without a justification panics at
// startup; there is no way to export an undeclared metric.
//
// Two classes exist:
//
//   - Public: the value is a public observable — a deterministic
//     function of information the adversary already has (client op
//     counts, leveled cycle counts, wire-visible verbs, transport
//     faults). Public metrics form the audited snapshot
//     (WriteAudit): the differential test in internal/server asserts
//     the snapshot is byte-identical across adversarial workloads of
//     equal op count, so a secret-dependent counter slipped in under
//     a Public declaration fails CI, not review.
//   - Timing: the value carries wall-clock (or process-global)
//     measurement — latency histograms, throughput totals. Excluded
//     from the audited snapshot, because wall-clock timing is
//     explicitly outside the volume-leveling guarantee (see README
//     "Threat model"): the timing gate from PR 7, not snapshot
//     equality, is the discipline for those.
//
// Counters, gauges and histogram observations are single atomic
// operations — no allocation, no locking — so instrumenting the
// zero-alloc hot paths from PR 6 does not perturb them. All
// instrument methods are nil-receiver safe: a nil *Counter (no
// registry wired) makes the instrumented code a no-op, which is what
// `make bench-obs` measures against.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class is the publicness class of a metric.
type Class int

// Metric publicness classes. See the package doc for the contract.
const (
	// ClassPublic marks a public observable; included in the audited
	// snapshot that must be workload-independent.
	ClassPublic Class = iota
	// ClassTiming marks a wall-clock (or process-global) measurement;
	// exported but excluded from the audited snapshot.
	ClassTiming
)

// Decl is the mandatory publicness declaration of a metric: its class
// and the written justification. The zero Decl is invalid —
// registration refuses it.
type Decl struct {
	Class  Class
	Reason string
}

// Public declares a metric a public observable (audited). The reason
// must say WHY the adversary model already grants the value.
func Public(reason string) Decl { return Decl{Class: ClassPublic, Reason: reason} }

// Timing declares a wall-clock measurement (exported, unaudited). The
// reason must say what the value measures and why it lives outside
// the snapshot-equality guarantee.
func Timing(reason string) Decl { return Decl{Class: ClassTiming, Reason: reason} }

// Label is one metric label pair, e.g. {“shard”, “0”}.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing atomic counter. The zero
// value is usable; a nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: counts per bucket, a total
// count and a running sum, all atomics. Buckets are defined by their
// inclusive upper bounds (Prometheus `le` semantics) with an implicit
// +Inf bucket at the end. Observe is zero-alloc; a nil *Histogram is
// a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// PowerOfTwoBounds returns upper bounds start, 2·start, 4·start, …
// (n bounds) — the log-bucketing every latency histogram here uses.
func PowerOfTwoBounds(start float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// BatchSizeBounds are the upper bounds matching the engine's
// batch-size histogram buckets (1, 2, 3-4, 5-8, …, 65+).
func BatchSizeBounds() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64} }

// DurationBounds are the default latency bounds: 1µs to ~4s in
// powers of two (23 buckets + Inf).
func DurationBounds() []float64 { return PowerOfTwoBounds(1e-6, 23) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// NumBuckets returns the bucket count including the +Inf bucket (0 on
// nil).
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// Bucket returns the count of bucket i (the last index is +Inf).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series: an instrument plus its identity
// and declaration.
type metric struct {
	name   string
	labels []Label // sorted by key
	help   string
	decl   Decl
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// id is the unique series identity: name plus rendered labels.
func (m *metric) id() string {
	if len(m.labels) == 0 {
		return m.name
	}
	var b strings.Builder
	b.WriteString(m.name)
	b.WriteByte('{')
	for i, l := range m.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds declared metrics and renders them in Prometheus text
// format. All methods are safe for concurrent use; registration is
// expected at startup, scraping at any time.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric // sorted by id
	ids     map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]bool)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register validates and inserts; it returns an error so tests can
// assert refusal, while the exported constructors turn it into the
// startup panic the leak audit demands.
func (r *Registry) register(m *metric) error {
	if r == nil {
		return nil
	}
	if !validName(m.name) {
		return fmt.Errorf("obs: invalid metric name %q", m.name)
	}
	if strings.TrimSpace(m.decl.Reason) == "" {
		return fmt.Errorf("obs: metric %q registered without a publicness justification; every exported value must declare why it is a public observable (obs.Public) or a wall-clock measurement (obs.Timing)", m.name)
	}
	for _, l := range m.labels {
		if !validName(l.Key) || strings.ContainsAny(l.Value, "\"\n\\") {
			return fmt.Errorf("obs: metric %q has invalid label %q=%q", m.name, l.Key, l.Value)
		}
	}
	sort.Slice(m.labels, func(i, j int) bool { return m.labels[i].Key < m.labels[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	id := m.id()
	if r.ids[id] {
		return fmt.Errorf("obs: metric %s registered twice", id)
	}
	r.ids[id] = true
	at := sort.Search(len(r.metrics), func(i int) bool { return r.metrics[i].id() >= id })
	r.metrics = append(r.metrics, nil)
	copy(r.metrics[at+1:], r.metrics[at:])
	r.metrics[at] = m
	return nil
}

func (r *Registry) must(m *metric) {
	if err := r.register(m); err != nil {
		panic(err)
	}
}

// Counter registers and returns a counter. It panics on a missing
// justification or duplicate identity — misregistration must fail at
// startup, not at scrape time. A nil registry returns a nil (no-op)
// instrument.
func (r *Registry) Counter(name, help string, d Decl, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.must(&metric{name: name, labels: labels, help: help, decl: d, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge (panics like Counter).
func (r *Registry) Gauge(name, help string, d Decl, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.must(&metric{name: name, labels: labels, help: help, decl: d, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time — for counters another subsystem already maintains (engine
// cycle counts, sealer totals) that should not be double-counted.
func (r *Registry) GaugeFunc(name, help string, d Decl, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.must(&metric{name: name, labels: labels, help: help, decl: d, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers and returns a histogram over the given upper
// bounds (panics like Counter).
func (r *Registry) Histogram(name, help string, d Decl, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not increasing", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Int64, len(bounds)+1)}
	r.must(&metric{name: name, labels: labels, help: help, decl: d, kind: kindHistogram, hist: h})
	return h
}

// snapshot returns the current metric list (the slice is never
// mutated after insertion order settles, but take it under the lock).
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendSample renders `name{labels,extra...} value\n`.
func appendSample(dst []byte, name string, labels []Label, suffix string, extra []Label, value []byte) []byte {
	dst = append(dst, name...)
	dst = append(dst, suffix...)
	if len(labels)+len(extra) > 0 {
		dst = append(dst, '{')
		n := 0
		for _, l := range append(append([]Label(nil), labels...), extra...) {
			if n > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, l.Key...)
			dst = append(dst, '=', '"')
			dst = append(dst, l.Value...)
			dst = append(dst, '"')
			n++
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ' ')
	dst = append(dst, value...)
	dst = append(dst, '\n')
	return dst
}

func (m *metric) appendSamples(dst []byte) []byte {
	var num [32]byte
	switch m.kind {
	case kindCounter:
		dst = appendSample(dst, m.name, m.labels, "", nil, strconv.AppendInt(num[:0], m.counter.Value(), 10))
	case kindGauge:
		dst = appendSample(dst, m.name, m.labels, "", nil, strconv.AppendInt(num[:0], m.gauge.Value(), 10))
	case kindGaugeFunc:
		dst = appendSample(dst, m.name, m.labels, "", nil, strconv.AppendInt(num[:0], m.fn(), 10))
	case kindHistogram:
		h := m.hist
		var cum int64
		for i := 0; i < h.NumBuckets(); i++ {
			cum += h.Bucket(i)
			le := "+Inf"
			var leBuf []byte
			if i < len(h.bounds) {
				leBuf = appendFloat(nil, h.bounds[i])
				le = string(leBuf)
			}
			dst = appendSample(dst, m.name, m.labels, "_bucket", []Label{{"le", le}}, strconv.AppendInt(num[:0], cum, 10))
		}
		dst = appendSample(dst, m.name, m.labels, "_sum", nil, appendFloat(num[:0], h.Sum()))
		dst = appendSample(dst, m.name, m.labels, "_count", nil, strconv.AppendInt(num[:0], h.Count(), 10))
	}
	return dst
}

func (m *metric) typeName() string {
	switch m.kind {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), with one HELP/TYPE header per metric name.
// The publicness class is surfaced as a comment so a scrape shows
// which series are part of the audited snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var dst []byte
	lastName := ""
	for _, m := range r.snapshot() {
		if m.name != lastName {
			class := "public"
			if m.decl.Class == ClassTiming {
				class = "timing"
			}
			dst = append(dst, "# HELP "...)
			dst = append(dst, m.name...)
			dst = append(dst, ' ')
			dst = append(dst, strings.ReplaceAll(m.help, "\n", " ")...)
			dst = append(dst, '\n')
			dst = append(dst, "# TYPE "...)
			dst = append(dst, m.name...)
			dst = append(dst, ' ')
			dst = append(dst, m.typeName()...)
			dst = append(dst, '\n')
			dst = append(dst, "# CLASS "...)
			dst = append(dst, m.name...)
			dst = append(dst, ' ')
			dst = append(dst, class...)
			dst = append(dst, '\n')
			lastName = m.name
		}
		dst = m.appendSamples(dst)
	}
	_, err := w.Write(dst)
	return err
}

// WriteAudit renders ONLY the ClassPublic samples, without comments —
// the audited snapshot. Two runs of adversarial workloads with equal
// public parameters must render byte-identical audit text; the
// differential test in internal/server enforces it.
func (r *Registry) WriteAudit(w io.Writer) error {
	var dst []byte
	for _, m := range r.snapshot() {
		if m.decl.Class != ClassPublic {
			continue
		}
		dst = m.appendSamples(dst)
	}
	_, err := w.Write(dst)
	return err
}

// AuditText returns WriteAudit's output as a string.
func (r *Registry) AuditText() string {
	var b strings.Builder
	r.WriteAudit(&b) //horam:errok strings.Builder writes cannot fail
	return b.String()
}

// Decls returns every registered series id with its declaration —
// the audit trail reviewers (and the README) work from.
func (r *Registry) Decls() map[string]Decl {
	out := make(map[string]Decl)
	for _, m := range r.snapshot() {
		out[m.id()] = m.decl
	}
	return out
}

// ServeHTTP serves the Prometheus exposition — mount the registry at
// /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w) //horam:errok a scrape whose conn died mid-write has nobody to report to
}
