package treetop

import (
	"bytes"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/pathoram"
	"repro/internal/simclock"
)

func testConfig(blocks int64, blockSize int) pathoram.Config {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(100 + i)
	}
	rng := blockcipher.NewRNGFromString("treetop-test")
	sealer, err := blockcipher.NewAESSealer(key, rng.Fork("sealer"))
	if err != nil {
		panic(err)
	}
	return pathoram.Config{
		Blocks:    blocks,
		BlockSize: blockSize,
		Z:         4,
		Sealer:    sealer,
		RNG:       rng.Fork("oram"),
	}
}

func build(t *testing.T, blocks int64, blockSize int, memoryBudget int64) (*ORAM, *device.Sim, *device.Sim) {
	t.Helper()
	cfg := testConfig(blocks, blockSize)
	clk := simclock.New()
	mem, err := device.New(device.DRAM(), cfg.SlotSize(), 4*blocks, clk)
	if err != nil {
		t.Fatal(err)
	}
	stor, err := device.New(device.PaperHDD(), cfg.SlotSize(), 4*blocks, clk)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(cfg, mem, stor, memoryBudget)
	if err != nil {
		t.Fatal(err)
	}
	return o, mem, stor
}

func TestLevelSplit(t *testing.T) {
	// 256 blocks → tree capacity 512 slots → Z=4 needs 255 buckets
	// (127·4 = 508 < 512), so Levels = 7 and 8 bucket levels.
	cfg := testConfig(256, 32)
	// Budgets count plaintext blocks (paper accounting).
	budgetFor := func(levels int) int64 {
		return ((int64(1) << uint(levels)) - 1) * 4 * int64(cfg.BlockSize)
	}
	cases := []struct {
		budget    int64
		memLevels int
	}{
		{0, 0},
		{budgetFor(1), 1},
		{budgetFor(3), 3},
		{budgetFor(3) + 1, 3},
		{budgetFor(8), 8}, // whole tree fits
		{1 << 40, 8},
	}
	for _, tc := range cases {
		o, _, _ := build(t, 256, 32, tc.budget)
		if o.MemLevels() != tc.memLevels {
			t.Errorf("budget %d: MemLevels() = %d, want %d", tc.budget, o.MemLevels(), tc.memLevels)
		}
		if got := o.StorageLevels(); got != o.Geometry().Levels+1-tc.memLevels {
			t.Errorf("budget %d: StorageLevels() = %d", tc.budget, got)
		}
	}
}

func TestRoundTripAcrossTiers(t *testing.T) {
	o, _, _ := build(t, 128, 32, 3*4*32) // 2 levels (block size 32)
	want := bytes.Repeat([]byte{0x77}, 32)
	if err := o.Write(17, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(17)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip across tiers failed")
	}
}

func TestAccessSplitsTraffic(t *testing.T) {
	cfg := testConfig(256, 32)
	budget := int64(7 * 4 * cfg.BlockSize) // 3 levels in memory
	o, mem, stor := build(t, 256, 32, budget)

	mem.ResetStats()
	stor.ResetStats()
	if _, err := o.Read(3); err != nil {
		t.Fatal(err)
	}

	// One path = 8 buckets: 3 in memory, 5 on storage; Z=4 slots each,
	// read and written once.
	if got, want := mem.Stats().Reads, int64(3*4); got != want {
		t.Errorf("memory reads = %d, want %d", got, want)
	}
	if got, want := stor.Stats().Reads, int64(5*4); got != want {
		t.Errorf("storage reads = %d, want %d", got, want)
	}
	if got, want := stor.Stats().Writes, int64(5*4); got != want {
		t.Errorf("storage writes = %d, want %d", got, want)
	}
	if o.StorageBucketsPerAccess() != 5 {
		t.Errorf("StorageBucketsPerAccess() = %d, want 5", o.StorageBucketsPerAccess())
	}
}

func TestStorageTimeDominates(t *testing.T) {
	cfg := testConfig(512, 64)
	clk := simclock.New()
	mem, _ := device.New(device.DRAM(), cfg.SlotSize(), 2048, clk)
	stor, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 2048, clk)
	o, err := New(cfg, mem, stor, int64(15*4*cfg.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(0); a < 64; a++ {
		if err := o.Write(a, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Stats().Busy > stor.Stats().Busy {
		t.Fatalf("memory busy %v exceeds storage busy %v; latency model inverted",
			mem.Stats().Busy, stor.Stats().Busy)
	}
}

func TestNegativeBudgetRejected(t *testing.T) {
	cfg := testConfig(64, 32)
	clk := simclock.New()
	mem, _ := device.New(device.DRAM(), cfg.SlotSize(), 1024, clk)
	stor, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 1024, clk)
	if _, err := New(cfg, mem, stor, -1); err == nil {
		t.Fatal("accepted negative memory budget")
	}
}

func TestChurnAcrossTiers(t *testing.T) {
	o, _, _ := build(t, 64, 16, 3*4*16)
	fill := func(b byte) []byte { return bytes.Repeat([]byte{b}, 16) }
	for a := int64(0); a < 64; a++ {
		if err := o.Write(a, fill(byte(a))); err != nil {
			t.Fatal(err)
		}
	}
	rng := blockcipher.NewRNGFromString("tt-churn")
	for i := 0; i < 300; i++ {
		a := rng.Int63n(64)
		got, err := o.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(byte(a))) {
			t.Fatalf("Read(%d) corrupted", a)
		}
	}
}
