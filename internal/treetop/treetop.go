// Package treetop implements the paper's baseline: a Path ORAM whose
// tree top is cached in memory and whose bottom levels spill to
// storage (the ZeroTrace-style layout of Figure 3-1a). Every path
// access therefore costs log2(n/Z) fast memory bucket accesses plus
// log2(2N/n) slow storage bucket accesses — the Z·log2(2N/n) read +
// write I/O overhead of equation (5-3) that H-ORAM attacks.
package treetop

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/oramtree"
	"repro/internal/pathoram"
)

// ORAM is a tree-top-cached Path ORAM. It embeds pathoram.ORAM — the
// protocol is unchanged; only the device placement differs.
type ORAM struct {
	*pathoram.ORAM
	tiered    *device.Tiered
	memLevels int // tree levels resident in memory
}

// New builds the baseline over a memory device and a storage device.
// memoryBudget is the memory-tier budget in bytes, counted in
// plaintext block capacity as the paper does (budget / BlockSize
// slots); the constructor places as many whole top levels as fit.
// Both devices must use cfg.SlotSize() slots.
func New(cfg pathoram.Config, mem, stor device.Device, memoryBudget int64) (*ORAM, error) {
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 2 * cfg.Blocks
	}
	geom, err := oramtree.ForCapacity(capacity, cfg.Z)
	if err != nil {
		return nil, err
	}
	if memoryBudget < 0 {
		return nil, fmt.Errorf("treetop: negative memory budget")
	}
	budgetSlots := memoryBudget / int64(cfg.BlockSize)

	// Place whole levels: the top k levels occupy (2^k − 1)·Z slots.
	memLevels := 0
	for memLevels < geom.Levels+1 {
		next := memLevels + 1
		slots := ((int64(1) << uint(next)) - 1) * int64(cfg.Z)
		if slots > budgetSlots {
			break
		}
		memLevels = next
	}
	boundary := ((int64(1) << uint(memLevels)) - 1) * int64(cfg.Z)

	tiered, err := device.NewTiered(mem, stor, boundary, geom.Slots())
	if err != nil {
		return nil, fmt.Errorf("treetop: %w", err)
	}
	inner, err := pathoram.New(cfg, tiered)
	if err != nil {
		return nil, err
	}
	return &ORAM{ORAM: inner, tiered: tiered, memLevels: memLevels}, nil
}

// MemLevels returns how many tree levels (from the root) live in the
// memory tier.
func (o *ORAM) MemLevels() int { return o.memLevels }

// StorageLevels returns how many levels live on storage — the
// log2(2N/n) term of equation (5-2).
func (o *ORAM) StorageLevels() int { return o.Geometry().Levels + 1 - o.memLevels }

// StorageBucketsPerAccess returns the number of storage buckets a
// single access reads (and writes): the per-access I/O cost in bucket
// units.
func (o *ORAM) StorageBucketsPerAccess() int { return o.StorageLevels() }

// Tiered exposes the composite device for stats collection.
func (o *ORAM) Tiered() *device.Tiered { return o.tiered }
