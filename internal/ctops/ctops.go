// Package ctops collects the branchless select/compare primitives the
// constant-time controller mode is built from. Everything here is a
// thin, allocation-free wrapper in the crypto/subtle idiom: masks are
// ints that are exactly 0 or 1, selections are arithmetic, and no
// operation branches on its data operands.
//
// Domain note: the signed comparisons are implemented with a
// subtraction, so both operands must stay within (-2^62, 2^62) — far
// beyond any block address, slot index or level this repository uses —
// except that one operand of Lt64 may be math.MaxInt64 (the
// constant-time stash's empty sentinel) as long as the other is
// non-negative.
package ctops

import "crypto/subtle"

// Eq64 returns 1 when a == b, else 0, without branching.
func Eq64(a, b int64) int {
	x := uint64(a ^ b)
	return int(((x | -x) >> 63) ^ 1)
}

// EqInt returns 1 when a == b, else 0, without branching.
func EqInt(a, b int) int { return Eq64(int64(a), int64(b)) }

// Lt64 returns 1 when a < b, else 0, without branching. See the
// package comment for the operand domain.
func Lt64(a, b int64) int {
	return int(uint64(a-b) >> 63)
}

// LtInt returns 1 when a < b, else 0, without branching.
func LtInt(a, b int) int { return Lt64(int64(a), int64(b)) }

// GeInt returns 1 when a >= b, else 0, without branching.
func GeInt(a, b int) int { return LtInt(a, b) ^ 1 }

// Select64 returns a when v == 1 and b when v == 0, without branching.
func Select64(v int, a, b int64) int64 {
	m := -int64(v)
	return (a & m) | (b &^ m)
}

// SelectInt returns a when v == 1 and b when v == 0, without branching.
func SelectInt(v int, a, b int) int { return int(Select64(v, int64(a), int64(b))) }

// CopyBytes copies src into dst when v == 1 and leaves dst unchanged
// when v == 0, reading both slices in full either way. The slices must
// have equal length.
func CopyBytes(v int, dst, src []byte) { subtle.ConstantTimeCopy(v, dst, src) }
