package partitionoram

import (
	"bytes"
	"testing"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/simclock"
)

func testConfig(blocks int64, blockSize int) Config {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(200 + i)
	}
	rng := blockcipher.NewRNGFromString("part-test")
	sealer, err := blockcipher.NewAESSealer(key, rng.Fork("sealer"))
	if err != nil {
		panic(err)
	}
	return Config{Blocks: blocks, BlockSize: blockSize, Sealer: sealer, RNG: rng.Fork("oram")}
}

func build(t *testing.T, blocks int64, blockSize int) (*ORAM, *device.Sim) {
	t.Helper()
	cfg := testConfig(blocks, blockSize)
	clk := simclock.New()
	dev, err := device.New(device.PaperHDD(), cfg.SlotSize(), 4*blocks+256, clk)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	return o, dev
}

func TestValidation(t *testing.T) {
	cfg := testConfig(16, 32)
	clk := simclock.New()
	dev, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 256, clk)

	bad := cfg
	bad.Blocks = -1
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted negative blocks")
	}
	bad = cfg
	bad.BlockSize = 0
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted zero block size")
	}
	bad = cfg
	bad.EvictEvery = 100 // ≥ √16
	if _, err := New(bad, dev); err == nil {
		t.Error("accepted EvictEvery ≥ √N")
	}
	if _, err := New(cfg, nil); err == nil {
		t.Error("accepted nil device")
	}
	tiny, _ := device.New(device.PaperHDD(), cfg.SlotSize(), 8, clk)
	if _, err := New(cfg, tiny); err == nil {
		t.Error("accepted undersized device")
	}
}

func TestGeometryDefaults(t *testing.T) {
	o, _ := build(t, 100, 16)
	if o.Partitions() != 10 {
		t.Fatalf("Partitions() = %d, want 10", o.Partitions())
	}
	if o.EvictEvery() != 5 {
		t.Fatalf("EvictEvery() = %d, want 5", o.EvictEvery())
	}
}

func TestRoundTrip(t *testing.T) {
	o, _ := build(t, 64, 32)
	want := bytes.Repeat([]byte{0x99}, 32)
	if err := o.Write(33, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(33)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip failed")
	}
}

func TestChurnAcrossEvictions(t *testing.T) {
	const blocks = 64
	o, _ := build(t, blocks, 16)
	fill := func(b byte) []byte { return bytes.Repeat([]byte{b}, 16) }
	version := make(map[int64]byte)
	for a := int64(0); a < blocks; a++ {
		if err := o.Write(a, fill(byte(a))); err != nil {
			t.Fatal(err)
		}
		version[a] = byte(a)
	}
	rng := blockcipher.NewRNGFromString("part-churn")
	for i := 0; i < 400; i++ {
		a := rng.Int63n(blocks)
		if rng.Intn(3) == 0 {
			v := byte(rng.Intn(256))
			if err := o.Write(a, fill(v)); err != nil {
				t.Fatal(err)
			}
			version[a] = v
		} else {
			got, err := o.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, fill(version[a])) {
				t.Fatalf("iteration %d: Read(%d) corrupted", i, a)
			}
		}
	}
	if o.Stats().Evictions == 0 {
		t.Fatal("no evictions occurred")
	}
}

func TestEvictionShufflesOnePartition(t *testing.T) {
	o, dev := build(t, 64, 16) // 8 partitions of 16 slots, v = 4
	dev.ResetStats()

	// Three accesses: 3 reads (+3 invalidation writes), no eviction.
	for i := int64(0); i < 3; i++ {
		if _, err := o.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	if o.Stats().Evictions != 0 {
		t.Fatal("eviction fired early")
	}
	readsBefore := dev.Stats().Reads
	// Fourth access triggers eviction: one partition read+write.
	if _, err := o.Read(3); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", o.Stats().Evictions)
	}
	extraReads := dev.Stats().Reads - readsBefore
	// 1 access read + 16 partition-slot reads.
	if extraReads != 17 {
		t.Fatalf("eviction access read %d slots, want 17 (1 + one partition)", extraReads)
	}
}

func TestStashHitMasked(t *testing.T) {
	o, dev := build(t, 64, 16)
	if _, err := o.Read(7); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats().Reads
	if _, err := o.Read(7); err != nil { // stash hit
		t.Fatal(err)
	}
	if got := dev.Stats().Reads - before; got != 1 {
		t.Fatalf("stash hit issued %d storage reads, want 1 (mask)", got)
	}
	if o.Stats().StashHits != 1 || o.Stats().DummyReads != 1 {
		t.Fatalf("stats = %+v", o.Stats())
	}
}

func TestStashDrainsToPartitions(t *testing.T) {
	o, _ := build(t, 64, 16)
	for i := int64(0); i < 16; i++ { // 4 evictions at v=4
		if _, err := o.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	if o.Stats().Evictions != 4 {
		t.Fatalf("Evictions = %d, want 4", o.Stats().Evictions)
	}
	if o.StashLen() != 0 {
		t.Fatalf("stash holds %d blocks after eviction, want 0 (no overflow at this load)", o.StashLen())
	}
}

func TestBounds(t *testing.T) {
	o, _ := build(t, 16, 8)
	if _, err := o.Read(-1); err == nil {
		t.Error("Read(-1) passed")
	}
	if _, err := o.Read(16); err == nil {
		t.Error("Read(16) passed")
	}
	if err := o.Write(0, make([]byte, 4)); err == nil {
		t.Error("short write passed")
	}
}
