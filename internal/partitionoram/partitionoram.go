// Package partitionoram implements the flat partition ORAM the paper
// sketches in §2.1.4: the store is divided into √N partitions of √N
// blocks; every access fetches one block into the trusted stash, and
// after v accesses the stash is evicted to a uniformly random
// partition p, which alone is reshuffled. The per-shuffle cost drops
// from O(N) to O(√N) at the price of more frequent shuffles — the
// trade-off H-ORAM's group & partition shuffle inherits (its shuffle
// walks the partitions deterministically, which §4.3.3 argues is
// equivalent because both access partitions with uniform expectation).
package partitionoram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/blockcipher"
	"repro/internal/device"
	"repro/internal/stash"
)

const headerSize = 8
const dummyAddr = int64(-1)

// Config parameterises a partition ORAM.
type Config struct {
	// Blocks is the number of real blocks N.
	Blocks int64
	// BlockSize is the plaintext payload size.
	BlockSize int
	// Sealer encrypts slot records; required.
	Sealer blockcipher.Sealer
	// RNG must be dedicated to this instance.
	RNG *blockcipher.RNG
	// EvictEvery is the paper's v: stash evictions happen after this
	// many accesses. Zero selects ⌈√N⌉/2. Must satisfy v < √N.
	EvictEvery int64
	// SlackFactor sizes each partition as SlackFactor·√N slots to
	// absorb occupancy imbalance. Zero selects 2 (the classic choice).
	SlackFactor int
}

func (c Config) validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("partitionoram: Blocks must be positive, got %d", c.Blocks)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("partitionoram: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.Sealer == nil {
		return errors.New("partitionoram: Sealer is required")
	}
	if c.RNG == nil {
		return errors.New("partitionoram: RNG is required")
	}
	if c.EvictEvery < 0 {
		return errors.New("partitionoram: EvictEvery must be non-negative")
	}
	if c.SlackFactor < 0 {
		return errors.New("partitionoram: SlackFactor must be non-negative")
	}
	return nil
}

// SlotSize returns the sealed on-device slot size implied by cfg.
func (c Config) SlotSize() int { return headerSize + c.BlockSize + c.Sealer.Overhead() }

// location records where a block currently lives.
type location struct {
	inStash   bool
	partition int64
	slot      int64 // device slot (absolute)
}

// Stats counts scheme-level work.
type Stats struct {
	Accesses         int64 // logical accesses
	StashHits        int64 // served from the stash (masked by a dummy read)
	DummyReads       int64 // dummy slot reads issued to mask stash hits
	Evictions        int64 // stash evictions
	PartitionShuffle int64 // partitions reshuffled
	Overflows        int64 // evictions deferred because the partition was full
}

// ORAM is a partition ORAM over one storage device. Not safe for
// concurrent use.
type ORAM struct {
	cfg        Config
	dev        device.Device
	partitions int64
	partSlots  int64 // slots per partition
	evictEvery int64

	loc      []location // per address
	occupied []int64    // real blocks per partition
	// untouched dummy pool per partition: slots currently holding
	// dummies, consumed by masking reads.
	stash   *stash.Stash
	pending int64
	stats   Stats
	slotBuf []byte
}

// New builds the ORAM and writes the initial layout: blocks spread
// round-robin over partitions, each partition padded with dummies and
// internally permuted (setup; uses the raw device path when present).
func New(cfg Config, dev device.Device) (*ORAM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("partitionoram: nil device")
	}
	if dev.SlotSize() != cfg.SlotSize() {
		return nil, fmt.Errorf("partitionoram: device slot size %d, config needs %d", dev.SlotSize(), cfg.SlotSize())
	}
	root := int64(math.Ceil(math.Sqrt(float64(cfg.Blocks))))
	partitions := root
	slack := cfg.SlackFactor
	if slack == 0 {
		slack = 2
	}
	partSlots := root * int64(slack)
	evictEvery := cfg.EvictEvery
	if evictEvery == 0 {
		evictEvery = (root + 1) / 2
	}
	if evictEvery >= root {
		return nil, fmt.Errorf("partitionoram: EvictEvery %d must be < √N = %d", evictEvery, root)
	}
	if dev.Slots() < partitions*partSlots {
		return nil, fmt.Errorf("partitionoram: device has %d slots, need %d", dev.Slots(), partitions*partSlots)
	}
	o := &ORAM{
		cfg:        cfg,
		dev:        dev,
		partitions: partitions,
		partSlots:  partSlots,
		evictEvery: evictEvery,
		loc:        make([]location, cfg.Blocks),
		occupied:   make([]int64, partitions),
		stash:      stash.New(0),
		slotBuf:    make([]byte, cfg.SlotSize()),
	}
	if err := o.initStore(); err != nil {
		return nil, err
	}
	return o, nil
}

type rawWriter interface {
	WriteRaw(slot int64, src []byte) error
}

// initStore lays blocks round-robin across partitions and permutes
// each partition internally.
func (o *ORAM) initStore() error {
	rw, hasRaw := o.dev.(rawWriter)
	zero := make([]byte, o.cfg.BlockSize)
	write := func(slot int64, sealed []byte) error {
		if hasRaw {
			return rw.WriteRaw(slot, sealed)
		}
		return o.dev.Write(slot, sealed)
	}

	// Assign addresses to partitions round-robin.
	members := make([][]int64, o.partitions)
	for a := int64(0); a < o.cfg.Blocks; a++ {
		p := a % o.partitions
		members[p] = append(members[p], a)
	}
	for p := int64(0); p < o.partitions; p++ {
		if int64(len(members[p])) > o.partSlots {
			return fmt.Errorf("partitionoram: partition %d assigned %d blocks, capacity %d", p, len(members[p]), o.partSlots)
		}
		// Partition-local permutation over its slots.
		perm := o.cfg.RNG.Perm(int(o.partSlots))
		base := p * o.partSlots
		for i := int64(0); i < o.partSlots; i++ {
			slot := base + int64(perm[i])
			addr := dummyAddr
			var payload []byte
			if i < int64(len(members[p])) {
				addr = members[p][i]
				payload = zero
				o.loc[addr] = location{partition: p, slot: slot}
			}
			sealed, err := o.sealRecord(addr, payload)
			if err != nil {
				return err
			}
			if err := write(slot, sealed); err != nil {
				return err
			}
		}
		o.occupied[p] = int64(len(members[p]))
	}
	return nil
}

func (o *ORAM) sealRecord(addr int64, payload []byte) ([]byte, error) {
	pt := make([]byte, headerSize+o.cfg.BlockSize)
	binary.BigEndian.PutUint64(pt[:headerSize], uint64(addr))
	copy(pt[headerSize:], payload)
	return o.cfg.Sealer.Seal(pt)
}

func (o *ORAM) openRecord(sealed []byte) (int64, []byte, error) {
	pt, err := o.cfg.Sealer.Open(sealed)
	if err != nil {
		return 0, nil, err
	}
	if len(pt) != headerSize+o.cfg.BlockSize {
		return 0, nil, fmt.Errorf("partitionoram: record is %d bytes, want %d", len(pt), headerSize+o.cfg.BlockSize)
	}
	return int64(binary.BigEndian.Uint64(pt[:headerSize])), pt[headerSize:], nil
}

// Stats returns scheme-level counters.
func (o *ORAM) Stats() Stats { return o.stats }

// Partitions returns √N.
func (o *ORAM) Partitions() int64 { return o.partitions }

// EvictEvery returns the eviction period v.
func (o *ORAM) EvictEvery() int64 { return o.evictEvery }

// StashLen returns current stash occupancy.
func (o *ORAM) StashLen() int { return o.stash.Len() }

// Op selects the access type.
type Op uint8

// Access operations.
const (
	OpRead Op = iota
	OpWrite
)

// Access performs one partition ORAM operation.
func (o *ORAM) Access(op Op, addr int64, data []byte) ([]byte, error) {
	if addr < 0 || addr >= o.cfg.Blocks {
		return nil, fmt.Errorf("partitionoram: address %d out of range [0,%d)", addr, o.cfg.Blocks)
	}
	if op == OpWrite && len(data) != o.cfg.BlockSize {
		return nil, fmt.Errorf("partitionoram: write payload %d bytes, want %d", len(data), o.cfg.BlockSize)
	}

	var current []byte
	if held, ok := o.stash.Get(addr); ok {
		// Mask the hit with a read of a random slot in a random
		// partition, exactly one storage touch either way.
		o.stats.StashHits++
		p := o.cfg.RNG.Int63n(o.partitions)
		slot := p*o.partSlots + o.cfg.RNG.Int63n(o.partSlots)
		if err := o.dev.Read(slot, o.slotBuf); err != nil {
			return nil, err
		}
		if _, _, err := o.openRecord(o.slotBuf); err != nil {
			return nil, err
		}
		o.stats.DummyReads++
		current = held
	} else {
		l := o.loc[addr]
		if err := o.dev.Read(l.slot, o.slotBuf); err != nil {
			return nil, err
		}
		gotAddr, payload, err := o.openRecord(o.slotBuf)
		if err != nil {
			return nil, err
		}
		if gotAddr != addr {
			return nil, fmt.Errorf("partitionoram: slot %d holds block %d, want %d", l.slot, gotAddr, addr)
		}
		// Blank the fetched slot with a dummy so the block exists only
		// in the stash (the classic fetch-and-invalidate).
		sealed, err := o.sealRecord(dummyAddr, nil)
		if err != nil {
			return nil, err
		}
		if err := o.dev.Write(l.slot, sealed); err != nil {
			return nil, err
		}
		o.occupied[l.partition]--
		owned := make([]byte, o.cfg.BlockSize)
		copy(owned, payload)
		if err := o.stash.Put(addr, owned); err != nil {
			return nil, err
		}
		o.loc[addr] = location{inStash: true}
		current = owned
	}

	out := make([]byte, o.cfg.BlockSize)
	copy(out, current)
	if op == OpWrite {
		stored := make([]byte, o.cfg.BlockSize)
		copy(stored, data)
		if err := o.stash.Put(addr, stored); err != nil {
			return nil, err
		}
	}

	o.pending++
	o.stats.Accesses++
	if o.pending >= o.evictEvery {
		if err := o.evict(); err != nil {
			return nil, err
		}
		o.pending = 0
	}
	return out, nil
}

// Read fetches the block at addr.
func (o *ORAM) Read(addr int64) ([]byte, error) { return o.Access(OpRead, addr, nil) }

// Write stores data at addr.
func (o *ORAM) Write(addr int64, data []byte) error {
	_, err := o.Access(OpWrite, addr, data)
	return err
}

// evict drains the stash into a uniformly random partition and
// reshuffles just that partition: read its √N·slack slots, merge the
// evicted blocks, permute in trusted memory, write back sequentially.
// If the partition cannot absorb the whole stash the surplus stays in
// the stash for the next eviction (counted as an overflow).
func (o *ORAM) evict() error {
	p := o.cfg.RNG.Int63n(o.partitions)
	base := p * o.partSlots

	// Read the whole partition.
	type rec struct {
		addr int64
		data []byte
	}
	var blocks []rec
	for i := int64(0); i < o.partSlots; i++ {
		if err := o.dev.Read(base+i, o.slotBuf); err != nil {
			return err
		}
		addr, payload, err := o.openRecord(o.slotBuf)
		if err != nil {
			return err
		}
		if addr == dummyAddr {
			continue
		}
		owned := make([]byte, o.cfg.BlockSize)
		copy(owned, payload)
		blocks = append(blocks, rec{addr, owned})
	}

	// Merge as much of the stash as fits.
	room := o.partSlots - int64(len(blocks))
	moved := 0
	for _, b := range o.stash.Drain() {
		if int64(moved) < room {
			blocks = append(blocks, rec{b.Addr, b.Data})
			moved++
		} else {
			// Put back: stays sheltered until a later eviction.
			if err := o.stash.Put(b.Addr, b.Data); err != nil {
				return err
			}
			o.stats.Overflows++
		}
	}

	// Permute and write back sequentially, dummies filling the rest.
	perm := o.cfg.RNG.Perm(int(o.partSlots))
	slotOf := make([]int64, len(blocks))
	for i := range blocks {
		slotOf[i] = base + int64(perm[i])
	}
	bySlot := make(map[int64]int, len(blocks))
	for i, s := range slotOf {
		bySlot[s] = i
	}
	for i := int64(0); i < o.partSlots; i++ {
		slot := base + i
		addr := dummyAddr
		var payload []byte
		if bi, ok := bySlot[slot]; ok {
			addr = blocks[bi].addr
			payload = blocks[bi].data
		}
		sealed, err := o.sealRecord(addr, payload)
		if err != nil {
			return err
		}
		if err := o.dev.Write(slot, sealed); err != nil {
			return err
		}
		if addr != dummyAddr {
			o.loc[addr] = location{partition: p, slot: slot}
		}
	}
	o.occupied[p] = int64(len(blocks))

	o.stats.Evictions++
	o.stats.PartitionShuffle++
	return nil
}
