package blockcipher

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

func newTestSealer(t *testing.T) *AESSealer {
	t.Helper()
	s, err := NewAESSealer(testKey(), NewRNGFromString("sealer-test"))
	if err != nil {
		t.Fatalf("NewAESSealer: %v", err)
	}
	return s
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newTestSealer(t)
	for _, n := range []int{0, 1, 15, 16, 17, 1024, 4096} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i)
		}
		ct, err := s.Seal(pt)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", n, err)
		}
		if len(ct) != n+s.Overhead() {
			t.Fatalf("len(ct) = %d, want %d", len(ct), n+s.Overhead())
		}
		got, err := s.Open(ct)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip of %d bytes mismatched", n)
		}
	}
}

func TestSealNonDeterministic(t *testing.T) {
	s := newTestSealer(t)
	pt := []byte("same plaintext sealed twice")
	a, _ := s.Seal(pt)
	b, _ := s.Seal(pt)
	if bytes.Equal(a, b) {
		t.Fatal("two Seals of the same plaintext produced identical ciphertext; blocks would be linkable across shuffles")
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	s := newTestSealer(t)
	ct, _ := s.Seal([]byte("sensitive"))
	for _, pos := range []int{0, nonceSize, len(ct) - 1} {
		bad := make([]byte, len(ct))
		copy(bad, ct)
		bad[pos] ^= 0x01
		if _, err := s.Open(bad); err != ErrAuth {
			t.Fatalf("Open(tampered at %d) = %v, want ErrAuth", pos, err)
		}
	}
}

func TestOpenRejectsShortCiphertext(t *testing.T) {
	s := newTestSealer(t)
	for _, n := range []int{0, 1, nonceSize, nonceSize + tagSize - 1} {
		if _, err := s.Open(make([]byte, n)); err != ErrCiphertext {
			t.Fatalf("Open(%d bytes) = %v, want ErrCiphertext", n, err)
		}
	}
}

func TestNewAESSealerRejectsBadKey(t *testing.T) {
	if _, err := NewAESSealer(make([]byte, 16), NewRNGFromString("x")); err == nil {
		t.Fatal("NewAESSealer accepted a 16-byte master key, want error")
	}
	if _, err := NewAESSealer(testKey(), nil); err == nil {
		t.Fatal("NewAESSealer accepted a nil RNG, want error")
	}
}

func TestSealOpenProperty(t *testing.T) {
	s := newTestSealer(t)
	f := func(pt []byte) bool {
		ct, err := s.Seal(pt)
		if err != nil {
			return false
		}
		got, err := s.Open(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNullSealer(t *testing.T) {
	var s NullSealer
	pt := []byte("hello")
	ct, err := s.Seal(pt)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if !bytes.Equal(ct, pt) {
		t.Fatal("NullSealer.Seal altered data")
	}
	// Must copy, not alias.
	ct[0] = 'X'
	if pt[0] == 'X' {
		t.Fatal("NullSealer.Seal aliases its input")
	}
	got, err := s.Open(ct)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, ct) {
		t.Fatal("NullSealer.Open altered data")
	}
	if s.Overhead() != 0 {
		t.Fatalf("Overhead() = %d, want 0", s.Overhead())
	}
}

func TestPRFDeterministic(t *testing.T) {
	p1, err := NewPRF(testKey())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPRF(testKey())
	a := p1.Derive("label", 100)
	b := p2.Derive("label", 100)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF.Derive is not deterministic across instances")
	}
	if len(a) != 100 {
		t.Fatalf("Derive length = %d, want 100", len(a))
	}
	c := p1.Derive("other", 100)
	if bytes.Equal(a, c) {
		t.Fatal("PRF.Derive gave identical output for different labels")
	}
}

func TestPRFRejectsShortKey(t *testing.T) {
	if _, err := NewPRF(make([]byte, 8)); err == nil {
		t.Fatal("NewPRF accepted an 8-byte key")
	}
}

func TestPRFUint64Labels(t *testing.T) {
	p, _ := NewPRF(testKey())
	if p.Uint64("a", 0) == p.Uint64("a", 1) {
		t.Fatal("PRF.Uint64 identical for different indexes")
	}
	if p.Uint64("a", 0) != p.Uint64("a", 0) {
		t.Fatal("PRF.Uint64 not deterministic")
	}
	if p.Uint64("a", 0) == p.Uint64("b", 0) {
		t.Fatal("PRF.Uint64 identical for different labels")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := NewRNGFromString("seed")
	b := NewRNGFromString("seed")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("two RNGs with equal seeds diverged")
		}
	}
	c := NewRNGFromString("different")
	if a.Uint64() == c.Uint64() {
		t.Fatal("RNGs with different seeds emitted equal first values (suspicious)")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNGFromString("intn")
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNGFromString("panic")
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNGFromString("uniform")
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	// Chi-square with 9 dof; 99.9% critical value is 27.88.
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn distribution chi2 = %.2f > 27.88; not uniform", chi2)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNGFromString("float")
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNGFromString("perm")
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNGFromString("root")
	a := r.Fork("a")
	b := r.Fork("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked RNGs emitted %d equal values out of 64", same)
	}
}

func TestRNGForkDeterministicFromRoot(t *testing.T) {
	mk := func() uint64 {
		r := NewRNGFromString("root2")
		return r.Fork("child").Uint64()
	}
	if mk() != mk() {
		t.Fatal("Fork is not a pure function of the root seed")
	}
}

func TestRNGReadNeverFails(t *testing.T) {
	r := NewRNGFromString("read")
	buf := make([]byte, 3000) // spans multiple internal refills
	n, err := r.Read(buf)
	if n != len(buf) || err != nil {
		t.Fatalf("Read = (%d, %v), want (%d, nil)", n, err, len(buf))
	}
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("Read returned all zeros")
	}
}

func BenchmarkSeal1KB(b *testing.B) {
	s, _ := NewAESSealer(testKey(), NewRNGFromString("bench"))
	pt := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen1KB(b *testing.B) {
	s, _ := NewAESSealer(testKey(), NewRNGFromString("bench"))
	ct, _ := s.Seal(make([]byte, 1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Open(ct); err != nil {
			b.Fatal(err)
		}
	}
}
