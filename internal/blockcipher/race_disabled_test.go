//go:build !race

package blockcipher

const raceEnabled = false
